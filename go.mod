module tevot

go 1.24
