#!/bin/sh
# Distributed-sweep smoke drill, run as real processes:
#
#   1. single-process sweep -> reference merged JSONL;
#   2. coordinator + two worker processes over loopback HTTP;
#   3. SIGKILL one worker after its first results land (its leases
#      expire and the cells are re-issued to the survivor);
#   4. assert the distributed run exits 0 and its merged JSONL is
#      byte-identical to the single-process reference;
#   5. scrape /cluster/metrics at completion and assert the fleet
#      telemetry balances: the aggregate worker.cells_done counter
#      equals the merged row count plus the coordinator's duplicate
#      results (a speculative or re-issued copy completes a cell twice
#      but lands only one row).
#
# This is the end-to-end counterpart of internal/dist's in-process
# cluster tests: same protocol, plus real process boundaries, real
# sockets, and a real SIGKILL.
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
COORD_PID=""
W1_PID=""
W2_PID=""
cleanup() {
	# Kill AND reap: a TERM without a wait leaves orphans running on the
	# coordinator port after the script exits (found by the chaos work —
	# a failed assertion used to strand both workers).
	for pid in "$COORD_PID" "$W1_PID" "$W2_PID"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	for pid in "$COORD_PID" "$W1_PID" "$W2_PID"; do
		[ -n "$pid" ] && wait "$pid" 2>/dev/null || true
	done
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

# Sized so the sweep runs for seconds, not milliseconds: the SIGKILL
# below must land while cells are still in flight, and a too-small
# sweep can finish inside one poll interval of the kill-window loop
# (the worker exits first and the drill degenerates into a plain run).
SWEEP_FLAGS="-cycles 3000 -fu INT_ADD -images 1 -imgsize 16 -seed 1"

echo "-- building binaries"
go build -o "$TMP/tevot-sweep" ./cmd/tevot-sweep
go build -o "$TMP/tevot-worker" ./cmd/tevot-worker

echo "-- single-process reference sweep"
"$TMP/tevot-sweep" $SWEEP_FLAGS -out "$TMP/ref.jsonl" \
	-run-json "$TMP/ref-run.json" >/dev/null 2>&1

echo "-- coordinator + 2 workers, SIGKILL one mid-run"
"$TMP/tevot-sweep" $SWEEP_FLAGS -coordinator 127.0.0.1:0 -lease-ttl 3s \
	-checkpoint "$TMP/journal.jsonl" -out "$TMP/dist.jsonl" \
	-run-json "$TMP/coord-run.json" \
	>"$TMP/coord.out" 2>"$TMP/coord.log" &
COORD_PID=$!

ADDR=""
i=0
while [ $i -lt 100 ]; do
	ADDR=$(grep -o 'addr=http://[0-9.:]*' "$TMP/coord.log" 2>/dev/null | head -1 | cut -d= -f2) || true
	[ -n "$ADDR" ] && break
	kill -0 "$COORD_PID" 2>/dev/null || { echo "FAIL: coordinator died at startup"; cat "$TMP/coord.log"; exit 1; }
	sleep 0.1
	i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "FAIL: coordinator never logged its address"; cat "$TMP/coord.log"; exit 1; }

# Manifests go into $TMP too: the workers' cwd is the repo root, and
# the default -run-json run.json would litter (and race over) a
# run.json in the checkout.
"$TMP/tevot-worker" -coordinator "$ADDR" -id smoke-a \
	-run-json "$TMP/w1-run.json" >/dev/null 2>"$TMP/w1.log" &
W1_PID=$!
"$TMP/tevot-worker" -coordinator "$ADDR" -id smoke-b \
	-run-json "$TMP/w2-run.json" >/dev/null 2>"$TMP/w2.log" &
W2_PID=$!

# Wait for at least one completed cell so the kill happens mid-run. If
# the coordinator dies here, fail with its log instead of spinning out
# the full window against a dead endpoint.
i=0
DONE=0
while [ $i -lt 200 ]; do
	DONE=$(curl -s "$ADDR/progress" 2>/dev/null | grep -o '"done":[0-9]*' | head -1 | cut -d: -f2) || true
	[ "${DONE:-0}" -ge 1 ] && break
	kill -0 "$COORD_PID" 2>/dev/null || { echo "FAIL: coordinator died mid-run"; cat "$TMP/coord.log"; exit 1; }
	sleep 0.1
	i=$((i + 1))
done
[ "${DONE:-0}" -ge 1 ] || { echo "FAIL: no cell completed before kill window"; exit 1; }

kill -9 "$W1_PID"
wait "$W1_PID" 2>/dev/null || true
W1_PID=""
echo "   killed worker smoke-a at done=$DONE; survivor finishes the sweep"

# Wait for the last cell, then scrape the telemetry surfaces inside the
# coordinator's post-completion linger window.
CELLS=$(curl -s "$ADDR/progress" 2>/dev/null | grep -o '"cells":[0-9]*' | head -1 | cut -d: -f2) || true
i=0
while [ $i -lt 600 ]; do
	DONE=$(curl -s "$ADDR/progress" 2>/dev/null | grep -o '"done":[0-9]*' | head -1 | cut -d: -f2) || true
	[ "${DONE:-0}" -eq "${CELLS:-0}" ] && break
	kill -0 "$COORD_PID" 2>/dev/null || break
	sleep 0.1
	i=$((i + 1))
done
curl -s "$ADDR/cluster/metrics" >"$TMP/cluster.prom" 2>/dev/null || true
curl -s "$ADDR/metrics" >"$TMP/coord.prom" 2>/dev/null || true

COORD_EXIT=0
wait "$COORD_PID" || COORD_EXIT=$?
COORD_PID=""
[ "$COORD_EXIT" -eq 0 ] || { echo "FAIL: coordinator exit $COORD_EXIT"; cat "$TMP/coord.log"; exit 1; }
wait "$W2_PID" 2>/dev/null || { echo "FAIL: surviving worker failed"; cat "$TMP/w2.log"; exit 1; }
W2_PID=""

cmp "$TMP/ref.jsonl" "$TMP/dist.jsonl" || {
	echo "FAIL: distributed output differs from single-process reference"
	exit 1
}
echo "   merged output byte-identical to single-process run"

# Fleet telemetry balance: Σ worker.cells_done (the aggregate sample on
# /cluster/metrics) must equal merged rows + duplicate results (the
# coordinator's own counter on /metrics). Every accepted or duplicate
# report carries a snapshot that already counts it, so this is an
# identity at completion, not an eventually-consistent estimate.
ROWS=$(wc -l <"$TMP/dist.jsonl")
AGG=$(grep '^tevot_worker_cells_done_total{aggregate="cluster"}' "$TMP/cluster.prom" | awk '{print $2}') || true
DUPS=$(grep '^tevot_dist_results_duplicate_total ' "$TMP/coord.prom" | awk '{print $2}') || true
[ -n "${AGG:-}" ] || { echo "FAIL: /cluster/metrics had no aggregate cells_done sample"; cat "$TMP/cluster.prom"; exit 1; }
[ -n "${DUPS:-}" ] || { echo "FAIL: coordinator /metrics had no duplicate-results counter"; cat "$TMP/coord.prom"; exit 1; }
[ "$AGG" -eq "$((ROWS + DUPS))" ] || {
	echo "FAIL: cluster telemetry imbalance: cells_done=$AGG, rows=$ROWS, duplicates=$DUPS"
	cat "$TMP/cluster.prom"
	exit 1
}
echo "   cluster telemetry balanced: cells_done=$AGG == rows=$ROWS + duplicates=$DUPS"

# No stray processes: every worker and the coordinator must be gone now
# that the run completed — an orphan here means a leaked supervisor or
# a worker that never heard "done".
if command -v pgrep >/dev/null 2>&1; then
	STRAYS=$(pgrep -f "$TMP/tevot-" 2>/dev/null || true)
	[ -z "$STRAYS" ] || {
		echo "FAIL: stray sweep processes survived the run: $STRAYS"
		ps -p $STRAYS 2>/dev/null || true
		exit 1
	}
	echo "   no stray worker or coordinator processes"
fi
