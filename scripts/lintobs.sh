#!/bin/sh
# Library packages must log through internal/obs (log/slog) so every
# line respects -log-level/-log-format and lands in the structured
# stream — not through raw fmt.Print*/log.Print*, which bypass both and
# (for log.Fatal*) skip profile flushing and the run manifest. CLIs
# (cmd/) and examples/ own their stdout and are exempt; so are tests.
#
# Usage: sh scripts/lintobs.sh [dir]   (default: the repo's internal/)
# Escape hatch for a deliberate exception: put `lint:allow-raw-print`
# in a comment on the offending line.
set -eu
dir="${1:-$(cd "$(dirname "$0")/.." && pwd)/internal}"

pattern='(fmt\.Print(ln|f)?|log\.(Print(ln|f)?|Fatal(ln|f)?|Panic(ln|f)?))\('
bad="$(grep -rnE --include='*.go' --exclude='*_test.go' "$pattern" "$dir" \
	| grep -v 'lint:allow-raw-print' || true)"

if [ -n "$bad" ]; then
	echo "$bad"
	echo "lintobs: raw print/log calls in library packages — use internal/obs (slog) instead" >&2
	exit 1
fi
echo "lintobs: ok ($dir)"
