#!/bin/sh
# Library packages must log through internal/obs (log/slog) so every
# line respects -log-level/-log-format and lands in the structured
# stream — not through raw fmt.Print*/log.Print*, which bypass both and
# (for log.Fatal*) skip profile flushing and the run manifest. CLIs
# (cmd/) own their stdout, so fmt.Print* result tables are fine there,
# but the log.* family is linted in cmd/ too: it bypasses the obs
# stream the same way, and log.Fatal* after obs.Flags.Start would skip
# the manifest. Pre-Start flag validation is the sanctioned exception,
# marked with the escape comment.
#
# Usage: sh scripts/lintobs.sh [dir]
#   no arg:  lint internal/ (full pattern) and cmd/ (log.* only)
#   dir arg: lint that tree with the full pattern (the self-test hook)
# Escape hatch for a deliberate exception: put `lint:allow-raw-print`
# in a comment on the offending line.
set -eu
root="$(cd "$(dirname "$0")/.." && pwd)"

full='(fmt\.Print(ln|f)?|log\.(Print(ln|f)?|Fatal(ln|f)?|Panic(ln|f)?))\('
logonly='log\.(Print(ln|f)?|Fatal(ln|f)?|Panic(ln|f)?)\('

lint() { # dir pattern
	grep -rnE --include='*.go' --exclude='*_test.go' "$2" "$1" \
		| grep -v 'lint:allow-raw-print' || true
}

if [ "$#" -ge 1 ]; then
	bad="$(lint "$1" "$full")"
	scope="$1"
else
	bad="$(printf '%s\n%s\n' \
		"$(lint "$root/internal" "$full")" \
		"$(lint "$root/cmd" "$logonly")" | sed '/^$/d')"
	scope="$root/internal + $root/cmd"
fi

if [ -n "$bad" ]; then
	echo "$bad"
	echo "lintobs: raw print/log calls outside the obs logging stream — use internal/obs (slog) instead" >&2
	exit 1
fi
echo "lintobs: ok ($scope)"
