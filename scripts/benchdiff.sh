#!/bin/sh
# Compare two benchmark JSON files produced by scripts/benchjson.sh and
# fail (exit 1) when any shared benchmark regressed by more than the
# threshold percentage — on ns/op, or on cycles/s / items/s where the
# benchmark reports them (the simulator's and coalescer's throughput
# metrics; a drop is a regression
# even if ns/op noise hides it). events/cycle is carried through the
# diff informationally: it is a workload property, not a speed, but a
# shift flags a semantic change in the kernel. Improvements beyond the
# threshold are called out as such.
#
# Benchmarks present on only one side never fail the gate: new ones
# (added since the baseline) are listed as "new", removed ones as
# "removed". Metrics present on only one side (e.g. a baseline written
# before cycles/s existed) are skipped, not failed. The comparison exits
# 2 only when the inputs are unusable (missing files, no benchmarks at
# all).
#
# Usage: sh scripts/benchdiff.sh old.json new.json [threshold-pct]
set -eu
if [ $# -lt 2 ]; then
	echo "usage: sh scripts/benchdiff.sh old.json new.json [threshold-pct]" >&2
	exit 2
fi

python3 - "$1" "$2" "${3:-10}" <<'EOF'
import json, sys

def load(path):
    try:
        with open(path) as f:
            return json.load(f).get("benchmarks", {})
    except (OSError, json.JSONDecodeError) as e:
        print(f"benchdiff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

old = load(sys.argv[1])
new = load(sys.argv[2])
threshold = float(sys.argv[3])

if not new:
    print("benchdiff: new run contains no benchmarks", file=sys.stderr)
    sys.exit(2)

shared = sorted(set(old) & set(new))
added = sorted(set(new) - set(old))
removed = sorted(set(old) - set(new))

failed = []
improved = []
compared = 0
print(f"{'benchmark':60s} {'old ns/op':>14s} {'new ns/op':>14s} {'delta':>8s}")
for name in shared:
    o, n = old[name].get("ns/op"), new[name].get("ns/op")
    if not o or n is None:
        print(f"{name:60s} {'?':>14s} {'?':>14s}        (no ns/op)")
        continue
    compared += 1
    delta = (n - o) / o * 100
    flag = ""
    if delta > threshold:
        failed.append((name, "ns/op", delta))
        flag = "  REGRESSION"
    elif delta < -threshold:
        improved.append((name, "ns/op", delta))
        flag = "  improved"
    print(f"{name:60s} {o:14.0f} {n:14.0f} {delta:+7.1f}%{flag}")

# Throughput and kernel-shape metrics, where both sides report them.
# cycles/s and the coalescer's items/s gate (lower is a regression);
# events/cycle and the memo's hit% are informational: workload/cache
# properties, not speeds, but a shift flags a semantic or fixture
# change worth a look.
tracked = [("cycles/s", True), ("items/s", True), ("events/cycle", False), ("hit%", False)]
rows = []
for name in shared:
    for metric, gates in tracked:
        o, n = old[name].get(metric), new[name].get(metric)
        if not o or n is None:
            continue
        delta = (n - o) / o * 100
        flag = ""
        if gates and delta < -threshold:
            failed.append((name, metric, delta))
            flag = "  REGRESSION"
        elif gates and delta > threshold:
            improved.append((name, metric, delta))
            flag = "  improved"
        rows.append(f"{name:48s} {metric:>12s} {o:14.1f} {n:14.1f} {delta:+7.1f}%{flag}")
if rows:
    print(f"\n{'benchmark':48s} {'metric':>12s} {'old':>14s} {'new':>14s} {'delta':>8s}")
    for row in rows:
        print(row)

for name in added:
    n = new[name].get("ns/op")
    shown = f"{n:14.0f}" if n is not None else f"{'?':>14s}"
    print(f"{name:60s} {'-':>14s} {shown}     new")
for name in removed:
    o = old[name].get("ns/op")
    shown = f"{o:14.0f}" if o is not None else f"{'?':>14s}"
    print(f"{name:60s} {shown} {'-':>14s}     removed")

if improved:
    print(f"\nbenchdiff: {len(improved)} metric(s) improved more than {threshold:.0f}%:")
    for name, metric, delta in improved:
        print(f"  {name} {metric}: {delta:+.1f}%")

if failed:
    print(f"\nbenchdiff: {len(failed)} metric(s) regressed more than {threshold:.0f}%:", file=sys.stderr)
    for name, metric, delta in failed:
        print(f"  {name} {metric}: {delta:+.1f}%", file=sys.stderr)
    sys.exit(1)

notes = []
if added:
    notes.append(f"{len(added)} new")
if removed:
    notes.append(f"{len(removed)} removed")
suffix = f"; {', '.join(notes)}" if notes else ""
if compared == 0:
    print(f"\nbenchdiff: no shared benchmarks to gate on{suffix} — nothing regressed")
else:
    print(f"\nbenchdiff: ok ({compared} compared, no ns/op or cycles/s regression above {threshold:.0f}%{suffix})")
EOF
