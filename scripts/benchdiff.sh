#!/bin/sh
# Compare two benchmark JSON files produced by scripts/benchjson.sh and
# fail (exit 1) when any shared benchmark's ns/op regressed by more than
# the threshold percentage. Throughput metrics (cycles/s, rows/s) are
# reported but only ns/op gates, since throughput is derived from it.
#
# Usage: sh scripts/benchdiff.sh old.json new.json [threshold-pct]
set -eu
if [ $# -lt 2 ]; then
	echo "usage: sh scripts/benchdiff.sh old.json new.json [threshold-pct]" >&2
	exit 2
fi

python3 - "$1" "$2" "${3:-10}" <<'EOF'
import json, sys

old = json.load(open(sys.argv[1]))["benchmarks"]
new = json.load(open(sys.argv[2]))["benchmarks"]
threshold = float(sys.argv[3])

shared = sorted(set(old) & set(new))
if not shared:
    print("benchdiff: no shared benchmarks between the two files", file=sys.stderr)
    sys.exit(2)

failed = []
print(f"{'benchmark':60s} {'old ns/op':>14s} {'new ns/op':>14s} {'delta':>8s}")
for name in shared:
    o, n = old[name].get("ns/op"), new[name].get("ns/op")
    if not o or n is None:
        continue
    delta = (n - o) / o * 100
    flag = ""
    if delta > threshold:
        failed.append((name, delta))
        flag = "  REGRESSION"
    print(f"{name:60s} {o:14.0f} {n:14.0f} {delta:+7.1f}%{flag}")

for name in sorted(set(new) - set(old)):
    print(f"{name:60s} {'-':>14s} {new[name].get('ns/op', 0):14.0f}     new")

if failed:
    print(f"\nbenchdiff: {len(failed)} benchmark(s) regressed more than {threshold:.0f}%:", file=sys.stderr)
    for name, delta in failed:
        print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
    sys.exit(1)
print(f"\nbenchdiff: ok (no ns/op regression above {threshold:.0f}%)")
EOF
