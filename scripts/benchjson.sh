#!/bin/sh
# Run the DTA performance benchmarks and serialize the results to JSON
# so scripts/benchdiff.sh can compare two commits. Every "value unit"
# metric a benchmark reports is captured — ns/op and B/op, but also the
# simulator's cycles/s and events/cycle — so the diff can gate on
# throughput, not just latency.
#
# Usage: sh scripts/benchjson.sh [out.json]
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_dta.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
	-bench 'BenchmarkCharacterizeParallel|BenchmarkCharacterizeMemo|BenchmarkForestPredictBatch|BenchmarkCycle|BenchmarkCounterInc|BenchmarkHistogramObserve|BenchmarkServeBatch' \
	-benchmem -count 1 \
	./internal/core ./internal/ml ./internal/sim ./internal/obs ./internal/serve | tee "$tmp"

python3 - "$tmp" "$out" <<'EOF'
import json, re, sys

lines = open(sys.argv[1]).read().splitlines()
results = {}
pending = None  # benchmark name whose result line is still coming
for line in lines:
    m = re.match(r"^(Benchmark\S+)\s*(.*)$", line)
    if m:
        name, rest = m.group(1), m.group(2)
        # go test merges the binary's stderr into stdout, so a log line
        # can split a benchmark's name from its result numbers; carry
        # the name until the numbers arrive.
        if not re.match(r"^\d+\s", rest):
            pending = name
            continue
    elif pending and re.match(r"^\s*\d+\s+[0-9.]+ ns/op", line):
        name, rest = pending, line.strip()
    else:
        continue
    pending = None
    iters, rest = rest.split(None, 1)
    metrics = {"iterations": int(iters)}
    for value, unit in re.findall(r"([0-9.]+)\s+(\S+)", rest):
        metrics[unit] = float(value)
    results[name] = metrics

with open(sys.argv[2], "w") as f:
    json.dump({"benchmarks": results}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {sys.argv[2]} ({len(results)} benchmarks)")
EOF
