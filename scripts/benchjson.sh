#!/bin/sh
# Run the DTA performance benchmarks and serialize the results to JSON
# so scripts/benchdiff.sh can compare two commits. Every "value unit"
# metric a benchmark reports is captured — ns/op and B/op, but also the
# simulator's cycles/s and events/cycle — so the diff can gate on
# throughput, not just latency.
#
# Usage: sh scripts/benchjson.sh [out.json]
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_dta.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
	-bench 'BenchmarkCharacterizeParallel|BenchmarkCharacterizeMemo|BenchmarkForestPredictBatch|BenchmarkCycle|BenchmarkCounterInc|BenchmarkHistogramObserve' \
	-benchmem -count 1 \
	./internal/core ./internal/ml ./internal/sim ./internal/obs | tee "$tmp"

python3 - "$tmp" "$out" <<'EOF'
import json, re, sys

lines = open(sys.argv[1]).read().splitlines()
results = {}
for line in lines:
    m = re.match(r"^(Benchmark\S+)\s+(\d+)\s+(.*)$", line)
    if not m:
        continue
    name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
    metrics = {"iterations": iters}
    for value, unit in re.findall(r"([0-9.]+)\s+(\S+)", rest):
        metrics[unit] = float(value)
    results[name] = metrics

with open(sys.argv[2], "w") as f:
    json.dump({"benchmarks": results}, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {sys.argv[2]} ({len(results)} benchmarks)")
EOF
