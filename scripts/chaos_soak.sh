#!/bin/sh
# Chaos soak driver: run the seeded fault-schedule corpus against the
# distributed sweep (internal/chaos + TestChaosSoak), or replay one
# schedule verbatim.
#
#   scripts/chaos_soak.sh             full corpus (25 generated schedules
#                                     + pinned regressions) under -race
#   scripts/chaos_soak.sh -short      short corpus (5 schedules + regressions)
#   scripts/chaos_soak.sh -seed 17    replay schedule 17 exactly, verbose
#
# Schedules are pure functions of their seed, so a seed printed by a
# failing run reproduces the identical fault plan here (goroutine
# interleaving still varies run to run; the invariants hold under all
# interleavings or the test fails).
set -eu
cd "$(dirname "$0")/.."

SEED=""
SHORT=""
while [ $# -gt 0 ]; do
	case "$1" in
	-seed)
		[ $# -ge 2 ] || { echo "usage: $0 [-seed N] [-short]" >&2; exit 2; }
		SEED=$2
		shift 2
		;;
	-short)
		SHORT="-short"
		shift
		;;
	*)
		echo "usage: $0 [-seed N] [-short]" >&2
		exit 2
		;;
	esac
done

if [ -n "$SEED" ]; then
	echo "== chaos soak: replaying schedule seed=$SEED"
	TEVOT_CHAOS_SEED="$SEED" exec go test -race -count=1 -v \
		-run 'TestChaosSoak' ./internal/dist
fi

echo "== chaos soak: generated corpus ${SHORT:+(short) }+ pinned regressions"
go test -race -count=1 $SHORT -run 'TestChaosSoak|TestChaosRegressions' ./internal/dist
echo "ok"
