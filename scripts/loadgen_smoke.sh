#!/bin/sh
# Loadgen smoke drill, run as real processes:
#
#   1. train a small INT_ADD model and boot tevot-serve with coalescing
#      on (-batch 8, 1ms max wait);
#   2. drive it with tevot-loadgen through a short two-step ramp;
#   3. assert the loadgen exits 0 and its JSON report recorded OK
#      completions;
#   4. scrape /metrics and assert the serve accounting identity
#      (requests == served + shed + timeouts + canceled + bad +
#      internal) on the aggregate counters after the run quiesces.
#
# The in-process counterpart (two shards, per-FU identity) lives in
# internal/loadgen's tests; this drill adds real process boundaries and
# real sockets.
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
SERVE_PID=""
cleanup() {
	[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
	[ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "-- building binaries"
go build -o "$TMP/tevot-train" ./cmd/tevot-train
go build -o "$TMP/tevot-serve" ./cmd/tevot-serve
go build -o "$TMP/tevot-loadgen" ./cmd/tevot-loadgen

echo "-- training a small INT_ADD model"
"$TMP/tevot-train" -fu INT_ADD -cycles 300 -seed 1 -savemodels "$TMP" \
	-run-json "$TMP/train-run.json" >/dev/null 2>"$TMP/train.log" || {
	echo "FAIL: training"; cat "$TMP/train.log"; exit 1; }

echo "-- booting tevot-serve (batch 8, 1ms wait)"
"$TMP/tevot-serve" -model "$TMP/int_add.tevot" -addr 127.0.0.1:0 \
	-batch 8 -batch-wait 1ms -workers 2 -queue 64 \
	-run-json "$TMP/serve-run.json" >/dev/null 2>"$TMP/serve.log" &
SERVE_PID=$!

ADDR=""
i=0
while [ $i -lt 100 ]; do
	ADDR=$(grep -o 'addr=http://[0-9.:]*' "$TMP/serve.log" 2>/dev/null | head -1 | cut -d= -f2) || true
	[ -n "$ADDR" ] && break
	kill -0 "$SERVE_PID" 2>/dev/null || { echo "FAIL: server died at startup"; cat "$TMP/serve.log"; exit 1; }
	sleep 0.1
	i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "FAIL: server never logged its address"; cat "$TMP/serve.log"; exit 1; }

echo "-- short open-loop ramp against $ADDR"
"$TMP/tevot-loadgen" -url "$ADDR" -rps 150,300 -step 1s -seed 7 \
	-out "$TMP/report.json" -run-json "$TMP/loadgen-run.json" \
	2>"$TMP/loadgen.log" || {
	echo "FAIL: loadgen exit"; cat "$TMP/loadgen.log"; exit 1; }

OKS=$(grep -o '"ok": *[0-9]*' "$TMP/report.json" | awk -F: '{s+=$2} END {print s+0}')
[ "$OKS" -gt 0 ] || { echo "FAIL: report has no OK completions"; cat "$TMP/report.json"; exit 1; }
echo "   $OKS OK completions across the ramp"

# Accounting identity on the aggregate counters. The loadgen has fully
# quiesced (its process exited), so these are settled totals.
curl -s "$ADDR/metrics" >"$TMP/serve.prom" || { echo "FAIL: /metrics scrape"; exit 1; }
val() {
	grep "^tevot_serve_${1}_total " "$TMP/serve.prom" | awk '{print $2}' | head -1
}
REQ=$(val requests); SRV=$(val served); SHD=$(val shed)
TMO=$(val timeouts); CAN=$(val canceled); BAD=$(val bad_requests); INT=$(val internal_errors)
for v in "$REQ" "$SRV" "$SHD" "$TMO" "$CAN" "$BAD" "$INT"; do
	[ -n "$v" ] || { echo "FAIL: missing serve counter on /metrics"; cat "$TMP/serve.prom"; exit 1; }
done
SUM=$((SRV + SHD + TMO + CAN + BAD + INT))
[ "$REQ" -eq "$SUM" ] || {
	echo "FAIL: accounting identity broken: requests=$REQ != served=$SRV + shed=$SHD + timeouts=$TMO + canceled=$CAN + bad=$BAD + internal=$INT"
	exit 1
}
echo "   accounting identity holds: requests=$REQ == outcome sum=$SUM"

kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "   server drained clean"
