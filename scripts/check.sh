#!/bin/sh
# Full hygiene gate: build, vet, and the whole test suite under the race
# detector. The runner/experiments packages are deliberately concurrent;
# any data race is a failing check, not a flake.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== lint: no raw print/log in library packages"
sh scripts/lintobs.sh

echo "== observability smoke: -debug-addr endpoint + run manifest"
go test -run 'TestDebugEndpointSmoke' ./cmd/tevot-sweep

echo "== metrics exposition smoke: /metrics strict-parses mid-run, tracing on"
go test -run 'TestMetricsExpositionSmoke' ./cmd/tevot-sweep

echo "== serve smoke: boot, predict, shed under tiny queue, corrupt reload, SIGTERM drain"
go test -run 'TestServeAbuseSmoke' ./cmd/tevot-serve

echo "== coalescer: flush policy, queued deadlines, drain, torn-model guard, 0-alloc hot path (race)"
go test -race -run \
	'TestFlushOn|TestDrainFlushesPartialBatch|TestBatchQueuedDeadline|TestReloadMidBatchGeneration|TestRetryAfterDerived|TestPerFU|TestAccountingIdentityPerFU' \
	./internal/serve
go test -run 'TestServeBatchHotPathAllocs' ./internal/serve

echo "== loadgen smoke: real processes, open-loop ramp, /metrics accounting identity"
sh scripts/loadgen_smoke.sh

echo "== signal handling: SIGTERM flushes checkpoint + finalizes manifest"
go test -run 'TestSigtermFlushesCheckpointAndManifest' ./cmd/tevot-sweep

echo "== kernel equivalence: calendar-queue vs reference heap, every FU"
go test -run 'TestKernelDiffFUs' ./internal/sim

echo "== memo equivalence: transition memo + bitslice windows vs uncached kernels"
go test -run 'TestKernelDiffRandom|TestMemo|TestBeginWindowErrors' ./internal/sim
go test -run 'TestMemoHitRateImagingStreams' ./internal/core

echo "== determinism: sharded DTA bit-identity + singleflight (race)"
go test -race -short -run \
	'TestCharacterizeShardingDeterminism|TestCharacterizeConcurrentSharedFUnit|TestStaticSingleflight' \
	./internal/core

echo "== distributed sweep: local cluster under race, kills + forced expiry, fleet telemetry"
go test -race -run 'TestLocalClusterByteIdentical|TestCoordinatorResumesFromJournal|TestClusterTelemetryAndTracing' ./internal/dist

echo "== distributed sweep smoke: real processes, SIGKILL a worker mid-run"
sh scripts/cluster_smoke.sh

echo "== chaos soak (short profile): seeded network/disk/clock fault schedules"
sh scripts/chaos_soak.sh -short

echo "== go test -race ./..."
go test -race ./...

echo "ok"
