#!/bin/sh
# Batching A/B saturation study.
#
# Trains one small INT_ADD model, then ramps the SAME open-loop
# schedule (same seed) against the serving stack twice in tevot-loadgen's
# in-process mode: coalescing ON (-inproc-batch 64) vs OFF
# (-inproc-batch 1). Writes LOADGEN_saturation.json holding both full
# reports plus a summary comparing sustained RPS at the p99 bound, and
# fails unless batching sustained more load.
#
# In-process dispatch (no sockets) is deliberate: client and server
# share cores on a CI box, and the kernel network path — identical in
# both arms — otherwise dominates per-request cost and buries the
# server-side difference in scheduler noise. The full handler →
# admission → coalescer → inference → accounting path stays under
# measurement; scripts/loadgen_smoke.sh covers the socket path with
# real processes.
#
# Usage: sh scripts/loadgen_ab.sh [out.json]
set -eu
cd "$(dirname "$0")/.."
OUT="${1:-LOADGEN_saturation.json}"

RPS="${AB_RPS:-16000,20000,24000,28000,32000}"
STEP="${AB_STEP:-5s}"
P99_BOUND="${AB_P99_BOUND:-50}"

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

echo "-- building binaries"
go build -o "$TMP/tevot-train" ./cmd/tevot-train
go build -o "$TMP/tevot-loadgen" ./cmd/tevot-loadgen

echo "-- training a small INT_ADD model"
"$TMP/tevot-train" -fu INT_ADD -cycles 300 -seed 1 -savemodels "$TMP" \
	-run-json "$TMP/train-run.json" >/dev/null 2>"$TMP/train.log" || {
	echo "FAIL: training"; cat "$TMP/train.log"; exit 1; }

# run_arm <label> <batch-size> — one full ramp, in-process stack.
run_arm() {
	label="$1"; batch="$2"
	echo "-- arm $label: -inproc-batch $batch, ramp $RPS @ $STEP/step"
	"$TMP/tevot-loadgen" -inproc-model "$TMP/int_add.tevot" \
		-inproc-batch "$batch" -inproc-batch-wait 2ms -inproc-workers 2 -inproc-queue 256 \
		-rps "$RPS" -step "$STEP" -settle 1s -seed 7 \
		-p99-bound "$P99_BOUND" -inflight 512 \
		-out "$TMP/$label.json" -run-json "$TMP/loadgen-$label-run.json" \
		2>"$TMP/loadgen-$label.log" || {
		echo "FAIL: $label loadgen"; cat "$TMP/loadgen-$label.log"; exit 1; }
}

run_arm batching_on 64
run_arm batching_off 1

python3 - "$TMP/batching_on.json" "$TMP/batching_off.json" "$OUT" \
	"$RPS" "$STEP" <<'EOF'
import json, sys

on = json.load(open(sys.argv[1]))
off = json.load(open(sys.argv[2]))
s_on, s_off = on["sustained_rps"], off["sustained_rps"]
out = {
    "mode": "in-process server stack (tevot-loadgen -inproc-model)",
    "ramp_rps": sys.argv[4],
    "step_duration": sys.argv[5],
    "p99_bound_ms": on["p99_bound_ms"],
    "summary": {
        "batching_on_sustained_rps": s_on,
        "batching_off_sustained_rps": s_off,
        "speedup": round(s_on / s_off, 3) if s_off else None,
    },
    "batching_on": on,
    "batching_off": off,
}
with open(sys.argv[3], "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
print(f"sustained RPS at p99<={on['p99_bound_ms']}ms: "
      f"batching on {s_on:.1f} vs off {s_off:.1f}")
if not s_on or s_on <= s_off:
    print("FAIL: batching did not sustain more load")
    sys.exit(1)
EOF
echo "wrote $OUT"
