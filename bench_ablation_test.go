// Ablation benchmarks for the design choices DESIGN.md calls out:
// history features (the paper's own TEVoT-NH ablation), forest size,
// training-set size, and adder topology (how much of the workload
// effect comes from long data-dependent carry chains).
package tevot_test

import (
	"fmt"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/ml"
	"tevot/internal/netlist"
	"tevot/internal/workload"
)

// ablationSetup characterizes train/test traces for one FU at one corner
// with a 10 % overclock.
func ablationSetup(b *testing.B, fu circuits.FU, trainN, testN int) (u *core.FUnit, train, test *core.Trace) {
	b.Helper()
	u, err := core.NewFUnit(fu)
	if err != nil {
		b.Fatal(err)
	}
	corner := cells.Corner{V: 0.85, T: 25}
	trainS := workload.Random(fu.IsFloat(), trainN+1, 11)
	testS := workload.Random(fu.IsFloat(), testN+1, 12)
	if _, err := u.CalibrateBaseClock(corner, trainS); err != nil {
		b.Fatal(err)
	}
	train, err = core.CharacterizeWithSpeedups(u, corner, trainS, []float64{0.10})
	if err != nil {
		b.Fatal(err)
	}
	test, err = core.CharacterizeWithSpeedups(u, corner, testS, []float64{0.10})
	if err != nil {
		b.Fatal(err)
	}
	return u, train, test
}

// BenchmarkAblationHistoryFeature contrasts TEVoT with TEVoT-NH on the
// FP adder (where alignment-shift paths depend on the operand pair and
// its predecessor).
func BenchmarkAblationHistoryFeature(b *testing.B) {
	_, train, test := ablationSetup(b, circuits.FPAdd32, 2500, 900)
	var withH, withoutH float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		m, err := core.Train(circuits.FPAdd32, []*core.Trace{train}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		_, withH, err = core.EvaluateAll(m, []*core.Trace{test})
		if err != nil {
			b.Fatal(err)
		}
		cfg.History = false
		nh, err := core.Train(circuits.FPAdd32, []*core.Trace{train}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		_, withoutH, err = core.EvaluateAll(nh, []*core.Trace{test})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*withH, "with-history-acc-%")
	b.ReportMetric(100*withoutH, "no-history-acc-%")
}

// BenchmarkAblationTreeCount sweeps the forest size on the FP adder.
func BenchmarkAblationTreeCount(b *testing.B) {
	_, train, test := ablationSetup(b, circuits.FPAdd32, 2000, 700)
	for _, trees := range []int{1, 5, 10, 25} {
		b.Run(fmt.Sprintf("trees=%d", trees), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Forest = ml.DefaultForestConfig(ml.Regression)
				cfg.Forest.Trees = trees
				m, err := core.Train(circuits.FPAdd32, []*core.Trace{train}, cfg)
				if err != nil {
					b.Fatal(err)
				}
				_, acc, err = core.EvaluateAll(m, []*core.Trace{test})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*acc, "acc-%")
		})
	}
}

// BenchmarkAblationTrainingSize sweeps the training-set size.
func BenchmarkAblationTrainingSize(b *testing.B) {
	for _, n := range []int{250, 1000, 4000} {
		b.Run(fmt.Sprintf("cycles=%d", n), func(b *testing.B) {
			_, train, test := ablationSetup(b, circuits.FPAdd32, n, 700)
			var acc float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := core.Train(circuits.FPAdd32, []*core.Trace{train}, core.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				_, acc, err = core.EvaluateAll(m, []*core.Trace{test})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*acc, "acc-%")
		})
	}
}

// BenchmarkAblationAdderTopology contrasts the dynamic-delay spread of
// the ripple-carry adder against the carry-lookahead version: the
// shorter, flatter CLA paths compress the delay distribution, which is
// the structural reason workload-aware modeling pays off most on long
// serial chains.
func BenchmarkAblationAdderTopology(b *testing.B) {
	corner := cells.Corner{V: 0.85, T: 25}
	s := workload.RandomInt(801, 21)
	for _, topo := range []string{"ripple", "lookahead", "carry-select"} {
		b.Run(topo, func(b *testing.B) {
			var nl *netlist.Netlist
			switch topo {
			case "ripple":
				nl = circuits.NewRippleAdder(32)
			case "lookahead":
				nl = circuits.NewCLAAdder(32)
			case "carry-select":
				nl = circuits.NewCarrySelectAdder(32, 4)
			}
			u, err := core.NewFUnitFromNetlist(circuits.IntAdd32, nl)
			if err != nil {
				b.Fatal(err)
			}
			static, err := u.Static(corner)
			if err != nil {
				b.Fatal(err)
			}
			var mean, max float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr, err := core.Characterize(u, corner, s, nil)
				if err != nil {
					b.Fatal(err)
				}
				mean, max = tr.MeanDelay(), tr.MaxDelay
			}
			b.ReportMetric(mean, "mean-ps")
			b.ReportMetric(max, "max-ps")
			b.ReportMetric(static.Delay, "static-ps")
		})
	}
}

// BenchmarkAblationMultiplierTopology contrasts the row-ripple array
// multiplier with the Wallace tree on the full 16×16 product: the tree
// compresses depth and with it the dynamic-delay spread.
func BenchmarkAblationMultiplierTopology(b *testing.B) {
	corner := cells.Corner{V: 0.85, T: 25}
	s := workload.RandomInt(301, 22)
	narrow := func(p workload.OperandPair) workload.OperandPair {
		return workload.OperandPair{A: p.A & 0xFFFF, B: p.B & 0xFFFF}
	}
	pairs := make([]workload.OperandPair, len(s.Pairs))
	for i, p := range s.Pairs {
		pairs[i] = narrow(p)
	}
	s16 := &workload.Stream{Name: "random16", Pairs: pairs}

	for _, topo := range []string{"array", "wallace"} {
		b.Run(topo, func(b *testing.B) {
			var nl *netlist.Netlist
			if topo == "array" {
				nl = circuits.NewFullMultiplier(16)
			} else {
				nl = circuits.NewWallaceMultiplier(16)
			}
			u, err := core.NewFUnitFromNetlist(circuits.IntMul32, nl)
			if err != nil {
				b.Fatal(err)
			}
			// The 16-bit generators have 32 inputs; feed only low halves.
			static, err := u.Static(corner)
			if err != nil {
				b.Fatal(err)
			}
			var mean, max float64
			var events int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr, err := characterize16(u, corner, s16)
				if err != nil {
					b.Fatal(err)
				}
				mean, max, events = tr.mean, tr.max, tr.events
			}
			b.ReportMetric(mean, "mean-ps")
			b.ReportMetric(max, "max-ps")
			b.ReportMetric(static.Delay, "static-ps")
			b.ReportMetric(float64(events)/float64(len(s16.Pairs)-1), "events/cycle")
		})
	}
}

type charStats struct {
	mean, max float64
	events    int
}

// characterize16 runs a 16-bit-operand stream through a 32-input
// netlist (two 16-bit operands) directly with the simulator, since
// core.Characterize assumes the 64-input FU shape.
func characterize16(u *core.FUnit, corner cells.Corner, s *workload.Stream) (charStats, error) {
	r, err := u.NewRunner(corner)
	if err != nil {
		return charStats{}, err
	}
	enc := func(p workload.OperandPair) []bool {
		v := make([]bool, 32)
		for i := 0; i < 16; i++ {
			v[i] = p.A>>i&1 == 1
			v[16+i] = p.B>>i&1 == 1
		}
		return v
	}
	var st charStats
	sum := 0.0
	prev := enc(s.Pairs[0])
	for i := 1; i < len(s.Pairs); i++ {
		res, err := r.Cycle(prev, enc(s.Pairs[i]))
		if err != nil {
			return charStats{}, err
		}
		sum += res.Delay
		if res.Delay > st.max {
			st.max = res.Delay
		}
		st.events += res.Events
		prev = nil
	}
	st.mean = sum / float64(len(s.Pairs)-1)
	return st, nil
}
