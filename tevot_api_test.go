package tevot_test

import (
	"bytes"

	"testing"

	"tevot"
)

// TestPublicAPIFlow exercises the exact sequence the package doc
// advertises, through the facade only.
func TestPublicAPIFlow(t *testing.T) {
	fu, err := tevot.NewFunctionalUnit(tevot.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	corner := tevot.Corner{V: 0.85, T: 50}
	train := tevot.RandomWorkload(tevot.IntAdd32, 800, 1)
	base, err := fu.CalibrateBaseClock(corner, train)
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 {
		t.Fatal("non-positive base clock")
	}
	trace, err := tevot.CharacterizeWithSpeedups(fu, corner, train, []float64{0.10})
	if err != nil {
		t.Fatal(err)
	}
	if trace.Cycles() != 800 {
		t.Fatalf("trace has %d cycles, want 800", trace.Cycles())
	}
	model, err := tevot.Train(tevot.IntAdd32, []*tevot.Trace{trace}, tevot.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	test := tevot.RandomWorkload(tevot.IntAdd32, 300, 2)
	errs, err := model.PredictErrors(corner, test, base/1.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 300 {
		t.Fatalf("got %d predictions for 300 cycles", len(errs))
	}
	testTrace, err := tevot.CharacterizeWithSpeedups(fu, corner, test, []float64{0.10})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := tevot.Evaluate(model, testTrace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0.8 {
		t.Errorf("facade-flow accuracy %.3f suspiciously low", ev.Accuracy)
	}
}

// TestPublicAPIBaselines builds the baselines through the facade and
// confirms they are interchangeable with the TEVoT model.
func TestPublicAPIBaselines(t *testing.T) {
	fu, err := tevot.NewFunctionalUnit(tevot.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	corner := tevot.Corner{V: 0.81, T: 0}
	train := tevot.RandomWorkload(tevot.IntAdd32, 600, 3)
	if _, err := fu.CalibrateBaseClock(corner, train); err != nil {
		t.Fatal(err)
	}
	trace, err := tevot.CharacterizeWithSpeedups(fu, corner, train, []float64{0.10})
	if err != nil {
		t.Fatal(err)
	}
	db, err := tevot.NewDelayBased(tevot.IntAdd32, []*tevot.Trace{trace})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := tevot.NewTERBased(tevot.IntAdd32, []*tevot.Trace{trace}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []tevot.ErrorPredictor{db, tb} {
		_, acc, err := tevot.EvaluateAll(p, []*tevot.Trace{trace})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if acc < 0 || acc > 1 {
			t.Fatalf("%s: accuracy %v", p.Name(), acc)
		}
	}
}

// TestPublicAPIPersistence round-trips a trained model through the
// facade's Save/LoadModel.
func TestPublicAPIPersistence(t *testing.T) {
	fu, err := tevot.NewFunctionalUnit(tevot.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	corner := tevot.Corner{V: 0.9, T: 25}
	s := tevot.RandomWorkload(tevot.IntAdd32, 400, 5)
	trace, err := tevot.Characterize(fu, corner, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	model, err := tevot.Train(tevot.IntAdd32, []*tevot.Trace{trace}, tevot.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := tevot.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cur, prev := s.Pairs[1], s.Pairs[0]
	if loaded.PredictDelay(corner, cur, prev) != model.PredictDelay(corner, cur, prev) {
		t.Fatal("loaded model predicts differently")
	}
}

func TestTableIGridFacade(t *testing.T) {
	g := tevot.TableIGrid()
	if got := len(g.Corners()); got != 100 {
		t.Fatalf("grid has %d corners, want 100", got)
	}
	if len(tevot.AllFUs) != 4 {
		t.Fatalf("AllFUs has %d entries", len(tevot.AllFUs))
	}
}
