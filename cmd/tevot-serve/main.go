// Command tevot-serve is the hardened online prediction service: it
// loads one or more trained model gobs (tevot-train -savemodels) and
// serves per-cycle delay and timing-error predictions over HTTP with
// the failure modes of a production predictor handled explicitly —
// request coalescing into shared inference batches, per-FU model
// sharding, admission control with load shedding, per-request
// deadlines, panic isolation, graceful drain on SIGINT/SIGTERM, and
// validated model hot-reload on SIGHUP or POST /admin/reload.
//
// Endpoints:
//
//	GET  /healthz            liveness
//	GET  /readyz             readiness (503 once draining)
//	GET  /metrics            Prometheus exposition
//	POST /v1/predict         {"voltage","temperature","pairs","clocks"}
//	POST /v1/predict/{fu}    same, routed to one functional unit's shard
//	POST /admin/reload       {"path","fu"} (both optional)
//
// Example:
//
//	tevot-train -fu INT_ADD -savemodels models
//	tevot-serve -model models/INT_ADD.tevot -model models/INT_MUL.tevot -addr :8080
//	curl -s localhost:8080/v1/predict/INT_MUL -d '{"voltage":0.9,"temperature":25,
//	  "pairs":[{"a":1,"b":2},{"a":3,"b":4}],"clocks":[700]}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"tevot/internal/core"
	"tevot/internal/obs"
	"tevot/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tevot-serve: ")
	var modelPaths []string
	flag.Func("model", "trained model gob from tevot-train -savemodels (repeatable: one shard per functional unit; the first is the default /v1/predict unit)", func(v string) error {
		modelPaths = append(modelPaths, v)
		return nil
	})
	var (
		addr      = flag.String("addr", ":8080", "listen address (\":0\" picks a port)")
		workers   = flag.Int("workers", 0, "total inference worker count, spread across units (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "per-unit admission queue depth; a full unit sheds with 429")
		batchSize = flag.Int("batch", 32, "coalesce up to this many requests into one inference batch (1 = no coalescing)")
		batchWait = flag.Duration("batch-wait", 2*time.Millisecond, "max time the first request in a batch waits for riders before flushing")
		batchRows = flag.Int("batch-rows", 8192, "flush a batch once it holds this many predicted cycles")
		reqTO     = flag.Duration("req-timeout", 5*time.Second, "server-side per-request deadline; expiry answers 503")
		drainTO   = flag.Duration("drain-timeout", 15*time.Second, "graceful-drain deadline on SIGINT/SIGTERM")
		maxBody   = flag.Int64("max-body", 8<<20, "request body cap in bytes; larger bodies answer 413")
		maxPairs  = flag.Int("max-pairs", 4097, "operand pairs per request cap")
		auditN    = flag.Int("audit-cycles", 0, "simulate this many cycles at startup and report model-vs-ground-truth RMSE per unit (0 = off)")
		memoSet   = flag.String("memo", "on", "transition memo cache for the startup audit: on, off, or an entry cap")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	// The /progress payload source outlives server construction, so it
	// indirects through a pointer installed once serve.New succeeds.
	var srvPtr atomic.Pointer[serve.Server]
	progress := func() any {
		if s := srvPtr.Load(); s != nil {
			return s.Progress()
		}
		return map[string]any{"status": "starting"}
	}
	run, err := obsFlags.Start("tevot-serve", 0, progress)
	if err != nil {
		log.Fatal(err) // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}
	defer run.Close()

	if len(modelPaths) == 0 {
		run.Fatal("-model is required (train one with: tevot-train -savemodels <dir>)")
	}
	var entries []serve.ModelEntry
	for _, p := range modelPaths {
		f, err := os.Open(p)
		if err != nil {
			run.Fatal(err)
		}
		model, err := core.LoadModel(f)
		f.Close()
		if err != nil {
			run.Fatalf("loading %s: %v", p, err)
		}
		entries = append(entries, serve.ModelEntry{Model: model, Path: p})
	}

	if *auditN > 0 {
		memo, err := core.ParseMemoSetting(*memoSet)
		if err != nil {
			run.Fatal(err)
		}
		for _, e := range entries {
			rep, err := serve.Audit(context.Background(), e.Model, serve.AuditConfig{
				Cycles: *auditN, Seed: 1, MemoOff: memo.MemoOff, MemoSize: memo.MemoSize,
			})
			if err != nil {
				run.Fatal(err)
			}
			run.Note("startup audit "+e.Model.FU.String(), rep)
		}
	}

	s, err := serve.New(serve.Config{
		Addr:           *addr,
		Models:         entries,
		Workers:        *workers,
		QueueDepth:     *queue,
		BatchSize:      *batchSize,
		MaxBatchRows:   *batchRows,
		MaxWait:        *batchWait,
		RequestTimeout: *reqTO,
		DrainTimeout:   *drainTO,
		MaxBodyBytes:   *maxBody,
		MaxPairs:       *maxPairs,
	})
	if err != nil {
		run.Fatal(err)
	}
	srvPtr.Store(s)

	// SIGINT/SIGTERM start the graceful drain; SIGHUP hot-reloads every
	// unit's model from its path through the same validated path as
	// /admin/reload.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if err := s.ReloadAll(); err != nil {
				run.Log.Error("SIGHUP reload rejected; still serving the old model(s)", "err", err)
			} else {
				run.Log.Info("SIGHUP reload complete", "generation", s.Generation())
			}
		}
	}()

	err = s.ListenAndServe(ctx)
	run.Note("serving", s.Progress())
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// In-flight requests outlived the drain deadline and were cut;
			// the manifest records the run as interrupted rather than clean.
			run.SetInterrupted()
			run.Log.Warn("drain forced after deadline")
			run.Exit(1)
		}
		run.Fatal(err)
	}
	run.Exit(0)
}
