package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/workload"
)

// TestServeAbuseSmoke is the end-to-end hardening check from ISSUE
// acceptance: build the binary, boot it on an ephemeral port with a
// deliberately tiny admission queue, then abuse it — a concurrent burst
// past queue capacity, a corrupt-gob hot-reload, and SIGTERM with a
// request in flight. Every predict must answer 200/429/503 (never a
// crash or a 500), the corrupt reload must be rejected while serving
// continues, the in-flight request must complete through the drain, and
// the final manifest's counters must account for every request:
//
//	requests == served + shed + timeouts + canceled + bad_requests
//	            + internal_errors
func TestServeAbuseSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI")
	}
	dir := t.TempDir()

	// Train a small model and write the artifacts the run needs: a good
	// gob to serve, and a corrupt one for the reload abuse.
	u, err := core.NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.Characterize(u, cells.Corner{V: 0.88, T: 50}, workload.RandomInt(401, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.Train(circuits.IntAdd32, []*core.Trace{tr}, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var gob bytes.Buffer
	if err := model.Save(&gob); err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "model.tevot")
	if err := os.WriteFile(modelPath, gob.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	corruptPath := filepath.Join(dir, "corrupt.tevot")
	if err := os.WriteFile(corruptPath, gob.Bytes()[:gob.Len()/4], 0o644); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(dir, "tevot-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	manifest := filepath.Join(dir, "run.json")
	cmd := exec.Command(bin,
		"-model", modelPath, "-addr", "127.0.0.1:0",
		"-workers", "1", "-queue", "1", "-drain-timeout", "10s",
		"-max-pairs", "100001", "-run-json", manifest,
		"-debug-addr", "127.0.0.1:0",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Both endpoints log their bound address (":0" runs): the obs debug
	// endpoint first, then the prediction listener.
	addrRe := regexp.MustCompile(`addr=(http://[0-9.:]+)`)
	var base, debugBase string
	var logTail strings.Builder
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		logTail.WriteString(line + "\n")
		m := addrRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if strings.Contains(line, "debug endpoint") {
			debugBase = m[1]
		} else if strings.Contains(line, "prediction endpoint") {
			base = m[1]
		}
		if base != "" && debugBase != "" {
			break
		}
	}
	if base == "" || debugBase == "" {
		t.Fatalf("missing listen addresses in stderr (predict %q, debug %q):\n%s",
			base, debugBase, logTail.String())
	}
	go func() {
		for sc.Scan() {
		}
	}()

	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(base + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	// Predict round-trip before the abuse starts.
	body := predictBody(64)
	status, data := post(t, base+"/v1/predict", body)
	if status != http.StatusOK {
		t.Fatalf("warm-up predict: %d: %s", status, data)
	}
	var warm struct {
		Delays []float64     `json:"delays"`
		Clocks []interface{} `json:"clocks"`
	}
	if err := json.Unmarshal(data, &warm); err != nil || len(warm.Delays) != 63 {
		t.Fatalf("warm-up predict response: %v: %s", err, data)
	}

	// Abuse 1 — burst far past queue capacity (1 worker, 1 queue slot, 40
	// concurrent heavy requests): every response must be 200, 429, or
	// 503, with shedding actually observed. The batches are big enough
	// (50k pairs each) that one inference takes tens of milliseconds —
	// the burst piles up against the 1-deep queue instead of draining as
	// fast as connections open.
	burst := predictBody(50000)
	var wg sync.WaitGroup
	statuses := make([]int, 40)
	burstErrs := make(chan error, len(statuses))
	for i := range statuses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, _, err := tryPost(base+"/v1/predict", burst)
			if err != nil {
				burstErrs <- err
				return
			}
			statuses[i] = st
		}(i)
	}
	wg.Wait()
	close(burstErrs)
	for err := range burstErrs {
		t.Errorf("burst request failed at the transport: %v", err)
	}
	counts := map[int]int{}
	for _, st := range statuses {
		counts[st]++
		switch st {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Errorf("burst answered %d; want only 200/429/503", st)
		}
	}
	if counts[http.StatusOK] == 0 {
		t.Errorf("burst: no request served: %v", counts)
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Errorf("burst past a 1-deep queue shed nothing: %v", counts)
	}

	// Abuse 2 — corrupt-gob reload is rejected and serving continues.
	status, data = post(t, base+"/admin/reload", `{"path":"`+corruptPath+`"}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt reload: %d, want 422: %s", status, data)
	}
	status, data = post(t, base+"/v1/predict", body)
	if status != http.StatusOK {
		t.Fatalf("predict after corrupt reload: %d: %s", status, data)
	}
	// A good reload (empty body → -model path) must still work.
	status, data = post(t, base+"/admin/reload", "")
	if status != http.StatusOK {
		t.Fatalf("good reload: %d: %s", status, data)
	}

	// Abuse 3 — SIGTERM with a request in flight: the drain must answer
	// it over HTTP (200 once admitted, or an orderly 429 if the signal
	// wins the race into the handler), then the process must exit 0. The
	// signal is sent only once serve.requests shows the handler has
	// entered, so the request is never lost to a closed listener.
	before := serveRequests(t, debugBase)
	inflight := make(chan int, 1)
	go func() {
		st, _, err := tryPost(base+"/v1/predict", burst)
		if err != nil {
			t.Logf("in-flight POST transport error: %v", err)
			st = -1
		}
		inflight <- st
	}()
	deadline := time.Now().Add(10 * time.Second)
	for serveRequests(t, debugBase) <= before {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight request never reached the handler (requests=%d, before=%d)",
				serveRequests(t, debugBase), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case st := <-inflight:
		if st != http.StatusOK && st != http.StatusTooManyRequests {
			t.Errorf("in-flight request during drain answered %d, want 200 (drained) or 429 (shed while draining)", st)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight request never answered during drain")
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with error after SIGTERM: %v\nlog:\n%s", err, logTail.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}

	// The manifest must exist and its counters must account for every
	// request in exactly one outcome.
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("run manifest not written: %v", err)
	}
	var m struct {
		Command  string `json:"command"`
		ExitCode int    `json:"exit_code"`
		Metrics  struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest not JSON: %v\n%s", err, raw)
	}
	if m.Command != "tevot-serve" || m.ExitCode != 0 {
		t.Errorf("manifest command/exit = %q/%d, want tevot-serve/0", m.Command, m.ExitCode)
	}
	c := m.Metrics.Counters
	total := c["serve.served"] + c["serve.shed"] + c["serve.timeouts"] +
		c["serve.canceled"] + c["serve.bad_requests"] + c["serve.internal_errors"]
	if c["serve.requests"] == 0 || c["serve.requests"] != total {
		t.Errorf("accounting identity broken: requests=%d, outcomes sum=%d (%v)",
			c["serve.requests"], total, c)
	}
	if c["serve.internal_errors"] != 0 || c["serve.panics"] != 0 {
		t.Errorf("abuse run hit internal errors/panics: %v", c)
	}
	if c["serve.reloads_failed"] != 1 || c["serve.reloads_ok"] != 1 {
		t.Errorf("reload counters = ok:%d failed:%d, want 1/1", c["serve.reloads_ok"], c["serve.reloads_failed"])
	}
	if c["serve.shed"] == 0 {
		t.Errorf("manifest records no shed requests: %v", c)
	}
}

// serveRequests reads the serve.requests counter off the live debug
// endpoint's expvar page.
func serveRequests(t *testing.T, debugBase string) int64 {
	t.Helper()
	resp, err := http.Get(debugBase + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	var vars struct {
		Tevot struct {
			Metrics struct {
				Counters map[string]int64 `json:"counters"`
			} `json:"metrics"`
		} `json:"tevot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("decoding /debug/vars: %v", err)
	}
	return vars.Tevot.Metrics.Counters["serve.requests"]
}

// post fires one POST with a JSON body and returns (status, body);
// transport-level errors fail the test immediately — the abuse contract
// is that the server always answers. Only call from the test goroutine;
// concurrent callers use tryPost and report through channels.
func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	status, data, err := tryPost(url, body)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return status, data
}

func tryPost(url, body string) (int, []byte, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// predictBody builds a valid /v1/predict body with n operand pairs.
func predictBody(n int) string {
	var b strings.Builder
	b.WriteString(`{"voltage":0.88,"temperature":50,"clocks":[400,700],"pairs":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"a":%d,"b":%d}`, uint32(i)*2654435761, uint32(i)*40503+99991)
	}
	b.WriteString("]}")
	return b.String()
}
