// Command tevot-loadgen drives a running tevot-serve instance with
// open-loop Poisson traffic through a ramp schedule and reports the
// saturation curve: offered vs achieved RPS, outcome mix, and latency
// quantiles per step, as JSON (and optionally CSV). Open-loop means
// arrivals fire on the seeded schedule regardless of how fast the
// server answers — the discipline that exposes real saturation instead
// of the coordinated-omission blind spot of closed-loop clients.
//
// Example A/B (batching on vs off):
//
//	tevot-serve -model m.tevot -addr :8080 -batch 64 &
//	tevot-loadgen -url http://127.0.0.1:8080 -rps 200,500,1000,2000 -step 5s -out on.json
//	tevot-serve -model m.tevot -addr :8080 -batch 1 &
//	tevot-loadgen -url http://127.0.0.1:8080 -rps 200,500,1000,2000 -step 5s -out off.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"tevot/internal/core"
	"tevot/internal/loadgen"
	"tevot/internal/obs"
	"tevot/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tevot-loadgen: ")
	var (
		url      = flag.String("url", "", "target server base URL, e.g. http://127.0.0.1:8080 (required)")
		fu       = flag.String("fu", "", "target one functional unit via /v1/predict/{fu} (default: legacy /v1/predict)")
		pairs    = flag.Int("pairs", 3, "operand pairs per request (pairs-1 predicted cycles)")
		clocks   = flag.String("clocks", "", "comma-separated clock periods in ps each request asks verdicts for")
		voltage  = flag.Float64("voltage", 0.88, "operating-corner supply voltage (V)")
		temp     = flag.Float64("temperature", 50, "operating-corner temperature (°C)")
		seed     = flag.Int64("seed", 1, "arrival-process and operand-stream seed")
		inflight = flag.Int("inflight", 256, "max outstanding requests; arrivals beyond it are counted skipped")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
		rpsList  = flag.String("rps", "100,250,500,1000", "comma-separated offered-RPS ramp schedule")
		stepDur  = flag.Duration("step", 5*time.Second, "duration of each ramp step")
		settle   = flag.Duration("settle", 0, "exclude each step's first SETTLE of arrivals from the latency quantiles (outcomes still counted)")
		outPath  = flag.String("out", "", "write the JSON report here (default stdout)")
		csvPath  = flag.String("csv", "", "also write a per-step CSV here")
		p99Bound = flag.Float64("p99-bound", 50, "p99 bound (ms) for the sustained-RPS summary")

		// Server-stack saturation mode: boot the serving stack inside
		// this process and dispatch to it directly, no sockets. On a
		// host where client and server would share cores, the kernel
		// network path (identical in any A/B) dominates per-request
		// cost; this mode puts the handler → coalescer → inference
		// pipeline itself under the ramp.
		inprocModel   = flag.String("inproc-model", "", "run in-process: load this model gob, boot the serving stack internally, dispatch directly (ignores -url)")
		inprocBatch   = flag.Int("inproc-batch", 32, "in-process server batch size (1 = no coalescing)")
		inprocWait    = flag.Duration("inproc-batch-wait", 2*time.Millisecond, "in-process server max batch wait")
		inprocWorkers = flag.Int("inproc-workers", 0, "in-process server worker count (0 = GOMAXPROCS)")
		inprocQueue   = flag.Int("inproc-queue", 256, "in-process server admission queue depth")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	var stepIdx atomic.Int64
	progress := func() any {
		return map[string]any{"status": "ramping", "step": stepIdx.Load()}
	}
	run, err := obsFlags.Start("tevot-loadgen", *seed, progress)
	if err != nil {
		log.Fatal(err) // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}
	defer run.Close()

	if *url == "" && *inprocModel == "" {
		run.Fatal("-url is required (start a server with: tevot-serve -model <gob>), or use -inproc-model")
	}
	var steps []loadgen.Step
	for _, part := range strings.Split(*rpsList, ",") {
		rps, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			run.Fatalf("bad -rps entry %q: %v", part, err)
		}
		steps = append(steps, loadgen.Step{RPS: rps, Duration: *stepDur})
	}
	var clks []float64
	if *clocks != "" {
		for _, part := range strings.Split(*clocks, ",") {
			c, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				run.Fatalf("bad -clocks entry %q: %v", part, err)
			}
			clks = append(clks, c)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := loadgen.Config{
		URL: *url, FU: *fu, Pairs: *pairs, Clocks: clks,
		Voltage: *voltage, Temperature: *temp, Seed: *seed,
		MaxInflight: *inflight, Timeout: *timeout, Steps: steps, Settle: *settle,
	}
	if *inprocModel != "" {
		f, err := os.Open(*inprocModel)
		if err != nil {
			run.Fatal(err)
		}
		model, err := core.LoadModel(f)
		f.Close()
		if err != nil {
			run.Fatalf("loading %s: %v", *inprocModel, err)
		}
		srv, err := serve.New(serve.Config{
			Models:     []serve.ModelEntry{{Model: model, Path: *inprocModel}},
			Workers:    *inprocWorkers,
			QueueDepth: *inprocQueue,
			BatchSize:  *inprocBatch,
			MaxWait:    *inprocWait,
		})
		if err != nil {
			run.Fatal(err)
		}
		defer srv.Close()
		cfg.URL = "http://inproc"
		cfg.Client = &http.Client{
			Transport: loadgen.HandlerTransport{Handler: srv.Handler()},
		}
		run.Log.Info("in-process serving stack up", "fu", model.FU.String(),
			"batch", *inprocBatch, "batch_wait", *inprocWait)
	}
	run.Log.Info("ramp starting", "url", *url, "steps", len(steps),
		"step_duration", *stepDur, "pairs", *pairs, "inflight_cap", *inflight)

	// Narrate step progress from a schedule shadow: Run owns the loop.
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(*stepDur)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				stepIdx.Add(1)
			case <-ctx.Done():
				return
			case <-done:
				return
			}
		}
	}()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		run.Fatal(err)
	}

	for _, s := range rep.Steps {
		run.Log.Info("step done", "offered_rps", s.OfferedRPS,
			"achieved_rps", fmt.Sprintf("%.1f", s.AchievedRPS),
			"ok", s.OK, "shed", s.Shed, "unavailable", s.Unavailable,
			"skipped", s.Skipped,
			"p50_ms", fmt.Sprintf("%.2f", s.P50Ms), "p99_ms", fmt.Sprintf("%.2f", s.P99Ms))
	}
	sustained := rep.MaxSustainedRPS(*p99Bound, 0.01)
	rep.SustainedRPS, rep.P99BoundMs = sustained, *p99Bound
	run.Log.Info("saturation summary",
		"sustained_rps", fmt.Sprintf("%.1f", sustained), "p99_bound_ms", *p99Bound)
	run.Note("saturation", map[string]any{
		"sustained_rps": sustained, "p99_bound_ms": *p99Bound, "steps": len(rep.Steps),
	})

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		run.Fatal(err)
	}
	data = append(data, '\n')
	if *outPath == "" {
		os.Stdout.Write(data) // lint:allow-raw-print (the report IS the output)
	} else if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		run.Fatal(err)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			run.Fatal(err)
		}
		if err := loadgen.WriteCSV(f, rep); err != nil {
			f.Close()
			run.Fatal(err)
		}
		if err := f.Close(); err != nil {
			run.Fatal(err)
		}
	}
	run.Exit(0)
}
