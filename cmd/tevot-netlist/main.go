// Command tevot-netlist inspects and exports the gate-level netlists of
// the functional units: composition statistics, structural Verilog, a
// Graphviz DOT rendering, and the effect of the constant-folding /
// dead-logic simplification pass.
//
// Examples:
//
//	tevot-netlist -fu FP_ADD -stats
//	tevot-netlist -fu INT_MUL -verilog intmul.v
//	tevot-netlist -fu INT_ADD -dot add.dot -simplify
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"tevot/internal/circuits"
	"tevot/internal/netlist"
	"tevot/internal/obs"
	"tevot/internal/verilog"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tevot-netlist: ")
	var (
		fuName   = flag.String("fu", "INT_ADD", "functional unit: INT_ADD, INT_MUL, FP_ADD, FP_MUL")
		stats    = flag.Bool("stats", true, "print composition statistics")
		vPath    = flag.String("verilog", "", "write structural Verilog to this file")
		dotPath  = flag.String("dot", "", "write a Graphviz DOT rendering to this file")
		simplify = flag.Bool("simplify", false, "run the simplification pass and report the result")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	run, err := obsFlags.Start("tevot-netlist", 0, nil)
	if err != nil {
		log.Fatal(err) // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}
	defer run.Close()

	fu, err := circuits.ParseFU(*fuName)
	if err != nil {
		run.Fatal(err)
	}
	nl, err := fu.Build()
	if err != nil {
		run.Fatal(err)
	}

	if *stats {
		depth, err := nl.Depth()
		if err != nil {
			run.Fatal(err)
		}
		fmt.Printf("%s: %d gates, %d nets, depth %d, %d inputs, %d outputs\n",
			nl.Name, nl.NumGates(), nl.NumNets(), depth,
			len(nl.PrimaryInputs), len(nl.PrimaryOutputs))
		counts := nl.GateCounts()
		kinds := make([]string, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return counts[kinds[i]] > counts[kinds[j]] })
		for _, k := range kinds {
			fmt.Printf("  %-6s %5d\n", k, counts[k])
		}
	}

	if *simplify {
		out, st, err := netlist.Simplify(nl)
		if err != nil {
			run.Fatal(err)
		}
		fmt.Printf("simplify: %d -> %d gates (%d folded, %d dead)\n",
			st.GatesBefore, st.GatesAfter, st.Folded, st.Dead)
		nl = out
	}

	if *vPath != "" {
		f, err := os.Create(*vPath)
		if err != nil {
			run.Fatal(err)
		}
		if err := verilog.Write(f, nl); err != nil {
			run.Fatal(err)
		}
		if err := f.Close(); err != nil {
			run.Fatal(err)
		}
		fmt.Printf("wrote Verilog to %s\n", *vPath)
	}

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			run.Fatal(err)
		}
		if err := nl.WriteDOT(f); err != nil {
			run.Fatal(err)
		}
		if err := f.Close(); err != nil {
			run.Fatal(err)
		}
		fmt.Printf("wrote DOT to %s\n", *dotPath)
	}
}
