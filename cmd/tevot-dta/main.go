// Command tevot-dta runs dynamic timing analysis for one functional
// unit at one operating corner: it generates the gate-level netlist,
// annotates it at the corner (optionally emitting the SDF file), runs
// back-annotated event-driven simulation over a random workload
// (optionally dumping a VCD), and prints the dynamic-delay statistics.
//
// Example:
//
//	tevot-dta -fu INT_ADD -v 0.81 -t 25 -cycles 5000 -sdf add.sdf -vcd add.vcd
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/liberty"
	"tevot/internal/sdf"
	"tevot/internal/sim"
	"tevot/internal/vcd"
	"tevot/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tevot-dta: ")
	var (
		fuName  = flag.String("fu", "INT_ADD", "functional unit: INT_ADD, INT_MUL, FP_ADD, FP_MUL")
		voltage = flag.Float64("v", 0.90, "supply voltage (V)")
		temp    = flag.Float64("t", 25, "temperature (°C)")
		cycles  = flag.Int("cycles", 2000, "simulated cycles")
		seed    = flag.Int64("seed", 1, "workload seed")
		sdfPath = flag.String("sdf", "", "write the corner's SDF annotation to this file")
		vcdPath = flag.String("vcd", "", "write the simulation VCD to this file")
		libPath = flag.String("lib", "", "write the corner's Liberty cell library to this file")
		shmoo   = flag.Int("shmoo", 0, "print a TER-vs-clock shmoo with this many points")
	)
	flag.Parse()

	fu, err := circuits.ParseFU(*fuName)
	if err != nil {
		log.Fatal(err)
	}
	u, err := core.NewFUnit(fu)
	if err != nil {
		log.Fatal(err)
	}
	corner := cells.Corner{V: *voltage, T: *temp}
	static, err := u.Static(corner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s @ %s: %d gates, static delay %.1f ps\n",
		fu, corner, u.NL.NumGates(), static.Delay)

	if *sdfPath != "" {
		f, err := sdf.FromAnnotation(u.NL, corner, static.GateDelay)
		if err != nil {
			log.Fatal(err)
		}
		w, err := os.Create(*sdfPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Write(w, u.NL); err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote SDF annotation to %s\n", *sdfPath)
	}

	if *libPath != "" {
		lib, err := liberty.FromScaling("tevot45", u.Opts.Scaling, corner)
		if err != nil {
			log.Fatal(err)
		}
		w, err := os.Create(*libPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := lib.Write(w); err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote Liberty library to %s\n", *libPath)
	}

	stream := workload.Random(fu.IsFloat(), *cycles+1, *seed)

	var tr *core.Trace
	if *vcdPath != "" {
		// Dump a VCD alongside the characterization by rerunning through
		// an observed runner.
		w, err := os.Create(*vcdPath)
		if err != nil {
			log.Fatal(err)
		}
		window := static.Delay * 1.5
		vw := vcd.NewWriter(w, u.NL, window)
		if err := vw.WriteHeader("tevot", "tevot-dta"); err != nil {
			log.Fatal(err)
		}
		r, err := sim.NewRunner(u.NL, static.GateDelay)
		if err != nil {
			log.Fatal(err)
		}
		r.SetObserver(vw.Observe)
		prev := circuits.EncodeOperands(stream.Pairs[0].A, stream.Pairs[0].B)
		for k := 1; k < stream.Len(); k++ {
			vw.BeginCycle(k - 1)
			cur := circuits.EncodeOperands(stream.Pairs[k].A, stream.Pairs[k].B)
			if _, err := r.Cycle(prev, cur); err != nil {
				log.Fatal(err)
			}
			prev = nil
		}
		if err := vw.Close(); err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote VCD to %s\n", *vcdPath)
	}

	var clocks []float64
	if *shmoo > 1 {
		// Two-pass: probe the dynamic-delay envelope on a short prefix,
		// then sweep capture clocks across it (40 %..110 % of the
		// observed max, where the TER curve actually moves).
		probeLen := stream.Len()
		if probeLen > 200 {
			probeLen = 200
		}
		probe, err := core.Characterize(u, corner, stream.Slice(0, probeLen), nil)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *shmoo; i++ {
			frac := 0.4 + 0.7*float64(i)/float64(*shmoo-1)
			clocks = append(clocks, probe.MaxDelay*frac)
		}
	}
	tr, err = core.Characterize(u, corner, stream, clocks)
	if err != nil {
		log.Fatal(err)
	}
	if len(clocks) > 0 {
		fmt.Println("\nshmoo: clock(ps)  TER")
		for k, c := range clocks {
			fmt.Printf("  %9.1f  %7.3f%%\n", c, 100*tr.TER(k))
		}
		fmt.Println()
	}

	delays := append([]float64(nil), tr.Delays...)
	sort.Float64s(delays)
	pct := func(p float64) float64 { return delays[int(p*float64(len(delays)-1))] }
	fmt.Printf("cycles      %d\n", tr.Cycles())
	fmt.Printf("events      %d (%.0f per cycle)\n", tr.Events, float64(tr.Events)/float64(tr.Cycles()))
	fmt.Printf("mean delay  %.1f ps\n", tr.MeanDelay())
	fmt.Printf("p50 / p95   %.1f / %.1f ps\n", pct(0.50), pct(0.95))
	fmt.Printf("max delay   %.1f ps (%.1f%% of static)\n", tr.MaxDelay, 100*tr.MaxDelay/tr.StaticDelay)
}
