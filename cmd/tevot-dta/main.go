// Command tevot-dta runs dynamic timing analysis for one functional
// unit at one operating corner: it generates the gate-level netlist,
// annotates it at the corner (optionally emitting the SDF file), runs
// back-annotated event-driven simulation over a random workload
// (optionally dumping a VCD), and prints the dynamic-delay statistics.
//
// The characterization itself runs as a cell on the fault-tolerant
// runner, so a -task-timeout deadline, Ctrl-C, or SIGTERM cancels it cleanly, and
// -checkpoint/-resume replay a completed analysis without re-simulating.
// Artifact writes (-sdf, -vcd, -lib) are plain file I/O and stay
// fail-fast.
//
// Example:
//
//	tevot-dta -fu INT_ADD -v 0.81 -t 25 -cycles 5000 -sdf add.sdf -vcd add.vcd
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/liberty"
	"tevot/internal/obs"
	"tevot/internal/runner"
	"tevot/internal/sdf"
	"tevot/internal/sim"
	"tevot/internal/vcd"
	"tevot/internal/workload"
)

// dtaResult is the checkpointable summary of one characterization cell.
type dtaResult struct {
	Cycles      int
	Events      int64
	MeanDelay   float64
	P50         float64
	P95         float64
	MaxDelay    float64
	StaticDelay float64
	MemoHits    int64
	MemoMisses  int64
	ShmooClocks []float64
	ShmooTER    []float64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tevot-dta: ")
	var (
		fuName  = flag.String("fu", "INT_ADD", "functional unit: INT_ADD, INT_MUL, FP_ADD, FP_MUL")
		voltage = flag.Float64("v", 0.90, "supply voltage (V)")
		temp    = flag.Float64("t", 25, "temperature (°C)")
		cycles  = flag.Int("cycles", 2000, "simulated cycles")
		seed    = flag.Int64("seed", 1, "workload seed")
		sdfPath = flag.String("sdf", "", "write the corner's SDF annotation to this file")
		vcdPath = flag.String("vcd", "", "write the simulation VCD to this file")
		libPath = flag.String("lib", "", "write the corner's Liberty cell library to this file")
		shmoo   = flag.Int("shmoo", 0, "print a TER-vs-clock shmoo with this many points")

		workers = flag.Int("workers", 0, "runner worker count (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 0, "simulation shards for the characterization (0 = GOMAXPROCS)")
		refKern = flag.Bool("ref-kernel", false, "simulate on the reference heap kernel (slow; for auditing the fast kernel)")
		memoSet = flag.String("memo", "on", "transition memo cache: on, off, or an entry cap (bit-identical either way)")
		taskTO  = flag.Duration("task-timeout", 0, "characterization deadline (0 = none), e.g. 5m")
		retries = flag.Int("retries", 1, "retries for transient failures")
		ckpt    = flag.String("checkpoint", "", "JSONL checkpoint file (replays a completed analysis)")
		resume  = flag.Bool("resume", false, "skip the characterization if already in -checkpoint")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	run, err := obsFlags.Start("tevot-dta", *seed, runner.LiveProgress)
	if err != nil {
		log.Fatal(err) // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}
	defer run.Close()

	fu, err := circuits.ParseFU(*fuName)
	if err != nil {
		run.Fatal(err)
	}
	u, err := core.NewFUnit(fu)
	if err != nil {
		run.Fatal(err)
	}
	corner := cells.Corner{V: *voltage, T: *temp}
	static, err := u.Static(corner)
	if err != nil {
		run.Fatal(err)
	}
	fmt.Printf("%s @ %s: %d gates, static delay %.1f ps\n",
		fu, corner, u.NL.NumGates(), static.Delay)

	if *sdfPath != "" {
		f, err := sdf.FromAnnotation(u.NL, corner, static.GateDelay)
		if err != nil {
			run.Fatal(err)
		}
		w, err := os.Create(*sdfPath)
		if err != nil {
			run.Fatal(err)
		}
		if err := f.Write(w, u.NL); err != nil {
			run.Fatal(err)
		}
		if err := w.Close(); err != nil {
			run.Fatal(err)
		}
		fmt.Printf("wrote SDF annotation to %s\n", *sdfPath)
	}

	if *libPath != "" {
		lib, err := liberty.FromScaling("tevot45", u.Opts.Scaling, corner)
		if err != nil {
			run.Fatal(err)
		}
		w, err := os.Create(*libPath)
		if err != nil {
			run.Fatal(err)
		}
		if err := lib.Write(w); err != nil {
			run.Fatal(err)
		}
		if err := w.Close(); err != nil {
			run.Fatal(err)
		}
		fmt.Printf("wrote Liberty library to %s\n", *libPath)
	}

	stream := workload.Random(fu.IsFloat(), *cycles+1, *seed)

	if *vcdPath != "" {
		// Dump a VCD alongside the characterization by rerunning through
		// an observed runner.
		w, err := os.Create(*vcdPath)
		if err != nil {
			run.Fatal(err)
		}
		window := static.Delay * 1.5
		vw := vcd.NewWriter(w, u.NL, window)
		if err := vw.WriteHeader("tevot", "tevot-dta"); err != nil {
			run.Fatal(err)
		}
		newR := sim.NewRunner
		if *refKern {
			newR = sim.NewRefRunner
		}
		r, err := newR(u.NL, static.GateDelay)
		if err != nil {
			run.Fatal(err)
		}
		r.SetObserver(vw.Observe)
		prev := circuits.EncodeOperands(stream.Pairs[0].A, stream.Pairs[0].B)
		for k := 1; k < stream.Len(); k++ {
			vw.BeginCycle(k - 1)
			cur := circuits.EncodeOperands(stream.Pairs[k].A, stream.Pairs[k].B)
			if _, err := r.Cycle(prev, cur); err != nil {
				run.Fatal(err)
			}
			prev = nil
		}
		if err := vw.Close(); err != nil {
			run.Fatal(err)
		}
		if err := w.Close(); err != nil {
			run.Fatal(err)
		}
		fmt.Printf("wrote VCD to %s\n", *vcdPath)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	shmooN := *shmoo
	memo, err := core.ParseMemoSetting(*memoSet)
	if err != nil {
		run.Fatal(err)
	}
	opts := core.CharacterizeOptions{
		Workers: *shards, RefKernel: *refKern,
		MemoOff: memo.MemoOff, MemoSize: memo.MemoSize,
	}
	key := fmt.Sprintf("dta/%s/v%.4f_t%g", fu, corner.V, corner.T)
	task := runner.Task[dtaResult]{
		Key: key,
		Run: func(ctx context.Context) (dtaResult, error) {
			return characterize(ctx, u, corner, stream, shmooN, opts)
		},
	}
	cfg := runner.Config{
		Name: fmt.Sprintf("dta fu=%s v=%.4f t=%g cycles=%d seed=%d shmoo=%d",
			fu, corner.V, corner.T, *cycles, *seed, shmooN),
		Workers:     *workers,
		TaskTimeout: *taskTO,
		Retries:     *retries,
		Checkpoint:  *ckpt,
		Resume:      *resume,
		Seed:        *seed,
	}
	results, rep, err := runner.Run(ctx, cfg, []runner.Task[dtaResult]{task})
	run.Note("report", rep)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			run.SetInterrupted()
			hint := ""
			if *ckpt != "" {
				hint = fmt.Sprintf(" — rerun with -checkpoint %s -resume to continue", *ckpt)
			}
			run.Log.Warn("interrupted" + hint)
			run.Exit(130)
		}
		run.Fatal(err)
	}
	if rep.Failed > 0 {
		fmt.Println(rep.Summary())
		for _, f := range rep.Failures {
			run.Log.Error("cell failed", "err", f)
		}
		run.Exit(1)
	}
	res := results[key]
	if rep.Resumed > 0 {
		fmt.Printf("(replayed from checkpoint %s)\n", *ckpt)
	}

	if len(res.ShmooClocks) > 0 {
		fmt.Println("\nshmoo: clock(ps)  TER")
		for k, c := range res.ShmooClocks {
			fmt.Printf("  %9.1f  %7.3f%%\n", c, 100*res.ShmooTER[k])
		}
		fmt.Println()
	}
	fmt.Printf("cycles      %d\n", res.Cycles)
	fmt.Printf("events      %d (%.0f per cycle)\n", res.Events, float64(res.Events)/float64(res.Cycles))
	if res.MemoHits+res.MemoMisses > 0 {
		fmt.Printf("memo        %.1f%% hit rate (%d hits, %d misses)\n",
			100*float64(res.MemoHits)/float64(res.MemoHits+res.MemoMisses), res.MemoHits, res.MemoMisses)
	}
	fmt.Printf("mean delay  %.1f ps\n", res.MeanDelay)
	fmt.Printf("p50 / p95   %.1f / %.1f ps\n", res.P50, res.P95)
	fmt.Printf("max delay   %.1f ps (%.1f%% of static)\n", res.MaxDelay, 100*res.MaxDelay/res.StaticDelay)
	fmt.Printf("\n%s\n", rep.Summary())
}

// characterize is the body of the single DTA cell: shmoo probe (when
// requested) plus the main characterization, reduced to the compact
// summary the CLI prints, so a checkpointed result replays the exact
// printout without re-simulating.
func characterize(ctx context.Context, u *core.FUnit, corner cells.Corner, stream *workload.Stream, shmoo int, opts core.CharacterizeOptions) (dtaResult, error) {
	var clocks []float64
	if shmoo > 1 {
		// Two-pass: probe the dynamic-delay envelope on a short prefix,
		// then sweep capture clocks across it (40 %..110 % of the
		// observed max, where the TER curve actually moves).
		probeLen := stream.Len()
		if probeLen > 200 {
			probeLen = 200
		}
		probe, err := core.CharacterizeOptsContext(ctx, u, corner, stream.Slice(0, probeLen), nil, opts)
		if err != nil {
			return dtaResult{}, err
		}
		for i := 0; i < shmoo; i++ {
			frac := 0.4 + 0.7*float64(i)/float64(shmoo-1)
			clocks = append(clocks, probe.MaxDelay*frac)
		}
	}
	tr, err := core.CharacterizeOptsContext(ctx, u, corner, stream, clocks, opts)
	if err != nil {
		return dtaResult{}, err
	}
	res := dtaResult{
		Cycles:      tr.Cycles(),
		Events:      int64(tr.Events),
		MeanDelay:   tr.MeanDelay(),
		MaxDelay:    tr.MaxDelay,
		StaticDelay: tr.StaticDelay,
		MemoHits:    tr.MemoHits,
		MemoMisses:  tr.MemoMisses,
	}
	delays := append([]float64(nil), tr.Delays...)
	sort.Float64s(delays)
	pct := func(p float64) float64 { return delays[int(p*float64(len(delays)-1))] }
	res.P50, res.P95 = pct(0.50), pct(0.95)
	for k, c := range clocks {
		res.ShmooClocks = append(res.ShmooClocks, c)
		res.ShmooTER = append(res.ShmooTER, tr.TER(k))
	}
	return res, nil
}
