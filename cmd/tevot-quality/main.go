// Command tevot-quality runs the application-quality case study (the
// paper's §V.D): it derives per-FU timing-error rates from each error
// model, injects them into the Sobel and Gaussian filters, classifies
// each output as acceptable (PSNR >= 30 dB) or not, and reports each
// model's estimation accuracy against the gate-level-simulation ground
// truth — Table IV. With -outdir it also writes the Fig. 4 panel: the
// ground-truth and per-model Sobel outputs as PNG files.
//
// Example:
//
//	tevot-quality -images 4 -imgsize 32 -outdir fig4/
package main

import (
	"flag"
	"fmt"
	"image"
	"image/png"
	"log"
	"math"
	"os"
	"path/filepath"
	"strings"

	"tevot/internal/cells"
	"tevot/internal/core"
	"tevot/internal/experiments"
	"tevot/internal/imaging"
	"tevot/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tevot-quality: ")
	var (
		images  = flag.Int("images", 3, "synthetic test images")
		imgSize = flag.Int("imgsize", 24, "image side length")
		cycles  = flag.Int("cycles", 1200, "training cycles per corner")
		nCorner = flag.Int("corners", 2, "operating corners")
		outDir  = flag.String("outdir", "", "write Fig. 4 PNG outputs to this directory")
		seed    = flag.Int64("seed", 1, "global seed")
		shards  = flag.Int("shards", 0, "simulation shards per characterization (0 = auto)")
		memoSet = flag.String("memo", "on", "transition memo cache: on, off, or an entry cap (bit-identical either way)")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	run, err := obsFlags.Start("tevot-quality", *seed, nil)
	if err != nil {
		log.Fatal(err) // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}
	defer run.Close()

	scale := experiments.Small()
	scale.Images = *images
	scale.ImageSize = *imgSize
	scale.TrainCycles = *cycles
	scale.TestCycles = *cycles / 2
	scale.AppStreamCap = *cycles
	scale.Seed = *seed
	scale.ShardWorkers = *shards
	memo, err := core.ParseMemoSetting(*memoSet)
	if err != nil {
		run.Fatal(err)
	}
	scale.MemoOff = memo.MemoOff
	scale.MemoSize = memo.MemoSize
	scale.Corners = scale.Corners[:0]
	for i := 0; i < *nCorner; i++ {
		v := 0.81 + 0.19*float64(i)/math.Max(1, float64(*nCorner-1))
		scale.Corners = append(scale.Corners, cells.Corner{V: math.Round(v*100) / 100, T: 25})
	}

	lab, err := experiments.NewLab(scale)
	if err != nil {
		run.Fatal(err)
	}
	rows, _, _, err := experiments.Table4(lab)
	if err != nil {
		run.Fatal(err)
	}

	fmt.Println("Table IV — application quality estimation accuracy")
	fmt.Println("application  TEVoT    Delay-based  TER-based  TEVoT-NH")
	for _, row := range rows {
		fmt.Printf("%-12s %6.1f%% %11.1f%% %9.1f%% %9.1f%%\n",
			row.App,
			100*row.Accuracy["TEVoT"], 100*row.Accuracy["Delay-based"],
			100*row.Accuracy["TER-based"], 100*row.Accuracy["TEVoT-NH"])
	}

	if *outDir == "" {
		return
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		run.Fatal(err)
	}
	outputs, err := experiments.Fig4(lab)
	if err != nil {
		run.Fatal(err)
	}
	fmt.Println("\nFig. 4 — Sobel outputs under injected errors")
	for _, o := range outputs {
		name := strings.ToLower(strings.ReplaceAll(o.Model, " ", "_")) + ".png"
		path := filepath.Join(*outDir, name)
		if err := writePNG(path, o.Image); err != nil {
			run.Fatal(err)
		}
		fmt.Printf("%-14s PSNR %6.1f dB  -> %s\n", o.Model, o.PSNR, path)
	}
}

func writePNG(path string, m *imaging.Image) error {
	img := image.NewGray(image.Rect(0, 0, m.W, m.H))
	copy(img.Pix, m.Pix)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
