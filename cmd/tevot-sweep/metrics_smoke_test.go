package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"tevot/internal/obs"
)

// TestMetricsExpositionSmoke builds this command, runs a small sweep
// with -debug-addr :0, and scrapes the Prometheus endpoint mid-run: the
// output must survive the strict exposition parser and carry the core
// cycle counter, and /debug/traces must list the sweep's live traces
// (tracing defaults on). This is the CLI-level proof that the /metrics
// surface every scraper would point at actually speaks 0.0.4.
func TestMetricsExpositionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "tevot-sweep")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-fu", "INT_ADD", "-grid", "-cycles", "2500", "-workers", "1",
		"-debug-addr", "127.0.0.1:0", "-seed", "7",
		"-run-json", filepath.Join(dir, "run.json"),
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	addrRe := regexp.MustCompile(`addr=(http://[0-9.:]+)`)
	var base string
	var logTail strings.Builder
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		logTail.WriteString(line + "\n")
		if m := addrRe.FindStringSubmatch(line); m != nil {
			base = m[1]
			break
		}
	}
	if base == "" {
		t.Fatalf("no debug-endpoint address in stderr:\n%s", logTail.String())
	}
	go func() {
		for sc.Scan() {
		}
	}()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.PromContentType {
		t.Errorf("/metrics Content-Type %q, want %q", got, obs.PromContentType)
	}
	fams, err := obs.ParseProm(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics rejected by the strict exposition parser: %v", err)
	}
	if _, ok := fams["tevot_core_cycles_simulated_total"]; !ok {
		t.Errorf("/metrics missing tevot_core_cycles_simulated_total (%d families)", len(fams))
	}

	resp, err = http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatalf("/debug/traces: %v", err)
	}
	var traces struct {
		Traces   []json.RawMessage `json:"traces"`
		Disabled bool              `json:"disabled"`
	}
	err = json.NewDecoder(resp.Body).Decode(&traces)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/traces not JSON: %v", err)
	}
	if traces.Disabled {
		t.Error("/debug/traces reports tracing disabled; -trace should default on")
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sweep exited with error: %v\nlog:\n%s", err, logTail.String())
		}
	case <-time.After(120 * time.Second):
		t.Fatal("sweep did not finish in time")
	}
}
