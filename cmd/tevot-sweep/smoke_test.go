package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestDebugEndpointSmoke is the end-to-end observability check: it
// builds this command, starts a small sweep with -debug-addr :0, reads
// the advertised address off the structured log, queries /progress and
// /debug/vars while the sweep runs, and then verifies the run manifest
// the exiting process wrote.
func TestDebugEndpointSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "tevot-sweep")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	manifest := filepath.Join(dir, "run.json")
	// A 100-corner INT_ADD grid at -workers 1 runs a few seconds — long
	// enough to query the live endpoints, short enough for CI.
	cmd := exec.Command(bin,
		"-fu", "INT_ADD", "-grid", "-cycles", "2500", "-workers", "1",
		"-debug-addr", "127.0.0.1:0", "-run-json", manifest,
		"-seed", "7",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The Start log line names the actual port: addr=http://127.0.0.1:NNN
	addrRe := regexp.MustCompile(`addr=(http://[0-9.:]+)`)
	var base string
	var logTail strings.Builder
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		logTail.WriteString(line + "\n")
		if m := addrRe.FindStringSubmatch(line); m != nil {
			base = m[1]
			break
		}
	}
	if base == "" {
		t.Fatalf("no debug-endpoint address in stderr:\n%s", logTail.String())
	}
	// Keep draining stderr so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()

	queryJSON := func(path string, into any) error {
		resp, err := http.Get(base + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(into)
	}

	var progress map[string]any
	if err := queryJSON("/progress", &progress); err != nil {
		t.Fatalf("/progress: %v", err)
	}
	if progress["status"] == nil || progress["total"] == nil {
		t.Errorf("/progress missing status/total: %v", progress)
	}
	var vars map[string]json.RawMessage
	if err := queryJSON("/debug/vars", &vars); err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	if _, ok := vars["tevot"]; !ok {
		t.Errorf("/debug/vars has no tevot metrics var")
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sweep exited with error: %v\nlog:\n%s", err, logTail.String())
		}
	case <-time.After(120 * time.Second):
		t.Fatal("sweep did not finish in time")
	}

	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("run manifest not written: %v", err)
	}
	var m struct {
		Command string            `json:"command"`
		Seed    int64             `json:"seed"`
		Config  map[string]string `json:"config"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
		Stages []struct {
			Name string `json:"name"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest not JSON: %v\n%s", err, data)
	}
	if m.Command != "tevot-sweep" || m.Seed != 7 {
		t.Errorf("manifest command/seed = %q/%d", m.Command, m.Seed)
	}
	if m.Config["fu"] != "INT_ADD" {
		t.Errorf("manifest config.fu = %q, want INT_ADD", m.Config["fu"])
	}
	if m.Metrics.Counters["runner.cells_ok"] == 0 {
		t.Errorf("manifest counters missing runner.cells_ok: %v", m.Metrics.Counters)
	}
	if m.Metrics.Counters["core.cycles_simulated"] == 0 {
		t.Errorf("manifest counters missing core.cycles_simulated: %v", m.Metrics.Counters)
	}
	names := make([]string, 0, len(m.Stages))
	for _, s := range m.Stages {
		names = append(names, s.Name)
	}
	for _, want := range []string{"dta.simulate", "sta.analyze", "experiments.fig3"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("manifest stages missing %q: %v", want, names)
		}
	}
}
