package main

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSigtermFlushesCheckpointAndManifest kills a running sweep with
// SIGTERM — the signal an orchestrator (systemd, Kubernetes, a batch
// scheduler) actually sends, as opposed to an interactive Ctrl-C — and
// verifies the shutdown contract: exit code 130, every completed cell
// durably in the JSONL checkpoint, and a run manifest marked
// interrupted so the operator knows to -resume.
func TestSigtermFlushesCheckpointAndManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "tevot-sweep")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	ckpt := filepath.Join(dir, "sweep.ckpt")
	manifest := filepath.Join(dir, "run.json")
	// The full grid at -workers 1 runs long enough that SIGTERM lands
	// mid-sweep with cells both completed and still pending.
	cmd := exec.Command(bin,
		"-fu", "INT_ADD", "-grid", "-cycles", "1500", "-workers", "1",
		"-checkpoint", ckpt, "-run-json", manifest, "-seed", "11",
	)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait until at least two cells have checkpointed (header + 2 lines),
	// so the flush assertion below is about real progress, not an empty
	// file.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if data, err := os.ReadFile(ckpt); err == nil &&
			strings.Count(string(data), "\n") >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep produced no checkpointed cells in time")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	var waitErr error
	select {
	case waitErr = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("sweep did not exit after SIGTERM")
	}
	ee, ok := waitErr.(*exec.ExitError)
	if !ok || ee.ExitCode() != 130 {
		t.Fatalf("exit after SIGTERM = %v, want exit code 130", waitErr)
	}

	// Every checkpoint line must parse: a valid header followed by
	// complete cell records — a torn final line would mean the flush
	// raced the exit.
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<26)
	entries := 0
	for lineNo := 0; sc.Scan(); lineNo++ {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if lineNo == 0 {
			var hdr struct {
				Format string `json:"format"`
			}
			if err := json.Unmarshal(line, &hdr); err != nil || hdr.Format != "tevot-checkpoint" {
				t.Fatalf("checkpoint header invalid: %v: %s", err, line)
			}
			continue
		}
		var e struct {
			Key   string          `json:"key"`
			Value json.RawMessage `json:"value"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("checkpoint line %d not valid JSON after SIGTERM: %v: %s", lineNo, err, line)
		}
		if e.Key == "" || len(e.Value) == 0 {
			t.Fatalf("checkpoint line %d incomplete: %s", lineNo, line)
		}
		entries++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if entries < 2 {
		t.Fatalf("checkpoint holds %d cells, want >= 2", entries)
	}

	// The manifest must have been finalized on the signal path.
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("run manifest not written after SIGTERM: %v", err)
	}
	var m struct {
		Command     string `json:"command"`
		Interrupted bool   `json:"interrupted"`
		ExitCode    int    `json:"exit_code"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest not JSON: %v\n%s", err, raw)
	}
	if m.Command != "tevot-sweep" || !m.Interrupted || m.ExitCode != 130 {
		t.Errorf("manifest = command %q interrupted %v exit %d, want tevot-sweep/true/130",
			m.Command, m.Interrupted, m.ExitCode)
	}
}
