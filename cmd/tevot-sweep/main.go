// Command tevot-sweep regenerates the paper's Fig. 3: the average
// dynamic delay of each functional unit under each dataset across
// operating corners. By default it sweeps the paper's 9-corner plot
// subset; -grid sweeps the full 100-corner Table I grid.
//
// The sweep runs on the fault-tolerant runner: cells execute on a
// bounded worker pool, a panicking or failing cell is reported and
// skipped instead of killing the run, and -checkpoint/-resume let an
// interrupted sweep (SIGINT and SIGTERM are caught and flushed) pick up where it
// left off.
//
// Examples:
//
//	tevot-sweep -cycles 2000 -fu INT_ADD
//	tevot-sweep -grid -workers 8 -checkpoint fig3.ckpt
//	tevot-sweep -grid -checkpoint fig3.ckpt -resume   # after a kill
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/experiments"
	"tevot/internal/obs"
	"tevot/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tevot-sweep: ")
	var (
		cycles  = flag.Int("cycles", 1500, "cycles per characterization")
		fuName  = flag.String("fu", "", "restrict to one FU (default: all four)")
		full    = flag.Bool("grid", false, "sweep the full Table I grid instead of the Fig. 3 subset")
		images  = flag.Int("images", 3, "synthetic images for application datasets")
		imgSize = flag.Int("imgsize", 24, "synthetic image side length")

		workers   = flag.Int("workers", 0, "concurrent cells (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "simulation shards per cell (0 = auto: GOMAXPROCS/workers)")
		taskTO    = flag.Duration("task-timeout", 0, "per-cell deadline (0 = none), e.g. 5m")
		retries   = flag.Int("retries", 1, "retries per cell for transient failures")
		ckpt      = flag.String("checkpoint", "", "JSONL checkpoint file (written as cells complete)")
		resume    = flag.Bool("resume", false, "skip cells already in -checkpoint")
		faultRate = flag.Float64("fault-rate", 0, "inject deterministic transient faults into this fraction of cells (testing)")
		seed      = flag.Int64("seed", 1, "seed for workloads, retry jitter, and fault injection")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	run, err := obsFlags.Start("tevot-sweep", *seed, runner.LiveProgress)
	if err != nil {
		log.Fatal(err)
	}
	defer run.Close()

	scale := experiments.Small()
	scale.TestCycles = *cycles
	scale.TrainCycles = *cycles
	scale.Images = *images
	scale.ImageSize = *imgSize
	scale.AppStreamCap = *cycles
	scale.Seed = *seed
	scale.ShardWorkers = *shards
	if *fuName != "" {
		fu, err := circuits.ParseFU(*fuName)
		if err != nil {
			run.Fatal(err)
		}
		scale.FUs = []circuits.FU{fu}
	}
	corners := core.Fig3Corners()
	if *full {
		corners = core.TableIGrid().Corners()
	}

	lab, err := experiments.NewLab(scale)
	if err != nil {
		run.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := runner.Config{
		Workers:     *workers,
		TaskTimeout: *taskTO,
		Retries:     *retries,
		Seed:        *seed,
		Checkpoint:  *ckpt,
		Resume:      *resume,
		Inject:      runner.NewFaultInjector(*seed, *faultRate),
	}
	rows, rep, err := experiments.Fig3Run(ctx, lab, corners, cfg)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		run.Fatal(err)
	}

	fmt.Println("FU       (V, T)          dataset        mean(ps)   max(ps)  static(ps)")
	for _, r := range rows {
		fmt.Printf("%-8s %-14s  %-13s %9.1f %9.1f %10.1f\n",
			r.FU, r.Corner, r.Dataset, r.MeanDelay, r.MaxDelay, r.Static)
	}
	fmt.Printf("\n%s\n", rep.Summary())
	run.Note("report", rep)
	if interrupted {
		run.SetInterrupted()
		hint := ""
		if *ckpt != "" {
			hint = fmt.Sprintf(" — rerun with -checkpoint %s -resume to continue", *ckpt)
		}
		run.Log.Warn("interrupted" + hint)
		run.Exit(130)
	}
	if rep.Failed > 0 {
		run.Exit(1)
	}
}
