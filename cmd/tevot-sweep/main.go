// Command tevot-sweep regenerates the paper's Fig. 3: the average
// dynamic delay of each functional unit under each dataset across
// operating corners. By default it sweeps the paper's 9-corner plot
// subset; -grid sweeps the full 100-corner Table I grid.
//
// The sweep runs on the fault-tolerant runner: cells execute on a
// bounded worker pool, a panicking or failing cell is reported and
// skipped instead of killing the run, and -checkpoint/-resume let an
// interrupted sweep (SIGINT and SIGTERM are caught and flushed) pick up where it
// left off.
//
// Distributed modes (internal/dist) scale the same sweep across
// processes with identical output bytes:
//
//   - -coordinator ADDR leases cells to workers over HTTP, journaling
//     completed cells to -checkpoint (resumable with -resume) and
//     writing the merged JSONL to -out;
//   - -join URL turns this process into a worker of that coordinator
//     (grid flags are ignored — the spec comes from the coordinator);
//   - -cluster N runs coordinator plus N workers in one process (the
//     drill/test mode).
//
// Examples:
//
//	tevot-sweep -cycles 2000 -fu INT_ADD
//	tevot-sweep -grid -workers 8 -checkpoint fig3.ckpt
//	tevot-sweep -grid -checkpoint fig3.ckpt -resume   # after a kill
//	tevot-sweep -grid -coordinator 127.0.0.1:7077 -checkpoint j.jsonl -out fig3.jsonl
//	tevot-sweep -join http://127.0.0.1:7077
//	tevot-sweep -cluster 3 -out fig3.jsonl
//
// Fault drills (internal/chaos): -chaos-seed N arms a deterministic
// fault schedule generated from N; -chaos-profile picks a named plane
// mix (light, network, disk, clock, heavy) instead of a generated one.
// The network plane wraps worker HTTP transports, the disk plane wraps
// the checkpoint/journal filesystem, and the clock plane skews the
// coordinator's lease clock. Same seed, same schedule — a failing
// drill replays verbatim (see scripts/chaos_soak.sh).
//
//	tevot-sweep -cluster 3 -out fig3.jsonl -chaos-seed 7
//	tevot-sweep -join http://127.0.0.1:7077 -chaos-profile network -chaos-seed 7
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"tevot/internal/chaos"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/dist"
	"tevot/internal/experiments"
	"tevot/internal/obs"
	"tevot/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tevot-sweep: ")
	var (
		cycles  = flag.Int("cycles", 1500, "cycles per characterization")
		fuName  = flag.String("fu", "", "restrict to one FU (default: all four)")
		full    = flag.Bool("grid", false, "sweep the full Table I grid instead of the Fig. 3 subset")
		images  = flag.Int("images", 3, "synthetic images for application datasets")
		imgSize = flag.Int("imgsize", 24, "synthetic image side length")

		workers   = flag.Int("workers", 0, "concurrent cells (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "simulation shards per cell (0 = auto: GOMAXPROCS/workers)")
		memoSet   = flag.String("memo", "on", "transition memo cache: on, off, or an entry cap (bit-identical either way)")
		taskTO    = flag.Duration("task-timeout", 0, "per-cell deadline (0 = none), e.g. 5m")
		retries   = flag.Int("retries", 1, "retries per cell for transient failures")
		ckpt      = flag.String("checkpoint", "", "JSONL checkpoint file (written as cells complete)")
		resume    = flag.Bool("resume", false, "skip cells already in -checkpoint")
		faultRate = flag.Float64("fault-rate", 0, "inject deterministic transient faults into this fraction of cells (testing)")
		seed      = flag.Int64("seed", 1, "seed for workloads, retry jitter, and fault injection")

		coordAddr = flag.String("coordinator", "", "run as distributed-sweep coordinator on this address (e.g. 127.0.0.1:7077)")
		joinURL   = flag.String("join", "", "run as a worker of the coordinator at this URL (e.g. http://127.0.0.1:7077)")
		clusterN  = flag.Int("cluster", 0, "run an in-process local cluster with this many workers")
		outPath   = flag.String("out", "", "write merged result JSONL (canonical order; byte-identical across all modes)")
		leaseTTL  = flag.Duration("lease-ttl", 10*time.Second, "coordinator: lease TTL (workers renew at TTL/3)")

		chaosSeed    = flag.Int64("chaos-seed", 0, "arm a deterministic fault schedule generated from this seed (0 = off)")
		chaosProfile = flag.String("chaos-profile", "", "named fault profile: light, network, disk, clock, heavy (requires -chaos-seed)")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	modes := 0
	for _, on := range []bool{*coordAddr != "", *joinURL != "", *clusterN > 0} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		log.Fatal("-coordinator, -join, and -cluster are mutually exclusive") // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}
	sched, err := chaosSchedule(*chaosSeed, *chaosProfile)
	if err != nil {
		log.Fatal(err) // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}

	spec := dist.Spec{
		Cycles:       *cycles,
		Images:       *images,
		ImageSize:    *imgSize,
		Seed:         *seed,
		ShardWorkers: *shards,
	}
	if *fuName != "" {
		spec.FUs = []string{*fuName}
	}
	spec.Corners = core.Fig3Corners()
	if *full {
		spec.Corners = core.TableIGrid().Corners()
	}

	switch {
	case *coordAddr != "":
		coordinatorMain(obsFlags, spec, *coordAddr, *leaseTTL, *ckpt, *resume, *outPath, *seed, sched)
		return
	case *joinURL != "":
		workerMain(obsFlags, *joinURL, *taskTO, *retries, *seed, sched)
		return
	case *clusterN > 0:
		clusterMain(obsFlags, spec, *clusterN, *leaseTTL, *ckpt, *resume, *outPath, *taskTO, *retries, *seed, sched)
		return
	}

	run, err := obsFlags.Start("tevot-sweep", *seed, runner.LiveProgress)
	if err != nil {
		log.Fatal(err) // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}
	defer run.Close()

	scale := experiments.Small()
	scale.TestCycles = *cycles
	scale.TrainCycles = *cycles
	scale.Images = *images
	scale.ImageSize = *imgSize
	scale.AppStreamCap = *cycles
	scale.Seed = *seed
	scale.ShardWorkers = *shards
	memo, err := core.ParseMemoSetting(*memoSet)
	if err != nil {
		run.Fatal(err)
	}
	scale.MemoOff = memo.MemoOff
	scale.MemoSize = memo.MemoSize
	if *fuName != "" {
		fu, err := circuits.ParseFU(*fuName)
		if err != nil {
			run.Fatal(err)
		}
		scale.FUs = []circuits.FU{fu}
	}
	corners := core.Fig3Corners()
	if *full {
		corners = core.TableIGrid().Corners()
	}

	lab, err := experiments.NewLab(scale)
	if err != nil {
		run.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := runner.Config{
		Workers:     *workers,
		TaskTimeout: *taskTO,
		Retries:     *retries,
		Seed:        *seed,
		Checkpoint:  *ckpt,
		Resume:      *resume,
		Inject:      runner.NewFaultInjector(*seed, *faultRate),
	}
	if sched != nil {
		// Single-process mode has no network or lease clock; only the
		// disk plane applies (the checkpoint file).
		cfg.FS = chaos.NewFS(sched.Seed, sched.Disk)
		run.Log.Warn("chaos armed (disk plane only in single-process mode)", "schedule", sched.String())
	}
	rows, rep, err := experiments.Fig3Run(ctx, lab, corners, cfg)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		run.Fatal(err)
	}

	fmt.Println("FU       (V, T)          dataset        mean(ps)   max(ps)  static(ps)")
	for _, r := range rows {
		fmt.Printf("%-8s %-14s  %-13s %9.1f %9.1f %10.1f\n",
			r.FU, r.Corner, r.Dataset, r.MeanDelay, r.MaxDelay, r.Static)
	}
	fmt.Printf("\n%s\n", rep.Summary())
	run.Note("report", rep)
	if *outPath != "" && !interrupted {
		if err := writeMergedRows(spec, rows, *outPath); err != nil {
			run.Fatal(err)
		}
		run.Log.Info("merged output written", "path", *outPath, "rows", len(rows))
	}
	if interrupted {
		run.SetInterrupted()
		hint := ""
		if *ckpt != "" {
			hint = fmt.Sprintf(" — rerun with -checkpoint %s -resume to continue", *ckpt)
		}
		run.Log.Warn("interrupted" + hint)
		run.Exit(130)
	}
	if rep.Failed > 0 {
		run.Exit(1)
	}
}

// writeMergedRows writes the single-process sweep's rows as the same
// canonical merged JSONL the distributed coordinator emits — the
// byte-identity contract between execution modes.
func writeMergedRows(spec dist.Spec, rows []experiments.DelayRow, path string) error {
	order, err := spec.Cells()
	if err != nil {
		return err
	}
	results := make(map[string]json.RawMessage, len(rows))
	for _, r := range rows {
		raw, err := dist.MarshalRow(r)
		if err != nil {
			return err
		}
		results[experiments.Fig3CellKey(r.FU, r.Dataset, r.Corner)] = raw
	}
	return dist.WriteMergedFile(path, order, results)
}

// chaosSchedule resolves the -chaos-seed/-chaos-profile flags into a
// fault schedule (nil = chaos off).
func chaosSchedule(seed int64, profile string) (*chaos.Schedule, error) {
	if seed == 0 && profile == "" {
		return nil, nil
	}
	if seed == 0 {
		return nil, fmt.Errorf("-chaos-profile requires -chaos-seed")
	}
	if profile == "" {
		s := chaos.Generate(seed)
		return &s, nil
	}
	s, err := chaos.Profile(profile, seed)
	if err != nil {
		return nil, err
	}
	return &s, nil
}

// driveClock plays the schedule's clock events against a live lease
// clock: jumps past the TTL (stranding in-flight leases) and a freeze
// longer than the TTL (minting deadlines that land in the past after
// thaw). expire, when non-nil, forces an immediate expiry sweep so the
// event is observed before the next periodic sweep.
func driveClock(ctx context.Context, clock *chaos.Clock, sched *chaos.Schedule, ttl time.Duration, expire func() int) {
	if expire == nil {
		expire = func() int { return 0 }
	}
	for j := 0; j < sched.ClockJumps; j++ {
		select {
		case <-ctx.Done():
			return
		case <-time.After(ttl):
		}
		clock.Jump(2 * ttl)
		expire()
	}
	if sched.ClockFreeze {
		clock.Freeze()
		select {
		case <-ctx.Done():
			return
		case <-time.After(ttl + 100*time.Millisecond):
		}
		clock.Thaw()
		expire()
	}
}

// coordinatorMain runs the distributed-sweep coordinator until the
// sweep completes, aborts on divergence, or is interrupted.
func coordinatorMain(obsFlags *obs.Flags, spec dist.Spec, addr string, ttl time.Duration, journal string, resume bool, out string, seed int64, sched *chaos.Schedule) {
	var cp atomic.Pointer[dist.Coordinator]
	run, err := obsFlags.Start("tevot-sweep-coordinator", seed, func() any {
		if c := cp.Load(); c != nil {
			return c.Progress()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err) // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}
	defer run.Close()

	ccfg := dist.CoordConfig{
		Spec:     spec,
		Addr:     addr,
		LeaseTTL: ttl,
		Journal:  journal,
		Resume:   resume,
		Out:      out,
	}
	var now func() time.Time
	var clock *chaos.Clock
	if sched != nil {
		ccfg.FS = chaos.NewFS(sched.Seed, sched.Disk)
		clock = chaos.NewClock()
		now = clock.Now
		run.Log.Warn("chaos armed (disk + clock planes)", "schedule", sched.String())
	}
	coord, err := dist.NewCoordinator(ccfg, now)
	if err != nil {
		run.Fatal(err)
	}
	cp.Store(coord) // the debug endpoint's /progress payload source

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if clock != nil {
		go driveClock(ctx, clock, sched, ttl, coord.ExpireNow)
	}

	err = coord.Serve(ctx)
	p := coord.Progress()
	run.Note("progress", p)
	switch {
	case errors.Is(err, context.Canceled):
		run.SetInterrupted()
		hint := ""
		if journal != "" {
			hint = fmt.Sprintf(" — rerun with -checkpoint %s -resume to continue", journal)
		}
		run.Log.Warn(fmt.Sprintf("interrupted with %d/%d cells done%s", p.Done, p.Cells, hint))
		run.Exit(130)
	case err != nil:
		run.Fatal(err)
	default:
		fmt.Printf("sweep complete: %d cells (%d resumed, %d reissued, %d duplicates)\n",
			p.Cells, p.Resumed, p.Reissues, p.Duplicates)
		if out != "" {
			fmt.Printf("merged output: %s\n", out)
		}
	}
}

// workerMain joins a coordinator as one worker process.
func workerMain(obsFlags *obs.Flags, url string, taskTO time.Duration, retries int, seed int64, sched *chaos.Schedule) {
	run, err := obsFlags.Start("tevot-sweep-worker", seed, runner.LiveProgress)
	if err != nil {
		log.Fatal(err) // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}
	defer run.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	wcfg := dist.WorkerConfig{
		Coordinator: url,
		TaskTimeout: taskTO,
		Retries:     retries,
	}
	if sched != nil {
		// A worker process owns only the network plane: its RPCs to the
		// coordinator go through the fault transport.
		wcfg.Transport = chaos.NewTransport(sched.Seed, sched.Net, nil)
		run.Log.Warn("chaos armed (network plane)", "schedule", sched.String())
	}
	err = dist.RunWorker(ctx, wcfg)
	switch {
	case errors.Is(err, context.Canceled):
		run.SetInterrupted()
		run.Log.Warn("interrupted")
		run.Exit(130)
	case err != nil:
		run.Fatal(err)
	}
}

// clusterMain runs coordinator plus N workers inside this process.
func clusterMain(obsFlags *obs.Flags, spec dist.Spec, n int, ttl time.Duration, journal string, resume bool, out string, taskTO time.Duration, retries int, seed int64, sched *chaos.Schedule) {
	if out == "" {
		log.Fatal("-cluster requires -out for the merged result") // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}
	run, err := obsFlags.Start("tevot-sweep-cluster", seed, runner.LiveProgress)
	if err != nil {
		log.Fatal(err) // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}
	defer run.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	clcfg := dist.ClusterConfig{
		Coord: dist.CoordConfig{
			Spec:     spec,
			LeaseTTL: ttl,
			Journal:  journal,
			Resume:   resume,
			Out:      out,
		},
		Workers: n,
		Worker:  dist.WorkerConfig{TaskTimeout: taskTO, Retries: retries},
	}
	if sched != nil {
		// All three planes in one process: fault transport on every
		// worker, fault FS under the journal, skewed lease clock. Expiry
		// is observed at the coordinator's next periodic sweep.
		clcfg.Coord.FS = chaos.NewFS(sched.Seed, sched.Disk)
		clcfg.Worker.Transport = chaos.NewTransport(sched.Seed, sched.Net, nil)
		clock := chaos.NewClock()
		clcfg.Now = clock.Now
		go driveClock(ctx, clock, sched, ttl, nil)
		run.Log.Warn("chaos armed (network + disk + clock planes)", "schedule", sched.String())
	}
	err = dist.RunLocalCluster(ctx, clcfg)
	switch {
	case errors.Is(err, context.Canceled):
		run.SetInterrupted()
		run.Exit(130)
	case err != nil:
		run.Fatal(err)
	default:
		fmt.Printf("cluster sweep complete: merged output at %s\n", out)
	}
}
