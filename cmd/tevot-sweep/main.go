// Command tevot-sweep regenerates the paper's Fig. 3: the average
// dynamic delay of each functional unit under each dataset across
// operating corners. By default it sweeps the paper's 9-corner plot
// subset; -grid sweeps the full 100-corner Table I grid.
//
// Example:
//
//	tevot-sweep -cycles 2000 -fu INT_ADD
package main

import (
	"flag"
	"fmt"
	"log"

	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tevot-sweep: ")
	var (
		cycles  = flag.Int("cycles", 1500, "cycles per characterization")
		fuName  = flag.String("fu", "", "restrict to one FU (default: all four)")
		full    = flag.Bool("grid", false, "sweep the full Table I grid instead of the Fig. 3 subset")
		images  = flag.Int("images", 3, "synthetic images for application datasets")
		imgSize = flag.Int("imgsize", 24, "synthetic image side length")
	)
	flag.Parse()

	scale := experiments.Small()
	scale.TestCycles = *cycles
	scale.TrainCycles = *cycles
	scale.Images = *images
	scale.ImageSize = *imgSize
	scale.AppStreamCap = *cycles
	if *fuName != "" {
		fu, err := circuits.ParseFU(*fuName)
		if err != nil {
			log.Fatal(err)
		}
		scale.FUs = []circuits.FU{fu}
	}
	corners := core.Fig3Corners()
	if *full {
		corners = core.TableIGrid().Corners()
	}

	lab, err := experiments.NewLab(scale)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := experiments.Fig3(lab, corners)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FU       (V, T)          dataset        mean(ps)   max(ps)  static(ps)")
	for _, r := range rows {
		fmt.Printf("%-8s %-14s  %-13s %9.1f %9.1f %10.1f\n",
			r.FU, r.Corner, r.Dataset, r.MeanDelay, r.MaxDelay, r.Static)
	}
}
