// Command tevot-worker is a distributed-sweep worker: it registers
// with a tevot-sweep coordinator, rebuilds the characterization lab
// from the coordinator's seed-addressed spec (no operand payloads ever
// cross the wire), then loops lease → characterize → report until the
// sweep is done.
//
// Workers are disposable. Kill one — SIGKILL included — and its leases
// expire and the cells are re-issued elsewhere; restart it under the
// same -id and its stale leases are released immediately. Duplicate
// executions are safe because every cell is a deterministic function
// of (spec, cell key); the coordinator byte-checks them.
//
// Examples:
//
//	tevot-worker -coordinator http://127.0.0.1:7077
//	tevot-worker -coordinator http://10.0.0.5:7077 -id rack3-a -task-timeout 10m
//	tevot-worker -coordinator http://127.0.0.1:7077 -chaos-seed 7 -chaos-profile network
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tevot/internal/chaos"
	"tevot/internal/dist"
	"tevot/internal/obs"
	"tevot/internal/runner"
)

// chaosScheduleFor resolves -chaos-seed/-chaos-profile into a fault
// schedule (same semantics as tevot-sweep's chaos flags).
func chaosScheduleFor(seed int64, profile string) (chaos.Schedule, error) {
	if seed == 0 {
		return chaos.Schedule{}, errors.New("-chaos-profile requires -chaos-seed")
	}
	if profile == "" {
		return chaos.Generate(seed), nil
	}
	return chaos.Profile(profile, seed)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tevot-worker: ")
	var (
		coordURL = flag.String("coordinator", "", "coordinator base URL (required), e.g. http://127.0.0.1:7077")
		id       = flag.String("id", "", "stable worker identity (default w-<hostname>-<pid>); reuse after a restart to release stale leases instantly")
		taskTO   = flag.Duration("task-timeout", 0, "per-attempt cell deadline (0 = none)")
		retries  = flag.Int("retries", 1, "retries per cell for transient failures")

		chaosSeed    = flag.Int64("chaos-seed", 0, "arm a deterministic network-fault schedule generated from this seed (0 = off)")
		chaosProfile = flag.String("chaos-profile", "", "named fault profile: light, network, disk, clock, heavy (requires -chaos-seed)")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *coordURL == "" {
		log.Fatal("-coordinator is required") // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}

	run, err := obsFlags.Start("tevot-worker", 0, runner.LiveProgress)
	if err != nil {
		log.Fatal(err) // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}
	defer run.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	wcfg := dist.WorkerConfig{
		ID:          *id,
		Coordinator: *coordURL,
		TaskTimeout: *taskTO,
		Retries:     *retries,
	}
	if *chaosSeed != 0 || *chaosProfile != "" {
		sched, err := chaosScheduleFor(*chaosSeed, *chaosProfile)
		if err != nil {
			run.Fatal(err)
		}
		// A worker owns only the network plane: every RPC to the
		// coordinator goes through the seeded fault transport.
		wcfg.Transport = chaos.NewTransport(sched.Seed, sched.Net, nil)
		run.Log.Warn("chaos armed (network plane)", "schedule", sched.String())
	}
	start := time.Now()
	err = dist.RunWorker(ctx, wcfg)
	switch {
	case errors.Is(err, context.Canceled):
		run.SetInterrupted()
		run.Log.Warn("interrupted — leases will expire and cells will be re-issued")
		run.Exit(130)
	case err != nil:
		run.Fatal(err)
	default:
		run.Log.Info("worker done", "uptime", time.Since(start).Round(time.Second))
	}
}
