// Command tevot-train trains TEVoT and evaluates it against the three
// baseline error models across functional units, datasets, operating
// corners, and clock speedups — the paper's Table III. With -compare it
// instead reproduces Table II, the learning-method comparison (LR, k-NN,
// SVM, RFC).
//
// Examples:
//
//	tevot-train -cycles 5000 -corners 3          # quick Table III
//	tevot-train -paper                           # full 100-corner sweep (hours)
//	tevot-train -compare -cycles 20000           # Table II
package main

import (
	"flag"
	"fmt"
	"log"

	"os"
	"path/filepath"
	"strings"

	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tevot-train: ")
	var (
		cycles  = flag.Int("cycles", 2000, "training cycles per corner (test uses ~40%)")
		nCorner = flag.Int("corners", 3, "number of corners sampled from the Table I grid")
		fuName  = flag.String("fu", "", "restrict to one FU (default: all four)")
		paper   = flag.Bool("paper", false, "run the paper-scale sweep (100 corners, 200K cycles)")
		compare = flag.Bool("compare", false, "run the Table II learning-method comparison instead")
		seed    = flag.Int64("seed", 1, "global seed")
		saveDir = flag.String("savemodels", "", "train one TEVoT model per FU on random data and save to this directory (skips evaluation)")
	)
	flag.Parse()

	var scale experiments.Scale
	if *paper {
		scale = experiments.Paper()
	} else {
		scale = experiments.Small()
		scale.TrainCycles = *cycles
		scale.TestCycles = (*cycles * 2) / 5
		scale.AppStreamCap = *cycles
		all := core.TableIGrid().Corners()
		if *nCorner > len(all) {
			*nCorner = len(all)
		}
		scale.Corners = scale.Corners[:0]
		for i := 0; i < *nCorner; i++ {
			scale.Corners = append(scale.Corners, all[i*len(all)/(*nCorner)])
		}
	}
	scale.Seed = *seed
	if *fuName != "" {
		fu, err := circuits.ParseFU(*fuName)
		if err != nil {
			log.Fatal(err)
		}
		scale.FUs = []circuits.FU{fu}
	}

	lab, err := experiments.NewLab(scale)
	if err != nil {
		log.Fatal(err)
	}

	if *saveDir != "" {
		if err := os.MkdirAll(*saveDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for fu, u := range lab.Units {
			var traces []*core.Trace
			for _, corner := range scale.Corners {
				train, err := lab.Stream(fu, experiments.DatasetRandom, true)
				if err != nil {
					log.Fatal(err)
				}
				if _, err := u.CalibrateBaseClock(corner, train); err != nil {
					log.Fatal(err)
				}
				tr, err := core.CharacterizeWithSpeedups(u, corner, train, scale.Speedups)
				if err != nil {
					log.Fatal(err)
				}
				traces = append(traces, tr)
			}
			model, err := core.Train(fu, traces, core.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*saveDir, strings.ToLower(fu.String())+".tevot")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := model.Save(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("saved %v model (top features: %v) to %s\n",
				fu, model.TopFeatures(3), path)
		}
		return
	}

	if *compare {
		results, err := experiments.Table2(lab)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Table II — learning-method comparison")
		fmt.Println("method  accuracy  train-time    test-time")
		for _, r := range results {
			fmt.Printf("%-6s %8.2f%% %12v %12v\n", r.Method, 100*r.Accuracy, r.TrainTime, r.TestTime)
		}
		return
	}

	cells3, err := experiments.Table3(lab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table III — prediction accuracy across %d corners, %d speedups\n",
		len(scale.Corners), len(scale.Speedups))
	fmt.Println("FU       dataset        TEVoT    Delay-based  TER-based  TEVoT-NH")
	for _, fu := range circuits.AllFUs {
		for _, ds := range experiments.Datasets {
			var row [4]float64
			found := false
			for _, c := range cells3 {
				if c.FU != fu || c.Dataset != ds {
					continue
				}
				found = true
				switch c.Model {
				case "TEVoT":
					row[0] = c.Accuracy
				case "Delay-based":
					row[1] = c.Accuracy
				case "TER-based":
					row[2] = c.Accuracy
				case "TEVoT-NH":
					row[3] = c.Accuracy
				}
			}
			if !found {
				continue
			}
			fmt.Printf("%-8s %-13s %6.2f%% %11.2f%% %9.2f%% %9.2f%%\n",
				fu, ds, 100*row[0], 100*row[1], 100*row[2], 100*row[3])
		}
	}
	fmt.Printf("\nmean: TEVoT %.2f%% | Delay-based %.2f%% | TER-based %.2f%% | TEVoT-NH %.2f%%\n",
		100*experiments.MeanAccuracy(cells3, "TEVoT"),
		100*experiments.MeanAccuracy(cells3, "Delay-based"),
		100*experiments.MeanAccuracy(cells3, "TER-based"),
		100*experiments.MeanAccuracy(cells3, "TEVoT-NH"))
}
