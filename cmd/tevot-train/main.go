// Command tevot-train trains TEVoT and evaluates it against the three
// baseline error models across functional units, datasets, operating
// corners, and clock speedups — the paper's Table III. With -compare it
// instead reproduces Table II, the learning-method comparison (LR, k-NN,
// SVM, RFC).
//
// All modes run on the fault-tolerant runner: a failing or panicking
// per-FU pipeline is reported and skipped instead of killing the run,
// and -checkpoint/-resume let an interrupted paper-scale sweep (Ctrl-C
// is caught and flushed) pick up where it left off.
//
// Examples:
//
//	tevot-train -cycles 5000 -corners 3          # quick Table III
//	tevot-train -paper -checkpoint t3.ckpt       # full sweep, resumable
//	tevot-train -compare -cycles 20000           # Table II
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/experiments"
	"tevot/internal/obs"
	"tevot/internal/runner"
)

// run is the observability lifecycle for this invocation (profiles,
// debug endpoint, run manifest); set in main, used by the finish/exit
// helpers on every termination path.
var run *obs.Run

func main() {
	log.SetFlags(0)
	log.SetPrefix("tevot-train: ")
	var (
		cycles  = flag.Int("cycles", 2000, "training cycles per corner (test uses ~40%)")
		nCorner = flag.Int("corners", 3, "number of corners sampled from the Table I grid")
		fuName  = flag.String("fu", "", "restrict to one FU (default: all four)")
		paper   = flag.Bool("paper", false, "run the paper-scale sweep (100 corners, 200K cycles)")
		compare = flag.Bool("compare", false, "run the Table II learning-method comparison instead")
		seed    = flag.Int64("seed", 1, "global seed")
		saveDir = flag.String("savemodels", "", "train one TEVoT model per FU on random data and save to this directory (skips evaluation)")

		workers = flag.Int("workers", 0, "concurrent per-FU pipelines (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 0, "simulation shards per characterization (0 = auto: GOMAXPROCS/workers)")
		memoSet = flag.String("memo", "on", "transition memo cache: on, off, or an entry cap (bit-identical either way)")
		taskTO  = flag.Duration("task-timeout", 0, "per-pipeline deadline (0 = none), e.g. 30m")
		retries = flag.Int("retries", 1, "retries per pipeline for transient failures")
		ckpt    = flag.String("checkpoint", "", "JSONL checkpoint file (written as pipelines complete)")
		resume  = flag.Bool("resume", false, "skip pipelines already in -checkpoint")
	)
	obsFlags := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	var err error
	run, err = obsFlags.Start("tevot-train", *seed, runner.LiveProgress)
	if err != nil {
		log.Fatal(err) // lint:allow-raw-print (before obs.Start; no run manifest yet)
	}
	defer run.Close()

	var scale experiments.Scale
	if *paper {
		scale = experiments.Paper()
	} else {
		scale = experiments.Small()
		scale.TrainCycles = *cycles
		scale.TestCycles = (*cycles * 2) / 5
		scale.AppStreamCap = *cycles
		all := core.TableIGrid().Corners()
		if *nCorner > len(all) {
			*nCorner = len(all)
		}
		scale.Corners = scale.Corners[:0]
		for i := 0; i < *nCorner; i++ {
			scale.Corners = append(scale.Corners, all[i*len(all)/(*nCorner)])
		}
	}
	scale.Seed = *seed
	scale.ShardWorkers = *shards
	memo, err := core.ParseMemoSetting(*memoSet)
	if err != nil {
		run.Fatal(err)
	}
	scale.MemoOff = memo.MemoOff
	scale.MemoSize = memo.MemoSize
	if *fuName != "" {
		fu, err := circuits.ParseFU(*fuName)
		if err != nil {
			run.Fatal(err)
		}
		scale.FUs = []circuits.FU{fu}
	}

	lab, err := experiments.NewLab(scale)
	if err != nil {
		run.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := runner.Config{
		Workers:     *workers,
		TaskTimeout: *taskTO,
		Retries:     *retries,
		Seed:        *seed,
		Checkpoint:  *ckpt,
		Resume:      *resume,
	}

	if *saveDir != "" {
		saveModels(ctx, lab, cfg, *saveDir)
		return
	}

	if *compare {
		results, rep, err := experiments.Table2Run(ctx, lab, cfg)
		finish(rep, err, *ckpt)
		fmt.Println("Table II — learning-method comparison")
		fmt.Println("method  accuracy  train-time    test-time")
		for _, r := range results {
			fmt.Printf("%-6s %8.2f%% %12v %12v\n", r.Method, 100*r.Accuracy, r.TrainTime, r.TestTime)
		}
		exit(rep)
	}

	cells3, rep, err := experiments.Table3Run(ctx, lab, cfg)
	finish(rep, err, *ckpt)
	fmt.Printf("Table III — prediction accuracy across %d corners, %d speedups\n",
		len(scale.Corners), len(scale.Speedups))
	fmt.Println("FU       dataset        TEVoT    Delay-based  TER-based  TEVoT-NH")
	for _, fu := range circuits.AllFUs {
		for _, ds := range experiments.Datasets {
			var row [4]float64
			found := false
			for _, c := range cells3 {
				if c.FU != fu || c.Dataset != ds {
					continue
				}
				found = true
				switch c.Model {
				case "TEVoT":
					row[0] = c.Accuracy
				case "Delay-based":
					row[1] = c.Accuracy
				case "TER-based":
					row[2] = c.Accuracy
				case "TEVoT-NH":
					row[3] = c.Accuracy
				}
			}
			if !found {
				continue
			}
			fmt.Printf("%-8s %-13s %6.2f%% %11.2f%% %9.2f%% %9.2f%%\n",
				fu, ds, 100*row[0], 100*row[1], 100*row[2], 100*row[3])
		}
	}
	fmt.Printf("\nmean: TEVoT %.2f%% | Delay-based %.2f%% | TER-based %.2f%% | TEVoT-NH %.2f%%\n",
		100*experiments.MeanAccuracy(cells3, "TEVoT"),
		100*experiments.MeanAccuracy(cells3, "Delay-based"),
		100*experiments.MeanAccuracy(cells3, "TER-based"),
		100*experiments.MeanAccuracy(cells3, "TEVoT-NH"))
	exit(rep)
}

// finish handles a sweep's terminal conditions: infrastructure errors
// are fatal, interruption prints a resume hint and exits 130, per-cell
// failures are left for exit() after the partial results print.
func finish(rep *runner.Report, err error, ckpt string) {
	if err == nil {
		return
	}
	if !errors.Is(err, context.Canceled) {
		run.Fatal(err)
	}
	fmt.Println(rep.Summary())
	run.Note("report", rep)
	run.SetInterrupted()
	hint := ""
	if ckpt != "" {
		hint = fmt.Sprintf(" — rerun with -checkpoint %s -resume to continue", ckpt)
	}
	run.Log.Warn("interrupted" + hint)
	run.Exit(130)
}

// exit prints the sweep report and sets the exit code: 0 only when every
// cell succeeded.
func exit(rep *runner.Report) {
	fmt.Printf("\n%s\n", rep.Summary())
	run.Note("report", rep)
	if rep.Failed > 0 {
		run.Exit(1)
	}
	run.Exit(0)
}

// savedModel is the checkpointable record of one trained-and-saved
// model.
type savedModel struct {
	Path        string
	TopFeatures []string
}

// saveModels trains one TEVoT model per FU on random data and saves it,
// with each per-FU pipeline as one runner cell.
func saveModels(ctx context.Context, lab *experiments.Lab, cfg runner.Config, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		run.Fatal(err)
	}
	scale := lab.Scale
	opts := lab.CharOpts(cfg.Workers)
	var tasks []runner.Task[savedModel]
	for fu, u := range lab.Units {
		fu, u := fu, u
		tasks = append(tasks, runner.Task[savedModel]{
			Key: "train-save/" + fu.String(),
			Run: func(ctx context.Context) (savedModel, error) {
				var traces []*core.Trace
				for _, corner := range scale.Corners {
					train, err := lab.Stream(fu, experiments.DatasetRandom, true)
					if err != nil {
						return savedModel{}, err
					}
					if _, err := u.CalibrateBaseClockOptsContext(ctx, corner, train, opts); err != nil {
						return savedModel{}, err
					}
					tr, err := core.CharacterizeWithSpeedupsOptsContext(ctx, u, corner, train, scale.Speedups, opts)
					if err != nil {
						return savedModel{}, err
					}
					traces = append(traces, tr)
				}
				model, err := core.Train(fu, traces, core.DefaultConfig())
				if err != nil {
					return savedModel{}, err
				}
				path := filepath.Join(dir, strings.ToLower(fu.String())+".tevot")
				f, err := os.Create(path)
				if err != nil {
					return savedModel{}, err
				}
				if err := model.Save(f); err != nil {
					f.Close()
					return savedModel{}, err
				}
				if err := f.Close(); err != nil {
					return savedModel{}, err
				}
				return savedModel{Path: path, TopFeatures: model.TopFeatures(3)}, nil
			},
		})
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("train-save corners=%d cycles=%d seed=%d", len(scale.Corners), scale.TrainCycles, scale.Seed)
	}
	results, rep, err := runner.Run(ctx, cfg, tasks)
	finish(rep, err, cfg.Checkpoint)
	for _, fu := range circuits.AllFUs {
		if m, ok := results["train-save/"+fu.String()]; ok {
			fmt.Printf("saved %v model (top features: %v) to %s\n", fu, m.TopFeatures, m.Path)
		}
	}
	exit(rep)
}
