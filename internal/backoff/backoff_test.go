package backoff

import (
	"sync"
	"testing"
	"time"
)

func TestDelayDeterministicAndBounded(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 5 * time.Second, Seed: 42}
	for attempt := 0; attempt < 10; attempt++ {
		d1 := p.Delay("fig3/INT_ADD/random_data/v0.8100_t0", attempt)
		d2 := p.Delay("fig3/INT_ADD/random_data/v0.8100_t0", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: nondeterministic delay %v vs %v", attempt, d1, d2)
		}
		// Nominal doubling capped at Max, jitter in [0.5, 1.5).
		nominal := p.Base
		for i := 0; i < attempt && nominal < p.Max; i++ {
			nominal *= 2
		}
		if nominal > p.Max {
			nominal = p.Max
		}
		lo, hi := nominal/2, nominal+nominal/2
		if d1 < lo || d1 >= hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d1, lo, hi)
		}
	}
}

func TestDelayDecorrelatesKeys(t *testing.T) {
	p := Policy{Base: time.Second, Max: time.Minute, Seed: 1}
	seen := map[time.Duration]int{}
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		seen[p.Delay(k, 0)]++
	}
	if len(seen) < 4 {
		t.Fatalf("jitter barely varies across keys: %v", seen)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a := Policy{Base: time.Second, Max: time.Minute, Seed: 1}
	b := Policy{Base: time.Second, Max: time.Minute, Seed: 2}
	same := 0
	for _, k := range []string{"x", "y", "z", "w"} {
		if a.Delay(k, 0) == b.Delay(k, 0) {
			same++
		}
	}
	if same == 4 {
		t.Fatal("seed does not influence the schedule")
	}
}

// TestPolicySharedAcrossGoroutines is the race-freedom contract: one
// Policy value used concurrently must produce the same schedule as
// sequential use (run under -race in CI).
func TestPolicySharedAcrossGoroutines(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: time.Second, Seed: 7}
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
	want := make([]time.Duration, len(keys))
	for i, k := range keys {
		want[i] = p.Delay(k, i%4)
	}
	var wg sync.WaitGroup
	got := make([]time.Duration, len(keys))
	for i, k := range keys {
		i, k := i, k
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = p.Delay(k, i%4)
		}()
	}
	wg.Wait()
	for i := range keys {
		if got[i] != want[i] {
			t.Fatalf("key %s: concurrent delay %v != sequential %v", keys[i], got[i], want[i])
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := func() time.Time {
		return time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	}
	cases := []struct {
		name string
		h    string
		want time.Duration
		ok   bool
	}{
		{"delta seconds", "120", 120 * time.Second, true},
		{"delta zero", "0", 0, true},
		{"delta with spaces", "  30 ", 30 * time.Second, true},
		{"delta negative", "-5", 0, false},
		{"delta huge", "100000", 100000 * time.Second, true},
		{"http date future", "Fri, 07 Aug 2026 12:01:30 GMT", 90 * time.Second, true},
		{"http date past", "Fri, 07 Aug 2026 11:00:00 GMT", 0, true},
		{"http date rfc850", "Friday, 07-Aug-26 12:00:45 GMT", 45 * time.Second, true},
		{"http date asctime", "Fri Aug  7 12:00:10 2026", 10 * time.Second, true},
		{"empty", "", 0, false},
		{"blank", "   ", 0, false},
		{"garbage", "soon", 0, false},
		{"float seconds", "1.5", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ParseRetryAfter(tc.h, now)
			if ok != tc.ok || got != tc.want {
				t.Fatalf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.h, got, ok, tc.want, tc.ok)
			}
		})
	}
}

func TestCapClampsServerDelays(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 5 * time.Second, Seed: 1}
	cases := []struct {
		name string
		in   time.Duration
		want time.Duration
	}{
		{"within max", 2 * time.Second, 2 * time.Second},
		{"exactly max", 5 * time.Second, 5 * time.Second},
		{"pathological", 27 * time.Hour, 5 * time.Second},
		{"negative", -time.Second, 0},
		{"zero", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := p.Cap(tc.in); got != tc.want {
				t.Fatalf("Cap(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
	// A zero-Max policy must not clamp everything to zero.
	unbounded := Policy{Base: time.Second}
	if got := unbounded.Cap(time.Hour); got != time.Hour {
		t.Fatalf("zero-Max Cap(1h) = %v, want 1h", got)
	}
}

func TestHashStable(t *testing.T) {
	if Hash(1, "abc") != Hash(1, "abc") {
		t.Fatal("Hash is unstable")
	}
	if Hash(1, "abc") == Hash(2, "abc") {
		t.Fatal("seed ignored")
	}
	if Hash(1, "abc") == Hash(1, "abd") {
		t.Fatal("key ignored")
	}
}
