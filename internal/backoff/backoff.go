// Package backoff is the repo's one shared retry-delay policy:
// exponential backoff with deterministic, per-(key, attempt) jitter.
// It is used by internal/runner for cell retries and by internal/dist
// for the coordinator/worker HTTP client, so a sweep's retry schedule
// is reproducible end to end from the run seed alone.
//
// The jitter is intentionally NOT drawn from a math/rand source. A
// *rand.Rand is not safe for concurrent use, and the global rand makes
// runs irreproducible; both failure modes have bitten retry helpers
// that started life single-goroutine and later got shared. Instead the
// jitter factor is a pure function of (seed, key, attempt) folded
// through FNV-1a — stateless, lock-free, race-free by construction, and
// identical across processes, which is what lets a distributed sweep's
// retry traffic be replayed exactly.
package backoff

import (
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Policy is an exponential-backoff schedule: Base doubling per attempt
// up to Max, scaled by a deterministic per-(key, attempt) jitter factor
// in [0.5, 1.5). The zero value is unusable; fill Base and Max (Seed 0
// is a valid seed). Policy is a value type with no interior state, so
// one Policy may be shared freely across goroutines.
type Policy struct {
	Base time.Duration
	Max  time.Duration
	Seed int64
}

// Delay returns the wait before retry number attempt (0-based: the
// delay after the first failed attempt is Delay(key, 0)). The key
// decorrelates concurrent retriers — cells of a sweep, requests to an
// endpoint — so they do not thundering-herd on the same schedule.
func (p Policy) Delay(key string, attempt int) time.Duration {
	d := p.Base
	for i := 0; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	h := Hash(p.Seed+int64(attempt)*7919, key)
	jitter := 0.5 + float64(h%1000)/1000
	return time.Duration(float64(d) * jitter)
}

// Cap clamps a server-supplied delay to the policy's Max. Retry-After
// headers are attacker- (or chaos-) controlled input: a forged 429 with
// Retry-After: 100000 must not stall a worker for a day. Negative
// durations clamp to zero so callers can pass the result straight to a
// timer.
func (p Policy) Cap(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	if p.Max > 0 && d > p.Max {
		return p.Max
	}
	return d
}

// ParseRetryAfter parses a Retry-After header value in either of its
// two RFC 9110 forms — delta-seconds ("120") or an HTTP-date ("Fri, 07
// Aug 2026 12:00:00 GMT") — and returns the wait it encodes relative to
// now(). It reports ok=false for empty or malformed values, and clamps
// dates in the past to a zero wait. Callers are expected to bound the
// result with Policy.Cap: this function reports what the server asked
// for, not what is sane to obey.
func ParseRetryAfter(h string, now func() time.Time) (time.Duration, bool) {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(h); err == nil {
		d := t.Sub(now())
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// Hash folds a seed and a key through FNV-1a into a stable 64-bit
// value. It is the shared keyed-hash for every "deterministic but
// decorrelated" decision in the repo: backoff jitter, fault-injection
// selection, and any future sampling that must be independent of
// goroutine scheduling.
func Hash(seed int64, key string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(key))
	return h.Sum64()
}

// Mix64 is Hash for integer streams: it folds (seed, n) through the
// same FNV-1a construction without the []byte(key) allocation, for
// callers that draw many values per second — trace/span ID generation
// in internal/obs/trace draws two per span. Like Hash, it is pure and
// lock-free: the nth value of a stream is identical across processes
// started with the same seed.
func Mix64(seed int64, n uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(seed) >> (8 * i) & 0xff
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= n >> (8 * i) & 0xff
		h *= prime64
	}
	return h
}
