package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/runner"
)

func sweepCorners() []cells.Corner {
	return []cells.Corner{{V: 0.81, T: 0}, {V: 0.90, T: 50}, {V: 1.00, T: 100}}
}

// TestFig3RunWithInjectedFaultsLosesNoCells: the ISSUE acceptance
// criterion — a sweep with seeded transient faults injected into ~10% of
// tasks completes with zero lost cells, and its rows are identical to a
// fault-free run.
func TestFig3RunWithInjectedFaultsLosesNoCells(t *testing.T) {
	lab, err := NewLab(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	corners := sweepCorners()
	want, repRef, err := Fig3Run(context.Background(), lab, corners, runner.Config{})
	if err != nil || repRef.Failed != 0 {
		t.Fatalf("reference sweep: %v / %s", err, repRef.Summary())
	}

	// Find a seed whose 10% injection actually selects at least one of
	// this sweep's 9 cells, so the retry path is provably exercised.
	// The scan is deterministic: the same seed wins every run.
	seed := int64(-1)
	for s := int64(0); s < 200; s++ {
		inj := runner.NewFaultInjector(s, 0.10)
		for _, fu := range lab.Scale.fus() {
			for _, ds := range Datasets {
				for _, c := range corners {
					if inj(Fig3CellKey(fu, ds, c), 0) != nil {
						seed = s
					}
				}
			}
		}
		if seed >= 0 {
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed under 200 injects into this sweep (injector broken?)")
	}

	cfg := runner.Config{
		Retries: 2,
		Backoff: time.Millisecond,
		Seed:    seed,
		Inject:  runner.NewFaultInjector(seed, 0.10),
	}
	got, rep, err := Fig3Run(context.Background(), lab, corners, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Skipped != 0 {
		t.Fatalf("cells lost under 10%% fault injection:\n%s", rep.Summary())
	}
	if rep.Retried == 0 {
		t.Fatal("injection fired during seed scan but no retries recorded")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("rows under fault injection differ from fault-free sweep")
	}
}

// TestFig3RunResumeReproducesUninterruptedRun: a sweep that loses cells
// mid-run (simulating a crash: some cells hard-fail, the rest are
// checkpointed) and is then resumed produces rows byte-identical to an
// uninterrupted run, re-executing only the missing cells.
func TestFig3RunResumeReproducesUninterruptedRun(t *testing.T) {
	lab, err := NewLab(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	corners := sweepCorners()
	ckpt := filepath.Join(t.TempDir(), "fig3.ckpt")

	want, _, err := Fig3Run(context.Background(), lab, corners, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}

	// "Interrupted" pass: every sobel cell fails permanently, so only
	// the other cells land in the checkpoint.
	failSobel := func(key string, attempt int) error {
		if strings.Contains(key, DatasetSobel) {
			return errors.New("simulated mid-run crash")
		}
		return nil
	}
	partial, rep1, err := Fig3Run(context.Background(), lab, corners,
		runner.Config{Checkpoint: ckpt, Inject: failSobel})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Failed != len(corners) || rep1.Succeeded != 2*len(corners) {
		t.Fatalf("unexpected interrupted pass:\n%s", rep1.Summary())
	}
	if len(partial) != 2*len(corners) {
		t.Fatalf("partial rows = %d, want %d", len(partial), 2*len(corners))
	}

	// Resume: checkpointed cells are skipped, failed cells re-run clean.
	got, rep2, err := Fig3Run(context.Background(), lab, corners,
		runner.Config{Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != 2*len(corners) || rep2.Succeeded != len(corners) || rep2.Failed != 0 {
		t.Fatalf("unexpected resume pass:\n%s", rep2.Summary())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed rows differ from uninterrupted sweep")
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Fatal("resumed rows not byte-identical to uninterrupted sweep")
	}
}

// TestFig3RunSurvivesBrokenUnit: a cell whose functional unit is broken
// (the kind of condition that used to log.Fatal the whole process) is
// recorded as failed while every other cell completes.
func TestFig3RunSurvivesBrokenUnit(t *testing.T) {
	scale := tinyScale()
	scale.FUs = []circuits.FU{circuits.IntAdd32, circuits.FPAdd32}
	lab, err := NewLab(scale)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage one unit the way a corrupted build would: no netlist.
	lab.Units[circuits.FPAdd32] = &core.FUnit{FU: circuits.FPAdd32}

	corners := sweepCorners()[:1]
	rows, rep, err := Fig3Run(context.Background(), lab, corners, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantOK := len(Datasets)          // all IntAdd cells
	if rep.Failed != len(Datasets) { // all FPAdd cells
		t.Fatalf("failed = %d, want %d:\n%s", rep.Failed, len(Datasets), rep.Summary())
	}
	if rep.Succeeded != wantOK || len(rows) != wantOK {
		t.Fatalf("succeeded = %d rows = %d, want %d", rep.Succeeded, len(rows), wantOK)
	}
	for _, r := range rows {
		if r.FU != circuits.IntAdd32 {
			t.Fatalf("row for broken unit leaked: %+v", r)
		}
	}
	// The strict wrapper reports the failures as an error, not a crash.
	if _, err := Fig3(lab, corners); err == nil {
		t.Fatal("Fig3 wrapper swallowed cell failures")
	}
}

// TestTable2RunAndTable3RunReports: the remaining sweeps flow through
// the runner and report per-cell accounting.
func TestTable3RunReportAccounting(t *testing.T) {
	lab, err := NewLab(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	cells3, rep, err := Table3Run(context.Background(), lab, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 1 || rep.Succeeded != 1 {
		t.Fatalf("unexpected report:\n%s", rep.Summary())
	}
	if len(cells3) != len(Datasets)*4 {
		t.Fatalf("cells = %d, want %d", len(cells3), len(Datasets)*4)
	}
	results, rep2, err := Table2Run(context.Background(), lab, runner.Config{})
	if err != nil || rep2.Succeeded != 1 {
		t.Fatalf("table2: %v / %s", err, rep2.Summary())
	}
	if len(results) != 4 {
		t.Fatalf("table2 methods = %d, want 4", len(results))
	}
}

// TestFig3SweepNameFingerprint: resuming a checkpoint against a
// differently scaled sweep is refused — the scale is part of the sweep
// identity.
func TestFig3SweepNameFingerprint(t *testing.T) {
	lab, err := NewLab(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "fig3.ckpt")
	corners := sweepCorners()[:1]
	if _, _, err := Fig3Run(context.Background(), lab, corners, runner.Config{Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	bigger := tinyScale()
	bigger.TestCycles += 100
	lab2, err := NewLab(bigger)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Fig3Run(context.Background(), lab2, corners, runner.Config{Checkpoint: ckpt, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("scale-mismatched resume accepted: %v", err)
	}
}
