// Package experiments orchestrates the paper's evaluation: one entry
// point per table and figure, shared by the command-line tools and the
// benchmark harness. Every experiment is parameterized by a Scale so the
// same code runs as a quick smoke (CI-sized) or as a paper-sized sweep.
package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/imaging"
	"tevot/internal/inject"
	"tevot/internal/runner"
	"tevot/internal/workload"
)

// Scale sizes an experiment run.
type Scale struct {
	// TrainCycles and TestCycles size the random characterization
	// streams per corner (the paper uses 200 K each).
	TrainCycles, TestCycles int
	// Corners are the operating conditions swept (the paper's Table I
	// grid has 100).
	Corners []cells.Corner
	// Speedups are the clock speedups over the error-free base clock.
	Speedups []float64
	// Images is the number of synthetic images; ImageSize their side.
	Images, ImageSize int
	// AppStreamCap bounds profiled operand pairs per FU.
	AppStreamCap int
	// Seed drives all pseudo-randomness.
	Seed int64
	// FUs restricts the functional units (nil = all four).
	FUs []circuits.FU
	// ShardWorkers is the per-characterization shard parallelism
	// (core.CharacterizeOptions.Workers). 0 = auto: GOMAXPROCS divided
	// by the sweep's cell-level worker count, so the two levels — cells
	// across the pool, shards inside a cell — compose without
	// oversubscribing the machine.
	ShardWorkers int
	// MemoOff disables the simulator's transition memo cache; MemoSize
	// caps its entries (0 = sim default). See core.CharacterizeOptions.
	MemoOff  bool
	MemoSize int
}

// CharOpts resolves the two-level worker budget: with W cell-level
// workers already running characterizations concurrently, each cell gets
// GOMAXPROCS/W simulation shards (at least 1). An explicit
// Scale.ShardWorkers overrides the division.
func (l *Lab) CharOpts(cellWorkers int) core.CharacterizeOptions {
	w := l.Scale.ShardWorkers
	if w == 0 {
		cw := cellWorkers
		if cw <= 0 {
			cw = runtime.GOMAXPROCS(0)
		}
		w = runtime.GOMAXPROCS(0) / cw
		if w < 1 {
			w = 1
		}
	}
	return core.CharacterizeOptions{Workers: w, MemoOff: l.Scale.MemoOff, MemoSize: l.Scale.MemoSize}
}

// Small returns a laptop-scale configuration that exercises every code
// path of every experiment in seconds-to-minutes.
func Small() Scale {
	return Scale{
		TrainCycles: 2000,
		TestCycles:  800,
		Corners: []cells.Corner{
			{V: 0.81, T: 0}, {V: 0.90, T: 50}, {V: 1.00, T: 100},
		},
		Speedups:     []float64{0.05, 0.10, 0.15},
		Images:       3,
		ImageSize:    24,
		AppStreamCap: 1500,
		Seed:         1,
	}
}

// Paper returns the paper's full experimental scale: the Table I grid
// (100 corners × 3 speedups), 200 K training and test cycles. Running it
// takes hours; use the cmd tools' flags to select it deliberately.
func Paper() Scale {
	s := Small()
	s.TrainCycles = 200000
	s.TestCycles = 200000
	s.Corners = core.TableIGrid().Corners()
	s.Images = 10
	s.ImageSize = 64
	s.AppStreamCap = 20000
	return s
}

func (s Scale) fus() []circuits.FU {
	if len(s.FUs) > 0 {
		return s.FUs
	}
	return circuits.AllFUs
}

// Dataset labels, matching the paper's three datasets.
const (
	DatasetRandom = "random_data"
	DatasetSobel  = "sobel_data"
	DatasetGauss  = "gauss_data"
)

// Datasets lists the paper's three dataset labels.
var Datasets = []string{DatasetRandom, DatasetSobel, DatasetGauss}

// Lab bundles the built functional units and the profiled application
// streams so experiments can share the expensive setup.
type Lab struct {
	Scale  Scale
	Units  map[circuits.FU]*core.FUnit
	Images []*imaging.Image

	appStreams map[string]map[circuits.FU]*workload.Stream
}

// NewLab builds the four FUs and profiles the application datasets.
func NewLab(scale Scale) (*Lab, error) {
	units := make(map[circuits.FU]*core.FUnit)
	for _, fu := range scale.fus() {
		u, err := core.NewFUnit(fu)
		if err != nil {
			return nil, err
		}
		units[fu] = u
	}
	lab := &Lab{
		Scale:      scale,
		Units:      units,
		Images:     imaging.SyntheticSet(scale.Images, scale.ImageSize, scale.ImageSize),
		appStreams: make(map[string]map[circuits.FU]*workload.Stream),
	}
	if err := lab.profileApps(); err != nil {
		return nil, err
	}
	return lab, nil
}

// profileApps records per-FU operand streams from both applications over
// the image set. FUs an application does not exercise natively get a
// value-preserving conversion of its pixel-derived operands, so every FU
// has all three datasets (the paper's kernels run all four FUs on the
// GPU; our Go kernels split int/float pipelines — see DESIGN.md).
func (l *Lab) profileApps() error {
	for _, app := range inject.Apps {
		rec := inject.NewRecording(l.Scale.AppStreamCap)
		for _, img := range l.Images {
			app.Run(img, rec)
		}
		name := DatasetSobel
		if app == inject.GaussApp {
			name = DatasetGauss
		}
		perFU := make(map[circuits.FU]*workload.Stream)
		var native []*workload.Stream
		for _, fu := range app.FUs() {
			s, err := rec.Stream(fu)
			if err != nil {
				return fmt.Errorf("experiments: profiling %v/%v: %w", app, fu, err)
			}
			s.Name = name
			perFU[fu] = s
			native = append(native, s)
		}
		// Derive streams for the other two FUs by converting operand
		// values between integer and float domains.
		converted := 0
		for _, fu := range l.Scale.fus() {
			if _, ok := perFU[fu]; ok {
				continue
			}
			src := native[converted%len(native)]
			converted++
			perFU[fu] = convertStream(src, fu.IsFloat())
		}
		l.appStreams[name] = perFU
	}
	return nil
}

// convertStream maps operand values between domains, preserving
// magnitudes (the workload's "shape").
func convertStream(s *workload.Stream, toFloat bool) *workload.Stream {
	pairs := make([]workload.OperandPair, len(s.Pairs))
	for i, p := range s.Pairs {
		if toFloat {
			pairs[i] = workload.OperandPair{
				A: circuits.BitsFromFloat32(float32(int32(p.A))),
				B: circuits.BitsFromFloat32(float32(int32(p.B))),
			}
		} else {
			pairs[i] = workload.OperandPair{
				A: uint32(int32(circuits.Float32FromBits(p.A))),
				B: uint32(int32(circuits.Float32FromBits(p.B))),
			}
		}
	}
	return &workload.Stream{Name: s.Name, Pairs: pairs}
}

// Stream returns the named dataset's operand stream for a FU, sized for
// training or testing. Random data is freshly generated per role;
// application data is split between roles (the paper uses 5 % of images
// for training and the rest for testing).
func (l *Lab) Stream(fu circuits.FU, dataset string, train bool) (*workload.Stream, error) {
	n := l.Scale.TestCycles
	seed := l.Scale.Seed + int64(fu)*31 + 1000
	if train {
		n = l.Scale.TrainCycles
		seed += 7
	}
	if dataset == DatasetRandom {
		return workload.Random(fu.IsFloat(), n+1, seed), nil
	}
	perFU, ok := l.appStreams[dataset]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown dataset %q", dataset)
	}
	s, ok := perFU[fu]
	if !ok {
		return nil, fmt.Errorf("experiments: dataset %q has no stream for %v", dataset, fu)
	}
	// Train on a small head slice, test on the remainder — mirroring the
	// paper's 5 % / 95 % image split. At reduced scales the 5 % slice is
	// floored at 100 pairs so the model sees enough of the application
	// distribution to learn at all.
	cut := s.Len() / 20
	if cut < 100 {
		cut = 100
	}
	if cut > s.Len()/2 {
		cut = s.Len() / 2
	}
	if train {
		return s.Slice(0, cut), nil
	}
	return s.Slice(cut, s.Len()), nil
}

// DelayRow is one point of Fig. 3: the mean dynamic delay of a dataset
// on a FU at a corner.
type DelayRow struct {
	FU        circuits.FU
	Corner    cells.Corner
	Dataset   string
	MeanDelay float64 // ps
	MaxDelay  float64 // ps
	Static    float64 // ps
}

// Fig3 characterizes every FU × dataset × corner combination and returns
// the average dynamic delays the paper plots in Fig. 3. Corners defaults
// to the paper's 9-corner plot subset when the scale has none.
//
// The cells run concurrently on the fault-tolerant runner (see Fig3Run
// for per-cell failure reporting, deadlines, and checkpoint/resume);
// this wrapper keeps the original strict contract: any failed cell
// surfaces as an error.
func Fig3(lab *Lab, corners []cells.Corner) ([]DelayRow, error) {
	rows, rep, err := Fig3Run(context.Background(), lab, corners, runner.Config{})
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

// Table3Cell is one cell of Table III: a model's mean prediction
// accuracy for one FU and dataset, averaged over corners and speedups.
type Table3Cell struct {
	FU       circuits.FU
	Dataset  string
	Model    string
	Accuracy float64
}

// Table3 trains TEVoT per FU (on random data plus a slice of application
// data, as the paper does) and evaluates it and the three baselines on
// held-out data across the scale's corners and speedups.
//
// Per-FU pipelines run concurrently on the fault-tolerant runner (see
// Table3Run); this wrapper keeps the original strict contract: any
// failed FU surfaces as an error.
func Table3(lab *Lab) ([]Table3Cell, error) {
	cells3, rep, err := Table3Run(context.Background(), lab, runner.Config{})
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	return cells3, nil
}

// MeanAccuracy averages the accuracy of one model over a Table III cell
// list (the paper's headline 98.25 % aggregates all FUs and datasets).
func MeanAccuracy(cells3 []Table3Cell, model string) float64 {
	sum, n := 0.0, 0
	for _, c := range cells3 {
		if c.Model == model {
			sum += c.Accuracy
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Table2 reproduces the learning-method comparison on one FU at one
// corner: LR, k-NN, SVM, RFC accuracy and train/test times. The FP
// adder is used when available — its exponent-driven dynamic delay is
// the clearest stage for the methods' differences (the ripple adder's
// carry-chain delay is pathologically hard for every axis-aligned or
// linear learner; see EXPERIMENTS.md).
// Table II is a method comparison, so the capture clock is chosen to
// balance the two classes (an overclock deep enough that a sizeable
// fraction of cycles err): the 60th percentile of the training
// delays. At the paper's tail-only clocks every method ties at the
// majority rate and the comparison is uninformative.
//
// The comparison runs as one cell on the fault-tolerant runner (see
// Table2Run); this wrapper keeps the original strict contract.
func Table2(lab *Lab) ([]core.MethodResult, error) {
	results, rep, err := Table2Run(context.Background(), lab, runner.Config{})
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
