package experiments

import (
	"math"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
)

// tinyScale keeps experiment tests fast: one small FU, two corners, one
// speedup, small streams.
func tinyScale() Scale {
	s := Small()
	s.TrainCycles = 700
	s.TestCycles = 400
	s.Corners = []cells.Corner{{V: 0.81, T: 0}, {V: 1.00, T: 100}}
	s.Speedups = []float64{0.10}
	s.Images = 2
	s.ImageSize = 16
	s.AppStreamCap = 600
	s.FUs = []circuits.FU{circuits.IntAdd32}
	return s
}

func TestLabSetup(t *testing.T) {
	lab, err := NewLab(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.Images) != 2 {
		t.Fatalf("lab has %d images", len(lab.Images))
	}
	for _, ds := range Datasets {
		s, err := lab.Stream(circuits.IntAdd32, ds, true)
		if err != nil {
			t.Fatalf("%s train: %v", ds, err)
		}
		if s.Len() < 2 {
			t.Fatalf("%s train stream too short (%d)", ds, s.Len())
		}
		s, err = lab.Stream(circuits.IntAdd32, ds, false)
		if err != nil {
			t.Fatalf("%s test: %v", ds, err)
		}
		if s.Len() < 2 {
			t.Fatalf("%s test stream too short (%d)", ds, s.Len())
		}
	}
	if _, err := lab.Stream(circuits.IntAdd32, "bogus", true); err == nil {
		t.Error("Stream accepted unknown dataset")
	}
}

// TestLabAllFUsHaveAppStreams: every FU gets all three datasets, native
// or converted.
func TestLabAllFUsHaveAppStreams(t *testing.T) {
	s := tinyScale()
	s.FUs = nil // all four
	lab, err := NewLab(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, fu := range circuits.AllFUs {
		for _, ds := range Datasets {
			st, err := lab.Stream(fu, ds, false)
			if err != nil {
				t.Fatalf("%v/%s: %v", fu, ds, err)
			}
			if st.Len() < 2 {
				t.Fatalf("%v/%s: stream too short", fu, ds)
			}
		}
	}
}

func TestFig3ShapeAndPhysics(t *testing.T) {
	lab, err := NewLab(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	corners := []cells.Corner{{V: 0.81, T: 0}, {V: 1.00, T: 0}}
	rows, err := Fig3(lab, corners)
	if err != nil {
		t.Fatal(err)
	}
	// 1 FU × 3 datasets × 2 corners.
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	// Lower voltage → higher mean delay for every dataset.
	byKey := map[string]map[float64]float64{}
	for _, r := range rows {
		if byKey[r.Dataset] == nil {
			byKey[r.Dataset] = map[float64]float64{}
		}
		byKey[r.Dataset][r.Corner.V] = r.MeanDelay
		if r.MeanDelay <= 0 || r.MeanDelay > r.Static {
			t.Errorf("%v/%s: mean delay %v outside (0, static %v]", r.Corner, r.Dataset, r.MeanDelay, r.Static)
		}
	}
	for ds, m := range byKey {
		if m[0.81] <= m[1.00] {
			t.Errorf("%s: delay at 0.81V (%v) should exceed 1.00V (%v)", ds, m[0.81], m[1.00])
		}
	}
	// The paper's observation: the dataset changes the mean dynamic delay
	// dramatically (their INT_ADD shows a 30 % gap between random and
	// application data). Our integer Sobel stream leans the other way —
	// two's-complement negative accumulators produce long carry-ripple
	// runs — so assert the magnitude of the workload effect, not its
	// direction (see EXPERIMENTS.md).
	r, s := byKey[DatasetRandom][0.81], byKey[DatasetSobel][0.81]
	gap := math.Abs(r-s) / math.Max(r, s)
	if gap < 0.10 {
		t.Errorf("random vs sobel mean-delay gap %.1f%%; expected a pronounced workload effect", gap*100)
	}
}

func TestTable3SmallRun(t *testing.T) {
	lab, err := NewLab(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	cells3, err := Table3(lab)
	if err != nil {
		t.Fatal(err)
	}
	// 1 FU × 3 datasets × 4 models.
	if len(cells3) != 12 {
		t.Fatalf("got %d cells, want 12", len(cells3))
	}
	accTEVoT := MeanAccuracy(cells3, "TEVoT")
	accDelay := MeanAccuracy(cells3, "Delay-based")
	accTER := MeanAccuracy(cells3, "TER-based")
	accNH := MeanAccuracy(cells3, "TEVoT-NH")
	t.Logf("TEVoT %.4f | Delay %.4f | TER %.4f | NH %.4f", accTEVoT, accDelay, accTER, accNH)
	if accTEVoT < 0.85 {
		t.Errorf("TEVoT mean accuracy %.4f too low", accTEVoT)
	}
	if accTEVoT <= accDelay {
		t.Errorf("TEVoT (%.4f) should beat Delay-based (%.4f)", accTEVoT, accDelay)
	}
	if math.IsNaN(MeanAccuracy(cells3, "TEVoT")) {
		t.Error("MeanAccuracy returned NaN for present model")
	}
	if !math.IsNaN(MeanAccuracy(cells3, "nope")) {
		t.Error("MeanAccuracy should be NaN for missing model")
	}
}

func TestTable2SmallRun(t *testing.T) {
	lab, err := NewLab(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	results, err := Table2(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d methods", len(results))
	}
	for _, r := range results {
		if r.TrainTime < 0 || r.TestTime < 0 {
			t.Errorf("%s: negative times", r.Method)
		}
	}
}

func TestSpeedupClaim(t *testing.T) {
	lab, err := NewLab(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Speedup(lab, circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sim %v/cycle, predict %v/cycle, speedup %.1fx", res.SimPerCycle, res.PredPerCycle, res.Speedup)
	// On the smallest FU the gap is narrowest; still expect inference to
	// win clearly. (The paper's 100x is against multi-thousand-gate FUs.)
	if res.Speedup < 1 {
		t.Errorf("TEVoT inference (%v) should beat simulation (%v)", res.PredPerCycle, res.SimPerCycle)
	}
	if _, err := Speedup(lab, circuits.FPMul32); err == nil {
		t.Error("Speedup answered for an unbuilt FU")
	}
}

func TestTable4AndFig4Small(t *testing.T) {
	s := tinyScale()
	s.FUs = nil // quality study needs all four FUs across both apps
	s.TrainCycles = 500
	s.AppStreamCap = 400
	s.Images = 2
	lab, err := NewLab(s)
	if err != nil {
		t.Fatal(err)
	}
	rows, sobelRes, gaussRes, err := Table4(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, row := range rows {
		for _, model := range []string{"TEVoT", "Delay-based", "TER-based", "TEVoT-NH"} {
			acc, ok := row.Accuracy[model]
			if !ok {
				t.Fatalf("%v: missing model %s", row.App, model)
			}
			if acc < 0 || acc > 1 {
				t.Fatalf("%v/%s: accuracy %v", row.App, model, acc)
			}
		}
		t.Logf("%v: %v", row.App, row.Accuracy)
	}
	if len(sobelRes.Points) == 0 || len(gaussRes.Points) == 0 {
		t.Fatal("empty quality results")
	}

	outputs, err := Fig4(lab)
	if err != nil {
		t.Fatal(err)
	}
	if len(outputs) != 5 { // ground truth + 4 models
		t.Fatalf("Fig4 produced %d outputs, want 5", len(outputs))
	}
	for _, o := range outputs {
		if o.Image == nil {
			t.Fatalf("%s: nil image", o.Model)
		}
	}
}
