package experiments

import (
	"context"
	"fmt"
	"sort"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/obs"
	"tevot/internal/runner"
)

// This file routes the paper's sweeps through internal/runner, the
// fault-tolerant executor: every (FU, dataset, corner) cell runs on a
// bounded worker pool with panic isolation, per-task deadlines, retries
// for transient failures, and JSONL checkpointing — so a paper-scale
// run (100 corners × 4 FUs, hours of simulation) survives single-cell
// failures and process kills. Results are reassembled in canonical
// sweep order regardless of completion order, so a resumed run is
// indistinguishable from an uninterrupted one.

// cornerKey renders a corner into a stable checkpoint-key fragment.
func cornerKey(c cells.Corner) string {
	return fmt.Sprintf("v%.4f_t%g", c.V, c.T)
}

// Fig3CellKey names one (FU, dataset, corner) cell of the Fig. 3 grid.
// It is the cell's identity everywhere: runner checkpoints, the
// distributed coordinator's lease table and journal, and the merged
// result JSONL — one stable key space across all execution modes.
func Fig3CellKey(fu circuits.FU, dataset string, c cells.Corner) string {
	return fmt.Sprintf("fig3/%s/%s/%s", fu, dataset, cornerKey(c))
}

// Fig3Cell characterizes one cell of the Fig. 3 grid. It is a
// deterministic function of (lab scale, fu, dataset, corner): the
// operand stream is regenerated from the lab's seed, so any process
// holding the same Scale reproduces the identical DelayRow — the
// property that makes distributed execution (internal/dist) safe to
// retry anywhere.
func Fig3Cell(ctx context.Context, lab *Lab, fu circuits.FU, dataset string, corner cells.Corner, opts core.CharacterizeOptions) (DelayRow, error) {
	u, ok := lab.Units[fu]
	if !ok {
		return DelayRow{}, fmt.Errorf("experiments: lab has no unit for %v", fu)
	}
	s, err := lab.Stream(fu, dataset, false)
	if err != nil {
		return DelayRow{}, err
	}
	tr, err := core.CharacterizeOptsContext(ctx, u, corner, s, nil, opts)
	if err != nil {
		return DelayRow{}, err
	}
	return DelayRow{
		FU: fu, Corner: corner, Dataset: dataset,
		MeanDelay: tr.MeanDelay(), MaxDelay: tr.MaxDelay,
		Static: tr.StaticDelay,
	}, nil
}

// fig3SweepName fingerprints the sweep's identity and scale so a
// checkpoint cannot be resumed against a differently shaped run.
func fig3SweepName(lab *Lab, corners []cells.Corner) string {
	return fmt.Sprintf("fig3 fus=%d datasets=%d corners=%d cycles=%d seed=%d",
		len(lab.Scale.fus()), len(Datasets), len(corners), lab.Scale.TestCycles, lab.Scale.Seed)
}

// Fig3Run is Fig3 on the fault-tolerant runner: each (FU, dataset,
// corner) cell is an independent task. Failed cells are recorded in the
// Report and omitted from the rows; the sweep itself keeps going. The
// returned error is non-nil only for infrastructure problems or context
// cancellation (partial rows and the Report are still returned).
func Fig3Run(ctx context.Context, lab *Lab, corners []cells.Corner, cfg runner.Config) ([]DelayRow, *runner.Report, error) {
	ctx, end := obs.Span(ctx, "experiments.fig3")
	defer end()
	if len(corners) == 0 {
		corners = core.Fig3Corners()
	}
	if cfg.Name == "" {
		cfg.Name = fig3SweepName(lab, corners)
	}
	opts := lab.CharOpts(cfg.Workers)
	var tasks []runner.Task[DelayRow]
	for _, fu := range lab.Scale.fus() {
		for _, dataset := range Datasets {
			for _, corner := range corners {
				fu, dataset, corner := fu, dataset, corner
				tasks = append(tasks, runner.Task[DelayRow]{
					Key: Fig3CellKey(fu, dataset, corner),
					Run: func(ctx context.Context) (DelayRow, error) {
						return Fig3Cell(ctx, lab, fu, dataset, corner, opts)
					},
				})
			}
		}
	}
	results, rep, err := runner.Run(ctx, cfg, tasks)
	// Reassemble in canonical sweep order so output is identical no
	// matter how workers interleaved or which cells were resumed.
	rows := make([]DelayRow, 0, len(results))
	for _, fu := range lab.Scale.fus() {
		for _, dataset := range Datasets {
			for _, corner := range corners {
				if r, ok := results[Fig3CellKey(fu, dataset, corner)]; ok {
					rows = append(rows, r)
				}
			}
		}
	}
	return rows, rep, err
}

func table3SweepName(lab *Lab) string {
	return fmt.Sprintf("table3 fus=%d corners=%d speedups=%d train=%d test=%d seed=%d",
		len(lab.Scale.fus()), len(lab.Scale.Corners), len(lab.Scale.Speedups),
		lab.Scale.TrainCycles, lab.Scale.TestCycles, lab.Scale.Seed)
}

// Table3Run is Table3 on the fault-tolerant runner. The cell here is
// one functional unit — the smallest independently useful chunk, since
// a model must see every corner's training traces before it can be
// evaluated. A panic or failure while training one FU no longer aborts
// the other three.
func Table3Run(ctx context.Context, lab *Lab, cfg runner.Config) ([]Table3Cell, *runner.Report, error) {
	ctx, end := obs.Span(ctx, "experiments.table3")
	defer end()
	if cfg.Name == "" {
		cfg.Name = table3SweepName(lab)
	}
	opts := lab.CharOpts(cfg.Workers)
	var tasks []runner.Task[[]Table3Cell]
	for _, fu := range lab.Scale.fus() {
		fu := fu
		tasks = append(tasks, runner.Task[[]Table3Cell]{
			Key: "table3/" + fu.String(),
			Run: func(ctx context.Context) ([]Table3Cell, error) {
				return table3ForFU(ctx, lab, fu, opts)
			},
		})
	}
	results, rep, err := runner.Run(ctx, cfg, tasks)
	var cells3 []Table3Cell
	for _, fu := range lab.Scale.fus() {
		cells3 = append(cells3, results["table3/"+fu.String()]...)
	}
	return cells3, rep, err
}

// table3ForFU is the per-FU offline + evaluation pipeline of Table III
// (see Table3 for the paper mapping), made cancellation-aware.
func table3ForFU(ctx context.Context, lab *Lab, fu circuits.FU, opts core.CharacterizeOptions) ([]Table3Cell, error) {
	u := lab.Units[fu]

	// Offline phase: calibrate base clocks and characterize training
	// data at every corner.
	var trainTraces []*core.Trace
	for _, corner := range lab.Scale.Corners {
		randTrain, err := lab.Stream(fu, DatasetRandom, true)
		if err != nil {
			return nil, err
		}
		if _, err := u.CalibrateBaseClockOptsContext(ctx, corner, randTrain, opts); err != nil {
			return nil, err
		}
		trRand, err := core.CharacterizeWithSpeedupsOptsContext(ctx, u, corner, randTrain, lab.Scale.Speedups, opts)
		if err != nil {
			return nil, err
		}
		trainTraces = append(trainTraces, trRand)
		for _, ds := range []string{DatasetSobel, DatasetGauss} {
			appTrain, err := lab.Stream(fu, ds, true)
			if err != nil {
				return nil, err
			}
			trApp, err := core.CharacterizeWithSpeedupsOptsContext(ctx, u, corner, appTrain, lab.Scale.Speedups, opts)
			if err != nil {
				return nil, err
			}
			trainTraces = append(trainTraces, trApp)
		}
	}

	tevot, err := core.Train(fu, trainTraces, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	nhCfg := core.DefaultConfig()
	nhCfg.History = false
	tevotNH, err := core.Train(fu, trainTraces, nhCfg)
	if err != nil {
		return nil, err
	}
	delayBased, err := core.NewDelayBased(fu, trainTraces)
	if err != nil {
		return nil, err
	}
	terBased, err := core.NewTERBased(fu, trainTraces, lab.Scale.Seed)
	if err != nil {
		return nil, err
	}
	models := []core.ErrorPredictor{tevot, delayBased, terBased, tevotNH}

	// Evaluation phase: held-out data per dataset.
	var cells3 []Table3Cell
	for _, dataset := range Datasets {
		testStream, err := lab.Stream(fu, dataset, false)
		if err != nil {
			return nil, err
		}
		var testTraces []*core.Trace
		for _, corner := range lab.Scale.Corners {
			tr, err := core.CharacterizeWithSpeedupsOptsContext(ctx, u, corner, testStream, lab.Scale.Speedups, opts)
			if err != nil {
				return nil, err
			}
			testTraces = append(testTraces, tr)
		}
		for _, m := range models {
			_, acc, err := core.EvaluateAll(m, testTraces)
			if err != nil {
				return nil, err
			}
			cells3 = append(cells3, Table3Cell{FU: fu, Dataset: dataset, Model: m.Name(), Accuracy: acc})
		}
	}
	return cells3, nil
}

// Table2Run is Table2 on the fault-tolerant runner: one cell (one FU at
// one corner), gaining panic isolation, deadline, retry, and resume
// semantics for the learning-method comparison.
func Table2Run(ctx context.Context, lab *Lab, cfg runner.Config) ([]core.MethodResult, *runner.Report, error) {
	ctx, end := obs.Span(ctx, "experiments.table2")
	defer end()
	fu := lab.Scale.fus()[0]
	for _, f := range lab.Scale.fus() {
		if f == circuits.FPAdd32 {
			fu = f
			break
		}
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("table2 fu=%s cycles=%d seed=%d", fu, lab.Scale.TrainCycles, lab.Scale.Seed)
	}
	key := "table2/" + fu.String()
	opts := lab.CharOpts(cfg.Workers)
	tasks := []runner.Task[[]core.MethodResult]{{
		Key: key,
		Run: func(ctx context.Context) ([]core.MethodResult, error) {
			return table2ForFU(ctx, lab, fu, opts)
		},
	}}
	results, rep, err := runner.Run(ctx, cfg, tasks)
	return results[key], rep, err
}

// table2ForFU is Table2's body (see Table2 for the clock-choice
// rationale), made cancellation-aware.
func table2ForFU(ctx context.Context, lab *Lab, fu circuits.FU, opts core.CharacterizeOptions) ([]core.MethodResult, error) {
	u := lab.Units[fu]
	corner := lab.Scale.Corners[0]
	train, err := lab.Stream(fu, DatasetRandom, true)
	if err != nil {
		return nil, err
	}
	test, err := lab.Stream(fu, DatasetRandom, false)
	if err != nil {
		return nil, err
	}
	if _, err := u.CalibrateBaseClockOptsContext(ctx, corner, train, opts); err != nil {
		return nil, err
	}
	// The capture clock balances the two classes: the 60th percentile of
	// the training delays (see Table2's comment for why).
	probe, err := core.CharacterizeOptsContext(ctx, u, corner, train, nil, opts)
	if err != nil {
		return nil, err
	}
	sorted := append([]float64(nil), probe.Delays...)
	sort.Float64s(sorted)
	clock := sorted[len(sorted)*60/100]
	trTrain, err := core.CharacterizeOptsContext(ctx, u, corner, train, []float64{clock}, opts)
	if err != nil {
		return nil, err
	}
	trTest, err := core.CharacterizeOptsContext(ctx, u, corner, test, []float64{clock}, opts)
	if err != nil {
		return nil, err
	}
	return core.CompareMethods([]*core.Trace{trTrain}, []*core.Trace{trTest}, 0, lab.Scale.Seed)
}
