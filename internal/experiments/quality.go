package experiments

import (
	"context"
	"fmt"
	"time"

	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/imaging"
	"tevot/internal/inject"
	"tevot/internal/obs"
)

// trainedModels trains TEVoT and TEVoT-NH and builds the two baselines
// for the given FUs, from random data at the scale's corners. It returns
// the four QualityModels of Table IV, in the paper's column order.
//
// The TER-based entry keeps its paper semantics through the
// ErrorPredictor adapter: core.TERBased ignores the test stream's
// content and draws at the rate measured offline on random training
// data, so its derived per-FU TER is that offline rate.
func trainedModels(lab *Lab, fus []circuits.FU) ([]core.QualityModel, error) {
	tevot := make(map[circuits.FU]core.ErrorPredictor)
	tevotNH := make(map[circuits.FU]core.ErrorPredictor)
	delay := make(map[circuits.FU]core.ErrorPredictor)
	ter := make(map[circuits.FU]core.ErrorPredictor)
	for _, fu := range fus {
		u := lab.Units[fu]
		opts := lab.CharOpts(1) // serial top level: each cell gets the machine
		var traces []*core.Trace
		for _, corner := range lab.Scale.Corners {
			train, err := lab.Stream(fu, DatasetRandom, true)
			if err != nil {
				return nil, err
			}
			if _, err := u.CalibrateBaseClockOptsContext(context.Background(), corner, train, opts); err != nil {
				return nil, err
			}
			tr, err := core.CharacterizeWithSpeedupsOptsContext(context.Background(), u, corner, train, lab.Scale.Speedups, opts)
			if err != nil {
				return nil, err
			}
			traces = append(traces, tr)
			// The paper trains on 200K random vectors PLUS 5 % of the
			// application images; without the application slice the
			// forest cannot extrapolate to operand distributions it has
			// never seen (two's-complement accumulators, narrow pixel
			// ranges), and the quality estimates collapse.
			for _, ds := range []string{DatasetSobel, DatasetGauss} {
				appTrain, err := lab.Stream(fu, ds, true)
				if err != nil {
					return nil, err
				}
				trApp, err := core.CharacterizeWithSpeedupsOptsContext(context.Background(), u, corner, appTrain, lab.Scale.Speedups, opts)
				if err != nil {
					return nil, err
				}
				traces = append(traces, trApp)
			}
		}
		m, err := core.Train(fu, traces, core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		nhCfg := core.DefaultConfig()
		nhCfg.History = false
		nh, err := core.Train(fu, traces, nhCfg)
		if err != nil {
			return nil, err
		}
		db, err := core.NewDelayBased(fu, traces)
		if err != nil {
			return nil, err
		}
		tb, err := core.NewTERBased(fu, traces, lab.Scale.Seed)
		if err != nil {
			return nil, err
		}
		tevot[fu], tevotNH[fu], delay[fu], ter[fu] = m, nh, db, tb
	}
	return []core.QualityModel{
		core.QualityFromPredictors("TEVoT", tevot),
		core.QualityFromPredictors("Delay-based", delay),
		core.QualityFromPredictors("TER-based", ter),
		core.QualityFromPredictors("TEVoT-NH", tevotNH),
	}, nil
}

// Table4Row is one row of Table IV: each model's application-quality
// estimation accuracy for one application.
type Table4Row struct {
	App      inject.App
	Accuracy map[string]float64
}

// Table4 runs the quality study for both applications.
func Table4(lab *Lab) ([]Table4Row, *core.QualityResult, *core.QualityResult, error) {
	defer obs.Time("experiments.table4")()
	var rows []Table4Row
	var results []*core.QualityResult
	for _, app := range inject.Apps {
		models, err := trainedModels(lab, app.FUs())
		if err != nil {
			return nil, nil, nil, err
		}
		res, err := core.QualityStudy(app, lab.Units, models, lab.Images,
			lab.Scale.Corners, lab.Scale.Speedups,
			core.QualityOptions{Seed: lab.Scale.Seed, StreamCap: lab.Scale.AppStreamCap})
		if err != nil {
			return nil, nil, nil, err
		}
		rows = append(rows, Table4Row{App: app, Accuracy: res.EstimationAccuracy})
		results = append(results, res)
	}
	return rows, results[0], results[1], nil
}

// Fig4Output is one model's injected Sobel output and its PSNR, the
// paper's Fig. 4 panel.
type Fig4Output struct {
	Model string
	PSNR  float64
	Image *imaging.Image
}

// Fig4 renders the paper's Fig. 4: the Sobel output of one image under
// ground-truth error injection and under each model's derived TERs, at
// one aggressive corner.
func Fig4(lab *Lab) ([]Fig4Output, error) {
	defer obs.Time("experiments.fig4")()
	app := inject.SobelApp
	models, err := trainedModels(lab, app.FUs())
	if err != nil {
		return nil, err
	}
	corner := lab.Scale.Corners[0]
	sp := lab.Scale.Speedups[len(lab.Scale.Speedups)-1]
	img := lab.Images[0]

	rec := inject.NewRecording(lab.Scale.AppStreamCap)
	app.Run(img, rec)

	trueTERs := inject.TERs{}
	modelTERs := map[string]inject.TERs{}
	for _, m := range models {
		modelTERs[m.Name()] = inject.TERs{}
	}
	for _, fu := range app.FUs() {
		u := lab.Units[fu]
		s, err := rec.Stream(fu)
		if err != nil {
			return nil, err
		}
		clocks, err := u.ClockPeriods(corner, []float64{sp})
		if err != nil {
			return nil, err
		}
		tr, err := core.Characterize(u, corner, s, clocks)
		if err != nil {
			return nil, err
		}
		trueTERs[fu] = tr.TER(0)
		for _, m := range models {
			ter, err := m.TERFor(fu, corner, s, clocks[0])
			if err != nil {
				return nil, err
			}
			modelTERs[m.Name()][fu] = ter
		}
	}

	outputs := make([]Fig4Output, 0, len(models)+1)
	gtPSNR, gtImg, err := app.QualityRun(img, trueTERs, lab.Scale.Seed)
	if err != nil {
		return nil, err
	}
	outputs = append(outputs, Fig4Output{Model: "Ground truth", PSNR: gtPSNR, Image: gtImg})
	for _, m := range models {
		p, out, err := app.QualityRun(img, modelTERs[m.Name()], lab.Scale.Seed)
		if err != nil {
			return nil, err
		}
		outputs = append(outputs, Fig4Output{Model: m.Name(), PSNR: p, Image: out})
	}
	return outputs, nil
}

// SpeedupResult quantifies the paper's §V.C claim that TEVoT inference
// is ~100× faster than gate-level simulation.
type SpeedupResult struct {
	FU           circuits.FU
	SimPerCycle  time.Duration
	PredPerCycle time.Duration
	Speedup      float64
}

// Speedup measures per-cycle gate-level simulation time against TEVoT
// inference time on the same stream.
func Speedup(lab *Lab, fu circuits.FU) (*SpeedupResult, error) {
	u, ok := lab.Units[fu]
	if !ok {
		return nil, fmt.Errorf("experiments: no unit for %v", fu)
	}
	corner := lab.Scale.Corners[0]
	train, err := lab.Stream(fu, DatasetRandom, true)
	if err != nil {
		return nil, err
	}
	test, err := lab.Stream(fu, DatasetRandom, false)
	if err != nil {
		return nil, err
	}
	tr, err := core.Characterize(u, corner, train, nil)
	if err != nil {
		return nil, err
	}
	model, err := core.Train(fu, []*core.Trace{tr}, core.DefaultConfig())
	if err != nil {
		return nil, err
	}

	t0 := time.Now()
	if _, err := core.Characterize(u, corner, test, nil); err != nil {
		return nil, err
	}
	simT := time.Since(t0)

	t0 = time.Now()
	if _, err := model.PredictDelays(corner, test); err != nil {
		return nil, err
	}
	predT := time.Since(t0)

	n := test.Len() - 1
	res := &SpeedupResult{
		FU:           fu,
		SimPerCycle:  simT / time.Duration(n),
		PredPerCycle: predT / time.Duration(n),
	}
	if predT > 0 {
		res.Speedup = float64(simT) / float64(predT)
	}
	return res, nil
}
