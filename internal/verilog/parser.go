package verilog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tevot/internal/cells"
	"tevot/internal/netlist"
)

// Parse reads structural Verilog in the subset emitted by Write (one
// module; input/output/wire declarations; named-port primitive
// instances) and reconstructs the netlist. Gate and net identities are
// preserved by name, so a written-and-reparsed netlist computes the same
// function and accepts the same SDF annotations.
func Parse(r io.Reader) (*netlist.Netlist, error) {
	stmts, err := statements(r)
	if err != nil {
		return nil, err
	}
	p := &vparser{
		nl:   &netlist.Netlist{Const0: -1, Const1: -1},
		nets: map[string]netlist.NetID{},
	}
	for _, s := range stmts {
		if err := p.statement(s); err != nil {
			return nil, err
		}
	}
	if !p.ended {
		return nil, fmt.Errorf("verilog: missing endmodule")
	}
	if err := p.resolveOutputs(); err != nil {
		return nil, err
	}
	if err := p.nl.Validate(); err != nil {
		return nil, err
	}
	return p.nl, nil
}

// statements splits the source into ';'-terminated statements, dropping
// comments; "endmodule" needs no semicolon.
func statements(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var b strings.Builder
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	text := b.String()
	var out []string
	for _, part := range strings.Split(text, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		// "endmodule" may be glued to the tail of the last statement.
		if strings.HasSuffix(part, "endmodule") {
			head := strings.TrimSpace(strings.TrimSuffix(part, "endmodule"))
			if head != "" {
				out = append(out, head)
			}
			out = append(out, "endmodule")
			continue
		}
		out = append(out, part)
	}
	return out, nil
}

type outDecl struct {
	name  string
	width int
}

type vparser struct {
	nl      *netlist.Netlist
	nets    map[string]netlist.NetID
	outs    []outDecl
	started bool
	ended   bool
}

func (p *vparser) newNet(name string, driver netlist.GateID) netlist.NetID {
	id := netlist.NetID(len(p.nl.Nets))
	p.nl.Nets = append(p.nl.Nets, netlist.Net{Name: name, Driver: driver})
	p.nets[name] = id
	return id
}

func (p *vparser) statement(s string) error {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case "module":
		if p.started {
			return fmt.Errorf("verilog: multiple modules are not supported")
		}
		p.started = true
		name, _, ok := strings.Cut(s[len("module"):], "(")
		if !ok {
			return fmt.Errorf("verilog: malformed module header %q", s)
		}
		p.nl.Name = strings.TrimSpace(name)
		return nil
	case "endmodule":
		p.ended = true
		return nil
	case "input":
		return p.declare(s[len("input"):], true)
	case "output":
		return p.declare(s[len("output"):], false)
	case "wire":
		name := strings.TrimSpace(s[len("wire"):])
		if name == "" || strings.ContainsAny(name, " [") {
			return fmt.Errorf("verilog: unsupported wire declaration %q", s)
		}
		p.newNet(name, netlist.None)
		return nil
	default:
		return p.instance(s)
	}
}

// declare handles "input [7:0] a" / "output cout" declarations.
func (p *vparser) declare(rest string, isInput bool) error {
	rest = strings.TrimSpace(rest)
	width := 1
	if strings.HasPrefix(rest, "[") {
		close := strings.Index(rest, "]")
		if close < 0 {
			return fmt.Errorf("verilog: malformed range in %q", rest)
		}
		rng := rest[1:close]
		hi, lo, ok := strings.Cut(rng, ":")
		if !ok {
			return fmt.Errorf("verilog: malformed range %q", rng)
		}
		h, err1 := strconv.Atoi(strings.TrimSpace(hi))
		l, err2 := strconv.Atoi(strings.TrimSpace(lo))
		if err1 != nil || err2 != nil || l != 0 || h < 0 {
			return fmt.Errorf("verilog: unsupported range [%s]", rng)
		}
		width = h + 1
		rest = strings.TrimSpace(rest[close+1:])
	}
	name := strings.TrimSpace(rest)
	if name == "" {
		return fmt.Errorf("verilog: declaration without a name")
	}
	if isInput {
		for i := 0; i < width; i++ {
			bitName := name
			if width > 1 {
				bitName = fmt.Sprintf("%s[%d]", name, i)
			}
			id := p.newNet(bitName, netlist.None)
			p.nl.PrimaryInputs = append(p.nl.PrimaryInputs, id)
		}
		return nil
	}
	p.outs = append(p.outs, outDecl{name: name, width: width})
	return nil
}

// instance parses "KIND instname (.Y(n5), .A(a[0]), ...)".
func (p *vparser) instance(s string) error {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(strings.TrimSpace(s), ")") {
		return fmt.Errorf("verilog: unrecognized statement %q", s)
	}
	head := strings.Fields(s[:open])
	if len(head) != 2 {
		return fmt.Errorf("verilog: malformed instance header %q", s[:open])
	}
	kind, err := cells.ParseKind(head[0])
	if err != nil {
		return err
	}
	instName := head[1]
	body := strings.TrimSpace(s[open+1:])
	body = strings.TrimSuffix(body, ")")

	pins := map[string]string{}
	for _, conn := range splitConns(body) {
		conn = strings.TrimSpace(conn)
		if !strings.HasPrefix(conn, ".") {
			return fmt.Errorf("verilog: positional connections not supported in %q", s)
		}
		pin, ref, ok := strings.Cut(conn[1:], "(")
		if !ok || !strings.HasSuffix(ref, ")") {
			return fmt.Errorf("verilog: malformed connection %q", conn)
		}
		pins[strings.TrimSpace(pin)] = strings.TrimSpace(strings.TrimSuffix(ref, ")"))
	}

	outRef, ok := pins["Y"]
	if !ok {
		return fmt.Errorf("verilog: instance %s has no output pin Y", instName)
	}
	gid := netlist.GateID(len(p.nl.Gates))
	outNet, err := p.resolveRef(outRef)
	if err != nil {
		return err
	}
	if p.nl.Nets[outNet].Driver != netlist.None {
		return fmt.Errorf("verilog: net %q has multiple drivers", outRef)
	}
	p.nl.Nets[outNet].Driver = gid

	inPins := portPins(kind)
	ins := make([]netlist.NetID, len(inPins))
	for i, pin := range inPins {
		ref, ok := pins[pin]
		if !ok {
			return fmt.Errorf("verilog: instance %s missing pin %s", instName, pin)
		}
		id, err := p.resolveRef(ref)
		if err != nil {
			return err
		}
		ins[i] = id
		p.nl.Nets[id].Fanout = append(p.nl.Nets[id].Fanout, gid)
	}
	p.nl.Gates = append(p.nl.Gates, netlist.Gate{Name: instName, Kind: kind, Inputs: ins, Output: outNet})
	return nil
}

// splitConns splits ".A(x), .B(y)" at top-level commas.
func splitConns(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if strings.TrimSpace(s[start:]) != "" {
		out = append(out, s[start:])
	}
	return out
}

// resolveRef maps a Verilog net reference to a NetID, creating constant
// nets and implicit wires on first use.
func (p *vparser) resolveRef(ref string) (netlist.NetID, error) {
	switch ref {
	case "1'b0":
		if p.nl.Const0 < 0 {
			p.nl.Const0 = p.newNet("tie0", netlist.None)
		}
		return p.nl.Const0, nil
	case "1'b1":
		if p.nl.Const1 < 0 {
			p.nl.Const1 = p.newNet("tie1", netlist.None)
		}
		return p.nl.Const1, nil
	}
	if id, ok := p.nets[ref]; ok {
		return id, nil
	}
	// Implicit wire (also covers output-port bits driven by instances).
	return p.newNet(ref, netlist.None), nil
}

// resolveOutputs binds the recorded output declarations to their nets,
// LSB first.
func (p *vparser) resolveOutputs() error {
	if len(p.outs) == 0 {
		return fmt.Errorf("verilog: module has no outputs")
	}
	for _, o := range p.outs {
		for i := 0; i < o.width; i++ {
			name := o.name
			if o.width > 1 {
				name = fmt.Sprintf("%s[%d]", o.name, i)
			}
			id, ok := p.nets[name]
			if !ok {
				return fmt.Errorf("verilog: output %q is never driven", name)
			}
			p.nl.PrimaryOutputs = append(p.nl.PrimaryOutputs, id)
		}
	}
	return nil
}
