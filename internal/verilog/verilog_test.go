package verilog

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"tevot/internal/circuits"
	"tevot/internal/netlist"
)

// TestRoundTripFunctionalEquivalence: write -> parse preserves the
// computed function for every functional unit.
func TestRoundTripFunctionalEquivalence(t *testing.T) {
	for _, fu := range circuits.AllFUs {
		nl, err := fu.Build()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, nl); err != nil {
			t.Fatalf("%v: %v", fu, err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: parse: %v", fu, err)
		}
		if back.NumGates() != nl.NumGates() {
			t.Fatalf("%v: %d gates after round trip, want %d", fu, back.NumGates(), nl.NumGates())
		}
		if len(back.PrimaryInputs) != len(nl.PrimaryInputs) ||
			len(back.PrimaryOutputs) != len(nl.PrimaryOutputs) {
			t.Fatalf("%v: port count changed", fu)
		}
		rng := rand.New(rand.NewSource(int64(fu)))
		for i := 0; i < 50; i++ {
			a, b := rng.Uint32(), rng.Uint32()
			in := circuits.EncodeOperands(a, b)
			want, err := nl.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%v: output bit %d differs after round trip for %#x,%#x", fu, j, a, b)
				}
			}
		}
	}
}

// TestRoundTripPreservesInstanceNames: SDF files reference instances by
// name, so the round trip must keep them.
func TestRoundTripPreservesInstanceNames(t *testing.T) {
	nl := circuits.NewRippleAdder(8)
	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for gi := range nl.Gates {
		names[nl.Gates[gi].Name] = true
	}
	for gi := range back.Gates {
		if !names[back.Gates[gi].Name] {
			t.Fatalf("instance %q not in the original netlist", back.Gates[gi].Name)
		}
	}
}

func TestWriteOutputShape(t *testing.T) {
	nl := circuits.NewRippleAdder(4)
	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"module int_add4_rca (a, b",
		"input [3:0] a",
		"input [3:0] b",
		"XOR2", ".Y(", "endmodule",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("verilog output missing %q", want)
		}
	}
}

func TestRoundTripRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		nl, err := netlist.Random(netlist.RandomOptions{Inputs: 5, Gates: 40, Outputs: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, nl); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, buf.String())
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 30; i++ {
			in := make([]bool, 5)
			for j := range in {
				in[j] = rng.Intn(2) == 1
			}
			want, err := nl.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("seed %d: output %d differs", seed, j)
				}
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no module":        "input a;\nendmodule",
		"no endmodule":     "module m (a);\ninput a;",
		"unknown cell":     "module m (a, y);\ninput a;\noutput y;\nFOO u1 (.Y(y), .A(a));\nendmodule",
		"multi driver":     "module m (a, y);\ninput a;\noutput y;\nBUF u1 (.Y(y), .A(a));\nBUF u2 (.Y(y), .A(a));\nendmodule",
		"missing pin":      "module m (a, y);\ninput a;\noutput y;\nAND2 u1 (.Y(y), .A(a));\nendmodule",
		"undriven output":  "module m (a, y);\ninput a;\noutput y;\nendmodule",
		"positional conns": "module m (a, y);\ninput a;\noutput y;\nBUF u1 (y, a);\nendmodule",
		"no outputs":       "module m (a);\ninput a;\nendmodule",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: Parse accepted malformed input", name)
		}
	}
}

func TestParseScalarPortsAndConstants(t *testing.T) {
	src := `// tiny example
module m (a, b, y);
  input a;
  input b;
  output y;
  wire t;
  AND2 u1 (.Y(t), .A(a), .B(1'b1));
  OR2 u2 (.Y(y), .A(t), .B(b));
endmodule`
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		a, b, want bool
	}{
		{false, false, false},
		{true, false, true},
		{false, true, true},
		{true, true, true},
	} {
		out, err := nl.Eval([]bool{tc.a, tc.b})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != tc.want {
			t.Errorf("m(%v,%v) = %v, want %v", tc.a, tc.b, out[0], tc.want)
		}
	}
}
