package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"tevot/internal/obs/trace"
)

// ManifestFS is the slice of filesystem behaviour the manifest writer
// uses for its atomic temp-file + rename dance. It exists so
// fault-injection tests (internal/chaos) can prove a failed write never
// leaves a truncated run.json behind; production always runs on the os
// passthrough.
type ManifestFS interface {
	CreateTemp(dir, pattern string) (ManifestFile, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// ManifestFile is the temp-file handle surface the manifest writer
// needs.
type ManifestFile interface {
	Write(p []byte) (int, error)
	Close() error
	Name() string
}

type osManifestFS struct{}

func (osManifestFS) CreateTemp(dir, pattern string) (ManifestFile, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osManifestFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osManifestFS) Remove(name string) error             { return os.Remove(name) }

// manifestFS holds the active ManifestFS; swapped atomically so a test
// injecting faults does not race the signal-handler manifest flush.
// Boxed because atomic.Value requires one concrete type across stores.
type manifestFSBox struct{ fs ManifestFS }

var manifestFS atomic.Value // manifestFSBox

func init() { manifestFS.Store(manifestFSBox{osManifestFS{}}) }

// SetManifestFS replaces the filesystem behind manifest writes and
// returns a restore function. Test-only; pass nil to reset to the os
// passthrough directly.
func SetManifestFS(fsys ManifestFS) (restore func()) {
	prev := manifestFS.Load().(manifestFSBox)
	if fsys == nil {
		fsys = osManifestFS{}
	}
	manifestFS.Store(manifestFSBox{fsys})
	return func() { manifestFS.Store(prev) }
}

// Manifest is the auditable record of one CLI run, written as run.json
// next to the run's outputs: what was run (command, args, resolved flag
// values, seed, Go version), when, how it ended, and the final metric
// and stage-latency snapshots. An operator can reconstruct — days later
// — which corner grid a sweep covered, how many retries it burned, and
// where its hours went, without having kept the terminal output.
type Manifest struct {
	Command     string            `json:"command"`
	Args        []string          `json:"args"`
	Config      map[string]string `json:"config"`
	Seed        int64             `json:"seed"`
	GoVersion   string            `json:"go_version"`
	Hostname    string            `json:"hostname,omitempty"`
	Pid         int               `json:"pid"`
	Start       time.Time         `json:"start"`
	End         time.Time         `json:"end"`
	DurationSec float64           `json:"duration_sec"`
	ExitCode    int               `json:"exit_code"`
	Interrupted bool              `json:"interrupted,omitempty"`
	DebugAddr   string            `json:"debug_addr,omitempty"`
	CPUProfile  string            `json:"cpu_profile,omitempty"`
	MemProfile  string            `json:"mem_profile,omitempty"`
	// Notes carries per-command extras (e.g. the final sweep report).
	Notes   map[string]any   `json:"notes,omitempty"`
	Metrics RegistrySnapshot `json:"metrics"`
	Stages  []StageStat      `json:"stages"`
	// Traces is the trace store's final flush: every retained trace,
	// including partial ones from an interrupted run — a run killed
	// mid-stage still records which spans were open and for how long.
	Traces []trace.Summary `json:"traces,omitempty"`
}

// write finalizes the snapshots and writes the manifest atomically
// (temp file + rename), so a crash mid-write cannot leave a truncated
// run.json masquerading as a complete record.
func (m *Manifest) write(path string) error {
	m.End = time.Now()
	m.DurationSec = m.End.Sub(m.Start).Seconds()
	m.Metrics = DefaultSnapshot()
	m.Stages = Stages()
	if st := trace.Default().Store(); st != nil {
		m.Traces = st.Summaries()
	}

	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding run manifest: %w", err)
	}
	data = append(data, '\n')
	fsys := manifestFS.Load().(manifestFSBox).fs
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".run-*.json.tmp")
	if err != nil {
		return fmt.Errorf("obs: writing run manifest: %w", err)
	}
	defer fsys.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("obs: writing run manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("obs: writing run manifest: %w", err)
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("obs: writing run manifest: %w", err)
	}
	return nil
}
