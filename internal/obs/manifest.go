package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tevot/internal/obs/trace"
)

// Manifest is the auditable record of one CLI run, written as run.json
// next to the run's outputs: what was run (command, args, resolved flag
// values, seed, Go version), when, how it ended, and the final metric
// and stage-latency snapshots. An operator can reconstruct — days later
// — which corner grid a sweep covered, how many retries it burned, and
// where its hours went, without having kept the terminal output.
type Manifest struct {
	Command     string            `json:"command"`
	Args        []string          `json:"args"`
	Config      map[string]string `json:"config"`
	Seed        int64             `json:"seed"`
	GoVersion   string            `json:"go_version"`
	Hostname    string            `json:"hostname,omitempty"`
	Pid         int               `json:"pid"`
	Start       time.Time         `json:"start"`
	End         time.Time         `json:"end"`
	DurationSec float64           `json:"duration_sec"`
	ExitCode    int               `json:"exit_code"`
	Interrupted bool              `json:"interrupted,omitempty"`
	DebugAddr   string            `json:"debug_addr,omitempty"`
	CPUProfile  string            `json:"cpu_profile,omitempty"`
	MemProfile  string            `json:"mem_profile,omitempty"`
	// Notes carries per-command extras (e.g. the final sweep report).
	Notes   map[string]any   `json:"notes,omitempty"`
	Metrics RegistrySnapshot `json:"metrics"`
	Stages  []StageStat      `json:"stages"`
	// Traces is the trace store's final flush: every retained trace,
	// including partial ones from an interrupted run — a run killed
	// mid-stage still records which spans were open and for how long.
	Traces []trace.Summary `json:"traces,omitempty"`
}

// write finalizes the snapshots and writes the manifest atomically
// (temp file + rename), so a crash mid-write cannot leave a truncated
// run.json masquerading as a complete record.
func (m *Manifest) write(path string) error {
	m.End = time.Now()
	m.DurationSec = m.End.Sub(m.Start).Seconds()
	m.Metrics = DefaultSnapshot()
	m.Stages = Stages()
	if st := trace.Default().Store(); st != nil {
		m.Traces = st.Summaries()
	}

	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding run manifest: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".run-*.json.tmp")
	if err != nil {
		return fmt.Errorf("obs: writing run manifest: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("obs: writing run manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("obs: writing run manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("obs: writing run manifest: %w", err)
	}
	return nil
}
