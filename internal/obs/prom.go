package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), written with the
// standard library only. The existing expvar JSON stays; /metrics adds
// the format every scraper, alertmanager, and dashboard already
// speaks. Naming follows the Prometheus conventions: the registry's
// dotted names ("core.cycles_simulated") become underscore names under
// a "tevot_" prefix, counters gain the "_total" suffix, histograms
// expand into cumulative "_bucket{le=...}" series plus "_sum" and
// "_count".
//
// The strict parser in promparse.go is the writer's test harness and
// the check.sh scrape validator; the two are developed as a pair.

// PromContentType is the Content-Type of the exposition endpoint.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromPrefix is the metric-name prefix for everything this process
// exports.
const PromPrefix = "tevot"

// promName sanitizes a registry name into a valid Prometheus metric
// name under the prefix: dots and any other invalid runes become
// underscores.
func promName(prefix, name string) string {
	var b strings.Builder
	b.Grow(len(prefix) + 1 + len(name))
	b.WriteString(prefix)
	b.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float64 sample value. Prometheus accepts "+Inf",
// "-Inf" and "NaN" spellings for the non-finite values.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// LabeledSnapshot pairs a registry snapshot with the label set its
// samples carry in a multi-snapshot exposition document.
type LabeledSnapshot struct {
	Labels map[string]string
	Snap   RegistrySnapshot
}

// WritePromSnapshots renders several labeled snapshots as ONE
// exposition document: each family gets a single # TYPE declaration
// followed by every snapshot's samples, distinguished by their label
// sets. This is the /cluster/metrics writer — per-worker snapshots plus
// the merged fleet view in one strict-parser-clean document. Label sets
// must make the series distinct (worker="..." per snapshot); a name
// declared with two different types, or appearing twice within one
// snapshot after sanitization, is a collision error.
func WritePromSnapshots(w io.Writer, prefix string, snaps []LabeledSnapshot) error {
	type family struct {
		name, typ string
		emit      []func(io.Writer) error
		lastSnap  int
	}
	fams := make(map[string]*family)
	add := func(si int, name, typ string, emit func(io.Writer) error) error {
		f, ok := fams[name]
		if !ok {
			f = &family{name: name, typ: typ, lastSnap: -1}
			fams[name] = f
		}
		if f.typ != typ {
			return fmt.Errorf("obs: prometheus family %s declared as both %s and %s", name, f.typ, typ)
		}
		if f.lastSnap == si {
			return fmt.Errorf("obs: prometheus family name collision: %s", name)
		}
		f.lastSnap = si
		f.emit = append(f.emit, emit)
		return nil
	}
	for si, ls := range snaps {
		s, extraLabels := ls.Snap, ls.Labels
		labels := renderLabels(extraLabels)
		for name, v := range s.Counters {
			n, v := promName(prefix, name)+"_total", v
			if err := add(si, n, "counter", func(w io.Writer) error {
				_, err := fmt.Fprintf(w, "%s%s %d\n", n, labels, v)
				return err
			}); err != nil {
				return err
			}
		}
		for name, v := range s.Gauges {
			n, v := promName(prefix, name), v
			if err := add(si, n, "gauge", func(w io.Writer) error {
				_, err := fmt.Fprintf(w, "%s%s %s\n", n, labels, promFloat(v))
				return err
			}); err != nil {
				return err
			}
		}
		for name, h := range s.Histograms {
			n, h := promName(prefix, name), h
			extraLabels := extraLabels
			if err := add(si, n, "histogram", func(w io.Writer) error {
				for _, b := range h.Buckets {
					le := promFloat(float64(b.Le))
					var err error
					if extraLabels == nil {
						_, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, b.N)
					} else {
						_, err = fmt.Fprintf(w, "%s_bucket%s %d\n", n,
							renderLabelsWith(extraLabels, "le", le), b.N)
					}
					if err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", n, labels, promFloat(h.Sum)); err != nil {
					return err
				}
				_, err := fmt.Fprintf(w, "%s_count%s %d\n", n, labels, h.Count)
				return err
			}); err != nil {
				return err
			}
		}
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, e := range f.emit {
			if err := e(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePromSnapshot renders a registry snapshot in exposition format
// 0.0.4. Families are emitted in sorted-name order, each preceded by
// its # TYPE line. extraLabels (may be nil) are added to every sample
// — the coordinator uses it to expose per-worker series.
func WritePromSnapshot(w io.Writer, prefix string, s RegistrySnapshot, extraLabels map[string]string) error {
	return WritePromSnapshots(w, prefix, []LabeledSnapshot{{Labels: extraLabels, Snap: s}})
}

// renderLabels renders a label set as `{k="v",...}` in sorted key
// order ("" when empty).
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	return renderLabelsWith(labels, "", "")
}

func renderLabelsWith(labels map[string]string, extraKey, extraVal string) string {
	keys := make([]string, 0, len(labels)+1)
	for k := range labels {
		keys = append(keys, k)
	}
	if extraKey != "" {
		keys = append(keys, extraKey)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := labels[k]
		if k == extraKey {
			v = extraVal
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(promQuote(v))
	}
	b.WriteByte('}')
	return b.String()
}

// promQuote renders a label value with the exposition escapes
// (backslash, double-quote, newline).
func promQuote(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// WriteProm renders the registry in exposition format 0.0.4.
func (r *Registry) WriteProm(w io.Writer) error {
	return WritePromSnapshot(w, PromPrefix, r.Snapshot(), nil)
}

// PromHandler serves reg (nil = the default registry) in exposition
// format at whatever path it is mounted on — conventionally /metrics.
func PromHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r := reg
		if r == nil {
			r = defaultRegistry
		}
		var b strings.Builder
		if err := r.WriteProm(&b); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", PromContentType)
		io.WriteString(w, b.String())
	})
}
