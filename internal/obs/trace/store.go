package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Store retains finished traces in two bounded pools: a FIFO ring of
// the most recent traces and a separate slowest-N exemplar list, so a
// burst of fast requests cannot evict the tail-latency outliers an
// operator actually wants to inspect. Active (un-ended) traces are
// tracked separately and also bounded — a leaked root span is evicted,
// not accumulated.
type Store struct {
	mu        sync.Mutex
	capRecent int
	capSlow   int

	active      map[TraceID]*traceRec
	activeOrder []TraceID  // insertion order, for eviction
	recent      []*traceRec // newest last; len <= capRecent
	slow        []*traceRec // slowest first; len <= capSlow

	evicted int64 // active traces dropped before completion
}

// traceRec is one trace's spans, in start order.
type traceRec struct {
	id      TraceID
	rooted  bool // a local Root span exists (vs. a joined fragment)
	spans   []*Span
	open    int // spans started but not yet ended
	dropped bool
}

// DefaultRecent and DefaultSlow are the store bounds used when a
// caller passes zero: enough to hold a sweep's worth of cells or a
// few seconds of serve traffic, small enough to never matter.
const (
	DefaultRecent = 256
	DefaultSlow   = 16
)

// NewStore returns a store keeping up to capRecent recent traces and
// capSlow slowest exemplars (zero or negative selects the defaults).
func NewStore(capRecent, capSlow int) *Store {
	if capRecent <= 0 {
		capRecent = DefaultRecent
	}
	if capSlow <= 0 {
		capSlow = DefaultSlow
	}
	return &Store{
		capRecent: capRecent,
		capSlow:   capSlow,
		active:    make(map[TraceID]*traceRec),
	}
}

// spanStarted records a new span. root marks a locally-rooted trace;
// joined fragments (root=false, unknown trace ID) open a record too so
// a multi-process coordinator still renders its side of the trace.
func (st *Store) spanStarted(s *Span, root bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	rec, ok := st.active[s.traceID]
	if !ok {
		// Drop IDs of already-completed traces off the order queue,
		// then bound the active set by evicting the oldest in-flight
		// trace (a leaked root span must not accumulate).
		for len(st.activeOrder) > 0 {
			if _, live := st.active[st.activeOrder[0]]; live {
				break
			}
			st.activeOrder = st.activeOrder[1:]
		}
		for len(st.active) >= st.capRecent && len(st.activeOrder) > 0 {
			oldest := st.activeOrder[0]
			st.activeOrder = st.activeOrder[1:]
			if old, live := st.active[oldest]; live {
				old.dropped = true
				delete(st.active, oldest)
				st.evicted++
			}
		}
		rec = &traceRec{id: s.traceID}
		st.active[s.traceID] = rec
		st.activeOrder = append(st.activeOrder, s.traceID)
	}
	if root {
		rec.rooted = true
	}
	rec.spans = append(rec.spans, s)
	rec.open++
}

// spanEnded records a span completion and completes the trace when its
// last span ends (rooted traces complete when the root span ends, even
// if a stray child is still open — the render marks it unfinished).
func (st *Store) spanEnded(s *Span) {
	st.mu.Lock()
	defer st.mu.Unlock()
	rec, ok := st.active[s.traceID]
	if !ok {
		return // already completed, discarded, or evicted
	}
	if rec.open > 0 {
		rec.open--
	}
	rootEnded := rec.rooted && len(rec.spans) > 0 && rec.spans[0] == s
	if rootEnded || (!rec.rooted && rec.open == 0) {
		st.completeLocked(rec)
	}
}

// discard drops s's whole trace (idle lease polls, aborted work).
func (st *Store) discard(s *Span) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if rec, ok := st.active[s.traceID]; ok {
		rec.dropped = true
		delete(st.active, s.traceID)
	}
}

func (st *Store) completeLocked(rec *traceRec) {
	delete(st.active, rec.id)
	st.recent = append(st.recent, rec)
	if len(st.recent) > st.capRecent {
		st.recent = st.recent[1:]
	}
	// Slowest-N exemplars, keyed by root-span duration.
	d := recDuration(rec)
	if len(st.slow) < st.capSlow || d > recDuration(st.slow[len(st.slow)-1]) {
		st.slow = append(st.slow, rec)
		sort.SliceStable(st.slow, func(i, j int) bool {
			return recDuration(st.slow[i]) > recDuration(st.slow[j])
		})
		if len(st.slow) > st.capSlow {
			st.slow = st.slow[:st.capSlow]
		}
	}
}

func recDuration(rec *traceRec) time.Duration {
	if len(rec.spans) == 0 {
		return 0
	}
	return rec.spans[0].duration()
}

// Summary is one trace's listing row.
type Summary struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	State      string    `json:"state"` // "active", "done", or "slow"
}

func summarize(rec *traceRec, state string) Summary {
	s := Summary{ID: rec.id.String(), Spans: len(rec.spans), State: state}
	if len(rec.spans) > 0 {
		root := rec.spans[0]
		s.Name = root.name
		s.Start = root.start
		s.DurationMS = float64(root.duration()) / float64(time.Millisecond)
	}
	return s
}

// Summaries lists the store's traces: active first (oldest first),
// then recent completions (newest first), then the slowest exemplars
// not already listed.
func (st *Store) Summaries() []Summary {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Summary, 0, len(st.active)+len(st.recent)+len(st.slow))
	seen := make(map[TraceID]bool)
	for _, id := range st.activeOrder {
		if rec, ok := st.active[id]; ok && !seen[rec.id] {
			seen[rec.id] = true
			out = append(out, summarize(rec, "active"))
		}
	}
	for i := len(st.recent) - 1; i >= 0; i-- {
		rec := st.recent[i]
		if !seen[rec.id] {
			seen[rec.id] = true
			out = append(out, summarize(rec, "done"))
		}
	}
	for _, rec := range st.slow {
		if !seen[rec.id] {
			seen[rec.id] = true
			out = append(out, summarize(rec, "slow"))
		}
	}
	return out
}

// Evicted returns how many active traces were dropped before
// completing (store pressure — a signal the bound is too small or a
// root span leaked).
func (st *Store) Evicted() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.evicted
}

// SpanRecord is the JSON render of one span in a trace tree.
type SpanRecord struct {
	ID         string        `json:"id"`
	Parent     string        `json:"parent,omitempty"`
	Name       string        `json:"name"`
	Start      time.Time     `json:"start"`
	DurationMS float64       `json:"duration_ms"`
	Ended      bool          `json:"ended"`
	Attrs      []Attr        `json:"attrs,omitempty"`
	Children   []*SpanRecord `json:"children,omitempty"`
}

// Record is the JSON render of one whole trace.
type Record struct {
	ID      string        `json:"id"`
	Spans   int           `json:"spans"`
	Roots   []*SpanRecord `json:"roots"`
	Partial bool          `json:"partial,omitempty"` // some span still open
}

// Get renders the trace with the given hex ID as a span tree, looking
// through active, recent, and slow pools.
func (st *Store) Get(id string) (Record, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var tid TraceID
	if !hexDecode(tid[:], id) {
		return Record{}, false
	}
	rec, ok := st.active[tid]
	if !ok {
		for i := len(st.recent) - 1; i >= 0; i-- {
			if st.recent[i].id == tid {
				rec, ok = st.recent[i], true
				break
			}
		}
	}
	if !ok {
		for _, s := range st.slow {
			if s.id == tid {
				rec, ok = s, true
				break
			}
		}
	}
	if !ok {
		return Record{}, false
	}
	return renderRec(rec), true
}

// renderRec builds the span tree. Spans whose parent is not in this
// process's store (remote parents, evicted spans) become extra roots —
// that is the normal shape of a joined fragment on a coordinator.
func renderRec(rec *traceRec) Record {
	out := Record{ID: rec.id.String(), Spans: len(rec.spans)}
	byID := make(map[SpanID]*SpanRecord, len(rec.spans))
	order := make([]*Span, len(rec.spans))
	copy(order, rec.spans)
	for _, s := range order {
		s.mu.Lock()
		sr := &SpanRecord{
			ID:    s.id.String(),
			Name:  s.name,
			Start: s.start,
			Ended: s.ended,
			Attrs: append([]Attr(nil), s.attrs...),
		}
		if s.ended {
			sr.DurationMS = float64(s.end.Sub(s.start)) / float64(time.Millisecond)
		} else {
			sr.DurationMS = float64(time.Since(s.start)) / float64(time.Millisecond)
			out.Partial = true
		}
		if !s.parent.IsZero() {
			sr.Parent = s.parent.String()
		}
		s.mu.Unlock()
		byID[s.id] = sr
	}
	for _, s := range order {
		sr := byID[s.id]
		if !s.parent.IsZero() {
			if p, ok := byID[s.parent]; ok && p != sr {
				p.Children = append(p.Children, sr)
				continue
			}
		}
		out.Roots = append(out.Roots, sr)
	}
	return out
}

// Handler serves the store over HTTP: the bare path lists trace
// summaries; "?id=<32 hex>" renders one trace as a span tree.
func (st *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if id := r.URL.Query().Get("id"); id != "" {
			rec, ok := st.Get(id)
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				fmt.Fprintf(w, "{\"error\":%q}\n", "trace not found: "+id)
				return
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(rec)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"traces":  st.Summaries(),
			"evicted": st.Evicted(),
		})
	})
}

// DefaultHandler serves the default tracer's store, resolving the
// tracer per request (so it works when installed before Flags.Start).
func DefaultHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t := Default()
		if t == nil || t.store == nil {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"traces":[],"evicted":0,"disabled":true}`)
			return
		}
		t.store.Handler().ServeHTTP(w, r)
	})
}
