package trace

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestTracer(seed int64) (*Tracer, *Store) {
	st := NewStore(8, 2)
	return New(seed, st), st
}

func TestRootChildTree(t *testing.T) {
	tr, st := newTestTracer(1)
	ctx, root := tr.Root(context.Background(), "dist.cell")
	if root == nil {
		t.Fatal("Root returned nil span on a live tracer")
	}
	root.Annotate("cell", "INT_ADD/sobel/0.9V")
	cctx, child := Child(ctx, "dta.simulate")
	if child == nil {
		t.Fatal("Child returned nil span under a live root")
	}
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace ID %s != root %s", child.TraceID(), root.TraceID())
	}
	_, grand := Child(cctx, "dta.merge")
	grand.End()
	child.End()
	root.End()

	rec, ok := st.Get(root.TraceID().String())
	if !ok {
		t.Fatalf("completed trace %s not in store", root.TraceID())
	}
	if rec.Spans != 3 {
		t.Fatalf("trace has %d spans, want 3", rec.Spans)
	}
	if len(rec.Roots) != 1 || rec.Roots[0].Name != "dist.cell" {
		t.Fatalf("unexpected roots: %+v", rec.Roots)
	}
	if rec.Partial {
		t.Fatal("fully-ended trace rendered as partial")
	}
	r := rec.Roots[0]
	if len(r.Children) != 1 || r.Children[0].Name != "dta.simulate" {
		t.Fatalf("root children: %+v", r.Children)
	}
	if len(r.Children[0].Children) != 1 || r.Children[0].Children[0].Name != "dta.merge" {
		t.Fatalf("grandchildren: %+v", r.Children[0].Children)
	}
	if len(r.Attrs) != 1 || r.Attrs[0].Key != "cell" {
		t.Fatalf("root attrs: %+v", r.Attrs)
	}
}

func TestNilSafety(t *testing.T) {
	var s *Span
	s.End()
	s.Annotate("k", "v")
	s.Discard()
	s.Inject(http.Header{})
	if !s.TraceID().IsZero() || !s.ID().IsZero() {
		t.Fatal("nil span has non-zero IDs")
	}
	var tr *Tracer
	ctx, sp := tr.Root(context.Background(), "x")
	if sp != nil || ctx != context.Background() {
		t.Fatal("nil tracer Root must return (ctx, nil)")
	}
	if _, sp := Child(context.Background(), "x"); sp != nil {
		t.Fatal("Child without a parent span must return nil")
	}
}

func TestDisabledPathAllocs(t *testing.T) {
	SetDefault(nil)
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		c, s := Child(ctx, "hot")
		s.End()
		_ = c
	}); n != 0 {
		t.Fatalf("disabled Child allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		c, s := Root(ctx, "hot")
		s.End()
		_ = c
	}); n != 0 {
		t.Fatalf("disabled Root allocates %v/op, want 0", n)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	tr, _ := newTestTracer(7)
	_, root := tr.Root(context.Background(), "serve.predict")
	h := http.Header{}
	root.Inject(h)
	v := h.Get(Header)
	if len(v) != 55 || !strings.HasPrefix(v, "00-") {
		t.Fatalf("bad traceparent %q", v)
	}
	id, parent, ok := ParseHeader(v)
	if !ok {
		t.Fatalf("ParseHeader rejected own output %q", v)
	}
	if id != root.TraceID() || parent != root.ID() {
		t.Fatalf("round trip mismatch: got (%s,%s) want (%s,%s)", id, parent, root.TraceID(), root.ID())
	}
	root.End()
}

func TestParseHeaderStrict(t *testing.T) {
	good := FormatHeader(TraceID{0xab, 1}, SpanID{0xcd, 2})
	if _, _, ok := ParseHeader(good); !ok {
		t.Fatalf("valid header %q rejected", good)
	}
	bad := []string{
		"",
		good + "x",
		good[:54],
		"01" + good[2:],                     // wrong version
		strings.Replace(good, "-", "_", 1),  // wrong separator
		strings.ToUpper(good),               // uppercase hex
		FormatHeader(TraceID{}, SpanID{2}),  // zero trace ID
		FormatHeader(TraceID{1}, SpanID{}),  // zero span ID
		good[:53] + "zz",                    // non-hex flags
	}
	for _, v := range bad {
		if _, _, ok := ParseHeader(v); ok {
			t.Errorf("malformed header %q accepted", v)
		}
	}
}

func TestDeterministicIDs(t *testing.T) {
	a, _ := newTestTracer(42)
	b, _ := newTestTracer(42)
	_, ra := a.Root(context.Background(), "x")
	_, rb := b.Root(context.Background(), "x")
	if ra.TraceID() != rb.TraceID() || ra.ID() != rb.ID() {
		t.Fatalf("same seed produced different IDs: %s/%s vs %s/%s",
			ra.TraceID(), ra.ID(), rb.TraceID(), rb.ID())
	}
	c, _ := newTestTracer(43)
	_, rc := c.Root(context.Background(), "x")
	if rc.TraceID() == ra.TraceID() {
		t.Fatal("different seeds produced the same trace ID")
	}
}

func TestJoinContinuesRemoteTrace(t *testing.T) {
	// Worker side: root a trace and inject its header.
	wt, _ := newTestTracer(1)
	_, root := wt.Root(context.Background(), "dist.cell")
	h := http.Header{}
	root.Inject(h)

	// Coordinator side: a different tracer + store joins the trace.
	ct, cst := newTestTracer(2)
	id, parent, ok := ParseHeader(h.Get(Header))
	if !ok {
		t.Fatal("ParseHeader failed")
	}
	_, srv := ct.Join(context.Background(), "http /v1/lease", id, parent)
	if srv.TraceID() != root.TraceID() {
		t.Fatal("joined span not in the remote trace")
	}
	srv.End()

	rec, ok := cst.Get(root.TraceID().String())
	if !ok {
		t.Fatal("joined fragment not retained on the coordinator store")
	}
	// The remote parent is not in this store, so the server span
	// renders as a root of the fragment.
	if len(rec.Roots) != 1 || rec.Roots[0].Name != "http /v1/lease" {
		t.Fatalf("fragment roots: %+v", rec.Roots)
	}
	if rec.Roots[0].Parent != root.ID().String() {
		t.Fatalf("fragment parent %q, want remote %q", rec.Roots[0].Parent, root.ID())
	}
	root.End()
}

func TestDiscardDropsTrace(t *testing.T) {
	tr, st := newTestTracer(3)
	_, root := tr.Root(context.Background(), "dist.cell")
	id := root.TraceID().String()
	root.Discard()
	if _, ok := st.Get(id); ok {
		t.Fatal("discarded trace still present")
	}
	for _, s := range st.Summaries() {
		if s.ID == id {
			t.Fatal("discarded trace still listed")
		}
	}
}

func TestStoreBoundsAndSlowExemplars(t *testing.T) {
	tr, st := newTestTracer(4)
	// One slow trace, then a flood of fast ones that overflows the
	// recent ring (cap 8). The slow exemplar must survive.
	_, slow := tr.Root(context.Background(), "slow")
	time.Sleep(20 * time.Millisecond)
	slow.End()
	slowID := slow.TraceID().String()
	for i := 0; i < 50; i++ {
		_, r := tr.Root(context.Background(), "fast")
		r.End()
	}
	if _, ok := st.Get(slowID); !ok {
		t.Fatal("slow exemplar evicted by fast-trace flood")
	}
	var done, slowListed int
	for _, s := range st.Summaries() {
		switch s.State {
		case "done":
			done++
		case "slow":
			slowListed++
			if s.ID != slowID {
				// cap 2 slow exemplars; the other may be a fast one.
			}
		}
	}
	if done > 8 {
		t.Fatalf("recent ring holds %d traces, cap is 8", done)
	}
	if slowListed == 0 {
		t.Fatal("no slow exemplars listed")
	}
}

func TestActiveEvictionBounded(t *testing.T) {
	tr, st := newTestTracer(5)
	// Leak 50 root spans (never ended) into a store with capRecent 8:
	// the active set must stay bounded and count evictions.
	for i := 0; i < 50; i++ {
		tr.Root(context.Background(), "leaked")
	}
	active := 0
	for _, s := range st.Summaries() {
		if s.State == "active" {
			active++
		}
	}
	if active > 8 {
		t.Fatalf("%d active traces retained, cap is 8", active)
	}
	if st.Evicted() != 42 {
		t.Fatalf("evicted = %d, want 42", st.Evicted())
	}
}

func TestHandlerListAndGet(t *testing.T) {
	tr, st := newTestTracer(6)
	ctx, root := tr.Root(context.Background(), "dist.cell")
	_, child := Child(ctx, "dta.simulate")
	child.End()
	root.End()

	srv := httptest.NewServer(st.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}

	resp2, err := http.Get(srv.URL + "?id=" + root.TraceID().String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("get status %d", resp2.StatusCode)
	}

	resp3, err := http.Get(srv.URL + "?id=" + strings.Repeat("ab", 16))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("missing trace status %d, want 404", resp3.StatusCode)
	}
}
