// Package trace is request-scoped distributed tracing for the TEVoT
// pipeline: real span trees (parent/child, start/end, attributes)
// rather than the aggregate per-stage accumulators in internal/obs.
// One sweep cell or one /v1/predict call becomes a single trace that
// crosses process boundaries — coordinator→worker over the dist lease
// protocol, edge→worker→kernel on the serve path — stitched together
// by a traceparent-style HTTP header.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Every CLI and benchmark that never
//     installs a tracer pays nothing: Root/Child on a nil tracer (or a
//     span-free context) return a nil *Span, and every *Span method is
//     nil-safe and allocation-free. TestMetricsHotPathAllocs pins this.
//  2. Deterministic IDs. Trace and span IDs are not random: they are
//     drawn from backoff.Mix64(seed, sequence), the repo's shared
//     keyed-hash discipline, so two runs from the same seed emit the
//     same IDs in the same order (modulo goroutine interleaving of the
//     sequence counter). IDs exist to correlate, not to be secret.
//  3. Bounded memory. Spans are retained by a Store with a fixed-size
//     recent ring plus a slowest-N exemplar list; an hours-long sweep
//     cannot grow the trace store without bound.
//
// The package imports only the standard library and internal/backoff;
// internal/obs layers on top of it (never the reverse).
package trace

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tevot/internal/backoff"
)

// TraceID identifies one end-to-end request across processes.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hexEncode(id[:]) }

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hexEncode(id[:]) }

const hexDigits = "0123456789abcdef"

func hexEncode(b []byte) string {
	out := make([]byte, 2*len(b))
	for i, v := range b {
		out[2*i] = hexDigits[v>>4]
		out[2*i+1] = hexDigits[v&0x0f]
	}
	return string(out)
}

func hexDecode(dst []byte, s string) bool {
	if len(s) != 2*len(dst) {
		return false
	}
	for i := range dst {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// Header is the propagation header name. The value follows the W3C
// traceparent layout: "00-<32 hex trace id>-<16 hex span id>-01".
const Header = "traceparent"

// FormatHeader renders a traceparent header value for an outgoing
// request whose remote parent is span parent of trace id.
func FormatHeader(id TraceID, parent SpanID) string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = append(b, id.String()...)
	b = append(b, '-')
	b = append(b, parent.String()...)
	b = append(b, "-01"...)
	return string(b)
}

// ParseHeader parses a traceparent header value. It is strict: exactly
// version 00, lowercase hex, single hyphens, non-zero IDs, two hex
// flag digits. Anything else returns ok=false — a malformed header
// starts a fresh trace rather than corrupting an existing one.
func ParseHeader(v string) (id TraceID, parent SpanID, ok bool) {
	// "00-" + 32 + "-" + 16 + "-" + 2 = 55 bytes.
	if len(v) != 55 || v[0] != '0' || v[1] != '0' || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return TraceID{}, SpanID{}, false
	}
	if !hexDecode(id[:], v[3:35]) || !hexDecode(parent[:], v[36:52]) {
		return TraceID{}, SpanID{}, false
	}
	if _, okHi := hexVal(v[53]); !okHi {
		return TraceID{}, SpanID{}, false
	}
	if _, okLo := hexVal(v[54]); !okLo {
		return TraceID{}, SpanID{}, false
	}
	if id.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return id, parent, true
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation inside a trace. A nil *Span is a valid,
// free no-op: every method checks the receiver, so call sites never
// branch on whether tracing is enabled.
type Span struct {
	tracer  *Tracer
	traceID TraceID
	id      SpanID
	parent  SpanID
	name    string
	start   time.Time

	mu    sync.Mutex
	attrs []Attr
	end   time.Time
	ended bool
}

// TraceID returns the span's trace ID (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// ID returns the span's own ID (zero for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Annotate attaches a key/value attribute to the span. Later
// annotations with the same key are kept (they are a log, not a map).
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End marks the span finished. End is idempotent; the first call wins.
// Ending a root span completes its trace in the store.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = time.Now()
	s.mu.Unlock()
	if s.tracer != nil && s.tracer.store != nil {
		s.tracer.store.spanEnded(s)
	}
}

// Discard drops the span's whole trace from the store — for root spans
// opened speculatively around work that turned out not to exist (an
// idle lease poll). Discard on a non-root span only ends it.
func (s *Span) Discard() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ended = true
	s.end = time.Now()
	s.mu.Unlock()
	if s.tracer != nil && s.tracer.store != nil {
		s.tracer.store.discard(s)
	}
}

// Inject writes the span's propagation header into h, so the receiving
// process can Join the trace. No-op on a nil span.
func (s *Span) Inject(h http.Header) {
	if s == nil {
		return
	}
	h.Set(Header, FormatHeader(s.traceID, s.id))
}

// duration returns the span's elapsed time (to now if still open).
func (s *Span) duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.end.Sub(s.start)
	}
	return time.Since(s.start)
}

// Tracer mints spans and feeds them to a Store. A nil *Tracer is a
// valid disabled tracer: Root/Join return nil spans.
type Tracer struct {
	seed  int64
	seq   atomic.Uint64
	store *Store
}

// New returns a tracer whose IDs are drawn deterministically from seed
// and which retains traces in store (required).
func New(seed int64, store *Store) *Tracer {
	if store == nil {
		store = NewStore(0, 0)
	}
	return &Tracer{seed: seed, store: store}
}

// Store returns the tracer's span store.
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// nextID returns the next 64-bit ID value, never zero (the wire format
// reserves all-zero IDs as invalid).
func (t *Tracer) nextID() uint64 {
	for {
		v := backoff.Mix64(t.seed, t.seq.Add(1))
		if v != 0 {
			return v
		}
	}
}

func put64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (8 * (7 - i)))
	}
}

// Root starts a new trace with one root span and returns a context
// carrying it. On a nil tracer it returns (ctx, nil) untouched.
func (t *Tracer) Root(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var id TraceID
	put64(id[0:8], t.nextID())
	put64(id[8:16], t.nextID())
	s := t.newSpan(id, SpanID{}, name)
	t.store.spanStarted(s, true)
	return ContextWith(ctx, s), s
}

// Join starts a span that continues a trace begun in another process:
// trace id and remote parent come from a parsed propagation header.
// On a nil tracer it returns (ctx, nil) untouched.
func (t *Tracer) Join(ctx context.Context, name string, id TraceID, parent SpanID) (context.Context, *Span) {
	if t == nil || id.IsZero() {
		return ctx, nil
	}
	s := t.newSpan(id, parent, name)
	t.store.spanStarted(s, false)
	return ContextWith(ctx, s), s
}

func (t *Tracer) newSpan(id TraceID, parent SpanID, name string) *Span {
	var sid SpanID
	put64(sid[:], t.nextID())
	return &Span{
		tracer:  t,
		traceID: id,
		id:      sid,
		parent:  parent,
		name:    name,
		start:   time.Now(),
	}
}

// child starts a span under parent within the same process.
func (t *Tracer) child(parent *Span, name string) *Span {
	s := t.newSpan(parent.traceID, parent.id, name)
	t.store.spanStarted(s, false)
	return s
}

type ctxKey struct{}

// ContextWith returns ctx carrying s. A nil span returns ctx as-is.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Child starts a span under the span in ctx. When ctx carries no span
// (tracing disabled, or a call path never rooted), it returns
// (ctx, nil) with zero allocations — this is the hot-path form used
// throughout serve/dist/core.
func Child(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil || parent.tracer == nil {
		return ctx, nil
	}
	s := parent.tracer.child(parent, name)
	return ContextWith(ctx, s), s
}

// Inject writes the propagation header of the span in ctx (if any)
// into h.
func Inject(ctx context.Context, h http.Header) {
	FromContext(ctx).Inject(h)
}

// defaultTracer is the process-wide tracer, installed by obs.Flags.Start
// (nil until then — tracing is opt-in per process).
var defaultTracer atomic.Pointer[Tracer]

// SetDefault installs t as the process-wide tracer (nil disables).
func SetDefault(t *Tracer) { defaultTracer.Store(t) }

// Default returns the process-wide tracer, or nil when tracing is off.
func Default() *Tracer { return defaultTracer.Load() }

// Root starts a trace on the default tracer; (ctx, nil) when disabled.
func Root(ctx context.Context, name string) (context.Context, *Span) {
	return Default().Root(ctx, name)
}

// Join continues a remote trace on the default tracer.
func Join(ctx context.Context, name string, id TraceID, parent SpanID) (context.Context, *Span) {
	return Default().Join(ctx, name, id, parent)
}
