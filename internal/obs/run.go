package obs

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"tevot/internal/obs/trace"
	"tevot/internal/prof"
)

// Flags is the shared observability flag block every CLI registers:
//
//	-log-level debug|info|warn|error   structured-log threshold
//	-log-format text|json              structured-log encoding
//	-debug-addr host:port              live debug endpoint (":0" = any port)
//	-run-json path                     run manifest destination ("" disables)
//	-cpuprofile / -memprofile path     pprof outputs, folded into the manifest
//	-trace on|off|N                    request-scoped tracing (N = trace-store size)
type Flags struct {
	LogLevel   string
	LogFormat  string
	DebugAddr  string
	RunJSON    string
	CPUProfile string
	MemProfile string
	Trace      string

	fs *flag.FlagSet
}

// RegisterFlags installs the observability flags on fs (the CLIs pass
// flag.CommandLine). Call before flag.Parse.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{fs: fs}
	fs.StringVar(&f.LogLevel, "log-level", "info", "log threshold: debug, info, warn, error")
	fs.StringVar(&f.LogFormat, "log-format", "text", "log encoding: text or json")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve /progress, /debug/vars and /debug/pprof on this address (\":0\" picks a port)")
	fs.StringVar(&f.RunJSON, "run-json", "run.json", "write the run manifest to this file (\"\" disables)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file")
	fs.StringVar(&f.Trace, "trace", "on", "request-scoped tracing: on, off, or a trace-store size (traces retained)")
	return f
}

// ParseTraceSetting parses the -trace flag value: "on" (default store
// size), "off" (tracing disabled), or a positive integer store size.
func ParseTraceSetting(v string) (enabled bool, storeSize int, err error) {
	switch v {
	case "", "on":
		return true, trace.DefaultRecent, nil
	case "off":
		return false, 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return false, 0, fmt.Errorf("obs: -trace must be on, off, or a positive store size (got %q)", v)
	}
	return true, n, nil
}

// Run is one CLI invocation's observability lifecycle: logging
// configured, profilers started, debug endpoint serving, manifest
// primed. Close (idempotent) flushes profiles and writes the manifest;
// Exit and Fatal do that before terminating, so no error path loses
// the profiles or the audit record.
type Run struct {
	Log *slog.Logger

	manifest     *Manifest
	manifestPath string
	debug        *DebugServer
	profSession  *prof.Session

	mu        sync.Mutex // guards manifest.Notes / ExitCode
	closeOnce sync.Once
	closeErr  error
}

// Start applies the parsed flags: it configures the default logger,
// starts the profilers, brings up the debug endpoint (when -debug-addr
// is set) with progress as the /progress payload source, and primes the
// run manifest with the resolved configuration. Call after flag.Parse;
// pair with `defer run.Close()`.
func (f *Flags) Start(command string, seed int64, progress func() any) (*Run, error) {
	if err := SetupLogging(f.LogLevel, f.LogFormat, nil); err != nil {
		return nil, err
	}
	traceOn, traceCap, err := ParseTraceSetting(f.Trace)
	if err != nil {
		return nil, err
	}
	if traceOn {
		trace.SetDefault(trace.New(seed, trace.NewStore(traceCap, 0)))
	} else {
		trace.SetDefault(nil)
	}
	ps, err := prof.Start(f.CPUProfile, f.MemProfile)
	if err != nil {
		return nil, err
	}
	r := &Run{
		Log:          Logger(command),
		profSession:  ps,
		manifestPath: f.RunJSON,
		manifest: &Manifest{
			Command:    command,
			Args:       append([]string(nil), os.Args[1:]...),
			Config:     flagValues(f.fs),
			Seed:       seed,
			GoVersion:  runtime.Version(),
			Pid:        os.Getpid(),
			Start:      time.Now(),
			CPUProfile: f.CPUProfile,
			MemProfile: f.MemProfile,
		},
	}
	if host, err := os.Hostname(); err == nil {
		r.manifest.Hostname = host
	}
	if f.DebugAddr != "" {
		ds, err := ServeDebug(f.DebugAddr, progress)
		if err != nil {
			ps.Stop()
			return nil, err
		}
		r.debug = ds
		r.manifest.DebugAddr = ds.Addr()
		// This line is the smoke test's (and the operator's) handle on
		// ":0" runs: it names the actual port to point a browser or
		// `go tool pprof` at.
		r.Log.Info("debug endpoint listening", "addr", "http://"+ds.Addr())
	}
	return r, nil
}

// flagValues captures every flag's resolved value (defaults included),
// so the manifest records the run's effective configuration.
func flagValues(fs *flag.FlagSet) map[string]string {
	if fs == nil {
		return nil
	}
	cfg := make(map[string]string)
	fs.VisitAll(func(fl *flag.Flag) {
		cfg[fl.Name] = fl.Value.String()
	})
	return cfg
}

// DebugAddr returns the live debug address ("" when not serving).
func (r *Run) DebugAddr() string {
	if r.debug == nil {
		return ""
	}
	return r.debug.Addr()
}

// Note records an extra key in the manifest's Notes (e.g. the final
// sweep report). Values must be JSON-marshalable.
func (r *Run) Note(key string, value any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.manifest.Notes == nil {
		r.manifest.Notes = make(map[string]any)
	}
	r.manifest.Notes[key] = value
}

// SetInterrupted marks the manifest as an interrupted (resumable) run.
func (r *Run) SetInterrupted() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.manifest.Interrupted = true
}

// Close flushes the profilers, writes the run manifest, and stops the
// debug endpoint. It is idempotent: CLIs both defer it (covering early
// error returns) and reach it via Exit/Fatal on explicit paths.
func (r *Run) Close() error {
	r.closeOnce.Do(func() {
		// Profiles first: the manifest records their paths and should
		// only do so once the files are complete on disk.
		if err := r.profSession.Stop(); err != nil {
			r.Log.Error("flushing profiles", "err", err)
			r.closeErr = err
		}
		if r.manifestPath != "" {
			r.mu.Lock()
			err := r.manifest.write(r.manifestPath)
			r.mu.Unlock()
			if err != nil {
				r.Log.Error("writing run manifest", "err", err)
				if r.closeErr == nil {
					r.closeErr = err
				}
			} else {
				r.Log.Debug("wrote run manifest", "path", r.manifestPath)
			}
		}
		if r.debug != nil {
			r.debug.Close()
		}
	})
	return r.closeErr
}

// Exit finalizes the run (Close) and terminates the process with code.
// Use instead of os.Exit so the manifest and profiles survive.
func (r *Run) Exit(code int) {
	r.mu.Lock()
	r.manifest.ExitCode = code
	r.mu.Unlock()
	r.Close()
	os.Exit(code)
}

// Fatal logs the error and exits 1 — the obs-aware replacement for
// log.Fatal, which would skip profile flushing and the manifest.
func (r *Run) Fatal(v ...any) {
	r.Log.Error(fmt.Sprint(v...))
	r.Exit(1)
}

// Fatalf is Fatal with formatting.
func (r *Run) Fatalf(format string, args ...any) {
	r.Log.Error(fmt.Sprintf(format, args...))
	r.Exit(1)
}
