package obs

import (
	"testing"
	"time"
)

func TestRatesBasic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rows")
	rs := NewRates(r)

	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i <= 10; i++ {
		c.Add(100) // 100 events per 1s tick
		rs.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	if v, ok := rs.Rate("rows", 1*time.Second); !ok || v != 100 {
		t.Fatalf("1s rate = %v (ok=%v), want 100", v, ok)
	}
	if v, ok := rs.Rate("rows", 10*time.Second); !ok || v != 100 {
		t.Fatalf("10s rate = %v (ok=%v), want 100", v, ok)
	}
	// Counter stalls: short-window rate drops to 0, long window decays.
	for i := 11; i <= 13; i++ {
		rs.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	if v, _ := rs.Rate("rows", 1*time.Second); v != 0 {
		t.Fatalf("1s rate after stall = %v, want 0", v)
	}
	if v, _ := rs.Rate("rows", 10*time.Second); v <= 0 || v >= 100 {
		t.Fatalf("10s rate after stall = %v, want in (0,100)", v)
	}
}

func TestRatesSingleSample(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	rs := NewRates(r)
	rs.Sample(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	if _, ok := rs.Rate("x", time.Second); ok {
		t.Fatal("rate reported from a single sample")
	}
	if _, ok := rs.Rate("missing", time.Second); ok {
		t.Fatal("rate reported for a never-sampled counter")
	}
}

func TestRatesRingWraps(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	rs := NewRates(r)
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	// 200 samples into 61 slots: the ring must wrap and the 60s
	// lookback must use only the retained samples.
	for i := 0; i < 200; i++ {
		c.Add(int64(i)) // accelerating counter
		rs.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	v60, ok := rs.Rate("x", 60*time.Second)
	if !ok {
		t.Fatal("no 60s rate after 200 samples")
	}
	v1, _ := rs.Rate("x", 1*time.Second)
	if v1 != 199 {
		t.Fatalf("1s rate = %v, want 199 (latest delta)", v1)
	}
	// Over the last 60s the increments averaged (140+...+199)/60.
	want := float64(140+141+142) / 3 // spot-check band, not exact
	if v60 < want || v60 > 199 {
		t.Fatalf("60s rate = %v, outside (%v, 199)", v60, want)
	}
}

func TestRatesSnapshotSkipsIdleCounters(t *testing.T) {
	r := NewRegistry()
	r.Counter("idle")
	busy := r.Counter("busy")
	rs := NewRates(r)
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		busy.Add(10)
		rs.Sample(t0.Add(time.Duration(i) * time.Second))
	}
	snap := rs.Snapshot()
	if _, ok := snap["idle"]; ok {
		t.Fatal("idle counter present in rates snapshot")
	}
	st, ok := snap["busy"]
	if !ok || st.PerSec1s != 10 {
		t.Fatalf("busy rate = %+v (ok=%v), want 10/s", st, ok)
	}
}
