package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func promTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.Counter("core.cycles_simulated").Add(1234)
	r.Counter("runner.cells_ok").Add(6)
	r.Gauge("sweep.rows_per_sec").Set(421.5)
	h := r.Histogram("runner.cell_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	return r
}

func TestPromRoundTrip(t *testing.T) {
	r := promTestRegistry(t)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	fams, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("writer output rejected by strict parser: %v\n%s", err, text)
	}
	if v, ok := PromCounterTotal(fams, "tevot_core_cycles_simulated_total"); !ok || v != 1234 {
		t.Fatalf("cycles counter = %v (ok=%v), want 1234", v, ok)
	}
	g, ok := fams["tevot_sweep_rows_per_sec"]
	if !ok || g.Type != "gauge" || len(g.Samples) != 1 || g.Samples[0].Value != 421.5 {
		t.Fatalf("gauge family wrong: %+v", g)
	}
	hf, ok := fams["tevot_runner_cell_seconds"]
	if !ok || hf.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", hf)
	}
	// 3 bounds + +Inf bucket + _sum + _count = 6 samples.
	if len(hf.Samples) != 6 {
		t.Fatalf("histogram has %d samples, want 6:\n%s", len(hf.Samples), text)
	}
	var infN, count float64
	for _, s := range hf.Samples {
		if strings.HasSuffix(s.Name, "_bucket") && s.Labels["le"] == "+Inf" {
			infN = s.Value
		}
		if strings.HasSuffix(s.Name, "_count") {
			count = s.Value
		}
	}
	if infN != 5 || count != 5 {
		t.Fatalf("+Inf bucket %v / _count %v, want 5/5", infN, count)
	}
}

func TestPromHandler(t *testing.T) {
	r := promTestRegistry(t)
	srv := httptest.NewServer(PromHandler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != PromContentType {
		t.Fatalf("Content-Type %q, want %q", got, PromContentType)
	}
	if _, err := ParseProm(resp.Body); err != nil {
		t.Fatalf("handler output rejected: %v", err)
	}
}

func TestPromExtraLabels(t *testing.T) {
	r := promTestRegistry(t)
	var b strings.Builder
	if err := WritePromSnapshot(&b, PromPrefix, r.Snapshot(), map[string]string{"worker": `w"1\x`}); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("labeled output rejected: %v\n%s", err, b.String())
	}
	fam := fams["tevot_runner_cells_ok_total"]
	if fam == nil || len(fam.Samples) != 1 {
		t.Fatalf("labeled counter missing: %+v", fam)
	}
	if got := fam.Samples[0].Labels["worker"]; got != `w"1\x` {
		t.Fatalf("label round trip: %q", got)
	}
}

func TestPromNameSanitize(t *testing.T) {
	cases := map[string]string{
		"core.cycles_simulated": "tevot_core_cycles_simulated",
		"a-b.c d":               "tevot_a_b_c_d",
		"über":                  "tevot___ber", // each non-ASCII byte becomes _
	}
	for in, want := range cases {
		if got := promName(PromPrefix, in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
		if !validPromName(promName(PromPrefix, in)) {
			t.Errorf("promName(%q) not a valid metric name", in)
		}
	}
}

func TestPromFloatSpellings(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.001:        "0.001",
		600:          "600",
	}
	for v, want := range cases {
		if got := promFloat(v); got != want {
			t.Errorf("promFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if promFloat(math.NaN()) != "NaN" {
		t.Error("NaN spelling wrong")
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	bad := map[string]string{
		"sample before TYPE":   "x_total 1\n# TYPE x_total counter\n",
		"no TYPE at all":       "x_total 1\n",
		"duplicate series":     "# TYPE x counter\nx 1\nx 2\n",
		"second TYPE":          "# TYPE x counter\nx 1\n# TYPE x counter\n",
		"negative counter":     "# TYPE x counter\nx -1\n",
		"bad name":             "# TYPE 9x counter\n9x 1\n",
		"bad value":            "# TYPE x counter\nx one\n",
		"unterminated labels":  "# TYPE x counter\nx{a=\"b\" 1\n",
		"bad escape":           "# TYPE x counter\nx{a=\"\\t\"} 1\n",
		"unknown type":         "# TYPE x weird\nx 1\n",
		"histogram no +Inf":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram decreasing": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"histogram inf!=count": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"histogram no sum":     "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"float bucket count":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1.5\nh_sum 1\nh_count 1.5\n",
	}
	for name, text := range bad {
		if _, err := ParseProm(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, text)
		}
	}
	// And a well-formed document with the optional extras must pass.
	good := "# a comment\n# HELP x help text here\n# TYPE x counter\nx{a=\"b\"} 1 1712345678\n\n"
	if _, err := ParseProm(strings.NewReader(good)); err != nil {
		t.Errorf("good document rejected: %v", err)
	}
}
