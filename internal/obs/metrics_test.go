package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"math"
	"sync"
	"testing"

	"tevot/internal/obs/trace"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second Counter(\"c\") returned a different instance")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	if got := g.Value(); got != 0 {
		t.Fatalf("zero Value = %v, want 0", got)
	}
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("Value = %v, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("Value = %v, want -1", got)
	}
}

// TestHistogramBuckets pins the bucket boundary semantics: bucket i
// counts v <= bounds[i], and a value exactly on a bound lands in that
// bound's bucket, not the next one.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1} { // both <= 1
		h.Observe(v)
	}
	h.Observe(1.5) // bucket (1,2]
	h.Observe(2)   // exactly on a bound: still (1,2]
	h.Observe(5)   // exactly the last bound
	h.Observe(6)   // overflow
	want := []int64{2, 2, 1, 1}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("BucketCounts len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if h.Sum() != 0.5+1+1.5+2+5+6 {
		t.Errorf("Sum = %v, want 16", h.Sum())
	}
	if h.Max() != 6 {
		t.Errorf("Max = %v, want 6", h.Max())
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1})
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatalf("NaN was counted: Count = %d", h.Count())
	}
	h.Observe(0.5)
	if math.IsNaN(h.Sum()) {
		t.Fatal("NaN poisoned the running sum")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 20, 30})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i % 30))
	}
	p50 := h.Quantile(0.50)
	if p50 < 10 || p50 > 20 {
		t.Errorf("p50 = %v, want within (10, 20]", p50)
	}
	if q := h.Quantile(1); q < h.Quantile(0.5) {
		t.Errorf("p100 %v < p50 %v", q, h.Quantile(0.5))
	}
	// Overflow observations interpolate toward the observed max — never
	// +Inf — and the top quantile reaches it exactly.
	h2 := r.Histogram("h2", []float64{1})
	h2.Observe(50)
	if got := h2.Quantile(1); got != 50 {
		t.Errorf("overflow p100 = %v, want 50", got)
	}
	if got := h2.Quantile(0.5); math.IsInf(got, 1) || got > 50 {
		t.Errorf("overflow p50 = %v, want finite <= 50", got)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}, {math.NaN()}} {
		if _, err := newHistogram(bounds); err == nil {
			t.Errorf("newHistogram(%v): no error", bounds)
		}
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge after counter did not panic")
		}
	}()
	r.Gauge("x")
}

// TestMetricsHotPathAllocs enforces the hot-path contract: the
// primitives the cycle loop calls must not allocate.
func TestMetricsHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v per op, want 0", n)
	}
	v := 0.0
	if n := testing.AllocsPerRun(1000, func() { h.Observe(v); v += 0.01 }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op, want 0", n)
	}
	// Disabled-tracer span creation is on the same hot paths (obs.Span
	// in the characterize loop, trace.Child in serve/dist): with no
	// tracer installed and no span in the context it must stay free.
	prev := trace.Default()
	trace.SetDefault(nil)
	defer trace.SetDefault(prev)
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		_, sp := trace.Child(ctx, "hot")
		sp.End()
	}); n != 0 {
		t.Errorf("disabled trace.Child allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		_, sp := trace.Root(ctx, "hot")
		sp.End()
	}); n != 0 {
		t.Errorf("disabled trace.Root allocates %v per op, want 0", n)
	}
}

// TestMetricsConcurrent hammers the primitives from many goroutines;
// under `go test -race` this also proves the atomics are race-free.
func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 10, 100})
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 200))
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent reader
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("Counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("Histogram.Count = %d, want %d", got, workers*perWorker)
	}
	// The sum of workers identical sequences is exact in float64 here.
	var wantSum float64
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i % 200)
	}
	if got := h.Sum(); got != wantSum*workers {
		t.Errorf("Histogram.Sum = %v, want %v", got, wantSum*workers)
	}
}

// TestSnapshotJSONRoundTrip marshals a registry snapshot — including
// the +Inf overflow bucket — and decodes it back, proving /debug/vars
// and run.json consumers get valid JSON with cumulative buckets.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("cells").Add(7)
	r.Gauge("rows_per_sec").Set(123.5)
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9) // overflow

	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
		Hists    map[string]struct {
			Count   int64 `json:"count"`
			Buckets []struct {
				Le json.RawMessage `json:"le"`
				N  int64           `json:"n"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, data)
	}
	if decoded.Counters["cells"] != 7 {
		t.Errorf("counters.cells = %d, want 7", decoded.Counters["cells"])
	}
	if decoded.Gauges["rows_per_sec"] != 123.5 {
		t.Errorf("gauges.rows_per_sec = %v, want 123.5", decoded.Gauges["rows_per_sec"])
	}
	lat := decoded.Hists["lat"]
	if lat.Count != 3 {
		t.Fatalf("histograms.lat.count = %d, want 3", lat.Count)
	}
	// Cumulative: 1, 2, 3; final bucket's le is the string "+Inf".
	wantN := []int64{1, 2, 3}
	if len(lat.Buckets) != 3 {
		t.Fatalf("lat has %d buckets, want 3", len(lat.Buckets))
	}
	for i, b := range lat.Buckets {
		if b.N != wantN[i] {
			t.Errorf("bucket %d cumulative n = %d, want %d", i, b.N, wantN[i])
		}
	}
	if got := string(lat.Buckets[2].Le); got != `"+Inf"` {
		t.Errorf("overflow le = %s, want \"+Inf\"", got)
	}
}

func TestJSONFloat(t *testing.T) {
	cases := map[JSONFloat]string{
		JSONFloat(1.5):          "1.5",
		JSONFloat(math.Inf(1)):  `"+Inf"`,
		JSONFloat(math.Inf(-1)): `"-Inf"`,
		JSONFloat(math.NaN()):   `"NaN"`,
		JSONFloat(0.001):        "0.001",
		JSONFloat(600):          "600",
	}
	for in, want := range cases {
		got, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Errorf("Marshal(%v) = %s, want %s", float64(in), got, want)
		}
	}
}

// TestExpvarPublished checks the default registry is visible through
// the expvar interface under the "tevot" name, and renders as JSON.
func TestExpvarPublished(t *testing.T) {
	NewCounter("expvar_test_counter").Inc()
	v := expvar.Get("tevot")
	if v == nil {
		t.Fatal("expvar.Get(\"tevot\") = nil; registry not published")
	}
	var decoded struct {
		Metrics RegistrySnapshot `json:"metrics"`
		Stages  []StageStat      `json:"stages"`
	}
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("expvar payload is not valid JSON: %v", err)
	}
	if decoded.Metrics.Counters["expvar_test_counter"] < 1 {
		t.Errorf("published counter missing from expvar snapshot: %+v", decoded.Metrics.Counters)
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c", []float64{1})
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Names = %v, want [a b c]", names)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 0.001)
	}
}
