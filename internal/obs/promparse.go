package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A strict parser for the exposition format the writer in prom.go
// emits. "Strict" is the point: it is the round-trip oracle in tests
// and the scrape validator in check.sh, so it rejects everything the
// spec frowns on instead of limping past it — samples before their
// # TYPE line, duplicate series, malformed label escapes, histograms
// whose cumulative buckets decrease or whose +Inf bucket disagrees
// with _count.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one metric family: a # TYPE declaration plus its
// samples (histogram families collect their _bucket/_sum/_count
// series under the base name).
type PromFamily struct {
	Name    string
	Type    string
	Samples []PromSample
}

// ParseProm parses exposition-format text into families keyed by name.
// Any deviation from the format is an error.
func ParseProm(r io.Reader) (map[string]*PromFamily, error) {
	fams := make(map[string]*PromFamily)
	seen := make(map[string]bool) // duplicate-series detection
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parsePromComment(line, fams); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		famName, ok := sampleFamily(s.Name, fams)
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE declaration", lineNo, s.Name)
		}
		key := s.Name + labelKey(s.Labels)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		fam := fams[famName]
		if fam.Type == "counter" {
			if s.Value < 0 || math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
				return nil, fmt.Errorf("line %d: counter %s has invalid value %v", lineNo, s.Name, s.Value)
			}
			if s.Name != famName && s.Name != famName+"_total" {
				return nil, fmt.Errorf("line %d: counter sample %q does not match family %q", lineNo, s.Name, famName)
			}
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range fams {
		if fam.Type == "histogram" {
			if err := validateHistogramFamily(fam); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", fam.Name, err)
			}
		}
	}
	return fams, nil
}

func parsePromComment(line string, fams map[string]*PromFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validPromName(name) {
			return fmt.Errorf("invalid metric name %q in TYPE line", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if f, ok := fams[name]; ok {
			if len(f.Samples) > 0 || f.Type != "" {
				return fmt.Errorf("second TYPE line for %s", name)
			}
		}
		fams[name] = &PromFamily{Name: name, Type: typ}
	case "HELP":
		if len(fields) < 3 || !validPromName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	}
	return nil
}

// sampleFamily resolves a sample name to its declared family,
// accounting for the histogram/summary and counter suffixes.
func sampleFamily(name string, fams map[string]*PromFamily) (string, bool) {
	if _, ok := fams[name]; ok {
		return name, true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, found := strings.CutSuffix(name, suf); found {
			if f, ok := fams[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
				return base, true
			}
		}
	}
	if base, found := strings.CutSuffix(name, "_total"); found {
		if f, ok := fams[base]; ok && f.Type == "counter" {
			return base, true
		}
	}
	return "", false
}

func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || strings.ContainsRune(name, ':') {
		return false
	}
	return validPromName(name)
}

// parsePromSample parses `name{labels} value [timestamp]`.
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var err error
		s.Labels, rest, err = parsePromLabels(rest)
		if err != nil {
			return s, err
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" {
		return s, fmt.Errorf("missing value in %q", line)
	}
	fields := strings.Split(rest, " ")
	if len(fields) > 2 {
		return s, fmt.Errorf("trailing garbage in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parsePromLabels parses `{k="v",...}` and returns the remainder of
// the line after the closing brace.
func parsePromLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		if i >= len(in) {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if in[i] == '}' {
			return labels, in[i+1:], nil
		}
		j := i
		for j < len(in) && in[j] != '=' {
			j++
		}
		if j >= len(in) {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := in[i:j]
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		j++ // past '='
		if j >= len(in) || in[j] != '"' {
			return nil, "", fmt.Errorf("label value for %q not quoted", name)
		}
		j++
		var val strings.Builder
		for {
			if j >= len(in) {
				return nil, "", fmt.Errorf("unterminated label value for %q", name)
			}
			c := in[j]
			if c == '"' {
				j++
				break
			}
			if c == '\\' {
				j++
				if j >= len(in) {
					return nil, "", fmt.Errorf("dangling escape in label %q", name)
				}
				switch in[j] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("invalid escape \\%c in label %q", in[j], name)
				}
				j++
				continue
			}
			val.WriteByte(c)
			j++
		}
		labels[name] = val.String()
		if j < len(in) && in[j] == ',' {
			j++
		} else if j < len(in) && in[j] != '}' {
			return nil, "", fmt.Errorf("expected ',' or '}' after label %q", name)
		}
		i = j
	}
}

func labelKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// validateHistogramFamily checks the histogram invariants per series
// group (samples grouped by their non-le labels): le bounds parse and
// strictly increase, cumulative counts never decrease, a +Inf bucket
// exists and equals _count, and _sum/_count are present.
func validateHistogramFamily(fam *PromFamily) error {
	type group struct {
		les     []float64
		counts  []float64
		sum     *float64
		count   *float64
		infSeen bool
		infN    float64
	}
	groups := make(map[string]*group)
	get := func(labels map[string]string) *group {
		rest := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		k := labelKey(rest)
		g, ok := groups[k]
		if !ok {
			g = &group{}
			groups[k] = g
		}
		return g
	}
	for i := range fam.Samples {
		s := &fam.Samples[i]
		g := get(s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("bad le %q: %v", leStr, err)
			}
			if s.Value < 0 || s.Value != math.Trunc(s.Value) {
				return fmt.Errorf("bucket count %v not a non-negative integer", s.Value)
			}
			g.les = append(g.les, le)
			g.counts = append(g.counts, s.Value)
			if math.IsInf(le, 1) {
				g.infSeen = true
				g.infN = s.Value
			}
		case strings.HasSuffix(s.Name, "_sum"):
			v := s.Value
			g.sum = &v
		case strings.HasSuffix(s.Name, "_count"):
			v := s.Value
			g.count = &v
		default:
			return fmt.Errorf("unexpected sample %q in histogram family", s.Name)
		}
	}
	for _, g := range groups {
		if len(g.les) == 0 {
			return fmt.Errorf("series with no buckets")
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("le bounds not increasing (%v after %v)", g.les[i], g.les[i-1])
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("cumulative bucket counts decrease at le=%v", g.les[i])
			}
		}
		if !g.infSeen {
			return fmt.Errorf("missing +Inf bucket")
		}
		if g.sum == nil || g.count == nil {
			return fmt.Errorf("missing _sum or _count")
		}
		if g.infN != *g.count {
			return fmt.Errorf("+Inf bucket (%v) != _count (%v)", g.infN, *g.count)
		}
	}
	return nil
}

// PromCounterTotal sums a counter family's samples across all label
// sets — the cluster balance checks use it ("summed per-worker cells
// done == grid size"). The family may be declared with or without the
// _total suffix.
func PromCounterTotal(fams map[string]*PromFamily, name string) (float64, bool) {
	fam, ok := fams[name]
	if !ok {
		fam, ok = fams[strings.TrimSuffix(name, "_total")]
	}
	if !ok || fam.Type != "counter" {
		return 0, false
	}
	sum := 0.0
	for _, s := range fam.Samples {
		sum += s.Value
	}
	return sum, true
}
