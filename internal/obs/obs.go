// Package obs is the observability layer for hours-long
// characterization sweeps: structured logging, a zero-allocation
// metrics registry, pipeline tracing spans, a live debug HTTP endpoint,
// and an auditable per-run manifest. It is stdlib-only (log/slog,
// expvar, net/http/pprof) and is safe to import from any library
// package — the hot-path primitives (Counter.Inc, Gauge.Set,
// Histogram.Observe) are single atomic operations that never allocate,
// so instrumentation inside the cycle loop does not move the
// performance gate.
//
// The paper-scale evaluation is a 100-corner × 4-FU × multi-dataset DTA
// grid (PAPER.md §V) that runs for hours; without this layer the only
// window into a running sweep was pprof flags and ad-hoc stderr prints.
// Related timing-error frameworks that serve predictions online (FATE;
// Ajirlou & Partin-Vaisband, see PAPERS.md) treat per-stage latency and
// error counters as first-class signals — this package gives the TEVoT
// pipeline the same.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
)

// defaultLogger is the process-wide logger; SetupLogging replaces it.
// The zero configuration logs text at Info to stderr, so library
// packages can log through obs.Logger before any CLI wiring runs.
var defaultLogger atomic.Pointer[slog.Logger]

func init() {
	defaultLogger.Store(newLogger("info", "text", os.Stderr))
}

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

func newLogger(level, format string, w io.Writer) *slog.Logger {
	lvl, err := ParseLevel(level)
	if err != nil {
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// SetupLogging installs the process-wide default logger from the
// -log-level (debug|info|warn|error) and -log-format (text|json) flag
// values. A nil writer means stderr.
func SetupLogging(level, format string, w io.Writer) error {
	if _, err := ParseLevel(level); err != nil {
		return err
	}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text", "json":
	default:
		return fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
	if w == nil {
		w = os.Stderr
	}
	defaultLogger.Store(newLogger(level, format, w))
	return nil
}

// Default returns the process-wide logger.
func Default() *slog.Logger { return defaultLogger.Load() }

// Logger returns a child logger tagged with the component name, e.g.
// obs.Logger("runner"). Children observe later SetupLogging calls only
// if re-created, so library packages should call Logger at use sites
// (or re-fetch per operation) rather than caching across a CLI's flag
// parsing; in practice every CLI calls SetupLogging before any work
// runs, so a package-level child is fine too.
func Logger(component string) *slog.Logger {
	return Default().With("component", component)
}
