package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the live window into a running CLI: expvar, pprof, and
// a JSON progress view, served on the -debug-addr listener. It is
// read-only and intended for localhost / trusted-network use, exactly
// like net/http/pprof's default wiring.
//
// Routes:
//
//	/            — route index
//	/progress    — live progress JSON (runner counters + ETA)
//	/stages      — per-stage latency aggregates (Stages())
//	/debug/vars  — expvar (includes the "tevot" metrics registry)
//	/debug/pprof — CPU/heap/goroutine profiles for `go tool pprof`
type DebugServer struct {
	lis  net.Listener
	srv  *http.Server
	addr string
}

// ServeDebug starts the debug endpoint on addr (":0" picks a free
// port; the chosen address is DebugServer.Addr). progress supplies the
// /progress payload and may be nil, in which case /progress serves the
// stage-latency aggregates only.
func ServeDebug(addr string, progress func() any) (*DebugServer, error) {
	publishExpvar()
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener on %s: %w", addr, err)
	}
	if progress == nil {
		progress = func() any {
			return map[string]any{"status": "no-progress-source", "stages": Stages()}
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "tevot debug endpoint\n\n/progress\n/stages\n/debug/vars\n/debug/pprof/\n")
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, progress())
	})
	mux.HandleFunc("/stages", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, Stages())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ds := &DebugServer{
		lis:  lis,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		addr: lis.Addr().String(),
	}
	go func() {
		// ErrServerClosed after Close is the expected shutdown path;
		// anything else is worth a log line but must not kill the sweep.
		if err := ds.srv.Serve(lis); err != nil && err != http.ErrServerClosed {
			Logger("obs").Error("debug server stopped", "addr", ds.addr, "err", err)
		}
	}()
	return ds, nil
}

// Addr is the address actually listening (resolves ":0").
func (ds *DebugServer) Addr() string { return ds.addr }

// Close stops the listener and server.
func (ds *DebugServer) Close() error { return ds.srv.Close() }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
