package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"tevot/internal/obs/trace"
)

// DebugServer is the live window into a running CLI: expvar, pprof,
// Prometheus exposition, traces, and a JSON progress view, served on
// the -debug-addr listener. It is read-only and intended for
// localhost / trusted-network use, exactly like net/http/pprof's
// default wiring.
//
// Routes:
//
//	/             — route index
//	/progress     — live progress JSON (runner counters + ETA + rates)
//	/stages       — per-stage latency aggregates (Stages())
//	/rates        — live counter rates (1s/10s/60s windows)
//	/metrics      — Prometheus exposition format 0.0.4
//	/debug/traces — trace store (list; ?id=<hex> renders one trace)
//	/debug/vars   — expvar (includes the "tevot" metrics registry)
//	/debug/pprof  — CPU/heap/goroutine profiles for `go tool pprof`
type DebugServer struct {
	lis         net.Listener
	srv         *http.Server
	addr        string
	stopSampler chan struct{}
}

// ServeDebug starts the debug endpoint on addr (":0" picks a free
// port; the chosen address is DebugServer.Addr). progress supplies the
// /progress payload and may be nil, in which case /progress serves the
// stage-latency aggregates only. While the server is up, a 1 Hz
// sampler feeds the default rate rings.
func ServeDebug(addr string, progress func() any) (*DebugServer, error) {
	publishExpvar()
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener on %s: %w", addr, err)
	}
	if progress == nil {
		progress = func() any {
			return map[string]any{"status": "no-progress-source", "stages": Stages()}
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "tevot debug endpoint\n\n/progress\n/stages\n/rates\n/metrics\n/debug/traces\n/debug/vars\n/debug/pprof/\n")
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, withRates(progress()))
	})
	mux.HandleFunc("/stages", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, Stages())
	})
	mux.HandleFunc("/rates", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, defaultRates.Snapshot())
	})
	mux.Handle("/metrics", PromHandler(nil))
	mux.Handle("/debug/traces", trace.DefaultHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ds := &DebugServer{
		lis:         lis,
		srv:         &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		addr:        lis.Addr().String(),
		stopSampler: make(chan struct{}),
	}
	go func() {
		// ErrServerClosed after Close is the expected shutdown path;
		// anything else is worth a log line but must not kill the sweep.
		if err := ds.srv.Serve(lis); err != nil && err != http.ErrServerClosed {
			Logger("obs").Error("debug server stopped", "addr", ds.addr, "err", err)
		}
	}()
	go func() {
		tick := time.NewTicker(1 * time.Second)
		defer tick.Stop()
		defaultRates.Sample(time.Now())
		for {
			select {
			case <-ds.stopSampler:
				return
			case now := <-tick.C:
				defaultRates.Sample(now)
			}
		}
	}()
	return ds, nil
}

// withRates attaches the live counter rates to map-shaped progress
// payloads under a "rates" key. Struct payloads (the sweep runner's
// typed Progress) pass through unchanged — their consumers fetch
// /rates directly.
func withRates(payload any) any {
	m, ok := payload.(map[string]any)
	if !ok {
		return payload
	}
	if _, taken := m["rates"]; taken {
		return m
	}
	out := make(map[string]any, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	out["rates"] = defaultRates.Snapshot()
	return out
}

// Addr is the address actually listening (resolves ":0").
func (ds *DebugServer) Addr() string { return ds.addr }

// Close stops the sampler, listener, and server.
func (ds *DebugServer) Close() error {
	select {
	case <-ds.stopSampler:
	default:
		close(ds.stopSampler)
	}
	return ds.srv.Close()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
