package obs

import (
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func TestRegisterFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs)
	err := fs.Parse([]string{
		"-log-level", "debug", "-log-format", "json",
		"-debug-addr", "127.0.0.1:0", "-run-json", "x.json",
		"-cpuprofile", "c.prof", "-memprofile", "m.prof",
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.LogLevel != "debug" || f.LogFormat != "json" || f.DebugAddr != "127.0.0.1:0" ||
		f.RunJSON != "x.json" || f.CPUProfile != "c.prof" || f.MemProfile != "m.prof" {
		t.Fatalf("flags not bound: %+v", f)
	}
}

func TestRunLifecycle(t *testing.T) {
	resetLogging(t)
	dir := t.TempDir()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs)
	manifest := filepath.Join(dir, "run.json")
	cpu := filepath.Join(dir, "cpu.prof")
	if err := fs.Parse([]string{
		"-run-json", manifest, "-cpuprofile", cpu, "-debug-addr", "127.0.0.1:0",
		"-log-level", "error",
	}); err != nil {
		t.Fatal(err)
	}

	progress := func() any { return map[string]any{"status": "running"} }
	run, err := f.Start("obstest", 42, progress)
	if err != nil {
		t.Fatal(err)
	}
	if run.DebugAddr() == "" {
		t.Fatal("DebugAddr empty with -debug-addr set")
	}
	resp, err := http.Get("http://" + run.DebugAddr() + "/progress")
	if err != nil {
		t.Fatalf("debug endpoint not serving: %v", err)
	}
	resp.Body.Close()

	run.Note("rows", 7)
	run.SetInterrupted()
	if err := run.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := run.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}

	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest not JSON: %v\n%s", err, data)
	}
	if m.Command != "obstest" || m.Seed != 42 {
		t.Errorf("command/seed = %q/%d, want obstest/42", m.Command, m.Seed)
	}
	if m.GoVersion == "" || m.Pid == 0 {
		t.Errorf("go_version/pid missing: %+v", m)
	}
	if m.Config["log-level"] != "error" {
		t.Errorf("config does not record resolved flags: %v", m.Config)
	}
	if !m.Interrupted {
		t.Error("Interrupted not recorded")
	}
	if m.Notes["rows"] != float64(7) {
		t.Errorf("notes.rows = %v, want 7", m.Notes["rows"])
	}
	if m.End.Before(m.Start) || m.DurationSec < 0 {
		t.Errorf("bad timestamps: start %v end %v", m.Start, m.End)
	}
	if m.DebugAddr == "" {
		t.Error("debug_addr missing from manifest")
	}
	if _, err := os.Stat(cpu); err != nil {
		t.Errorf("CPU profile not flushed by Close: %v", err)
	}
}

func TestRunNoManifest(t *testing.T) {
	resetLogging(t)
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{"-run-json", ""}); err != nil {
		t.Fatal(err)
	}
	run, err := f.Start("obstest", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("run.json"); err == nil {
		t.Error("run.json written despite -run-json \"\"")
	}
}

func TestRunBadLogLevel(t *testing.T) {
	resetLogging(t)
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{"-log-level", "loud"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Start("obstest", 0, nil); err == nil {
		t.Fatal("bad -log-level accepted")
	}
}
