package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanAggregates(t *testing.T) {
	resetStagesForTest()
	for i := 0; i < 3; i++ {
		_, end := Span(context.Background(), "test.stage")
		time.Sleep(time.Millisecond)
		end()
	}
	stages := Stages()
	var st *StageStat
	for i := range stages {
		if stages[i].Name == "test.stage" {
			st = &stages[i]
		}
	}
	if st == nil {
		t.Fatalf("test.stage missing from Stages(): %+v", stages)
	}
	if st.Count != 3 {
		t.Errorf("Count = %d, want 3", st.Count)
	}
	if st.TotalMS < 3 {
		t.Errorf("TotalMS = %v, want >= 3 (3 × 1ms sleeps)", st.TotalMS)
	}
	if st.MaxMS > st.TotalMS || st.MeanMS > st.MaxMS {
		t.Errorf("inconsistent aggregates: mean %v, max %v, total %v", st.MeanMS, st.MaxMS, st.TotalMS)
	}
}

func TestSpanContextUnchanged(t *testing.T) {
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	out, end := Span(ctx, "test.ctx")
	end()
	if out.Value(key{}) != "v" {
		t.Fatal("Span dropped context values")
	}
}

func TestTime(t *testing.T) {
	resetStagesForTest()
	end := Time("test.time")
	end()
	found := false
	for _, s := range Stages() {
		if s.Name == "test.time" && s.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Time() did not record a stage: %+v", Stages())
	}
}

func TestStagesSortedByTotal(t *testing.T) {
	resetStagesForTest()
	slow := Time("test.slow")
	time.Sleep(5 * time.Millisecond)
	slow()
	fast := Time("test.fast")
	fast()
	stages := Stages()
	if len(stages) != 2 {
		t.Fatalf("Stages len = %d, want 2", len(stages))
	}
	if stages[0].Name != "test.slow" {
		t.Errorf("Stages not sorted by total desc: %+v", stages)
	}
}

func TestStageTable(t *testing.T) {
	resetStagesForTest()
	if got := StageTable(); got != "" {
		t.Fatalf("empty StageTable = %q, want \"\"", got)
	}
	Time("test.tbl")()
	tbl := StageTable()
	if !strings.Contains(tbl, "test.tbl") || !strings.Contains(tbl, "stage") {
		t.Fatalf("StageTable missing content:\n%s", tbl)
	}
}

// TestSpanConcurrent overlaps spans of the same name from many
// goroutines; meaningful under -race.
func TestSpanConcurrent(t *testing.T) {
	resetStagesForTest()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_, end := Span(context.Background(), "test.conc")
				end()
			}
		}()
	}
	wg.Wait()
	for _, s := range Stages() {
		if s.Name == "test.conc" {
			if s.Count != 8*200 {
				t.Fatalf("Count = %d, want %d", s.Count, 8*200)
			}
			return
		}
	}
	t.Fatal("test.conc missing from Stages()")
}
