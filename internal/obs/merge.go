package obs

import (
	"fmt"
	"math"
)

// Fleet aggregation: the coordinator folds each worker's
// RegistrySnapshot (piggybacked on lease renewals and result uploads)
// into one cluster view. Counters and gauge-sums add; histograms merge
// bucket-wise, which is exact — cumulative bucket counts are sums of
// disjoint observation sets — and associative, so the merge order
// across workers cannot change the result (pinned by
// TestHistogramMergeAssociativity).

// MergeHistogramSnapshots merges two histogram snapshots bucket-wise.
// Both must share the same bucket bounds (same binary ⇒ same metric
// declarations); mismatched bounds are an error, not a guess.
func MergeHistogramSnapshots(a, b HistogramSnapshot) (HistogramSnapshot, error) {
	if len(a.Buckets) == 0 {
		return b, nil
	}
	if len(b.Buckets) == 0 {
		return a, nil
	}
	if len(a.Buckets) != len(b.Buckets) {
		return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(a.Buckets), len(b.Buckets))
	}
	out := HistogramSnapshot{
		Count:   a.Count + b.Count,
		Sum:     a.Sum + b.Sum,
		Max:     math.Max(a.Max, b.Max),
		Buckets: make([]BucketSnaphot, len(a.Buckets)),
	}
	for i := range a.Buckets {
		if a.Buckets[i].Le != b.Buckets[i].Le {
			return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with different bounds at bucket %d (%v vs %v)",
				i, float64(a.Buckets[i].Le), float64(b.Buckets[i].Le))
		}
		out.Buckets[i] = BucketSnaphot{Le: a.Buckets[i].Le, N: a.Buckets[i].N + b.Buckets[i].N}
	}
	if out.Count > 0 {
		out.Mean = out.Sum / float64(out.Count)
	}
	out.P50 = out.Quantile(0.50)
	out.P95 = out.Quantile(0.95)
	out.P99 = out.Quantile(0.99)
	return out, nil
}

// Quantile estimates the q-quantile from the snapshot's cumulative
// buckets, with the same linear interpolation as Histogram.Quantile
// (overflow mass is attributed to Max).
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := 0.0
	prevCum := int64(0)
	for i, b := range h.Buckets {
		bn := float64(b.N - prevCum)
		prevCum = b.N
		if cum+bn >= rank && bn > 0 {
			lo := 0.0
			if i > 0 {
				lo = float64(h.Buckets[i-1].Le)
			}
			hi := h.Max
			if !math.IsInf(float64(b.Le), 1) {
				hi = float64(b.Le)
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / bn
			return lo + frac*(hi-lo)
		}
		cum += bn
	}
	return h.Max
}

// MergeSnapshots folds src into dst: counters and gauges sum,
// histograms merge bucket-wise. Histograms whose bounds disagree are
// skipped and reported (the caller logs them once); everything else
// still merges.
func MergeSnapshots(dst *RegistrySnapshot, src RegistrySnapshot) []error {
	var errs []error
	for name, v := range src.Counters {
		if dst.Counters == nil {
			dst.Counters = make(map[string]int64, len(src.Counters))
		}
		dst.Counters[name] += v
	}
	for name, v := range src.Gauges {
		if dst.Gauges == nil {
			dst.Gauges = make(map[string]float64, len(src.Gauges))
		}
		dst.Gauges[name] += v
	}
	for name, h := range src.Histograms {
		if dst.Histograms == nil {
			dst.Histograms = make(map[string]HistogramSnapshot, len(src.Histograms))
		}
		merged, err := MergeHistogramSnapshots(dst.Histograms[name], h)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
			continue
		}
		dst.Histograms[name] = merged
	}
	return errs
}
