package obs

import (
	"sort"
	"sync"
	"time"
)

// Rate tracking: a fixed-size time-series ring per counter, sampled
// once a second by the debug server, so /progress and /rates can show
// live rows/s, cycles/s, req/s without an external scraper doing the
// delta math. 61 slots cover a 60-second lookback at 1-sample-per-
// second; memory is a few KB per process regardless of run length.

// rateSample is one (time, counter value) observation.
type rateSample struct {
	t time.Time
	v int64
}

// rateRing is a fixed-capacity ring of samples for one counter.
type rateRing struct {
	buf  []rateSample
	head int // next write position
	n    int // valid samples
}

func (r *rateRing) push(s rateSample) {
	r.buf[r.head] = s
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// at returns the i-th oldest sample (0 = oldest).
func (r *rateRing) at(i int) rateSample {
	start := (r.head - r.n + len(r.buf)) % len(r.buf)
	return r.buf[(start+i)%len(r.buf)]
}

// RateWindows are the lookbacks reported per counter.
var RateWindows = []time.Duration{1 * time.Second, 10 * time.Second, 60 * time.Second}

// RateStat is one counter's live rates over the standard windows,
// in events per second.
type RateStat struct {
	PerSec1s  float64 `json:"per_sec_1s"`
	PerSec10s float64 `json:"per_sec_10s"`
	PerSec60s float64 `json:"per_sec_60s"`
}

// Rates samples a registry's counters into per-counter rings.
type Rates struct {
	reg *Registry

	mu    sync.Mutex
	slots int
	rings map[string]*rateRing
}

// NewRates returns a rate tracker over reg with the default 61-slot
// (60-window) rings.
func NewRates(reg *Registry) *Rates {
	return &Rates{reg: reg, slots: 61, rings: make(map[string]*rateRing)}
}

var defaultRates = NewRates(defaultRegistry)

// DefaultRates is the rate tracker over the default registry, sampled
// by the debug server while it is up.
func DefaultRates() *Rates { return defaultRates }

// Sample records the current value of every counter at time now.
// Call it on a steady cadence (the debug server ticks it at 1 Hz);
// rates interpolate between whatever samples exist, so an irregular
// cadence degrades resolution, not correctness.
func (rs *Rates) Sample(now time.Time) {
	// Snapshot counter pointers under the registry lock, observe
	// values outside it: Value() is one atomic load.
	rs.reg.mu.RLock()
	names := make([]string, 0, len(rs.reg.counts))
	counters := make([]*Counter, 0, len(rs.reg.counts))
	for name, c := range rs.reg.counts {
		names = append(names, name)
		counters = append(counters, c)
	}
	rs.reg.mu.RUnlock()

	rs.mu.Lock()
	defer rs.mu.Unlock()
	for i, name := range names {
		ring, ok := rs.rings[name]
		if !ok {
			ring = &rateRing{buf: make([]rateSample, rs.slots)}
			rs.rings[name] = ring
		}
		ring.push(rateSample{t: now, v: counters[i].Value()})
	}
}

// Rate returns the counter's events/second over the given lookback,
// measured from the newest sample backwards. ok is false when the
// counter has fewer than two samples (no rate yet).
func (rs *Rates) Rate(name string, over time.Duration) (float64, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.rateLocked(name, over)
}

func (rs *Rates) rateLocked(name string, over time.Duration) (float64, bool) {
	ring, ok := rs.rings[name]
	if !ok || ring.n < 2 {
		return 0, false
	}
	newest := ring.at(ring.n - 1)
	cutoff := newest.t.Add(-over)
	// Walk back to the oldest sample still inside the window. The
	// starting point doubles as the fallback: when the window is
	// shorter than the sampling interval, the adjacent sample is used,
	// so a 1s window still reports something at 1 Hz.
	base := ring.at(ring.n - 2)
	for i := ring.n - 2; i >= 0; i-- {
		s := ring.at(i)
		if s.t.Before(cutoff) {
			break
		}
		base = s
	}
	dt := newest.t.Sub(base.t).Seconds()
	if dt <= 0 {
		return 0, false
	}
	return float64(newest.v-base.v) / dt, true
}

// Snapshot returns the rates of every sampled counter over the
// standard windows, sorted by name, omitting counters that have never
// moved (rate 0 over the longest window and value 0).
func (rs *Rates) Snapshot() map[string]RateStat {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	names := make([]string, 0, len(rs.rings))
	for name := range rs.rings {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]RateStat, len(names))
	for _, name := range names {
		ring := rs.rings[name]
		if ring.n == 0 || ring.at(ring.n-1).v == 0 {
			continue
		}
		var st RateStat
		st.PerSec1s, _ = rs.rateLocked(name, RateWindows[0])
		st.PerSec10s, _ = rs.rateLocked(name, RateWindows[1])
		st.PerSec60s, _ = rs.rateLocked(name, RateWindows[2])
		out[name] = st
	}
	return out
}
