package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestServeDebug(t *testing.T) {
	NewCounter("debug_test_counter").Inc()
	progress := func() any { return map[string]any{"status": "running", "done": 3} }
	ds, err := ServeDebug("127.0.0.1:0", progress)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	code, body := get(t, base+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status = %d", code)
	}
	var prog map[string]any
	if err := json.Unmarshal(body, &prog); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if prog["status"] != "running" {
		t.Errorf("/progress status field = %v, want running", prog["status"])
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["tevot"]; !ok {
		t.Error("/debug/vars has no tevot var")
	}

	code, body = get(t, base+"/stages")
	if code != http.StatusOK {
		t.Fatalf("/stages status = %d", code)
	}
	var stages []StageStat
	if err := json.Unmarshal(body, &stages); err != nil {
		t.Fatalf("/stages not JSON: %v", err)
	}

	code, body = get(t, base+"/")
	if code != http.StatusOK || !strings.Contains(string(body), "/progress") {
		t.Errorf("index status = %d body = %q", code, body)
	}

	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}

	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", code)
	}
}

func TestServeDebugNilProgress(t *testing.T) {
	ds, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	code, body := get(t, "http://"+ds.Addr()+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status = %d", code)
	}
	var prog map[string]any
	if err := json.Unmarshal(body, &prog); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if prog["status"] != "no-progress-source" {
		t.Errorf("status = %v, want no-progress-source", prog["status"])
	}
}

func TestServeDebugBadAddr(t *testing.T) {
	if _, err := ServeDebug("256.256.256.256:99999", nil); err == nil {
		t.Fatal("bad address accepted")
	}
}
