package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"os"
	"strings"
	"testing"
)

func resetLogging(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		if err := SetupLogging("info", "text", os.Stderr); err != nil {
			t.Fatal(err)
		}
	})
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(\"loud\"): no error")
	}
}

func TestSetupLoggingRejectsBadFlags(t *testing.T) {
	resetLogging(t)
	if err := SetupLogging("loud", "text", nil); err == nil {
		t.Error("bad level accepted")
	}
	if err := SetupLogging("info", "xml", nil); err == nil {
		t.Error("bad format accepted")
	}
}

func TestLoggingLevelAndComponent(t *testing.T) {
	resetLogging(t)
	var buf bytes.Buffer
	if err := SetupLogging("warn", "text", &buf); err != nil {
		t.Fatal(err)
	}
	log := Logger("testcomp")
	log.Info("hidden")
	log.Warn("visible")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked through warn threshold:\n%s", out)
	}
	if !strings.Contains(out, "visible") || !strings.Contains(out, "component=testcomp") {
		t.Errorf("warn line or component tag missing:\n%s", out)
	}
}

func TestLoggingJSONFormat(t *testing.T) {
	resetLogging(t)
	var buf bytes.Buffer
	if err := SetupLogging("info", "json", &buf); err != nil {
		t.Fatal(err)
	}
	Logger("j").Info("hello", "k", 1)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["component"] != "j" {
		t.Errorf("unexpected record: %v", rec)
	}
}
