package obs

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tevot/internal/obs/trace"
)

// Satellite audit of the Run exit paths: a run that dies mid-stage
// (panic unwinding through `defer run.Close()`) must still write a
// manifest carrying the final metrics snapshot AND the trace store's
// partial spans — the same sync.Once guarantee profiles already have.
func TestManifestCarriesPartialSpansOnPanic(t *testing.T) {
	resetLogging(t)
	prevTracer := trace.Default()
	defer trace.SetDefault(prevTracer)

	dir := t.TempDir()
	manifest := filepath.Join(dir, "run.json")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{"-run-json", manifest, "-log-level", "error", "-trace", "32"}); err != nil {
		t.Fatal(err)
	}
	run, err := f.Start("obstest", 11, nil)
	if err != nil {
		t.Fatal(err)
	}

	var id string
	func() {
		defer run.Close() // the CLI-side defer that must not be skipped
		defer func() { recover() }()

		ctx, root := trace.Root(context.Background(), "sweep.cell")
		id = root.TraceID().String()
		root.Annotate("cell", "INT_ADD/sobel")
		// Mid-stage: the stage span is open, never ended.
		_, _ = Span(ctx, "dta.simulate")
		NewCounter("exit_test.cycles").Add(777)
		panic("simulated mid-stage crash")
	}()

	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("manifest not written on panic exit: %v", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest not JSON: %v\n%s", err, data)
	}
	if m.Metrics.Counters["exit_test.cycles"] != 777 {
		t.Errorf("final metrics snapshot missing: %v", m.Metrics.Counters)
	}
	found := false
	for _, tr := range m.Traces {
		if tr.ID == id {
			found = true
			if tr.State != "active" {
				t.Errorf("interrupted trace state %q, want active", tr.State)
			}
			if tr.Spans != 2 {
				t.Errorf("interrupted trace has %d spans, want 2 (root + open stage)", tr.Spans)
			}
			if tr.Name != "sweep.cell" {
				t.Errorf("trace name %q", tr.Name)
			}
		}
	}
	if !found {
		t.Fatalf("manifest traces do not include the interrupted trace %s: %+v", id, m.Traces)
	}

	// The full span tree (with the un-ended dta.simulate child) is
	// still retrievable from the store the manifest flushed.
	rec, ok := trace.Default().Store().Get(id)
	if !ok {
		t.Fatal("partial trace evicted from store")
	}
	if !rec.Partial {
		t.Error("interrupted trace not marked partial")
	}
	if len(rec.Roots) != 1 || len(rec.Roots[0].Children) != 1 ||
		rec.Roots[0].Children[0].Name != "dta.simulate" {
		t.Errorf("partial span tree wrong: %+v", rec.Roots)
	}
}

func TestParseTraceSetting(t *testing.T) {
	cases := []struct {
		in      string
		on      bool
		size    int
		wantErr bool
	}{
		{"on", true, trace.DefaultRecent, false},
		{"", true, trace.DefaultRecent, false},
		{"off", false, 0, false},
		{"64", true, 64, false},
		{"0", false, 0, true},
		{"-5", false, 0, true},
		{"banana", false, 0, true},
	}
	for _, c := range cases {
		on, size, err := ParseTraceSetting(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseTraceSetting(%q): no error", c.in)
			}
			continue
		}
		if err != nil || on != c.on || size != c.size {
			t.Errorf("ParseTraceSetting(%q) = (%v,%v,%v), want (%v,%v)", c.in, on, size, err, c.on, c.size)
		}
	}
}
