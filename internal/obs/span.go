package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tevot/internal/obs/trace"
)

// Stage spans are aggregate: a Span records the wall time of one
// pipeline stage execution (netlist build → STA → SDF → gate-sim
// shards → feature extraction → forest fit/predict) into a per-name
// accumulator, and Stages() renders the per-run stage-latency table.
// That is the question an operator asks of an hours-long sweep —
// "where is the time going?" — without the storage of an event trace.
//
// Since the trace package landed, Span is additionally trace-aware:
// when the context carries a request-scoped trace span (serve request,
// dist cell), Span opens a child span under it and returns the derived
// context, so per-request traces get dta.simulate/dta.merge children
// for free at the same call sites. With no span in the context —
// every benchmark, every untraced run — the trace side is a nil no-op
// and the cost stays one map lookup plus two atomics.

// spanStat accumulates one stage's executions.
type spanStat struct {
	count   atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

var (
	spanMu sync.Mutex
	spans  = make(map[string]*spanStat)
)

func spanFor(name string) *spanStat {
	spanMu.Lock()
	defer spanMu.Unlock()
	s, ok := spans[name]
	if !ok {
		s = &spanStat{}
		spans[name] = s
	}
	return s
}

// Span starts a pipeline-stage span. The returned func ends it and
// folds the elapsed wall time into the stage's aggregate:
//
//	ctx, end := obs.Span(ctx, "sta.analyze")
//	defer end()
//
// When ctx carries a request-scoped trace span, the returned context
// additionally carries a child trace span of the same name, ended by
// the same end func. Cancellation is the caller's business. End funcs
// are single-use.
func Span(ctx context.Context, name string) (context.Context, func()) {
	s := spanFor(name)
	ctx, tsp := trace.Child(ctx, name)
	start := time.Now()
	return ctx, func() {
		tsp.End()
		d := time.Since(start).Nanoseconds()
		s.count.Add(1)
		s.totalNs.Add(d)
		for {
			old := s.maxNs.Load()
			if d <= old {
				break
			}
			if s.maxNs.CompareAndSwap(old, d) {
				break
			}
		}
	}
}

// Time is Span without a context, for call sites that have none.
func Time(name string) func() {
	_, end := Span(context.Background(), name)
	return end
}

// StageStat is one row of the stage-latency table.
type StageStat struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// Stages snapshots every stage accumulator, sorted by total time
// descending (ties by name) — the order an operator scans.
func Stages() []StageStat {
	spanMu.Lock()
	defer spanMu.Unlock()
	out := make([]StageStat, 0, len(spans))
	for name, s := range spans {
		n := s.count.Load()
		if n == 0 {
			continue
		}
		total := float64(s.totalNs.Load()) / 1e6
		out = append(out, StageStat{
			Name:    name,
			Count:   n,
			TotalMS: total,
			MeanMS:  total / float64(n),
			MaxMS:   float64(s.maxNs.Load()) / 1e6,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMS != out[j].TotalMS {
			return out[i].TotalMS > out[j].TotalMS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// StageTable renders Stages() as an aligned text table ("" when no
// span has completed).
func StageTable() string {
	stages := Stages()
	if len(stages) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %12s %12s %12s\n", "stage", "count", "total", "mean", "max")
	for _, s := range stages {
		fmt.Fprintf(&b, "%-28s %8d %12s %12s %12s\n", s.Name, s.Count,
			fmtMS(s.TotalMS), fmtMS(s.MeanMS), fmtMS(s.MaxMS))
	}
	return b.String()
}

func fmtMS(ms float64) string {
	return time.Duration(ms * float64(time.Millisecond)).Round(10 * time.Microsecond).String()
}

// resetStagesForTest clears the accumulators (tests only).
func resetStagesForTest() {
	spanMu.Lock()
	defer spanMu.Unlock()
	spans = make(map[string]*spanStat)
}
