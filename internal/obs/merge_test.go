package obs

import (
	"math"
	"testing"
)

// Satellite: Histogram.Quantile edge cases — empty histogram, q=0,
// q=1, and all mass in the overflow bucket.
func TestHistogramQuantileEdges(t *testing.T) {
	r := NewRegistry()

	empty := r.Histogram("empty", []float64{1, 10})
	for _, q := range []float64{0, 0.5, 1} {
		if v := empty.Quantile(q); v != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, v)
		}
	}

	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	// q=0 lands at the lower edge of the first occupied bucket.
	if v := h.Quantile(0); v != 0 {
		t.Errorf("Quantile(0) = %v, want 0", v)
	}
	// q=1 is the upper bound of the last occupied bucket.
	if v := h.Quantile(1); v != 100 {
		t.Errorf("Quantile(1) = %v, want 100", v)
	}
	// Out-of-range q clamps rather than extrapolating.
	if h.Quantile(-3) != h.Quantile(0) || h.Quantile(7) != h.Quantile(1) {
		t.Error("out-of-range q does not clamp")
	}

	// All mass in the overflow bucket: every quantile is attributed to
	// the max observation, not to +Inf.
	over := r.Histogram("over", []float64{1, 10})
	for _, v := range []float64{100, 200, 300} {
		over.Observe(v)
	}
	for _, q := range []float64{0.1, 0.5, 0.99, 1} {
		v := over.Quantile(q)
		if math.IsInf(v, 1) || v < 10 || v > 300 {
			t.Errorf("overflow-only Quantile(%v) = %v, want finite in (10, 300]", q, v)
		}
	}
	if v := over.Quantile(1); v != 300 {
		t.Errorf("overflow-only Quantile(1) = %v, want max 300", v)
	}

	// Snapshot Quantile mirrors the live histogram on the same data.
	snap := h.snapshot()
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 1} {
		if live, fromSnap := h.Quantile(q), snap.Quantile(q); math.Abs(live-fromSnap) > 1e-9 {
			t.Errorf("snapshot Quantile(%v) = %v, live = %v", q, fromSnap, live)
		}
	}
}

func histFromObservations(t *testing.T, bounds []float64, obs []float64) HistogramSnapshot {
	t.Helper()
	h, err := newHistogram(bounds)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range obs {
		h.Observe(v)
	}
	return h.snapshot()
}

// Satellite: bucket-wise histogram merge must be associative (and
// commutative) — the coordinator folds worker snapshots in arrival
// order, and the order must not change the cluster view. Observations
// are integer-valued so the float sums are exact.
func TestHistogramMergeAssociativity(t *testing.T) {
	bounds := []float64{1, 10, 100}
	a := histFromObservations(t, bounds, []float64{1, 2, 3})
	b := histFromObservations(t, bounds, []float64{50, 60})
	c := histFromObservations(t, bounds, []float64{500, 0.5, 7})

	merge := func(x, y HistogramSnapshot) HistogramSnapshot {
		m, err := MergeHistogramSnapshots(x, y)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	abc1 := merge(merge(a, b), c)
	abc2 := merge(a, merge(b, c))
	abc3 := merge(merge(c, a), b) // commuted fold order

	for i, m := range []HistogramSnapshot{abc2, abc3} {
		if m.Count != abc1.Count || m.Sum != abc1.Sum || m.Max != abc1.Max ||
			m.Mean != abc1.Mean || m.P50 != abc1.P50 || m.P95 != abc1.P95 {
			t.Fatalf("merge order %d changed scalars: %+v vs %+v", i, m, abc1)
		}
		for j := range m.Buckets {
			if m.Buckets[j] != abc1.Buckets[j] {
				t.Fatalf("merge order %d changed bucket %d: %+v vs %+v", i, j, m.Buckets[j], abc1.Buckets[j])
			}
		}
	}

	// The merged histogram equals one built from the union of
	// observations — bucket-wise merge is exact, not an approximation.
	all := histFromObservations(t, bounds, []float64{1, 2, 3, 50, 60, 500, 0.5, 7})
	if abc1.Count != all.Count || abc1.Sum != all.Sum || abc1.Max != all.Max {
		t.Fatalf("merged %+v != union %+v", abc1, all)
	}
	for j := range all.Buckets {
		if abc1.Buckets[j] != all.Buckets[j] {
			t.Fatalf("merged bucket %d %+v != union %+v", j, abc1.Buckets[j], all.Buckets[j])
		}
	}
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	a := histFromObservations(t, []float64{1, 10}, []float64{5})
	b := histFromObservations(t, []float64{1, 20}, []float64{5})
	if _, err := MergeHistogramSnapshots(a, b); err == nil {
		t.Fatal("merge of mismatched bounds accepted")
	}
	c := histFromObservations(t, []float64{1}, []float64{5})
	if _, err := MergeHistogramSnapshots(a, c); err == nil {
		t.Fatal("merge of different bucket counts accepted")
	}
	// Merging with an empty (zero-value) snapshot is the identity.
	m, err := MergeHistogramSnapshots(HistogramSnapshot{}, a)
	if err != nil || m.Count != a.Count {
		t.Fatalf("identity merge failed: %+v, %v", m, err)
	}
}

func TestMergeSnapshots(t *testing.T) {
	mk := func(cells int64, secs ...float64) RegistrySnapshot {
		r := NewRegistry()
		r.Counter("worker.cells_done").Add(cells)
		r.Gauge("worker.rows_per_sec").Set(100)
		h := r.Histogram("worker.cell_seconds", []float64{1, 10})
		for _, s := range secs {
			h.Observe(s)
		}
		return r.Snapshot()
	}
	dst := RegistrySnapshot{}
	for _, src := range []RegistrySnapshot{mk(4, 0.5, 2), mk(2, 20)} {
		if errs := MergeSnapshots(&dst, src); len(errs) != 0 {
			t.Fatal(errs)
		}
	}
	if dst.Counters["worker.cells_done"] != 6 {
		t.Fatalf("summed counter = %d, want 6", dst.Counters["worker.cells_done"])
	}
	if dst.Gauges["worker.rows_per_sec"] != 200 {
		t.Fatalf("summed gauge = %v, want 200", dst.Gauges["worker.rows_per_sec"])
	}
	h := dst.Histograms["worker.cell_seconds"]
	if h.Count != 3 || h.Sum != 22.5 || h.Max != 20 {
		t.Fatalf("merged histogram %+v", h)
	}

	// A mismatched histogram is reported and skipped; counters still merge.
	bad := RegistrySnapshot{
		Counters:   map[string]int64{"worker.cells_done": 1},
		Histograms: map[string]HistogramSnapshot{"worker.cell_seconds": histFromObservations(t, []float64{5}, []float64{1})},
	}
	errs := MergeSnapshots(&dst, bad)
	if len(errs) != 1 {
		t.Fatalf("expected 1 merge error, got %v", errs)
	}
	if dst.Counters["worker.cells_done"] != 7 {
		t.Fatal("counter merge aborted by histogram mismatch")
	}
}
