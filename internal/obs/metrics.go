package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// The metrics model is deliberately small: named counters, gauges, and
// fixed-bucket histograms in a process-wide registry, exported through
// expvar (so `/debug/vars` and `go tool pprof`-style tooling see them
// for free) and snapshot-able as plain JSON for the run manifest.
//
// Hot-path contract: Inc, Add, Set, and Observe are single atomic
// operations (Observe adds one CAS loop for the running sum) and never
// allocate. TestMetricsHotPathAllocs pins this with
// testing.AllocsPerRun; the DTA cycle loop increments a counter per
// simulated cycle and must stay inside the benchdiff 10 % gate.

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1. It never allocates.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. It never allocates.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float64 metric (e.g. rows/s of the last batch).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. It never allocates.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: bucket i counts observations
// v <= Bounds[i] (and greater than Bounds[i-1]); one overflow bucket
// counts v > Bounds[len-1]. Observe is lock-free and allocation-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last = overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 running sum, CAS-updated
	maxBits atomic.Uint64 // float64 running max, CAS-updated
}

func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) {
			return nil, fmt.Errorf("obs: histogram bound %d is NaN", i)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds not strictly increasing at %d (%v after %v)", i, b, bounds[i-1])
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}, nil
}

// Observe records v. NaN observations are dropped (they would poison
// the running sum). It never allocates.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// Linear scan: bucket counts are small (tens), and the scan touches
	// one contiguous slice — cheaper and branch-friendlier than a
	// binary search at these sizes.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Max returns the largest observation (0 before any Observe).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Mean returns the average observation (0 before any Observe).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the bucket that holds it. Observations in the
// overflow bucket are attributed to the max observed value.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	cum := 0.0
	for i := range h.buckets {
		bn := float64(h.buckets[i].Load())
		if cum+bn >= rank && bn > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.Max()
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / bn
			return lo + frac*(hi-lo)
		}
		cum += bn
	}
	return h.Max()
}

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Bounds returns the histogram's upper bucket bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// DurationBuckets are the default bounds (seconds) for per-cell and
// per-stage latencies: 1 ms .. 10 min, roughly ×2.5 apart. Cells in a
// paper-scale sweep run seconds-to-minutes each.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 25, 50, 100, 250, 600,
}

// Registry is a named collection of metrics. The zero value is not
// usable; use NewRegistry or the package-level Default* functions.
type Registry struct {
	mu     sync.RWMutex
	order  []string // registration order, for stable snapshots
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry, published to expvar as
// "tevot" (see debug.go for the HTTP side).
var defaultRegistry = NewRegistry()

var publishOnce sync.Once

// publishExpvar exposes the default registry (metrics + stage spans)
// under the expvar name "tevot", once per process.
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("tevot", expvar.Func(func() any {
			return map[string]any{
				"metrics": defaultRegistry.Snapshot(),
				"stages":  Stages(),
			}
		}))
	})
}

func (r *Registry) register(name string) {
	if _, c := r.counts[name]; c {
		panic(fmt.Sprintf("obs: metric %q already registered as a counter", name))
	}
	if _, g := r.gauges[name]; g {
		panic(fmt.Sprintf("obs: metric %q already registered as a gauge", name))
	}
	if _, h := r.hists[name]; h {
		panic(fmt.Sprintf("obs: metric %q already registered as a histogram", name))
	}
	r.order = append(r.order, name)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counts[name]; ok {
		return c
	}
	r.register(name)
	c := &Counter{}
	r.counts[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls ignore bounds). Invalid
// bounds panic: metric declarations are package-level and a bad one is
// a programming error, not a runtime condition.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.register(name)
	h, err := newHistogram(bounds)
	if err != nil {
		panic(err.Error())
	}
	r.hists[name] = h
	return h
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Count   int64           `json:"count"`
	Sum     float64         `json:"sum"`
	Mean    float64         `json:"mean"`
	Max     float64         `json:"max"`
	P50     float64         `json:"p50"`
	P95     float64         `json:"p95"`
	P99     float64         `json:"p99"`
	Buckets []BucketSnaphot `json:"buckets"`
}

// BucketSnaphot is one histogram bucket: the count of observations at
// or below Le (cumulative, Prometheus-style). The overflow bucket has
// Le = +Inf, rendered as the JSON string "+Inf".
type BucketSnaphot struct {
	Le JSONFloat `json:"le"`
	N  int64     `json:"n"`
}

// JSONFloat marshals like a float64 but renders non-finite values as
// strings, keeping snapshots valid JSON.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 1) {
		return []byte(`"+Inf"`), nil
	}
	if math.IsInf(v, -1) {
		return []byte(`"-Inf"`), nil
	}
	if math.IsNaN(v) {
		return []byte(`"NaN"`), nil
	}
	return []byte(fmt.Sprintf("%g", v)), nil
}

// UnmarshalJSON implements json.Unmarshaler, accepting plain numbers
// and the string spellings MarshalJSON emits. Snapshots cross the wire
// in dist renew/result requests, so the round trip must close — the
// +Inf overflow-bucket bound in particular.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		switch s[1 : len(s)-1] {
		case "+Inf", "Inf":
			*f = JSONFloat(math.Inf(1))
			return nil
		case "-Inf":
			*f = JSONFloat(math.Inf(-1))
			return nil
		case "NaN":
			*f = JSONFloat(math.NaN())
			return nil
		}
		return fmt.Errorf("obs: invalid JSONFloat string %s", s)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, BucketSnaphot{Le: JSONFloat(le), N: cum})
	}
	return s
}

// RegistrySnapshot is the JSON-able state of a registry at one instant.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value. The result is
// JSON-marshalable and feeds both /debug/vars and the run manifest.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := RegistrySnapshot{}
	for name, c := range r.counts {
		if s.Counters == nil {
			s.Counters = make(map[string]int64, len(r.counts))
		}
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]float64, len(r.gauges))
		}
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		}
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

// NewCounter returns the named counter from the default registry.
func NewCounter(name string) *Counter {
	publishExpvar()
	return defaultRegistry.Counter(name)
}

// NewGauge returns the named gauge from the default registry.
func NewGauge(name string) *Gauge {
	publishExpvar()
	return defaultRegistry.Gauge(name)
}

// NewHistogram returns the named histogram from the default registry.
func NewHistogram(name string, bounds []float64) *Histogram {
	publishExpvar()
	return defaultRegistry.Histogram(name, bounds)
}

// DefaultSnapshot captures the default registry.
func DefaultSnapshot() RegistrySnapshot { return defaultRegistry.Snapshot() }
