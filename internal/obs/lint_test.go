package obs

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func lintScript(t *testing.T) string {
	t.Helper()
	p, err := filepath.Abs(filepath.Join("..", "..", "scripts", "lintobs.sh"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("lint script missing: %v", err)
	}
	return p
}

// TestLintCleanTree runs the lint against the repository's real
// internal/ and cmd/ trees: library packages must be free of raw
// print/log calls, and CLIs free of unescaped log.* calls (their
// fmt.Print* stdout tables are exempt by the cmd-specific pattern).
func TestLintCleanTree(t *testing.T) {
	out, err := exec.Command("sh", lintScript(t)).CombinedOutput()
	if err != nil {
		t.Fatalf("lint fails on the shipped tree: %v\n%s", err, out)
	}
	// The no-arg run must actually be covering cmd/ — a regression to
	// internal-only coverage would pass silently otherwise.
	if !strings.Contains(string(out), "cmd") {
		t.Fatalf("default lint scope does not include cmd/:\n%s", out)
	}
}

// TestLintCatchesViolations proves the lint actually bites: a library
// file with fmt.Println and log.Fatalf must fail, test files and the
// explicit escape comment must not.
func TestLintCatchesViolations(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "core")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	bad := `package core

import (
	"fmt"
	"log"
)

func f() {
	fmt.Println("raw")
	log.Fatalf("raw %d", 1)
}
`
	if err := os.WriteFile(filepath.Join(sub, "bad.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command("sh", lintScript(t), dir).CombinedOutput()
	if err == nil {
		t.Fatalf("lint passed a violating file:\n%s", out)
	}
	if !strings.Contains(string(out), "bad.go") {
		t.Errorf("lint output does not name the offending file:\n%s", out)
	}

	// Test files are exempt.
	if err := os.Rename(filepath.Join(sub, "bad.go"), filepath.Join(sub, "bad_test.go")); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command("sh", lintScript(t), dir).CombinedOutput(); err != nil {
		t.Fatalf("lint rejected a _test.go file: %v\n%s", err, out)
	}

	// The escape comment allows a deliberate exception.
	allowed := `package core

import "fmt"

func f() {
	fmt.Println("intentional") // lint:allow-raw-print
}
`
	if err := os.WriteFile(filepath.Join(sub, "allowed.go"), []byte(allowed), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command("sh", lintScript(t), dir).CombinedOutput(); err != nil {
		t.Fatalf("lint rejected an escaped line: %v\n%s", err, out)
	}
}
