package power

import (
	"math"
	"testing"

	"tevot/internal/cells"
)

func TestDynamicScalesQuadraticallyWithV(t *testing.T) {
	m := Default()
	e10 := m.DynamicFJ(1000, cells.Corner{V: 1.0, T: 25})
	e08 := m.DynamicFJ(1000, cells.Corner{V: 0.8, T: 25})
	if math.Abs(e08/e10-0.64) > 1e-9 {
		t.Errorf("0.8V/1.0V dynamic ratio = %v, want 0.64", e08/e10)
	}
	if e0 := m.DynamicFJ(0, cells.Corner{V: 1, T: 25}); e0 != 0 {
		t.Errorf("zero events should cost zero dynamic energy, got %v", e0)
	}
}

func TestLeakageGrowsWithTemperature(t *testing.T) {
	m := Default()
	cold := m.LeakageFJ(1000, cells.Corner{V: 1, T: 25})
	hot := m.LeakageFJ(1000, cells.Corner{V: 1, T: 45})
	if math.Abs(hot/cold-2) > 0.01 {
		t.Errorf("leakage should double per 20°C: ratio %v", hot/cold)
	}
}

func TestLeakageUnits(t *testing.T) {
	m := Model{SwitchFJ: 1, LeakNW: 1000, LeakTemp: 0, Vnom: 1, Tnom: 25}
	// 1000 nW = 1 µW over 1 ns (1000 ps) = 1 fJ.
	got := m.LeakageFJ(1000, cells.Corner{V: 1, T: 25})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("1µW over 1ns = %v fJ, want 1", got)
	}
}

func TestCycleFJComposition(t *testing.T) {
	m := Default()
	c := cells.Corner{V: 0.9, T: 50}
	total := m.CycleFJ(500, 800, c)
	if want := m.DynamicFJ(500, c) + m.LeakageFJ(800, c); total != want {
		t.Errorf("CycleFJ = %v, want %v", total, want)
	}
}

func TestPerOpFJ(t *testing.T) {
	m := Default()
	c := cells.Corner{V: 1, T: 25}
	perOp, err := m.PerOpFJ(10000, 100, 500, c)
	if err != nil {
		t.Fatal(err)
	}
	if want := m.DynamicFJ(100, c) + m.LeakageFJ(500, c); math.Abs(perOp-want) > 1e-12 {
		t.Errorf("PerOpFJ = %v, want %v", perOp, want)
	}
	if _, err := m.PerOpFJ(1, 0, 500, c); err == nil {
		t.Error("accepted zero cycles")
	}
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Error(err)
	}
	if err := (Model{SwitchFJ: -1, Vnom: 1}).Validate(); err == nil {
		t.Error("accepted negative switch energy")
	}
}

// TestVoltageScalingSavesEnergy: the whole point of the tradeoff — at a
// fixed clock, dropping the supply reduces per-op energy.
func TestVoltageScalingSavesEnergy(t *testing.T) {
	m := Default()
	hi, err := m.PerOpFJ(100000, 1000, 700, cells.Corner{V: 1.0, T: 25})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := m.PerOpFJ(100000, 1000, 700, cells.Corner{V: 0.81, T: 25})
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Errorf("0.81V per-op energy (%v) should be below 1.0V (%v)", lo, hi)
	}
}
