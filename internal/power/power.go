// Package power estimates the energy of gate-level activity so the
// quality-energy tradeoff the paper's introduction motivates (voltage
// scaling with tolerated timing errors) can be explored quantitatively.
// Dynamic energy follows the standard CV² model with the simulator's
// event counts as the switching activity; leakage follows an
// exponential-in-temperature, linear-in-V model integrated over the
// cycle window.
package power

import (
	"fmt"
	"math"

	"tevot/internal/cells"
)

// Model holds the technology coefficients.
type Model struct {
	// SwitchFJ is the average switched energy per net toggle at the
	// nominal supply, femtojoules.
	SwitchFJ float64
	// LeakNW is the leakage power at the nominal corner, nanowatts.
	LeakNW float64
	// LeakTemp is the exponential leakage temperature coefficient per
	// degree Celsius.
	LeakTemp float64
	// Vnom is the supply the coefficients were characterized at.
	Vnom float64
	// Tnom is the temperature the leakage was characterized at.
	Tnom float64
}

// Default returns coefficients loosely calibrated to a 45 nm arithmetic
// block: ~1.2 fJ per average net toggle at 1.0 V, 50 nW leakage at 25 °C
// doubling roughly every 20 °C.
func Default() Model {
	return Model{SwitchFJ: 1.2, LeakNW: 50, LeakTemp: math.Ln2 / 20, Vnom: 1.0, Tnom: 25}
}

// Validate rejects non-physical coefficients.
func (m Model) Validate() error {
	if m.SwitchFJ <= 0 || m.LeakNW < 0 || m.Vnom <= 0 {
		return fmt.Errorf("power: invalid model %+v", m)
	}
	return nil
}

// DynamicFJ returns the switching energy of a cycle with the given
// event (toggle) count at a corner, femtojoules: E = n·Esw·(V/Vnom)².
func (m Model) DynamicFJ(events int, corner cells.Corner) float64 {
	r := corner.V / m.Vnom
	return float64(events) * m.SwitchFJ * r * r
}

// LeakageFJ returns the leakage energy over a window (ps) at a corner,
// femtojoules. Leakage scales linearly with V and exponentially with
// temperature.
func (m Model) LeakageFJ(windowPS float64, corner cells.Corner) float64 {
	pNW := m.LeakNW * (corner.V / m.Vnom) * math.Exp(m.LeakTemp*(corner.T-m.Tnom))
	// nW × ps = 1e-9 W × 1e-12 s = 1e-21 J = 1e-6 fJ.
	return pNW * windowPS * 1e-6
}

// CycleFJ returns the total energy of one cycle: switching plus leakage
// over the clock period.
func (m Model) CycleFJ(events int, clockPS float64, corner cells.Corner) float64 {
	return m.DynamicFJ(events, corner) + m.LeakageFJ(clockPS, corner)
}

// PerOpFJ averages the total energy per operation over a
// characterization: total events across cycles, each cycle charged one
// clock period of leakage.
func (m Model) PerOpFJ(totalEvents, cycles int, clockPS float64, corner cells.Corner) (float64, error) {
	if cycles <= 0 {
		return 0, fmt.Errorf("power: non-positive cycle count %d", cycles)
	}
	dyn := m.DynamicFJ(totalEvents, corner) / float64(cycles)
	return dyn + m.LeakageFJ(clockPS, corner), nil
}
