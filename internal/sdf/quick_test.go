package sdf

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"tevot/internal/cells"
	"tevot/internal/circuits"
)

// TestQuickRoundTripArbitraryDelays: any positive delay assignment
// survives write+parse within the 3-decimal text precision.
func TestQuickRoundTripArbitraryDelays(t *testing.T) {
	nl := circuits.NewRippleAdder(4)
	corner := cells.Corner{V: 0.9, T: 25}
	f := func(seeds []uint32) bool {
		delays := make([]float64, nl.NumGates())
		for i := range delays {
			v := 1.0
			if len(seeds) > 0 {
				v = 0.001 + float64(seeds[i%len(seeds)]%1000000)/100.0
			}
			delays[i] = v
		}
		doc, err := FromAnnotation(nl, corner, delays)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := doc.Write(&buf, nl); err != nil {
			return false
		}
		parsed, err := Parse(&buf)
		if err != nil {
			return false
		}
		back, err := parsed.Apply(nl)
		if err != nil {
			return false
		}
		for i := range delays {
			if math.Abs(back[i]-delays[i]) > 0.0006 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
