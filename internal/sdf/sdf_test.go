package sdf

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/sta"
)

func TestRoundTrip(t *testing.T) {
	nl := circuits.NewRippleAdder(8)
	corner := cells.Corner{V: 0.87, T: 75}
	delays, err := sta.GateDelays(nl, corner, sta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := FromAnnotation(nl, corner, delays)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Design != nl.Name {
		t.Errorf("design = %q, want %q", parsed.Design, nl.Name)
	}
	if parsed.Voltage != 0.87 || parsed.Temperature != 75 {
		t.Errorf("corner = (%v, %v), want (0.87, 75)", parsed.Voltage, parsed.Temperature)
	}
	back, err := parsed.Apply(nl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range delays {
		if math.Abs(back[i]-delays[i]) > 0.001 { // written with 3 decimals
			t.Fatalf("gate %d: %v != %v after round trip", i, back[i], delays[i])
		}
	}
}

func TestApplyMissingInstance(t *testing.T) {
	nl := circuits.NewRippleAdder(4)
	f := &File{Design: nl.Name, Delays: map[string]float64{"nonexistent": 1}}
	if _, err := f.Apply(nl); err == nil {
		t.Fatal("Apply succeeded with missing instances")
	}
}

func TestFromAnnotationLengthMismatch(t *testing.T) {
	nl := circuits.NewRippleAdder(4)
	if _, err := FromAnnotation(nl, cells.Corner{V: 1, T: 25}, []float64{1}); err == nil {
		t.Fatal("FromAnnotation accepted short delays")
	}
}

func TestParseMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"no delayfile":     "(FOO)",
		"unbalanced":       "(DELAYFILE (DESIGN \"x\")",
		"cell no instance": `(DELAYFILE (CELL (CELLTYPE "AND2") (DELAY (ABSOLUTE (IOPATH A Y (1:1:1))))))`,
		"cell no delay":    `(DELAYFILE (CELL (CELLTYPE "AND2") (INSTANCE u1)))`,
		"bad triple":       `(DELAYFILE (CELL (INSTANCE u1) (DELAY (ABSOLUTE (IOPATH A Y (1:x:1))))))`,
		"bad voltage":      `(DELAYFILE (VOLTAGE abc))`,
	}
	for name, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Parse accepted malformed input", name)
		}
	}
}

func TestParseIgnoresUnknownSections(t *testing.T) {
	text := `(DELAYFILE
	  (SDFVERSION "3.0")
	  (DESIGN "d")
	  (VENDOR "acme")
	  (PROCESS "typical")
	  (CELL (CELLTYPE "INV") (INSTANCE u0)
	    (DELAY (ABSOLUTE (IOPATH A Y (10.5:11.5:12.5))))))`
	f, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if f.Delays["u0"] != 11.5 {
		t.Errorf("u0 delay = %v, want typ 11.5", f.Delays["u0"])
	}
}

func TestWriteDeterministic(t *testing.T) {
	nl := circuits.NewRippleAdder(4)
	delays, err := sta.GateDelays(nl, cells.Corner{V: 0.9, T: 0}, sta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := FromAnnotation(nl, cells.Corner{V: 0.9, T: 0}, delays)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := f.Write(&b1, nl); err != nil {
		t.Fatal(err)
	}
	if err := f.Write(&b2, nl); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("Write output is not deterministic")
	}
}
