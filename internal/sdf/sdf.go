// Package sdf reads and writes the subset of the Standard Delay Format
// (SDF 3.0) that the flow needs: one CELL entry per gate instance with an
// ABSOLUTE IOPATH delay. In the paper's flow, PrimeTime emits one SDF
// file per (V, T) corner and the gate-level simulator back-annotates it;
// here the sta package plays PrimeTime and internal/sim plays the
// simulator, with this package as the interchange format between them —
// so that the artifact chain (netlist → per-corner SDF → annotated
// simulation) matches the paper's, and so pre-computed corners can be
// cached on disk.
package sdf

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"tevot/internal/cells"
	"tevot/internal/netlist"
	"tevot/internal/obs"
)

// File is an in-memory SDF document.
type File struct {
	Design      string
	Voltage     float64
	Temperature float64
	Timescale   string // always "1ps" when written by this package
	// Delays maps gate instance name to IOPATH delay in picoseconds.
	Delays map[string]float64
}

// FromAnnotation builds an SDF document from a netlist and its per-gate
// delay annotation at a corner.
func FromAnnotation(nl *netlist.Netlist, corner cells.Corner, delays []float64) (*File, error) {
	defer obs.Time("sdf.build")()
	if len(delays) != len(nl.Gates) {
		return nil, fmt.Errorf("sdf: %d delays for %d gates", len(delays), len(nl.Gates))
	}
	f := &File{
		Design:      nl.Name,
		Voltage:     corner.V,
		Temperature: corner.T,
		Timescale:   "1ps",
		Delays:      make(map[string]float64, len(nl.Gates)),
	}
	for gi := range nl.Gates {
		name := nl.Gates[gi].Name
		if _, dup := f.Delays[name]; dup {
			return nil, fmt.Errorf("sdf: duplicate instance name %q", name)
		}
		f.Delays[name] = delays[gi]
	}
	return f, nil
}

// Apply maps the file's per-instance delays back onto a netlist,
// returning a per-gate delay slice in gate order. Every gate must have an
// entry.
func (f *File) Apply(nl *netlist.Netlist) ([]float64, error) {
	delays := make([]float64, len(nl.Gates))
	for gi := range nl.Gates {
		d, ok := f.Delays[nl.Gates[gi].Name]
		if !ok {
			return nil, fmt.Errorf("sdf: no delay for instance %q in design %q",
				nl.Gates[gi].Name, f.Design)
		}
		delays[gi] = d
	}
	return delays, nil
}

// Write emits the document as SDF 3.0 text.
func (f *File) Write(w io.Writer, nl *netlist.Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "(DELAYFILE\n")
	fmt.Fprintf(bw, "  (SDFVERSION \"3.0\")\n")
	fmt.Fprintf(bw, "  (DESIGN \"%s\")\n", f.Design)
	fmt.Fprintf(bw, "  (VOLTAGE %.3f)\n", f.Voltage)
	fmt.Fprintf(bw, "  (TEMPERATURE %.1f)\n", f.Temperature)
	fmt.Fprintf(bw, "  (TIMESCALE 1ps)\n")
	// Emit in netlist gate order for deterministic output.
	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		d, ok := f.Delays[g.Name]
		if !ok {
			return fmt.Errorf("sdf: no delay for instance %q while writing", g.Name)
		}
		fmt.Fprintf(bw, "  (CELL (CELLTYPE \"%s\") (INSTANCE %s)\n", g.Kind, g.Name)
		fmt.Fprintf(bw, "    (DELAY (ABSOLUTE (IOPATH A Y (%.3f:%.3f:%.3f)))))\n", d, d, d)
	}
	fmt.Fprintf(bw, ")\n")
	return bw.Flush()
}

// Parse reads SDF 3.0 text produced by Write (or a compatible subset:
// DELAYFILE header fields plus CELL/INSTANCE/IOPATH triplets; min:typ:max
// triples collapse to typ).
func Parse(r io.Reader) (*File, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	f := &File{Delays: make(map[string]float64)}
	p := &parser{toks: toks}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if kw := p.next(); kw != "DELAYFILE" {
		return nil, fmt.Errorf("sdf: expected DELAYFILE, got %q", kw)
	}
	for {
		t := p.next()
		switch t {
		case "":
			return nil, fmt.Errorf("sdf: unexpected end of input")
		case ")":
			return f, nil
		case "(":
			if err := p.section(f); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sdf: unexpected token %q", t)
		}
	}
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) next() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) expect(want string) error {
	if got := p.next(); got != want {
		return fmt.Errorf("sdf: expected %q, got %q", want, got)
	}
	return nil
}

// skipBalanced consumes tokens until the current open paren is closed.
func (p *parser) skipBalanced() error {
	depth := 1
	for depth > 0 {
		switch p.next() {
		case "(":
			depth++
		case ")":
			depth--
		case "":
			return fmt.Errorf("sdf: unbalanced parentheses")
		}
	}
	return nil
}

// section parses one top-level form after its opening paren.
func (p *parser) section(f *File) error {
	kw := p.next()
	switch kw {
	case "SDFVERSION", "TIMESCALE", "DIVIDER", "PROCESS":
		return p.skipBalanced()
	case "DESIGN":
		f.Design = strings.Trim(p.next(), `"`)
		return p.expect(")")
	case "VOLTAGE":
		v, err := parseFinite(p.next())
		if err != nil {
			return fmt.Errorf("sdf: bad VOLTAGE: %w", err)
		}
		f.Voltage = v
		return p.expect(")")
	case "TEMPERATURE":
		v, err := parseFinite(p.next())
		if err != nil {
			return fmt.Errorf("sdf: bad TEMPERATURE: %w", err)
		}
		f.Temperature = v
		return p.expect(")")
	case "CELL":
		return p.cell(f)
	default:
		return p.skipBalanced()
	}
}

// cell parses one (CELL ...) form after the CELL keyword.
func (p *parser) cell(f *File) error {
	instance := ""
	var delay float64
	haveDelay := false
	for {
		switch t := p.next(); t {
		case ")":
			if instance == "" {
				return fmt.Errorf("sdf: CELL without INSTANCE")
			}
			if !haveDelay {
				return fmt.Errorf("sdf: CELL %q without IOPATH delay", instance)
			}
			f.Delays[instance] = delay
			return nil
		case "(":
			kw := p.next()
			switch kw {
			case "CELLTYPE":
				if err := p.skipBalanced(); err != nil {
					return err
				}
			case "INSTANCE":
				instance = p.next()
				if err := p.expect(")"); err != nil {
					return err
				}
			case "DELAY":
				d, ok, err := p.delaySection()
				if err != nil {
					return err
				}
				if ok {
					delay, haveDelay = d, true
				}
			default:
				if err := p.skipBalanced(); err != nil {
					return err
				}
			}
		case "":
			return fmt.Errorf("sdf: unexpected end of input in CELL")
		default:
			return fmt.Errorf("sdf: unexpected token %q in CELL", t)
		}
	}
}

// delaySection parses (ABSOLUTE (IOPATH A Y (min:typ:max)...)) after the
// DELAY keyword and returns the typ value of the first IOPATH triple.
func (p *parser) delaySection() (float64, bool, error) {
	var delay float64
	have := false
	depth := 1
	for depth > 0 {
		t := p.next()
		switch t {
		case "(":
			depth++
		case ")":
			depth--
		case "":
			return 0, false, fmt.Errorf("sdf: unexpected end of input in DELAY")
		default:
			if !have && strings.Contains(t, ":") {
				parts := strings.Split(t, ":")
				if len(parts) != 3 {
					return 0, false, fmt.Errorf("sdf: malformed delay triple %q", t)
				}
				v, err := parseFinite(parts[1])
				if err != nil {
					return 0, false, fmt.Errorf("sdf: malformed delay triple %q: %w", t, err)
				}
				delay, have = v, true
			}
		}
	}
	return delay, have, nil
}

// tokenize splits SDF text into parens and atoms. Quoted strings stay a
// single token (with quotes).
// parseFinite parses a float but rejects NaN and ±Inf: a non-finite
// voltage, temperature, or delay would silently poison every downstream
// computation (found by fuzzing).
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}

func tokenize(r io.Reader) ([]string, error) {
	br := bufio.NewReader(r)
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	inString := false
	for {
		c, _, err := br.ReadRune()
		if err == io.EOF {
			flush()
			return toks, nil
		}
		if err != nil {
			return nil, err
		}
		switch {
		case inString:
			cur.WriteRune(c)
			if c == '"' {
				inString = false
				flush()
			}
		case c == '"':
			flush()
			cur.WriteRune(c)
			inString = true
		case c == '(' || c == ')':
			flush()
			toks = append(toks, string(c))
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			flush()
		default:
			cur.WriteRune(c)
		}
	}
}
