package sdf

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/netlist"
	"tevot/internal/sta"
)

// validSDF renders a real annotated netlist to SDF text, giving the
// fuzzers a structurally rich seed.
func validSDF(t testing.TB) []byte {
	nl, err := netlist.Random(netlist.RandomOptions{Inputs: 4, Gates: 12, Outputs: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	corner := cells.Corner{V: 0.9, T: 25}
	delays, err := sta.GateDelays(nl, corner, sta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := FromAnnotation(nl, corner, delays)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzParse: Parse must return (File, nil) or (nil, error) on arbitrary
// bytes — never panic. Accepted inputs must parse deterministically.
func FuzzParse(f *testing.F) {
	f.Add(validSDF(f))
	f.Add([]byte("(DELAYFILE)"))
	f.Add([]byte("(DELAYFILE (DESIGN \"x\") (VOLTAGE 0.9) (TEMPERATURE 25))"))
	f.Add([]byte("(DELAYFILE (CELL (INSTANCE g0) (DELAY (ABSOLUTE (IOPATH a y (1:2:3))))))"))
	f.Add([]byte("(DELAYFILE (CELL (INSTANCE g0) (DELAY (ABSOLUTE (IOPATH a y (1:2))))))"))
	f.Add([]byte("((((("))
	f.Add([]byte(")"))
	f.Add([]byte("(DELAYFILE (VOLTAGE nan))"))
	f.Add([]byte("(DELAYFILE (CELL))"))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, errA := Parse(bytes.NewReader(data))
		b, errB := Parse(bytes.NewReader(data))
		if (errA == nil) != (errB == nil) {
			t.Fatalf("nondeterministic parse outcome: %v vs %v", errA, errB)
		}
		if errA != nil {
			return
		}
		if a == nil || a.Delays == nil {
			t.Fatal("successful parse returned nil document")
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("nondeterministic parse result")
		}
	})
}

// TestParseSurvivesMutations mirrors internal/sim/fuzz_test.go's style:
// a deterministic, CI-sized randomized sweep (no fuzz engine needed)
// that mutates valid documents and asserts Parse never panics.
func TestParseSurvivesMutations(t *testing.T) {
	valid := validSDF(t)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 400; trial++ {
		mut := append([]byte(nil), valid...)
		switch trial % 4 {
		case 0: // truncate
			mut = mut[:rng.Intn(len(mut)+1)]
		case 1: // flip bytes
			for i := 0; i < 1+rng.Intn(6); i++ {
				mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
			}
		case 2: // delete a span
			lo := rng.Intn(len(mut))
			hi := lo + rng.Intn(len(mut)-lo)
			mut = append(mut[:lo], mut[hi:]...)
		case 3: // duplicate a span
			lo := rng.Intn(len(mut))
			hi := lo + rng.Intn(len(mut)-lo)
			mut = append(mut[:hi], append(append([]byte(nil), mut[lo:hi]...), mut[hi:]...)...)
		}
		if _, err := Parse(bytes.NewReader(mut)); err != nil {
			continue // rejected cleanly: fine
		}
	}
}

// TestParseRoundTripAfterFuzzSeeds: the valid seed still round-trips,
// proving the fuzz hardening did not over-tighten the grammar.
func TestParseRoundTripAfterFuzzSeeds(t *testing.T) {
	f, err := Parse(bytes.NewReader(validSDF(t)))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Delays) != 12 {
		t.Fatalf("round trip lost cells: %d delays", len(f.Delays))
	}
	for name, d := range f.Delays {
		if d < 0 || strings.TrimSpace(name) == "" {
			t.Fatalf("round trip produced bad entry %q=%v", name, d)
		}
	}
}
