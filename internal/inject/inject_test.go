package inject

import (
	"math"
	"testing"

	"tevot/internal/circuits"
	"tevot/internal/imaging"
)

func TestRecordingCapturesStreams(t *testing.T) {
	rec := NewRecording(0)
	img := imaging.Synthetic(1, 16, 16)
	imaging.Sobel(img, rec)
	for _, fu := range []circuits.FU{circuits.IntAdd32, circuits.IntMul32} {
		if rec.Count(fu) == 0 {
			t.Errorf("Sobel recorded no %v operations", fu)
		}
		if _, err := rec.Stream(fu); err != nil {
			t.Errorf("Stream(%v): %v", fu, err)
		}
	}
	if rec.Count(circuits.FPAdd32) != 0 {
		t.Error("Sobel should not touch the FP adder")
	}
	imaging.Gaussian(img, rec)
	for _, fu := range []circuits.FU{circuits.FPAdd32, circuits.FPMul32} {
		if rec.Count(fu) == 0 {
			t.Errorf("Gaussian recorded no %v operations", fu)
		}
	}
}

func TestRecordingIsExact(t *testing.T) {
	rec := NewRecording(0)
	img := imaging.Synthetic(2, 16, 16)
	viaRec := imaging.Sobel(img, rec)
	viaExact := imaging.Sobel(img, imaging.Exact{})
	for i := range viaRec.Pix {
		if viaRec.Pix[i] != viaExact.Pix[i] {
			t.Fatal("recording unit changed results")
		}
	}
}

func TestInjectingZeroRateIsExact(t *testing.T) {
	in, err := NewInjecting(TERs{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	img := imaging.Synthetic(3, 16, 16)
	a := imaging.Sobel(img, in)
	b := imaging.Sobel(img, imaging.Exact{})
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("zero-rate injector corrupted output")
		}
	}
	if in.Errors[circuits.IntAdd32] != 0 {
		t.Error("zero-rate injector counted errors")
	}
}

func TestInjectingRateObserved(t *testing.T) {
	in, err := NewInjecting(TERs{circuits.IntAdd32: 0.25}, 7)
	if err != nil {
		t.Fatal(err)
	}
	n := 20000
	for i := 0; i < n; i++ {
		in.IntAdd(uint32(i), 1)
	}
	rate := float64(in.Errors[circuits.IntAdd32]) / float64(in.Ops[circuits.IntAdd32])
	if math.Abs(rate-0.25) > 0.02 {
		t.Errorf("observed error rate %v, want ~0.25", rate)
	}
}

func TestInjectingFullRateAlwaysErrors(t *testing.T) {
	in, err := NewInjecting(TERs{circuits.IntMul32: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := uint32(0); i < 100; i++ {
		if in.IntMul(i, 3) != i*3 {
			hits++
		}
	}
	// A random value can coincide with the exact one, but not often.
	if hits < 95 {
		t.Errorf("full-rate injector produced %d/100 corruptions", hits)
	}
	if in.Errors[circuits.IntMul32] != 100 {
		t.Errorf("error count = %d, want 100", in.Errors[circuits.IntMul32])
	}
}

func TestTERsValidate(t *testing.T) {
	if err := (TERs{circuits.IntAdd32: 1.5}).Validate(); err == nil {
		t.Error("accepted TER > 1")
	}
	if err := (TERs{circuits.IntAdd32: -0.1}).Validate(); err == nil {
		t.Error("accepted TER < 0")
	}
	if _, err := NewInjecting(TERs{circuits.IntAdd32: 2}, 0); err == nil {
		t.Error("NewInjecting accepted invalid rates")
	}
}

func TestQualityRunDegradesWithRate(t *testing.T) {
	img := imaging.Synthetic(4, 24, 24)
	clean, _, err := SobelApp.QualityRun(img, TERs{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(clean, 1) {
		t.Errorf("error-free run PSNR = %v, want +Inf", clean)
	}
	light, _, err := SobelApp.QualityRun(img, TERs{circuits.IntAdd32: 0.001}, 1)
	if err != nil {
		t.Fatal(err)
	}
	heavy, _, err := SobelApp.QualityRun(img, TERs{circuits.IntAdd32: 0.2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if heavy >= light {
		t.Errorf("PSNR should fall with rate: light %v, heavy %v", light, heavy)
	}
}

func TestAppMetadata(t *testing.T) {
	if SobelApp.String() != "Sobel" || GaussApp.String() != "Gauss" {
		t.Error("app names wrong")
	}
	if len(SobelApp.FUs()) != 2 || SobelApp.FUs()[0] != circuits.IntAdd32 {
		t.Error("Sobel FU list wrong")
	}
	if len(GaussApp.FUs()) != 2 || GaussApp.FUs()[0] != circuits.FPAdd32 {
		t.Error("Gauss FU list wrong")
	}
	if len(Apps) != 2 {
		t.Error("Apps list wrong")
	}
}

func TestGaussQualityRun(t *testing.T) {
	img := imaging.Synthetic(5, 24, 24)
	p, out, err := GaussApp.QualityRun(img, TERs{circuits.FPMul32: 0.05}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || out.W != img.W {
		t.Fatal("no output image")
	}
	if math.IsInf(p, 1) {
		t.Error("5% FP error rate left the image untouched")
	}
}
