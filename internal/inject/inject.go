// Package inject plays the role the customized Multi2Sim plays in the
// paper: it instruments application kernels' functional-unit calls, both
// to profile the operand streams they produce (for dynamic timing
// analysis) and to inject timing errors back into the application
// according to a per-FU timing-error rate, with erroneous operations
// returning a random value (the paper's error semantics, after [12]).
package inject

import (
	"fmt"
	"math/rand"

	"tevot/internal/circuits"
	"tevot/internal/imaging"
	"tevot/internal/workload"
)

// Recording wraps exact arithmetic and records every operand pair per
// functional unit.
type Recording struct {
	exact imaging.Exact
	recs  map[circuits.FU]*workload.Recorder
}

// NewRecording creates a profiler; cap bounds the pairs kept per FU
// (0 = unlimited).
func NewRecording(capPerFU int) *Recording {
	r := &Recording{recs: make(map[circuits.FU]*workload.Recorder)}
	for _, fu := range circuits.AllFUs {
		r.recs[fu] = &workload.Recorder{Name: fu.String(), Cap: capPerFU}
	}
	return r
}

// Stream returns the recorded operand stream of one FU.
func (r *Recording) Stream(fu circuits.FU) (*workload.Stream, error) {
	rec, ok := r.recs[fu]
	if !ok {
		return nil, fmt.Errorf("inject: no recorder for %v", fu)
	}
	return rec.Stream()
}

// Count returns the number of recorded pairs for one FU.
func (r *Recording) Count(fu circuits.FU) int { return len(r.recs[fu].Pairs) }

// IntAdd records and computes a + b.
func (r *Recording) IntAdd(a, b uint32) uint32 {
	r.recs[circuits.IntAdd32].Record(a, b)
	return r.exact.IntAdd(a, b)
}

// IntMul records and computes a * b.
func (r *Recording) IntMul(a, b uint32) uint32 {
	r.recs[circuits.IntMul32].Record(a, b)
	return r.exact.IntMul(a, b)
}

// FPAdd records and computes the float sum.
func (r *Recording) FPAdd(a, b uint32) uint32 {
	r.recs[circuits.FPAdd32].Record(a, b)
	return r.exact.FPAdd(a, b)
}

// FPMul records and computes the float product.
func (r *Recording) FPMul(a, b uint32) uint32 {
	r.recs[circuits.FPMul32].Record(a, b)
	return r.exact.FPMul(a, b)
}

// TERs is a per-FU timing-error rate in [0, 1].
type TERs map[circuits.FU]float64

// Validate checks all rates are probabilities.
func (t TERs) Validate() error {
	for fu, r := range t {
		if r < 0 || r > 1 {
			return fmt.Errorf("inject: TER %v for %v outside [0,1]", r, fu)
		}
	}
	return nil
}

// Injecting wraps exact arithmetic and corrupts each FU result with the
// FU's timing-error rate: an erroneous operation returns a uniformly
// random 32-bit value.
type Injecting struct {
	exact imaging.Exact
	ters  TERs
	rng   *rand.Rand
	// Errors counts injected errors per FU.
	Errors map[circuits.FU]int
	// Ops counts total operations per FU.
	Ops map[circuits.FU]int
}

// NewInjecting creates an injector with the given rates and seed.
func NewInjecting(ters TERs, seed int64) (*Injecting, error) {
	if err := ters.Validate(); err != nil {
		return nil, err
	}
	return &Injecting{
		ters:   ters,
		rng:    rand.New(rand.NewSource(seed)),
		Errors: make(map[circuits.FU]int),
		Ops:    make(map[circuits.FU]int),
	}, nil
}

func (in *Injecting) apply(fu circuits.FU, exact uint32) uint32 {
	in.Ops[fu]++
	if r := in.ters[fu]; r > 0 && in.rng.Float64() < r {
		in.Errors[fu]++
		return in.rng.Uint32()
	}
	return exact
}

// IntAdd computes a + b, possibly corrupted.
func (in *Injecting) IntAdd(a, b uint32) uint32 {
	return in.apply(circuits.IntAdd32, in.exact.IntAdd(a, b))
}

// IntMul computes a * b, possibly corrupted.
func (in *Injecting) IntMul(a, b uint32) uint32 {
	return in.apply(circuits.IntMul32, in.exact.IntMul(a, b))
}

// FPAdd computes the float sum, possibly corrupted.
func (in *Injecting) FPAdd(a, b uint32) uint32 {
	return in.apply(circuits.FPAdd32, in.exact.FPAdd(a, b))
}

// FPMul computes the float product, possibly corrupted.
func (in *Injecting) FPMul(a, b uint32) uint32 {
	return in.apply(circuits.FPMul32, in.exact.FPMul(a, b))
}

// App identifies one of the two study applications.
type App int

const (
	// SobelApp is the Sobel edge filter (integer pipeline).
	SobelApp App = iota
	// GaussApp is the Gaussian blur (floating-point pipeline).
	GaussApp
)

func (a App) String() string {
	if a == SobelApp {
		return "Sobel"
	}
	return "Gauss"
}

// Run executes the application on an image through the given unit.
func (a App) Run(img *imaging.Image, u imaging.ArithUnit) *imaging.Image {
	if a == SobelApp {
		return imaging.Sobel(img, u)
	}
	return imaging.Gaussian(img, u)
}

// FUs lists the functional units the application exercises.
func (a App) FUs() []circuits.FU {
	if a == SobelApp {
		return []circuits.FU{circuits.IntAdd32, circuits.IntMul32}
	}
	return []circuits.FU{circuits.FPAdd32, circuits.FPMul32}
}

// Apps lists both study applications.
var Apps = []App{SobelApp, GaussApp}

// QualityRun executes the app on an image with injected errors and
// reports the output's PSNR against the clean output.
func (a App) QualityRun(img *imaging.Image, ters TERs, seed int64) (psnr float64, out *imaging.Image, err error) {
	clean := a.Run(img, imaging.Exact{})
	in, err := NewInjecting(ters, seed)
	if err != nil {
		return 0, nil, err
	}
	out = a.Run(img, in)
	psnr, err = imaging.PSNR(out, clean)
	if err != nil {
		return 0, nil, err
	}
	return psnr, out, nil
}
