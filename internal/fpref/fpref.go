// Package fpref provides bit-exact software golden models of the
// floating-point functional units in internal/circuits.
//
// The hardware units are IEEE-754 single-precision datapaths with the
// simplifications a guardband-modeling study can afford (and which the
// paper's FloPoCo-generated units also make configurable): truncation
// instead of round-to-nearest, subnormal inputs flushed to zero,
// underflow flushed to zero, overflow saturated to infinity, and no
// NaN special-casing (NaN encodings flow through as ordinary values).
// These models define that contract; the gate-level netlists are tested
// bit-for-bit against them, and they against float32 arithmetic on
// exactly-representable cases.
package fpref

import "math/bits"

const (
	signMask = 1 << 31
	expMask  = 0xff << 23
	manMask  = 1<<23 - 1
	hidden   = 1 << 23
)

// unpack splits an encoding into sign, exponent field and 24-bit mantissa
// with hidden bit; subnormals (exponent field 0) are flushed: mantissa 0.
func unpack(x uint32) (sign uint32, exp uint32, man uint32) {
	sign = x >> 31
	exp = x >> 23 & 0xff
	if exp == 0 {
		return sign, 0, 0
	}
	return sign, exp, hidden | x&manMask
}

// pack assembles the final encoding from sign, a signed exponent and the
// 24-bit normalized mantissa (hidden bit at position 23). Exponent <= 0
// flushes to signed zero; exponent >= 255 saturates to signed infinity.
// A zero mantissa always yields +0.
func pack(sign uint32, exp int32, man uint32) uint32 {
	if man == 0 {
		return 0 // cancellation produces +0
	}
	if exp <= 0 {
		return sign << 31 // underflow: flush to signed zero
	}
	if exp >= 255 {
		return sign<<31 | expMask // overflow: signed infinity
	}
	return sign<<31 | uint32(exp)<<23 | man&manMask
}

// Add returns the sum of two single-precision encodings under the
// truncating flush-to-zero semantics described in the package comment.
func Add(a, b uint32) uint32 {
	sa, ea, ma := unpack(a)
	sb, eb, mb := unpack(b)

	// Magnitude compare on the flushed operands; ties keep a on the
	// "large" side. The netlist implements exactly this rule.
	magA, magB := a&^uint32(signMask), b&^uint32(signMask)
	if ma == 0 {
		magA = 0
	}
	if mb == 0 {
		magB = 0
	}
	var sL, eL, mL, eS, mS uint32
	if magA >= magB {
		sL, eL, mL, eS, mS = sa, ea, ma, eb, mb
	} else {
		sL, eL, mL, eS, mS = sb, eb, mb, ea, ma
	}

	diff := eL - eS // non-negative: magnitude order implies exponent order
	var aligned uint32
	if diff < 32 {
		aligned = mS >> diff
	}

	var r uint32 // 25-bit result
	if sa == sb || ma == 0 || mb == 0 {
		// Same effective sign (a flushed-zero operand never flips the op:
		// adding or subtracting zero is identical).
		r = mL + aligned
	} else {
		r = mL - aligned // >= 0 because mag(L) >= mag(S)
	}

	if r == 0 {
		return 0
	}
	var man uint32
	var exp int32
	if r&(1<<24) != 0 { // mantissa overflow: shift right, truncate
		man = r >> 1
		exp = int32(eL) + 1
	} else {
		lz := uint32(bits.LeadingZeros32(r)) - 8 // leading zeros within 24 bits
		man = r << lz
		exp = int32(eL) - int32(lz)
	}
	return pack(sL, exp, man)
}

// Mul returns the product of two single-precision encodings under the
// truncating flush-to-zero semantics described in the package comment.
func Mul(a, b uint32) uint32 {
	sa, _, ma := unpack(a)
	sb, _, mb := unpack(b)
	sign := sa ^ sb
	if ma == 0 || mb == 0 {
		return sign << 31 // signed zero
	}
	ea := int32(a >> 23 & 0xff)
	eb := int32(b >> 23 & 0xff)
	p := uint64(ma) * uint64(mb) // 48-bit product, bit 46 or 47 set
	var man uint32
	var exp int32
	if p&(1<<47) != 0 {
		man = uint32(p >> 24)
		exp = ea + eb - 127 + 1
	} else {
		man = uint32(p >> 23)
		exp = ea + eb - 127
	}
	return pack(sign, exp, man)
}
