package fpref

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func f32(bits uint32) float32  { return math.Float32frombits(bits) }
func b32(f float32) uint32     { return math.Float32bits(f) }
func isFinite(f float32) bool  { return !math.IsInf(float64(f), 0) && !math.IsNaN(float64(f)) }
func isNormal(bits uint32) bool {
	e := bits >> 23 & 0xff
	return e != 0 && e != 255
}

// TestAddExactCases: when the IEEE sum is exactly representable (no
// rounding), the truncating adder must agree with float32 arithmetic.
func TestAddExactCases(t *testing.T) {
	cases := [][2]float32{
		{1, 1}, {1, 2}, {1.5, 2.5}, {0.5, 0.25},
		{1024, 512}, {3, -1}, {-2, -6}, {7, -7},
		{1, 0}, {0, 0}, {-5.5, 0}, {0.125, 0.375},
		{1e10, 1e10}, {-1e-10, 1e-10},
	}
	for _, c := range cases {
		want := c[0] + c[1]
		got := f32(Add(b32(c[0]), b32(c[1])))
		if got != want {
			// -0 vs +0: our contract produces +0 on exact cancellation.
			if want == 0 && got == 0 {
				continue
			}
			t.Errorf("Add(%v, %v) = %v, want %v", c[0], c[1], got, want)
		}
	}
}

func TestMulExactCases(t *testing.T) {
	cases := [][2]float32{
		{1, 1}, {2, 3}, {1.5, 2}, {0.5, 0.5},
		{-4, 0.25}, {-3, -3}, {1024, 1024},
		{7, 0}, {0, -7}, {1, -1},
	}
	for _, c := range cases {
		want := c[0] * c[1]
		got := f32(Mul(b32(c[0]), b32(c[1])))
		if got != want {
			if want == 0 && got == 0 {
				continue
			}
			t.Errorf("Mul(%v, %v) = %v, want %v", c[0], c[1], got, want)
		}
	}
}

// TestAddTruncationBound: without guard/round/sticky bits, alignment
// truncation loses at most one unit in the last place of the LARGER
// operand (not of the result — after cancellation that can be many result
// ulps), plus one result ulp from the final truncation.
func TestAddTruncationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		a := randNormal(rng)
		b := randNormal(rng)
		ref := f32(a) + f32(b)
		if !isFinite(ref) || !isNormal(b32(ref)) {
			continue
		}
		got := f32(Add(a, b))
		if got == ref {
			continue
		}
		bound := ulp32(f32(a)) + ulp32(f32(b)) + ulp32(ref)
		if diff := math.Abs(float64(got - ref)); diff > bound {
			t.Fatalf("Add(%x,%x): got %v, reference %v, diff %g > bound %g",
				a, b, got, ref, diff, bound)
		}
	}
}

func TestMulWithinOneULP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		a := randNormal(rng)
		b := randNormal(rng)
		ref := f32(a) * f32(b)
		if !isFinite(ref) || !isNormal(b32(ref)) {
			continue
		}
		got := f32(Mul(a, b))
		if got == ref {
			continue
		}
		ulp := ulp32(ref)
		if diff := math.Abs(float64(got - ref)); diff > 2*ulp {
			t.Fatalf("Mul(%x,%x): got %v, reference %v, diff %g > 2 ulp (%g)",
				a, b, got, ref, diff, ulp)
		}
	}
}

// ulp32 returns the unit-in-the-last-place spacing of a normal float32.
func ulp32(f float32) float64 {
	e := int(b32(f) >> 23 & 0xff)
	return math.Ldexp(1, e-127-23)
}

// randNormal returns a random normal (non-subnormal, non-inf/nan) float32
// encoding with moderate exponent so sums stay finite.
func randNormal(rng *rand.Rand) uint32 {
	sign := uint32(rng.Intn(2)) << 31
	exp := uint32(64 + rng.Intn(128)) // well inside the finite range
	man := uint32(rng.Intn(1 << 23))
	return sign | exp<<23 | man
}

func TestAddCommutative(t *testing.T) {
	f := func(a, b uint32) bool { return Add(a, b) == Add(b, a) }
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b uint32) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddIdentity(t *testing.T) {
	f := func(a uint32) bool {
		if e := a >> 23 & 0xff; e == 0 || e == 255 { // flushed or saturating encodings
			return true
		}
		return Add(a, 0) == a && Add(0, a) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulByOne(t *testing.T) {
	one := b32(1)
	f := func(a uint32) bool {
		e := a >> 23 & 0xff
		if e == 0 || e == 255 { // flushed or non-finite encodings
			return true
		}
		return Mul(a, one) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddCancellationGivesPlusZero(t *testing.T) {
	a := b32(3.5)
	na := b32(-3.5)
	if got := Add(a, na); got != 0 {
		t.Fatalf("Add(x, -x) = %#08x, want +0", got)
	}
}

func TestMulSignedZero(t *testing.T) {
	if got := Mul(b32(-2), 0); got != 1<<31 {
		t.Fatalf("Mul(-2, +0) = %#08x, want -0", got)
	}
	if got := Mul(b32(2), 1<<31); got != 1<<31 {
		t.Fatalf("Mul(2, -0) = %#08x, want -0", got)
	}
}

func TestSubnormalsFlushToZero(t *testing.T) {
	sub := uint32(1) // smallest positive subnormal
	if got := Add(sub, sub); got != 0 {
		t.Fatalf("Add(subnormal, subnormal) = %#08x, want +0", got)
	}
	if got := Mul(sub, b32(1)); got != 0 {
		t.Fatalf("Mul(subnormal, 1) = %#08x, want +0", got)
	}
}

func TestOverflowSaturatesToInf(t *testing.T) {
	big := b32(math.MaxFloat32)
	if got := f32(Add(big, big)); !math.IsInf(float64(got), 1) {
		t.Fatalf("Add(max, max) = %v, want +Inf", got)
	}
	if got := f32(Mul(big, big)); !math.IsInf(float64(got), 1) {
		t.Fatalf("Mul(max, max) = %v, want +Inf", got)
	}
	negBig := b32(-math.MaxFloat32)
	if got := f32(Mul(big, negBig)); !math.IsInf(float64(got), -1) {
		t.Fatalf("Mul(max, -max) = %v, want -Inf", got)
	}
}

func TestUnderflowFlushesToSignedZero(t *testing.T) {
	tiny := uint32(1 << 23) // smallest normal, exponent 1
	if got := Mul(tiny, tiny); got != 0 {
		t.Fatalf("Mul(minNormal, minNormal) = %#08x, want +0", got)
	}
	negTiny := tiny | 1<<31
	if got := Mul(negTiny, tiny); got != 1<<31 {
		t.Fatalf("Mul(-minNormal, minNormal) = %#08x, want -0", got)
	}
}

// TestAddMagnitudeOrdering: result of adding same-sign operands is at
// least as large as each operand (no rounding can shrink it below the
// larger input under truncation toward zero... truncation keeps the
// result >= the larger magnitude operand).
func TestAddMonotoneMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		a := randNormal(rng) &^ uint32(1<<31)
		b := randNormal(rng) &^ uint32(1<<31)
		s := Add(a, b)
		if s>>23&0xff == 255 {
			continue // saturated
		}
		if f32(s) < f32(a) || f32(s) < f32(b) {
			t.Fatalf("Add(%v,%v) = %v shrank below an operand", f32(a), f32(b), f32(s))
		}
	}
}
