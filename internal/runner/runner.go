// Package runner is a fault-tolerant task executor for characterization
// sweeps. The paper-scale evaluation is a 100-corner × 4-FU ×
// multi-dataset grid that runs for hours; one panicking cell or one lost
// process must not discard the rest. The runner provides:
//
//   - a bounded worker pool with context cancellation and per-task
//     deadlines;
//   - panic recovery, converting panics deep inside a cell (netlist
//     building, simulation, training) into typed per-cell errors;
//   - retry with exponential backoff + deterministic jitter for failures
//     classified as transient, plus a seeded fault-injection hook so the
//     retry/timeout paths are testable in CI without flakiness;
//   - graceful degradation: failed cells are recorded in the Report and
//     the sweep continues;
//   - JSON-lines checkpointing: each completed cell is appended and
//     fsynced, and a resumed run skips already-done cells, producing
//     results identical to an uninterrupted run.
//
// Every cell runs at least once (failed cells are re-attempted on
// resume); cell results must therefore be deterministic functions of
// their key, which all TEVoT characterization cells are.
package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"tevot/internal/backoff"
	"tevot/internal/obs"
)

// Config controls one sweep execution.
type Config struct {
	// Name identifies the sweep (and its scale) in checkpoint headers;
	// resuming a checkpoint written under a different name is refused.
	Name string
	// Workers bounds concurrent cells; <= 0 means GOMAXPROCS.
	Workers int
	// TaskTimeout is the per-attempt deadline; 0 means none.
	TaskTimeout time.Duration
	// Retries is the number of extra attempts granted to failures
	// classified as Transient.
	Retries int
	// Backoff is the base delay before the first retry (default 100ms);
	// it doubles per attempt up to MaxBackoff (default 5s), with
	// deterministic per-cell jitter in [0.5x, 1.5x).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed drives the backoff jitter (and, by convention, fault
	// injectors), keeping runs reproducible.
	Seed int64
	// Checkpoint is the path of the JSONL checkpoint file ("" disables
	// checkpointing). Resume loads it first and skips completed cells.
	Checkpoint string
	Resume     bool
	// FS backs the checkpoint file; nil means the real filesystem. Tests
	// (internal/chaos) swap in a fault-injecting layer here.
	FS FS
	// Classify decides whether a failure is retryable; nil means
	// DefaultClassify.
	Classify func(error) Class
	// Inject, when non-nil, is consulted before every attempt; a non-nil
	// return fails the attempt with that error. Used for deterministic
	// fault injection in tests.
	Inject FaultFn
	// Logf receives progress lines (retries, failures); nil is silent.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "sweep"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Classify == nil {
		c.Classify = DefaultClassify
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.FS == nil {
		c.FS = OSFS
	}
	return c
}

// Task is one cell of a sweep: a stable key plus the work. Run must be a
// deterministic function of the key and must respect ctx for prompt
// deadline handling (the pool survives tasks that don't, but their
// goroutine runs to completion in the background).
type Task[R any] struct {
	Key string
	Run func(ctx context.Context) (R, error)
}

// Report summarizes a sweep: how many cells succeeded, were resumed from
// the checkpoint, failed (with their errors), or were never attempted
// because the sweep was interrupted.
type Report struct {
	Sweep     string
	Total     int
	Resumed   int
	Succeeded int
	Failed    int
	// Skipped cells were never attempted (cancellation hit first).
	Skipped int
	// Retried is the total number of extra attempts spent across cells.
	Retried int
	// Failures lists failed cells, sorted by key.
	Failures []*CellError
	// Interrupted reports that the sweep context was cancelled.
	Interrupted bool
	// Elapsed is the sweep's wall time.
	Elapsed time.Duration
	// SlowestKey/SlowestDur identify the longest-running cell actually
	// executed this run (resumed cells don't count; "" when none ran).
	SlowestKey string
	SlowestDur time.Duration
}

// Err joins the per-cell failures, or returns nil when every cell
// succeeded and none were skipped.
func (r *Report) Err() error {
	errs := make([]error, 0, len(r.Failures))
	for _, f := range r.Failures {
		errs = append(errs, f)
	}
	if r.Skipped > 0 {
		errs = append(errs, fmt.Errorf("runner: %d cell(s) never attempted (sweep interrupted)", r.Skipped))
	}
	return errors.Join(errs...)
}

// Summary renders a one-line (plus per-failure lines) human report:
// cell totals, retry spend, wall time, and the slowest cell — the
// lines the CLIs print at the end of a sweep.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep %q: %d cells — %d ok, %d resumed, %d failed, %d skipped (%d retries)",
		r.Sweep, r.Total, r.Succeeded, r.Resumed, r.Failed, r.Skipped, r.Retried)
	if r.Elapsed > 0 {
		fmt.Fprintf(&b, " in %v", r.Elapsed.Round(time.Millisecond))
	}
	if r.SlowestKey != "" {
		fmt.Fprintf(&b, "\n  slowest cell: %s (%v)", r.SlowestKey, r.SlowestDur.Round(time.Millisecond))
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "\n  FAILED %s after %d attempt(s): %v", f.Key, f.Attempts, f.Err)
	}
	return b.String()
}

// cellResult is one finished cell as it flows from a worker to the
// collector.
type cellResult[R any] struct {
	key      string
	value    R
	attempts int
	dur      time.Duration
	err      error
}

// Run executes the tasks on a bounded worker pool and returns the
// per-key results plus a Report. Per-cell failures do NOT produce a
// non-nil error — they are recorded in the Report and the sweep
// continues. The returned error is reserved for infrastructure problems
// (unusable checkpoint file, duplicate keys) and for ctx cancellation,
// in which case the partial results and Report are still returned.
func Run[R any](ctx context.Context, cfg Config, tasks []Task[R]) (map[string]R, *Report, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	rep := &Report{Sweep: cfg.Name, Total: len(tasks)}
	defer func() { rep.Elapsed = time.Since(start) }()
	results := make(map[string]R, len(tasks))
	log := obs.Logger("runner")

	seen := make(map[string]bool, len(tasks))
	for _, t := range tasks {
		if t.Key == "" {
			return nil, rep, fmt.Errorf("runner: task with empty key")
		}
		if seen[t.Key] {
			return nil, rep, fmt.Errorf("runner: duplicate task key %q", t.Key)
		}
		seen[t.Key] = true
	}

	var done map[string]json.RawMessage
	var jnl *Journal
	if cfg.Checkpoint != "" {
		var err error
		jnl, done, err = OpenJournalFS(cfg.FS, cfg.Checkpoint, cfg.Name, cfg.Resume)
		if err != nil {
			return nil, rep, err
		}
		defer jnl.Close()
	}

	todo := make([]Task[R], 0, len(tasks))
	for _, t := range tasks {
		if raw, ok := done[t.Key]; ok {
			var v R
			if err := json.Unmarshal(raw, &v); err != nil {
				return nil, rep, fmt.Errorf("runner: checkpoint value for %s does not decode: %w", t.Key, err)
			}
			results[t.Key] = v
			rep.Resumed++
			continue
		}
		todo = append(todo, t)
	}
	if rep.Resumed > 0 {
		cfg.Logf("resumed %d/%d cells from %s", rep.Resumed, rep.Total, cfg.Checkpoint)
		log.Info("resumed from checkpoint", "sweep", cfg.Name,
			"resumed", rep.Resumed, "total", rep.Total, "checkpoint", cfg.Checkpoint)
	}

	nw := cfg.Workers
	if nw > len(todo) {
		nw = len(todo)
	}

	// Publish the live progress state before the first worker starts so
	// a /progress poll never races an inconsistent half-sweep.
	st := &progressState{
		sweep:       cfg.Name,
		total:       int64(len(tasks)),
		workers:     int64(nw),
		retryBudget: int64(cfg.Retries) * int64(len(todo)),
		start:       start,
	}
	st.resumed.Store(int64(rep.Resumed))
	liveSweep.Store(st)
	defer st.finished.Store(true)
	mCellsTotal.Add(int64(len(tasks)))
	mCellsResumed.Add(int64(rep.Resumed))
	log.Debug("sweep starting", "sweep", cfg.Name,
		"cells", len(tasks), "todo", len(todo), "workers", nw)
	taskCh := make(chan Task[R])
	resCh := make(chan cellResult[R])
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range taskCh {
				st.running.Add(1)
				r := execute(ctx, cfg, t, st)
				st.running.Add(-1)
				resCh <- r
			}
		}()
	}
	go func() {
		defer close(taskCh)
		for _, t := range todo {
			select {
			case taskCh <- t:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(resCh)
	}()

	var infraErr error
	for r := range resCh {
		rep.Retried += r.attempts - 1
		if r.dur > rep.SlowestDur {
			rep.SlowestKey, rep.SlowestDur = r.key, r.dur
		}
		if r.err != nil {
			ce := &CellError{Key: r.key, Attempts: r.attempts, Err: r.err}
			rep.Failed++
			rep.Failures = append(rep.Failures, ce)
			cfg.Logf("%v", ce)
			log.Warn("cell failed", "sweep", cfg.Name, "cell", r.key,
				"attempts", r.attempts, "err", r.err)
			continue
		}
		results[r.key] = r.value
		rep.Succeeded++
		if jnl != nil && infraErr == nil {
			raw, err := json.Marshal(r.value)
			if err == nil {
				err = jnl.Record(r.key, r.attempts, raw)
			}
			if err != nil {
				infraErr = fmt.Errorf("runner: writing checkpoint %s: %w", cfg.Checkpoint, err)
				cfg.Logf("%v — continuing without checkpointing", infraErr)
				log.Error("checkpoint write failed; continuing without checkpointing",
					"sweep", cfg.Name, "checkpoint", cfg.Checkpoint, "err", err)
			}
		}
	}
	sort.Slice(rep.Failures, func(i, j int) bool { return rep.Failures[i].Key < rep.Failures[j].Key })
	rep.Skipped = rep.Total - rep.Resumed - rep.Succeeded - rep.Failed
	log.Debug("sweep finished", "sweep", cfg.Name, "ok", rep.Succeeded,
		"resumed", rep.Resumed, "failed", rep.Failed, "skipped", rep.Skipped,
		"retries", rep.Retried, "elapsed", time.Since(start).Round(time.Millisecond))
	if ctx.Err() != nil {
		rep.Interrupted = true
		return results, rep, ctx.Err()
	}
	return results, rep, infraErr
}

// execute runs one cell to its final outcome: attempts until success, a
// permanent failure, retry exhaustion, or cancellation. The per-cell
// wall time (across all attempts and backoffs) feeds the cell-latency
// histogram the /progress ETA is extrapolated from.
func execute[R any](ctx context.Context, cfg Config, t Task[R], st *progressState) cellResult[R] {
	start := time.Now()
	finish := func(r cellResult[R]) cellResult[R] {
		r.dur = time.Since(start)
		hCellSeconds.Observe(r.dur.Seconds())
		st.sumCellNs.Add(r.dur.Nanoseconds())
		if r.err != nil {
			st.failed.Add(1)
			mCellsFailed.Inc()
		} else {
			st.done.Add(1)
			mCellsOK.Inc()
		}
		return r
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		mAttempts.Inc()
		v, err := runAttempt(ctx, cfg, t, attempt)
		if err == nil {
			return finish(cellResult[R]{key: t.Key, value: v, attempts: attempt + 1})
		}
		lastErr = err
		var pe *PanicError
		if errors.As(err, &pe) {
			mPanics.Inc()
		} else if errors.Is(err, context.DeadlineExceeded) {
			mTimeouts.Inc()
		}
		if ctx.Err() != nil || attempt >= cfg.Retries || cfg.Classify(err) != Transient {
			return finish(cellResult[R]{key: t.Key, attempts: attempt + 1, err: lastErr})
		}
		mRetries.Inc()
		st.retried.Add(1)
		d := backoffDelay(cfg, t.Key, attempt)
		cfg.Logf("cell %s attempt %d failed (%v); retrying in %v", t.Key, attempt+1, err, d)
		obs.Logger("runner").Debug("retrying cell", "sweep", cfg.Name, "cell", t.Key,
			"attempt", attempt+1, "backoff", d, "err", err)
		if !sleepCtx(ctx, d) {
			return finish(cellResult[R]{key: t.Key, attempts: attempt + 1, err: lastErr})
		}
	}
}

// runAttempt executes one attempt in its own goroutine so that a task
// that overruns its deadline (or ignores ctx entirely) cannot stall the
// worker: the worker abandons it at the deadline and moves on, and the
// stray goroutine finishes in the background into a buffered channel.
func runAttempt[R any](ctx context.Context, cfg Config, t Task[R], attempt int) (R, error) {
	var zero R
	if cfg.Inject != nil {
		if err := cfg.Inject(t.Key, attempt); err != nil {
			return zero, err
		}
	}
	actx := ctx
	cancel := func() {}
	if cfg.TaskTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, cfg.TaskTimeout)
	}
	defer cancel()

	type outcome struct {
		v   R
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: &PanicError{Value: fmt.Sprint(p), Stack: string(debug.Stack())}}
			}
		}()
		v, err := t.Run(actx)
		ch <- outcome{v: v, err: err}
	}()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-actx.Done():
		return zero, actx.Err()
	}
}

// backoffDelay is Backoff·2^attempt capped at MaxBackoff, scaled by a
// deterministic per-(key, attempt) jitter factor in [0.5, 1.5) —
// reproducible across runs, decorrelated across cells. The schedule
// lives in internal/backoff, shared with the distributed-sweep HTTP
// client so one seed reproduces both layers' retry timing.
func backoffDelay(cfg Config, key string, attempt int) time.Duration {
	p := backoff.Policy{Base: cfg.Backoff, Max: cfg.MaxBackoff, Seed: cfg.Seed}
	return p.Delay(key, attempt)
}

// sleepCtx sleeps for d or until ctx is cancelled; it reports whether
// the full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
