package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

type cellValue struct {
	Index int
	Mean  float64
	Label string
}

func sweepTasks(n int, executed *atomic.Int32) []Task[cellValue] {
	tasks := make([]Task[cellValue], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task[cellValue]{
			Key: fmt.Sprintf("fu/ds/c%03d", i),
			Run: func(ctx context.Context) (cellValue, error) {
				if executed != nil {
					executed.Add(1)
				}
				return cellValue{Index: i, Mean: float64(i) * 1.5, Label: fmt.Sprintf("v%d", i)}, nil
			},
		}
	}
	return tasks
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCheckpointResumeIdentical: a sweep killed mid-run and resumed from
// its checkpoint produces results identical (byte-identical once
// canonically ordered) to an uninterrupted run, and does not re-execute
// completed cells — ISSUE acceptance criterion (c).
func TestCheckpointResumeIdentical(t *testing.T) {
	const n = 30
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")

	// Reference: uninterrupted, checkpoint-free run.
	want, rep, err := Run(context.Background(), Config{Name: "resume-test", Workers: 3}, sweepTasks(n, nil))
	if err != nil || rep.Failed != 0 {
		t.Fatalf("reference run: %v / %s", err, rep.Summary())
	}

	// Interrupted run: cancel after ~10 cells complete.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed atomic.Int32
	tasks := make([]Task[cellValue], n)
	copy(tasks, sweepTasks(n, nil))
	for i := range tasks {
		run := tasks[i].Run
		tasks[i].Run = func(ctx context.Context) (cellValue, error) {
			v, err := run(ctx)
			if completed.Add(1) == 10 {
				cancel()
			}
			return v, err
		}
	}
	partial, rep1, err := Run(ctx, Config{Name: "resume-test", Workers: 3, Checkpoint: ckpt}, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want canceled", err)
	}
	if rep1.Succeeded == 0 || rep1.Skipped == 0 {
		t.Fatalf("interruption not mid-run:\n%s", rep1.Summary())
	}
	for k, v := range partial {
		if !reflect.DeepEqual(v, want[k]) {
			t.Fatalf("partial result %s diverges before resume", k)
		}
	}

	// Resumed run: must skip every checkpointed cell and reproduce the
	// reference exactly.
	var executed atomic.Int32
	got, rep2, err := Run(context.Background(),
		Config{Name: "resume-test", Workers: 3, Checkpoint: ckpt, Resume: true},
		sweepTasks(n, &executed))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != rep1.Succeeded {
		t.Fatalf("resumed %d cells, checkpoint held %d", rep2.Resumed, rep1.Succeeded)
	}
	if int(executed.Load()) != n-rep1.Succeeded {
		t.Fatalf("re-executed %d cells, want %d", executed.Load(), n-rep1.Succeeded)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed results differ from uninterrupted run")
	}
	// Byte-identical once serialized in canonical (key) order.
	if string(mustJSON(t, canonical(got))) != string(mustJSON(t, canonical(want))) {
		t.Fatal("serialized resumed results not byte-identical")
	}

	// A second resume finds everything done and executes nothing.
	var executed2 atomic.Int32
	again, rep3, err := Run(context.Background(),
		Config{Name: "resume-test", Checkpoint: ckpt, Resume: true},
		sweepTasks(n, &executed2))
	if err != nil || executed2.Load() != 0 || rep3.Resumed != n {
		t.Fatalf("idempotent resume broken: err=%v executed=%d resumed=%d", err, executed2.Load(), rep3.Resumed)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("second resume diverged")
	}
}

// canonical orders a result map by key for byte-comparison.
func canonical(m map[string]cellValue) []cellValue {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// small n; insertion sort keeps imports minimal
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := make([]cellValue, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// TestCheckpointToleratesTruncatedTail: a kill mid-append leaves a
// partial final line; resume must drop it and redo just that cell.
func TestCheckpointToleratesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")
	if _, rep, err := Run(context.Background(), Config{Name: "tail", Checkpoint: ckpt}, sweepTasks(6, nil)); err != nil || rep.Failed != 0 {
		t.Fatalf("seed run: %v", err)
	}
	// Simulate a mid-write kill: chop the file inside the last line.
	b, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := strings.TrimRight(string(b), "\n")
	cut := trimmed[:len(trimmed)-7]
	if err := os.WriteFile(ckpt, []byte(cut), 0o644); err != nil {
		t.Fatal(err)
	}

	var executed atomic.Int32
	_, rep, err := Run(context.Background(), Config{Name: "tail", Checkpoint: ckpt, Resume: true}, sweepTasks(6, &executed))
	if err != nil {
		t.Fatalf("resume over truncated tail: %v", err)
	}
	if rep.Resumed != 5 || executed.Load() != 1 {
		t.Fatalf("resumed=%d executed=%d, want 5/1:\n%s", rep.Resumed, executed.Load(), rep.Summary())
	}
}

// TestCheckpointTruncatesTornTailBeforeAppend is the crash-mid-write
// hardening contract: the torn final line must be physically truncated
// out of the file before the resumed run appends, so the re-run cell's
// fresh entry cannot splice onto the torn bytes and corrupt two entries
// at once. (Without the truncate, a second resume after the first would
// hit an unparsable mid-file line and refuse the whole checkpoint.)
func TestCheckpointTruncatesTornTailBeforeAppend(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")
	if _, rep, err := Run(context.Background(), Config{Name: "torn", Checkpoint: ckpt}, sweepTasks(6, nil)); err != nil || rep.Failed != 0 {
		t.Fatalf("seed run: %v", err)
	}
	// Crash mid-write: the last entry's line is half-flushed.
	b := readFile(t, ckpt)
	trimmed := strings.TrimRight(b, "\n")
	writeFile(t, ckpt, trimmed[:len(trimmed)-9])

	var executed atomic.Int32
	_, rep, err := Run(context.Background(), Config{Name: "torn", Checkpoint: ckpt, Resume: true}, sweepTasks(6, &executed))
	if err != nil || rep.Resumed != 5 || executed.Load() != 1 {
		t.Fatalf("first resume: err=%v resumed=%d executed=%d", err, rep.Resumed, executed.Load())
	}

	// The file must now be wholly clean: every line parses, and a second
	// resume trusts all 6 entries without re-running anything.
	for i, line := range strings.Split(strings.TrimRight(readFile(t, ckpt), "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d still corrupt after torn-tail resume: %q", i+1, line)
		}
	}
	var executed2 atomic.Int32
	_, rep2, err := Run(context.Background(), Config{Name: "torn", Checkpoint: ckpt, Resume: true}, sweepTasks(6, &executed2))
	if err != nil || rep2.Resumed != 6 || executed2.Load() != 0 {
		t.Fatalf("second resume: err=%v resumed=%d executed=%d", err, rep2.Resumed, executed2.Load())
	}
}

// TestCheckpointDropsUnterminatedButParseableTail: an append can flush
// a whole entry minus its newline. The entry parses, but accepting it
// while leaving the file unterminated would concatenate the next append
// onto it. It must count as torn: dropped, truncated, re-run.
func TestCheckpointDropsUnterminatedButParseableTail(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")
	if _, _, err := Run(context.Background(), Config{Name: "noterm", Checkpoint: ckpt}, sweepTasks(4, nil)); err != nil {
		t.Fatal(err)
	}
	writeFile(t, ckpt, strings.TrimRight(readFile(t, ckpt), "\n")) // strip final newline only

	var executed atomic.Int32
	_, rep, err := Run(context.Background(), Config{Name: "noterm", Checkpoint: ckpt, Resume: true}, sweepTasks(4, &executed))
	if err != nil || rep.Resumed != 3 || executed.Load() != 1 {
		t.Fatalf("resume: err=%v resumed=%d executed=%d, want 3/1", err, rep.Resumed, executed.Load())
	}
	if !strings.HasSuffix(readFile(t, ckpt), "\n") {
		t.Fatal("journal still unterminated after resume")
	}
}

// TestCheckpointTornHeaderStartsFresh: a kill during the very first
// write (the header) leaves an unterminated header line; resume must
// treat the file as empty and rebuild it, not refuse it.
func TestCheckpointTornHeaderStartsFresh(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	writeFile(t, ckpt, `{"format":"tevot-chec`) // torn mid-header, no newline
	results, rep, err := Run(context.Background(), Config{Name: "hdr", Checkpoint: ckpt, Resume: true}, sweepTasks(3, nil))
	if err != nil || rep.Resumed != 0 || len(results) != 3 {
		t.Fatalf("torn-header resume: err=%v resumed=%d n=%d", err, rep.Resumed, len(results))
	}
	var executed atomic.Int32
	_, rep2, err := Run(context.Background(), Config{Name: "hdr", Checkpoint: ckpt, Resume: true}, sweepTasks(3, &executed))
	if err != nil || rep2.Resumed != 3 || executed.Load() != 0 {
		t.Fatalf("rebuilt checkpoint unusable: err=%v resumed=%d executed=%d", err, rep2.Resumed, executed.Load())
	}
}

// TestCheckpointRefusesForeignFile: a fully written file that is not a
// checkpoint (terminated non-header first line) must be refused, never
// truncated — it may be the user's data.
func TestCheckpointRefusesForeignFile(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "notes.txt")
	const content = "do not clobber me\n"
	writeFile(t, ckpt, content)
	_, _, err := Run(context.Background(), Config{Name: "foreign", Checkpoint: ckpt, Resume: true}, sweepTasks(2, nil))
	if err == nil || !strings.Contains(err.Error(), "not a checkpoint file") {
		t.Fatalf("foreign file accepted: err=%v", err)
	}
	if readFile(t, ckpt) != content {
		t.Fatal("foreign file was modified")
	}
}

// TestCheckpointRejectsMidFileCorruption: corruption before the tail is
// not an interrupted write and must fail loudly instead of silently
// dropping cells.
func TestCheckpointRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")
	if _, _, err := Run(context.Background(), Config{Name: "mid", Checkpoint: ckpt}, sweepTasks(5, nil)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(readFile(t, ckpt), "\n"), "\n")
	lines[2] = lines[2][:len(lines[2])-4] // damage a middle entry
	writeFile(t, ckpt, strings.Join(lines, "\n")+"\n")

	if _, _, err := Run(context.Background(), Config{Name: "mid", Checkpoint: ckpt, Resume: true}, sweepTasks(5, nil)); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// TestCheckpointSweepMismatch: resuming a checkpoint from a different
// sweep (name or scale fingerprint) is refused.
func TestCheckpointSweepMismatch(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")
	if _, _, err := Run(context.Background(), Config{Name: "sweep-A", Checkpoint: ckpt}, sweepTasks(3, nil)); err != nil {
		t.Fatal(err)
	}
	_, _, err := Run(context.Background(), Config{Name: "sweep-B", Checkpoint: ckpt, Resume: true}, sweepTasks(3, nil))
	if err == nil || !strings.Contains(err.Error(), "sweep-A") {
		t.Fatalf("mismatched sweep resume: err = %v", err)
	}
}

// TestResumeWithoutFileStartsFresh: -resume with no checkpoint on disk
// is a fresh run, not an error (first run of a long sweep).
func TestResumeWithoutFileStartsFresh(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "none.ckpt")
	results, rep, err := Run(context.Background(), Config{Name: "fresh", Checkpoint: ckpt, Resume: true}, sweepTasks(4, nil))
	if err != nil || rep.Resumed != 0 || len(results) != 4 {
		t.Fatalf("fresh resume: err=%v resumed=%d n=%d", err, rep.Resumed, len(results))
	}
	// And it wrote a usable checkpoint.
	var executed atomic.Int32
	_, rep2, err := Run(context.Background(), Config{Name: "fresh", Checkpoint: ckpt, Resume: true}, sweepTasks(4, &executed))
	if err != nil || rep2.Resumed != 4 || executed.Load() != 0 {
		t.Fatalf("second resume: err=%v resumed=%d executed=%d", err, rep2.Resumed, executed.Load())
	}
}

// TestFailedCellsNotCheckpointed: failures are re-attempted on resume
// (at-least-once), not frozen into the checkpoint.
func TestFailedCellsNotCheckpointed(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fail.ckpt")
	var attempt atomic.Int32
	flaky := func(ctx context.Context) (cellValue, error) {
		if attempt.Add(1) == 1 {
			return cellValue{}, errors.New("first run fails permanently")
		}
		return cellValue{Index: 99}, nil
	}
	tasks := sweepTasks(3, nil)
	tasks[1].Run = flaky

	_, rep, err := Run(context.Background(), Config{Name: "flaky", Checkpoint: ckpt}, tasks)
	if err != nil || rep.Failed != 1 {
		t.Fatalf("first run: err=%v rep=%s", err, rep.Summary())
	}
	results, rep2, err := Run(context.Background(), Config{Name: "flaky", Checkpoint: ckpt, Resume: true}, tasks)
	if err != nil || rep2.Failed != 0 {
		t.Fatalf("resume: err=%v rep=%s", err, rep2.Summary())
	}
	if rep2.Resumed != 2 || results[tasks[1].Key].Index != 99 {
		t.Fatalf("failed cell not re-attempted on resume:\n%s", rep2.Summary())
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func writeFile(t *testing.T, path, s string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
		t.Fatal(err)
	}
}
