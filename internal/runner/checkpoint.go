package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"tevot/internal/obs"
)

// Checkpoint / journal file format: one JSON document per line.
//
//	{"format":"tevot-checkpoint","version":1,"sweep":"<name>"}
//	{"key":"fig3/INT_ADD/random_data/v0.810/t0","attempts":1,"value":{...}}
//	...
//
// The header pins the sweep identity (name + scale fingerprint) so a
// checkpoint cannot be resumed against a differently sized sweep. One
// entry is appended and fsynced per completed cell, so a killed process
// loses at most the in-flight cells. Only successes are recorded —
// failed cells are re-attempted on resume (at-least-once delivery per
// cell).
//
// A kill can land mid-append, leaving a torn final line (partial bytes,
// or a full line missing its terminating newline). Loading detects the
// tear and opening for append truncates the file back to the last
// fully terminated entry before writing anything, so the tear can never
// splice itself onto the next append. The dropped cell simply re-runs —
// safe, because cells are deterministic functions of their key. The same
// Journal backs both the in-process runner checkpoint and the
// distributed coordinator's result journal (internal/dist).

const (
	checkpointFormat  = "tevot-checkpoint"
	checkpointVersion = 1
)

type checkpointHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Sweep   string `json:"sweep"`
}

// JournalEntry is one completed cell as recorded in the file.
type JournalEntry struct {
	Key      string          `json:"key"`
	Attempts int             `json:"attempts"`
	Value    json.RawMessage `json:"value"`
}

// loadResult carries what a load pass learned about the file.
type loadResult struct {
	done    map[string]json.RawMessage
	entries int
	// goodEnd is the byte offset just past the last fully terminated,
	// parseable line; anything beyond it is a torn tail.
	goodEnd int64
	size    int64
}

// torn reports whether the file ends in a partial write.
func (lr loadResult) torn() bool { return lr.size > lr.goodEnd }

// loadCheckpoint reads entries from path via fsys. A missing file is an
// empty checkpoint, not an error. A torn final line — unparsable bytes,
// or a line missing its terminating newline (both are what an
// interrupted append leaves) — is reported via loadResult.torn, not an
// error; an unparsable line anywhere else is corruption and fails the
// load.
func loadCheckpoint(fsys FS, path, sweep string) (loadResult, error) {
	lr := loadResult{done: map[string]json.RawMessage{}}
	f, err := fsys.Open(path)
	if os.IsNotExist(err) {
		return lr, nil
	}
	if err != nil {
		return lr, err
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 1<<16)
	lineNo := 0
	var offset int64
	var pendingErr error // a bad line is fatal only if another line follows
	for {
		line, err := r.ReadBytes('\n')
		if len(line) == 0 && err == io.EOF {
			break
		}
		if err != nil && err != io.EOF {
			return lr, err
		}
		terminated := err == nil // ReadBytes returns io.EOF on an unterminated tail
		n := int64(len(line))
		if terminated {
			line = line[:len(line)-1]
		}
		if len(line) == 0 {
			// A blank terminated line is tolerated filler.
			if terminated {
				offset += n
				lr.goodEnd = offset
				continue
			}
			break
		}
		lineNo++
		if pendingErr != nil {
			return lr, pendingErr
		}
		bad := func(msg string) {
			pendingErr = fmt.Errorf("runner: checkpoint %s line %d %s", path, lineNo, msg)
		}
		if lineNo == 1 {
			if !terminated {
				// A torn header means the previous run died before the
				// first entry completed: the file holds nothing
				// recoverable, but it is ours to truncate.
				bad("is a torn header")
				offset += n
				continue
			}
			var hdr checkpointHeader
			if err := json.Unmarshal(line, &hdr); err != nil {
				// A fully written non-header first line is not an
				// interrupted append — this is some other file; refuse
				// to touch it.
				return lr, fmt.Errorf("runner: %s is not a checkpoint file: %w", path, err)
			}
			if hdr.Format != checkpointFormat || hdr.Version != checkpointVersion {
				return lr, fmt.Errorf("runner: %s: unsupported checkpoint format %q version %d", path, hdr.Format, hdr.Version)
			}
			if hdr.Sweep != sweep {
				return lr, fmt.Errorf("runner: checkpoint %s belongs to sweep %q, not %q — refusing to mix results", path, hdr.Sweep, sweep)
			}
			offset += n
			lr.goodEnd = offset
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" || !terminated {
			// Unparsable, or parseable but missing its newline: either
			// way this entry's append never completed. Fatal only if
			// more lines follow (true mid-file corruption).
			bad("is corrupt")
			offset += n
			continue
		}
		offset += n
		lr.goodEnd = offset
		lr.done[e.Key] = e.Value
		lr.entries++
		if err == io.EOF {
			break
		}
	}
	lr.size = offset
	// pendingErr still set here means the bad line was the last one: an
	// interrupted append. The caller truncates it and re-runs that cell.
	return lr, nil
}

// Journal is an append-only JSONL record of completed sweep cells: the
// runner's checkpoint file and the distributed coordinator's result
// journal are the same mechanism. Open with OpenJournal; Record each
// completed cell; a resumed open returns the recovered entries.
//
// A Journal is not safe for concurrent use; both its users call it from
// a single collector goroutine.
type Journal struct {
	f    File
	path string
}

// OpenJournal opens path for a sweep on the real filesystem. See
// OpenJournalFS for the behaviour contract; the variants differ only in
// which FS backs the file.
func OpenJournal(path, sweep string, resume bool) (*Journal, map[string]json.RawMessage, error) {
	return OpenJournalFS(OSFS, path, sweep, resume)
}

// OpenJournalFS opens path for a sweep through fsys. With resume=true it
// first loads the recorded entries (returning them keyed by cell),
// truncates any torn trailing write, and positions for append; with
// resume=false it truncates the file entirely and writes a fresh header.
// The sweep name is pinned in the header: resuming a journal written
// under a different name is refused.
func OpenJournalFS(fsys FS, path, sweep string, resume bool) (*Journal, map[string]json.RawMessage, error) {
	if !resume {
		f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, nil, err
		}
		if err := writeHeader(f, sweep); err != nil {
			f.Close()
			return nil, nil, err
		}
		return &Journal{f: f, path: path}, map[string]json.RawMessage{}, nil
	}

	lr, err := loadCheckpoint(fsys, path, sweep)
	if err != nil {
		return nil, nil, err
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if lr.torn() {
		// Cut the interrupted append before it can splice onto the next
		// entry; the affected cell is simply re-run.
		if err := f.Truncate(lr.goodEnd); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("runner: truncating torn tail of %s: %w", path, err)
		}
		mCkptTornTails.Inc()
		obs.Logger("runner").Warn("checkpoint ended in a torn write; truncated and will re-run that cell",
			"checkpoint", path, "kept_entries", lr.entries,
			"dropped_bytes", lr.size-lr.goodEnd)
	}
	if _, err := f.Seek(lr.goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	if lr.goodEnd == 0 {
		// Empty (or header-torn) file: start it properly.
		if err := writeHeader(f, sweep); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return &Journal{f: f, path: path}, lr.done, nil
}

func writeHeader(f File, sweep string) error {
	b, err := json.Marshal(checkpointHeader{Format: checkpointFormat, Version: checkpointVersion, Sweep: sweep})
	if err != nil {
		return err
	}
	_, err = f.Write(append(b, '\n'))
	return err
}

// Record appends one completed cell and fsyncs, so the entry survives a
// process kill. Cells cost seconds to hours each; one fsync per cell is
// noise next to that.
func (j *Journal) Record(key string, attempts int, value json.RawMessage) error {
	b, err := json.Marshal(JournalEntry{Key: key, Attempts: attempts, Value: value})
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	mCkptFlushes.Inc()
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the underlying file. Entries are already durable (each
// Record fsyncs), so Close loses nothing.
func (j *Journal) Close() error { return j.f.Close() }
