package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// Checkpoint file format: one JSON document per line.
//
//	{"format":"tevot-checkpoint","version":1,"sweep":"<name>"}
//	{"key":"fig3/INT_ADD/random_data/v0.810/t0","attempts":1,"value":{...}}
//	...
//
// The header pins the sweep identity (name + scale fingerprint) so a
// checkpoint cannot be resumed against a differently sized sweep. One
// entry is appended and fsynced per completed cell, so a killed process
// loses at most the in-flight cells; a partial final line (the write the
// kill interrupted) is tolerated and ignored on load. Only successes are
// recorded — failed cells are re-attempted on resume (at-least-once
// delivery per cell).

const (
	checkpointFormat  = "tevot-checkpoint"
	checkpointVersion = 1
)

type checkpointHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Sweep   string `json:"sweep"`
}

type checkpointEntry struct {
	Key      string          `json:"key"`
	Attempts int             `json:"attempts"`
	Value    json.RawMessage `json:"value"`
}

// loadCheckpoint reads entries from path. A missing file is an empty
// checkpoint, not an error. A final unparsable line is discarded (the
// previous run died mid-write); an unparsable line anywhere else is
// corruption and fails the load.
func loadCheckpoint(path, sweep string) (map[string]json.RawMessage, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]json.RawMessage{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	done := make(map[string]json.RawMessage)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<26)
	lineNo := 0
	var pendingErr error // a bad line is fatal only if another line follows
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		lineNo++
		if pendingErr != nil {
			return nil, pendingErr
		}
		if lineNo == 1 {
			var hdr checkpointHeader
			if err := json.Unmarshal(line, &hdr); err != nil {
				return nil, fmt.Errorf("runner: %s is not a checkpoint file: %w", path, err)
			}
			if hdr.Format != checkpointFormat || hdr.Version != checkpointVersion {
				return nil, fmt.Errorf("runner: %s: unsupported checkpoint format %q version %d", path, hdr.Format, hdr.Version)
			}
			if hdr.Sweep != sweep {
				return nil, fmt.Errorf("runner: checkpoint %s belongs to sweep %q, not %q — refusing to mix results", path, hdr.Sweep, sweep)
			}
			continue
		}
		var e checkpointEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			pendingErr = fmt.Errorf("runner: checkpoint %s line %d is corrupt", path, lineNo)
			continue
		}
		done[e.Key] = e.Value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// pendingErr still set here means the corrupt line was the last one:
	// an interrupted append. Drop it and resume from the prior entries.
	return done, nil
}

// checkpointWriter appends completed cells to the checkpoint file. It is
// only ever used from the collector goroutine, so it needs no locking.
type checkpointWriter struct {
	f *os.File
}

// openCheckpoint opens path for appending (resume) or truncates it and
// writes a fresh header (new sweep).
func openCheckpoint(path, sweep string, resume bool) (*checkpointWriter, error) {
	if resume {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		if st.Size() > 0 {
			return &checkpointWriter{f: f}, nil
		}
		// Resuming onto an empty/new file: fall through to write a header.
		if err := writeHeader(f, sweep); err != nil {
			f.Close()
			return nil, err
		}
		return &checkpointWriter{f: f}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := writeHeader(f, sweep); err != nil {
		f.Close()
		return nil, err
	}
	return &checkpointWriter{f: f}, nil
}

func writeHeader(f *os.File, sweep string) error {
	b, err := json.Marshal(checkpointHeader{Format: checkpointFormat, Version: checkpointVersion, Sweep: sweep})
	if err != nil {
		return err
	}
	_, err = f.Write(append(b, '\n'))
	return err
}

// record appends one completed cell and fsyncs, so the entry survives a
// process kill. Cells cost seconds to hours each; one fsync per cell is
// noise next to that.
func (w *checkpointWriter) record(key string, attempts int, value json.RawMessage) error {
	b, err := json.Marshal(checkpointEntry{Key: key, Attempts: attempts, Value: value})
	if err != nil {
		return err
	}
	if _, err := w.f.Write(append(b, '\n')); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	mCkptFlushes.Inc()
	return nil
}

func (w *checkpointWriter) close() error { return w.f.Close() }
