package runner

import (
	"sync/atomic"
	"time"

	"tevot/internal/obs"
)

// Observability: the runner maintains cumulative metrics in the obs
// registry (visible at /debug/vars and in the run manifest) plus a live
// per-sweep progress view served by the CLIs' -debug-addr /progress
// route — which corner cells are done, how much retry budget is burned,
// and an ETA extrapolated from the trailing cell-latency histogram.
var (
	mCellsTotal    = obs.NewCounter("runner.cells_total")
	mCellsOK       = obs.NewCounter("runner.cells_ok")
	mCellsFailed   = obs.NewCounter("runner.cells_failed")
	mCellsResumed  = obs.NewCounter("runner.cells_resumed")
	mAttempts      = obs.NewCounter("runner.attempts")
	mRetries       = obs.NewCounter("runner.retries")
	mPanics        = obs.NewCounter("runner.panics")
	mTimeouts      = obs.NewCounter("runner.timeouts")
	mCkptFlushes   = obs.NewCounter("runner.checkpoint_flushes")
	mCkptTornTails = obs.NewCounter("runner.checkpoint_torn_tails")
	hCellSeconds   = obs.NewHistogram("runner.cell_seconds", obs.DurationBuckets)
)

// progressState is the live state of the most recent sweep; counters
// are atomics so workers update them without coordination.
type progressState struct {
	sweep       string
	total       int64
	workers     int64
	retryBudget int64
	start       time.Time

	resumed   atomic.Int64
	done      atomic.Int64
	failed    atomic.Int64
	retried   atomic.Int64
	running   atomic.Int64
	sumCellNs atomic.Int64
	finished  atomic.Bool
}

// liveSweep points at the most recent sweep's state (nil before any
// sweep runs in the process). The pointer swap is the only write
// coordination needed: a /progress reader either sees the old sweep's
// final state or the new one's live state.
var liveSweep atomic.Pointer[progressState]

// Progress is the /progress JSON document. All durations are seconds.
type Progress struct {
	// Status is "idle" (no sweep yet), "running", or "done".
	Status  string `json:"status"`
	Sweep   string `json:"sweep,omitempty"`
	Workers int    `json:"workers,omitempty"`

	Total   int `json:"total"`
	Resumed int `json:"resumed"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Running int `json:"running"`

	// Retried is the retry budget spent (extra attempts executed);
	// RetryBudget is the total available (retries-per-cell × cells).
	Retried     int `json:"retried"`
	RetryBudget int `json:"retry_budget"`

	ElapsedSec  float64 `json:"elapsed_sec"`
	CellsPerSec float64 `json:"cells_per_sec"`
	MeanCellSec float64 `json:"mean_cell_sec"`
	P50CellSec  float64 `json:"p50_cell_sec"`
	P95CellSec  float64 `json:"p95_cell_sec"`
	// ETASec extrapolates the remaining cells from the trailing mean
	// cell latency across the worker pool (0 when unknown or done).
	ETASec float64 `json:"eta_sec"`

	Stages []obs.StageStat `json:"stages,omitempty"`
}

// LiveProgress snapshots the most recent sweep for the /progress
// endpoint. It is safe to call from any goroutine at any time.
func LiveProgress() any {
	st := liveSweep.Load()
	if st == nil {
		return Progress{Status: "idle", Stages: obs.Stages()}
	}
	done := int(st.done.Load())
	failed := int(st.failed.Load())
	resumed := int(st.resumed.Load())
	p := Progress{
		Status:      "running",
		Sweep:       st.sweep,
		Workers:     int(st.workers),
		Total:       int(st.total),
		Resumed:     resumed,
		Done:        done,
		Failed:      failed,
		Running:     int(st.running.Load()),
		Retried:     int(st.retried.Load()),
		RetryBudget: int(st.retryBudget),
		ElapsedSec:  time.Since(st.start).Seconds(),
		P50CellSec:  hCellSeconds.Quantile(0.50),
		P95CellSec:  hCellSeconds.Quantile(0.95),
		Stages:      obs.Stages(),
	}
	if st.finished.Load() {
		p.Status = "done"
	}
	executed := done + failed
	if executed > 0 {
		p.MeanCellSec = float64(st.sumCellNs.Load()) / 1e9 / float64(executed)
		p.CellsPerSec = float64(executed) / p.ElapsedSec
	}
	remaining := int(st.total) - resumed - executed
	if remaining > 0 && p.MeanCellSec > 0 && p.Status == "running" {
		w := float64(st.workers)
		if w < 1 {
			w = 1
		}
		p.ETASec = float64(remaining) * p.MeanCellSec / w
	}
	return p
}
