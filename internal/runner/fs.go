package runner

import (
	"io/fs"
	"os"
)

// FS is the narrow slice of filesystem behaviour the checkpoint/journal
// layer needs. It exists so a fault-injection layer (internal/chaos) can
// sit between the journal and the real disk and exercise the torn-tail,
// short-write, ENOSPC, and fsync-failure recovery paths that are
// otherwise only reachable by killing processes at just the right
// instant. Production code uses OSFS and never pays an extra branch.
type FS interface {
	// Open opens a file read-only (os.Open semantics: a missing file
	// returns an error satisfying os.IsNotExist).
	Open(name string) (File, error)
	// OpenFile opens with the given flag/perm (os.OpenFile semantics).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
}

// File is the file handle surface the journal uses: sequential reads on
// load, append writes + Sync per entry, Truncate/Seek for torn-tail
// repair.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Close() error
}

// OSFS is the passthrough FS backed by the real os package. It is the
// default everywhere an FS is optional.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}
