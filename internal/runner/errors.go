package runner

import (
	"context"
	"errors"
	"fmt"
)

// Class is the runner's failure taxonomy: it decides whether a failed
// attempt is worth retrying.
type Class int

const (
	// Permanent failures are deterministic — retrying the same cell with
	// the same inputs will fail the same way (bad configuration, a panic
	// in the simulation kernel, a validation error).
	Permanent Class = iota
	// Transient failures may succeed on a later attempt (resource
	// pressure, a deadline missed under load, an injected test fault).
	Transient
)

func (c Class) String() string {
	if c == Transient {
		return "transient"
	}
	return "permanent"
}

// TransientError wraps an error to mark it as retryable. Fault injection
// and any task that knows its failure is load-dependent use this.
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }
func (e *TransientError) Unwrap() error { return e.Err }

// MarkTransient wraps err so DefaultClassify treats it as retryable.
// A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// PanicError is a panic recovered inside a task, converted into a value
// so one bad cell cannot take down the whole sweep process.
type PanicError struct {
	Value string // the panic value, stringified
	Stack string // goroutine stack at recovery
}

func (e *PanicError) Error() string { return "task panicked: " + e.Value }

// CellError records the final failure of one cell after all attempts.
type CellError struct {
	Key      string
	Attempts int
	Err      error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("cell %s failed after %d attempt(s): %v", e.Key, e.Attempts, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// DefaultClassify is the retry policy used when Config.Classify is nil:
//
//   - TransientError and deadline overruns are Transient (the next
//     attempt may land on a less loaded machine or a longer budget);
//   - cancellation, panics, and everything else are Permanent (the sweep
//     is shutting down, or the failure is deterministic).
func DefaultClassify(err error) Class {
	var te *TransientError
	if errors.As(err, &te) {
		return Transient
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return Transient
	}
	return Permanent
}
