package runner

import (
	"fmt"

	"tevot/internal/backoff"
)

// FaultFn is the runner's fault-injection hook. It is consulted before
// each attempt of each task; a non-nil return aborts that attempt with
// the returned error instead of running the task. Injection decisions
// must depend only on (key, attempt) so that runs are deterministic
// regardless of worker scheduling.
type FaultFn func(key string, attempt int) error

// NewFaultInjector returns a deterministic FaultFn: a `rate` fraction of
// cell keys (selected by seeded hash, independent of submission or
// scheduling order) fail their first 1–2 attempts with a TransientError,
// then succeed. With Retries >= 2 a sweep under injection must therefore
// complete with zero lost cells — the property CI asserts.
func NewFaultInjector(seed int64, rate float64) FaultFn {
	if rate <= 0 {
		return nil
	}
	return func(key string, attempt int) error {
		h := keyHash(seed, key)
		// Map the hash to [0,1) and pick the faulty fraction.
		if float64(h%1e9)/1e9 >= rate {
			return nil
		}
		// Faulty cells fail their first failCount attempts.
		failCount := 1 + int(h>>32)%2
		if attempt < failCount {
			return MarkTransient(fmt.Errorf("injected fault on %s (attempt %d of %d)", key, attempt+1, failCount))
		}
		return nil
	}
}

// keyHash folds the seed and key through the shared backoff.Hash,
// keeping injection decisions on the same stable keyed hash as the
// retry jitter (the two must stay decorrelated only via their seeds).
func keyHash(seed int64, key string) uint64 { return backoff.Hash(seed, key) }
