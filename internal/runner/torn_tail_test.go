// Exhaustive torn-tail recovery: the final journal record is cut at
// EVERY byte offset (via the chaos disk plane's pinned torn-write
// fault) and the resume path must recover all preceding entries,
// re-run only the torn cell, and leave a journal that appends cleanly.
// Lives in package runner_test because internal/chaos (transitively)
// imports runner.
package runner_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tevot/internal/chaos"
	"tevot/internal/runner"
)

const tornSweep = "torn-tail-sweep v1"

func tornKey(i int) string { return fmt.Sprintf("cell-%02d", i) }

func tornValue(i int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"row":%d}`, i))
}

// seedJournal writes a header plus entries 0..n-1 on the real
// filesystem and returns the path.
func seedJournal(t *testing.T, dir string, name string, n int) string {
	t.Helper()
	path := filepath.Join(dir, name)
	j, _, err := runner.OpenJournal(path, tornSweep, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.Record(tornKey(i), 1, tornValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTornTailRecoveryAtEveryOffset(t *testing.T) {
	const entries = 3 // entries 0..1 durable; entry 2 is the torn one
	dir := t.TempDir()

	// Measure the final record's on-disk length and the durable prefix
	// size from one intact journal.
	intact := seedJournal(t, dir, "intact.jsonl", entries)
	full, err := os.ReadFile(intact)
	if err != nil {
		t.Fatal(err)
	}
	var rec runner.JournalEntry
	rec.Key, rec.Attempts, rec.Value = tornKey(entries-1), 1, tornValue(entries-1)
	recBytes, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(recBytes) + 1 // + newline
	durable := int64(len(full) - recLen)

	for cut := 0; cut < recLen; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut-%02d", cut), func(t *testing.T) {
			// Build a journal whose last append tore after `cut` bytes:
			// write entries 0..n-2 honestly, then append the final record
			// through the chaos plane's pinned torn-write (which keeps the
			// prefix and lies success, exactly what a kill mid-append
			// leaves on disk).
			path := seedJournal(t, dir, fmt.Sprintf("cut%02d.jsonl", cut), entries-1)
			cfs := chaos.NewFS(int64(cut), []chaos.FSRule{
				{Kind: chaos.FaultTornWrite, Prob: 1, MaxFires: 1, CutAt: cut},
			})
			j, done, err := runner.OpenJournalFS(cfs, path, tornSweep, true)
			if err != nil {
				t.Fatalf("chaos open: %v", err)
			}
			if len(done) != entries-1 {
				t.Fatalf("chaos open recovered %d entries, want %d", len(done), entries-1)
			}
			if err := j.Record(tornKey(entries-1), 1, tornValue(entries-1)); err != nil {
				t.Fatalf("torn write must lie success, got %v", err)
			}
			j.Close()
			if st, err := os.Stat(path); err != nil || st.Size() != durable+int64(cut) {
				t.Fatalf("on-disk size = %v (err %v), want %d", st.Size(), err, durable+int64(cut))
			}

			// Resume on the real filesystem: all durable entries recovered,
			// the torn cell absent, and the tear truncated away.
			j2, done2, err := runner.OpenJournal(path, tornSweep, true)
			if err != nil {
				t.Fatalf("resume at cut %d: %v", cut, err)
			}
			if len(done2) != entries-1 {
				t.Fatalf("resume recovered %d entries, want %d", len(done2), entries-1)
			}
			for i := 0; i < entries-1; i++ {
				if string(done2[tornKey(i)]) != string(tornValue(i)) {
					t.Fatalf("entry %d corrupted across tear: %q", i, done2[tornKey(i)])
				}
			}
			if _, ok := done2[tornKey(entries-1)]; ok {
				t.Fatalf("torn cell %q survived a %d-byte tear", tornKey(entries-1), cut)
			}

			// Re-run the torn cell; the journal must now be whole and
			// byte-identical to the intact one.
			if err := j2.Record(tornKey(entries-1), 1, tornValue(entries-1)); err != nil {
				t.Fatalf("re-append after tear: %v", err)
			}
			j2.Close()
			repaired, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(repaired) != string(full) {
				t.Fatalf("repaired journal differs from intact journal:\n%q\nvs\n%q", repaired, full)
			}
		})
	}

	// Control: a full-length final record is not a tear.
	_, done, err := runner.OpenJournal(intact, tornSweep, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != entries {
		t.Fatalf("intact resume recovered %d entries, want %d", len(done), entries)
	}
}
