package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// squareTasks builds n deterministic cells: cell "cell-i" returns i*i.
func squareTasks(n int) []Task[int] {
	tasks := make([]Task[int], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task[int]{
			Key: fmt.Sprintf("cell-%03d", i),
			Run: func(ctx context.Context) (int, error) { return i * i, nil },
		}
	}
	return tasks
}

func wantSquares(t *testing.T, results map[string]int, n int) {
	t.Helper()
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("cell-%03d", i)
		if results[key] != i*i {
			t.Fatalf("%s = %d, want %d", key, results[key], i*i)
		}
	}
}

// TestInjectedTransientFaultsComplete: a sweep with seeded transient
// faults injected into a fraction of cells completes with zero lost
// cells via retries — ISSUE acceptance criterion (a).
func TestInjectedTransientFaultsComplete(t *testing.T) {
	const n = 60
	cfg := Config{
		Name:    "squares",
		Workers: 4,
		Retries: 2,
		Backoff: time.Millisecond,
		Seed:    7,
		Inject:  NewFaultInjector(7, 0.25),
	}
	results, rep, err := Run(context.Background(), cfg, squareTasks(n))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Skipped != 0 {
		t.Fatalf("lost cells: %s", rep.Summary())
	}
	if rep.Succeeded != n {
		t.Fatalf("succeeded %d, want %d", rep.Succeeded, n)
	}
	if rep.Retried == 0 {
		t.Fatal("no retries recorded — injector did not fire")
	}
	wantSquares(t, results, n)
	if rep.Err() != nil {
		t.Fatalf("Report.Err() = %v on a clean sweep", rep.Err())
	}
}

// TestFaultInjectorDeterministic: the injected-fault set depends only on
// (seed, key, attempt), never on scheduling.
func TestFaultInjectorDeterministic(t *testing.T) {
	a := NewFaultInjector(42, 0.3)
	b := NewFaultInjector(42, 0.3)
	other := NewFaultInjector(43, 0.3)
	same, diff := 0, 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		for attempt := 0; attempt < 3; attempt++ {
			ea, eb := a(key, attempt), b(key, attempt)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("injector not deterministic at (%s, %d)", key, attempt)
			}
			if (ea == nil) != (other(key, attempt) == nil) {
				diff++
			} else {
				same++
			}
		}
	}
	if diff == 0 {
		t.Fatal("different seeds injected identical fault sets")
	}
	// Injected faults must classify as transient.
	if err := a("k-probe", 0); err != nil && DefaultClassify(err) != Transient {
		t.Fatalf("injected fault classified as %v", DefaultClassify(err))
	}
	_ = same
}

// TestDeadlineDoesNotStallPool: a task exceeding its deadline is
// cancelled, recorded as failed, and the rest of the sweep completes —
// ISSUE acceptance criterion (b).
func TestDeadlineDoesNotStallPool(t *testing.T) {
	const n = 12
	tasks := make([]Task[int], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task[int]{
			Key: fmt.Sprintf("cell-%03d", i),
			Run: func(ctx context.Context) (int, error) {
				if i == 3 {
					// Cooperative slow task: blocks until cancelled.
					<-ctx.Done()
					return 0, ctx.Err()
				}
				if i == 7 {
					// Uncooperative slow task: ignores ctx entirely.
					time.Sleep(300 * time.Millisecond)
					return i, nil
				}
				return i * i, nil
			},
		}
	}
	start := time.Now()
	cfg := Config{Name: "deadline", Workers: 2, TaskTimeout: 30 * time.Millisecond, Retries: 0}
	results, rep, err := Run(context.Background(), cfg, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("pool stalled: sweep took %v", elapsed)
	}
	if rep.Failed != 2 {
		t.Fatalf("failed = %d, want 2:\n%s", rep.Failed, rep.Summary())
	}
	for _, f := range rep.Failures {
		if !errors.Is(f.Err, context.DeadlineExceeded) {
			t.Fatalf("failure %s is %v, want deadline exceeded", f.Key, f.Err)
		}
	}
	if rep.Succeeded != n-2 || len(results) != n-2 {
		t.Fatalf("succeeded = %d (results %d), want %d", rep.Succeeded, len(results), n-2)
	}
	if rep.Err() == nil {
		t.Fatal("Report.Err() = nil despite failures")
	}
}

// TestPanicIsolation: a panic deep inside one cell becomes a typed
// per-cell error; the process and the rest of the sweep survive.
func TestPanicIsolation(t *testing.T) {
	tasks := squareTasks(8)
	tasks[5].Run = func(ctx context.Context) (int, error) {
		var s []int
		return s[3], nil // index out of range
	}
	results, rep, err := Run(context.Background(), Config{Name: "panics", Workers: 3}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Succeeded != 7 || len(results) != 7 {
		t.Fatalf("unexpected outcome:\n%s", rep.Summary())
	}
	var pe *PanicError
	if !errors.As(rep.Failures[0].Err, &pe) {
		t.Fatalf("failure is %T (%v), want *PanicError", rep.Failures[0].Err, rep.Failures[0].Err)
	}
	if !strings.Contains(pe.Value, "index out of range") || pe.Stack == "" {
		t.Fatalf("panic not captured: %q", pe.Value)
	}
	// Panics are deterministic: they must not be retried.
	if rep.Retried != 0 {
		t.Fatalf("panicking cell was retried %d times", rep.Retried)
	}
}

// TestPermanentErrorNotRetried: only transient failures consume retry
// budget.
func TestPermanentErrorNotRetried(t *testing.T) {
	var calls atomic.Int32
	tasks := []Task[int]{{
		Key: "perm",
		Run: func(ctx context.Context) (int, error) {
			calls.Add(1)
			return 0, errors.New("deterministic validation failure")
		},
	}}
	_, rep, err := Run(context.Background(), Config{Name: "perm", Retries: 5, Backoff: time.Millisecond}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("permanent failure attempted %d times, want 1", got)
	}
	if rep.Failed != 1 || rep.Retried != 0 {
		t.Fatalf("unexpected report:\n%s", rep.Summary())
	}
}

// TestRetryExhaustion: a cell that is transient forever fails after
// Retries+1 attempts and is recorded, not lost.
func TestRetryExhaustion(t *testing.T) {
	var calls atomic.Int32
	tasks := []Task[int]{{
		Key: "always-transient",
		Run: func(ctx context.Context) (int, error) {
			calls.Add(1)
			return 0, MarkTransient(errors.New("still down"))
		},
	}}
	_, rep, err := Run(context.Background(), Config{Name: "exhaust", Retries: 3, Backoff: time.Millisecond}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("attempts = %d, want 4", got)
	}
	if rep.Failed != 1 || rep.Failures[0].Attempts != 4 || rep.Retried != 3 {
		t.Fatalf("unexpected report:\n%s", rep.Summary())
	}
}

// TestCancellationSkipsRemaining: cancelling the sweep context stops
// dispatch promptly; unattempted cells are reported as skipped.
func TestCancellationSkipsRemaining(t *testing.T) {
	const n = 40
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	tasks := make([]Task[int], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task[int]{
			Key: fmt.Sprintf("cell-%03d", i),
			Run: func(ctx context.Context) (int, error) {
				if started.Add(1) == 5 {
					cancel()
				}
				time.Sleep(2 * time.Millisecond)
				return i, nil
			},
		}
	}
	_, rep, err := Run(ctx, Config{Name: "cancel", Workers: 2}, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !rep.Interrupted {
		t.Fatal("report not marked interrupted")
	}
	if rep.Skipped == 0 {
		t.Fatalf("no cells skipped after cancellation:\n%s", rep.Summary())
	}
	if rep.Resumed+rep.Succeeded+rep.Failed+rep.Skipped != n {
		t.Fatalf("report does not add up:\n%s", rep.Summary())
	}
}

// TestDuplicateKeysRejected: duplicate cell keys are an infrastructure
// error, detected before any work runs.
func TestDuplicateKeysRejected(t *testing.T) {
	tasks := squareTasks(3)
	tasks[2].Key = tasks[0].Key
	if _, _, err := Run(context.Background(), Config{}, tasks); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	tasks = squareTasks(2)
	tasks[1].Key = ""
	if _, _, err := Run(context.Background(), Config{}, tasks); err == nil {
		t.Fatal("empty key accepted")
	}
}

// TestBackoffDeterministicAndBounded: the jittered backoff schedule is a
// pure function of (seed, key, attempt) and respects MaxBackoff.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	cfg := Config{Backoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 3}.withDefaults()
	for attempt := 0; attempt < 8; attempt++ {
		a := backoffDelay(cfg, "k", attempt)
		b := backoffDelay(cfg, "k", attempt)
		if a != b {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", attempt, a, b)
		}
		if a < cfg.Backoff/2 || a > cfg.MaxBackoff*3/2 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, a, cfg.Backoff/2, cfg.MaxBackoff*3/2)
		}
	}
	if backoffDelay(cfg, "k1", 1) == backoffDelay(cfg, "k2", 1) {
		t.Log("note: two keys share a jitter bucket (possible, not fatal)")
	}
}
