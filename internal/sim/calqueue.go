package sim

import "slices"

// calQueue is the fast kernel's pending-event scheduler: a calendar
// queue (bucketed time wheel) replacing the binary min-heap. Event
// times are hashed into fixed-width buckets sized from the netlist's
// delay range; draining walks buckets in virtual-time order, sorts each
// bucket by the deterministic (t, net) key when the drain enters it,
// and consumes it through a position cursor.
//
// Correctness rests on the bucket map b(t) = int64(t/width) being
// non-decreasing in t with equal times sharing a bucket: the earliest
// pending time always lives in the first non-empty bucket, every event
// at exactly that time lives in that same bucket, and the sorted drain
// therefore reproduces the binary heap's (t, net) pop order exactly.
//
// Scheduling from a batch at time t pushes events at t + d with
// d >= width, which lands in a bucket after the current one — except
// in a floating-point corner: rounding in the bucket map can park
// t + d in the bucket currently being drained. push detects that case
// (target bucket == cur while cur is sorted) and insertion-sorts the
// event into the unconsumed tail, past the cursor — legal because
// t + d is strictly greater than the batch time the cursor has
// consumed up to. No other push can target a sorted bucket.
//
// The wheel spans nbuckets*width of future time. Events beyond that
// horizon (possible only when the netlist's max/min delay ratio exceeds
// the bucket cap) fall back to an unsorted overflow list; overflowMin
// tracks the earliest overflow bucket, and due overflow migrates into
// the wheel before each bucket entry, so an overflow event can never be
// leapfrogged by a wheel event.
type calQueue struct {
	width   float64   // bucket width, derived from the minimum gate delay
	invW    float64   // 1/width, multiplied instead of divided per push
	mask    int64     // nbuckets-1; nbuckets is a power of two
	buckets [][]event // ring of event buckets, indexed by bucket&mask

	cur    int64 // virtual bucket currently being drained
	pos    int   // consume position inside buckets[cur&mask]
	sorted bool  // buckets[cur&mask] has been sorted and entered

	count  int // all queued events, including later-cancelled ones
	wheelN int // events currently in the wheel (count - len(over))

	over    []event // far-future overflow, unsorted
	overMin int64   // earliest bucket present in over; valid when len(over) > 0
}

// maxBuckets caps the wheel so a pathological delay ratio cannot
// balloon the ring; events past the capped horizon use the overflow.
const maxBuckets = 1 << 12

// init sizes the wheel from the netlist's delay range [minD, maxD]. The
// width is a fraction of the minimum delay (fewer events per bucket,
// cheaper sorts); the horizon must cover the farthest a single gate
// delay can schedule ahead of the drain point, up to the bucket cap.
func (q *calQueue) init(minD, maxD float64) {
	q.width = minD / 2
	q.invW = 1 / q.width
	need := int64(maxD/q.width) + 2
	n := int64(8)
	for n < need && n < maxBuckets {
		n <<= 1
	}
	q.mask = n - 1
	q.buckets = make([][]event, n)
}

// reset empties the queue for a new cycle. Buckets were already
// truncated to zero length as the previous cycle drained them.
func (q *calQueue) reset() {
	q.cur, q.pos, q.count, q.wheelN = 0, 0, 0, 0
	q.sorted = false
	q.over = q.over[:0]
}

// bucketOf maps a time to its virtual bucket: non-decreasing in t, and
// equal times always share a bucket.
func (q *calQueue) bucketOf(t float64) int64 { return int64(t * q.invW) }

// push enqueues an event.
func (q *calQueue) push(e event) {
	b := q.bucketOf(e.t)
	q.count++
	if b-q.cur > q.mask {
		// Beyond the wheel horizon: overflow.
		if len(q.over) == 0 || b < q.overMin {
			q.overMin = b
		}
		q.over = append(q.over, e)
		return
	}
	q.wheelN++
	s := b & q.mask
	q.buckets[s] = append(q.buckets[s], e)
	if b == q.cur && q.sorted {
		// Rounded down into the bucket being drained: keep the
		// unconsumed tail sorted by bubbling the event into place,
		// never crossing the consume cursor.
		bk := q.buckets[s]
		for j := len(bk) - 1; j > q.pos; j-- {
			if bk[j-1].t < bk[j].t || (bk[j-1].t == bk[j].t && bk[j-1].net < bk[j].net) {
				break
			}
			bk[j-1], bk[j] = bk[j], bk[j-1]
		}
	}
}

// next positions the drain at the earliest pending event and reports
// whether one exists. After it returns true, bucket()[pos] is the next
// event in global (t, net) order.
func (q *calQueue) next() bool {
	for {
		b := q.buckets[q.cur&q.mask]
		if q.pos < len(b) {
			if !q.sorted {
				q.sortCur()
				q.sorted = true
			}
			return true
		}
		// The current bucket is exhausted: truncate it before anything
		// else, so its slot is clean when the ring wraps onto it or when
		// the next cycle reuses it. (Only the current bucket is ever
		// partially consumed, so this keeps every passed slot empty.)
		if len(b) > 0 {
			q.buckets[q.cur&q.mask] = b[:0]
		}
		if q.count == 0 {
			return false
		}
		q.pos = 0
		q.sorted = false
		if q.wheelN == 0 {
			// Everything pending is far-future: jump the wheel to it.
			q.cur = q.overMin
			q.migrate()
			continue
		}
		q.cur++
		// Overflow due within the next bucket's horizon must enter the
		// wheel before that bucket is sorted and entered.
		if len(q.over) > 0 && q.overMin-q.cur <= q.mask {
			q.migrate()
		}
	}
}

// bucket returns the bucket currently being drained; valid after next
// returned true, until the enclosing batch's evaluation pushes new
// events (which may grow this very bucket — re-fetch per batch).
func (q *calQueue) bucket() []event { return q.buckets[q.cur&q.mask] }

// take consumes the event at the drain position.
func (q *calQueue) take() event {
	e := q.buckets[q.cur&q.mask][q.pos]
	q.pos++
	q.count--
	q.wheelN--
	return e
}

// migrate moves every overflow event that now fits the wheel horizon
// ([cur, cur+mask]) into its bucket and recomputes overflowMin. Called
// only while the current bucket is unsorted (pos == 0), so migrated
// events may legally land there.
func (q *calQueue) migrate() {
	kept := q.over[:0]
	q.overMin = 0
	for _, e := range q.over {
		b := q.bucketOf(e.t)
		if b-q.cur > q.mask {
			if len(kept) == 0 || b < q.overMin {
				q.overMin = b
			}
			kept = append(kept, e)
			continue
		}
		q.wheelN++
		q.buckets[b&q.mask] = append(q.buckets[b&q.mask], e)
	}
	q.over = kept
}

// sortCur orders the current bucket by (t, net): insertion sort for the
// common small bucket, library sort above that. A cancelled and a
// rescheduled event for the same net at the same time compare equal,
// but the generation check at application time makes their relative
// order unobservable.
func (q *calQueue) sortCur() {
	b := q.buckets[q.cur&q.mask]
	if len(b) <= 24 {
		for i := 1; i < len(b); i++ {
			e := b[i]
			j := i - 1
			for j >= 0 && (b[j].t > e.t || (b[j].t == e.t && b[j].net > e.net)) {
				b[j+1] = b[j]
				j--
			}
			b[j+1] = e
		}
		return
	}
	// slices.SortFunc instantiates on the concrete element type: no
	// interface boxing, no reflect swapper, no allocation.
	slices.SortFunc(b, func(x, y event) int {
		if x.t != y.t {
			if x.t < y.t {
				return -1
			}
			return 1
		}
		return int(x.net) - int(y.net)
	})
}
