package sim

import (
	"math/rand"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/sta"
)

// BenchmarkCycle measures per-cycle event-driven simulation cost for
// each functional unit — the denominator of the paper's 100x speedup
// claim.
func BenchmarkCycle(b *testing.B) {
	for _, fu := range circuits.AllFUs {
		b.Run(fu.String(), func(b *testing.B) {
			nl, err := fu.Build()
			if err != nil {
				b.Fatal(err)
			}
			delays, err := sta.GateDelays(nl, cells.Corner{V: 0.85, T: 50}, sta.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			r, err := NewRunner(nl, delays)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			vecs := make([][]bool, 64)
			for i := range vecs {
				vecs[i] = circuits.EncodeOperands(rng.Uint32(), rng.Uint32())
			}
			// Warm the runner's scratch buffers over the whole vector set,
			// then assert the steady-state path allocates nothing.
			if _, err := r.Cycle(vecs[0], vecs[1]); err != nil {
				b.Fatal(err)
			}
			for pass := 0; pass < 2; pass++ {
				for _, v := range vecs {
					if _, err := r.Cycle(nil, v); err != nil {
						b.Fatal(err)
					}
				}
			}
			j := 0
			if allocs := testing.AllocsPerRun(len(vecs), func() {
				if _, err := r.Cycle(nil, vecs[j%len(vecs)]); err != nil {
					b.Fatal(err)
				}
				j++
			}); allocs != 0 {
				b.Fatalf("steady-state Cycle allocates %.1f/op; want 0", allocs)
			}
			b.ReportAllocs()
			events := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := r.Cycle(nil, vecs[i%len(vecs)])
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/cycle")
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}

// BenchmarkCycleMemo measures the transition-memo hit path: the same
// vector ring as BenchmarkCycle with every transition already cached, so
// each Cycle is key packing + one LRU lookup + rehydration. This is the
// per-cycle ceiling a fully repeating workload reaches; BenchmarkCycle
// is the all-miss floor.
func BenchmarkCycleMemo(b *testing.B) {
	for _, fu := range circuits.AllFUs {
		b.Run(fu.String(), func(b *testing.B) {
			r, vecs := steadyMemoRunner(b, fu)
			before := r.MemoStats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Cycle(nil, vecs[i%len(vecs)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			s := r.MemoStats()
			lookups := s.Hits + s.Misses - before.Hits - before.Misses
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
			b.ReportMetric(100*float64(s.Hits-before.Hits)/float64(lookups), "hit%")
		})
	}
}
