package sim

import "tevot/internal/netlist"

// The fast kernel: calendar-queue scheduling over the netlist's CSR
// view with truth-table LUT gate evaluation.
//
// Why it is bit-identical to the reference heap kernel:
//
//   - Scheduling. Both kernels drain pending events in (t, net) order:
//     the heap by its comparator, the calendar queue by extracting the
//     earliest time batch from its first non-empty bucket and
//     net-sorting it (see calQueue). Event timestamps are t + delays[g]
//     computed from the same t values in the same order, so every
//     float is bit-equal.
//   - Evaluation. A gate's LUT lookup (lut[g]>>inVal[g]&1) equals
//     Kind.Eval by construction (cells.TestLUTMatchesEval); inVal is
//     the packed image of val over the gate's input pins, updated by
//     one XOR per CSR fanout edge exactly when a net transitions.
//     Within a time batch all net transitions are applied before any
//     gate re-evaluates, in both kernels, and the mark/stamp
//     deduplication evaluates each gate once per batch, so the order
//     gates appear in the batch cannot affect the outcome.
//   - Inertial cancellation. The per-net generation counters and the
//     projected-value array are shared code: a pending transition dies
//     when its generation is stale, in either scheduler.
//
// The one observable difference allowed by design is none: Delay,
// Settled, Toggles, Events, and the observer stream all match. (The
// Events counter was permitted to drop during the rewrite, but the
// batch semantics above preserve it exactly, so the differential suite
// pins it too.)

// cycleFast runs one cycle's event processing with the calendar-queue
// kernel. The caller (Runner.Cycle) has already settled val, resynced
// inVal, reset the result, and seeded proj/initOut.
func (r *Runner) cycleFast(cur []bool) {
	nl := r.nl
	res := &r.res
	r.cq.reset()

	// Apply the new vector at t = 0 and seed the first gate batch.
	r.curStamp++
	r.batch = r.batch[:0]
	for i, pi := range nl.PrimaryInputs {
		if r.val[pi] != cur[i] {
			r.val[pi] = cur[i]
			r.proj[pi] = cur[i]
			res.Events++
			if r.observer != nil {
				r.observer(pi, 0, cur[i])
			}
			if oi := r.outIndex[pi]; oi != 0 {
				// Degenerate but legal: an input wired straight out.
				res.Toggles[oi-1] = append(res.Toggles[oi-1], Toggle{0, cur[i]})
			}
			r.fanout(pi)
		}
	}
	r.evalBatchFast(0)

	// Event loop: drain strictly increasing time batches. The calendar
	// queue hands out events in (t, net) order through its cursor; a
	// batch is the run of equal-t events at the cursor. No push happens
	// while the run is consumed (only evalBatchFast pushes), so the
	// bucket slice captured here cannot grow under the inner loop.
	for r.cq.next() {
		b := r.cq.bucket()
		t := b[r.cq.pos].t
		r.curStamp++
		r.batch = r.batch[:0]
		for r.cq.pos < len(b) && b[r.cq.pos].t == t {
			ev := r.cq.take()
			if ev.gen != r.gen[ev.net] {
				continue // cancelled by a later re-evaluation
			}
			if r.val[ev.net] == ev.val {
				continue
			}
			r.val[ev.net] = ev.val
			res.Events++
			if r.observer != nil {
				r.observer(ev.net, t, ev.val)
			}
			if oi := r.outIndex[ev.net]; oi != 0 {
				res.Toggles[oi-1] = append(res.Toggles[oi-1], Toggle{t, ev.val})
				if t > res.Delay {
					res.Delay = t
				}
			}
			r.fanout(ev.net)
		}
		r.evalBatchFast(t)
	}
}

// fanout propagates a net transition to its readers: one XOR per CSR
// edge keeps each reading gate's packed input bitset exact (a net wired
// to two pins of a gate flips both), and mark deduplicates the gate
// into the current evaluation batch.
func (r *Runner) fanout(net netlist.NetID) {
	csr := r.csr
	for e := csr.FanoutStart[net]; e < csr.FanoutStart[net+1]; e++ {
		edge := csr.FanoutEdges[e]
		g := netlist.GateID(edge >> 2)
		r.inVal[g] ^= 1 << uint(edge&3)
		r.mark(g)
	}
}

// evalBatchFast re-evaluates each gate marked at time t by a single LUT
// lookup and schedules inertial output transitions.
func (r *Runner) evalBatchFast(t float64) {
	csr := r.csr
	for _, gi := range r.batch {
		v := r.lut[gi]>>r.inVal[gi]&1 == 1
		out := netlist.NetID(csr.GateOut[gi])
		if v == r.proj[out] {
			continue
		}
		// Inertial model: cancel any pending event and either schedule
		// the new transition or swallow the pulse entirely.
		r.gen[out]++
		r.proj[out] = v
		if v != r.val[out] {
			r.cq.push(event{t: t + r.delays[gi], net: out, val: v, gen: r.gen[out]})
		}
	}
}

// rebuildInVals recomputes every gate's packed input bitset from the
// current net values — needed after an explicit-prev settle rewrites
// val outside event processing. Streaming cycles keep inVal incremental.
func (r *Runner) rebuildInVals() {
	csr := r.csr
	for gi := range r.inVal {
		base := gi * netlist.PinsPerGate
		var m uint8
		for j := 0; j < netlist.PinsPerGate; j++ {
			if in := csr.GateIn[base+j]; in >= 0 && r.val[in] {
				m |= 1 << uint(j)
			}
		}
		r.inVal[gi] = m
	}
}
