package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/netlist"
	"tevot/internal/sta"
)

// The differential suite: the fast calendar-queue/CSR/LUT kernel must be
// bit-identical to the reference heap kernel on every circuit — same
// Delay, Settled, Toggles, Events, and the same observer stream in the
// same order. These tests are the contract that lets the fast kernel
// replace the heap without a semantic audit of every caller.

// obsRecord is one observer callback, for stream comparison.
type obsRecord struct {
	net netlist.NetID
	t   float64
	val bool
}

// compareCycles fails on any observable divergence between a candidate
// CycleResult and the reference one.
func compareCycles(t *testing.T, label string, cycle int, got, want *CycleResult) {
	t.Helper()
	if got.Delay != want.Delay {
		t.Fatalf("cycle %d: Delay %s=%v ref=%v", cycle, label, got.Delay, want.Delay)
	}
	if got.Events != want.Events {
		t.Fatalf("cycle %d: Events %s=%d ref=%d", cycle, label, got.Events, want.Events)
	}
	for i := range want.Settled {
		if got.Settled[i] != want.Settled[i] {
			t.Fatalf("cycle %d: Settled[%d] %s=%v ref=%v", cycle, i, label, got.Settled[i], want.Settled[i])
		}
	}
	for oi := range want.Toggles {
		if len(got.Toggles[oi]) != len(want.Toggles[oi]) {
			t.Fatalf("cycle %d output %d: %d toggles %s, %d ref",
				cycle, oi, len(got.Toggles[oi]), label, len(want.Toggles[oi]))
		}
		for k := range want.Toggles[oi] {
			if got.Toggles[oi][k] != want.Toggles[oi][k] {
				t.Fatalf("cycle %d output %d toggle %d: %s=%+v ref=%+v",
					cycle, oi, k, label, got.Toggles[oi][k], want.Toggles[oi][k])
			}
		}
	}
}

// runKernelDiff drives four runners through the same cycle sequence and
// fails on the first observable divergence: the fast and reference
// kernels (with observers, comparing full transition streams), a
// memoized fast runner, and a memoized runner fed bitslice windows.
// Vectors alternate between streaming mode (prev == nil) and
// explicit-prev settles to cover the fast kernel's incremental and
// rebuilt input-bitset paths; about half the vectors repeat earlier ones
// so the memo runners exercise their hit and post-hit re-settle paths.
func runKernelDiff(t *testing.T, nl *netlist.Netlist, delays []float64, seed int64, cycles int) {
	t.Helper()
	fast, err := NewRunner(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewRefRunner(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Ref() || !ref.Ref() {
		t.Fatal("kernel selection mixed up")
	}
	memo, err := NewRunner(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	memo.EnableMemo(0)
	memoWin, err := NewRunner(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	memoWin.EnableMemo(0)
	var fastObs, refObs []obsRecord
	fast.SetObserver(func(n netlist.NetID, at float64, v bool) {
		fastObs = append(fastObs, obsRecord{n, at, v})
	})
	ref.SetObserver(func(n netlist.NetID, at float64, v bool) {
		refObs = append(refObs, obsRecord{n, at, v})
	})
	rng := rand.New(rand.NewSource(seed))
	ni := len(nl.PrimaryInputs)
	// Pre-generate the whole vector sequence (vecs[0] is the initial
	// settled state; cycle c applies vecs[c+1]) so windows can be
	// declared ahead of time. Half the vectors repeat earlier ones.
	vecs := make([][]bool, cycles+1)
	for c := range vecs {
		if c > 1 && rng.Intn(2) == 1 {
			// Reuse one of the last few vectors: short A/B/A-style loops
			// make (prev, cur) transition pairs repeat within the run.
			back := rng.Intn(min(c, 4))
			vecs[c] = vecs[c-1-back]
			continue
		}
		v := make([]bool, ni)
		for i := range v {
			v[i] = rng.Intn(2) == 1
		}
		vecs[c] = v
	}
	// The memo runner looks up every cycle (no observer, keyed from
	// cycle 0's explicit prev), so its hit count must equal the exact
	// number of repeated transitions in the sequence.
	wantHits := int64(0)
	seenPair := make(map[string]bool)
	for c := 0; c < cycles; c++ {
		key := fmt.Sprint(vecs[c], vecs[c+1])
		if seenPair[key] {
			wantHits++
		}
		seenPair[key] = true
	}
	winEnd := 1 // cycle 0 keys the memo; windows cover later cycles
	for cycle := 0; cycle < cycles; cycle++ {
		cur := vecs[cycle+1]
		var prevArg []bool
		if cycle == 0 || cycle%7 == 3 {
			prevArg = vecs[cycle]
		}
		if cycle >= winEnd {
			// Short windows so the suite crosses window boundaries and
			// re-begins often, including across explicit-prev settles.
			m := cycles - cycle
			if m > 5 {
				m = 5
			}
			if err := memoWin.BeginWindow(vecs[cycle+1 : cycle+1+m]); err != nil {
				t.Fatal(err)
			}
			winEnd = cycle + m
		}
		fastObs, refObs = fastObs[:0], refObs[:0]
		fr, err := fast.Cycle(prevArg, cur)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := ref.Cycle(prevArg, cur)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := memo.Cycle(prevArg, cur)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := memoWin.Cycle(prevArg, cur)
		if err != nil {
			t.Fatal(err)
		}
		compareCycles(t, "fast", cycle, fr, rr)
		compareCycles(t, "memo", cycle, mr, rr)
		compareCycles(t, "memo+window", cycle, wr, rr)
		if len(fastObs) != len(refObs) {
			t.Fatalf("cycle %d: observer saw %d transitions fast, %d ref",
				cycle, len(fastObs), len(refObs))
		}
		for k := range refObs {
			if fastObs[k] != refObs[k] {
				t.Fatalf("cycle %d observer record %d: fast=%+v ref=%+v",
					cycle, k, fastObs[k], refObs[k])
			}
		}
	}
	if s := memo.MemoStats(); s.Hits != wantHits {
		t.Fatalf("memo runner hits = %d, want %d (stats %+v)", s.Hits, wantHits, s)
	}
	if s := memoWin.MemoStats(); s.Hits != wantHits {
		t.Fatalf("windowed memo runner hits = %d, want %d (stats %+v)", s.Hits, wantHits, s)
	}
}

// TestKernelDiffFUs pins kernel equivalence on all four functional units
// across voltage/temperature corners — the circuits the characterization
// pipeline actually simulates.
func TestKernelDiffFUs(t *testing.T) {
	corners := []cells.Corner{{V: 0.81, T: 100}, {V: 0.85, T: 50}, {V: 1.00, T: 0}}
	for _, fu := range circuits.AllFUs {
		fu := fu
		t.Run(fu.String(), func(t *testing.T) {
			t.Parallel()
			nl, err := fu.Build()
			if err != nil {
				t.Fatal(err)
			}
			for ci, corner := range corners {
				delays, err := sta.GateDelays(nl, corner, sta.DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				runKernelDiff(t, nl, delays, int64(ci)*31+7, 12)
			}
		})
	}
}

// TestKernelDiffRandom fuzzes kernel equivalence over the same random
// circuit family as the simulator's functional fuzz corpus.
func TestKernelDiffRandom(t *testing.T) {
	corners := []cells.Corner{{V: 0.81, T: 0}, {V: 0.90, T: 50}, {V: 1.00, T: 100}}
	for seed := int64(0); seed < 25; seed++ {
		nl, err := netlist.Random(netlist.RandomOptions{
			Inputs:  4 + int(seed%5),
			Gates:   20 + int(seed*7%60),
			Outputs: 1 + int(seed%4),
			Seed:    seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		delays, err := sta.GateDelays(nl, corners[seed%int64(len(corners))], sta.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		runKernelDiff(t, nl, delays, seed+500, 20)
	}
}

// TestKernelDiffExtremeDelayRatio forces the calendar queue's overflow
// path: a delay spread wider than the wheel's capped horizon
// (maxD/minD >> maxBuckets) makes long-delay gates schedule events past
// the wheel, exercising overflow tracking, migration, and the rebase
// jump when only far-future events remain.
func TestKernelDiffExtremeDelayRatio(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		nl, err := netlist.Random(netlist.RandomOptions{
			Inputs:  6,
			Gates:   40 + int(seed*13%40),
			Outputs: 3,
			Seed:    200 + seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		delays := make([]float64, nl.NumGates())
		for gi := range delays {
			// Mostly unit-scale delays with occasional huge outliers:
			// ratio ~1e5, far beyond the 2^12-bucket horizon.
			if rng.Intn(4) == 0 {
				delays[gi] = 1e5 * (1 + rng.Float64())
			} else {
				delays[gi] = 1 + rng.Float64()
			}
		}
		runKernelDiff(t, nl, delays, seed+900, 20)
	}
}
