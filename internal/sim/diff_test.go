package sim

import (
	"math/rand"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/netlist"
	"tevot/internal/sta"
)

// The differential suite: the fast calendar-queue/CSR/LUT kernel must be
// bit-identical to the reference heap kernel on every circuit — same
// Delay, Settled, Toggles, Events, and the same observer stream in the
// same order. These tests are the contract that lets the fast kernel
// replace the heap without a semantic audit of every caller.

// obsRecord is one observer callback, for stream comparison.
type obsRecord struct {
	net netlist.NetID
	t   float64
	val bool
}

// runKernelDiff drives both kernels through the same cycle sequence and
// fails on the first observable divergence. Vectors alternate between
// streaming mode (prev == nil) and explicit-prev settles to cover the
// fast kernel's incremental and rebuilt input-bitset paths.
func runKernelDiff(t *testing.T, nl *netlist.Netlist, delays []float64, seed int64, cycles int) {
	t.Helper()
	fast, err := NewRunner(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewRefRunner(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Ref() || !ref.Ref() {
		t.Fatal("kernel selection mixed up")
	}
	var fastObs, refObs []obsRecord
	fast.SetObserver(func(n netlist.NetID, at float64, v bool) {
		fastObs = append(fastObs, obsRecord{n, at, v})
	})
	ref.SetObserver(func(n netlist.NetID, at float64, v bool) {
		refObs = append(refObs, obsRecord{n, at, v})
	})
	rng := rand.New(rand.NewSource(seed))
	ni := len(nl.PrimaryInputs)
	randVec := func() []bool {
		v := make([]bool, ni)
		for i := range v {
			v[i] = rng.Intn(2) == 1
		}
		return v
	}
	prev := randVec()
	for cycle := 0; cycle < cycles; cycle++ {
		cur := randVec()
		var prevArg []bool
		if cycle == 0 || cycle%7 == 3 {
			prevArg = prev
		}
		fastObs, refObs = fastObs[:0], refObs[:0]
		fr, err := fast.Cycle(prevArg, cur)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := ref.Cycle(prevArg, cur)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Delay != rr.Delay {
			t.Fatalf("cycle %d: Delay fast=%v ref=%v", cycle, fr.Delay, rr.Delay)
		}
		if fr.Events != rr.Events {
			t.Fatalf("cycle %d: Events fast=%d ref=%d", cycle, fr.Events, rr.Events)
		}
		for i := range rr.Settled {
			if fr.Settled[i] != rr.Settled[i] {
				t.Fatalf("cycle %d: Settled[%d] fast=%v ref=%v", cycle, i, fr.Settled[i], rr.Settled[i])
			}
		}
		for oi := range rr.Toggles {
			if len(fr.Toggles[oi]) != len(rr.Toggles[oi]) {
				t.Fatalf("cycle %d output %d: %d toggles fast, %d ref",
					cycle, oi, len(fr.Toggles[oi]), len(rr.Toggles[oi]))
			}
			for k := range rr.Toggles[oi] {
				if fr.Toggles[oi][k] != rr.Toggles[oi][k] {
					t.Fatalf("cycle %d output %d toggle %d: fast=%+v ref=%+v",
						cycle, oi, k, fr.Toggles[oi][k], rr.Toggles[oi][k])
				}
			}
		}
		if len(fastObs) != len(refObs) {
			t.Fatalf("cycle %d: observer saw %d transitions fast, %d ref",
				cycle, len(fastObs), len(refObs))
		}
		for k := range refObs {
			if fastObs[k] != refObs[k] {
				t.Fatalf("cycle %d observer record %d: fast=%+v ref=%+v",
					cycle, k, fastObs[k], refObs[k])
			}
		}
		prev = cur
	}
}

// TestKernelDiffFUs pins kernel equivalence on all four functional units
// across voltage/temperature corners — the circuits the characterization
// pipeline actually simulates.
func TestKernelDiffFUs(t *testing.T) {
	corners := []cells.Corner{{V: 0.81, T: 100}, {V: 0.85, T: 50}, {V: 1.00, T: 0}}
	for _, fu := range circuits.AllFUs {
		fu := fu
		t.Run(fu.String(), func(t *testing.T) {
			t.Parallel()
			nl, err := fu.Build()
			if err != nil {
				t.Fatal(err)
			}
			for ci, corner := range corners {
				delays, err := sta.GateDelays(nl, corner, sta.DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				runKernelDiff(t, nl, delays, int64(ci)*31+7, 12)
			}
		})
	}
}

// TestKernelDiffRandom fuzzes kernel equivalence over the same random
// circuit family as the simulator's functional fuzz corpus.
func TestKernelDiffRandom(t *testing.T) {
	corners := []cells.Corner{{V: 0.81, T: 0}, {V: 0.90, T: 50}, {V: 1.00, T: 100}}
	for seed := int64(0); seed < 25; seed++ {
		nl, err := netlist.Random(netlist.RandomOptions{
			Inputs:  4 + int(seed%5),
			Gates:   20 + int(seed*7%60),
			Outputs: 1 + int(seed%4),
			Seed:    seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		delays, err := sta.GateDelays(nl, corners[seed%int64(len(corners))], sta.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		runKernelDiff(t, nl, delays, seed+500, 20)
	}
}

// TestKernelDiffExtremeDelayRatio forces the calendar queue's overflow
// path: a delay spread wider than the wheel's capped horizon
// (maxD/minD >> maxBuckets) makes long-delay gates schedule events past
// the wheel, exercising overflow tracking, migration, and the rebase
// jump when only far-future events remain.
func TestKernelDiffExtremeDelayRatio(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		nl, err := netlist.Random(netlist.RandomOptions{
			Inputs:  6,
			Gates:   40 + int(seed*13%40),
			Outputs: 3,
			Seed:    200 + seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		delays := make([]float64, nl.NumGates())
		for gi := range delays {
			// Mostly unit-scale delays with occasional huge outliers:
			// ratio ~1e5, far beyond the 2^12-bucket horizon.
			if rng.Intn(4) == 0 {
				delays[gi] = 1e5 * (1 + rng.Float64())
			} else {
				delays[gi] = 1 + rng.Float64()
			}
		}
		runKernelDiff(t, nl, delays, seed+900, 20)
	}
}
