package sim

import "encoding/binary"

// The transition memo cache: for a fixed netlist and delay annotation, a
// cycle's entire observable outcome — Delay, Settled, Toggles, and the
// Events count — is a pure function of the input transition
// (prev, cur). The circuit is acyclic, so the settled state it starts
// the cycle from is the zero-delay evaluation of prev (no event
// history), and every scheduler decision downstream is deterministic in
// that state (the same argument that makes sharded characterization
// bit-identical, see core.CharacterizeOptsContext). Real workloads —
// TEVoT's Sobel/Gaussian operand streams above all — repeat transitions
// heavily, so a bounded cache keyed by the packed (prev, cur) vectors
// short-circuits full event simulation on every repeat.
//
// The cache is per-Runner (hence per-netlist, per-corner,
// per-annotation) and single-goroutine like the Runner itself: no
// locks, no sharing. A hit rehydrates the immutable cached record into
// the Runner's reusable result buffers, preserving the CycleResult
// aliasing contract and allocating nothing in steady state. A miss runs
// the kernel as usual and stores a compact deep copy; once the cache is
// full the least-recently-used transition is evicted and its entry's
// storage is reused, so long pure-miss streams settle into a bounded
// footprint.
//
// Observers force a bypass: a cached hit skips event processing
// entirely, so it cannot replay the per-net transition stream an
// Observer (e.g. the VCD writer) must see. While an observer is
// attached, Cycle neither consults nor fills the cache; results remain
// bit-identical either way.

// DefaultMemoSize is the transition-cache entry cap EnableMemo applies
// when the caller passes size <= 0. At 64 Ki transitions the cache
// covers the repeat set of the imaging operand streams with room to
// spare while bounding worst-case memory to tens of megabytes even on
// the toggle-heavy multipliers.
const DefaultMemoSize = 1 << 16

// MemoStats is a point-in-time snapshot of a Runner's transition-cache
// counters.
type MemoStats struct {
	Enabled   bool
	Entries   int
	Capacity  int
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRate returns Hits / (Hits + Misses), 0 before any lookup.
func (s MemoStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// memoEntry is one cached transition outcome. Toggles are flattened
// into one slice with per-output offsets so an entry costs two slice
// headers instead of one per output.
type memoEntry struct {
	key     string // packed prev|cur vectors, raw little-endian bytes
	delay   float64
	events  int
	init    []bool // output values at cycle start (settled at prev)
	settled []bool
	toggles []Toggle
	togOff  []int32 // len(outputs)+1 offsets into toggles
	prev    int32   // LRU links (entry indices; -1 terminates)
	next    int32
}

// memoCache is the bounded LRU map from transition key to cycle record.
type memoCache struct {
	capEntries int
	m          map[string]int32
	ents       []memoEntry
	head, tail int32 // MRU at head, LRU at tail; -1 when empty

	hits, misses, evictions int64
}

func newMemoCache(capEntries int) *memoCache {
	if capEntries <= 0 {
		capEntries = DefaultMemoSize
	}
	hint := capEntries
	if hint > 4096 {
		hint = 4096
	}
	return &memoCache{
		capEntries: capEntries,
		m:          make(map[string]int32, hint),
		head:       -1,
		tail:       -1,
	}
}

// lookup returns the cached record for key, promoting it to
// most-recently-used, or nil on a miss. The key slice is only read; the
// map access through string(key) does not allocate.
func (c *memoCache) lookup(key []byte) *memoEntry {
	idx, ok := c.m[string(key)]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.moveToFront(idx)
	return &c.ents[idx]
}

// store records a just-simulated cycle under key, evicting the
// least-recently-used entry (and reusing its storage) when full. Called
// only on the miss path, so its allocations (the key string, the map
// slot, first-use slice growth) are amortized against a full event
// simulation.
func (c *memoCache) store(key []byte, res *CycleResult, init []bool) {
	var idx int32
	if len(c.ents) < c.capEntries {
		c.ents = append(c.ents, memoEntry{})
		idx = int32(len(c.ents) - 1)
	} else {
		idx = c.tail
		c.detach(idx)
		delete(c.m, c.ents[idx].key)
		c.evictions++
	}
	e := &c.ents[idx]
	e.key = string(key)
	e.delay = res.Delay
	e.events = res.Events
	e.init = append(e.init[:0], init...)
	e.settled = append(e.settled[:0], res.Settled...)
	e.toggles = e.toggles[:0]
	e.togOff = e.togOff[:0]
	for _, ts := range res.Toggles {
		e.togOff = append(e.togOff, int32(len(e.toggles)))
		e.toggles = append(e.toggles, ts...)
	}
	e.togOff = append(e.togOff, int32(len(e.toggles)))
	c.m[e.key] = idx
	c.attachFront(idx)
}

func (c *memoCache) attachFront(idx int32) {
	e := &c.ents[idx]
	e.prev = -1
	e.next = c.head
	if c.head >= 0 {
		c.ents[c.head].prev = idx
	}
	c.head = idx
	if c.tail < 0 {
		c.tail = idx
	}
}

func (c *memoCache) detach(idx int32) {
	e := &c.ents[idx]
	if e.prev >= 0 {
		c.ents[e.prev].next = e.next
	} else {
		c.head = e.next
	}
	if e.next >= 0 {
		c.ents[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
}

func (c *memoCache) moveToFront(idx int32) {
	if c.head == idx {
		return
	}
	c.detach(idx)
	c.attachFront(idx)
}

// EnableMemo turns on the transition memo cache with the given entry
// cap (<= 0 selects DefaultMemoSize). Enabling discards any previous
// cache. The cache makes streaming Cycle results bit-identical to the
// uncached kernel; see the package comment in this file for the purity
// argument. An attached Observer bypasses the cache (see SetObserver).
func (r *Runner) EnableMemo(capEntries int) {
	r.memo = newMemoCache(capEntries)
	r.keyValid = false
	kw := (len(r.nl.PrimaryInputs) + 63) / 64
	if len(r.packPrev) != kw {
		r.packPrev = make([]uint64, kw)
		r.packCur = make([]uint64, kw)
		r.keyBuf = make([]byte, 0, 2*8*kw)
		r.lastVec = make([]bool, len(r.nl.PrimaryInputs))
	}
}

// DisableMemo removes the transition cache (and deactivates any
// bitslice window, which exists to serve the cache's miss path). If a
// hit left the event state stale, the next Cycle re-settles it, so
// disabling mid-stream is safe.
func (r *Runner) DisableMemo() {
	r.memo = nil
	r.slice.active = false
	// A stale val (from a memo hit) must still be settled on the next
	// Cycle; keep lastVec/valStale as they are — Cycle handles it even
	// with the cache gone, as long as lastVec survives.
}

// MemoStats snapshots the transition-cache counters.
func (r *Runner) MemoStats() MemoStats {
	if r.memo == nil {
		return MemoStats{}
	}
	return MemoStats{
		Enabled:   true,
		Entries:   len(r.memo.m),
		Capacity:  r.memo.capEntries,
		Hits:      r.memo.hits,
		Misses:    r.memo.misses,
		Evictions: r.memo.evictions,
	}
}

// packBits packs a bool vector into little-endian uint64 words.
func packBits(v []bool, dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	for i, b := range v {
		if b {
			dst[i>>6] |= 1 << uint(i&63)
		}
	}
}

// memoKey serializes the packed (prev, cur) words into the Runner's
// reusable key buffer.
func (r *Runner) memoKey() []byte {
	buf := r.keyBuf[:0]
	for _, w := range r.packPrev {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	for _, w := range r.packCur {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	r.keyBuf = buf
	return buf
}

// rehydrate replays a cached record into the Runner's reusable result
// buffers: the returned CycleResult aliases the same storage as a
// simulated one and stays valid until the next Cycle call. Events
// reports the cached simulation cost (what the kernel would have
// processed), keeping effort accounting bit-identical to the uncached
// run.
func (r *Runner) rehydrate(e *memoEntry) {
	res := &r.res
	res.Delay = e.delay
	res.Events = e.events
	copy(res.Settled, e.settled)
	copy(r.initOut, e.init)
	for i := range res.Toggles {
		res.Toggles[i] = append(res.Toggles[i][:0], e.toggles[e.togOff[i]:e.togOff[i+1]]...)
	}
}
