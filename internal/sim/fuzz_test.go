package sim

import (
	"math/rand"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/netlist"
	"tevot/internal/sta"
)

// TestFuzzSimulatorAgainstEval cross-checks the event-driven simulator
// against zero-delay functional evaluation and the STA bound on a fleet
// of random circuits: for every random DAG and every input transition,
//
//   - the settled outputs must equal Netlist.Eval of the new vector,
//   - the dynamic delay must not exceed the STA critical-path delay,
//   - output toggles must alternate and replay to the settled value,
//   - a clock above the dynamic delay must show no timing error.
func TestFuzzSimulatorAgainstEval(t *testing.T) {
	corners := []cells.Corner{{V: 0.81, T: 0}, {V: 0.90, T: 50}, {V: 1.00, T: 100}}
	for seed := int64(0); seed < 25; seed++ {
		nl, err := netlist.Random(netlist.RandomOptions{
			Inputs:  4 + int(seed%5),
			Gates:   20 + int(seed*7%60),
			Outputs: 1 + int(seed%4),
			Seed:    seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		corner := corners[seed%int64(len(corners))]
		static, err := sta.Analyze(nl, corner, sta.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(nl, static.GateDelay)
		if err != nil {
			t.Fatal(err)
		}
		// A memoized shadow runner with a deliberately tiny cache: the
		// small input spaces (4..8 bits) repeat transitions naturally, so
		// this fuzzes the hit, post-hit re-settle, and eviction paths
		// against the uncached kernel on every circuit.
		m, err := NewRunner(nl, static.GateDelay)
		if err != nil {
			t.Fatal(err)
		}
		m.EnableMemo(8)
		rng := rand.New(rand.NewSource(seed + 1000))
		ni := len(nl.PrimaryInputs)
		randVec := func() []bool {
			v := make([]bool, ni)
			for i := range v {
				v[i] = rng.Intn(2) == 1
			}
			return v
		}
		prev := randVec()
		for cycle := 0; cycle < 30; cycle++ {
			cur := randVec()
			res, err := r.Cycle(prev, cur)
			if err != nil {
				t.Fatal(err)
			}
			mres, err := m.Cycle(prev, cur)
			if err != nil {
				t.Fatal(err)
			}
			compareCycles(t, "memo", cycle, mres, res)
			want, err := nl.Eval(cur)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if res.Settled[i] != want[i] {
					t.Fatalf("seed %d cycle %d: settled[%d] = %v, eval = %v",
						seed, cycle, i, res.Settled[i], want[i])
				}
			}
			if res.Delay > static.Delay+1e-9 {
				t.Fatalf("seed %d cycle %d: dynamic %v > static %v", seed, cycle, res.Delay, static.Delay)
			}
			init := r.InitialOutputs()
			for oi, ts := range res.Toggles {
				last := init[oi]
				lastT := -1.0
				for _, tg := range ts {
					if tg.Val == last || tg.T <= lastT {
						t.Fatalf("seed %d cycle %d: malformed toggle stream on output %d", seed, cycle, oi)
					}
					last, lastT = tg.Val, tg.T
				}
				if last != res.Settled[oi] {
					t.Fatalf("seed %d cycle %d: toggle replay mismatch on output %d", seed, cycle, oi)
				}
			}
			if res.ErrorAt(init, res.Delay+1) {
				t.Fatalf("seed %d cycle %d: error reported above the dynamic delay", seed, cycle)
			}
			prev = cur
		}
	}
}

// TestFuzzDeterminism: identical circuits and vectors give bit-identical
// results across independent runners.
func TestFuzzDeterminism(t *testing.T) {
	nl, err := netlist.Random(netlist.RandomOptions{Inputs: 6, Gates: 50, Outputs: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	corner := cells.Corner{V: 0.85, T: 75}
	delays, err := sta.GateDelays(nl, corner, sta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewRunner(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	prev := make([]bool, 6)
	for cycle := 0; cycle < 50; cycle++ {
		cur := make([]bool, 6)
		for i := range cur {
			cur[i] = rng.Intn(2) == 1
		}
		a, err := r1.Cycle(prev, cur)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r2.Cycle(prev, cur)
		if err != nil {
			t.Fatal(err)
		}
		if a.Delay != b.Delay || a.Events != b.Events {
			t.Fatalf("cycle %d: runs diverge: (%v,%d) vs (%v,%d)",
				cycle, a.Delay, a.Events, b.Delay, b.Events)
		}
		prev = cur
	}
}
