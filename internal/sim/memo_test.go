package sim

import (
	"math/rand"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/netlist"
	"tevot/internal/sta"
)

// memoFixture builds a random circuit with STA delays, a plain fast
// runner as the in-test oracle, and a repeat-heavy vector sequence
// (vecs[0] is the initial settled state).
func memoFixture(t *testing.T, seed int64, cycles int) (*netlist.Netlist, []float64, *Runner, [][]bool) {
	t.Helper()
	nl, err := netlist.Random(netlist.RandomOptions{Inputs: 6, Gates: 50, Outputs: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	delays, err := sta.GateDelays(nl, cells.Corner{V: 0.85, T: 50}, sta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewRunner(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 77))
	pool := make([][]bool, 4)
	for p := range pool {
		v := make([]bool, 6)
		for i := range v {
			v[i] = rng.Intn(2) == 1
		}
		pool[p] = v
	}
	vecs := make([][]bool, cycles+1)
	for c := range vecs {
		vecs[c] = pool[rng.Intn(len(pool))]
	}
	return nl, delays, plain, vecs
}

// TestMemoThrashCacheSizeOne runs a capacity-1 cache through a
// repeat-heavy stream: every conflicting store evicts, entry storage is
// reused constantly, and results stay bit-identical to the uncached
// runner throughout.
func TestMemoThrashCacheSizeOne(t *testing.T) {
	const cycles = 120
	_, delays, plain, vecs := memoFixture(t, 11, cycles)
	memo, err := NewRunner(plain.Netlist(), delays)
	if err != nil {
		t.Fatal(err)
	}
	memo.EnableMemo(1)
	for c := 0; c < cycles; c++ {
		var prevArg []bool
		if c == 0 {
			prevArg = vecs[0]
		}
		pr, err := plain.Cycle(prevArg, vecs[c+1])
		if err != nil {
			t.Fatal(err)
		}
		mr, err := memo.Cycle(prevArg, vecs[c+1])
		if err != nil {
			t.Fatal(err)
		}
		compareCycles(t, "memo(cap=1)", c, mr, pr)
	}
	s := memo.MemoStats()
	if !s.Enabled || s.Capacity != 1 || s.Entries != 1 {
		t.Fatalf("unexpected cache shape: %+v", s)
	}
	if s.Evictions == 0 {
		t.Fatalf("capacity-1 cache over a 4-vector pool should thrash; stats %+v", s)
	}
	if s.Hits+s.Misses != cycles {
		t.Fatalf("lookups = %d, want one per cycle (%d)", s.Hits+s.Misses, cycles)
	}
}

// TestMemoObserverBypass pins the SetObserver fix: with an observer
// attached, the memo is bypassed (no lookups, no stores), so the
// observer sees the full per-net transition stream of every cycle even
// on transitions the warmed cache could serve.
func TestMemoObserverBypass(t *testing.T) {
	const cycles = 40
	_, delays, plain, vecs := memoFixture(t, 23, cycles)
	memo, err := NewRunner(plain.Netlist(), delays)
	if err != nil {
		t.Fatal(err)
	}
	memo.EnableMemo(0)

	// Warm the cache over the whole sequence, observer detached.
	if _, err := memo.Cycle(vecs[0], vecs[1]); err != nil {
		t.Fatal(err)
	}
	for c := 1; c < cycles; c++ {
		if _, err := memo.Cycle(nil, vecs[c+1]); err != nil {
			t.Fatal(err)
		}
	}
	warm := memo.MemoStats()
	if warm.Hits == 0 {
		t.Fatalf("4-vector pool over %d cycles produced no hits: %+v", cycles, warm)
	}

	// Replay with observers on both runners: streams must match exactly,
	// and the memo must not be consulted at all.
	var memoObs, plainObs []obsRecord
	memo.SetObserver(func(n netlist.NetID, at float64, v bool) {
		memoObs = append(memoObs, obsRecord{n, at, v})
	})
	plain.SetObserver(func(n netlist.NetID, at float64, v bool) {
		plainObs = append(plainObs, obsRecord{n, at, v})
	})
	for c := 0; c < cycles; c++ {
		var prevArg []bool
		if c == 0 {
			prevArg = vecs[0]
		}
		memoObs, plainObs = memoObs[:0], plainObs[:0]
		pr, err := plain.Cycle(prevArg, vecs[c+1])
		if err != nil {
			t.Fatal(err)
		}
		mr, err := memo.Cycle(prevArg, vecs[c+1])
		if err != nil {
			t.Fatal(err)
		}
		compareCycles(t, "memo+observer", c, mr, pr)
		if len(memoObs) != len(plainObs) {
			t.Fatalf("cycle %d: observer saw %d transitions with memo, %d plain",
				c, len(memoObs), len(plainObs))
		}
		for k := range plainObs {
			if memoObs[k] != plainObs[k] {
				t.Fatalf("cycle %d observer record %d: memo=%+v plain=%+v",
					c, k, memoObs[k], plainObs[k])
			}
		}
	}
	after := memo.MemoStats()
	if after.Hits != warm.Hits || after.Misses != warm.Misses {
		t.Fatalf("observer-attached cycles touched the memo: before %+v, after %+v", warm, after)
	}

	// Detaching the observer re-enables the cache.
	memo.SetObserver(nil)
	if _, err := memo.Cycle(nil, vecs[1]); err != nil {
		t.Fatal(err)
	}
	if s := memo.MemoStats(); s.Hits+s.Misses != after.Hits+after.Misses+1 {
		t.Fatalf("detached observer should resume lookups: %+v", s)
	}
}

// TestMemoDisableMidStream disables the cache right after a hit (event
// state stale) and checks the next streaming cycles still match the
// uncached runner — the windowless re-settle path with the cache gone.
func TestMemoDisableMidStream(t *testing.T) {
	const cycles = 60
	_, delays, plain, vecs := memoFixture(t, 31, cycles)
	memo, err := NewRunner(plain.Netlist(), delays)
	if err != nil {
		t.Fatal(err)
	}
	memo.EnableMemo(0)
	disabled := false
	for c := 0; c < cycles; c++ {
		var prevArg []bool
		if c == 0 {
			prevArg = vecs[0]
		}
		pr, err := plain.Cycle(prevArg, vecs[c+1])
		if err != nil {
			t.Fatal(err)
		}
		mr, err := memo.Cycle(prevArg, vecs[c+1])
		if err != nil {
			t.Fatal(err)
		}
		compareCycles(t, "memo(mid-disable)", c, mr, pr)
		if !disabled && memo.MemoStats().Hits > 0 {
			// The last cycle was served from the cache, so the event
			// state is stale at the moment we disable.
			memo.DisableMemo()
			disabled = true
		}
	}
	if !disabled {
		t.Fatal("stream never hit the cache; fixture too cold")
	}
	if s := memo.MemoStats(); s.Enabled {
		t.Fatalf("stats still enabled after DisableMemo: %+v", s)
	}
}

// TestMemoWindowDivergence declares a bitslice window and then feeds the
// runner different vectors: the window must deactivate and every result
// must still match the uncached runner, including the post-hit
// re-settle that can no longer use lane extraction.
func TestMemoWindowDivergence(t *testing.T) {
	const cycles = 40
	_, delays, plain, vecs := memoFixture(t, 47, cycles)
	memo, err := NewRunner(plain.Netlist(), delays)
	if err != nil {
		t.Fatal(err)
	}
	memo.EnableMemo(0)
	if pr, err := plain.Cycle(vecs[0], vecs[1]); err != nil {
		t.Fatal(err)
	} else if mr, err := memo.Cycle(vecs[0], vecs[1]); err != nil {
		t.Fatal(err)
	} else {
		compareCycles(t, "memo(window-divergence)", 0, mr, pr)
	}
	// Declare the true upcoming vectors... then betray the declaration
	// at the second window position with a vector that cannot match.
	if err := memo.BeginWindow(vecs[2:10]); err != nil {
		t.Fatal(err)
	}
	flip := make([]bool, len(vecs[0]))
	for c := 1; c < cycles; c++ {
		cur := vecs[c+1]
		if c == 2 {
			for i, b := range cur {
				flip[i] = !b
			}
			cur = flip
		}
		pr, err := plain.Cycle(nil, cur)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := memo.Cycle(nil, cur)
		if err != nil {
			t.Fatal(err)
		}
		compareCycles(t, "memo(window-divergence)", c, mr, pr)
	}
	if s := memo.SliceStats(); s.Windows != 1 {
		t.Fatalf("expected exactly one engaged window, stats %+v", s)
	}
}

// TestBeginWindowErrors pins the preconditions: fast kernel only, memo
// enabled and keyed, settled state, 1..WindowMax vectors of the right
// width.
func TestBeginWindowErrors(t *testing.T) {
	_, delays, plain, vecs := memoFixture(t, 59, 4)
	nl := plain.Netlist()
	vec6 := vecs[0]

	ref, err := NewRefRunner(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.BeginWindow([][]bool{vec6}); err == nil {
		t.Fatal("BeginWindow on the reference kernel should fail")
	}

	r, err := NewRunner(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.BeginWindow([][]bool{vec6}); err == nil {
		t.Fatal("BeginWindow without a memo cache should fail")
	}
	r.EnableMemo(0)
	if err := r.BeginWindow([][]bool{vec6}); err == nil {
		t.Fatal("BeginWindow before the first keyed cycle should fail")
	}
	if _, err := r.Cycle(vecs[0], vecs[1]); err != nil {
		t.Fatal(err)
	}
	if err := r.BeginWindow(nil); err == nil {
		t.Fatal("BeginWindow with no vectors should fail")
	}
	tooMany := make([][]bool, WindowMax+1)
	for i := range tooMany {
		tooMany[i] = vec6
	}
	if err := r.BeginWindow(tooMany); err == nil {
		t.Fatalf("BeginWindow with %d vectors should fail", len(tooMany))
	}
	if err := r.BeginWindow([][]bool{make([]bool, 3)}); err == nil {
		t.Fatal("BeginWindow with a short vector should fail")
	}
	if err := r.BeginWindow([][]bool{vec6}); err != nil {
		t.Fatalf("valid BeginWindow failed: %v", err)
	}
}

// TestMemoStatsShape covers the bookkeeping: default sizing, hit-rate
// arithmetic, and the disabled zero value.
func TestMemoStatsShape(t *testing.T) {
	_, delays, plain, _ := memoFixture(t, 71, 4)
	r, err := NewRunner(plain.Netlist(), delays)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.MemoStats(); s.Enabled || s.Capacity != 0 {
		t.Fatalf("memo-off stats should be zero: %+v", s)
	}
	r.EnableMemo(0)
	if s := r.MemoStats(); !s.Enabled || s.Capacity != DefaultMemoSize {
		t.Fatalf("EnableMemo(0) should select DefaultMemoSize: %+v", s)
	}
	if (MemoStats{}).HitRate() != 0 {
		t.Fatal("zero-lookup hit rate should be 0")
	}
	if hr := (MemoStats{Hits: 3, Misses: 1}).HitRate(); hr != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", hr)
	}
}
