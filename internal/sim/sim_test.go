package sim

import (
	"math/rand"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/netlist"
	"tevot/internal/sta"
)

func nominal() cells.Corner {
	m := cells.DefaultScaling()
	return cells.Corner{V: m.Vnom, T: m.Tnom}
}

// encN encodes a width-bit operand pair for the generic generators.
func encN(width int, a, b uint64) []bool {
	v := make([]bool, 2*width)
	for i := 0; i < width; i++ {
		v[i] = a>>i&1 == 1
		v[width+i] = b>>i&1 == 1
	}
	return v
}

func runnerFor(t *testing.T, nl *netlist.Netlist, corner cells.Corner) *Runner {
	t.Helper()
	delays, err := sta.GateDelays(nl, corner, sta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFig1DynamicDelay reproduces the paper's Fig. 1 phenomenon: the same
// circuit shows different dynamic delay depending on which input pair
// transitions. We use a 2-gate circuit o = x AND (NOT y): toggling x
// alone sensitizes a 1-gate path; toggling y sensitizes the 2-gate path.
func TestFig1DynamicDelay(t *testing.T) {
	b := netlist.NewBuilder("fig1")
	x := b.Input("x")
	y := b.Input("y")
	o := b.And(x, b.Not(y))
	b.Output(o)
	nl := b.MustBuild()
	r := runnerFor(t, nl, nominal())

	// y: 1 -> 0 with x = 1: output 0 -> 1 through INV then AND.
	res, err := r.Cycle([]bool{true, true}, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	longDelay := res.Delay
	if longDelay <= 0 {
		t.Fatal("expected output toggle through the long path")
	}

	// x: 0 -> 1 with y = 0: output 0 -> 1 through the AND only.
	res, err = r.Cycle([]bool{false, false}, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	shortDelay := res.Delay
	if shortDelay <= 0 {
		t.Fatal("expected output toggle through the short path")
	}
	if shortDelay >= longDelay {
		t.Fatalf("short path (%v ps) should beat long path (%v ps)", shortDelay, longDelay)
	}
}

// TestSettledMatchesZeroDelayEval: whatever the event interleaving, the
// final values must equal functional evaluation.
func TestSettledMatchesZeroDelayEval(t *testing.T) {
	for _, fu := range circuits.AllFUs {
		nl, err := fu.Build()
		if err != nil {
			t.Fatal(err)
		}
		r := runnerFor(t, nl, cells.Corner{V: 0.85, T: 50})
		rng := rand.New(rand.NewSource(int64(fu)))
		prev := circuits.EncodeOperands(rng.Uint32(), rng.Uint32())
		for i := 0; i < 25; i++ {
			a, b := rng.Uint32(), rng.Uint32()
			cur := circuits.EncodeOperands(a, b)
			res, err := r.Cycle(prev, cur)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := circuits.DecodeResult(res.Settled), fu.Golden(a, b); got != want {
				t.Fatalf("%v: settled %#08x, want %#08x", fu, got, want)
			}
			prev = cur
		}
	}
}

// TestDynamicDelayBoundedByStatic: the sensitized path can never exceed
// the STA critical path at the same corner.
func TestDynamicDelayBoundedByStatic(t *testing.T) {
	nl := circuits.NewRippleAdder(32)
	corner := cells.Corner{V: 0.81, T: 0}
	static, err := sta.Analyze(nl, corner, sta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(nl, static.GateDelay)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	prev := circuits.EncodeOperands(rng.Uint32(), rng.Uint32())
	for i := 0; i < 200; i++ {
		cur := circuits.EncodeOperands(rng.Uint32(), rng.Uint32())
		res, err := r.Cycle(prev, cur)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delay > static.Delay+1e-9 {
			t.Fatalf("dynamic delay %v exceeds static %v", res.Delay, static.Delay)
		}
		prev = cur
	}
}

// TestDynamicDelayVariesWithInput: a carry-chain adder must show a wide
// dynamic-delay distribution across random vectors — the core premise of
// the paper.
func TestDynamicDelayVariesWithInput(t *testing.T) {
	nl := circuits.NewRippleAdder(32)
	r := runnerFor(t, nl, nominal())
	rng := rand.New(rand.NewSource(7))
	min, max := 1e18, 0.0
	prev := circuits.EncodeOperands(0, 0)
	for i := 0; i < 300; i++ {
		cur := circuits.EncodeOperands(rng.Uint32(), rng.Uint32())
		res, err := r.Cycle(prev, cur)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delay > 0 {
			if res.Delay < min {
				min = res.Delay
			}
			if res.Delay > max {
				max = res.Delay
			}
		}
		prev = cur
	}
	if max < 2*min {
		t.Errorf("dynamic delay spread too small: min %v, max %v", min, max)
	}
}

// TestErrorAtThresholds: a clock longer than the cycle's delay never
// errs; the sampled-vs-settled definition produces an error for a clock
// that truncates a genuine late transition.
func TestErrorAtThresholds(t *testing.T) {
	nl := circuits.NewRippleAdder(32)
	r := runnerFor(t, nl, cells.Corner{V: 0.81, T: 0})
	// Force a long carry: 0xFFFFFFFF + 1 ripples through every stage.
	prev := circuits.EncodeOperands(0xFFFFFFFF, 0)
	cur := circuits.EncodeOperands(0xFFFFFFFF, 1)
	res, err := r.Cycle(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay <= 0 {
		t.Fatal("carry ripple produced no output toggles")
	}
	init := r.InitialOutputs()
	if res.ErrorAt(init, res.Delay*1.01) {
		t.Error("clock above dynamic delay still shows a timing error")
	}
	if !res.ErrorAt(init, res.Delay*0.5) {
		t.Error("half-delay clock shows no timing error despite late transitions")
	}
	// Sampled value at a generous clock equals the settled sum.
	if got := res.SampledValue(init, res.Delay*1.01); got != 0 {
		t.Errorf("sampled value = %#08x, want 0 (0xFFFFFFFF + 1)", got)
	}
}

// TestStreamingModeMatchesExplicitPrev: passing prev=nil must reuse the
// settled state exactly.
func TestStreamingModeMatchesExplicitPrev(t *testing.T) {
	nl := circuits.NewTruncMultiplier(8)
	r1 := runnerFor(t, nl, nominal())
	r2 := runnerFor(t, nl, nominal())
	rng := rand.New(rand.NewSource(3))
	vecs := make([][]bool, 20)
	for i := range vecs {
		v := make([]bool, 16)
		for j := range v {
			v[j] = rng.Intn(2) == 1
		}
		vecs[i] = v
	}
	for i := 1; i < len(vecs); i++ {
		a, err := r1.Cycle(vecs[i-1], vecs[i])
		if err != nil {
			t.Fatal(err)
		}
		var b *CycleResult
		if i == 1 {
			b, err = r2.Cycle(vecs[0], vecs[1])
		} else {
			b, err = r2.Cycle(nil, vecs[i])
		}
		if err != nil {
			t.Fatal(err)
		}
		if a.Delay != b.Delay || a.Events != b.Events {
			t.Fatalf("cycle %d: explicit (%v, %d) != streaming (%v, %d)",
				i, a.Delay, a.Events, b.Delay, b.Events)
		}
	}
}

func TestFirstCycleRequiresPrev(t *testing.T) {
	nl := circuits.NewRippleAdder(4)
	r := runnerFor(t, nl, nominal())
	if _, err := r.Cycle(nil, make([]bool, 8)); err == nil {
		t.Fatal("first Cycle with nil prev succeeded")
	}
}

func TestCycleDeterministic(t *testing.T) {
	nl := circuits.NewRippleAdder(16)
	r := runnerFor(t, nl, cells.Corner{V: 0.9, T: 100})
	prev := encN(16, 0x1234, 0x00FF)
	cur := encN(16, 0xFF01, 0x00FF)
	a, err := r.Cycle(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	aC := a.Clone()
	b, err := r.Cycle(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	if aC.Delay != b.Delay || aC.Events != b.Events {
		t.Fatalf("repeat run differs: (%v,%d) vs (%v,%d)", aC.Delay, aC.Events, b.Delay, b.Events)
	}
}

// TestInertialGlitchSwallowed: a pulse shorter than a downstream gate's
// delay must not appear at its output. Construct x -> INV -> AND(x, inv):
// a rising x creates a 1-pulse hazard at the AND input pair... the AND
// briefly sees (1, 1) until the INV output falls. With the inertial
// model, whether the pulse propagates depends on the relative delays; we
// assert that the simulator never emits a zero-width pulse and that
// toggles per net alternate values.
func TestTogglesAlternate(t *testing.T) {
	nl := circuits.NewTruncMultiplier(16)
	r := runnerFor(t, nl, cells.Corner{V: 0.81, T: 100})
	rng := rand.New(rand.NewSource(11))
	prev := make([]bool, 32)
	for i := 0; i < 50; i++ {
		cur := make([]bool, 32)
		for j := range cur {
			cur[j] = rng.Intn(2) == 1
		}
		res, err := r.Cycle(prev, cur)
		if err != nil {
			t.Fatal(err)
		}
		init := r.InitialOutputs()
		for oi, ts := range res.Toggles {
			last := init[oi]
			lastT := -1.0
			for _, tg := range ts {
				if tg.Val == last {
					t.Fatalf("output %d: non-alternating toggle at %v", oi, tg.T)
				}
				if tg.T <= lastT {
					t.Fatalf("output %d: toggles out of order (%v after %v)", oi, tg.T, lastT)
				}
				last, lastT = tg.Val, tg.T
			}
			if last != res.Settled[oi] {
				t.Fatalf("output %d: toggle replay (%v) disagrees with settled (%v)", oi, last, res.Settled[oi])
			}
		}
		prev = cur
	}
}

// TestNoInputChangeNoEvents: reapplying the same vector is a quiet cycle.
func TestNoInputChangeNoEvents(t *testing.T) {
	nl := circuits.NewRippleAdder(8)
	r := runnerFor(t, nl, nominal())
	v := encN(8, 0xAB, 0xCD)
	res, err := r.Cycle(v, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 0 || res.Delay != 0 {
		t.Fatalf("quiet cycle produced %d events, delay %v", res.Events, res.Delay)
	}
}

func TestNewRunnerRejectsBadDelays(t *testing.T) {
	nl := circuits.NewRippleAdder(4)
	bad := make([]float64, nl.NumGates())
	if _, err := NewRunner(nl, bad); err == nil {
		t.Fatal("NewRunner accepted zero delays")
	}
	if _, err := NewRunner(nl, bad[:1]); err == nil {
		t.Fatal("NewRunner accepted short delay slice")
	}
}

// TestObserverSeesEveryEvent: observer callback count matches Events.
func TestObserverSeesEveryEvent(t *testing.T) {
	nl := circuits.NewRippleAdder(8)
	r := runnerFor(t, nl, nominal())
	count := 0
	r.SetObserver(func(net netlist.NetID, tm float64, v bool) { count++ })
	res, err := r.Cycle(encN(8, 0, 0), encN(8, 0xFF, 1))
	if err != nil {
		t.Fatal(err)
	}
	if count != res.Events {
		t.Fatalf("observer saw %d events, result says %d", count, res.Events)
	}
}
