// Package sim is the event-driven gate-level timing simulator: the
// stand-in for the paper's back-annotated ModelSim runs. Given a netlist
// and a per-gate delay annotation (from internal/sta or a parsed SDF
// file) it simulates one clock cycle at a time — the circuit settled at
// the previous input vector, the new vector applied at t = 0 — and
// reports the cycle's dynamic delay (time of the last primary-output
// toggle), the settled output values, and the value that a capture
// register would sample at any candidate clock period.
//
// Gates use the inertial delay model: a scheduled output change is
// cancelled if the gate re-evaluates to its present value before the
// change matures, so pulses shorter than a gate delay are swallowed, as
// in an event-driven HDL simulator's default mode.
package sim

import (
	"fmt"
	"math"

	"tevot/internal/netlist"
)

// Toggle is one recorded output transition.
type Toggle struct {
	T   float64 // ps after the clock edge
	Val bool
}

// CycleResult describes one simulated cycle. The slices are owned by the
// Runner and are valid only until the next Cycle call; use Clone to keep
// them.
type CycleResult struct {
	// Delay is the dynamic delay: the time of the last toggle on any
	// primary output, 0 if no output toggled.
	Delay float64
	// Settled holds the final primary-output values (equal to the
	// zero-delay evaluation of the new input vector).
	Settled []bool
	// Toggles records each primary output's transitions, in time order.
	Toggles [][]Toggle
	// Events counts processed net transitions (simulation effort).
	Events int
}

// Sampled returns the values a capture register clocked with period tclk
// (ps) would latch: for each output, the last toggle strictly before tclk
// applied on top of the cycle's initial output values (transitions at the
// sampling instant are missed).
func (r *CycleResult) Sampled(initial []bool, tclk float64) []bool {
	return r.SampledInto(make([]bool, len(initial)), initial, tclk)
}

// SampledInto is Sampled writing into the caller-provided dst (which
// must have len(initial) entries and may alias initial), so a
// characterization loop can sample every cycle without allocating. It
// returns dst.
func (r *CycleResult) SampledInto(dst, initial []bool, tclk float64) []bool {
	copy(dst, initial)
	for i, ts := range r.Toggles {
		for _, tg := range ts {
			if tg.T < tclk {
				dst[i] = tg.Val
			} else {
				break
			}
		}
	}
	return dst
}

// ErrorAt reports whether sampling at clock period tclk (ps) yields any
// output bit different from the settled value — a timing error in the
// paper's sense.
func (r *CycleResult) ErrorAt(initial []bool, tclk float64) bool {
	for i, ts := range r.Toggles {
		v := initial[i]
		for _, tg := range ts {
			if tg.T < tclk {
				v = tg.Val
			} else {
				break
			}
		}
		if v != r.Settled[i] {
			return true
		}
	}
	return false
}

// SampledValue packs the sampled output bits at tclk into a uint32
// (outputs beyond bit 31 are ignored); initial must hold the outputs'
// values at the cycle start.
func (r *CycleResult) SampledValue(initial []bool, tclk float64) uint32 {
	var v uint32
	for i, ts := range r.Toggles {
		bit := initial[i]
		for _, tg := range ts {
			if tg.T < tclk {
				bit = tg.Val
			} else {
				break
			}
		}
		if bit && i < 32 {
			v |= 1 << i
		}
	}
	return v
}

// Clone deep-copies the result so it survives subsequent Cycle calls.
func (r *CycleResult) Clone() *CycleResult {
	c := &CycleResult{Delay: r.Delay, Events: r.Events}
	c.Settled = append([]bool(nil), r.Settled...)
	c.Toggles = make([][]Toggle, len(r.Toggles))
	for i, ts := range r.Toggles {
		c.Toggles[i] = append([]Toggle(nil), ts...)
	}
	return c
}

// Observer receives every net transition during event processing; used by
// the VCD writer. The callback must not retain the arguments' referents.
type Observer func(net netlist.NetID, t float64, val bool)

// Runner simulates cycles over one netlist with one delay annotation.
// It is not safe for concurrent use; create one Runner per goroutine.
//
// Two kernels share this state. The default (NewRunner) is the fast
// kernel: a calendar-queue scheduler over the netlist's CSR view with
// per-gate truth-table LUT evaluation. The reference kernel
// (NewRefRunner) is the original binary-heap/switch-dispatch event loop,
// kept as the differential oracle: both produce bit-identical Delay,
// Settled, Toggles, Events, and observer streams on every circuit.
type Runner struct {
	nl     *netlist.Netlist
	delays []float64

	val  []bool   // current value per net
	proj []bool   // projected value per net after pending events
	gen  []uint32 // event generation per net, for inertial cancellation

	outIndex []int32 // net -> primary-output index + 1, or 0
	initOut  []bool  // output values at cycle start (previous settled)

	stamp    []uint32 // per-gate visit stamp for batch deduplication
	curStamp uint32
	batch    []netlist.GateID

	res      CycleResult
	observer Observer
	settled  bool // val holds a settled state from a previous cycle

	// Transition memo cache (memo.go). packPrev always holds the packed
	// key of the vector the circuit is logically settled at (once
	// keyValid); lastVec is that vector itself, kept for re-settling
	// after a hit leaves the event state stale (valStale).
	memo     *memoCache
	keyValid bool
	valStale bool
	packPrev []uint64
	packCur  []uint64
	keyBuf   []byte
	lastVec  []bool
	slice    bitslice // fast kernel: zero-delay window prepass (bitslice.go)

	// refKernel selects the heap oracle; the fields below it belong to
	// one kernel each.
	refKernel bool
	heap      eventHeap // ref kernel: pending-event min-heap

	csr   *netlist.CSR // fast kernel: flattened fanout/pin arrays
	lut   []uint8      // fast kernel: per-gate packed truth table
	inVal []uint8      // fast kernel: per-gate packed input values
	cq    calQueue     // fast kernel: calendar-queue scheduler
}

// NewRunner creates a Runner using the fast kernel. delays must hold one
// propagation delay (ps) per gate, as produced by sta.GateDelays or
// sdf.File.Apply.
func NewRunner(nl *netlist.Netlist, delays []float64) (*Runner, error) {
	return newRunner(nl, delays, false)
}

// NewRefRunner creates a Runner using the reference heap kernel — the
// differential oracle the fast kernel is verified against. It is
// intentionally slow (per-event heap percolation, switch-dispatch gate
// evaluation); use it only for equivalence testing and debugging.
func NewRefRunner(nl *netlist.Netlist, delays []float64) (*Runner, error) {
	return newRunner(nl, delays, true)
}

func newRunner(nl *netlist.Netlist, delays []float64, refKernel bool) (*Runner, error) {
	if len(delays) != len(nl.Gates) {
		return nil, fmt.Errorf("sim: %d delays for %d gates", len(delays), len(nl.Gates))
	}
	for gi, d := range delays {
		if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("sim: gate %q has invalid delay %v", nl.Gates[gi].Name, d)
		}
	}
	if _, err := nl.TopoOrder(); err != nil {
		return nil, err
	}
	r := &Runner{
		nl:        nl,
		delays:    delays,
		val:       make([]bool, nl.NumNets()),
		proj:      make([]bool, nl.NumNets()),
		gen:       make([]uint32, nl.NumNets()),
		outIndex:  make([]int32, nl.NumNets()),
		initOut:   make([]bool, len(nl.PrimaryOutputs)),
		stamp:     make([]uint32, nl.NumGates()),
		refKernel: refKernel,
	}
	for i, po := range nl.PrimaryOutputs {
		r.outIndex[po] = int32(i + 1)
	}
	r.res.Settled = make([]bool, len(nl.PrimaryOutputs))
	r.res.Toggles = make([][]Toggle, len(nl.PrimaryOutputs))
	if !refKernel {
		r.csr = nl.CSR()
		r.lut = make([]uint8, nl.NumGates())
		r.inVal = make([]uint8, nl.NumGates())
		minD, maxD := 1.0, 1.0
		if len(delays) > 0 {
			minD, maxD = delays[0], delays[0]
			for _, d := range delays[1:] {
				if d < minD {
					minD = d
				}
				if d > maxD {
					maxD = d
				}
			}
		}
		r.cq.init(minD, maxD)
		for gi := range nl.Gates {
			r.lut[gi] = nl.Gates[gi].Kind.LUT()
		}
	}
	return r, nil
}

// Ref reports whether this Runner uses the reference heap kernel.
func (r *Runner) Ref() bool { return r.refKernel }

// SetObserver registers a transition observer (nil to remove). While an
// observer is attached, the transition memo cache is bypassed — a
// cached hit skips event processing and could not replay the per-net
// transition stream — so the observer sees every toggle of every cycle
// even with the memo enabled.
func (r *Runner) SetObserver(o Observer) { r.observer = o }

// InitialOutputs returns the output values at the start of the last
// simulated cycle (the settled outputs of the previous vector). The slice
// is owned by the Runner.
func (r *Runner) InitialOutputs() []bool { return r.initOut }

// Netlist returns the simulated netlist.
func (r *Runner) Netlist() *netlist.Netlist { return r.nl }

// Cycle simulates one clock cycle: the circuit is settled at prev, then
// cur is applied at t = 0 and events propagate to quiescence. If prev is
// nil the settled state from the previous Cycle call is reused (the
// normal streaming mode, which also makes consecutive cycles share state
// exactly like the real register file would).
//
// With the transition memo enabled (EnableMemo) and no observer
// attached, a transition seen before returns its cached outcome without
// event processing — bit-identical to a simulated cycle, rehydrated
// into the same reusable result buffers.
func (r *Runner) Cycle(prev, cur []bool) (*CycleResult, error) {
	nl := r.nl
	if len(cur) != len(nl.PrimaryInputs) {
		return nil, fmt.Errorf("sim: got %d current inputs, want %d", len(cur), len(nl.PrimaryInputs))
	}
	if prev == nil && !r.settled {
		return nil, fmt.Errorf("sim: first Cycle call requires an explicit previous vector")
	}
	if prev != nil && len(prev) != len(nl.PrimaryInputs) {
		return nil, fmt.Errorf("sim: got %d previous inputs, want %d", len(prev), len(nl.PrimaryInputs))
	}

	// Transition memo: pack the (prev, cur) key and advance the window
	// cursor before anything else, so hit and miss paths stay in step
	// with the stream position. A hit returns the cached cycle and
	// leaves the event state stale; the next miss re-settles it below.
	li := -1
	useMemo := false
	if r.memo != nil {
		packBits(cur, r.packCur)
		if prev != nil {
			packBits(prev, r.packPrev)
			r.keyValid = true
		}
		li = r.sliceMatch()
		useMemo = r.keyValid && r.observer == nil
		if useMemo {
			if e := r.memo.lookup(r.memoKey()); e != nil {
				r.rehydrate(e)
				r.valStale = true
				r.finishMemo(cur)
				r.settled = true
				return &r.res, nil
			}
		}
	}

	if prev != nil {
		if err := nl.EvalInto(prev, r.val); err != nil {
			return nil, err
		}
		if !r.refKernel {
			// The settle rewrote val wholesale; resync the packed
			// per-gate input bitsets the fast kernel maintains
			// incrementally during event processing.
			r.rebuildInVals()
		}
		r.slice.valPos = -1
		r.valStale = false
	} else if r.valStale {
		// A memo hit skipped event processing; re-settle at the vector
		// the circuit is logically at — by lane extraction when a
		// bitslice window covers it, by full re-evaluation otherwise.
		if r.slice.active && li >= 1 {
			r.sliceSettle(li - 1)
		} else {
			if err := nl.EvalInto(r.lastVec, r.val); err != nil {
				return nil, err
			}
			if !r.refKernel {
				r.rebuildInVals()
			}
		}
		r.valStale = false
	}
	copy(r.proj, r.val)
	for i, po := range nl.PrimaryOutputs {
		r.initOut[i] = r.val[po]
	}
	res := &r.res
	res.Delay = 0
	res.Events = 0
	for i := range res.Toggles {
		res.Toggles[i] = res.Toggles[i][:0]
	}

	if r.refKernel {
		r.cycleRef(cur)
	} else {
		r.cycleFast(cur)
	}

	for i, po := range nl.PrimaryOutputs {
		res.Settled[i] = r.val[po]
	}
	if r.slice.active && li >= 1 {
		// val is now settled at cur, which the window knows as lane li.
		r.slice.valPos = li
	}
	if useMemo {
		r.memo.store(r.memoKey(), res, r.initOut)
	}
	if r.memo != nil {
		r.finishMemo(cur)
	}
	r.settled = true
	return res, nil
}

// finishMemo rolls the memo key state forward after a cycle: the circuit
// is now logically settled at cur, so cur's packed form becomes the next
// cycle's prev key and lastVec remembers the vector itself for
// re-settling after hits.
func (r *Runner) finishMemo(cur []bool) {
	r.packPrev, r.packCur = r.packCur, r.packPrev
	r.keyValid = true
	copy(r.lastVec, cur)
}

// mark queues a gate for re-evaluation in the current batch, once: the
// re-evaluation deduplication that keeps a gate whose inputs change
// multiple times at the same timestamp down to a single evaluation.
func (r *Runner) mark(g netlist.GateID) {
	if r.stamp[g] != r.curStamp {
		r.stamp[g] = r.curStamp
		r.batch = append(r.batch, g)
	}
}
