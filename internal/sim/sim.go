// Package sim is the event-driven gate-level timing simulator: the
// stand-in for the paper's back-annotated ModelSim runs. Given a netlist
// and a per-gate delay annotation (from internal/sta or a parsed SDF
// file) it simulates one clock cycle at a time — the circuit settled at
// the previous input vector, the new vector applied at t = 0 — and
// reports the cycle's dynamic delay (time of the last primary-output
// toggle), the settled output values, and the value that a capture
// register would sample at any candidate clock period.
//
// Gates use the inertial delay model: a scheduled output change is
// cancelled if the gate re-evaluates to its present value before the
// change matures, so pulses shorter than a gate delay are swallowed, as
// in an event-driven HDL simulator's default mode.
package sim

import (
	"fmt"
	"math"

	"tevot/internal/netlist"
)

// Toggle is one recorded output transition.
type Toggle struct {
	T   float64 // ps after the clock edge
	Val bool
}

// CycleResult describes one simulated cycle. The slices are owned by the
// Runner and are valid only until the next Cycle call; use Clone to keep
// them.
type CycleResult struct {
	// Delay is the dynamic delay: the time of the last toggle on any
	// primary output, 0 if no output toggled.
	Delay float64
	// Settled holds the final primary-output values (equal to the
	// zero-delay evaluation of the new input vector).
	Settled []bool
	// Toggles records each primary output's transitions, in time order.
	Toggles [][]Toggle
	// Events counts processed net transitions (simulation effort).
	Events int
}

// Sampled returns the values a capture register clocked with period tclk
// (ps) would latch: for each output, the last toggle strictly before tclk
// applied on top of the cycle's initial output values (transitions at the
// sampling instant are missed).
func (r *CycleResult) Sampled(initial []bool, tclk float64) []bool {
	return r.SampledInto(make([]bool, len(initial)), initial, tclk)
}

// SampledInto is Sampled writing into the caller-provided dst (which
// must have len(initial) entries and may alias initial), so a
// characterization loop can sample every cycle without allocating. It
// returns dst.
func (r *CycleResult) SampledInto(dst, initial []bool, tclk float64) []bool {
	copy(dst, initial)
	for i, ts := range r.Toggles {
		for _, tg := range ts {
			if tg.T < tclk {
				dst[i] = tg.Val
			} else {
				break
			}
		}
	}
	return dst
}

// ErrorAt reports whether sampling at clock period tclk (ps) yields any
// output bit different from the settled value — a timing error in the
// paper's sense.
func (r *CycleResult) ErrorAt(initial []bool, tclk float64) bool {
	for i, ts := range r.Toggles {
		v := initial[i]
		for _, tg := range ts {
			if tg.T < tclk {
				v = tg.Val
			} else {
				break
			}
		}
		if v != r.Settled[i] {
			return true
		}
	}
	return false
}

// SampledValue packs the sampled output bits at tclk into a uint32
// (outputs beyond bit 31 are ignored); initial must hold the outputs'
// values at the cycle start.
func (r *CycleResult) SampledValue(initial []bool, tclk float64) uint32 {
	var v uint32
	for i, ts := range r.Toggles {
		bit := initial[i]
		for _, tg := range ts {
			if tg.T < tclk {
				bit = tg.Val
			} else {
				break
			}
		}
		if bit && i < 32 {
			v |= 1 << i
		}
	}
	return v
}

// Clone deep-copies the result so it survives subsequent Cycle calls.
func (r *CycleResult) Clone() *CycleResult {
	c := &CycleResult{Delay: r.Delay, Events: r.Events}
	c.Settled = append([]bool(nil), r.Settled...)
	c.Toggles = make([][]Toggle, len(r.Toggles))
	for i, ts := range r.Toggles {
		c.Toggles[i] = append([]Toggle(nil), ts...)
	}
	return c
}

// Observer receives every net transition during event processing; used by
// the VCD writer. The callback must not retain the arguments' referents.
type Observer func(net netlist.NetID, t float64, val bool)

// Runner simulates cycles over one netlist with one delay annotation.
// It is not safe for concurrent use; create one Runner per goroutine.
type Runner struct {
	nl     *netlist.Netlist
	delays []float64

	val  []bool   // current value per net
	proj []bool   // projected value per net after pending events
	gen  []uint32 // event generation per net, for inertial cancellation

	heap eventHeap

	outIndex []int32 // net -> primary-output index + 1, or 0
	initOut  []bool  // output values at cycle start (previous settled)

	stamp    []uint32 // per-gate visit stamp for batch deduplication
	curStamp uint32
	batch    []netlist.GateID

	res      CycleResult
	observer Observer
	settled  bool // val holds a settled state from a previous cycle
}

// NewRunner creates a Runner. delays must hold one propagation delay (ps)
// per gate, as produced by sta.GateDelays or sdf.File.Apply.
func NewRunner(nl *netlist.Netlist, delays []float64) (*Runner, error) {
	if len(delays) != len(nl.Gates) {
		return nil, fmt.Errorf("sim: %d delays for %d gates", len(delays), len(nl.Gates))
	}
	for gi, d := range delays {
		if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("sim: gate %q has invalid delay %v", nl.Gates[gi].Name, d)
		}
	}
	if _, err := nl.TopoOrder(); err != nil {
		return nil, err
	}
	r := &Runner{
		nl:       nl,
		delays:   delays,
		val:      make([]bool, nl.NumNets()),
		proj:     make([]bool, nl.NumNets()),
		gen:      make([]uint32, nl.NumNets()),
		outIndex: make([]int32, nl.NumNets()),
		initOut:  make([]bool, len(nl.PrimaryOutputs)),
		stamp:    make([]uint32, nl.NumGates()),
	}
	for i, po := range nl.PrimaryOutputs {
		r.outIndex[po] = int32(i + 1)
	}
	r.res.Settled = make([]bool, len(nl.PrimaryOutputs))
	r.res.Toggles = make([][]Toggle, len(nl.PrimaryOutputs))
	return r, nil
}

// SetObserver registers a transition observer (nil to remove).
func (r *Runner) SetObserver(o Observer) { r.observer = o }

// InitialOutputs returns the output values at the start of the last
// simulated cycle (the settled outputs of the previous vector). The slice
// is owned by the Runner.
func (r *Runner) InitialOutputs() []bool { return r.initOut }

// Netlist returns the simulated netlist.
func (r *Runner) Netlist() *netlist.Netlist { return r.nl }

// Cycle simulates one clock cycle: the circuit is settled at prev, then
// cur is applied at t = 0 and events propagate to quiescence. If prev is
// nil the settled state from the previous Cycle call is reused (the
// normal streaming mode, which also makes consecutive cycles share state
// exactly like the real register file would).
func (r *Runner) Cycle(prev, cur []bool) (*CycleResult, error) {
	nl := r.nl
	if len(cur) != len(nl.PrimaryInputs) {
		return nil, fmt.Errorf("sim: got %d current inputs, want %d", len(cur), len(nl.PrimaryInputs))
	}
	if prev == nil && !r.settled {
		return nil, fmt.Errorf("sim: first Cycle call requires an explicit previous vector")
	}
	if prev != nil {
		if len(prev) != len(nl.PrimaryInputs) {
			return nil, fmt.Errorf("sim: got %d previous inputs, want %d", len(prev), len(nl.PrimaryInputs))
		}
		if err := nl.EvalInto(prev, r.val); err != nil {
			return nil, err
		}
	}
	copy(r.proj, r.val)
	for i, po := range nl.PrimaryOutputs {
		r.initOut[i] = r.val[po]
	}
	res := &r.res
	res.Delay = 0
	res.Events = 0
	for i := range res.Toggles {
		res.Toggles[i] = res.Toggles[i][:0]
	}
	r.heap = r.heap[:0]

	// Apply the new vector at t = 0 and seed the first gate batch.
	r.curStamp++
	r.batch = r.batch[:0]
	for i, pi := range nl.PrimaryInputs {
		if r.val[pi] != cur[i] {
			r.val[pi] = cur[i]
			r.proj[pi] = cur[i]
			res.Events++
			if r.observer != nil {
				r.observer(pi, 0, cur[i])
			}
			if oi := r.outIndex[pi]; oi != 0 {
				// Degenerate but legal: an input wired straight out.
				res.Toggles[oi-1] = append(res.Toggles[oi-1], Toggle{0, cur[i]})
			}
			for _, g := range nl.Nets[pi].Fanout {
				r.mark(g)
			}
		}
	}
	r.evalBatch(0)

	// Event loop: drain strictly increasing time batches.
	for len(r.heap) > 0 {
		t := r.heap[0].t
		r.curStamp++
		r.batch = r.batch[:0]
		for len(r.heap) > 0 && r.heap[0].t == t {
			ev := r.heap.pop()
			if ev.gen != r.gen[ev.net] {
				continue // cancelled by a later re-evaluation
			}
			if r.val[ev.net] == ev.val {
				continue
			}
			r.val[ev.net] = ev.val
			res.Events++
			if r.observer != nil {
				r.observer(ev.net, t, ev.val)
			}
			if oi := r.outIndex[ev.net]; oi != 0 {
				res.Toggles[oi-1] = append(res.Toggles[oi-1], Toggle{t, ev.val})
				if t > res.Delay {
					res.Delay = t
				}
			}
			for _, g := range nl.Nets[ev.net].Fanout {
				r.mark(g)
			}
		}
		r.evalBatch(t)
	}

	for i, po := range nl.PrimaryOutputs {
		res.Settled[i] = r.val[po]
	}
	r.settled = true
	return res, nil
}

// mark queues a gate for re-evaluation in the current batch, once.
func (r *Runner) mark(g netlist.GateID) {
	if r.stamp[g] != r.curStamp {
		r.stamp[g] = r.curStamp
		r.batch = append(r.batch, g)
	}
}

// evalBatch re-evaluates each gate marked at time t and schedules inertial
// output transitions.
func (r *Runner) evalBatch(t float64) {
	var in [3]bool
	for _, gi := range r.batch {
		g := &r.nl.Gates[gi]
		for j, id := range g.Inputs {
			in[j] = r.val[id]
		}
		v := g.Kind.Eval(in[:len(g.Inputs)])
		out := g.Output
		if v == r.proj[out] {
			continue
		}
		// Inertial model: cancel any pending event and either schedule
		// the new transition or swallow the pulse entirely.
		r.gen[out]++
		r.proj[out] = v
		if v != r.val[out] {
			r.heap.push(event{t: t + r.delays[gi], net: out, val: v, gen: r.gen[out]})
		}
	}
}
