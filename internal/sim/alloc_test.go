package sim

import (
	"math/rand"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/sta"
)

// steadyRunner builds a warmed-up runner and a pool of input vectors for
// allocation measurements.
func steadyRunner(t testing.TB, fu circuits.FU) (*Runner, [][]bool) {
	return steadyKernelRunner(t, fu, false)
}

func steadyKernelRunner(t testing.TB, fu circuits.FU, ref bool) (*Runner, [][]bool) {
	nl, err := fu.Build()
	if err != nil {
		t.Fatal(err)
	}
	delays, err := sta.GateDelays(nl, cells.Corner{V: 0.85, T: 50}, sta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	newR := NewRunner
	if ref {
		newR = NewRefRunner
	}
	r, err := newR(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	vecs := make([][]bool, 64)
	for i := range vecs {
		vecs[i] = circuits.EncodeOperands(rng.Uint32(), rng.Uint32())
	}
	// Warm-up pass: grow the toggle, heap, and batch buffers to their
	// working capacity so the steady state reuses them.
	if _, err := r.Cycle(vecs[0], vecs[1]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*len(vecs); i++ {
		if _, err := r.Cycle(nil, vecs[i%len(vecs)]); err != nil {
			t.Fatal(err)
		}
	}
	return r, vecs
}

// TestCycleSteadyStateNoAllocs locks in the allocation-free hot path for
// both kernels: after warm-up, streaming Cycle calls reuse every
// internal buffer — the fast kernel's calendar-queue buckets and batch
// scratch included.
func TestCycleSteadyStateNoAllocs(t *testing.T) {
	for _, kern := range []struct {
		name string
		ref  bool
	}{{"fast", false}, {"ref", true}} {
		for _, fu := range circuits.AllFUs {
			kern, fu := kern, fu
			t.Run(kern.name+"/"+fu.String(), func(t *testing.T) {
				r, vecs := steadyKernelRunner(t, fu, kern.ref)
				i := 0
				allocs := testing.AllocsPerRun(200, func() {
					if _, err := r.Cycle(nil, vecs[i%len(vecs)]); err != nil {
						t.Fatal(err)
					}
					i++
				})
				if allocs != 0 {
					t.Fatalf("steady-state Cycle allocates %.1f times per call; want 0", allocs)
				}
			})
		}
	}
}

// steadyMemoRunner is steadyRunner with the transition memo enabled and
// every transition of the vector ring already cached: two full warm-up
// passes populate the cache (and grow the rehydration buffers), so
// subsequent streaming cycles are pure hits.
func steadyMemoRunner(t testing.TB, fu circuits.FU) (*Runner, [][]bool) {
	nl, err := fu.Build()
	if err != nil {
		t.Fatal(err)
	}
	delays, err := sta.GateDelays(nl, cells.Corner{V: 0.85, T: 50}, sta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	r.EnableMemo(0)
	rng := rand.New(rand.NewSource(7))
	vecs := make([][]bool, 64)
	for i := range vecs {
		vecs[i] = circuits.EncodeOperands(rng.Uint32(), rng.Uint32())
	}
	if _, err := r.Cycle(vecs[0], vecs[1]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*len(vecs); i++ {
		if _, err := r.Cycle(nil, vecs[i%len(vecs)]); err != nil {
			t.Fatal(err)
		}
	}
	return r, vecs
}

// TestMemoHitSteadyStateNoAllocs locks in the allocation-free memoized
// hit path on every functional unit: once the vector ring's transitions
// are cached, a streaming Cycle is key packing + one map lookup + a
// rehydration into reused buffers — zero allocations.
func TestMemoHitSteadyStateNoAllocs(t *testing.T) {
	for _, fu := range circuits.AllFUs {
		fu := fu
		t.Run(fu.String(), func(t *testing.T) {
			r, vecs := steadyMemoRunner(t, fu)
			before := r.MemoStats()
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := r.Cycle(nil, vecs[i%len(vecs)]); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if allocs != 0 {
				t.Fatalf("memoized hit path allocates %.1f times per call; want 0", allocs)
			}
			after := r.MemoStats()
			if after.Misses != before.Misses {
				t.Fatalf("steady state missed the cache %d times; the measurement did not cover the hit path",
					after.Misses-before.Misses)
			}
		})
	}
}

// TestWindowScratchNoAllocs locks in the reused bitslice scratch: after
// the first window allocates the lane/key/dirty buffers, declaring a new
// window plus streaming through it is allocation-free.
func TestWindowScratchNoAllocs(t *testing.T) {
	r, vecs := steadyMemoRunner(t, circuits.IntAdd32)
	window := vecs[1:9]
	// First window call allocates the scratch once.
	if err := r.BeginWindow(window); err != nil {
		t.Fatal(err)
	}
	for _, v := range window {
		if _, err := r.Cycle(nil, v); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := r.BeginWindow(window); err != nil {
			t.Fatal(err)
		}
		for _, v := range window {
			if _, err := r.Cycle(nil, v); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("bitslice window scratch allocates %.1f times per window; want 0", allocs)
	}
	if s := r.SliceStats(); s.Windows < 50 {
		t.Fatalf("windows did not engage during the measurement: %+v", s)
	}
}

// TestSampledIntoMatchesSampled checks the no-alloc sampling variant
// against the allocating one across candidate clocks, and that it does
// not allocate.
func TestSampledIntoMatchesSampled(t *testing.T) {
	r, vecs := steadyRunner(t, circuits.IntAdd32)
	dst := make([]bool, len(r.Netlist().PrimaryOutputs))
	for i := 0; i < len(vecs); i++ {
		res, err := r.Cycle(nil, vecs[i])
		if err != nil {
			t.Fatal(err)
		}
		init := r.InitialOutputs()
		for _, tclk := range []float64{0, res.Delay / 2, res.Delay, res.Delay * 2} {
			want := res.Sampled(init, tclk)
			got := res.SampledInto(dst, init, tclk)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("cycle %d tclk %v: SampledInto[%d] = %v, Sampled = %v", i, tclk, k, got[k], want[k])
				}
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			res.SampledInto(dst, init, res.Delay/2)
		})
		if allocs != 0 {
			t.Fatalf("SampledInto allocates %.1f times per call; want 0", allocs)
		}
	}
}
