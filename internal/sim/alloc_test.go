package sim

import (
	"math/rand"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/sta"
)

// steadyRunner builds a warmed-up runner and a pool of input vectors for
// allocation measurements.
func steadyRunner(t testing.TB, fu circuits.FU) (*Runner, [][]bool) {
	return steadyKernelRunner(t, fu, false)
}

func steadyKernelRunner(t testing.TB, fu circuits.FU, ref bool) (*Runner, [][]bool) {
	nl, err := fu.Build()
	if err != nil {
		t.Fatal(err)
	}
	delays, err := sta.GateDelays(nl, cells.Corner{V: 0.85, T: 50}, sta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	newR := NewRunner
	if ref {
		newR = NewRefRunner
	}
	r, err := newR(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	vecs := make([][]bool, 64)
	for i := range vecs {
		vecs[i] = circuits.EncodeOperands(rng.Uint32(), rng.Uint32())
	}
	// Warm-up pass: grow the toggle, heap, and batch buffers to their
	// working capacity so the steady state reuses them.
	if _, err := r.Cycle(vecs[0], vecs[1]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*len(vecs); i++ {
		if _, err := r.Cycle(nil, vecs[i%len(vecs)]); err != nil {
			t.Fatal(err)
		}
	}
	return r, vecs
}

// TestCycleSteadyStateNoAllocs locks in the allocation-free hot path for
// both kernels: after warm-up, streaming Cycle calls reuse every
// internal buffer — the fast kernel's calendar-queue buckets and batch
// scratch included.
func TestCycleSteadyStateNoAllocs(t *testing.T) {
	for _, kern := range []struct {
		name string
		ref  bool
	}{{"fast", false}, {"ref", true}} {
		for _, fu := range circuits.AllFUs {
			kern, fu := kern, fu
			t.Run(kern.name+"/"+fu.String(), func(t *testing.T) {
				r, vecs := steadyKernelRunner(t, fu, kern.ref)
				i := 0
				allocs := testing.AllocsPerRun(200, func() {
					if _, err := r.Cycle(nil, vecs[i%len(vecs)]); err != nil {
						t.Fatal(err)
					}
					i++
				})
				if allocs != 0 {
					t.Fatalf("steady-state Cycle allocates %.1f times per call; want 0", allocs)
				}
			})
		}
	}
}

// TestSampledIntoMatchesSampled checks the no-alloc sampling variant
// against the allocating one across candidate clocks, and that it does
// not allocate.
func TestSampledIntoMatchesSampled(t *testing.T) {
	r, vecs := steadyRunner(t, circuits.IntAdd32)
	dst := make([]bool, len(r.Netlist().PrimaryOutputs))
	for i := 0; i < len(vecs); i++ {
		res, err := r.Cycle(nil, vecs[i])
		if err != nil {
			t.Fatal(err)
		}
		init := r.InitialOutputs()
		for _, tclk := range []float64{0, res.Delay / 2, res.Delay, res.Delay * 2} {
			want := res.Sampled(init, tclk)
			got := res.SampledInto(dst, init, tclk)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("cycle %d tclk %v: SampledInto[%d] = %v, Sampled = %v", i, tclk, k, got[k], want[k])
				}
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			res.SampledInto(dst, init, res.Delay/2)
		})
		if allocs != 0 {
			t.Fatalf("SampledInto allocates %.1f times per call; want 0", allocs)
		}
	}
}
