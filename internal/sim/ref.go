package sim

// The reference kernel: the original binary-heap scheduler with
// switch-dispatch gate evaluation, preserved verbatim behind the
// refKernel switch as the differential oracle for the fast kernel.
// Delay, Settled, Toggles, Events, and the observer stream must be
// bit-identical between the two on every circuit; the differential
// fuzz suite (diff_test.go) and the kernel-equivalence step in
// scripts/check.sh enforce this.

// cycleRef runs one cycle's event processing with the heap kernel. The
// caller (Runner.Cycle) has already settled val, reset the result, and
// seeded proj/initOut.
func (r *Runner) cycleRef(cur []bool) {
	nl := r.nl
	res := &r.res
	r.heap = r.heap[:0]

	// Apply the new vector at t = 0 and seed the first gate batch.
	r.curStamp++
	r.batch = r.batch[:0]
	for i, pi := range nl.PrimaryInputs {
		if r.val[pi] != cur[i] {
			r.val[pi] = cur[i]
			r.proj[pi] = cur[i]
			res.Events++
			if r.observer != nil {
				r.observer(pi, 0, cur[i])
			}
			if oi := r.outIndex[pi]; oi != 0 {
				// Degenerate but legal: an input wired straight out.
				res.Toggles[oi-1] = append(res.Toggles[oi-1], Toggle{0, cur[i]})
			}
			for _, g := range nl.Nets[pi].Fanout {
				r.mark(g)
			}
		}
	}
	r.evalBatchRef(0)

	// Event loop: drain strictly increasing time batches.
	for len(r.heap) > 0 {
		t := r.heap[0].t
		r.curStamp++
		r.batch = r.batch[:0]
		for len(r.heap) > 0 && r.heap[0].t == t {
			ev := r.heap.pop()
			if ev.gen != r.gen[ev.net] {
				continue // cancelled by a later re-evaluation
			}
			if r.val[ev.net] == ev.val {
				continue
			}
			r.val[ev.net] = ev.val
			res.Events++
			if r.observer != nil {
				r.observer(ev.net, t, ev.val)
			}
			if oi := r.outIndex[ev.net]; oi != 0 {
				res.Toggles[oi-1] = append(res.Toggles[oi-1], Toggle{t, ev.val})
				if t > res.Delay {
					res.Delay = t
				}
			}
			for _, g := range nl.Nets[ev.net].Fanout {
				r.mark(g)
			}
		}
		r.evalBatchRef(t)
	}
}

// evalBatchRef re-evaluates each gate marked at time t through the cell
// library's switch dispatch and schedules inertial output transitions.
func (r *Runner) evalBatchRef(t float64) {
	var in [3]bool
	for _, gi := range r.batch {
		g := &r.nl.Gates[gi]
		for j, id := range g.Inputs {
			in[j] = r.val[id]
		}
		v := g.Kind.Eval(in[:len(g.Inputs)])
		out := g.Output
		if v == r.proj[out] {
			continue
		}
		// Inertial model: cancel any pending event and either schedule
		// the new transition or swallow the pulse entirely.
		r.gen[out]++
		r.proj[out] = v
		if v != r.val[out] {
			r.heap.push(event{t: t + r.delays[gi], net: out, val: v, gen: r.gen[out]})
		}
	}
}
