package sim

import "tevot/internal/netlist"

// event is one pending net transition.
type event struct {
	t   float64
	net netlist.NetID
	val bool
	gen uint32 // must match gen[net] at pop time, else the event is dead
}

// eventHeap is a binary min-heap on (t, net) implemented directly on a
// slice to avoid interface dispatch in the simulator's hot loop. Ties on
// time break on net id so event order — and therefore every simulation —
// is fully deterministic.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].net < h[j].net
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h).less(l, smallest) {
			smallest = l
		}
		if r < n && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}
