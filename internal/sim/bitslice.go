package sim

import (
	"fmt"

	"tevot/internal/netlist"
)

// The bit-parallel zero-delay prepass: a bitslice evaluation of the CSR
// netlist that computes the settled value of every net for up to
// WindowMax upcoming cycles in one topological sweep, one uint64 lane
// per net with bit k holding the net's settled value at window position
// k (bit 0 is the vector the circuit is currently settled at; bits
// 1..n are the pending input vectors).
//
// The window serves the memo cache's miss path. After a memo hit the
// Runner's event state (val, and the fast kernel's packed per-gate
// input bitsets) still reflects an older vector; a subsequent miss must
// re-settle before simulating. Without a window that settle is a full
// zero-delay re-evaluation (Netlist.EvalInto) plus a complete
// input-bitset rebuild — O(gates) LUT work per miss. With a window the
// settle becomes pure bit extraction: flip exactly the nets whose lane
// bits differ between the settled-at position and the target position,
// fixing each reading gate's packed inputs with the same XOR-per-edge
// walk the event kernel uses. Nets whose lane is constant across the
// window are dropped from the dirty list up front, and gates reading
// only constant-lane nets are pruned from the prepass entirely — the
// SliceStats pruned-gate counters quantify how much of the netlist the
// window proves cold. (Event scheduling itself is untouched: a cycle
// that misses the cache still processes its exact event set, which is
// what keeps memo-on results bit-identical.)
//
// The prepass is exact, not approximate: zero-delay settled values are
// free of timing, so evaluating 64 vectors as 64 bit-lanes through the
// gates' truth tables in topological order reproduces Netlist.EvalInto
// bit-for-bit on every lane.

// WindowMax is the maximum number of pending cycles BeginWindow accepts:
// 63 pending vectors plus the settled base vector fill the 64 lanes of
// a uint64 bitslice.
const WindowMax = 63

// SliceStats snapshots the bitslice-prepass counters of a Runner.
type SliceStats struct {
	// Windows counts BeginWindow calls that engaged a window.
	Windows int64
	// PrunedGateWindows accumulates, over all windows, the number of
	// gates whose every input lane was constant across the window —
	// gates the prepass proves cold and skips entirely.
	PrunedGateWindows int64
	// Gates is the netlist's gate count, the per-window denominator.
	Gates int
}

// PrunedFraction returns the mean fraction of gates pruned per window.
func (s SliceStats) PrunedFraction() float64 {
	if s.Windows == 0 || s.Gates == 0 {
		return 0
	}
	return float64(s.PrunedGateWindows) / (float64(s.Windows) * float64(s.Gates))
}

// bitslice is the per-Runner window state.
type bitslice struct {
	active bool
	lanes  []uint64 // per-net settled-value lanes
	nLanes int      // valid lanes: 1 base + pending vectors
	keys   []uint64 // packed pending vectors, kw words each, for matching
	kw     int      // key words per vector
	next   int      // lane index the next Cycle's cur must match
	valPos int      // lane index r.val is settled at, -1 if none
	dirty  []int32  // nets whose lane is not constant across the window

	windows     int64
	prunedTotal int64
}

// BeginWindow engages a zero-delay bitslice window over the next
// len(vecs) streaming cycles: vecs[k] must be the cur vector of the
// k-th upcoming Cycle(nil, cur) call. It requires the fast kernel, an
// enabled memo cache that has keyed at least one cycle (the window's
// base lane is the vector the circuit is logically settled at), and
// 1..WindowMax vectors of the netlist's input width.
//
// The window is advisory: if a subsequent Cycle's inputs diverge from
// the declared vectors (or an explicit prev re-settles the circuit),
// the runner falls back to the windowless path for that settle —
// results are identical either way.
func (r *Runner) BeginWindow(vecs [][]bool) error {
	if r.refKernel {
		return fmt.Errorf("sim: BeginWindow requires the fast kernel")
	}
	if r.memo == nil || !r.keyValid || !r.settled {
		return fmt.Errorf("sim: BeginWindow requires an enabled memo cache and at least one completed Cycle")
	}
	if len(vecs) < 1 || len(vecs) > WindowMax {
		return fmt.Errorf("sim: BeginWindow got %d vectors; want 1..%d", len(vecs), WindowMax)
	}
	ni := len(r.nl.PrimaryInputs)
	for k, v := range vecs {
		if len(v) != ni {
			return fmt.Errorf("sim: BeginWindow vector %d has %d inputs, want %d", k, len(v), ni)
		}
	}
	s := &r.slice
	nl, csr := r.nl, r.csr
	if s.lanes == nil {
		s.lanes = make([]uint64, nl.NumNets())
		s.kw = (ni + 63) / 64
		s.keys = make([]uint64, 0, WindowMax*s.kw)
		s.dirty = make([]int32, 0, nl.NumNets())
	}

	// Seed every lane by broadcasting the current net value: undriven
	// nets (neither input, constant, nor gate output) keep whatever the
	// event state holds, exactly as EvalInto would leave them.
	lanes := s.lanes
	for i, v := range r.val {
		if v {
			lanes[i] = ^uint64(0)
		} else {
			lanes[i] = 0
		}
	}
	if nl.Const1 >= 0 {
		lanes[nl.Const1] = ^uint64(0)
	}
	if nl.Const0 >= 0 {
		lanes[nl.Const0] = 0
	}
	// Lane bit 0: the logically settled base vector. Bits 1..n: the
	// pending vectors, also packed into match keys.
	s.keys = s.keys[:len(vecs)*s.kw]
	for i, pi := range nl.PrimaryInputs {
		lane := uint64(0)
		if r.lastVec[i] {
			lane = 1
		}
		for k, v := range vecs {
			if v[i] {
				lane |= 1 << uint(k+1)
			}
		}
		lanes[pi] = lane
	}
	for k, v := range vecs {
		packBits(v, s.keys[k*s.kw:(k+1)*s.kw])
	}

	// Topological bitslice evaluation: one truth-table minterm expansion
	// per gate evaluates all 64 lanes at once. Unused pins read a zero
	// lane; the LUT replicates across cleared high bits (cells.Kind.LUT),
	// so minterms with an unused pin set contribute nothing and the
	// expansion is exact at every arity.
	topo := csr.Topo
	for _, gi := range topo {
		base := int(gi) * 3 // netlist.PinsPerGate
		var in0, in1, in2 uint64
		if n := csr.GateIn[base]; n >= 0 {
			in0 = lanes[n]
		}
		if n := csr.GateIn[base+1]; n >= 0 {
			in1 = lanes[n]
		}
		if n := csr.GateIn[base+2]; n >= 0 {
			in2 = lanes[n]
		}
		lut := r.lut[gi]
		var out uint64
		for m := uint8(0); m < 8; m++ {
			if lut>>m&1 == 0 {
				continue
			}
			t := ^uint64(0)
			if m&1 != 0 {
				t &= in0
			} else {
				t &= ^in0
			}
			if m&2 != 0 {
				t &= in1
			} else {
				t &= ^in1
			}
			if m&4 != 0 {
				t &= in2
			} else {
				t &= ^in2
			}
			out |= t
		}
		lanes[csr.GateOut[gi]] = out
	}

	// Dirty list: nets whose settled value changes anywhere in the
	// window. Everything else is provably cold for the whole window and
	// never touched by a lane settle.
	s.nLanes = len(vecs) + 1
	mask := ^uint64(0)
	if s.nLanes < 64 {
		mask = 1<<uint(s.nLanes) - 1
	}
	s.dirty = s.dirty[:0]
	for net, lane := range lanes {
		if v := lane & mask; v != 0 && v != mask {
			s.dirty = append(s.dirty, int32(net))
		}
	}

	// Pruned-gate accounting: gates none of whose input nets are dirty.
	r.curStamp++
	active := 0
	for _, net := range s.dirty {
		for e := csr.FanoutStart[net]; e < csr.FanoutStart[net+1]; e++ {
			g := csr.FanoutEdges[e] >> 2
			if r.stamp[g] != r.curStamp {
				r.stamp[g] = r.curStamp
				active++
			}
		}
	}
	s.prunedTotal += int64(nl.NumGates() - active)
	s.windows++

	s.next = 1
	if r.valStale {
		s.valPos = -1
	} else {
		s.valPos = 0
	}
	s.active = true
	return nil
}

// SliceStats snapshots the bitslice-prepass counters.
func (r *Runner) SliceStats() SliceStats {
	return SliceStats{
		Windows:           r.slice.windows,
		PrunedGateWindows: r.slice.prunedTotal,
		Gates:             r.nl.NumGates(),
	}
}

// sliceMatch advances the window cursor if the packed cur vector equals
// the declared pending vector, returning its lane index; any divergence
// (or an exhausted window) deactivates the window and returns -1.
func (r *Runner) sliceMatch() int {
	s := &r.slice
	if !s.active {
		return -1
	}
	if s.next >= s.nLanes {
		s.active = false
		return -1
	}
	key := s.keys[(s.next-1)*s.kw : s.next*s.kw]
	for i, w := range r.packCur {
		if key[i] != w {
			s.active = false
			return -1
		}
	}
	li := s.next
	s.next++
	return li
}

// sliceSettle moves the event state (val and the packed per-gate input
// bitsets) to the settled state of window lane target by bit
// extraction, touching only nets whose value actually changes. From a
// known lane position only the window's dirty nets are scanned; from an
// unknown position every net is compared against its lane bit.
func (r *Runner) sliceSettle(target int) {
	s := &r.slice
	if s.valPos == target {
		return
	}
	lanes := s.lanes
	if s.valPos >= 0 {
		from, to := uint(s.valPos), uint(target)
		for _, net := range s.dirty {
			lane := lanes[net]
			if (lane>>from^lane>>to)&1 != 0 {
				r.val[net] = lane>>to&1 != 0
				r.xorFan(netlist.NetID(net))
			}
		}
	} else {
		to := uint(target)
		for net := range lanes {
			v := lanes[net]>>to&1 != 0
			if r.val[net] != v {
				r.val[net] = v
				r.xorFan(netlist.NetID(net))
			}
		}
	}
	s.valPos = target
}

// xorFan fixes each reading gate's packed input bitset after val[net]
// flipped outside event processing — the settle-time counterpart of
// fanout, without batch marking.
func (r *Runner) xorFan(net netlist.NetID) {
	csr := r.csr
	for e := csr.FanoutStart[net]; e < csr.FanoutStart[net+1]; e++ {
		edge := csr.FanoutEdges[e]
		r.inVal[edge>>2] ^= 1 << uint(edge&3)
	}
}
