package sim

import (
	"math/rand"
	"sort"
	"testing"

	"tevot/internal/netlist"
)

// drainAll pulls every event out of the queue in drain order, consuming
// whole equal-time batches the way cycleFast does.
func drainAll(q *calQueue) []event {
	var out []event
	for q.next() {
		b := q.bucket()
		t := b[q.pos].t
		for q.pos < len(b) && b[q.pos].t == t {
			out = append(out, q.take())
		}
	}
	return out
}

// sortedCopy is the oracle order: (t, net) ascending, matching the heap
// kernel's pop order.
func sortedCopy(evs []event) []event {
	c := append([]event(nil), evs...)
	sort.SliceStable(c, func(i, j int) bool {
		if c[i].t != c[j].t {
			return c[i].t < c[j].t
		}
		return c[i].net < c[j].net
	})
	return c
}

func checkOrder(t *testing.T, got, evs []event) {
	t.Helper()
	want := sortedCopy(evs)
	if len(got) != len(want) {
		t.Fatalf("drained %d events, pushed %d", len(got), len(want))
	}
	for i := range want {
		if got[i].t != want[i].t || got[i].net != want[i].net {
			t.Fatalf("event %d: got (%v, %d), want (%v, %d)",
				i, got[i].t, got[i].net, want[i].t, want[i].net)
		}
	}
}

// TestCalQueueRandomOrder: random pushes drain in exact (t, net) order,
// across delay ranges that do and do not fit the wheel horizon.
func TestCalQueueRandomOrder(t *testing.T) {
	for _, spread := range []float64{3, 50, 1e5} {
		rng := rand.New(rand.NewSource(int64(spread)))
		var q calQueue
		q.init(1, spread)
		for trial := 0; trial < 20; trial++ {
			q.reset()
			var pushed []event
			for i := 0; i < 300; i++ {
				e := event{
					t:   1 + rng.Float64()*spread*3,
					net: netlist.NetID(rng.Intn(40)),
				}
				q.push(e)
				pushed = append(pushed, e)
			}
			checkOrder(t, drainAll(&q), pushed)
		}
	}
}

// TestCalQueueInterleavedPush mimics the kernel's actual pattern: drain a
// batch, then push events scheduled relative to the batch time. Every
// pushed time exceeds the current batch time by at least the minimum
// delay, as in simulation.
func TestCalQueueInterleavedPush(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q calQueue
	q.init(2, 20)
	var all []event
	push := func(e event) {
		q.push(e)
		all = append(all, e)
	}
	for i := 0; i < 50; i++ {
		push(event{t: 2 + rng.Float64()*20, net: netlist.NetID(i % 16)})
	}
	var got []event
	for q.next() {
		b := q.bucket()
		bt := b[q.pos].t
		for q.pos < len(b) && b[q.pos].t == bt {
			got = append(got, q.take())
		}
		// Schedule a few successor events from this batch, heap-style.
		if len(all) < 400 {
			for k := 0; k < 3; k++ {
				push(event{t: bt + 2 + rng.Float64()*18, net: netlist.NetID(rng.Intn(16))})
			}
		}
	}
	checkOrder(t, got, all)
}

// TestCalQueuePushIntoCurrentBucket pins the floating-point corner the
// queue must survive: a push whose time lands — by construction here,
// by rounding in real runs — in the bucket currently being drained. The
// event must still come out in (t, net) order relative to the bucket's
// unconsumed tail.
func TestCalQueuePushIntoCurrentBucket(t *testing.T) {
	var q calQueue
	q.init(2, 8) // width 1, so bucket 0 spans [0, 1)
	q.push(event{t: 0.10, net: 3})
	q.push(event{t: 0.70, net: 1})
	q.push(event{t: 0.90, net: 2})
	if !q.next() {
		t.Fatal("queue empty after pushes")
	}
	// Consume the t=0.10 batch, leaving the sorted tail [0.70, 0.90].
	if e := q.take(); e.t != 0.10 {
		t.Fatalf("first event at %v, want 0.10", e.t)
	}
	// Mid-drain pushes into bucket 0: one interior, one equal-time with a
	// smaller net (must sort before net 2), one at the tail.
	q.push(event{t: 0.50, net: 9})
	q.push(event{t: 0.90, net: 0})
	q.push(event{t: 0.95, net: 4})
	want := []event{{t: 0.50, net: 9}, {t: 0.70, net: 1}, {t: 0.90, net: 0}, {t: 0.90, net: 2}, {t: 0.95, net: 4}}
	var got []event
	for q.next() {
		got = append(got, q.take())
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].t != want[i].t || got[i].net != want[i].net {
			t.Fatalf("event %d: got (%v, %d), want (%v, %d)",
				i, got[i].t, got[i].net, want[i].t, want[i].net)
		}
	}
}

// TestCalQueueResetReuse pins the cross-cycle regression where the last
// drained bucket kept its consumed events and replayed them after reset:
// draining, resetting, and refilling must never resurrect old events.
func TestCalQueueResetReuse(t *testing.T) {
	var q calQueue
	q.init(1, 4)
	for cycle := 0; cycle < 5; cycle++ {
		q.reset()
		evs := []event{
			{t: 1.5 + float64(cycle), net: 1},
			{t: 2.5 + float64(cycle), net: 2},
		}
		for _, e := range evs {
			q.push(e)
		}
		got := drainAll(&q)
		checkOrder(t, got, evs)
	}
}

// TestCalQueueOverflowRebase: when every pending event is beyond the
// wheel horizon, the drain must jump straight to the overflow's earliest
// bucket and keep global order.
func TestCalQueueOverflowRebase(t *testing.T) {
	var q calQueue
	q.init(1, 1e6) // horizon capped at maxBuckets buckets
	evs := []event{
		{t: 0.9e6, net: 5},
		{t: 1.0e6, net: 1},
		{t: 0.5, net: 2}, // near event drains first
	}
	for _, e := range evs {
		q.push(e)
	}
	checkOrder(t, drainAll(&q), evs)
}
