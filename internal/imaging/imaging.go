// Package imaging is the application substrate for the paper's quality
// study: grayscale images, the Sobel and Gaussian filters whose
// arithmetic is routed through a pluggable functional-unit layer (so
// operand streams can be profiled and timing errors injected at every FU
// invocation, as the paper does inside Multi2Sim), PSNR, and a
// deterministic synthetic image generator standing in for the Caltech-101
// butterfly dataset.
package imaging

import (
	"fmt"
	"math"

	"tevot/internal/fpref"
)

// Image is a grayscale 8-bit image.
type Image struct {
	W, H int
	Pix  []uint8 // row-major, len W*H
}

// New allocates a zeroed image.
func New(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel value; coordinates are clamped to the border
// (replicate padding, as the convolution kernels assume).
func (m *Image) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= m.W {
		x = m.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= m.H {
		y = m.H - 1
	}
	return m.Pix[y*m.W+x]
}

// Set writes a pixel (in-bounds coordinates only).
func (m *Image) Set(x, y int, v uint8) { m.Pix[y*m.W+x] = v }

// Clone deep-copies the image.
func (m *Image) Clone() *Image {
	c := New(m.W, m.H)
	copy(c.Pix, m.Pix)
	return c
}

// ArithUnit is the functional-unit layer every filter computes through.
// Implementations include the exact unit (golden arithmetic), recording
// units (workload profiling), and error-injecting units.
type ArithUnit interface {
	IntAdd(a, b uint32) uint32
	IntMul(a, b uint32) uint32
	FPAdd(a, b uint32) uint32
	FPMul(a, b uint32) uint32
}

// Exact computes with the FUs' golden semantics and no errors.
type Exact struct{}

// IntAdd returns a + b.
func (Exact) IntAdd(a, b uint32) uint32 { return a + b }

// IntMul returns a * b (low 32 bits).
func (Exact) IntMul(a, b uint32) uint32 { return a * b }

// FPAdd returns the truncating flush-to-zero float32 sum.
func (Exact) FPAdd(a, b uint32) uint32 { return fpref.Add(a, b) }

// FPMul returns the truncating flush-to-zero float32 product.
func (Exact) FPMul(a, b uint32) uint32 { return fpref.Mul(a, b) }

// Sobel applies the 3×3 Sobel operator through the unit's integer FUs
// and returns the gradient-magnitude image (|gx| + |gy|, clipped to 255
// — the integer-pipeline variant of the AMD APP SDK kernel).
func Sobel(src *Image, u ArithUnit) *Image {
	dst := New(src.W, src.H)
	// Kernel weights as two's-complement uint32.
	w := func(k int32) uint32 { return uint32(k) }
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			var gx, gy uint32
			acc := func(dx, dy int, kx, ky int32) {
				p := uint32(src.At(x+dx, y+dy))
				if kx != 0 {
					gx = u.IntAdd(gx, u.IntMul(p, w(kx)))
				}
				if ky != 0 {
					gy = u.IntAdd(gy, u.IntMul(p, w(ky)))
				}
			}
			acc(-1, -1, -1, -1)
			acc(0, -1, 0, -2)
			acc(1, -1, 1, -1)
			acc(-1, 0, -2, 0)
			acc(1, 0, 2, 0)
			acc(-1, 1, -1, 1)
			acc(0, 1, 0, 2)
			acc(1, 1, 1, 1)
			m := absInt32(int32(gx)) + absInt32(int32(gy))
			if m > 255 {
				m = 255
			}
			dst.Set(x, y, uint8(m))
		}
	}
	return dst
}

func absInt32(v int32) int64 {
	w := int64(v)
	if w < 0 {
		return -w
	}
	return w
}

// gauss3 is the 3×3 binomial kernel scaled by 1/16.
var gauss3 = [3][3]float32{
	{1.0 / 16, 2.0 / 16, 1.0 / 16},
	{2.0 / 16, 4.0 / 16, 2.0 / 16},
	{1.0 / 16, 2.0 / 16, 1.0 / 16},
}

// Gaussian applies the 3×3 Gaussian blur through the unit's
// floating-point FUs.
func Gaussian(src *Image, u ArithUnit) *Image {
	dst := New(src.W, src.H)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			acc := uint32(0) // +0.0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					p := math.Float32bits(float32(src.At(x+dx, y+dy)))
					k := math.Float32bits(gauss3[dy+1][dx+1])
					acc = u.FPAdd(acc, u.FPMul(p, k))
				}
			}
			v := math.Float32frombits(acc)
			switch {
			case v != v || v < 0: // NaN (from injected errors) or negative
				v = 0
			case v > 255:
				v = 255
			}
			dst.Set(x, y, uint8(v+0.5))
		}
	}
	return dst
}

// PSNR returns the peak signal-to-noise ratio of img against ref in dB
// (+Inf for identical images). The paper classifies an output as
// acceptable when PSNR >= 30 dB.
func PSNR(img, ref *Image) (float64, error) {
	if img.W != ref.W || img.H != ref.H {
		return 0, fmt.Errorf("imaging: size mismatch %dx%d vs %dx%d", img.W, img.H, ref.W, ref.H)
	}
	if len(img.Pix) == 0 {
		return 0, fmt.Errorf("imaging: empty image")
	}
	var sse float64
	for i := range img.Pix {
		d := float64(img.Pix[i]) - float64(ref.Pix[i])
		sse += d * d
	}
	if sse == 0 {
		return math.Inf(1), nil
	}
	mse := sse / float64(len(img.Pix))
	return 10 * math.Log10(255*255/mse), nil
}

// AcceptableThresholdDB is the paper's output-quality threshold.
const AcceptableThresholdDB = 30.0

// Synthetic generates a deterministic procedural test image: layered
// sinusoid texture, two mirrored elliptical "wing" blobs, and hash
// noise — enough edge and smooth content to exercise both filters. The
// same id always produces the same image.
func Synthetic(id, w, h int) *Image {
	m := New(w, h)
	fw, fh := float64(w), float64(h)
	s := float64(id%7) + 1
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x), float64(y)
			v := 120.0
			v += 50 * math.Sin(fx*0.11*s+float64(id)) * math.Cos(fy*0.07+0.5*float64(id))
			// Mirrored wings around the vertical center line.
			for _, sideSign := range []float64{-1, 1} {
				cx := fw/2 + sideSign*fw/4
				cy := fh / 2
				dx := (fx - cx) / (fw / 5)
				dy := (fy - cy) / (fh / 3)
				if dx*dx+dy*dy < 1 {
					v += 70 * (1 - dx*dx - dy*dy)
				}
			}
			// Deterministic per-pixel noise.
			n := uint32(x*73856093) ^ uint32(y*19349663) ^ uint32(id*83492791)
			n ^= n >> 13
			n *= 0x9e3779b1
			v += float64(n%17) - 8
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			m.Set(x, y, uint8(v))
		}
	}
	return m
}

// SyntheticSet generates n synthetic images of the given size.
func SyntheticSet(n, w, h int) []*Image {
	set := make([]*Image, n)
	for i := range set {
		set[i] = Synthetic(i, w, h)
	}
	return set
}
