package imaging

import (
	"math"
	"testing"
)

func TestSyntheticDeterministicAndDistinct(t *testing.T) {
	a := Synthetic(1, 32, 32)
	b := Synthetic(1, 32, 32)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same id produced different images")
		}
	}
	c := Synthetic(2, 32, 32)
	diff := 0
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			diff++
		}
	}
	if diff < 100 {
		t.Errorf("ids 1 and 2 differ in only %d pixels", diff)
	}
}

func TestSyntheticHasDynamicRange(t *testing.T) {
	img := Synthetic(0, 64, 64)
	min, max := uint8(255), uint8(0)
	for _, p := range img.Pix {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if max-min < 80 {
		t.Errorf("synthetic image range [%d, %d] too flat for edge detection", min, max)
	}
}

func TestAtClampsBorders(t *testing.T) {
	img := New(4, 4)
	img.Set(0, 0, 11)
	img.Set(3, 3, 22)
	if img.At(-5, -5) != 11 {
		t.Error("negative coordinates should clamp to (0,0)")
	}
	if img.At(100, 100) != 22 {
		t.Error("oversized coordinates should clamp to (W-1,H-1)")
	}
}

func TestSobelFlatImageIsZero(t *testing.T) {
	img := New(16, 16)
	for i := range img.Pix {
		img.Pix[i] = 99
	}
	out := Sobel(img, Exact{})
	for i, p := range out.Pix {
		if p != 0 {
			t.Fatalf("pixel %d = %d on a flat image", i, p)
		}
	}
}

func TestSobelVerticalEdge(t *testing.T) {
	img := New(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			img.Set(x, y, 200)
		}
	}
	out := Sobel(img, Exact{})
	// Strong response on the edge columns, zero far away.
	if out.At(3, 4) == 0 && out.At(4, 4) == 0 {
		t.Error("no response on a hard vertical edge")
	}
	if out.At(1, 4) != 0 {
		t.Errorf("response %d far from the edge", out.At(1, 4))
	}
}

// TestSobelMatchesDirectConvolution verifies the FU-routed filter against
// a plain int implementation.
func TestSobelMatchesDirectConvolution(t *testing.T) {
	img := Synthetic(3, 24, 24)
	out := Sobel(img, Exact{})
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			gx := -int(img.At(x-1, y-1)) + int(img.At(x+1, y-1)) +
				-2*int(img.At(x-1, y)) + 2*int(img.At(x+1, y)) +
				-int(img.At(x-1, y+1)) + int(img.At(x+1, y+1))
			gy := -int(img.At(x-1, y-1)) - 2*int(img.At(x, y-1)) - int(img.At(x+1, y-1)) +
				int(img.At(x-1, y+1)) + 2*int(img.At(x, y+1)) + int(img.At(x+1, y+1))
			m := int(math.Abs(float64(gx))) + int(math.Abs(float64(gy)))
			if m > 255 {
				m = 255
			}
			if int(out.At(x, y)) != m {
				t.Fatalf("(%d,%d): FU-routed %d != direct %d", x, y, out.At(x, y), m)
			}
		}
	}
}

func TestGaussianPreservesFlatRegions(t *testing.T) {
	img := New(16, 16)
	for i := range img.Pix {
		img.Pix[i] = 120
	}
	out := Gaussian(img, Exact{})
	for i, p := range out.Pix {
		if int(p) < 118 || int(p) > 122 {
			t.Fatalf("pixel %d = %d; blur of a flat 120 image should stay ~120", i, p)
		}
	}
}

func TestGaussianSmooths(t *testing.T) {
	img := New(9, 9)
	img.Set(4, 4, 255) // single bright pixel
	out := Gaussian(img, Exact{})
	if out.At(4, 4) >= 255 {
		t.Error("center should be attenuated")
	}
	if out.At(3, 4) == 0 {
		t.Error("energy should spread to neighbors")
	}
	if out.At(0, 0) != 0 {
		t.Error("far corner should stay dark")
	}
	// Kernel mass check: total should be roughly preserved (~255).
	total := 0
	for _, p := range out.Pix {
		total += int(p)
	}
	if total < 200 || total > 320 {
		t.Errorf("blurred total mass %d; kernel should roughly preserve ~255", total)
	}
}

func TestPSNR(t *testing.T) {
	a := Synthetic(1, 16, 16)
	same, err := PSNR(a, a)
	if err != nil || !math.IsInf(same, 1) {
		t.Errorf("PSNR(x,x) = %v, %v; want +Inf", same, err)
	}
	b := a.Clone()
	b.Pix[0] ^= 0xFF
	p, err := PSNR(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if p < 20 || p > 60 {
		t.Errorf("single corrupted pixel PSNR = %v; expected moderate", p)
	}
	noisy := a.Clone()
	for i := range noisy.Pix {
		noisy.Pix[i] ^= 0x80
	}
	pn, err := PSNR(noisy, a)
	if err != nil {
		t.Fatal(err)
	}
	if pn >= p {
		t.Errorf("heavy corruption PSNR (%v) should be below light corruption (%v)", pn, p)
	}
	if _, err := PSNR(New(2, 2), New(3, 3)); err == nil {
		t.Error("PSNR accepted size mismatch")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Synthetic(1, 8, 8)
	b := a.Clone()
	b.Pix[0] = ^b.Pix[0]
	if a.Pix[0] == b.Pix[0] {
		t.Fatal("Clone shares pixel storage")
	}
}
