package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSessionNoOp(t *testing.T) {
	s, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Stop(); err != nil {
			t.Fatalf("Stop #%d: %v", i+1, err)
		}
	}
}

func TestSessionWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	s, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if s.CPUPath() != cpu || s.MemPath() != mem {
		t.Fatalf("paths = %q/%q", s.CPUPath(), s.MemPath())
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	// Idempotent: the second Stop must not rewrite or error.
	if err := s.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x.prof"), ""); err == nil {
		t.Fatal("unwritable CPU profile path accepted")
	}
}
