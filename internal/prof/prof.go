// Package prof wires Go's runtime profilers into the command-line
// tools: every cmd/ binary takes -cpuprofile and -memprofile flags whose
// outputs feed `go tool pprof`, so a slow sweep can be attributed to
// simulation, STA, or model code without instrumenting anything.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (if non-empty). Call the stop function exactly once, after the
// measured work completes; it is safe when both paths are empty (no-op).
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
		cpuFile = f
	}
	stop := func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: closing CPU profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: creating heap profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: writing heap profile: %w", err)
			}
		}
		return nil
	}
	return stop, nil
}
