// Package prof wires Go's runtime profilers into the command-line
// tools: every cmd/ binary takes -cpuprofile and -memprofile flags whose
// outputs feed `go tool pprof`, so a slow sweep can be attributed to
// simulation, STA, or model code without instrumenting anything.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Session is one profiling run. Stop is idempotent, so a CLI can both
// `defer s.Stop()` (covering every early-return and fatal-error path)
// and call it explicitly before os.Exit (which skips defers) — the
// profiles are flushed exactly once either way.
type Session struct {
	cpuPath, memPath string
	cpuFile          *os.File
	once             sync.Once
	err              error
}

// CPUPath returns the CPU profile destination ("" when disabled).
func (s *Session) CPUPath() string { return s.cpuPath }

// MemPath returns the heap profile destination ("" when disabled).
func (s *Session) MemPath() string { return s.memPath }

// Start begins CPU profiling to cpuPath (if non-empty). The returned
// Session's Stop ends the CPU profile and writes a heap profile to
// memPath (if non-empty); both paths empty makes the session a no-op.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{cpuPath: cpuPath, memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
		s.cpuFile = f
	}
	return s, nil
}

// Stop flushes the profiles. It is safe to call any number of times,
// from defers and explicit pre-os.Exit paths alike; only the first call
// does the work, and every call reports its outcome.
func (s *Session) Stop() error {
	s.once.Do(func() { s.err = s.stop() })
	return s.err
}

func (s *Session) stop() error {
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := s.cpuFile.Close(); err != nil {
			return fmt.Errorf("prof: closing CPU profile: %w", err)
		}
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			return fmt.Errorf("prof: creating heap profile: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("prof: writing heap profile: %w", err)
		}
	}
	return nil
}
