package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"tevot/internal/backoff"
	"tevot/internal/core"
	"tevot/internal/experiments"
	"tevot/internal/obs"
	"tevot/internal/obs/trace"
	"tevot/internal/runner"
)

// WorkerConfig configures one worker process (or goroutine, in the
// in-process local-cluster mode).
type WorkerConfig struct {
	// ID identifies the worker to the coordinator. Re-using an ID after
	// a restart releases the previous incarnation's leases immediately.
	// Default: w-<hostname>-<pid>.
	ID string
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// TaskTimeout is the per-attempt cell deadline (0 = none).
	TaskTimeout time.Duration
	// Retries is the extra attempts per cell for transient failures.
	Retries int
	// Lab, when non-nil, is a pre-built lab shared by in-process
	// workers (FUnits are safe for concurrent characterization). nil
	// means build one from the coordinator's spec — the once-per-process
	// cost the seed-addressed design pays instead of shipping operands.
	Lab *experiments.Lab
	// Metrics is the registry whose snapshot piggybacks on renew/result
	// requests for the coordinator's fleet aggregation. nil means a
	// private registry per RunWorker call — in-process multi-worker
	// tests pass distinct registries so per-worker counters stay apart.
	Metrics *obs.Registry
	// Transport replaces the HTTP transport under the worker's client —
	// the injection point for chaos.Transport. nil means the default.
	Transport http.RoundTripper
	// HeartbeatEvery overrides the lease-renewal interval (default
	// TTL/3). Chaos soaks stretch it past the TTL to force
	// renew-after-expiry races.
	HeartbeatEvery time.Duration
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "local"
		}
		c.ID = fmt.Sprintf("w-%s-%d", host, os.Getpid())
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	return c
}

// workerMetrics is the per-worker counter set whose snapshots ride the
// wire to the coordinator. It lives in its own registry (not the
// process default) so in-process workers don't blend together and the
// snapshot stays small.
type workerMetrics struct {
	reg           *obs.Registry
	leases        *obs.Counter
	renewals      *obs.Counter
	cellsDone     *obs.Counter
	cellsFailed   *obs.Counter
	abandoned     *obs.Counter
	duplicates    *obs.Counter
	resultsOK     *obs.Counter
	resultsFailed *obs.Counter
	cellSeconds   *obs.Histogram
}

func newWorkerMetrics(reg *obs.Registry) *workerMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &workerMetrics{
		reg:         reg,
		leases:      reg.Counter("worker.leases_granted"),
		renewals:    reg.Counter("worker.renewals"),
		cellsDone:   reg.Counter("worker.cells_done"),
		cellsFailed: reg.Counter("worker.cells_failed"),
		abandoned:   reg.Counter("worker.cells_abandoned"),
		duplicates:  reg.Counter("worker.results_duplicate"),
		// Per-worker report-outcome split: every completed cell attempts
		// exactly one Report, so cells_done == results_ok +
		// results_duplicate + results_failed is an identity the chaos soak
		// asserts per worker.
		resultsOK:     reg.Counter("worker.results_ok"),
		resultsFailed: reg.Counter("worker.results_failed"),
		cellSeconds:   reg.Histogram("worker.cell_seconds", obs.DurationBuckets),
	}
}

func (m *workerMetrics) snapshot() *obs.RegistrySnapshot {
	s := m.reg.Snapshot()
	return &s
}

// RunWorker registers with the coordinator, rebuilds the lab from the
// published spec, then loops lease → execute → report until the
// coordinator says the sweep is done (nil), the run aborts
// (ErrRunAborted), or ctx is cancelled.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Coordinator == "" {
		return errors.New("dist: worker: coordinator URL required")
	}
	log := obs.Logger("dist").With("worker", cfg.ID)
	client := NewClientWith(cfg.Coordinator, int64(backoff.Hash(0, cfg.ID)),
		ClientOptions{Transport: cfg.Transport})
	wm := newWorkerMetrics(cfg.Metrics)

	spec, released, err := client.Register(ctx, cfg.ID)
	if err != nil {
		return fmt.Errorf("dist: worker %s: register: %w", cfg.ID, err)
	}
	if released > 0 {
		log.Info("re-registered; previous leases released", "released", released)
	}
	lab := cfg.Lab
	if lab == nil {
		log.Info("building lab from spec", "fingerprint", spec.Fingerprint())
		start := time.Now()
		lab, err = spec.NewLab()
		if err != nil {
			return fmt.Errorf("dist: worker %s: lab: %w", cfg.ID, err)
		}
		log.Info("lab ready", "took", time.Since(start).Round(time.Millisecond))
	}
	opts := lab.CharOpts(1)

	idle := backoff.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second,
		Seed: int64(backoff.Hash(1, cfg.ID))}
	for idleSpins := 0; ; {
		// Root one trace per lease poll. Polls that come back empty (or
		// find the sweep done) are discarded so an idle fleet doesn't
		// flood the trace store; a granted lease keeps its root and the
		// whole cell — lease RPC, coordinator handling, characterization,
		// result upload — hangs off this one trace ID.
		cellCtx, root := trace.Root(ctx, "dist.cell")
		lr, err := client.Lease(cellCtx, cfg.ID)
		switch {
		case errors.Is(err, ErrRunAborted):
			root.End()
			log.Error("run aborted by coordinator", "err", err)
			return err
		case err != nil:
			root.Discard()
			return fmt.Errorf("dist: worker %s: lease: %w", cfg.ID, err)
		}
		switch lr.Status {
		case leaseDone:
			root.Discard()
			log.Info("sweep done; exiting")
			return nil
		case leaseNone:
			root.Discard()
			idleSpins++
			delay := idle.Delay("idle", idleSpins)
			if server := time.Duration(lr.RetryMS) * time.Millisecond; server > delay {
				delay = server
			}
			timer := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
		case leaseGranted:
			idleSpins = 0
			wm.leases.Inc()
			root.Annotate("worker", cfg.ID)
			root.Annotate("cell", lr.Cell.Key())
			err := runLease(cellCtx, client, log, lab, opts, cfg, wm, lr)
			root.End()
			if err != nil {
				if errors.Is(err, ErrRunAborted) || errors.Is(err, context.Canceled) {
					return err
				}
				// Cell failed or lease was lost: log and move on — the
				// lease expires and the coordinator re-issues the cell
				// (possibly right back to us, where retry may succeed).
				log.Warn("cell not completed", "cell", lr.Cell.Key(), "err", err)
			}
		default:
			root.Discard()
			return fmt.Errorf("dist: worker %s: unknown lease status %q", cfg.ID, lr.Status)
		}
	}
}

// runLease executes one leased cell: heartbeat renewals keep the lease
// alive while the (potentially minutes-long) characterization runs
// through internal/runner for panic isolation, per-attempt deadlines,
// and transient retries; the result ships back with its content hash.
func runLease(ctx context.Context, client *Client, log *slog.Logger,
	lab *experiments.Lab, opts core.CharacterizeOptions, cfg WorkerConfig,
	wm *workerMetrics, lr leaseResponse) error {
	cell := *lr.Cell
	key := cell.Key()
	ttl := time.Duration(lr.TTLMS) * time.Millisecond
	cellStart := time.Now()

	// cellCtx is cancelled the moment the coordinator disowns the lease,
	// so a superseded worker stops burning CPU on a cell someone else
	// now owns.
	cellCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbStop := make(chan struct{})
	hbErr := make(chan error, 1)
	go func() {
		interval := cfg.HeartbeatEvery
		if interval <= 0 {
			interval = ttl / 3
		}
		if interval <= 0 {
			interval = time.Second
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-cellCtx.Done():
				return
			case <-tick.C:
				// Each heartbeat carries a fresh metrics snapshot, so the
				// coordinator's fleet view is at most one renew interval
				// stale for any worker still holding a lease.
				if err := client.Renew(cellCtx, cfg.ID, lr.LeaseID, wm.snapshot()); err != nil {
					if errors.Is(err, ErrLeaseGone) || errors.Is(err, ErrRunAborted) {
						hbErr <- err
						cancel()
						return
					}
					log.Warn("renew failed; will retry", "lease", lr.LeaseID, "err", err)
				} else {
					wm.renewals.Inc()
				}
			}
		}
	}()

	rcfg := runner.Config{
		Name:        "dist-worker " + cfg.ID,
		Workers:     1,
		TaskTimeout: cfg.TaskTimeout,
		Retries:     cfg.Retries,
		Seed:        int64(backoff.Hash(2, cfg.ID)),
	}
	results, rep, runErr := runner.Run(cellCtx, rcfg, []runner.Task[json.RawMessage]{{
		Key: key,
		Run: func(ctx context.Context) (json.RawMessage, error) {
			cctx, csp := trace.Child(ctx, "dist.characterize")
			defer csp.End()
			row, err := RunCell(cctx, lab, cell, opts)
			if err != nil {
				return nil, err
			}
			return MarshalRow(row)
		},
	}})
	close(hbStop)

	var leaseLost error
	select {
	case err := <-hbErr:
		if !errors.Is(err, ErrLeaseGone) {
			return err
		}
		leaseLost = err
	default:
	}
	raw, ok := results[key]
	if !ok {
		// No result to report. Lease loss cancelled the cell mid-flight —
		// abandon it; otherwise it genuinely failed.
		if leaseLost != nil {
			mCellsAbandoned.Inc()
			wm.abandoned.Inc()
			return fmt.Errorf("dist: lease %s lost mid-cell: %w", lr.LeaseID, leaseLost)
		}
		wm.cellsFailed.Inc()
		if runErr != nil {
			return runErr
		}
		if len(rep.Failures) > 0 {
			return fmt.Errorf("dist: cell failed: %w", rep.Failures[0])
		}
		return fmt.Errorf("dist: cell %s produced no result", key)
	}
	if leaseLost != nil {
		// The cell finished before (or raced) the lease loss. The result
		// is still valid — cells are deterministic — and the coordinator
		// accepts late results for incomplete cells, so report it rather
		// than throw away minutes of work. Found by the chaos soak: a
		// delayed renew RPC could outlive the whole cell, and the computed
		// result was silently discarded.
		log.Info("lease lost after cell completed; reporting late result anyway",
			"cell", key, "lease", lr.LeaseID)
	}

	// Bump the completion counters BEFORE taking the snapshot that rides
	// the result upload: an accepted result is then always covered by a
	// coordinator-held snapshot that counts it, even if this worker is
	// SIGKILLed the moment Report returns. That ordering is what makes
	// the /cluster/metrics balance check (Σ worker.cells_done == grid
	// size) exact rather than eventually-consistent.
	wm.cellsDone.Inc()
	wm.cellSeconds.Observe(time.Since(cellStart).Seconds())

	// Report on the parent ctx: even if the lease just expired, the
	// result is still valid (determinism) and the coordinator accepts
	// late results for incomplete cells.
	dup, err := client.Report(ctx, resultRequest{
		Worker: cfg.ID, LeaseID: lr.LeaseID, Key: key,
		Value: raw, Hash: HashValue(raw), Attempts: 1 + rep.Retried,
		Metrics: wm.snapshot(),
	})
	if err != nil {
		wm.resultsFailed.Inc()
		return fmt.Errorf("dist: report %s: %w", key, err)
	}
	if dup {
		wm.duplicates.Inc()
		log.Info("result was a duplicate (byte-identical)", "cell", key)
	} else {
		wm.resultsOK.Inc()
		if lr.Speculative {
			log.Info("speculative copy won", "cell", key)
		}
	}
	return nil
}
