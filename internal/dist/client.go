package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"tevot/internal/backoff"
	"tevot/internal/obs"
	"tevot/internal/obs/trace"
)

// Client is the retrying JSON client workers use to talk to the
// coordinator. Transport errors and 5xx/429 responses are retried with
// the shared seeded-jitter backoff (internal/backoff), honoring
// Retry-After when the server sends one; 4xx responses are protocol
// answers, surfaced as typed errors, never retried. All waits respect
// ctx, so a worker shutting down never blocks on a backoff sleep.
type Client struct {
	base    string
	hc      *http.Client
	policy  backoff.Policy
	retries int
}

// Typed protocol errors the worker's control flow branches on.
var (
	// ErrLeaseGone: the coordinator expired (and possibly re-issued) the
	// lease; the worker must abandon the cell.
	ErrLeaseGone = errors.New("dist: lease gone")
	// ErrRunAborted: the run hit a divergence; the worker should exit.
	ErrRunAborted = errors.New("dist: run aborted")
)

// ClientOptions tune a Client beyond its defaults. The zero value keeps
// every default; fields are applied only when set.
type ClientOptions struct {
	// Transport replaces http.DefaultTransport — the injection point for
	// chaos.Transport and for custom TLS/proxy setups.
	Transport http.RoundTripper
	// Timeout bounds one wire attempt (default 30s).
	Timeout time.Duration
	// Retries is the per-RPC retry budget (default 8; negative means 0).
	Retries int
}

// NewClient builds a client for the coordinator at base
// (http://host:port). seed keys the retry jitter so concurrent workers
// decorrelate their retry storms.
func NewClient(base string, seed int64) *Client {
	return NewClientWith(base, seed, ClientOptions{})
}

// NewClientWith is NewClient with explicit options.
func NewClientWith(base string, seed int64, opts ClientOptions) *Client {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	retries := opts.Retries
	if retries == 0 {
		retries = 8
	} else if retries < 0 {
		retries = 0
	}
	return &Client{
		base: base,
		hc:   &http.Client{Timeout: timeout, Transport: opts.Transport},
		policy: backoff.Policy{
			Base: 100 * time.Millisecond,
			Max:  5 * time.Second,
			Seed: seed,
		},
		retries: retries,
	}
}

// apiErrorBody mirrors internal/serve's error envelope.
type apiErrorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// httpStatusError is a non-2xx answer that is not a typed protocol
// error (used for retry classification and final reporting).
type httpStatusError struct {
	status int
	code   string
	msg    string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("dist: http %d (%s): %s", e.status, e.code, e.msg)
}

func retryable(err error) bool {
	var se *httpStatusError
	if errors.As(err, &se) {
		return se.status == http.StatusTooManyRequests || se.status >= 500
	}
	// Anything that never produced an HTTP status (dial refused, reset,
	// coordinator restarting) is worth retrying.
	return !errors.Is(err, ErrLeaseGone) && !errors.Is(err, ErrRunAborted) &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// post sends one JSON request with retries; resp may be nil.
func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	// One span per logical RPC (retries included), so a cell's trace
	// shows "rpc /v1/result" once with an attempts annotation rather
	// than a span per wire attempt. No-op when tracing is off.
	ctx, sp := trace.Child(ctx, "rpc "+path)
	defer sp.End()
	var last error
	for attempt := 0; ; attempt++ {
		var retryAfter time.Duration
		retryAfter, last = c.once(ctx, path, body, resp)
		if last == nil || !retryable(last) || attempt >= c.retries {
			if attempt > 0 {
				sp.Annotate("attempts", strconv.Itoa(attempt+1))
			}
			return last
		}
		delay := c.policy.Delay(path, attempt)
		// A server-supplied Retry-After may stretch the wait, but only up
		// to the policy max: the header is unauthenticated input, and a
		// forged 429 must not park a worker for hours.
		if ra := c.policy.Cap(retryAfter); ra > delay {
			delay = ra
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// once performs a single HTTP exchange, returning any server-suggested
// Retry-After alongside the error.
func (c *Client) once(ctx context.Context, path string, body []byte, resp any) (time.Duration, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	trace.Inject(ctx, hreq.Header)
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return 0, err
	}
	defer hresp.Body.Close()

	if hresp.StatusCode >= 200 && hresp.StatusCode < 300 {
		if resp == nil {
			io.Copy(io.Discard, hresp.Body)
			return 0, nil
		}
		return 0, json.NewDecoder(hresp.Body).Decode(resp)
	}

	var e apiErrorBody
	json.NewDecoder(io.LimitReader(hresp.Body, 64<<10)).Decode(&e)
	switch {
	case hresp.StatusCode == http.StatusGone:
		return 0, ErrLeaseGone
	case hresp.StatusCode == http.StatusConflict:
		return 0, fmt.Errorf("%w: %s: %s", ErrRunAborted, e.Error.Code, e.Error.Message)
	}
	ra, _ := backoff.ParseRetryAfter(hresp.Header.Get("Retry-After"), time.Now)
	return ra, &httpStatusError{status: hresp.StatusCode, code: e.Error.Code, msg: e.Error.Message}
}

// Register announces the worker and returns the sweep spec.
func (c *Client) Register(ctx context.Context, worker string) (Spec, int, error) {
	var resp registerResponse
	err := c.post(ctx, "/v1/register", registerRequest{Worker: worker}, &resp)
	return resp.Spec, resp.ReleasedLeases, err
}

// Lease asks for work.
func (c *Client) Lease(ctx context.Context, worker string) (leaseResponse, error) {
	var resp leaseResponse
	err := c.post(ctx, "/v1/lease", leaseRequest{Worker: worker}, &resp)
	return resp, err
}

// Renew extends a held lease; ErrLeaseGone means abandon the cell.
// metrics, if non-nil, piggybacks the worker's registry snapshot for
// the coordinator's fleet aggregation.
func (c *Client) Renew(ctx context.Context, worker, leaseID string, metrics *obs.RegistrySnapshot) error {
	return c.post(ctx, "/v1/renew",
		renewRequest{Worker: worker, LeaseID: leaseID, Metrics: metrics}, nil)
}

// Report delivers a cell result; duplicate=true means the coordinator
// already had byte-identical bytes for the cell.
func (c *Client) Report(ctx context.Context, req resultRequest) (duplicate bool, err error) {
	var resp resultResponse
	if err := c.post(ctx, "/v1/result", req, &resp); err != nil {
		return false, err
	}
	return resp.Status == resultDuplicate, nil
}
