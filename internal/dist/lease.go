package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"
)

// The lease table is the coordinator's whole brain: which cells are
// pending, leased (to whom, until when), or done (with which bytes).
// Everything is guarded by one mutex — coordination traffic is a few
// requests per worker per cell, against cells that cost seconds to
// minutes each, so contention is irrelevant and simplicity wins.
//
// Lease life cycle:
//
//	pending --acquire--> leased --complete--> done
//	            ^            |
//	            '--expire----'   (no renewal within TTL)
//
// plus two deliberate complications:
//
//   - speculative copies: when no pending cells remain, an idle worker
//     may be granted a second lease on the slowest in-flight cell
//     (bounded by maxCopies); first result wins, the rest must match;
//   - late results: a result for an expired (or even unknown) lease is
//     still accepted if the cell is not done — determinism makes the
//     work valid no matter who finished it — and byte-checked if it is.

// maxIssuesPerCell bounds how many leases one cell may ever receive;
// exceeding it aborts the run rather than re-issuing a doomed cell
// forever.
const maxIssuesPerCell = 32

var (
	// errLeaseGone tells a renewing/reporting worker its lease has been
	// expired and possibly re-issued; the worker abandons the cell.
	errLeaseGone = errors.New("dist: lease gone")
	// errAborted means the run has hit a divergence and will not accept
	// further work.
	errAborted = errors.New("dist: run aborted on divergence")
)

// Divergence is the report the run aborts with when two executions of
// one cell return different bytes — a determinism violation that must
// stop the run, because every downstream artifact assumes cell results
// are functions of their key.
type Divergence struct {
	Cell       string `json:"cell"`
	HaveHash   string `json:"have_hash"`
	HaveWorker string `json:"have_worker"`
	GotHash    string `json:"got_hash"`
	GotWorker  string `json:"got_worker"`
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("dist: divergent results for cell %s: %s from %s vs %s from %s",
		d.Cell, d.HaveHash[:12], d.HaveWorker, d.GotHash[:12], d.GotWorker)
}

type cellStatus int

const (
	cellPending cellStatus = iota
	cellLeased
	cellDone
)

// lease is one grant of one cell to one worker.
type lease struct {
	id          string
	worker      string
	key         string
	issued      time.Time
	deadline    time.Time
	speculative bool
}

type cellEntry struct {
	cell   Cell
	status cellStatus
	// leases holds the active grants (primary plus speculative copies),
	// keyed by lease id.
	leases map[string]*lease
	// Completed state.
	value    json.RawMessage
	hash     string
	attempts int
	worker   string // who completed it ("journal" for resumed cells)
	issues   int    // total grants over the cell's lifetime
}

type workerEntry struct {
	id          string
	registered  time.Time
	lastSeen    time.Time
	generation  int // bumped on re-registration
	leasesHeld  int
	cellsDone   int
	cellsDryRun int
}

// leaseTable tracks every cell and worker of one run.
type leaseTable struct {
	order     []string
	cells     map[string]*cellEntry
	leases    map[string]*lease
	workers   map[string]*workerEntry
	ttl       time.Duration
	factor    float64 // straggler factor
	maxCopies int
	now       func() time.Time

	leaseSeq  int64
	doneCount int
	durations []time.Duration // completed-cell lease→result times, for straggler median + ETA
	diverged  *Divergence
	start     time.Time
}

func newLeaseTable(order []Cell, ttl time.Duration, factor float64, maxCopies int, now func() time.Time) *leaseTable {
	if now == nil {
		now = time.Now
	}
	t := &leaseTable{
		cells:     make(map[string]*cellEntry, len(order)),
		leases:    map[string]*lease{},
		workers:   map[string]*workerEntry{},
		ttl:       ttl,
		factor:    factor,
		maxCopies: maxCopies,
		now:       now,
		start:     now(),
	}
	for _, c := range order {
		k := c.Key()
		t.order = append(t.order, k)
		t.cells[k] = &cellEntry{cell: c, status: cellPending, leases: map[string]*lease{}}
	}
	return t
}

// markDone records a journal-resumed cell without any lease ceremony.
func (t *leaseTable) markDone(key string, value json.RawMessage, attempts int) error {
	e, ok := t.cells[key]
	if !ok {
		return fmt.Errorf("dist: journal entry %q is not a cell of this sweep", key)
	}
	if e.status == cellDone {
		return nil
	}
	e.status = cellDone
	e.value = value
	e.hash = HashValue(value)
	e.attempts = attempts
	e.worker = "journal"
	t.doneCount++
	return nil
}

// register adds (or resets) a worker. Re-registration is what a
// restarted worker process does: any leases the previous incarnation
// held are released immediately instead of waiting out their TTL.
func (t *leaseTable) register(worker string) (released int) {
	w := t.workers[worker]
	if w == nil {
		w = &workerEntry{id: worker, registered: t.now()}
		t.workers[worker] = w
	} else {
		w.generation++
		released = t.releaseWorkerLeases(worker)
	}
	w.lastSeen = t.now()
	return released
}

// releaseWorkerLeases returns every lease held by worker to the pending
// pool (unless the cell completed meanwhile).
func (t *leaseTable) releaseWorkerLeases(worker string) int {
	n := 0
	for id, l := range t.leases {
		if l.worker != worker {
			continue
		}
		delete(t.leases, id)
		if e := t.cells[l.key]; e != nil {
			delete(e.leases, id)
			if e.status == cellLeased && len(e.leases) == 0 {
				e.status = cellPending
			}
		}
		n++
	}
	if w := t.workers[worker]; w != nil {
		w.leasesHeld = 0
	}
	return n
}

// acquireResult is what a lease request yields.
type acquireResult struct {
	lease       *lease
	cell        Cell
	speculative bool
	// done: every cell completed; none: nothing grantable right now.
	done bool
	none bool
}

// acquire grants the first pending cell, or a bounded speculative copy
// of the slowest in-flight cell when nothing is pending.
func (t *leaseTable) acquire(worker string) (acquireResult, error) {
	if t.diverged != nil {
		return acquireResult{}, errAborted
	}
	w := t.workers[worker]
	if w == nil {
		// Implicit registration: leasing is how a worker first appears.
		t.register(worker)
		w = t.workers[worker]
	}
	w.lastSeen = t.now()
	if t.doneCount == len(t.order) {
		return acquireResult{done: true}, nil
	}
	for _, k := range t.order {
		e := t.cells[k]
		if e.status != cellPending {
			continue
		}
		// A cell that keeps getting issued and never completes is a
		// persistent failure (bad cell, crashing simulation). Lease
		// expiry would re-issue it forever; abort loudly instead.
		if e.issues >= maxIssuesPerCell {
			return acquireResult{}, fmt.Errorf(
				"dist: cell %s issued %d times without a result; aborting on persistent failure", k, e.issues)
		}
		l := t.grant(e, worker, false)
		return acquireResult{lease: l, cell: e.cell}, nil
	}
	// Nothing pending: consider a speculative copy of a straggler.
	if e := t.stragglerCandidate(worker); e != nil {
		l := t.grant(e, worker, true)
		return acquireResult{lease: l, cell: e.cell, speculative: true}, nil
	}
	return acquireResult{none: true}, nil
}

func (t *leaseTable) grant(e *cellEntry, worker string, speculative bool) *lease {
	t.leaseSeq++
	now := t.now()
	l := &lease{
		id:          fmt.Sprintf("L%06d", t.leaseSeq),
		worker:      worker,
		key:         e.cell.Key(),
		issued:      now,
		deadline:    now.Add(t.ttl),
		speculative: speculative,
	}
	e.leases[l.id] = l
	e.status = cellLeased
	e.issues++
	t.leases[l.id] = l
	t.workers[worker].leasesHeld++
	return l
}

// stragglerCandidate picks the longest-running in-flight cell whose
// elapsed time exceeds factor × median completed-cell time, has fewer
// than maxCopies active leases, and is not already being worked by this
// worker. It needs a handful of completed cells before it trusts the
// median at all.
func (t *leaseTable) stragglerCandidate(worker string) *cellEntry {
	const minSamples = 3
	if t.factor <= 0 || len(t.durations) < minSamples {
		return nil
	}
	med := t.medianDuration()
	threshold := time.Duration(float64(med) * t.factor)
	now := t.now()
	var best *cellEntry
	var bestElapsed time.Duration
	for _, k := range t.order {
		e := t.cells[k]
		if e.status != cellLeased || len(e.leases) >= t.maxCopies {
			continue
		}
		var oldest time.Time
		mine := false
		for _, l := range e.leases {
			if l.worker == worker {
				mine = true
			}
			if oldest.IsZero() || l.issued.Before(oldest) {
				oldest = l.issued
			}
		}
		if mine {
			continue
		}
		elapsed := now.Sub(oldest)
		if elapsed > threshold && elapsed > bestElapsed {
			best, bestElapsed = e, elapsed
		}
	}
	return best
}

func (t *leaseTable) medianDuration() time.Duration {
	ds := append([]time.Duration(nil), t.durations...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// renew extends a live lease's deadline by one TTL.
func (t *leaseTable) renew(worker, leaseID string) error {
	if t.diverged != nil {
		return errAborted
	}
	if w := t.workers[worker]; w != nil {
		w.lastSeen = t.now()
	}
	l, ok := t.leases[leaseID]
	if !ok || l.worker != worker {
		return errLeaseGone
	}
	l.deadline = t.now().Add(t.ttl)
	return nil
}

// completion describes how a reported result was handled.
type completion struct {
	accepted  bool // first result for the cell
	duplicate bool // byte-identical re-execution
	// entry/attempts are set when accepted, for journaling.
	entry    *cellEntry
	leaseAge time.Duration
	late     bool // no live lease backed this result
}

// complete records a result for a cell. The lease may be live, expired,
// or foreign — determinism makes the result valid regardless; only the
// bytes are judged.
func (t *leaseTable) complete(worker, leaseID, key string, value json.RawMessage, hash string, attempts int) (completion, error) {
	if t.diverged != nil {
		return completion{}, errAborted
	}
	e, ok := t.cells[key]
	if !ok {
		return completion{}, fmt.Errorf("dist: result for unknown cell %q", key)
	}
	if want := HashValue(value); hash != want {
		return completion{}, fmt.Errorf("dist: result for %s failed its own content hash (got %s, bytes say %s) — corrupt transfer", key, short(hash), short(want))
	}
	w := t.workers[worker]
	if w == nil {
		t.register(worker)
		w = t.workers[worker]
	}
	w.lastSeen = t.now()

	l, live := t.leases[leaseID]
	var age time.Duration
	if live && l.key == key {
		age = t.now().Sub(l.issued)
	}

	if e.status == cellDone {
		// Re-execution (speculative copy, late after expiry, or worker
		// retry after a lost ACK). Byte-identical → fine; anything else
		// is a divergence that aborts the run.
		t.dropCellLeases(e, worker)
		if bytes.Equal(e.value, value) {
			w.cellsDryRun++
			return completion{duplicate: true, late: !live}, nil
		}
		t.diverged = &Divergence{
			Cell: key, HaveHash: e.hash, HaveWorker: e.worker,
			GotHash: hash, GotWorker: worker,
		}
		return completion{}, t.diverged
	}

	e.status = cellDone
	e.value = value
	e.hash = hash
	e.attempts = attempts
	e.worker = worker
	t.doneCount++
	w.cellsDone++
	t.dropCellLeases(e, "")
	if age > 0 {
		t.durations = append(t.durations, age)
	}
	return completion{accepted: true, entry: e, leaseAge: age, late: !live}, nil
}

// dropCellLeases removes every active lease on e (all copies are moot
// once a result lands). A non-empty worker only adjusts that worker's
// held-count bookkeeping for its own leases; all leases are dropped
// either way.
func (t *leaseTable) dropCellLeases(e *cellEntry, _ string) {
	for id, l := range e.leases {
		delete(t.leases, id)
		delete(e.leases, id)
		if w := t.workers[l.worker]; w != nil && w.leasesHeld > 0 {
			w.leasesHeld--
		}
	}
}

// expireSweep returns expired leases to the pending pool; cells with no
// remaining live lease become grantable again.
func (t *leaseTable) expireSweep() (expired []*lease) {
	now := t.now()
	for id, l := range t.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(t.leases, id)
		expired = append(expired, l)
		if w := t.workers[l.worker]; w != nil && w.leasesHeld > 0 {
			w.leasesHeld--
		}
		if e := t.cells[l.key]; e != nil {
			delete(e.leases, id)
			if e.status == cellLeased && len(e.leases) == 0 {
				e.status = cellPending
			}
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i].id < expired[j].id })
	return expired
}

// allDone reports completion.
func (t *leaseTable) allDone() bool { return t.doneCount == len(t.order) }

// results snapshots the completed cells' raw values.
func (t *leaseTable) results() map[string]json.RawMessage {
	out := make(map[string]json.RawMessage, t.doneCount)
	for k, e := range t.cells {
		if e.status == cellDone {
			out[k] = e.value
		}
	}
	return out
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
