// Package dist scales the DTA characterization sweep across processes:
// a coordinator leases grid cells to workers over HTTP and survives
// every failure mode short of losing the coordinator's journal.
//
// The design leans entirely on one property: every cell is a
// deterministic function of (Spec, cell key). Work descriptors are
// seed-addressed — a lease carries only the cell's coordinates, and the
// worker regenerates the identical operand stream from the spec's seed
// (no payload shipping). That makes at-least-once execution safe:
//
//   - a worker dies → its lease expires → the cell is re-issued to any
//     other worker, which reproduces the byte-identical result;
//   - a late result races the re-issue → duplicates are accepted only
//     if byte-identical; a mismatch is a determinism violation and
//     aborts the run with a divergence report (silently picking either
//     copy would un-pin every paper-facing output downstream);
//   - the coordinator dies → its journal (the internal/runner
//     checkpoint format, one fsynced JSONL entry per completed cell)
//     resumes the run without re-executing completed cells;
//   - stragglers → bounded speculative re-issue: an idle worker may
//     duplicate the slowest in-flight cell, and whichever copy lands
//     first wins (the loser becomes a byte-checked duplicate).
//
// The merged output is written in canonical grid order, so a
// distributed run's JSONL is byte-identical to the single-process
// sweep's — the acceptance bar every mode of this repo is held to.
package dist

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/experiments"
)

// Spec is the seed-addressed description of one distributed sweep: the
// full cell inventory and every input needed to regenerate any cell's
// operand stream are derived from it deterministically. The coordinator
// publishes it at /v1/spec; workers build their Lab from it and never
// receive operand payloads.
type Spec struct {
	// Cycles sizes the characterization streams (test, train, and the
	// application-stream cap, mirroring tevot-sweep's -cycles flag).
	Cycles int `json:"cycles"`
	// FUs restricts the functional units (empty = all four).
	FUs []string `json:"fus,omitempty"`
	// Corners is the (V, T) grid.
	Corners []cells.Corner `json:"corners"`
	// Images / ImageSize size the synthetic application datasets.
	Images    int `json:"images"`
	ImageSize int `json:"image_size"`
	// Seed drives every stream, jitter, and sampling decision.
	Seed int64 `json:"seed"`
	// ShardWorkers is the per-cell simulation shard parallelism
	// (0 = auto; sharding never changes results, only speed).
	ShardWorkers int `json:"shard_workers,omitempty"`
}

// withDefaults fills the cheap-smoke defaults (mirroring tevot-sweep).
func (s Spec) withDefaults() Spec {
	if s.Cycles <= 0 {
		s.Cycles = 1500
	}
	if len(s.Corners) == 0 {
		s.Corners = core.Fig3Corners()
	}
	if s.Images <= 0 {
		s.Images = 3
	}
	if s.ImageSize <= 0 {
		s.ImageSize = 24
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Validate rejects specs that cannot name a runnable grid.
func (s Spec) Validate() error {
	s = s.withDefaults()
	for _, name := range s.FUs {
		if _, err := circuits.ParseFU(name); err != nil {
			return fmt.Errorf("dist: spec: %w", err)
		}
	}
	for i, c := range s.Corners {
		if c.V <= 0 {
			return fmt.Errorf("dist: spec: corner %d has non-positive voltage %v", i, c.V)
		}
	}
	return nil
}

// fus resolves the FU list.
func (s Spec) fus() ([]circuits.FU, error) {
	if len(s.FUs) == 0 {
		return circuits.AllFUs, nil
	}
	out := make([]circuits.FU, len(s.FUs))
	for i, name := range s.FUs {
		fu, err := circuits.ParseFU(name)
		if err != nil {
			return nil, err
		}
		out[i] = fu
	}
	return out, nil
}

// Fingerprint names the sweep for journal headers: any change to the
// grid shape or seed changes the fingerprint, so a journal can never be
// resumed against a differently shaped run (same contract as the
// in-process runner's sweep names).
func (s Spec) Fingerprint() string {
	s = s.withDefaults()
	return fmt.Sprintf("dist-fig3 fus=%d datasets=%d corners=%d cycles=%d images=%dx%d seed=%d",
		len(s.fusOrAll()), len(experiments.Datasets), len(s.Corners), s.Cycles, s.Images, s.ImageSize, s.Seed)
}

func (s Spec) fusOrAll() []string {
	if len(s.FUs) == 0 {
		names := make([]string, len(circuits.AllFUs))
		for i, fu := range circuits.AllFUs {
			names[i] = fu.String()
		}
		return names
	}
	return s.FUs
}

// Cell is one seed-addressed work descriptor: the coordinates of one
// grid cell. It carries no operand data — the worker regenerates the
// stream from (Spec.Seed, FU, Dataset).
type Cell struct {
	FU      string       `json:"fu"`
	Dataset string       `json:"dataset"`
	Corner  cells.Corner `json:"corner"`
}

// Key returns the cell's stable identity, shared with the in-process
// runner's checkpoint keys.
func (c Cell) Key() string {
	fu, err := circuits.ParseFU(c.FU)
	if err != nil {
		return "invalid/" + c.FU
	}
	return experiments.Fig3CellKey(fu, c.Dataset, c.Corner)
}

// Cells enumerates the grid in canonical order — the order the merged
// output is written in, identical to the single-process sweep's row
// order.
func (s Spec) Cells() ([]Cell, error) {
	s = s.withDefaults()
	fus, err := s.fus()
	if err != nil {
		return nil, err
	}
	var out []Cell
	for _, fu := range fus {
		for _, dataset := range experiments.Datasets {
			for _, corner := range s.Corners {
				out = append(out, Cell{FU: fu.String(), Dataset: dataset, Corner: corner})
			}
		}
	}
	return out, nil
}

// Scale maps the spec onto the experiments scale the single-process
// sweep uses, so both modes build bit-identical labs.
func (s Spec) Scale() (experiments.Scale, error) {
	s = s.withDefaults()
	fus, err := s.fus()
	if err != nil {
		return experiments.Scale{}, err
	}
	scale := experiments.Small()
	scale.TestCycles = s.Cycles
	scale.TrainCycles = s.Cycles
	scale.AppStreamCap = s.Cycles
	scale.Images = s.Images
	scale.ImageSize = s.ImageSize
	scale.Seed = s.Seed
	scale.ShardWorkers = s.ShardWorkers
	if len(s.FUs) > 0 {
		scale.FUs = fus
	}
	return scale, nil
}

// NewLab builds the worker-side lab (units + regenerated application
// streams) for the spec. This is the expensive, once-per-process setup
// the seed-addressed design pays instead of shipping operand payloads.
func (s Spec) NewLab() (*experiments.Lab, error) {
	scale, err := s.Scale()
	if err != nil {
		return nil, err
	}
	return experiments.NewLab(scale)
}

// RunCell executes one cell against a lab built from the same spec,
// returning the row every execution mode computes identically.
func RunCell(ctx context.Context, lab *experiments.Lab, c Cell, opts core.CharacterizeOptions) (experiments.DelayRow, error) {
	fu, err := circuits.ParseFU(c.FU)
	if err != nil {
		return experiments.DelayRow{}, fmt.Errorf("dist: cell %q: %w", c.Key(), err)
	}
	return experiments.Fig3Cell(ctx, lab, fu, c.Dataset, c.Corner, opts)
}

// HashValue is the content hash workers attach to results and the
// coordinator verifies: SHA-256 over the exact value bytes, hex-encoded.
// Byte-level (not semantic) equality is deliberate — the merged file is
// pinned byte-identical, so the hash must be too.
func HashValue(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// WriteMerged writes the canonical merged result JSONL: one
// {"key":...,"value":...} line per completed cell, in canonical grid
// order. Both the single-process sweep (-out) and the coordinator's
// completion merge go through this one function, which is what makes
// "distributed output byte-identical to single-process output" a
// structural property rather than a hope. Cells missing from results
// (failed cells in a partial single-process run) are skipped.
func WriteMerged(w io.Writer, order []Cell, results map[string]json.RawMessage) error {
	bw := bufio.NewWriter(w)
	for _, c := range order {
		raw, ok := results[c.Key()]
		if !ok {
			continue
		}
		line, err := json.Marshal(struct {
			Key   string          `json:"key"`
			Value json.RawMessage `json:"value"`
		}{Key: c.Key(), Value: raw})
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteMergedFile is WriteMerged to a file via atomic temp+rename, so a
// crash mid-merge never leaves a half-written output.
func WriteMergedFile(path string, order []Cell, results map[string]json.RawMessage) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteMerged(f, order, results); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// MarshalRow serializes a DelayRow exactly as every execution mode
// does, so content hashes agree across processes.
func MarshalRow(row experiments.DelayRow) (json.RawMessage, error) {
	return json.Marshal(row)
}
