package dist

import (
	"encoding/json"

	"tevot/internal/obs"
)

// Wire types for the coordinator's HTTP surface. Every request is a
// small JSON POST; responses reuse internal/serve's envelope helpers.
//
//	POST /v1/register  registerRequest  -> registerResponse
//	GET  /v1/spec                       -> Spec
//	POST /v1/lease     leaseRequest     -> leaseResponse
//	POST /v1/renew     renewRequest     -> renewResponse (410 if gone)
//	POST /v1/result    resultRequest    -> resultResponse (409 on divergence)
//	GET  /progress                      -> Progress
//
// Status strings rather than HTTP codes carry the normal-path protocol
// (granted / none / done / accepted / duplicate) so a worker's control
// flow never parses numeric codes; HTTP error codes are reserved for
// the exceptional paths (410 lease gone, 409 aborted, 429 shed).

type registerRequest struct {
	Worker string `json:"worker"`
}

type registerResponse struct {
	Spec Spec `json:"spec"`
	// ReleasedLeases counts leases of this worker's previous incarnation
	// that re-registration returned to the pool (worker was restarted).
	ReleasedLeases int `json:"released_leases"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
}

const (
	leaseGranted = "granted" // work attached
	leaseNone    = "none"    // nothing grantable now; retry after RetryMS
	leaseDone    = "done"    // sweep complete; worker should exit
)

type leaseResponse struct {
	Status      string `json:"status"` // granted | none | done
	LeaseID     string `json:"lease_id,omitempty"`
	Cell        *Cell  `json:"cell,omitempty"`
	TTLMS       int64  `json:"ttl_ms,omitempty"`
	Speculative bool   `json:"speculative,omitempty"`
	RetryMS     int64  `json:"retry_ms,omitempty"`
}

type renewRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
	// Metrics piggybacks the worker's registry snapshot on the heartbeat
	// so the coordinator can serve fleet-wide telemetry without opening
	// a connection back to each worker (workers may be NAT'd).
	Metrics *obs.RegistrySnapshot `json:"metrics,omitempty"`
}

type renewResponse struct {
	TTLMS int64 `json:"ttl_ms"`
}

type resultRequest struct {
	Worker   string          `json:"worker"`
	LeaseID  string          `json:"lease_id"`
	Key      string          `json:"key"`
	Value    json.RawMessage `json:"value"`
	Hash     string          `json:"hash"` // sha256 of Value bytes
	Attempts int             `json:"attempts"`
	// Metrics rides the result upload too: a snapshot taken after the
	// cell's counters were bumped, so an accepted result is always
	// covered by a coordinator-held snapshot even if the worker dies
	// before its next heartbeat.
	Metrics *obs.RegistrySnapshot `json:"metrics,omitempty"`
}

const (
	resultAccepted  = "accepted"
	resultDuplicate = "duplicate"
)

type resultResponse struct {
	Status string `json:"status"` // accepted | duplicate
}

// WorkerProgress is one worker's row in the coordinator's /progress.
type WorkerProgress struct {
	ID         string   `json:"id"`
	Generation int      `json:"generation"`
	LeasesHeld int      `json:"leases_held"`
	CellsDone  int      `json:"cells_done"`
	Duplicates int      `json:"duplicates"`
	LastSeenMS int64    `json:"last_seen_ms_ago"`
	Leases     []string `json:"leases,omitempty"`
	// Metrics is the worker's last piggybacked registry snapshot (nil
	// until the first renew/result carries one).
	Metrics *obs.RegistrySnapshot `json:"metrics,omitempty"`
}

// Progress is the coordinator's live state, served at /progress and
// fed to obs run manifests.
type Progress struct {
	Sweep      string           `json:"sweep"`
	Cells      int              `json:"cells"`
	Done       int              `json:"done"`
	Leased     int              `json:"leased"`
	Pending    int              `json:"pending"`
	Resumed    int              `json:"resumed"`
	Duplicates int              `json:"duplicates"`
	Reissues   int              `json:"reissues"`
	ElapsedSec float64          `json:"elapsed_sec"`
	ETASec     float64          `json:"eta_sec,omitempty"`
	Aborted    bool             `json:"aborted,omitempty"`
	Divergence *Divergence      `json:"divergence,omitempty"`
	Workers    []WorkerProgress `json:"workers"`
}
