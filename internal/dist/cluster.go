package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"tevot/internal/obs"
)

// ClusterConfig configures an in-process "local cluster": one
// coordinator plus N worker goroutines over real loopback HTTP. The
// transport, lease protocol, expiry loop, and merge path are exactly
// what separate processes exercise — only process boundaries are
// missing — which makes this the harness for race-detector runs,
// fault drills (kill a worker goroutine, force lease expiry), and the
// byte-identity acceptance check against the single-process sweep.
type ClusterConfig struct {
	Coord CoordConfig
	// Workers is the number of in-process workers (default 2).
	Workers int
	// Worker is the per-worker template; ID and Coordinator are
	// assigned by the cluster, and Lab is shared across all workers
	// (functional units are safe for concurrent characterization).
	// The template's Transport (if any) is shared by every worker.
	Worker WorkerConfig
	// Now is the coordinator's clock hook (nil = time.Now) — the chaos
	// clock plane plugs in here to skew or freeze lease expiry.
	Now func() time.Time
}

// RunLocalCluster runs the sweep to completion (or abort) and returns
// the coordinator's terminal error. The merged output lands at
// cfg.Coord.Out, byte-identical to a single-process run of the same
// spec.
func RunLocalCluster(ctx context.Context, cfg ClusterConfig) error {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	coord, err := NewCoordinator(cfg.Coord, cfg.Now)
	if err != nil {
		return err
	}
	base, stop, err := coord.Start(ctx)
	if err != nil {
		return err
	}
	defer stop()

	lab := cfg.Worker.Lab
	if lab == nil {
		lab, err = cfg.Coord.Spec.NewLab()
		if err != nil {
			return err
		}
	}

	workerErrs := make(chan error, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		wcfg := cfg.Worker
		wcfg.ID = fmt.Sprintf("local-%d", i)
		wcfg.Coordinator = base
		wcfg.Lab = lab
		go func() { workerErrs <- RunWorker(ctx, wcfg) }()
	}

	alive := cfg.Workers
	var lastWorkerErr error
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-coord.Done():
			// Drain workers: they exit on their next lease poll ("done"
			// on success, 409 on abort). Bound the wait so a wedged
			// worker can't hang the cluster teardown.
			drain := time.NewTimer(30 * time.Second)
			defer drain.Stop()
			for alive > 0 {
				select {
				case <-workerErrs:
					alive--
				case <-drain.C:
					obs.Logger("dist").Warn("cluster teardown timed out waiting for workers", "remaining", alive)
					return coord.Err()
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			return coord.Err()
		case werr := <-workerErrs:
			alive--
			if werr != nil {
				lastWorkerErr = werr
			}
			if alive == 0 {
				// Every worker exited but the sweep isn't done — without
				// external workers joining, it never will be.
				select {
				case <-coord.Done():
					return coord.Err()
				default:
				}
				if lastWorkerErr != nil {
					return fmt.Errorf("dist: all workers exited before completion: %w", lastWorkerErr)
				}
				return fmt.Errorf("dist: all workers exited before completion")
			}
		}
	}
}

// SingleProcessMerged runs the spec in-process (no HTTP, no leases)
// and writes the same canonical merged JSONL the coordinator writes —
// the reference artifact distributed runs are byte-compared against.
func SingleProcessMerged(ctx context.Context, spec Spec, out string, workers int) error {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return err
	}
	order, err := spec.Cells()
	if err != nil {
		return err
	}
	lab, err := spec.NewLab()
	if err != nil {
		return err
	}
	opts := lab.CharOpts(workers)
	sem := make(chan struct{}, maxInt(workers, 1))
	results := make(map[string]json.RawMessage, len(order))
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for _, c := range order {
		c := c
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			row, err := RunCell(ctx, lab, c, opts)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			raw, err := MarshalRow(row)
			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				results[c.Key()] = raw
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return WriteMergedFile(out, order, results)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
