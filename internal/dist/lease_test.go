package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"tevot/internal/cells"
)

// fakeClock drives the lease table deterministically.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testCells(n int) []Cell {
	out := make([]Cell, n)
	for i := range out {
		out[i] = Cell{FU: "INT_ADD", Dataset: "random_data",
			Corner: cells.Corner{V: 0.8 + float64(i)/100, T: float64(i)}}
	}
	return out
}

func testTable(n int, clk *fakeClock) *leaseTable {
	return newLeaseTable(testCells(n), 10*time.Second, 3, 2, clk.now)
}

func val(s string) json.RawMessage { return json.RawMessage(fmt.Sprintf("{%q:1}", s)) }

func mustGrant(t *testing.T, tb *leaseTable, worker string) acquireResult {
	t.Helper()
	res, err := tb.acquire(worker)
	if err != nil {
		t.Fatalf("acquire(%s): %v", worker, err)
	}
	if res.lease == nil {
		t.Fatalf("acquire(%s): no lease granted (done=%v none=%v)", worker, res.done, res.none)
	}
	return res
}

// TestLeaseExpiryReissuesCell: a dead worker's lease expires and the
// cell is granted to another worker.
func TestLeaseExpiryReissuesCell(t *testing.T) {
	clk := newFakeClock()
	tb := testTable(1, clk)
	r1 := mustGrant(t, tb, "w1")

	clk.advance(11 * time.Second) // past TTL
	expired := tb.expireSweep()
	if len(expired) != 1 || expired[0].id != r1.lease.id {
		t.Fatalf("expected exactly r1's lease to expire, got %v", expired)
	}
	r2 := mustGrant(t, tb, "w2")
	if r2.cell.Key() != r1.cell.Key() {
		t.Fatalf("re-issue granted %s, want %s", r2.cell.Key(), r1.cell.Key())
	}
	if tb.cells[r2.cell.Key()].issues != 2 {
		t.Fatalf("issues = %d, want 2", tb.cells[r2.cell.Key()].issues)
	}
}

// TestLateResultRacesExpiry: the "dead" worker was only slow — its
// result lands after expiry and re-issue. The late result is accepted
// (determinism makes it valid), and the re-issued copy's later result
// is a byte-checked duplicate.
func TestLateResultRacesExpiry(t *testing.T) {
	clk := newFakeClock()
	tb := testTable(1, clk)
	r1 := mustGrant(t, tb, "w1")
	key := r1.cell.Key()

	clk.advance(11 * time.Second)
	tb.expireSweep()
	r2 := mustGrant(t, tb, "w2") // re-issued

	// w1's late result: its lease is gone but the cell isn't done.
	v := val("x")
	comp, err := tb.complete("w1", r1.lease.id, key, v, HashValue(v), 1)
	if err != nil {
		t.Fatalf("late result rejected: %v", err)
	}
	if !comp.accepted || !comp.late {
		t.Fatalf("late result: accepted=%v late=%v, want true/true", comp.accepted, comp.late)
	}

	// w2 finishes too: byte-identical → harmless duplicate.
	comp2, err := tb.complete("w2", r2.lease.id, key, v, HashValue(v), 1)
	if err != nil {
		t.Fatalf("duplicate rejected: %v", err)
	}
	if !comp2.duplicate {
		t.Fatal("second identical result should be a duplicate")
	}
	if !tb.allDone() {
		t.Fatal("single-cell table should be done")
	}
}

// TestDoubleIssueDivergenceAborts: two executions of one cell that
// disagree byte-wise poison the run — complete returns the Divergence
// and every later acquire fails with errAborted.
func TestDoubleIssueDivergenceAborts(t *testing.T) {
	clk := newFakeClock()
	tb := testTable(2, clk)
	r1 := mustGrant(t, tb, "w1")
	key := r1.cell.Key()

	clk.advance(11 * time.Second)
	tb.expireSweep()
	r2 := mustGrant(t, tb, "w2")

	v1, v2 := val("a"), val("b")
	if _, err := tb.complete("w1", r1.lease.id, key, v1, HashValue(v1), 1); err != nil {
		t.Fatalf("first result: %v", err)
	}
	_, err := tb.complete("w2", r2.lease.id, key, v2, HashValue(v2), 1)
	var div *Divergence
	if !errors.As(err, &div) {
		t.Fatalf("divergent result returned %v, want *Divergence", err)
	}
	if div.Cell != key || div.HaveWorker != "w1" || div.GotWorker != "w2" {
		t.Fatalf("divergence misattributed: %+v", div)
	}

	if _, err := tb.acquire("w3"); !errors.Is(err, errAborted) {
		t.Fatalf("acquire after divergence = %v, want errAborted", err)
	}
	if err := tb.renew("w1", r1.lease.id); !errors.Is(err, errAborted) {
		t.Fatalf("renew after divergence = %v, want errAborted", err)
	}
}

// TestWorkerReregistrationReleasesLeases: a worker killed and restarted
// under the same ID gets its old leases released immediately — no TTL
// wait — and can re-lease the same cells.
func TestWorkerReregistrationReleasesLeases(t *testing.T) {
	clk := newFakeClock()
	tb := testTable(3, clk)
	tb.register("w1")
	a := mustGrant(t, tb, "w1")
	b := mustGrant(t, tb, "w1")

	released := tb.register("w1") // restart
	if released != 2 {
		t.Fatalf("re-registration released %d leases, want 2", released)
	}
	if tb.workers["w1"].generation != 1 {
		t.Fatalf("generation = %d, want 1", tb.workers["w1"].generation)
	}
	for _, key := range []string{a.cell.Key(), b.cell.Key()} {
		if st := tb.cells[key].status; st != cellPending {
			t.Fatalf("cell %s status = %v after release, want pending", key, st)
		}
	}
	// Old lease IDs must be dead.
	if err := tb.renew("w1", a.lease.id); !errors.Is(err, errLeaseGone) {
		t.Fatalf("renew of released lease = %v, want errLeaseGone", err)
	}
	// And the restarted worker can pick the cells back up.
	c := mustGrant(t, tb, "w1")
	if c.cell.Key() != a.cell.Key() {
		t.Fatalf("restarted worker got %s, want first cell %s", c.cell.Key(), a.cell.Key())
	}
}

// TestElasticJoinMidRun: a worker that joins mid-run (never registered;
// first contact is a lease request) is implicitly registered and gets
// the next pending cell.
func TestElasticJoinMidRun(t *testing.T) {
	clk := newFakeClock()
	tb := testTable(4, clk)
	mustGrant(t, tb, "w1")
	v := val("r")
	r2 := mustGrant(t, tb, "w1")
	if _, err := tb.complete("w1", r2.lease.id, r2.cell.Key(), v, HashValue(v), 1); err != nil {
		t.Fatal(err)
	}

	late := mustGrant(t, tb, "late-joiner")
	if tb.workers["late-joiner"] == nil {
		t.Fatal("lease request should implicitly register the worker")
	}
	if st := tb.cells[late.cell.Key()].status; st != cellLeased {
		t.Fatalf("joined worker's cell status = %v, want leased", st)
	}
	if late.cell.Key() == r2.cell.Key() {
		t.Fatal("joiner was granted an already-completed cell")
	}
}

// TestRenewExtendsDeadline: renewal pushes the deadline out; without it
// the lease expires.
func TestRenewExtendsDeadline(t *testing.T) {
	clk := newFakeClock()
	tb := testTable(1, clk)
	r := mustGrant(t, tb, "w1")

	clk.advance(8 * time.Second)
	if err := tb.renew("w1", r.lease.id); err != nil {
		t.Fatalf("renew: %v", err)
	}
	clk.advance(8 * time.Second) // 16s total, but renewed at 8s → deadline 18s
	if n := len(tb.expireSweep()); n != 0 {
		t.Fatalf("renewed lease expired (%d)", n)
	}
	clk.advance(3 * time.Second) // 19s > 18s
	if n := len(tb.expireSweep()); n != 1 {
		t.Fatalf("lease should expire after renewal lapse, got %d", n)
	}
}

// TestSpeculativeReissueBounded: with nothing pending, an idle worker
// gets a speculative copy of the straggler — but only after enough
// completed-cell history, never of its own cell, and never beyond
// maxCopies.
func TestSpeculativeReissueBounded(t *testing.T) {
	clk := newFakeClock()
	tb := testTable(5, clk)

	// w1 takes the first cell and stalls; w2 completes the rest fast.
	r1 := mustGrant(t, tb, "w1")
	for i := 0; i < 4; i++ {
		r := mustGrant(t, tb, "w2")
		clk.advance(1 * time.Second)
		if err := tb.renew("w1", r1.lease.id); err != nil { // keep straggler alive
			t.Fatal(err)
		}
		v := val(r.cell.Key())
		if _, err := tb.complete("w2", r.lease.id, r.cell.Key(), v, HashValue(v), 1); err != nil {
			t.Fatal(err)
		}
	}
	// Median completed duration ≈ 1s; straggler has ~4s elapsed > 3×1s.
	clk.advance(500 * time.Millisecond)

	// The straggler's own worker never gets a speculative copy.
	if res, err := tb.acquire("w1"); err != nil || res.lease != nil {
		t.Fatalf("straggler's own worker got a copy: %+v err=%v", res, err)
	}
	res, err := tb.acquire("w3")
	if err != nil || res.lease == nil || !res.speculative {
		t.Fatalf("idle worker should get speculative copy, got %+v err=%v", res, err)
	}
	if res.cell.Key() != r1.cell.Key() {
		t.Fatalf("speculative copy of %s, want straggler %s", res.cell.Key(), r1.cell.Key())
	}
	// maxCopies=2: no third copy.
	if res2, err := tb.acquire("w4"); err != nil || res2.lease != nil {
		t.Fatalf("third copy granted beyond maxCopies: %+v err=%v", res2, err)
	}

	// First result in wins; the other copy's result is a duplicate.
	v := val("straggler")
	if comp, err := tb.complete("w3", res.lease.id, res.cell.Key(), v, HashValue(v), 1); err != nil || !comp.accepted {
		t.Fatalf("speculative winner: %+v err=%v", comp, err)
	}
	if comp, err := tb.complete("w1", r1.lease.id, r1.cell.Key(), v, HashValue(v), 1); err != nil || !comp.duplicate {
		t.Fatalf("loser should be duplicate: %+v err=%v", comp, err)
	}
}

// TestStuckCellAbortsAfterMaxIssues: a cell that gets issued over and
// over without completing eventually aborts the run instead of looping
// forever.
func TestStuckCellAbortsAfterMaxIssues(t *testing.T) {
	clk := newFakeClock()
	tb := testTable(1, clk)
	for i := 0; i < maxIssuesPerCell; i++ {
		mustGrant(t, tb, "w1")
		clk.advance(11 * time.Second)
		if n := len(tb.expireSweep()); n != 1 {
			t.Fatalf("round %d: expired %d leases, want 1", i, n)
		}
	}
	_, err := tb.acquire("w1")
	if err == nil || errors.Is(err, errAborted) {
		t.Fatalf("stuck cell should return a terminal non-abort error, got %v", err)
	}
}

// TestCompleteRejectsBadHash: a result whose hash doesn't match its
// bytes (corrupt transfer) is rejected without touching cell state.
func TestCompleteRejectsBadHash(t *testing.T) {
	clk := newFakeClock()
	tb := testTable(1, clk)
	r := mustGrant(t, tb, "w1")
	v := val("x")
	if _, err := tb.complete("w1", r.lease.id, r.cell.Key(), v, "deadbeef", 1); err == nil {
		t.Fatal("mismatched content hash should be rejected")
	}
	if tb.cells[r.cell.Key()].status == cellDone {
		t.Fatal("rejected result must not complete the cell")
	}
}

// TestAcquireWhenAllDone reports done, not none.
func TestAcquireWhenAllDone(t *testing.T) {
	clk := newFakeClock()
	tb := testTable(1, clk)
	r := mustGrant(t, tb, "w1")
	v := val("x")
	if _, err := tb.complete("w1", r.lease.id, r.cell.Key(), v, HashValue(v), 1); err != nil {
		t.Fatal(err)
	}
	res, err := tb.acquire("w2")
	if err != nil || !res.done {
		t.Fatalf("acquire on finished sweep: %+v err=%v, want done", res, err)
	}
}
