// Chaos soak: the distributed sweep driven through seeded fault
// schedules spanning all three planes (network, disk, clock), with the
// full invariant suite checked after every run. Lives in package
// dist_test because internal/chaos imports dist.
package dist_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/chaos"
	"tevot/internal/dist"
	"tevot/internal/experiments"
)

// soakSpec mirrors the cluster tests' small spec: 1 FU x 3 datasets x
// 2 corners = 6 cells, each sub-second. Small on purpose — the soak's
// value is in schedule count, not sweep size.
func soakSpec() dist.Spec {
	return dist.Spec{
		Cycles:    400,
		FUs:       []string{"INT_ADD"},
		Corners:   []cells.Corner{{V: 0.81, T: 0}, {V: 1.00, T: 100}},
		Images:    2,
		ImageSize: 16,
		Seed:      1,
	}
}

// The fault-free reference bytes and the shared Lab are built once per
// test binary; every schedule's merged output must byte-match them.
var (
	soakOnce sync.Once
	soakLab  *experiments.Lab
	soakRef  []byte
	soakErr  error
)

func soakFixtures(t *testing.T) (*experiments.Lab, []byte) {
	t.Helper()
	soakOnce.Do(func() {
		spec := soakSpec()
		soakLab, soakErr = spec.NewLab()
		if soakErr != nil {
			return
		}
		dir, err := os.MkdirTemp("", "chaos-ref-*")
		if err != nil {
			soakErr = err
			return
		}
		defer os.RemoveAll(dir)
		ref := filepath.Join(dir, "ref.jsonl")
		if soakErr = dist.SingleProcessMerged(context.Background(), spec, ref, runtime.GOMAXPROCS(0)); soakErr != nil {
			return
		}
		soakRef, soakErr = os.ReadFile(ref)
	})
	if soakErr != nil {
		t.Fatalf("soak fixtures: %v", soakErr)
	}
	return soakLab, soakRef
}

func runSoak(t *testing.T, sched chaos.Schedule) {
	t.Helper()
	lab, ref := soakFixtures(t)
	res, err := chaos.Soak(context.Background(), chaos.SoakConfig{
		Spec:      soakSpec(),
		Lab:       lab,
		Reference: ref,
		Logf:      t.Logf,
	}, sched)
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	t.Logf("%s", res)
}

// TestChaosSoak runs generated schedules seeds 1..25 (1..5 under
// -short) — a corpus TestGenerateCorpusCoversAllPlanes proves spans
// every fault plane plus worker kills and coordinator crashes. Set
// TEVOT_CHAOS_SEED to replay a single schedule verbatim (the same knob
// scripts/chaos_soak.sh -seed uses).
func TestChaosSoak(t *testing.T) {
	if s := os.Getenv("TEVOT_CHAOS_SEED"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("TEVOT_CHAOS_SEED=%q: %v", s, err)
		}
		sched := chaos.Generate(seed)
		t.Run(fmt.Sprintf("replay-seed-%d", seed), func(t *testing.T) { runSoak(t, sched) })
		return
	}
	n := int64(25)
	if testing.Short() {
		n = 5
	}
	for seed := int64(1); seed <= n; seed++ {
		sched := chaos.Generate(seed)
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) { runSoak(t, sched) })
	}
}

// TestChaosRegressions replays the pinned schedules — each one exposed
// a real bug during development (see chaos.Regressions for what each
// pins). They run in -short mode too: regressions are the cheapest
// insurance in the suite.
func TestChaosRegressions(t *testing.T) {
	for _, sched := range chaos.Regressions() {
		sched := sched
		t.Run(sched.Name, func(t *testing.T) { runSoak(t, sched) })
	}
}
