package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"tevot/internal/obs"
	"tevot/internal/obs/trace"
	"tevot/internal/runner"
	"tevot/internal/serve"
)

// CoordConfig configures one coordinator run.
type CoordConfig struct {
	Spec Spec
	// Addr is the listen address for Serve ("127.0.0.1:0" default).
	Addr string
	// LeaseTTL is how long a granted lease lives without renewal.
	LeaseTTL time.Duration
	// ExpiryEvery is the expiry-sweep cadence (default LeaseTTL/4).
	ExpiryEvery time.Duration
	// StragglerFactor gates speculative re-issue: an in-flight cell is a
	// straggler once its elapsed time exceeds factor × the median
	// completed-cell time. <= 0 disables speculation.
	StragglerFactor float64
	// MaxCopies bounds concurrent leases per cell (primary + speculative).
	MaxCopies int
	// MaxInflight caps concurrent HTTP requests (serve.Limit semantics).
	MaxInflight int
	// Journal is the checkpoint path ("" = no journal, in-memory only).
	// It uses internal/runner's checkpoint format, so a killed
	// coordinator resumes without re-running completed cells.
	Journal string
	// FS backs the journal file; nil means the real filesystem. Chaos
	// soaks inject torn writes, ENOSPC, and fsync lies here.
	FS runner.FS
	// Resume loads an existing journal instead of refusing to overwrite.
	Resume bool
	// Out, if set, receives the merged canonical JSONL on completion.
	Out string
	// Linger keeps the HTTP surface up after completion so workers
	// polling for leases hear "done" instead of a connection error.
	Linger time.Duration
}

func (c CoordConfig) withDefaults() CoordConfig {
	c.Spec = c.Spec.withDefaults()
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.ExpiryEvery <= 0 {
		c.ExpiryEvery = c.LeaseTTL / 4
	}
	if c.StragglerFactor == 0 {
		c.StragglerFactor = 3
	}
	if c.MaxCopies <= 0 {
		c.MaxCopies = 2
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.Linger <= 0 {
		c.Linger = 2 * time.Second
	}
	if c.FS == nil {
		c.FS = runner.OSFS
	}
	return c
}

// ErrJournalFailed marks a run aborted because the journal stopped
// persisting accepted results. Soaks and operators branch on it: the
// run's in-memory state was fine, but its resume guarantee was void.
var ErrJournalFailed = errors.New("dist: journal write failed")

// Coordinator owns the lease table and journal of one distributed
// sweep. All state is guarded by mu; the HTTP handlers are thin
// translations between the wire protocol and leaseTable calls.
type Coordinator struct {
	cfg   CoordConfig
	order []Cell

	mu       sync.Mutex
	table    *leaseTable
	jnl      *runner.Journal
	failure  error // divergence (or journal write failure); terminal
	resumed  int
	reissues int
	lates    int
	// workerMetrics holds the last registry snapshot each worker
	// piggybacked on a renew or result request, keyed by worker ID.
	// Snapshots survive worker re-registration (same ID, new
	// generation) — counters are cumulative per worker identity.
	workerMetrics map[string]*obs.RegistrySnapshot

	done     chan struct{}
	doneOnce sync.Once
	start    time.Time
}

// NewCoordinator validates the spec, opens (or resumes) the journal,
// and builds the lease table. now is the clock hook (nil = time.Now),
// exposed for deterministic expiry tests.
func NewCoordinator(cfg CoordConfig, now func() time.Time) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	order, err := cfg.Spec.Cells()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:           cfg,
		order:         order,
		table:         newLeaseTable(order, cfg.LeaseTTL, cfg.StragglerFactor, cfg.MaxCopies, now),
		workerMetrics: make(map[string]*obs.RegistrySnapshot),
		done:          make(chan struct{}),
		start:         time.Now(),
	}
	if cfg.Journal != "" {
		jnl, doneCells, err := runner.OpenJournalFS(cfg.FS, cfg.Journal, cfg.Spec.Fingerprint(), cfg.Resume)
		if err != nil {
			return nil, fmt.Errorf("dist: journal: %w", err)
		}
		c.jnl = jnl
		for key, raw := range doneCells {
			if err := c.table.markDone(key, raw, 0); err != nil {
				jnl.Close()
				return nil, err
			}
			c.resumed++
		}
		mJournalResumed.Add(int64(c.resumed))
		if c.resumed > 0 {
			obs.Logger("dist").Info("resumed from journal",
				"path", cfg.Journal, "cells_done", c.resumed, "cells_total", len(order))
		}
	}
	gCellsDone.Set(float64(c.table.doneCount))
	if c.table.allDone() {
		c.finishLocked()
	}
	return c, nil
}

// Handler returns the coordinator's HTTP surface, wrapped in the shared
// panic-recovery and admission middleware from internal/serve.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", c.handleRegister)
	mux.HandleFunc("/v1/spec", c.handleSpec)
	mux.HandleFunc("/v1/lease", c.handleLease)
	mux.HandleFunc("/v1/renew", c.handleRenew)
	mux.HandleFunc("/v1/result", c.handleResult)
	mux.HandleFunc("/progress", c.handleProgress)
	mux.HandleFunc("/cluster/metrics", c.handleClusterMetrics)
	mux.Handle("/metrics", obs.PromHandler(nil))
	mux.Handle("/debug/traces", trace.DefaultHandler())
	// Traced with joinOnly: requests carrying a worker's traceparent
	// (lease, renew, result) join the worker's cell trace; bare polls
	// from untraced clients don't each mint a trace.
	return serve.Recover("dist", mHTTPPanics.Inc,
		serve.Limit(c.cfg.MaxInflight, mHTTPShed.Inc,
			serve.Traced("dist", true, mux)))
}

// handleClusterMetrics merges the piggybacked per-worker snapshots and
// serves them as one exposition document: per-worker series first
// (worker="<id>" label), then the merged fleet totals with
// aggregate="cluster". Counters sum, gauges sum, histograms merge
// bucket-wise (all workers share the same code, hence the same bounds).
func (c *Coordinator) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	ids := make([]string, 0, len(c.workerMetrics))
	for id := range c.workerMetrics {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	snaps := make([]*obs.RegistrySnapshot, len(ids))
	for i, id := range ids {
		snaps[i] = c.workerMetrics[id]
	}
	c.mu.Unlock()

	var merged obs.RegistrySnapshot
	var mergeErrs []error
	labeled := make([]obs.LabeledSnapshot, 0, len(ids)+1)
	for i, id := range ids {
		labeled = append(labeled, obs.LabeledSnapshot{
			Labels: map[string]string{"worker": id}, Snap: *snaps[i],
		})
		mergeErrs = append(mergeErrs, obs.MergeSnapshots(&merged, *snaps[i])...)
	}
	labeled = append(labeled, obs.LabeledSnapshot{
		Labels: map[string]string{"aggregate": "cluster"}, Snap: merged,
	})
	var buf bytes.Buffer
	if err := obs.WritePromSnapshots(&buf, obs.PromPrefix, labeled); err != nil {
		serve.WriteError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	for _, err := range mergeErrs {
		obs.Logger("dist").Warn("cluster metrics merge skipped a series", "err", err)
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	w.Write(buf.Bytes())
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decodePost(w, r, &req) {
		return
	}
	if req.Worker == "" {
		serve.WriteError(w, http.StatusBadRequest, "invalid_request", "worker id required")
		return
	}
	c.mu.Lock()
	known := c.table.workers[req.Worker] != nil
	released := c.table.register(req.Worker)
	c.updateGaugesLocked()
	c.mu.Unlock()
	mWorkersRegistered.Inc()
	if known {
		obs.Logger("dist").Info("worker re-registered", "worker", req.Worker, "released_leases", released)
	} else {
		obs.Logger("dist").Info("worker registered", "worker", req.Worker)
	}
	serve.WriteJSON(w, http.StatusOK, registerResponse{Spec: c.cfg.Spec, ReleasedLeases: released})
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, http.StatusOK, c.cfg.Spec)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodePost(w, r, &req) {
		return
	}
	if req.Worker == "" {
		serve.WriteError(w, http.StatusBadRequest, "invalid_request", "worker id required")
		return
	}
	c.mu.Lock()
	res, err := c.table.acquire(req.Worker)
	if err != nil && !errors.Is(err, errAborted) {
		// Terminal acquire failure (stuck cell): abort the whole run.
		c.failLocked(err)
	}
	if err == nil && res.lease != nil && !res.speculative && c.table.cells[res.lease.key].issues > 1 {
		c.reissues++
		mCellsReissued.Inc()
	}
	c.updateGaugesLocked()
	c.mu.Unlock()
	switch {
	case errors.Is(err, errAborted):
		serve.WriteError(w, http.StatusConflict, "aborted", "run aborted on divergence")
	case err != nil:
		serve.WriteError(w, http.StatusConflict, "aborted", err.Error())
	case res.done:
		serve.WriteJSON(w, http.StatusOK, leaseResponse{Status: leaseDone})
	case res.none:
		serve.WriteJSON(w, http.StatusOK, leaseResponse{
			Status: leaseNone, RetryMS: c.cfg.LeaseTTL.Milliseconds() / 4,
		})
	default:
		mLeasesGranted.Inc()
		if res.speculative {
			mSpeculativeLeases.Inc()
			obs.Logger("dist").Info("speculative lease",
				"worker", req.Worker, "cell", res.cell.Key(), "lease", res.lease.id)
		}
		cell := res.cell
		serve.WriteJSON(w, http.StatusOK, leaseResponse{
			Status: leaseGranted, LeaseID: res.lease.id, Cell: &cell,
			TTLMS: c.cfg.LeaseTTL.Milliseconds(), Speculative: res.speculative,
		})
	}
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req renewRequest
	if !decodePost(w, r, &req) {
		return
	}
	c.mu.Lock()
	err := c.table.renew(req.Worker, req.LeaseID)
	if req.Metrics != nil && req.Worker != "" {
		c.workerMetrics[req.Worker] = req.Metrics
	}
	c.mu.Unlock()
	switch {
	case errors.Is(err, errAborted):
		serve.WriteError(w, http.StatusConflict, "aborted", "run aborted on divergence")
	case errors.Is(err, errLeaseGone):
		serve.WriteError(w, http.StatusGone, "lease_gone", "lease expired or re-issued; abandon the cell")
	case err != nil:
		serve.WriteError(w, http.StatusInternalServerError, "internal", err.Error())
	default:
		mLeasesRenewed.Inc()
		serve.WriteJSON(w, http.StatusOK, renewResponse{TTLMS: c.cfg.LeaseTTL.Milliseconds()})
	}
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if !decodePost(w, r, &req) {
		return
	}
	if req.Worker == "" || req.Key == "" || len(req.Value) == 0 {
		serve.WriteError(w, http.StatusBadRequest, "invalid_request", "worker, key, and value required")
		return
	}

	c.mu.Lock()
	if req.Metrics != nil {
		c.workerMetrics[req.Worker] = req.Metrics
	}
	comp, err := c.table.complete(req.Worker, req.LeaseID, req.Key, req.Value, req.Hash, req.Attempts)
	var div *Divergence
	if errors.As(err, &div) {
		c.failLocked(div)
	}
	if err == nil && comp.accepted {
		if comp.late {
			c.lates++
		}
		if jerr := c.journalLocked(req.Key, req.Attempts, req.Value); jerr != nil {
			// A journal that stops persisting voids the resume guarantee;
			// better to abort loudly than complete a run whose checkpoint
			// silently diverged from reality.
			c.failLocked(fmt.Errorf("%w: %w", ErrJournalFailed, jerr))
			err = c.failure
		}
	}
	allDone := err == nil && c.table.allDone()
	if allDone {
		c.finishLocked()
	}
	c.updateGaugesLocked()
	c.mu.Unlock()

	switch {
	case div != nil:
		mDivergences.Inc()
		obs.Logger("dist").Error("divergent result — aborting run",
			"cell", div.Cell, "have", short(div.HaveHash), "have_worker", div.HaveWorker,
			"got", short(div.GotHash), "got_worker", div.GotWorker)
		serve.WriteError(w, http.StatusConflict, "divergence", div.Error())
	case errors.Is(err, errAborted):
		serve.WriteError(w, http.StatusConflict, "aborted", "run aborted on divergence")
	case err != nil:
		serve.WriteError(w, http.StatusBadRequest, "invalid_result", err.Error())
	case comp.duplicate:
		mResultsDuplicate.Inc()
		if comp.late {
			mLateResults.Inc()
		}
		serve.WriteJSON(w, http.StatusOK, resultResponse{Status: resultDuplicate})
	default:
		mResultsAccepted.Inc()
		if comp.late {
			mLateResults.Inc()
		}
		if comp.leaseAge > 0 {
			hCellSeconds.Observe(comp.leaseAge.Seconds())
		}
		if allDone {
			obs.Logger("dist").Info("sweep complete",
				"cells", len(c.order), "resumed", c.resumed, "reissues", c.reissues)
		}
		serve.WriteJSON(w, http.StatusOK, resultResponse{Status: resultAccepted})
	}
}

func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, http.StatusOK, c.Progress())
}

// journalLocked appends an accepted result to the journal (if any).
// Caller holds mu; the fsync inside Record is acceptable at
// coordination traffic rates.
func (c *Coordinator) journalLocked(key string, attempts int, value []byte) error {
	if c.jnl == nil {
		return nil
	}
	return c.jnl.Record(key, attempts, value)
}

// failLocked records the terminal failure and releases waiters.
func (c *Coordinator) failLocked(err error) {
	if c.failure == nil {
		c.failure = err
	}
	c.doneOnce.Do(func() { close(c.done) })
}

// finishLocked runs once when every cell is done: merge, close journal.
func (c *Coordinator) finishLocked() {
	c.doneOnce.Do(func() {
		if c.cfg.Out != "" {
			if err := WriteMergedFile(c.cfg.Out, c.order, c.table.results()); err != nil {
				c.failure = fmt.Errorf("dist: merge: %w", err)
			}
		}
		if c.jnl != nil {
			c.jnl.Close()
		}
		close(c.done)
	})
}

// ExpireNow runs one expiry sweep, returning expired leases to the
// pool. Called by Serve's ticker and directly by tests.
func (c *Coordinator) ExpireNow() int {
	c.mu.Lock()
	expired := c.table.expireSweep()
	c.updateGaugesLocked()
	c.mu.Unlock()
	for _, l := range expired {
		mLeasesExpired.Inc()
		obs.Logger("dist").Warn("lease expired",
			"lease", l.id, "worker", l.worker, "cell", l.key, "speculative", l.speculative)
	}
	return len(expired)
}

// ForceExpire expires every live lease regardless of deadline — the
// chaos knob fault drills and tests use to simulate mass worker death
// without waiting out real TTLs.
func (c *Coordinator) ForceExpire() int {
	c.mu.Lock()
	for _, l := range c.table.leases {
		l.deadline = c.table.now().Add(-time.Nanosecond)
	}
	c.mu.Unlock()
	return c.ExpireNow()
}

// Done is closed when the run completes or aborts.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Err returns the terminal failure (nil on clean completion). Valid
// after Done is closed.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failure
}

// Wait blocks until completion, abort, or ctx cancellation.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-c.done:
		return c.Err()
	}
}

// Results snapshots completed cell values (for in-process callers).
func (c *Coordinator) Results() map[string]json.RawMessage {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.table.results()
}

// Order returns the canonical cell order of this sweep.
func (c *Coordinator) Order() []Cell { return append([]Cell(nil), c.order...) }

// Progress snapshots the run state for /progress and obs manifests.
func (c *Coordinator) Progress() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.table
	leased, pending := 0, 0
	for _, e := range t.cells {
		switch e.status {
		case cellLeased:
			leased++
		case cellPending:
			pending++
		}
	}
	dups := 0
	p := Progress{
		Sweep:      c.cfg.Spec.Fingerprint(),
		Cells:      len(c.order),
		Done:       t.doneCount,
		Leased:     leased,
		Pending:    pending,
		Resumed:    c.resumed,
		Reissues:   c.reissues,
		ElapsedSec: time.Since(c.start).Seconds(),
		Aborted:    c.failure != nil,
		Divergence: func() *Divergence {
			var d *Divergence
			if errors.As(c.failure, &d) {
				return d
			}
			return nil
		}(),
	}
	now := t.now()
	for _, w := range t.workers {
		wp := WorkerProgress{
			ID: w.id, Generation: w.generation, LeasesHeld: w.leasesHeld,
			CellsDone: w.cellsDone, Duplicates: w.cellsDryRun,
			LastSeenMS: now.Sub(w.lastSeen).Milliseconds(),
			Metrics:    c.workerMetrics[w.id],
		}
		for _, l := range t.leases {
			if l.worker == w.id {
				wp.Leases = append(wp.Leases, l.key)
			}
		}
		sort.Strings(wp.Leases)
		dups += w.cellsDryRun
		p.Workers = append(p.Workers, wp)
	}
	sort.Slice(p.Workers, func(i, j int) bool { return p.Workers[i].ID < p.Workers[j].ID })
	p.Duplicates = dups
	// Crude ETA: remaining cells × mean completed-cell time ÷ live
	// workers holding leases (idle sweeps get no estimate).
	if remaining := len(c.order) - t.doneCount; remaining > 0 && len(t.durations) > 0 {
		var sum time.Duration
		for _, d := range t.durations {
			sum += d
		}
		mean := sum / time.Duration(len(t.durations))
		parallel := len(t.leases)
		if parallel < 1 {
			parallel = 1
		}
		p.ETASec = (time.Duration(remaining) * mean / time.Duration(parallel)).Seconds()
	}
	return p
}

func (c *Coordinator) updateGaugesLocked() {
	gCellsDone.Set(float64(c.table.doneCount))
	gLeasesLive.Set(float64(len(c.table.leases)))
	gWorkers.Set(float64(len(c.table.workers)))
}

// Start binds cfg.Addr and launches the HTTP server plus the
// lease-expiry loop in the background. It returns the base URL
// (http://host:port) and a stop function that shuts both down. The
// bound address is also logged as addr=http://... (the line smoke
// tests and operators parse).
func (c *Coordinator) Start(ctx context.Context) (string, func(), error) {
	ln, err := net.Listen("tcp", c.cfg.Addr)
	if err != nil {
		return "", nil, fmt.Errorf("dist: listen: %w", err)
	}
	base := "http://" + ln.Addr().String()
	obs.Logger("dist").Info("coordinator listening",
		"addr", base,
		"cells", len(c.order), "resumed", c.resumed,
		"lease_ttl", c.cfg.LeaseTTL, "journal", c.cfg.Journal)

	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln)

	expCtx, stopExpiry := context.WithCancel(ctx)
	go func() {
		tick := time.NewTicker(c.cfg.ExpiryEvery)
		defer tick.Stop()
		for {
			select {
			case <-expCtx.Done():
				return
			case <-tick.C:
				c.ExpireNow()
			}
		}
	}()

	var stopOnce sync.Once
	stop := func() {
		stopOnce.Do(func() {
			stopExpiry()
			shCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if err := srv.Shutdown(shCtx); err != nil {
				// Graceful drain timed out — a stuck upload (or injected
				// chaos delay) is holding a connection open. Force-close so
				// stop() never leaks the listener or its conn goroutines.
				srv.Close()
			}
		})
	}
	return base, stop, nil
}

// Serve is Start + Wait: it blocks until the sweep completes, aborts,
// or ctx is cancelled. After a clean completion it lingers briefly so
// workers polling for leases hear "done" rather than a connection
// error.
func (c *Coordinator) Serve(ctx context.Context) error {
	_, stop, err := c.Start(ctx)
	if err != nil {
		return err
	}
	defer stop()

	runErr := c.Wait(ctx)
	if runErr == nil {
		// Let workers poll once more and hear "done".
		timer := time.NewTimer(c.cfg.Linger)
		select {
		case <-timer.C:
		case <-ctx.Done():
		}
		timer.Stop()
	}
	return runErr
}

// decodePost decodes a small JSON POST body, writing the error
// response itself on failure.
func decodePost(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		serve.WriteError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		serve.WriteError(w, http.StatusBadRequest, "malformed_json", err.Error())
		return false
	}
	return true
}
