package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tevot/internal/cells"
	"tevot/internal/experiments"
	"tevot/internal/obs"
	"tevot/internal/obs/trace"
)

// testSpec is the small grid the integration tests run: 1 FU × 3
// datasets × 2 corners = 6 cells, each fast enough that a full sweep is
// a second-scale affair even under -race.
func testSpec() Spec {
	return Spec{
		Cycles: 400,
		FUs:    []string{"INT_ADD"},
		Corners: []cells.Corner{
			{V: 0.81, T: 0}, {V: 1.00, T: 100},
		},
		Images:    2,
		ImageSize: 16,
		Seed:      1,
	}
}

// The reference artifacts every distributed-mode test compares against:
// the single-process merged JSONL and a lab all in-process workers
// share (functional units are concurrency-safe). Built once per test
// binary — the sweep itself is the expensive part.
var (
	refOnce sync.Once
	refData []byte
	refLab  *experiments.Lab
	refFail error
)

func refMerged(t *testing.T) ([]byte, *experiments.Lab) {
	t.Helper()
	refOnce.Do(func() {
		spec := testSpec()
		lab, err := spec.NewLab()
		if err != nil {
			refFail = err
			return
		}
		refLab = lab
		order, err := spec.Cells()
		if err != nil {
			refFail = err
			return
		}
		opts := lab.CharOpts(1)
		results := make(map[string]json.RawMessage, len(order))
		for _, c := range order {
			row, err := RunCell(context.Background(), lab, c, opts)
			if err != nil {
				refFail = err
				return
			}
			raw, err := MarshalRow(row)
			if err != nil {
				refFail = err
				return
			}
			results[c.Key()] = raw
		}
		var buf bytes.Buffer
		if err := WriteMerged(&buf, order, results); err != nil {
			refFail = err
			return
		}
		refData = buf.Bytes()
	})
	if refFail != nil {
		t.Fatalf("reference sweep: %v", refFail)
	}
	if len(refData) == 0 {
		t.Fatal("reference merged output is empty")
	}
	return refData, refLab
}

// TestSingleProcessMergedMatchesReference: the no-cluster merge path
// produces the same canonical bytes.
func TestSingleProcessMergedMatchesReference(t *testing.T) {
	ref, _ := refMerged(t)
	out := filepath.Join(t.TempDir(), "sp.jsonl")
	if err := SingleProcessMerged(context.Background(), testSpec(), out, 2); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatalf("single-process merged output differs from reference\n got %d bytes\nwant %d bytes", len(got), len(ref))
	}
}

// TestLocalClusterByteIdentical is the ISSUE acceptance test: an
// in-process cluster — real loopback HTTP, leases, heartbeats — with
// an injected worker kill (SIGKILL-equivalent: its context is cut with
// no goodbye) and a forced mass lease expiry still completes, and its
// merged JSONL is byte-identical to the single-process run.
func TestLocalClusterByteIdentical(t *testing.T) {
	ref, lab := refMerged(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "dist.jsonl")

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	coord, err := NewCoordinator(CoordConfig{
		Spec:        testSpec(),
		LeaseTTL:    2 * time.Second,
		ExpiryEvery: 100 * time.Millisecond,
		Journal:     filepath.Join(dir, "journal.jsonl"),
		Out:         out,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, stop, err := coord.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// Lease one cell as a "holder" that never reports: while it is held
	// the sweep cannot complete, so the kill below is guaranteed to land
	// mid-run — worker 0 can never see leaseDone and exit clean before
	// its cancellation, no matter how fast the real cells finish.
	// ForceExpire releases the held cell to the survivors afterwards.
	holder := NewClient(base, 99)
	if _, _, err := holder.Register(ctx, "holder"); err != nil {
		t.Fatal(err)
	}
	hl, err := holder.Lease(ctx, "holder")
	if err != nil {
		t.Fatal(err)
	}
	if hl.Status != leaseGranted {
		t.Fatalf("holder lease status %q, want granted", hl.Status)
	}

	// Three workers; worker 0 will be killed mid-run.
	const workers = 3
	wctx := make([]context.Context, workers)
	wcancel := make([]context.CancelFunc, workers)
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wctx[i], wcancel[i] = context.WithCancel(ctx)
		defer wcancel[i]()
		cfg := WorkerConfig{
			ID:          "tw-" + string(rune('a'+i)),
			Coordinator: base,
			Lab:         lab,
		}
		ictx := wctx[i]
		go func() { errs <- RunWorker(ictx, cfg) }()
	}

	// Wait until at least one result landed, then kill worker 0 without
	// any goodbye (the in-process analogue of SIGKILL) and force every
	// outstanding lease to expire — the mass-worker-death drill. The
	// renew keeps the holder's cell pinned even if this loop runs past
	// the lease TTL on a slow machine.
	waitFor(t, ctx, func() bool {
		_ = holder.Renew(ctx, "holder", hl.LeaseID, nil)
		return coord.Progress().Done >= 1
	})
	wcancel[0]()
	coord.ForceExpire()

	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("coordinator: %v (progress: %+v)", err, coord.Progress())
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatalf("distributed merged output differs from single-process reference\n got %d bytes\nwant %d bytes", len(got), len(ref))
	}

	// The survivors exit cleanly once the coordinator says done; the
	// killed worker exits with its context error.
	var cancels, clean int
	for i := 0; i < workers; i++ {
		select {
		case err := <-errs:
			if err == nil {
				clean++
			} else if errors.Is(err, context.Canceled) {
				cancels++
			} else {
				t.Fatalf("worker error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("workers did not exit after completion")
		}
	}
	if cancels != 1 || clean != 2 {
		t.Fatalf("worker exits: %d cancelled / %d clean, want 1/2", cancels, clean)
	}
}

// TestCoordinatorResumesFromJournal: a coordinator restarted on a
// partial journal re-runs only the missing cells and still produces the
// byte-identical merged output.
func TestCoordinatorResumesFromJournal(t *testing.T) {
	ref, lab := refMerged(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "journal.jsonl")
	out := filepath.Join(dir, "dist.jsonl")

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// First incarnation: run the full sweep to get a complete journal.
	if err := RunLocalCluster(ctx, ClusterConfig{
		Coord: CoordConfig{
			Spec:     testSpec(),
			LeaseTTL: 2 * time.Second,
			Journal:  journal,
			Out:      filepath.Join(dir, "first.jsonl"),
		},
		Workers: 2,
		Worker:  WorkerConfig{Lab: lab},
	}); err != nil {
		t.Fatal(err)
	}

	// Simulate the coordinator dying partway: keep the header plus the
	// first three completed cells.
	full, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(full, []byte("\n"))
	const keep = 1 + 3 // header + 3 entries
	if len(lines) < keep+1 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	if err := os.WriteFile(journal, bytes.Join(lines[:keep], nil), 0o644); err != nil {
		t.Fatal(err)
	}

	// Second incarnation resumes; its lone worker must only be asked for
	// the three missing cells.
	coord, err := NewCoordinator(CoordConfig{
		Spec:     testSpec(),
		LeaseTTL: 2 * time.Second,
		Journal:  journal,
		Resume:   true,
		Out:      out,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := coord.Progress().Resumed; got != 3 {
		t.Fatalf("resumed %d cells from truncated journal, want 3", got)
	}
	base, stop, err := coord.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	werr := make(chan error, 1)
	go func() {
		werr <- RunWorker(ctx, WorkerConfig{ID: "resumer", Coordinator: base, Lab: lab})
	}()
	if err := coord.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-werr; err != nil {
		t.Fatalf("worker: %v", err)
	}

	p := coord.Progress()
	if p.Resumed != 3 {
		t.Fatalf("final resumed count %d, want 3", p.Resumed)
	}
	for _, w := range p.Workers {
		if w.ID == "resumer" && w.CellsDone != 3 {
			t.Fatalf("resumer ran %d cells, want exactly the 3 missing ones", w.CellsDone)
		}
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatalf("resumed merged output differs from reference\n got %d bytes\nwant %d bytes", len(got), len(ref))
	}
}

// TestCompleteJournalResumeFinishesImmediately: a coordinator built on
// an already-complete journal is done before any worker connects and
// writes the merged output at construction.
func TestCompleteJournalResumeFinishesImmediately(t *testing.T) {
	ref, lab := refMerged(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "journal.jsonl")

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := RunLocalCluster(ctx, ClusterConfig{
		Coord: CoordConfig{
			Spec:     testSpec(),
			LeaseTTL: 2 * time.Second,
			Journal:  journal,
			Out:      filepath.Join(dir, "first.jsonl"),
		},
		Workers: 2,
		Worker:  WorkerConfig{Lab: lab},
	}); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "again.jsonl")
	coord, err := NewCoordinator(CoordConfig{
		Spec: testSpec(), Journal: journal, Resume: true, Out: out,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("coordinator with complete journal should be done at construction")
	}
	if err := coord.Err(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("resume-only merged output differs from reference")
	}
}

// TestDivergenceAbortsClusterRun: a worker that reports bytes
// different from an earlier result for the same cell aborts the whole
// run with a divergence report.
func TestDivergenceAbortsClusterRun(t *testing.T) {
	_, lab := refMerged(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	coord, err := NewCoordinator(CoordConfig{
		Spec:     testSpec(),
		LeaseTTL: time.Minute,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, stop, err := coord.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	client := NewClient(base, 1)
	if _, _, err := client.Register(ctx, "honest"); err != nil {
		t.Fatal(err)
	}
	lr, err := client.Lease(ctx, "honest")
	if err != nil || lr.Status != leaseGranted {
		t.Fatalf("lease: %+v err=%v", lr, err)
	}
	row, err := RunCell(ctx, lab, *lr.Cell, lab.CharOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := MarshalRow(row)
	if _, err := client.Report(ctx, resultRequest{
		Worker: "honest", LeaseID: lr.LeaseID, Key: lr.Cell.Key(),
		Value: raw, Hash: HashValue(raw), Attempts: 1,
	}); err != nil {
		t.Fatal(err)
	}

	// A corrupted re-execution of the same cell (divergent bytes).
	bad := json.RawMessage(`{"corrupt":true}`)
	_, err = client.Report(ctx, resultRequest{
		Worker: "flaky", LeaseID: "L999999", Key: lr.Cell.Key(),
		Value: bad, Hash: HashValue(bad), Attempts: 1,
	})
	if !errors.Is(err, ErrRunAborted) {
		t.Fatalf("divergent report returned %v, want ErrRunAborted", err)
	}
	if err := coord.Wait(ctx); err == nil {
		t.Fatal("coordinator should report the divergence as its terminal error")
	}
	p := coord.Progress()
	if !p.Aborted || p.Divergence == nil || p.Divergence.Cell != lr.Cell.Key() {
		t.Fatalf("progress after divergence: %+v", p)
	}
	// New lease requests are refused.
	if _, err := client.Lease(ctx, "honest"); !errors.Is(err, ErrRunAborted) {
		t.Fatalf("lease after abort = %v, want ErrRunAborted", err)
	}
}

// scrapeProm fetches url and runs it through the strict exposition
// parser, failing the test on either error.
func scrapeProm(t *testing.T, url string) map[string]*obs.PromFamily {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	fams, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: strict parser rejected output: %v", url, err)
	}
	return fams
}

// TestClusterTelemetryAndTracing is the PR acceptance test: a
// two-worker in-process cluster with tracing on must (a) balance the
// fleet counters on /cluster/metrics against the grid size, (b) show
// one cell's full story — coordinator lease handling, worker
// characterization, result upload — as a single trace on /debug/traces,
// and (c) serve strict-parser-clean /metrics documents from both the
// coordinator process and a worker registry.
func TestClusterTelemetryAndTracing(t *testing.T) {
	_, lab := refMerged(t)

	prev := trace.Default()
	trace.SetDefault(trace.New(7, trace.NewStore(256, 16)))
	defer trace.SetDefault(prev)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Long TTL and no speculation: every cell completes exactly once, so
	// the fleet counter balance below is an identity, not a likelihood.
	coord, err := NewCoordinator(CoordConfig{
		Spec:            testSpec(),
		LeaseTTL:        time.Minute,
		StragglerFactor: -1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, stop, err := coord.Start(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	regs := []*obs.Registry{obs.NewRegistry(), obs.NewRegistry()}
	errs := make(chan error, len(regs))
	for i := range regs {
		cfg := WorkerConfig{
			ID:          "tm-" + string(rune('a'+i)),
			Coordinator: base,
			Lab:         lab,
			Metrics:     regs[i],
		}
		go func() { errs <- RunWorker(ctx, cfg) }()
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("coordinator: %v (progress: %+v)", err, coord.Progress())
	}
	for range regs {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	cells := float64(len(coord.Order()))

	// (a) /cluster/metrics: per-worker cells_done sums to the grid size,
	// and the merged aggregate sample agrees.
	fams := scrapeProm(t, base+"/cluster/metrics")
	fam := fams["tevot_worker_cells_done_total"]
	if fam == nil {
		t.Fatalf("/cluster/metrics missing tevot_worker_cells_done_total; families: %d", len(fams))
	}
	var perWorker, aggregate float64
	for _, s := range fam.Samples {
		switch {
		case s.Labels["worker"] != "":
			perWorker += s.Value
		case s.Labels["aggregate"] == "cluster":
			aggregate = s.Value
		default:
			t.Fatalf("cells_done sample with unexpected labels: %+v", s)
		}
	}
	if perWorker != cells || aggregate != cells {
		t.Fatalf("cells_done balance: per-worker sum %v, aggregate %v, want %v", perWorker, aggregate, cells)
	}

	// (b) /debug/traces: at least one completed dist.cell trace whose
	// span tree links the worker's cell root, the coordinator's lease
	// handling, the characterization, and the result upload under one
	// trace ID (the ID is the retrieval key, so linkage is inherent).
	resp, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces []trace.Summary `json:"traces"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"dist.cell", "rpc /v1/lease", "http /v1/lease", "dist.characterize", "rpc /v1/result", "http /v1/result"}
	found := false
	for _, sum := range list.Traces {
		if sum.Name != "dist.cell" || sum.State == "active" {
			continue
		}
		resp, err := http.Get(base + "/debug/traces?id=" + sum.ID)
		if err != nil {
			t.Fatal(err)
		}
		var rec trace.Record
		err = json.NewDecoder(resp.Body).Decode(&rec)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		names := map[string]bool{}
		var walk func(sp *trace.SpanRecord)
		walk = func(sp *trace.SpanRecord) {
			names[sp.Name] = true
			for _, c := range sp.Children {
				walk(c)
			}
		}
		for _, r := range rec.Roots {
			walk(r)
		}
		ok := true
		for _, n := range want {
			if !names[n] {
				ok = false
				break
			}
		}
		if ok {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no completed dist.cell trace contains all of %v (traces listed: %d)", want, len(list.Traces))
	}

	// (c) /metrics from the coordinator process and from a worker
	// registry both round-trip through the strict parser (scrapeProm
	// fails the test otherwise).
	coordFams := scrapeProm(t, base+"/metrics")
	if _, ok := coordFams["tevot_dist_leases_granted_total"]; !ok {
		t.Fatalf("coordinator /metrics missing dist lease counters; families: %d", len(coordFams))
	}
	wsrv := httptest.NewServer(obs.PromHandler(regs[0]))
	defer wsrv.Close()
	workerFams := scrapeProm(t, wsrv.URL)
	if _, ok := workerFams["tevot_worker_cells_done_total"]; !ok {
		t.Fatalf("worker /metrics missing worker counters; families: %d", len(workerFams))
	}
}

// waitFor polls cond until true or the context/test deadline trips.
func waitFor(t *testing.T, ctx context.Context, cond func() bool) {
	t.Helper()
	for !cond() {
		select {
		case <-ctx.Done():
			t.Fatalf("timeout waiting for condition: %v", ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}
