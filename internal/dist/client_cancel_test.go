package dist

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestClientCancelMidUpload pins the context-propagation contract: a
// cancelled ctx must abort an in-flight RPC promptly — including a
// result upload stalled inside the server — rather than riding out the
// 30s http.Client timeout. This is what lets a shutting-down worker
// (or a coordinator-initiated drain) cut its uploads immediately.
func TestClientCancelMidUpload(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		select { // stall until the test ends
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	// Unblock the handler before the deferred srv.Close() (LIFO), which
	// waits for in-flight handlers.
	defer close(release)

	c := NewClient(srv.URL, 1)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := c.Report(ctx, resultRequest{
			Worker: "w", LeaseID: "L1", Key: "k",
			Value: []byte(`{"v":1}`), Hash: HashValue([]byte(`{"v":1}`)),
		})
		errCh <- err
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("upload never reached the server")
	}
	cancel()

	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Report returned %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("cancel took %v to unwind the upload — ctx is not propagated", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Report did not return after cancel — in-flight upload not cancellable")
	}
}

// TestClientCapsServerRetryAfter pins the Retry-After clamp: a 429
// carrying a pathological delay must not stretch the retry sleep past
// the policy max (the schedule stays second-scale, not day-scale).
func TestClientCapsServerRetryAfter(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits == 1 {
			w.Header().Set("Retry-After", "100000") // ~27 hours
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"status":"accepted"}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL, 1)
	start := time.Now()
	_, err := c.Report(context.Background(), resultRequest{
		Worker: "w", LeaseID: "L1", Key: "k",
		Value: []byte(`{"v":1}`), Hash: HashValue([]byte(`{"v":1}`)),
	})
	if err != nil {
		t.Fatalf("Report after one capped 429: %v", err)
	}
	if hits != 2 {
		t.Fatalf("server saw %d attempts, want 2", hits)
	}
	// Policy max is 5s; the old uncapped behavior would sleep 100000s.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("retry slept %v — Retry-After was honored uncapped", elapsed)
	}
}
