package dist

import "tevot/internal/obs"

// Counters for every decision the coordinator makes about work
// placement. These are the numbers a failure-mode postmortem reads:
// leases_expired > 0 means workers died (or stalled past TTL),
// cells_reissued says how much work was redone, results_duplicate
// counts the wasted-but-harmless re-executions, and divergences must
// stay zero forever — a single one aborts the run.
var (
	mLeasesGranted     = obs.NewCounter("dist.leases_granted")
	mLeasesRenewed     = obs.NewCounter("dist.leases_renewed")
	mLeasesExpired     = obs.NewCounter("dist.leases_expired")
	mCellsReissued     = obs.NewCounter("dist.cells_reissued")
	mSpeculativeLeases = obs.NewCounter("dist.speculative_leases")
	mResultsAccepted   = obs.NewCounter("dist.results_accepted")
	mResultsDuplicate  = obs.NewCounter("dist.results_duplicate")
	mLateResults       = obs.NewCounter("dist.late_results")
	mDivergences       = obs.NewCounter("dist.divergences")
	mWorkersRegistered = obs.NewCounter("dist.workers_registered")
	mJournalResumed    = obs.NewCounter("dist.journal_resumed_cells")
	mHTTPPanics        = obs.NewCounter("dist.http_panics")
	mHTTPShed          = obs.NewCounter("dist.http_shed")
	mCellsAbandoned    = obs.NewCounter("dist.cells_abandoned")

	gCellsDone  = obs.NewGauge("dist.cells_done")
	gLeasesLive = obs.NewGauge("dist.leases_live")
	gWorkers    = obs.NewGauge("dist.workers")

	hCellSeconds = obs.NewHistogram("dist.cell_seconds", obs.DurationBuckets)
)
