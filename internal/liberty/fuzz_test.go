package liberty

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"tevot/internal/cells"
)

// validLiberty renders a real scaled cell library for fuzz seeding.
func validLiberty(t testing.TB) []byte {
	lib, err := FromScaling("tevot45", cells.DefaultScaling(), cells.Corner{V: 0.9, T: 25})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzParse: Parse must never panic on arbitrary bytes, and accepted
// inputs must parse deterministically.
func FuzzParse(f *testing.F) {
	f.Add(validLiberty(f))
	f.Add([]byte("library (x) {\n}\n"))
	f.Add([]byte("library (x) {\n cell (AND2) {\n }\n}\n"))
	f.Add([]byte("cell (orphan) { intrinsic_rise : 1.0; }"))
	f.Add([]byte("library (x) { nom_voltage : nan; }"))
	f.Add([]byte("intrinsic_rise"))
	f.Add([]byte("library ("))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, errA := Parse(bytes.NewReader(data))
		b, errB := Parse(bytes.NewReader(data))
		if (errA == nil) != (errB == nil) {
			t.Fatalf("nondeterministic parse outcome: %v vs %v", errA, errB)
		}
		if errA != nil {
			return
		}
		if a == nil || len(a.Cells) == 0 {
			t.Fatal("successful parse returned empty library")
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("nondeterministic parse result")
		}
	})
}

// TestParseSurvivesMutations: deterministic randomized mutation sweep in
// the style of internal/sim/fuzz_test.go — runs under plain `go test`.
func TestParseSurvivesMutations(t *testing.T) {
	valid := validLiberty(t)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 400; trial++ {
		mut := append([]byte(nil), valid...)
		switch trial % 4 {
		case 0:
			mut = mut[:rng.Intn(len(mut)+1)]
		case 1:
			for i := 0; i < 1+rng.Intn(6); i++ {
				mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
			}
		case 2:
			lo := rng.Intn(len(mut))
			hi := lo + rng.Intn(len(mut)-lo)
			mut = append(mut[:lo], mut[hi:]...)
		case 3:
			lo := rng.Intn(len(mut))
			hi := lo + rng.Intn(len(mut)-lo)
			mut = append(mut[:hi], append(append([]byte(nil), mut[lo:hi]...), mut[hi:]...)...)
		}
		_, _ = Parse(bytes.NewReader(mut)) // must not panic
	}
}
