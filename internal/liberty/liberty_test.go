package liberty

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tevot/internal/cells"
)

func TestFromScalingNominalMatchesLibrary(t *testing.T) {
	m := cells.DefaultScaling()
	lib, err := FromScaling("tevot45", m, cells.Corner{V: m.Vnom, T: m.Tnom})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range cells.Kinds() {
		got, err := lib.Timing(k)
		if err != nil {
			t.Fatal(err)
		}
		want := cells.NominalTiming(k)
		if math.Abs(got.Intrinsic-want.Intrinsic) > 1e-9 || math.Abs(got.PerLoad-want.PerLoad) > 1e-9 {
			t.Errorf("%s: nominal library arc %+v != library timing %+v", k, got, want)
		}
	}
}

func TestFromScalingLowVoltageSlower(t *testing.T) {
	m := cells.DefaultScaling()
	nom, err := FromScaling("nom", m, cells.Corner{V: 1.0, T: 25})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := FromScaling("slow", m, cells.Corner{V: 0.81, T: 25})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range cells.Kinds() {
		a, _ := nom.Timing(k)
		b, _ := slow.Timing(k)
		if b.Intrinsic <= a.Intrinsic {
			t.Errorf("%s: 0.81V arc (%v) not slower than 1.0V (%v)", k, b.Intrinsic, a.Intrinsic)
		}
	}
}

func TestFromScalingRejectsBadCorner(t *testing.T) {
	if _, err := FromScaling("x", cells.DefaultScaling(), cells.Corner{V: 0.3, T: 25}); err == nil {
		t.Fatal("accepted sub-threshold corner")
	}
}

func TestRoundTrip(t *testing.T) {
	m := cells.DefaultScaling()
	lib, err := FromScaling("tevot45_slow", m, cells.Corner{V: 0.85, T: 75})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "tevot45_slow" || back.Voltage != 0.85 || back.Temperature != 75 {
		t.Errorf("header lost: %q %v %v", back.Name, back.Voltage, back.Temperature)
	}
	if len(back.Cells) != len(lib.Cells) {
		t.Fatalf("cell count %d != %d", len(back.Cells), len(lib.Cells))
	}
	for name, want := range lib.Cells {
		got := back.Cells[name]
		if math.Abs(got.Intrinsic-want.Intrinsic) > 0.001 || math.Abs(got.PerLoad-want.PerLoad) > 0.001 {
			t.Errorf("%s: %+v != %+v after round trip", name, got, want)
		}
	}
}

func TestParseMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"no cells":      "library (x) {\n}\n",
		"bad attribute": "library (x) {\n  cell (INV) {\n    intrinsic_rise : abc;\n  }\n}",
		"cell missing timing": "library (x) {\n  cell (INV) {\n  }\n  cell (BUF) {\n" +
			"    intrinsic_rise : 1;\n    rise_resistance : 1;\n  }\n}",
	}
	for name, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Parse accepted malformed input", name)
		}
	}
}

func TestTimingMissingCell(t *testing.T) {
	lib := &Library{Name: "x", Cells: map[string]cells.Timing{}}
	if _, err := lib.Timing(cells.Inv); err == nil {
		t.Fatal("Timing succeeded for missing cell")
	}
}
