// Package liberty writes and reads a minimal Liberty (.lib) view of the
// standard-cell library: one cell group per kind with a linear
// delay-vs-fanout timing arc, characterized at a chosen operating
// corner. In the paper's flow the cell library (with its
// voltage-temperature scaling characterization) is the artifact that
// carries timing from the foundry into synthesis and STA; this package
// provides that artifact for our library so per-corner libraries can be
// inspected, diffed, and reloaded.
package liberty

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"tevot/internal/cells"
)

// Library is the parsed view of a .lib file.
type Library struct {
	Name        string
	Voltage     float64
	Temperature float64
	// Cells maps cell name to its characterized linear timing arc
	// (intrinsic + per-load slope), in ps.
	Cells map[string]cells.Timing
}

// FromScaling characterizes the built-in cell library at a corner:
// every kind's nominal timing multiplied by its kind-specific derating.
func FromScaling(name string, m cells.ScalingModel, corner cells.Corner) (*Library, error) {
	if err := m.Validate(corner); err != nil {
		return nil, err
	}
	lib := &Library{
		Name:        name,
		Voltage:     corner.V,
		Temperature: corner.T,
		Cells:       make(map[string]cells.Timing),
	}
	for _, k := range cells.Kinds() {
		tm := cells.NominalTiming(k)
		f := m.FactorFor(k, corner)
		lib.Cells[k.String()] = cells.Timing{
			Intrinsic: tm.Intrinsic * f,
			PerLoad:   tm.PerLoad * f,
		}
	}
	return lib, nil
}

// Timing returns the library's arc for a cell kind.
func (l *Library) Timing(k cells.Kind) (cells.Timing, error) {
	tm, ok := l.Cells[k.String()]
	if !ok {
		return cells.Timing{}, fmt.Errorf("liberty: library %q has no cell %s", l.Name, k)
	}
	return tm, nil
}

// Write emits the library as Liberty text.
func (l *Library) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library (%s) {\n", l.Name)
	fmt.Fprintf(bw, "  time_unit : \"1ps\";\n")
	fmt.Fprintf(bw, "  nom_voltage : %.3f;\n", l.Voltage)
	fmt.Fprintf(bw, "  nom_temperature : %.1f;\n", l.Temperature)
	names := make([]string, 0, len(l.Cells))
	for name := range l.Cells {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tm := l.Cells[name]
		fmt.Fprintf(bw, "  cell (%s) {\n", name)
		fmt.Fprintf(bw, "    pin (Y) {\n")
		fmt.Fprintf(bw, "      direction : output;\n")
		fmt.Fprintf(bw, "      timing () {\n")
		fmt.Fprintf(bw, "        intrinsic_rise : %.4f;\n", tm.Intrinsic)
		fmt.Fprintf(bw, "        intrinsic_fall : %.4f;\n", tm.Intrinsic)
		fmt.Fprintf(bw, "        rise_resistance : %.4f;\n", tm.PerLoad)
		fmt.Fprintf(bw, "        fall_resistance : %.4f;\n", tm.PerLoad)
		fmt.Fprintf(bw, "      }\n")
		fmt.Fprintf(bw, "    }\n")
		fmt.Fprintf(bw, "  }\n")
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

// Parse reads the subset Write emits (library header attributes and
// per-cell intrinsic/resistance timing attributes). Rise and fall values
// are averaged, matching the single-arc model the rest of the flow uses.
func Parse(r io.Reader) (*Library, error) {
	lib := &Library{Cells: make(map[string]cells.Timing)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var curCell string
	var intrinsicSum, resistSum float64
	var intrinsicN, resistN int
	flushCell := func() error {
		if curCell == "" {
			return nil
		}
		if intrinsicN == 0 || resistN == 0 {
			return fmt.Errorf("liberty: cell %q missing timing attributes", curCell)
		}
		lib.Cells[curCell] = cells.Timing{
			Intrinsic: intrinsicSum / float64(intrinsicN),
			PerLoad:   resistSum / float64(resistN),
		}
		curCell = ""
		intrinsicSum, resistSum = 0, 0
		intrinsicN, resistN = 0, 0
		return nil
	}
	attrValue := func(line string) (float64, error) {
		_, v, ok := strings.Cut(line, ":")
		if !ok {
			return 0, fmt.Errorf("liberty: malformed attribute %q", line)
		}
		v = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(v), ";"))
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, err
		}
		// Non-finite attribute values would silently poison downstream
		// timing math (found by fuzzing).
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, fmt.Errorf("liberty: non-finite attribute value %q", line)
		}
		return f, nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "library ("):
			lib.Name = between(line, "library (", ")")
		case strings.HasPrefix(line, "nom_voltage"):
			v, err := attrValue(line)
			if err != nil {
				return nil, err
			}
			lib.Voltage = v
		case strings.HasPrefix(line, "nom_temperature"):
			v, err := attrValue(line)
			if err != nil {
				return nil, err
			}
			lib.Temperature = v
		case strings.HasPrefix(line, "cell ("):
			if err := flushCell(); err != nil {
				return nil, err
			}
			curCell = between(line, "cell (", ")")
		case strings.HasPrefix(line, "intrinsic_rise"), strings.HasPrefix(line, "intrinsic_fall"):
			v, err := attrValue(line)
			if err != nil {
				return nil, err
			}
			intrinsicSum += v
			intrinsicN++
		case strings.HasPrefix(line, "rise_resistance"), strings.HasPrefix(line, "fall_resistance"):
			v, err := attrValue(line)
			if err != nil {
				return nil, err
			}
			resistSum += v
			resistN++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flushCell(); err != nil {
		return nil, err
	}
	if lib.Name == "" {
		return nil, fmt.Errorf("liberty: no library group found")
	}
	if len(lib.Cells) == 0 {
		return nil, fmt.Errorf("liberty: library %q has no cells", lib.Name)
	}
	return lib, nil
}

func between(s, pre, post string) string {
	s = strings.TrimPrefix(s, pre)
	if i := strings.Index(s, post); i >= 0 {
		return strings.TrimSpace(s[:i])
	}
	return strings.TrimSpace(s)
}
