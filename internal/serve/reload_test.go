package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/workload"
)

// TestReloadSwapsValidatedModel: a good gob swaps in, bumps the
// generation, and subsequent predictions use it.
func TestReloadSwapsValidatedModel(t *testing.T) {
	dir := t.TempDir()
	m2, err := trainModel(23) // same FU/dim, different training data
	if err != nil {
		t.Fatal(err)
	}
	path := writeModelFile(t, dir, "v2.tevot", m2)
	s, ts := newTestServer(t, nil)

	resp, err := http.Post(ts.URL+"/admin/reload", "application/json",
		strings.NewReader(`{"path":`+jq(path)+`}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, data)
	}
	if s.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", s.Generation())
	}
	presp, pdata := postPredict(t, ts.URL, validBody(4))
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("predict after reload: %d: %s", presp.StatusCode, pdata)
	}
	var out predictResponse
	if err := json.Unmarshal(pdata, &out); err != nil {
		t.Fatal(err)
	}
	if out.ModelGeneration != 2 {
		t.Errorf("response generation = %d, want 2", out.ModelGeneration)
	}
}

// TestReloadRejectsCorruptAndKeepsServing: truncated and bit-flipped
// gobs — and a dimension-incompatible model — are rejected with 422
// while the old model keeps serving, generation unchanged.
func TestReloadRejectsCorruptAndKeepsServing(t *testing.T) {
	dir := t.TempDir()
	m := trainedModel(t)
	good := writeModelFile(t, dir, "good.tevot", m)
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	truncated := dir + "/truncated.tevot"
	if err := os.WriteFile(truncated, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	garbage := dir + "/garbage.tevot"
	if err := os.WriteFile(garbage, []byte("not a model at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A structurally valid model with the wrong feature dimension: the
	// no-history ablation shape must be refused by the dim gate.
	nhCfg := core.DefaultConfig()
	nhCfg.History = false
	nh, err := core.Train(circuits.IntAdd32, trainedTrace(t), nhCfg)
	if err != nil {
		t.Fatal(err)
	}
	nhPath := writeModelFile(t, dir, "nh.tevot", nh)

	s, ts := newTestServer(t, nil)
	for _, bad := range []string{truncated, garbage, nhPath, dir + "/missing.tevot"} {
		resp, err := http.Post(ts.URL+"/admin/reload", "application/json",
			strings.NewReader(`{"path":`+jq(bad)+`}`))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("reload of %s: status %d, want 422: %s", bad, resp.StatusCode, data)
		}
		if e := decodeError(t, data); e.Error.Code != "reload_failed" {
			t.Errorf("reload of %s: code %q", bad, e.Error.Code)
		}
		if s.Generation() != 1 {
			t.Fatalf("failed reload moved the generation to %d", s.Generation())
		}
		// The old model must still serve correctly after every rejection.
		presp, pdata := postPredict(t, ts.URL, validBody(3))
		if presp.StatusCode != http.StatusOK {
			t.Fatalf("predict after rejected reload of %s: %d: %s", bad, presp.StatusCode, pdata)
		}
	}
}

// TestConcurrentPredictDuringReload is the torn-model race: predictions
// hammer the service while models hot-swap underneath them. Every
// response must be a 200 with a generation/delay set from one coherent
// model — run under -race by check.sh, where a torn read would trip.
func TestConcurrentPredictDuringReload(t *testing.T) {
	dir := t.TempDir()
	mA := trainedModel(t)
	mB, err := trainModel(31)
	if err != nil {
		t.Fatal(err)
	}
	paths := []string{
		writeModelFile(t, dir, "a.tevot", mA),
		writeModelFile(t, dir, "b.tevot", mB),
	}
	s, ts := newTestServer(t, func(c *Config) { c.Workers = 4; c.QueueDepth = 64 })

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	body := validBody(5)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- io.ErrUnexpectedEOF
					t.Errorf("predict during reload: %d: %s", resp.StatusCode, data)
					return
				}
				var out predictResponse
				if err := json.Unmarshal(data, &out); err != nil {
					errCh <- err
					return
				}
				if out.ModelGeneration < 1 || len(out.Delays) != 4 {
					t.Errorf("torn response: gen=%d delays=%d", out.ModelGeneration, len(out.Delays))
				}
			}
		}()
	}
	for i := 0; i < 12; i++ {
		if _, err := s.Reload(paths[i%2]); err != nil {
			t.Errorf("reload %d: %v", i, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("predict goroutine failed: %v", err)
	default:
	}
	if got := s.Generation(); got != 13 {
		t.Errorf("generation = %d, want 13 (1 + 12 reloads)", got)
	}
}

// trainedTrace characterizes a small training trace for tests that need
// to train model variants.
func trainedTrace(t *testing.T) []*core.Trace {
	t.Helper()
	u, err := core.NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.Characterize(u, cells.Corner{V: 0.88, T: 50}, workload.RandomInt(301, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	return []*core.Trace{tr}
}

// jq JSON-quotes a path for inline request bodies.
func jq(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
