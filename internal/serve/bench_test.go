package serve

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/obs"
	"tevot/internal/workload"
)

// benchModel trains one compact history-free model per bench binary —
// the small-request regime coalescing targets: per-row inference is
// cheap (66-wide features, shallow trees), so per-request fixed costs
// dominate the uncoalesced path.
var (
	benchModelOnce sync.Once
	benchModelVal  *core.Model
	benchModelErr  error
)

func benchModel() (*core.Model, error) {
	benchModelOnce.Do(func() {
		u, err := core.NewFUnit(circuits.IntAdd32)
		if err != nil {
			benchModelErr = err
			return
		}
		tr, err := core.Characterize(u, cells.Corner{V: 0.88, T: 50}, workload.RandomInt(201, 7), nil)
		if err != nil {
			benchModelErr = err
			return
		}
		cfg := core.DefaultConfig()
		cfg.History = false
		benchModelVal, benchModelErr = core.Train(circuits.IntAdd32, []*core.Trace{tr}, cfg)
	})
	return benchModelVal, benchModelErr
}

// BenchmarkServeBatch measures coalesced serving throughput at the
// item level (enqueue → accumulate → flush → scatter, no HTTP): one
// driver floods 1-row items through one unit while a single worker
// flushes. batch=1 is the uncoalesced baseline — every item pays its
// own batcher→worker handoff and flush fixed costs; batch=8/64
// amortize those over the riders. The items/s delta between batch=1
// and batch=64 is the coalescer's win (acceptance: ≥3× on 1-row
// items); ns/op feeds the benchdiff regression gate.
func BenchmarkServeBatch(b *testing.B) {
	// go test merges the binary's stderr into stdout, so the server's
	// Info-level "ready" line would split the benchmark result line and
	// break scripts/benchjson.sh's parser. Warnings stay visible.
	if err := obs.SetupLogging("warn", "text", os.Stderr); err != nil {
		b.Fatal(err)
	}
	for _, bs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			model, err := benchModel()
			if err != nil {
				b.Fatal(err)
			}
			s, err := New(Config{
				Model: model, Workers: 1, QueueDepth: 2 * bs,
				BatchSize: bs, MaxWait: 100 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			u := s.units[0]

			// A ring of in-flight items twice the queue depth: the
			// driver re-admits an item only after its previous flight
			// finished, so the coalescer sees a steady open flood.
			pairs := workload.RandomInt(2, 3).Pairs // 1 predicted row per item
			ring := make([]*batchItem, 4*bs)
			inFlight := make([]bool, len(ring))
			for i := range ring {
				ring[i] = &batchItem{
					ctx:    context.Background(),
					corner: cells.Corner{V: 0.88, T: 50},
					pairs:  pairs,
					rows:   1,
					done:   make(chan struct{}, 1),
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it := ring[i%len(ring)]
				if inFlight[i%len(ring)] {
					<-it.done
					if it.err != nil {
						b.Fatal(it.err)
					}
				}
				for !u.admit(it) {
					runtime.Gosched()
				}
				inFlight[i%len(ring)] = true
			}
			for i, it := range ring {
				if inFlight[i] {
					<-it.done
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "items/s")
		})
	}
}
