package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"tevot/internal/cells"
	"tevot/internal/obs"
)

// Handler returns the full route set wrapped in the panic-recovery
// middleware:
//
//	GET  /                  route index
//	GET  /healthz           liveness (200 while the process runs)
//	GET  /readyz            readiness (503 once draining)
//	GET  /metrics           Prometheus exposition (format 0.0.4)
//	POST /v1/predict        batched delay/error prediction (default unit)
//	POST /v1/predict/{fu}   same, routed to one functional unit's shard
//	POST /admin/reload      validated model hot-reload (optionally per FU)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			WriteError(w, http.StatusNotFound, "not_found", "unknown route")
			return
		}
		fmt.Fprintf(w, "tevot-serve\n\nGET  /healthz\nGET  /readyz\nGET  /metrics\nPOST /v1/predict\nPOST /v1/predict/{fu}\nPOST /admin/reload\n\nunits: %v\n", s.FUs())
	})
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		s.handlePredict(s.units[0], w, r)
	})
	mux.HandleFunc("/v1/predict/{fu}", func(w http.ResponseWriter, r *http.Request) {
		fu := r.PathValue("fu")
		u, ok := s.unitFor(fu)
		if !ok {
			// Counted in the aggregate only: no unit owns this request,
			// so no per-FU identity includes it.
			mRequests.Inc()
			mBad.Inc()
			mUnknownFU.Inc()
			WriteError(w, http.StatusNotFound, "unknown_fu",
				fmt.Sprintf("no model serves %q; units: %v", fu, s.FUs()))
			return
		}
		s.handlePredict(u, w, r)
	})
	mux.HandleFunc("/admin/reload", s.handleReload)
	mux.Handle("/metrics", obs.PromHandler(nil))
	// Panic isolation via the shared middleware (middleware.go); the
	// coalescer admission for /v1/predict stays inside handlePredict
	// because shedding happens after validation there. Traced sits
	// inside Recover so a panicking traced request still ends cleanly,
	// and roots a trace per request (the serving SLO exemplar source).
	return Recover("serve", mPanics.Inc, Traced("serve", false, mux))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		WriteJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	units := make(map[string]int64, len(s.units))
	for _, u := range s.units {
		units[u.fu] = u.state.Load().generation
	}
	st := s.units[0].state.Load()
	WriteJSON(w, http.StatusOK, map[string]any{
		"status":           "ready",
		"fu":               st.model.FU.String(),
		"model_generation": st.generation,
		"units":            units,
	})
}

// shed answers 429 with a Retry-After derived from the unit's current
// flush interval: enough whole seconds for the present backlog to clear
// at one batch per MaxWait (see retryAfterSecs).
func (s *Server) shed(u *unit, w http.ResponseWriter, code, msg string) {
	u.met.shed.Inc()
	mShed.Inc()
	secs := retryAfterSecs(s.cfg.MaxWait, u.queueLen.Load(), s.cfg.BatchSize)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	WriteError(w, http.StatusTooManyRequests, code, msg)
}

// handlePredict is the serving hot path: validate, admit into the
// unit's coalescer, wait for the flush under the request deadline.
// Every exit increments exactly one outcome counter in the unit's set
// AND the aggregate set (see the accounting identity in metrics.go).
func (s *Server) handlePredict(u *unit, w http.ResponseWriter, r *http.Request) {
	u.met.requests.Inc()
	mRequests.Inc()
	start := time.Now()
	defer func() { hRequestSec.Observe(time.Since(start).Seconds()) }()

	if r.Method != http.MethodPost {
		u.met.bad.Inc()
		mBad.Inc()
		w.Header().Set("Allow", http.MethodPost)
		WriteError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	if s.draining.Load() {
		// The listener is closing, but a request already in flight on a
		// kept-alive connection can still land here; shed it.
		s.shed(u, w, "draining", "server is draining")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req predictRequest
	if err := dec.Decode(&req); err != nil {
		u.met.bad.Inc()
		mBad.Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			WriteError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("body exceeds the %d-byte cap", tooBig.Limit))
			return
		}
		WriteError(w, http.StatusBadRequest, "malformed_json", err.Error())
		return
	}
	if err := req.validate(s.cfg.MaxPairs, s.cfg.MaxClocks); err != nil {
		u.met.bad.Inc()
		mBad.Inc()
		WriteError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}

	// Admission: the coalescer either takes the item now or the request
	// is shed now. Nothing ever waits for queue space — that wait is
	// exactly the unbounded buffering this server refuses to do.
	it := s.itemPool.Get().(*batchItem)
	it.ctx = ctx
	it.corner = cells.Corner{V: req.Voltage, T: req.Temperature}
	it.pairs = req.Pairs
	it.rows = len(req.Pairs) - 1
	if !u.admit(it) {
		s.recycle(it)
		s.shed(u, w, "overloaded",
			fmt.Sprintf("admission queue full (%d deep); retry with backoff", s.cfg.QueueDepth))
		return
	}

	select {
	case <-it.done:
		err := it.err
		switch {
		case err == nil:
			u.met.served.Inc()
			mServed.Inc()
			WriteJSON(w, http.StatusOK, buildResponse(u.fu, it, req.Clocks))
		case errors.Is(err, errDraining):
			s.shed(u, w, "draining", "server is draining")
		case errors.Is(err, context.DeadlineExceeded):
			u.met.timeouts.Inc()
			mTimeouts.Inc()
			WriteError(w, http.StatusServiceUnavailable, "deadline_exceeded",
				fmt.Sprintf("request exceeded the %v server-side deadline", s.cfg.RequestTimeout))
		case errors.Is(err, context.Canceled):
			// The flush swept the item after the client went away.
			u.met.canceled.Inc()
			mCanceled.Inc()
			WriteError(w, http.StatusServiceUnavailable, "client_gone", "request cancelled")
		default:
			u.met.internal.Inc()
			mInternal.Inc()
			obs.Logger("serve").Error("prediction failed", "fu", u.fu, "err", err)
			WriteError(w, http.StatusInternalServerError, "prediction_failed", "internal error")
		}
		s.recycle(it)
	case <-ctx.Done():
		// The handler stops waiting; the item is abandoned to the
		// coalescer (its buffered done signal lands in the void, and it
		// is never recycled, so the flusher's writes stay safe).
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			u.met.timeouts.Inc()
			mTimeouts.Inc()
			WriteError(w, http.StatusServiceUnavailable, "deadline_exceeded",
				fmt.Sprintf("request exceeded the %v server-side deadline", s.cfg.RequestTimeout))
			return
		}
		// Client went away; the status is written into the void but the
		// outcome must still be accounted.
		u.met.canceled.Inc()
		mCanceled.Inc()
		WriteError(w, http.StatusServiceUnavailable, "client_gone", "request cancelled")
	}
}

// recycle returns an item the handler still owns (admitted and
// completed, or never admitted) to the pool. Abandoned items — the
// request context won the select — must NOT come here: the flusher may
// still write into them.
func (s *Server) recycle(it *batchItem) {
	it.ctx = nil
	it.pairs = nil
	it.err = nil
	// Drain a straggler done signal (admit failed after a previous use
	// left none; defensive — the protocol never leaves one, but a
	// poisoned pool item would corrupt a later request).
	select {
	case <-it.done:
	default:
	}
	s.itemPool.Put(it)
}

// buildResponse assembles the response for a served item: predicted
// delays, per-clock verdicts (computed here, outside the shared flush),
// and the batch timing breakdown.
func buildResponse(fu string, it *batchItem, clocks []float64) *predictResponse {
	n := it.rows
	resp := &predictResponse{
		FU:              fu,
		ModelGeneration: it.gen,
		Delays:          it.delays[:n],
		Batch: &batchInfo{
			QueuedAt:    it.queuedAt,
			FlushedAt:   it.flushedAt,
			QueueUS:     it.flushedAt.Sub(it.queuedAt).Microseconds(),
			InferenceUS: it.inferUS,
			Items:       it.batchItems,
			Rows:        it.batchRows,
			Reason:      string(it.reason),
		},
	}
	for _, clk := range clocks {
		cr := clockResult{ClockPs: clk, Errors: make([]bool, n)}
		bad := 0
		for i, d := range resp.Delays {
			if d > clk {
				cr.Errors[i] = true
				bad++
			}
		}
		cr.TER = float64(bad) / float64(n)
		resp.Clocks = append(resp.Clocks, cr)
	}
	return resp
}
