package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"tevot/internal/obs"
)

// Handler returns the full route set wrapped in the panic-recovery
// middleware:
//
//	GET  /            route index
//	GET  /healthz     liveness (200 while the process runs)
//	GET  /readyz      readiness (503 once draining)
//	GET  /metrics     Prometheus exposition (format 0.0.4)
//	POST /v1/predict  batched delay/error prediction
//	POST /admin/reload validated model hot-reload
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			WriteError(w, http.StatusNotFound, "not_found", "unknown route")
			return
		}
		fmt.Fprintf(w, "tevot-serve\n\nGET  /healthz\nGET  /readyz\nGET  /metrics\nPOST /v1/predict\nPOST /admin/reload\n")
	})
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/admin/reload", s.handleReload)
	mux.Handle("/metrics", obs.PromHandler(nil))
	// Panic isolation via the shared middleware (middleware.go); the
	// queue-based admission for /v1/predict stays inside handlePredict
	// because shedding happens after validation there. Traced sits
	// inside Recover so a panicking traced request still ends cleanly,
	// and roots a trace per request (the serving SLO exemplar source).
	return Recover("serve", mPanics.Inc, Traced("serve", false, mux))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		WriteJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	st := s.state.Load()
	WriteJSON(w, http.StatusOK, map[string]any{
		"status":           "ready",
		"fu":               st.model.FU.String(),
		"model_generation": st.generation,
	})
}

// handlePredict is the serving hot path: validate, admit, wait for the
// pool under the request deadline. Every exit increments exactly one
// outcome counter (see the accounting identity in serve.go).
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	mRequests.Inc()
	start := time.Now()
	defer func() { hRequestSec.Observe(time.Since(start).Seconds()) }()

	if r.Method != http.MethodPost {
		mBad.Inc()
		w.Header().Set("Allow", http.MethodPost)
		WriteError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	if s.draining.Load() {
		// The listener is closing, but a request already in flight on a
		// kept-alive connection can still land here; shed it.
		mShed.Inc()
		w.Header().Set("Retry-After", "1")
		WriteError(w, http.StatusTooManyRequests, "draining", "server is draining")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req predictRequest
	if err := dec.Decode(&req); err != nil {
		mBad.Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			WriteError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("body exceeds the %d-byte cap", tooBig.Limit))
			return
		}
		WriteError(w, http.StatusBadRequest, "malformed_json", err.Error())
		return
	}
	if err := req.validate(s.cfg.MaxPairs, s.cfg.MaxClocks); err != nil {
		mBad.Inc()
		WriteError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}

	// Admission: the queue either takes the job now or the request is
	// shed now. Nothing ever waits for queue space — that wait is
	// exactly the unbounded buffering this server refuses to do.
	j := &job{ctx: ctx, req: &req, done: make(chan jobResult, 1)}
	select {
	case s.queue <- j:
		gQueueDepth.Set(float64(s.queueLen.Add(1)))
	default:
		mShed.Inc()
		w.Header().Set("Retry-After", "1")
		WriteError(w, http.StatusTooManyRequests, "overloaded",
			fmt.Sprintf("admission queue full (%d deep); retry with backoff", s.cfg.QueueDepth))
		return
	}

	select {
	case res := <-j.done:
		switch {
		case res.err == nil:
			mServed.Inc()
			WriteJSON(w, http.StatusOK, res.resp)
		case errors.Is(res.err, errDraining):
			mShed.Inc()
			w.Header().Set("Retry-After", "1")
			WriteError(w, http.StatusTooManyRequests, "draining", "server is draining")
		case errors.Is(res.err, context.DeadlineExceeded):
			mTimeouts.Inc()
			WriteError(w, http.StatusServiceUnavailable, "deadline_exceeded",
				fmt.Sprintf("request exceeded the %v server-side deadline", s.cfg.RequestTimeout))
		default:
			mInternal.Inc()
			obs.Logger("serve").Error("prediction failed", "err", res.err)
			WriteError(w, http.StatusInternalServerError, "prediction_failed", "internal error")
		}
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			mTimeouts.Inc()
			WriteError(w, http.StatusServiceUnavailable, "deadline_exceeded",
				fmt.Sprintf("request exceeded the %v server-side deadline", s.cfg.RequestTimeout))
			return
		}
		// Client went away; the status is written into the void but the
		// outcome must still be accounted.
		mCanceled.Inc()
		WriteError(w, http.StatusServiceUnavailable, "client_gone", "request cancelled")
	}
}
