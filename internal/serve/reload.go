package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"time"

	"tevot/internal/cells"
	"tevot/internal/core"
	"tevot/internal/obs"
	"tevot/internal/workload"
)

// Hot-reload: the new gob is decoded into a side buffer (core.LoadModel
// under its size caps), validated against the unit's serving model,
// probed for finite predictions, and only then swapped in atomically.
// Failure at any step leaves the old model serving untouched — a
// corrupt, truncated, or wrong-unit file can cost a 4xx on
// /admin/reload, never an outage. Each functional unit reloads
// independently under its own generation; a flush in progress loaded
// its model state before the swap and finishes on it, so no batch ever
// mixes generations.

// Reload loads, validates, and swaps in the model at path for the
// default unit ("" means the path of its current model). It returns
// the new generation. Concurrent reloads of one unit serialize;
// predicts never block on a reload.
func (s *Server) Reload(path string) (int64, error) {
	return s.reloadUnit(s.units[0], path)
}

// ReloadFU reloads one functional unit's model by FU name.
func (s *Server) ReloadFU(fu, path string) (int64, error) {
	u, ok := s.unitFor(fu)
	if !ok {
		mReloadBad.Inc()
		return 0, fmt.Errorf("serve: no model serves %q; units: %v", fu, s.FUs())
	}
	return s.reloadUnit(u, path)
}

// ReloadAll reloads every unit from its current model path (the SIGHUP
// behavior). Units without a path, or with a rejected candidate, keep
// serving their current model; the first error is returned after every
// unit has been attempted.
func (s *Server) ReloadAll() error {
	var first error
	for _, u := range s.units {
		if _, err := s.reloadUnit(u, ""); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *Server) reloadUnit(u *unit, path string) (int64, error) {
	u.reloadMu.Lock()
	defer u.reloadMu.Unlock()
	log := obs.Logger("serve")
	cur := u.state.Load()
	if path == "" {
		path = cur.path
	}
	if path == "" {
		mReloadBad.Inc()
		return 0, fmt.Errorf("serve: no model path to reload %s from", u.fu)
	}
	next, err := loadAndValidate(path, cur.model)
	if err != nil {
		mReloadBad.Inc()
		log.Error("model reload rejected; keeping current model",
			"fu", u.fu, "path", path, "generation", cur.generation, "err", err)
		return 0, err
	}
	st := &modelState{model: next, generation: cur.generation + 1, path: path, loaded: time.Now()}
	u.state.Store(st)
	u.gGen.Set(float64(st.generation))
	if u == s.units[0] {
		gGeneration.Set(float64(st.generation))
	}
	mReloadOK.Inc()
	log.Info("model hot-reloaded", "fu", u.fu, "path", path,
		"generation", st.generation, "dim", next.Dim())
	return st.generation, nil
}

// loadAndValidate decodes the candidate into a side buffer and runs the
// compatibility and sanity gates against the serving model.
func loadAndValidate(path string, serving *core.Model) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: opening model: %w", err)
	}
	defer f.Close()
	m, err := core.LoadModel(f)
	if err != nil {
		return nil, fmt.Errorf("serve: decoding model: %w", err)
	}
	if m.FU != serving.FU {
		return nil, fmt.Errorf("serve: model is for %v, server is serving %v", m.FU, serving.FU)
	}
	if m.Dim() != serving.Dim() {
		return nil, fmt.Errorf("serve: model dimension %d != serving dimension %d (history mismatch?)", m.Dim(), serving.Dim())
	}
	if err := probeModel(m); err != nil {
		return nil, err
	}
	return m, nil
}

// probeModel runs a deterministic probe batch through the candidate at
// two grid corners and requires every prediction to come back finite —
// the cheap end-to-end proof that the decoded forest actually predicts
// before it is allowed to serve traffic. A panic during the probe is a
// rejection, not a crash.
func probeModel(m *core.Model) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("serve: model probe panicked: %v", p)
		}
	}()
	pairs := workload.Random(m.FU.IsFloat(), 9, 12345).Pairs
	n := len(pairs) - 1
	dim := m.Dim()
	backing := make([]float64, n*dim)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = backing[i*dim : (i+1)*dim : (i+1)*dim]
	}
	delays := make([]float64, n)
	for _, corner := range []cells.Corner{{V: 0.90, T: 25}, {V: 0.72, T: 75}} {
		if err := m.PredictDelaysPairsInto(delays, rows, corner, pairs); err != nil {
			return fmt.Errorf("serve: model probe at %v failed: %w", corner, err)
		}
		for i, d := range delays {
			if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
				return fmt.Errorf("serve: model probe at %v predicted delay[%d] = %v", corner, i, d)
			}
		}
	}
	return nil
}

// handleReload is POST /admin/reload with an optional JSON body
// {"path": "...", "fu": "..."}; an empty body reloads the default
// unit's current model path, "fu" targets one unit's shard.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		WriteError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	var body struct {
		Path string `json:"path"`
		FU   string `json:"fu"`
	}
	r.Body = http.MaxBytesReader(w, r.Body, 4096)
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
		WriteError(w, http.StatusBadRequest, "malformed_json", err.Error())
		return
	}
	u := s.units[0]
	if body.FU != "" {
		var ok bool
		if u, ok = s.unitFor(body.FU); !ok {
			mReloadBad.Inc()
			WriteError(w, http.StatusNotFound, "unknown_fu",
				fmt.Sprintf("no model serves %q; units: %v", body.FU, s.FUs()))
			return
		}
	}
	gen, err := s.reloadUnit(u, body.Path)
	if err != nil {
		WriteError(w, http.StatusUnprocessableEntity, "reload_failed", err.Error())
		return
	}
	st := u.state.Load()
	WriteJSON(w, http.StatusOK, map[string]any{
		"status":           "reloaded",
		"fu":               u.fu,
		"model_generation": gen,
		"path":             st.path,
	})
}
