package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tevot/internal/cells"
	"tevot/internal/obs"
	"tevot/internal/workload"
)

// The request coalescer. Individual /v1/predict calls enqueue one
// batchItem each into their functional unit's accumulating batch; the
// unit's batcher goroutine flushes the batch to an inference worker
// when it reaches BatchSize requests or MaxBatchRows predicted cycles,
// when the oldest request has waited MaxWait, or immediately once the
// server is draining — whichever comes first. One flush runs one
// forest call over every live item's feature rows (each item keeps its
// own operating corner; rows are packed contiguously) and scatters the
// delays back, so the amortized cost per request approaches the SoA
// batch path's per-row cost instead of paying per-call overhead and a
// worker round trip per request.
//
// Ownership protocol: the handler owns an item until admit() succeeds;
// from then the coalescer owns it until it signals done (buffered, so
// a flush never blocks on a handler that stopped listening). A handler
// that gives up early (deadline, client gone) simply abandons the item
// — it is never recycled, so the flusher can still write into it.

// flushReason says what triggered a batch flush; it is returned to
// every rider in the batch and counted per reason.
type flushReason string

const (
	flushSizeReason  flushReason = "size"  // BatchSize requests accumulated
	flushRowsReason  flushReason = "rows"  // MaxBatchRows predicted cycles accumulated
	flushTimerReason flushReason = "timer" // oldest request waited MaxWait
	flushDrainReason flushReason = "drain" // server draining: flush what is in flight
)

func (r flushReason) counter() *obs.Counter {
	switch r {
	case flushSizeReason:
		return mFlushSize
	case flushRowsReason:
		return mFlushRows
	case flushTimerReason:
		return mFlushTimer
	default:
		return mFlushDrain
	}
}

// batchItem is one admitted request's slot in an accumulating batch.
// The result fields are written by the flushing worker before done is
// signalled and must not be read before then.
type batchItem struct {
	ctx      context.Context
	corner   cells.Corner
	pairs    []workload.OperandPair
	rows     int // len(pairs)-1 predicted cycles
	queuedAt time.Time

	// Results, owned by the flusher until done fires.
	delays     []float64 // reused across recycles; len rows after flush
	gen        int64     // model generation the flush served from
	flushedAt  time.Time
	inferUS    int64 // microseconds of the shared forest call
	batchItems int   // live requests in the flushed batch
	batchRows  int   // predicted cycles in the flushed batch
	reason     flushReason
	err        error
	done       chan struct{} // buffered(1): flusher never blocks on a gone handler
}

// finish hands the item back to whoever is (maybe) waiting on it.
func (it *batchItem) finish(err error) {
	it.err = err
	it.done <- struct{}{}
}

// batch is one accumulating (then flushing) set of items. Batches are
// recycled through the unit's free list so the steady state allocates
// nothing.
type batch struct {
	items  []*batchItem
	rows   int
	reason flushReason
}

// unit is one functional unit's serving shard: its own model state,
// admission queue, coalescer, and worker slice behind the shared mux.
type unit struct {
	srv   *Server
	fu    string // model FU name; also the /v1/predict/{fu} route key
	state atomic.Pointer[modelState]

	met    outcomeSet // serve.fu.<FU>.* counters
	gQueue *obs.Gauge
	gGen   *obs.Gauge

	queue    chan *batchItem // admission: handlers → batcher
	queueLen atomic.Int64    // queued-or-accumulating (not yet dispatched) items
	batches  chan *batch     // batcher → workers, unbuffered handoff
	free     chan *batch     // recycled batch structs
	workers  int
	reloadMu sync.Mutex // serializes this unit's hot-reloads
}

func newUnit(s *Server, st *modelState, workers int) *unit {
	fu := st.model.FU.String()
	u := &unit{
		srv:     s,
		fu:      fu,
		met:     newOutcomeSet("serve.fu." + fu),
		gQueue:  obs.NewGauge("serve.fu." + fu + ".queue_depth"),
		gGen:    obs.NewGauge("serve.fu." + fu + ".model_generation"),
		queue:   make(chan *batchItem, s.cfg.QueueDepth),
		batches: make(chan *batch),
		free:    make(chan *batch, workers+2),
		workers: workers,
	}
	u.state.Store(st)
	u.gGen.Set(float64(st.generation))
	u.gQueue.Set(0)
	// Seed the free list with one batch per worker plus the one the
	// batcher accumulates into: getBatch never allocates in steady
	// state, whatever the dispatch/recycle interleaving.
	for i := 0; i < workers+1; i++ {
		u.free <- &batch{items: make([]*batchItem, 0, s.cfg.BatchSize+1)}
	}
	return u
}

// admit reserves a queue slot for the item, or reports the unit is full
// (the caller sheds with 429). The bound counts every item the
// coalescer holds but has not yet handed to a worker — queued in the
// channel or accumulating in the batcher's pending batch — so admission
// stays strictly bounded through batch boundaries.
func (u *unit) admit(it *batchItem) bool {
	depth := int64(u.srv.cfg.QueueDepth)
	for {
		n := u.queueLen.Load()
		if n >= depth {
			return false
		}
		if u.queueLen.CompareAndSwap(n, n+1) {
			u.gQueue.Set(float64(n + 1))
			break
		}
	}
	gQueueDepth.Set(float64(u.srv.queueLen.Add(1)))
	it.queuedAt = time.Now()
	// The counter reservation guarantees channel space: the channel
	// holds at most the reserved count.
	u.queue <- it
	return true
}

// dequeued releases n admission reservations (their batch has been
// handed to a worker).
func (u *unit) dequeued(n int) {
	u.gQueue.Set(float64(u.queueLen.Add(int64(-n))))
	gQueueDepth.Set(float64(u.srv.queueLen.Add(int64(-n))))
}

func (u *unit) getBatch() *batch {
	select {
	case b := <-u.free:
		return b
	default:
		return &batch{items: make([]*batchItem, 0, u.srv.cfg.BatchSize+1)}
	}
}

func (u *unit) putBatch(b *batch) {
	for i := range b.items {
		b.items[i] = nil
	}
	b.items = b.items[:0]
	b.rows = 0
	select {
	case u.free <- b:
	default:
	}
}

// batcher owns the unit's accumulating batch. It is the only goroutine
// that touches the pending batch, so the flush policy needs no locks:
// items arrive over the queue channel, the MaxWait timer arms when the
// first item lands, and a dispatch hands the whole batch to a worker
// over an unbuffered channel (blocking while every worker is busy —
// that backpressure is what keeps the admission bound meaningful).
func (u *unit) batcher() {
	defer u.srv.wg.Done()
	cfg := &u.srv.cfg
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerLive := false
	stopTimer := func() {
		if timerLive && !timer.Stop() {
			<-timer.C
		}
		timerLive = false
	}
	var cur *batch
	drainCh := u.srv.drainCh
	draining := false

	dispatch := func(reason flushReason) {
		if cur == nil || len(cur.items) == 0 {
			return
		}
		stopTimer()
		cur.reason = reason
		n := len(cur.items)
		u.batches <- cur
		u.dequeued(n)
		cur = nil
	}
	add := func(it *batchItem) {
		if cur == nil {
			cur = u.getBatch()
		}
		cur.items = append(cur.items, it)
		cur.rows += it.rows
		switch {
		case draining:
			dispatch(flushDrainReason)
		case len(cur.items) >= cfg.BatchSize:
			dispatch(flushSizeReason)
		case cur.rows >= cfg.MaxBatchRows:
			dispatch(flushRowsReason)
		default:
			if len(cur.items) == 1 {
				timer.Reset(cfg.MaxWait)
				timerLive = true
			}
		}
	}

	for {
		select {
		case <-u.srv.stopCh:
			// Hard stop (Close without a drain): answer everything the
			// coalescer still holds so handlers respond now, then let
			// the workers run down the already-dispatched batches.
			stopTimer()
			if cur != nil {
				u.dequeued(len(cur.items))
				for _, it := range cur.items {
					it.finish(errDraining)
				}
				u.putBatch(cur)
				cur = nil
			}
			for {
				select {
				case it := <-u.queue:
					u.dequeued(1)
					it.finish(errDraining)
				default:
					close(u.batches)
					return
				}
			}
		case <-drainCh:
			// Graceful drain: flush the in-flight partial batch rather
			// than holding it for MaxWait, and flush every straggler
			// immediately from here on.
			drainCh = nil
			draining = true
			dispatch(flushDrainReason)
		case it := <-u.queue:
			add(it)
			// Greedy drain: a burst that is already queued is pulled
			// through cheap non-blocking receives instead of paying the
			// full 4-way select (and its timer-channel check) per item
			// — the dominant per-item cost at high offered load.
		greedy:
			for {
				select {
				case it := <-u.queue:
					add(it)
				default:
					break greedy
				}
			}
		case <-timer.C:
			timerLive = false
			dispatch(flushTimerReason)
		}
	}
}

// worker runs flushes until the batcher closes the handoff channel.
// Each worker owns one reusable buffer set, so steady-state coalesced
// inference allocates nothing.
func (u *unit) worker() {
	defer u.srv.wg.Done()
	var buf workerBuf
	for b := range u.batches {
		u.flush(&buf, b)
		u.putBatch(b)
	}
}

// flush is the coalesced inference: sweep dead items, pack every live
// item's feature rows (each at its own corner) into one contiguous
// block, run one forest call, scatter the delays back with the batch's
// timing breakdown attached.
func (u *unit) flush(buf *workerBuf, b *batch) {
	flushedAt := time.Now()
	b.reason.counter().Inc()

	// Deadline sweep: a request whose context expired while queued is
	// answered now (the handler maps the error to 503/canceled) and
	// removed from the batch instead of paying inference for a caller
	// that is already gone. Compaction reuses the items slice in place.
	live := b.items[:0]
	rows := 0
	for _, it := range b.items {
		if err := it.ctx.Err(); err != nil {
			mBatchExpired.Inc()
			it.finish(err)
			continue
		}
		live = append(live, it)
		rows += it.rows
	}
	b.items = live
	if len(live) == 0 {
		return
	}
	hBatchItems.Observe(float64(len(live)))
	hBatchRows.Observe(float64(rows))

	// One model state per flush: every rider sees the same (model,
	// generation) pair, so a hot-reload racing the batch can never
	// serve a torn mix — items flushed after the swap all carry the
	// new generation, items flushed before all carry the old one.
	st := u.state.Load()
	inferSec, err := u.infer(buf, st, live, rows)
	hInferSec.Observe(inferSec)
	inferUS := int64(inferSec * 1e6)

	off := 0
	for _, it := range live {
		hQueueWaitSec.Observe(flushedAt.Sub(it.queuedAt).Seconds())
		it.gen = st.generation
		it.flushedAt = flushedAt
		it.inferUS = inferUS
		it.batchItems = len(live)
		it.batchRows = rows
		it.reason = b.reason
		if err != nil {
			it.finish(err)
			continue
		}
		it.delays = append(it.delays[:0], buf.delays[off:off+it.rows]...)
		off += it.rows
		it.finish(nil)
	}
}

// infer fills the packed feature rows and runs the shared forest call
// with panic isolation: a panicking prediction (or test hook) fails
// this batch, not the worker. Returns the inference wall time.
func (u *unit) infer(buf *workerBuf, st *modelState, live []*batchItem, rows int) (sec float64, err error) {
	defer func() {
		if p := recover(); p != nil {
			mPanics.Inc()
			obs.Logger("serve").Error("inference panic recovered", "fu", u.fu, "panic", fmt.Sprint(p))
			err = fmt.Errorf("serve: inference panic: %v", p)
		}
	}()
	if hook := u.srv.cfg.inferHook; hook != nil {
		for _, it := range live {
			if err := hook(it.ctx); err != nil {
				return 0, err
			}
		}
	}
	buf.ensure(st.model.Dim(), rows)
	off := 0
	for _, it := range live {
		if err := st.model.FillFeatureRows(buf.rows[off:off+it.rows], it.corner, it.pairs); err != nil {
			return 0, err
		}
		off += it.rows
	}
	t0 := time.Now()
	if err := st.model.PredictRowsInto(buf.delays[:rows], buf.rows[:rows]); err != nil {
		return 0, err
	}
	return time.Since(t0).Seconds(), nil
}

// workerBuf is one worker's reusable inference scratch: feature rows
// carved from a single backing array plus the delay output, re-carved
// only when the batch capacity or model dimension changes.
type workerBuf struct {
	backing []float64
	rows    [][]float64
	delays  []float64
	dim     int
}

func (b *workerBuf) ensure(dim, n int) {
	if b.dim == dim && len(b.rows) >= n {
		return
	}
	if n < len(b.rows) {
		n = len(b.rows)
	}
	b.backing = make([]float64, n*dim)
	b.rows = make([][]float64, n)
	for i := range b.rows {
		b.rows[i] = b.backing[i*dim : (i+1)*dim : (i+1)*dim]
	}
	b.delays = make([]float64, n)
	b.dim = dim
}

// retryAfterSecs derives the Retry-After a shed response advises from
// the coalescer's current flush interval: with `queued` items waiting
// and batches of up to batchSize leaving every maxWait at worst, the
// backlog clears in about (queued/batchSize + 1) flush intervals. A
// constant would either park clients far longer than a
// millisecond-scale flush cycle needs or invite an instant retry storm
// when flushes are slow; deriving it ties the advice to the actual
// drain rate. Clamped to [1, 60] whole seconds (HTTP Retry-After
// granularity).
func retryAfterSecs(maxWait time.Duration, queued int64, batchSize int) int {
	if batchSize < 1 {
		batchSize = 1
	}
	if queued < 0 {
		queued = 0
	}
	flushes := queued/int64(batchSize) + 1
	d := time.Duration(flushes) * maxWait
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}
