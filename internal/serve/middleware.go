package serve

import (
	"fmt"
	"net/http"
	"runtime/debug"

	"tevot/internal/obs"
	"tevot/internal/obs/trace"
)

// Reusable HTTP building blocks. The prediction server below and the
// distributed-sweep coordinator (internal/dist) share the same hardening
// story — panic isolation, bounded admission, structured JSON errors —
// so the pieces live here as plain exported middleware instead of being
// welded into Server.

// Recover converts a handler-goroutine panic into a 500 plus a log line
// and an optional callback (metrics) instead of a dead connection:
// net/http would recover the panic anyway, but only after killing the
// connection, and without a trace of it in the serving metrics.
func Recover(component string, onPanic func(), next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if onPanic != nil {
					onPanic()
				}
				obs.Logger(component).Error("handler panic recovered",
					"path", r.URL.Path, "panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				// Best effort: if the handler already wrote headers this
				// write is a no-op on the status line.
				WriteError(w, http.StatusInternalServerError, "internal_panic", "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// Traced runs each request under a trace span on the process-default
// tracer. A request carrying a traceparent header joins the caller's
// trace (that is how a worker's cell span reaches the coordinator);
// otherwise a new trace is rooted — unless joinOnly is set, which is
// the coordinator's flood control: lease polls from untraced clients
// should not each mint a trace. With no tracer installed the wrapper
// is a pass-through with zero allocations beyond the closure call.
func Traced(component string, joinOnly bool, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var sp *trace.Span
		ctx := r.Context()
		if id, parent, ok := trace.ParseHeader(r.Header.Get(trace.Header)); ok {
			ctx, sp = trace.Join(ctx, "http "+r.URL.Path, id, parent)
		} else if !joinOnly {
			ctx, sp = trace.Root(ctx, "http "+r.URL.Path)
		}
		if sp == nil {
			next.ServeHTTP(w, r)
			return
		}
		defer sp.End()
		sp.Annotate("component", component)
		sp.Annotate("method", r.Method)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		if sw.status != 0 {
			sp.Annotate("status", fmt.Sprint(sw.status))
		}
	})
}

// statusWriter records the first status code written. The handlers
// behind Traced use plain Write/WriteHeader (no hijacking/flushing),
// so the thin wrapper loses nothing.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Limit caps concurrent in-flight requests at n; excess requests are
// shed immediately with 429 + Retry-After rather than queued. This is
// the same no-unbounded-buffering admission stance as the prediction
// server's worker queue, for handlers that do their work inline (the
// coordinator's lease bookkeeping) instead of through a worker pool.
func Limit(n int, onShed func(), next http.Handler) http.Handler {
	if n <= 0 {
		return next
	}
	sem := make(chan struct{}, n)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			if onShed != nil {
				onShed()
			}
			w.Header().Set("Retry-After", "1")
			WriteError(w, http.StatusTooManyRequests, "overloaded",
				fmt.Sprintf("%d requests already in flight; retry with backoff", n))
		}
	})
}
