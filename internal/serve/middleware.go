package serve

import (
	"fmt"
	"net/http"
	"runtime/debug"

	"tevot/internal/obs"
)

// Reusable HTTP building blocks. The prediction server below and the
// distributed-sweep coordinator (internal/dist) share the same hardening
// story — panic isolation, bounded admission, structured JSON errors —
// so the pieces live here as plain exported middleware instead of being
// welded into Server.

// Recover converts a handler-goroutine panic into a 500 plus a log line
// and an optional callback (metrics) instead of a dead connection:
// net/http would recover the panic anyway, but only after killing the
// connection, and without a trace of it in the serving metrics.
func Recover(component string, onPanic func(), next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				if onPanic != nil {
					onPanic()
				}
				obs.Logger(component).Error("handler panic recovered",
					"path", r.URL.Path, "panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				// Best effort: if the handler already wrote headers this
				// write is a no-op on the status line.
				WriteError(w, http.StatusInternalServerError, "internal_panic", "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// Limit caps concurrent in-flight requests at n; excess requests are
// shed immediately with 429 + Retry-After rather than queued. This is
// the same no-unbounded-buffering admission stance as the prediction
// server's worker queue, for handlers that do their work inline (the
// coordinator's lease bookkeeping) instead of through a worker pool.
func Limit(n int, onShed func(), next http.Handler) http.Handler {
	if n <= 0 {
		return next
	}
	sem := make(chan struct{}, n)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			if onShed != nil {
				onShed()
			}
			w.Header().Set("Retry-After", "1")
			WriteError(w, http.StatusTooManyRequests, "overloaded",
				fmt.Sprintf("%d requests already in flight; retry with backoff", n))
		}
	})
}
