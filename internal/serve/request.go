package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	"tevot/internal/workload"
)

// The wire format. One predict request evaluates one operating corner
// over a batch of consecutive operand pairs; cycle i applies pairs[i+1]
// after pairs[i], so len(pairs)-1 delays come back, plus an error
// verdict vector (and TER) per requested clock period — the paper's
// Eq. 2 reuse of one trained model across clock speeds.
//
//	POST /v1/predict
//	{
//	  "voltage": 0.81,
//	  "temperature": 45,
//	  "pairs": [{"a": 3735928559, "b": 195894762}, {"a": 1, "b": 2}],
//	  "clocks": [650, 700]
//	}
type predictRequest struct {
	Voltage     float64               `json:"voltage"`
	Temperature float64               `json:"temperature"`
	Pairs       []workload.OperandPair `json:"pairs"`
	Clocks      []float64             `json:"clocks,omitempty"`
}

type predictResponse struct {
	FU              string        `json:"fu"`
	ModelGeneration int64         `json:"model_generation"`
	Delays          []float64     `json:"delays"`
	Clocks          []clockResult `json:"clocks,omitempty"`
	Batch           *batchInfo    `json:"batch,omitempty"`
}

// batchInfo is the per-item timing breakdown of the coalesced flush
// that served the request: when it was admitted, when its batch
// flushed, how long the shared forest call took, and what the batch
// looked like. Clients use queue_us to see the latency price of
// coalescing and items/flush_reason to see how well traffic batches.
type batchInfo struct {
	QueuedAt    time.Time `json:"queued_at"`
	FlushedAt   time.Time `json:"flushed_at"`
	QueueUS     int64     `json:"queue_us"`
	InferenceUS int64     `json:"inference_us"`
	Items       int       `json:"items"`
	Rows        int       `json:"rows"`
	Reason      string    `json:"flush_reason"`
}

type clockResult struct {
	ClockPs float64 `json:"clock_ps"`
	Errors  []bool  `json:"errors"`
	TER     float64 `json:"ter"`
}

// validate enforces the input contract with messages precise enough for
// a client to fix the request. NaN/Inf cannot arrive through JSON
// numbers, but the checks keep the contract honest for any future
// decoder and catch semantic nonsense (negative voltage, zero clock).
func (r *predictRequest) validate(maxPairs, maxClocks int) error {
	if !isFinite(r.Voltage) || r.Voltage <= 0 {
		return fmt.Errorf("voltage must be a finite positive number of volts, got %v", r.Voltage)
	}
	if !isFinite(r.Temperature) {
		return fmt.Errorf("temperature must be a finite number of °C, got %v", r.Temperature)
	}
	if len(r.Pairs) < 2 {
		return fmt.Errorf("need at least 2 operand pairs (cycle i applies pairs[i+1] after pairs[i]), got %d", len(r.Pairs))
	}
	if len(r.Pairs) > maxPairs {
		return fmt.Errorf("batch of %d pairs exceeds the %d-pair cap; split the request", len(r.Pairs), maxPairs)
	}
	if len(r.Clocks) > maxClocks {
		return fmt.Errorf("%d clock periods exceeds the cap of %d", len(r.Clocks), maxClocks)
	}
	for i, c := range r.Clocks {
		if !isFinite(c) || c <= 0 {
			return fmt.Errorf("clocks[%d] must be a finite positive period in ps, got %v", i, c)
		}
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// apiError is the structured error envelope every non-2xx answer
// carries: a stable machine-readable code plus a human message.
type apiError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// WriteError writes the structured error envelope (exported for the
// coordinator and any other tevot HTTP surface).
func WriteError(w http.ResponseWriter, status int, code, message string) {
	var e apiError
	e.Error.Code = code
	e.Error.Message = message
	WriteJSON(w, status, e)
}

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past WriteHeader have nowhere to go; the client
	// sees a truncated body and its decoder reports it.
	_ = json.NewEncoder(w).Encode(v)
}
