package serve

import (
	"context"
	"fmt"
	"math"
	"time"

	"tevot/internal/cells"
	"tevot/internal/core"
	"tevot/internal/obs"
	"tevot/internal/workload"
)

// Startup ground-truth audit: before the server takes traffic, it can
// run the gate-level simulator over a short random stream at a reference
// corner and compare the loaded model's predicted delays against the
// simulated truth — an end-to-end check that the model actually
// describes the unit it claims to, beyond the structural validation of
// the reload path. The audit is also the one place this CLI exercises
// the characterization hot path, so the simulator's transition memo
// options surface here.

// AuditConfig tunes the startup ground-truth audit.
type AuditConfig struct {
	// Cycles is the audited stream length; <= 0 disables the audit.
	Cycles int
	// Corner is the operating point simulated; the zero value selects a
	// mid-grid default (0.90 V, 25 °C).
	Corner cells.Corner
	// Seed drives the random operand stream.
	Seed int64
	// MemoOff / MemoSize pass through to core.CharacterizeOptions.
	MemoOff  bool
	MemoSize int
}

// AuditReport summarizes a ground-truth audit.
type AuditReport struct {
	Cycles    int
	Corner    cells.Corner
	RMSE      float64 // prediction error vs simulated delay, ps
	MeanTrue  float64 // mean simulated dynamic delay, ps
	MeanPred  float64 // mean predicted dynamic delay, ps
	HitRate   float64 // transition-memo hit rate of the simulation
	Elapsed   time.Duration
	SimEvents int
}

// Audit simulates cfg.Cycles random transitions through the model's
// functional unit and reports how far the model's delay predictions sit
// from the gate-level truth. It returns (nil, nil) when disabled.
func Audit(ctx context.Context, m *core.Model, cfg AuditConfig) (*AuditReport, error) {
	if cfg.Cycles <= 0 {
		return nil, nil
	}
	corner := cfg.Corner
	if corner.V == 0 {
		corner = cells.Corner{V: 0.90, T: 25}
	}
	u, err := core.NewFUnit(m.FU)
	if err != nil {
		return nil, fmt.Errorf("serve: audit cannot build %v: %w", m.FU, err)
	}
	s := workload.Random(m.FU.IsFloat(), cfg.Cycles+1, cfg.Seed)
	s.Name = "serve_audit"
	start := time.Now()
	tr, err := core.CharacterizeOptsContext(ctx, u, corner, s, nil, core.CharacterizeOptions{
		Workers: 1, MemoOff: cfg.MemoOff, MemoSize: cfg.MemoSize,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: audit simulation failed: %w", err)
	}
	pred, err := m.PredictDelays(corner, s)
	if err != nil {
		return nil, fmt.Errorf("serve: audit prediction failed: %w", err)
	}
	rep := &AuditReport{
		Cycles:    tr.Cycles(),
		Corner:    corner,
		HitRate:   tr.HitRate(),
		Elapsed:   time.Since(start),
		SimEvents: tr.Events,
	}
	var se float64
	for i, d := range tr.Delays {
		rep.MeanTrue += d
		rep.MeanPred += pred[i]
		se += (pred[i] - d) * (pred[i] - d)
	}
	n := float64(len(tr.Delays))
	rep.MeanTrue /= n
	rep.MeanPred /= n
	rep.RMSE = math.Sqrt(se / n)
	obs.Logger("serve").Info("startup ground-truth audit",
		"fu", m.FU.String(), "corner", corner.String(), "cycles", rep.Cycles,
		"rmse_ps", rep.RMSE, "mean_true_ps", rep.MeanTrue, "mean_pred_ps", rep.MeanPred,
		"memo_hit_rate", rep.HitRate, "elapsed", rep.Elapsed)
	return rep, nil
}
