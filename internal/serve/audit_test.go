package serve

import (
	"context"
	"testing"
)

// TestAuditGroundTruth runs the startup audit end to end on a trained
// model: it must simulate the requested cycles, produce a finite RMSE,
// and report the memo hit rate of the simulation it ran.
func TestAuditGroundTruth(t *testing.T) {
	m := trainedModel(t)
	rep, err := Audit(context.Background(), m, AuditConfig{Cycles: 96, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Cycles != 96 {
		t.Fatalf("audit report %+v, want 96 cycles", rep)
	}
	if !(rep.RMSE >= 0) || rep.MeanTrue <= 0 {
		t.Fatalf("degenerate audit numbers: %+v", rep)
	}
	if rep.HitRate < 0 || rep.HitRate > 1 {
		t.Fatalf("hit rate out of range: %+v", rep)
	}
	if rep.SimEvents <= 0 {
		t.Fatalf("no simulation effort recorded: %+v", rep)
	}

	// Memo off: same ground truth, no memo accounting.
	off, err := Audit(context.Background(), m, AuditConfig{Cycles: 96, Seed: 3, MemoOff: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.MeanTrue != rep.MeanTrue || off.RMSE != rep.RMSE || off.SimEvents != rep.SimEvents {
		t.Fatalf("memo on/off audits diverge: %+v vs %+v", rep, off)
	}
	if off.HitRate != 0 {
		t.Fatalf("memo-off audit reports a hit rate: %+v", off)
	}

	// Disabled audit is a no-op.
	if rep, err := Audit(context.Background(), m, AuditConfig{}); err != nil || rep != nil {
		t.Fatalf("disabled audit returned (%+v, %v)", rep, err)
	}
}
