package serve

import "tevot/internal/obs"

// Serving metrics, published through the obs default registry (expvar
// "tevot", /metrics Prometheus exposition, the run manifest, and
// -debug-addr /debug/vars). The accounting identity the smoke harness
// asserts: every /v1/predict request lands in exactly one outcome
// counter, so
//
//	requests == served + shed + timeouts + canceled + bad_requests
//	            + internal_errors
//
// The identity holds twice over: on the aggregate serve.* counters and
// on each functional unit's serve.fu.<FU>.* set (a request routed to a
// unit is counted in both; a request for an unknown FU is counted only
// in the aggregate, under bad_requests, plus serve.unknown_fu).
//
// serve.panics counts panic *events* (worker or handler goroutine); a
// worker panic surfaces to its batch as internal_errors, so panics ride
// alongside the identity rather than inside it.
var (
	mRequests  = obs.NewCounter("serve.requests")
	mServed    = obs.NewCounter("serve.served")
	mShed      = obs.NewCounter("serve.shed")
	mTimeouts  = obs.NewCounter("serve.timeouts")
	mCanceled  = obs.NewCounter("serve.canceled")
	mBad       = obs.NewCounter("serve.bad_requests")
	mInternal  = obs.NewCounter("serve.internal_errors")
	mPanics    = obs.NewCounter("serve.panics")
	mReloadOK  = obs.NewCounter("serve.reloads_ok")
	mReloadBad = obs.NewCounter("serve.reloads_failed")
	mUnknownFU = obs.NewCounter("serve.unknown_fu")

	// Coalescer accounting: one flush-reason counter per flush, one
	// batch_expired per request answered dead-in-queue (its context
	// expired before the flush, so it is removed from the batch instead
	// of paying inference for a gone caller).
	mFlushSize    = obs.NewCounter("serve.flush_size")
	mFlushRows    = obs.NewCounter("serve.flush_rows")
	mFlushTimer   = obs.NewCounter("serve.flush_timer")
	mFlushDrain   = obs.NewCounter("serve.flush_drain")
	mBatchExpired = obs.NewCounter("serve.batch_expired")

	gQueueDepth = obs.NewGauge("serve.queue_depth")
	gGeneration = obs.NewGauge("serve.model_generation")
	gDraining   = obs.NewGauge("serve.draining")

	// End-to-end request latency (admission to response), the serving
	// SLO histogram: p50/p95/p99 land in the manifest snapshot and the
	// cumulative buckets in the /metrics exposition.
	hRequestSec = obs.NewHistogram("serve.request_seconds", []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	})
	// Queue wait: admission to flush, the latency cost of coalescing.
	hQueueWaitSec = obs.NewHistogram("serve.queue_wait_seconds", []float64{
		0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001,
		0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
	})
	// Inference time of one coalesced forest call (shared by every
	// request in the batch).
	hInferSec = obs.NewHistogram("serve.inference_seconds", []float64{
		0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001,
		0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
	})
	// Batch shape distributions: requests and predicted cycles per flush.
	hBatchItems = obs.NewHistogram("serve.batch_items", []float64{
		1, 2, 4, 8, 16, 32, 64, 128, 256,
	})
	hBatchRows = obs.NewHistogram("serve.batch_rows", []float64{
		1, 4, 16, 64, 256, 1024, 4096, 16384, 65536,
	})
)

// outcomeSet is one accounting-identity counter family. The package
// aggregate uses the plain serve.* names; each functional unit gets its
// own serve.fu.<FU>.* set so the identity is checkable per shard.
type outcomeSet struct {
	requests *obs.Counter
	served   *obs.Counter
	shed     *obs.Counter
	timeouts *obs.Counter
	canceled *obs.Counter
	bad      *obs.Counter
	internal *obs.Counter
}

func newOutcomeSet(prefix string) outcomeSet {
	return outcomeSet{
		requests: obs.NewCounter(prefix + ".requests"),
		served:   obs.NewCounter(prefix + ".served"),
		shed:     obs.NewCounter(prefix + ".shed"),
		timeouts: obs.NewCounter(prefix + ".timeouts"),
		canceled: obs.NewCounter(prefix + ".canceled"),
		bad:      obs.NewCounter(prefix + ".bad_requests"),
		internal: obs.NewCounter(prefix + ".internal_errors"),
	}
}

var aggregate = outcomeSet{
	requests: mRequests, served: mServed, shed: mShed, timeouts: mTimeouts,
	canceled: mCanceled, bad: mBad, internal: mInternal,
}
