package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// TestLimitShedsBeyondCap: with n requests parked inside the handler,
// request n+1 is shed immediately with 429 + Retry-After, and capacity
// frees once a parked request finishes.
func TestLimitShedsBeyondCap(t *testing.T) {
	const cap = 3
	entered := make(chan struct{}, cap)
	release := make(chan struct{})
	var shed atomic.Int64
	h := Limit(cap, func() { shed.Add(1) }, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < cap; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < cap; i++ {
		<-entered
	}

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error.Code != "overloaded" {
		t.Fatalf("shed body code = %q err=%v, want overloaded", e.Error.Code, err)
	}
	resp.Body.Close()
	if shed.Load() != 1 {
		t.Fatalf("onShed fired %d times, want 1", shed.Load())
	}

	close(release)
	wg.Wait()
	resp2, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-drain request got %d, want 200", resp2.StatusCode)
	}
}

// TestLimitZeroIsUnlimited: n <= 0 disables the cap entirely.
func TestLimitZeroIsUnlimited(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if h := Limit(0, nil, inner); h.(http.HandlerFunc) == nil {
		t.Fatal("Limit(0) should return the handler unchanged")
	}
	rec := httptest.NewRecorder()
	Limit(0, nil, inner).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
}
