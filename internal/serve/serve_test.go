package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/workload"
)

// The suite runs the serving failure modes the package exists for:
// queue-full shedding, deadline expiry, panic isolation, hot-reload
// races, and graceful drain — all exercised under -race by check.sh.

var (
	modelOnce sync.Once
	testModel *core.Model
	modelErr  error
)

// trainedModel trains one small INT_ADD model per test binary. A few
// hundred characterized cycles train in well under a second.
func trainedModel(t *testing.T) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		testModel, modelErr = trainModel(7)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return testModel
}

func trainModel(seed int64) (*core.Model, error) {
	u, err := core.NewFUnit(circuits.IntAdd32)
	if err != nil {
		return nil, err
	}
	tr, err := core.Characterize(u, cells.Corner{V: 0.88, T: 50}, workload.RandomInt(401, seed), nil)
	if err != nil {
		return nil, err
	}
	return core.Train(circuits.IntAdd32, []*core.Trace{tr}, core.DefaultConfig())
}

// newTestServer builds a Server (mutate cfg via mod) and an httptest
// front end; both are torn down with the test.
func newTestServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Model: trainedModel(t), Workers: 2, QueueDepth: 8, RequestTimeout: 2 * time.Second}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postPredict(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func validBody(pairs int) string {
	var b strings.Builder
	b.WriteString(`{"voltage":0.88,"temperature":50,"clocks":[400,900],"pairs":[`)
	for i := 0; i < pairs; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"a":%d,"b":%d}`, uint32(i)*2654435761, uint32(i)*40503+99991)
	}
	b.WriteString(`]}`)
	return b.String()
}

func decodeError(t *testing.T, data []byte) apiError {
	t.Helper()
	var e apiError
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body not structured JSON: %v\n%s", err, data)
	}
	return e
}

func TestPredictRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, nil)
	resp, data := postPredict(t, ts.URL, validBody(10))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out predictResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.FU != "INT_ADD" || out.ModelGeneration != 1 {
		t.Errorf("fu/generation = %q/%d", out.FU, out.ModelGeneration)
	}
	if len(out.Delays) != 9 {
		t.Fatalf("got %d delays, want 9", len(out.Delays))
	}
	if len(out.Clocks) != 2 || len(out.Clocks[0].Errors) != 9 {
		t.Fatalf("clock results malformed: %+v", out.Clocks)
	}
	// The served predictions must match the library path bit-for-bit.
	m := trainedModel(t)
	var req predictRequest
	if err := json.Unmarshal([]byte(validBody(10)), &req); err != nil {
		t.Fatal(err)
	}
	corner := cells.Corner{V: 0.88, T: 50}
	for i := 0; i < 9; i++ {
		want := m.PredictDelay(corner, req.Pairs[i+1], req.Pairs[i])
		if out.Delays[i] != want {
			t.Errorf("delay[%d] = %v, want %v", i, out.Delays[i], want)
		}
		if got := out.Delays[i] > 400; got != out.Clocks[0].Errors[i] {
			t.Errorf("error verdict[%d] inconsistent with delay %v at clock 400", i, out.Delays[i])
		}
	}
	if s.Generation() != 1 {
		t.Errorf("generation = %d", s.Generation())
	}
}

func TestPredictRejectsBadInputs(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxPairs = 8; c.MaxBodyBytes = 512 })
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed", `{"voltage":`, http.StatusBadRequest, "malformed_json"},
		{"unknown field", `{"voltage":0.9,"temperature":25,"bogus":1,"pairs":[{"a":1,"b":2},{"a":3,"b":4}]}`, http.StatusBadRequest, "malformed_json"},
		{"one pair", `{"voltage":0.9,"temperature":25,"pairs":[{"a":1,"b":2}]}`, http.StatusBadRequest, "invalid_request"},
		{"batch too large", validBody(10), http.StatusBadRequest, "invalid_request"},
		{"zero voltage", `{"voltage":0,"temperature":25,"pairs":[{"a":1,"b":2},{"a":3,"b":4}]}`, http.StatusBadRequest, "invalid_request"},
		{"negative clock", `{"voltage":0.9,"temperature":25,"clocks":[-5],"pairs":[{"a":1,"b":2},{"a":3,"b":4}]}`, http.StatusBadRequest, "invalid_request"},
		{"body too large", validBody(60), http.StatusRequestEntityTooLarge, "body_too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postPredict(t, ts.URL, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			if e := decodeError(t, data); e.Error.Code != tc.code {
				t.Errorf("code %q, want %q (%s)", e.Error.Code, tc.code, e.Error.Message)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", resp.StatusCode)
	}
}

// TestQueueFullSheds429: with one busy worker and a one-deep queue, a
// third concurrent request must be shed immediately with 429 and
// Retry-After — admission control, not unbounded buffering.
func TestQueueFullSheds429(t *testing.T) {
	entered := make(chan struct{}, 4)
	gate := make(chan struct{})
	s, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
		c.inferHook = func(ctx context.Context) error {
			entered <- struct{}{}
			<-gate
			return nil
		}
	})
	shedBefore := mShed.Value()

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	post := func() {
		resp, data := postPredict(t, ts.URL, validBody(3))
		results <- result{resp.StatusCode, data}
	}
	go post() // occupies the worker
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the first request")
	}
	go post() // sits in the queue
	waitFor(t, func() bool { return s.queueLen.Load() == 1 })

	// Queue full: this one must shed, now.
	resp, data := postPredict(t, ts.URL, validBody(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if e := decodeError(t, data); e.Error.Code != "overloaded" {
		t.Errorf("code %q, want overloaded", e.Error.Code)
	}
	if got := mShed.Value() - shedBefore; got != 1 {
		t.Errorf("shed counter moved by %d, want 1", got)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Errorf("admitted request got %d: %s", r.status, r.body)
		}
	}
}

// TestRequestDeadline503: a handler slower than the per-request
// deadline answers 503 with the deadline error code.
func TestRequestDeadline503(t *testing.T) {
	timeoutsBefore := mTimeouts.Value()
	_, ts := newTestServer(t, func(c *Config) {
		c.RequestTimeout = 50 * time.Millisecond
		c.inferHook = func(ctx context.Context) error {
			<-ctx.Done() // the deadline propagates into inference
			return ctx.Err()
		}
	})
	start := time.Now()
	resp, data := postPredict(t, ts.URL, validBody(3))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Error.Code != "deadline_exceeded" {
		t.Errorf("code %q, want deadline_exceeded", e.Error.Code)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("deadline answer took %v", el)
	}
	if mTimeouts.Value() == timeoutsBefore {
		t.Error("timeout counter did not move")
	}
}

// TestPanicIsolation: a panic during inference fails that request with
// a 500 and the worker keeps serving the next one.
func TestPanicIsolation(t *testing.T) {
	var first atomic.Bool
	first.Store(true)
	panicsBefore := mPanics.Value()
	_, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.inferHook = func(ctx context.Context) error {
			if first.CompareAndSwap(true, false) {
				panic("synthetic inference panic")
			}
			return nil
		}
	})
	resp, data := postPredict(t, ts.URL, validBody(3))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, data)
	}
	if mPanics.Value() == panicsBefore {
		t.Error("panic counter did not move")
	}
	// Same (sole) worker, next request: must serve normally.
	resp, data = postPredict(t, ts.URL, validBody(3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic got %d: %s", resp.StatusCode, data)
	}
}

// TestRecoverMiddleware: a panic in the handler goroutine itself (not
// the worker pool) becomes a 500, not a dead connection.
func TestRecoverMiddleware(t *testing.T) {
	h := Recover("serve", mPanics.Inc, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler goroutine panic")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
}

// TestGracefulDrain: cancelling the serve context completes the
// in-flight request, flips readiness to draining, and returns nil.
func TestGracefulDrain(t *testing.T) {
	entered := make(chan struct{}, 1)
	m := trainedModel(t)
	s, err := New(Config{
		Model: m, Addr: "127.0.0.1:0", Workers: 1, QueueDepth: 4,
		DrainTimeout: 10 * time.Second,
		inferHook: func(ctx context.Context) error {
			entered <- struct{}{}
			time.Sleep(300 * time.Millisecond) // still in flight when drain starts
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.ListenAndServe(ctx) }()
	waitFor(t, func() bool { return s.Addr() != "" })
	url := "http://" + s.Addr()

	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain: %d", resp.StatusCode)
	}

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/v1/predict", "application/json", strings.NewReader(validBody(3)))
		if err != nil {
			inflight <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never reached the worker")
	}
	cancel() // SIGTERM in the CLI

	if status := <-inflight; status != http.StatusOK {
		t.Fatalf("in-flight request during drain got %d, want 200", status)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("drain returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe did not return after drain")
	}
	// Post-drain the listener is gone but the readiness semantics
	// survive on the handler: it must answer draining/503.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after drain: %d, want 503", rec.Code)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// writeModelFile serializes m into dir and returns the path.
func writeModelFile(t *testing.T, dir, name string, m *core.Model) string {
	t.Helper()
	path := filepath.Join(dir, name)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
