// Package serve is the online prediction service for trained TEVoT
// models: given {V, T, x[t], x[t-1]}, it predicts per-cycle dynamic
// delays and timing-error verdicts over HTTP — the serving role that
// runtime DVFS frameworks (FATE; Ajirlou & Partin-Vaisband, see
// PAPERS.md) assume when a timing-error model gates voltage/frequency
// decisions online. It is stdlib-only (net/http) and built around the
// failure modes a production predictor actually meets:
//
//   - request coalescing: individual /v1/predict calls accumulate into
//     a shared batch per functional unit, flushed on size, row, or
//     MaxWait triggers (whichever first) so one forest call amortizes
//     over many callers; each response carries its batch's timing
//     breakdown (queued_at, flushed_at, inference_us, flush_reason);
//   - per-FU model sharding: each functional unit's model serves from
//     its own shard (coalescer + worker slice + hot-reload generation)
//     behind one mux: /v1/predict/{fu} routes by unit, /v1/predict
//     keeps the legacy single-model contract on the default unit;
//   - admission control: a bounded per-unit queue; when the unit is
//     full the request is shed immediately with 429 + a Retry-After
//     derived from the current flush interval, instead of queueing
//     unboundedly;
//   - per-request deadlines: the request context carries a server-side
//     timeout into the batch; a request that expires while queued is
//     answered 503 before the flush and removed from the batch;
//   - strict input hygiene: MaxBytesReader-capped bodies and structured
//     4xx errors for malformed, non-finite, or wrong-dimension inputs;
//   - panic isolation: recovery middleware (handler goroutines) and
//     worker-side recovery keep the process serving after a panic;
//   - graceful drain: readiness flips to draining, in-flight partial
//     batches flush immediately, in-flight requests complete under a
//     drain deadline, workers stop, and the process exits through
//     obs.Run so manifests and profiles survive;
//   - validated hot-reload: a new model gob is decoded into a side
//     buffer, validated (FU/dimension match, finite predictions on a
//     probe batch), then swapped atomically per unit; a flush loads the
//     unit's model state exactly once, so a reload racing a batch never
//     serves a torn model.
//
// The inference hot path reuses per-worker feature/delay buffers and
// recycled batch/item structs, so steady-state coalesced prediction
// does not touch the garbage collector (pinned at 0 allocs/op by
// TestServeBatchHotPathAllocs).
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tevot/internal/core"
	"tevot/internal/obs"
)

// ModelEntry is one functional unit's model in a multi-FU serving
// configuration: the trained model plus the gob path its hot-reloads
// re-read by default.
type ModelEntry struct {
	Model *core.Model
	Path  string
}

// Config sizes and parameterizes one prediction server. The zero value
// of every field has a production-sane default; Model (or Models) is
// the only required field.
type Config struct {
	// Addr is the listen address for ListenAndServe (":0" picks a port).
	Addr string
	// Model is the initial trained model for single-unit serving.
	// Ignored when Models is set.
	Model *core.Model
	// ModelPath is the gob file reloads re-read when a reload request
	// names no path (and the file SIGHUP reloads from). Single-unit
	// companion of Model.
	ModelPath string
	// Models serves several functional units from one process, each
	// behind /v1/predict/{fu} with its own coalescer, worker slice, and
	// reload generation. The first entry is the default unit answering
	// the legacy /v1/predict route. FUs must be distinct.
	Models []ModelEntry
	// Workers is the total inference worker count, spread across units
	// (default GOMAXPROCS, at least one per unit).
	Workers int
	// QueueDepth bounds each unit's admission queue (default 64): the
	// number of requests queued or accumulating but not yet dispatched
	// to a worker. A full unit sheds with 429.
	QueueDepth int
	// BatchSize flushes a unit's accumulating batch when this many
	// requests have coalesced (default 32). 1 disables coalescing:
	// every request flushes alone, immediately.
	BatchSize int
	// MaxBatchRows flushes when the accumulated predicted cycles reach
	// this bound (default 8192), so a few huge requests cannot hold a
	// batch open or blow up the flush's working set.
	MaxBatchRows int
	// MaxWait bounds how long the first request in a batch waits for
	// riders before the batch flushes anyway (default 2ms). This is the
	// latency price of coalescing under light load.
	MaxWait time.Duration
	// RequestTimeout is the server-side per-request deadline applied to
	// /v1/predict (default 5s). Expiry answers 503.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 15s): in-flight
	// requests get this long to finish before connections are closed.
	DrainTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 8 MiB); larger bodies
	// answer 413.
	MaxBodyBytes int64
	// MaxPairs caps operand pairs per request (default 4097, i.e. 4096
	// predicted cycles); larger batches answer 400.
	MaxPairs int
	// MaxClocks caps clock periods per request (default 32).
	MaxClocks int

	// inferHook, when set (tests only), runs in the worker once per
	// live item before inference; its error fails the batch. It is how
	// the deadline and worker-panic failure modes are exercised without
	// slowing real inference.
	inferHook func(ctx context.Context) error
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.MaxBatchRows <= 0 {
		c.MaxBatchRows = 8192
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxPairs <= 0 {
		c.MaxPairs = 4097
	}
	if c.MaxClocks <= 0 {
		c.MaxClocks = 32
	}
	return c
}

// modelState is the atomically-swapped serving state of one unit: the
// model and its reload generation travel under one pointer, so a flush
// racing a hot-reload always observes a consistent (model, generation)
// pair — never a torn mix.
type modelState struct {
	model      *core.Model
	generation int64
	path       string
	loaded     time.Time
}

// Server is one prediction service instance: one unit per functional
// unit behind a shared mux and lifecycle.
type Server struct {
	cfg   Config
	units []*unit          // units[0] answers the legacy /v1/predict route
	byFU  map[string]*unit // /v1/predict/{fu} routing, keyed by FU name

	queueLen atomic.Int64 // aggregate across units (serve.queue_depth)
	stopCh   chan struct{}
	drainCh  chan struct{}
	stopOnce sync.Once
	drainOnce sync.Once
	wg       sync.WaitGroup

	itemPool sync.Pool // *batchItem

	draining atomic.Bool
	addr     atomic.Pointer[string]
}

// errDraining fails residual queued items when the pool stops mid-drain.
var errDraining = fmt.Errorf("serve: draining")

// New validates cfg, installs the initial model(s), and starts one
// coalescer plus a worker slice per functional unit. Pair with Close
// (or run the full lifecycle via ListenAndServe).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	models := cfg.Models
	if len(models) == 0 {
		if cfg.Model == nil {
			return nil, fmt.Errorf("serve: config needs a model")
		}
		models = []ModelEntry{{Model: cfg.Model, Path: cfg.ModelPath}}
	}
	s := &Server{
		cfg:     cfg,
		byFU:    make(map[string]*unit, len(models)),
		stopCh:  make(chan struct{}),
		drainCh: make(chan struct{}),
	}
	s.itemPool.New = func() any {
		return &batchItem{done: make(chan struct{}, 1)}
	}
	perUnit := cfg.Workers / len(models)
	if perUnit < 1 {
		perUnit = 1
	}
	for _, me := range models {
		if me.Model == nil {
			return nil, fmt.Errorf("serve: nil model in Models")
		}
		st := &modelState{model: me.Model, generation: 1, path: me.Path, loaded: time.Now()}
		u := newUnit(s, st, perUnit)
		if _, dup := s.byFU[u.fu]; dup {
			return nil, fmt.Errorf("serve: duplicate model for %s", u.fu)
		}
		s.byFU[u.fu] = u
		s.units = append(s.units, u)
	}
	gGeneration.Set(1)
	gDraining.Set(0)
	for _, u := range s.units {
		s.wg.Add(1 + u.workers)
		go u.batcher()
		for i := 0; i < u.workers; i++ {
			go u.worker()
		}
	}
	fus := make([]string, len(s.units))
	for i, u := range s.units {
		fus[i] = u.fu
	}
	obs.Logger("serve").Info("prediction server ready",
		"fus", fus, "units", len(s.units),
		"workers_per_unit", perUnit, "queue", cfg.QueueDepth,
		"batch_size", cfg.BatchSize, "max_wait", cfg.MaxWait,
		"max_batch_rows", cfg.MaxBatchRows,
		"request_timeout", cfg.RequestTimeout)
	return s, nil
}

// Addr reports the address ListenAndServe bound ("" before it runs).
func (s *Server) Addr() string {
	if p := s.addr.Load(); p != nil {
		return *p
	}
	return ""
}

// beginDrain flips every unit's coalescer into flush-immediately mode:
// in-flight partial batches dispatch now instead of waiting out
// MaxWait, and every straggler flushes alone. Idempotent.
func (s *Server) beginDrain() {
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Close stops the coalescers and worker pools immediately; residual
// queued items fail with 503. Idempotent. ListenAndServe calls it as
// part of draining; tests that drive Handler directly call it
// themselves.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.wg.Wait()
}

// ListenAndServe binds cfg.Addr and serves until ctx is cancelled
// (SIGINT/SIGTERM in the CLI), then drains gracefully: readiness flips
// to draining, in-flight partial batches flush, the listener stops
// accepting, in-flight requests get DrainTimeout to finish, the worker
// pools stop, and the method returns — nil on a clean drain so the
// caller can exit 0 through obs.Run with the manifest intact.
func (s *Server) ListenAndServe(ctx context.Context) error {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen on %s: %w", s.cfg.Addr, err)
	}
	addr := lis.Addr().String()
	s.addr.Store(&addr)
	// This line is the smoke harness's (and the operator's) handle on
	// ":0" runs, exactly like the obs debug endpoint's.
	obs.Logger("serve").Info("prediction endpoint listening", "addr", "http://"+addr)

	srv := &http.Server{
		Handler: s.Handler(),
		// The read/write walls are deliberately wider than
		// RequestTimeout: the per-request deadline produces a clean 503,
		// these guard against stuck clients holding connections.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       s.cfg.RequestTimeout + 10*time.Second,
		WriteTimeout:      s.cfg.RequestTimeout + 10*time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(lis) }()
	select {
	case err := <-errCh:
		s.Close()
		return fmt.Errorf("serve: listener failed: %w", err)
	case <-ctx.Done():
	}
	return s.drain(srv)
}

// drain is the graceful-shutdown sequence shared by ListenAndServe and
// the tests that drive it directly.
func (s *Server) drain(srv *http.Server) error {
	s.draining.Store(true)
	gDraining.Set(1)
	// Flush pending partial batches before the listener closes so no
	// admitted request waits out MaxWait during shutdown.
	s.beginDrain()
	log := obs.Logger("serve")
	log.Info("draining", "deadline", s.cfg.DrainTimeout, "in_queue", s.queueLen.Load())
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(dctx)
	// Workers stop only after Shutdown returns: on the clean path every
	// in-flight handler has finished by then, and on the deadline path
	// residual items are failed fast rather than left hanging.
	s.Close()
	if err != nil {
		srv.Close()
		log.Warn("drain deadline exceeded; connections closed", "err", err)
		return fmt.Errorf("serve: drain deadline exceeded: %w", err)
	}
	log.Info("drained cleanly")
	return nil
}

// Progress is the /progress payload source for the obs debug endpoint:
// a live snapshot of serving state across units.
func (s *Server) Progress() any {
	status := "serving"
	if s.draining.Load() {
		status = "draining"
	}
	units := make([]map[string]any, len(s.units))
	for i, u := range s.units {
		st := u.state.Load()
		units[i] = map[string]any{
			"fu":               u.fu,
			"model_generation": st.generation,
			"model_path":       st.path,
			"model_loaded":     st.loaded,
			"queue_depth":      u.queueLen.Load(),
			"workers":          u.workers,
		}
	}
	return map[string]any{
		"status":         status,
		"units":          units,
		"queue_depth":    s.queueLen.Load(),
		"queue_capacity": s.cfg.QueueDepth,
		"batch_size":     s.cfg.BatchSize,
		"max_wait":       s.cfg.MaxWait.String(),
		"served":         mServed.Value(),
		"shed":           mShed.Value(),
		"timeouts":       mTimeouts.Value(),
	}
}

// Generation reports the default unit's model reload generation.
func (s *Server) Generation() int64 { return s.units[0].state.Load().generation }

// GenerationFU reports one unit's model reload generation (0 for an
// unknown FU).
func (s *Server) GenerationFU(fu string) int64 {
	u, ok := s.unitFor(fu)
	if !ok {
		return 0
	}
	return u.state.Load().generation
}

// unitFor resolves an FU name to its unit, accepting any casing: FU
// names are canonically uppercase (INT_ADD), but tevot-train saves
// model files lowercase (int_add.tevot), so lowercase URLs are a
// natural spelling.
func (s *Server) unitFor(fu string) (*unit, bool) {
	if u, ok := s.byFU[fu]; ok {
		return u, true
	}
	u, ok := s.byFU[strings.ToUpper(fu)]
	return u, ok
}

// FUs lists the served functional units, default unit first.
func (s *Server) FUs() []string {
	out := make([]string, len(s.units))
	for i, u := range s.units {
		out[i] = u.fu
	}
	return out
}
