// Package serve is the online prediction service for trained TEVoT
// models: given {V, T, x[t], x[t-1]}, it predicts per-cycle dynamic
// delays and timing-error verdicts over HTTP — the serving role that
// runtime DVFS frameworks (FATE; Ajirlou & Partin-Vaisband, see
// PAPERS.md) assume when a timing-error model gates voltage/frequency
// decisions online. It is stdlib-only (net/http) and built around the
// failure modes a production predictor actually meets:
//
//   - admission control: a bounded queue feeding a fixed worker pool;
//     when the queue is full the request is shed immediately with 429 +
//     Retry-After instead of queueing unboundedly;
//   - per-request deadlines: the request context carries a server-side
//     timeout into inference; expiry answers 503;
//   - strict input hygiene: MaxBytesReader-capped bodies and structured
//     4xx errors for malformed, non-finite, or wrong-dimension inputs;
//   - panic isolation: recovery middleware (handler goroutines) and
//     worker-side recovery keep the process serving after a panic;
//   - graceful drain: readiness flips to draining, in-flight requests
//     complete under a drain deadline, workers stop, and the process
//     exits through obs.Run so manifests and profiles survive;
//   - validated hot-reload: a new model gob is decoded into a side
//     buffer, validated (FU/dimension match, finite predictions on a
//     probe batch), then swapped atomically; a corrupt or truncated gob
//     never interrupts serving.
//
// The inference hot path reuses per-worker feature/delay buffers
// through core.Model.PredictDelaysPairsInto, so steady-state prediction
// does not touch the garbage collector.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tevot/internal/cells"
	"tevot/internal/core"
	"tevot/internal/obs"
)

// Serving metrics, published through the obs default registry (expvar
// "tevot", the run manifest, and -debug-addr /debug/vars). The
// accounting identity the smoke harness asserts: every /v1/predict
// request lands in exactly one outcome counter, so
//
//	requests == served + shed + timeouts + canceled + bad_requests
//	            + internal_errors
//
// serve.panics counts panic *events* (worker or handler goroutine); a
// worker panic surfaces to its request as an internal_error, so panics
// ride alongside the identity rather than inside it.
var (
	mRequests  = obs.NewCounter("serve.requests")
	mServed    = obs.NewCounter("serve.served")
	mShed      = obs.NewCounter("serve.shed")
	mTimeouts  = obs.NewCounter("serve.timeouts")
	mCanceled  = obs.NewCounter("serve.canceled")
	mBad       = obs.NewCounter("serve.bad_requests")
	mInternal  = obs.NewCounter("serve.internal_errors")
	mPanics    = obs.NewCounter("serve.panics")
	mReloadOK  = obs.NewCounter("serve.reloads_ok")
	mReloadBad = obs.NewCounter("serve.reloads_failed")
	mDropped   = obs.NewCounter("serve.jobs_dropped")

	gQueueDepth = obs.NewGauge("serve.queue_depth")
	gGeneration = obs.NewGauge("serve.model_generation")
	gDraining   = obs.NewGauge("serve.draining")

	hRequestSec = obs.NewHistogram("serve.request_seconds", []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	})
)

// Config sizes and parameterizes one prediction server. The zero value
// of every field has a production-sane default; Model is the only
// required field.
type Config struct {
	// Addr is the listen address for ListenAndServe (":0" picks a port).
	Addr string
	// Model is the initial trained model. Required.
	Model *core.Model
	// ModelPath is the gob file reloads re-read when a reload request
	// names no path (and the file SIGHUP reloads from).
	ModelPath string
	// Workers is the inference worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue (default 64). A full queue
	// sheds with 429 instead of queueing.
	QueueDepth int
	// RequestTimeout is the server-side per-request deadline applied to
	// /v1/predict (default 5s). Expiry answers 503.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 15s): in-flight
	// requests get this long to finish before connections are closed.
	DrainTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 8 MiB); larger bodies
	// answer 413.
	MaxBodyBytes int64
	// MaxPairs caps operand pairs per request (default 4097, i.e. 4096
	// predicted cycles); larger batches answer 400.
	MaxPairs int
	// MaxClocks caps clock periods per request (default 32).
	MaxClocks int

	// inferHook, when set (tests only), runs in the worker in place of
	// nothing before inference; its error fails the job. It is how the
	// deadline and worker-panic failure modes are exercised without
	// slowing real inference.
	inferHook func(ctx context.Context) error
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxPairs <= 0 {
		c.MaxPairs = 4097
	}
	if c.MaxClocks <= 0 {
		c.MaxClocks = 32
	}
	return c
}

// modelState is the atomically-swapped serving state: the model and its
// reload generation travel under one pointer, so a predict racing a
// hot-reload always observes a consistent (model, generation) pair —
// never a torn mix.
type modelState struct {
	model      *core.Model
	generation int64
	path       string
	loaded     time.Time
}

// Server is one prediction service instance.
type Server struct {
	cfg   Config
	state atomic.Pointer[modelState]

	queue    chan *job
	queueLen atomic.Int64
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	draining atomic.Bool
	addr     atomic.Pointer[string]
	reloadMu sync.Mutex
}

// job is one admitted predict request on its way through the pool.
type job struct {
	ctx  context.Context
	req  *predictRequest
	done chan jobResult // buffered(1): the worker never blocks on a gone handler
}

type jobResult struct {
	resp *predictResponse
	err  error
}

// errDraining fails residual queued jobs when the pool stops mid-drain.
var errDraining = fmt.Errorf("serve: draining")

// New validates cfg, installs the initial model, and starts the worker
// pool. Pair with Close (or run the full lifecycle via ListenAndServe).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Model == nil {
		return nil, fmt.Errorf("serve: config needs a model")
	}
	s := &Server{
		cfg:    cfg,
		queue:  make(chan *job, cfg.QueueDepth),
		stopCh: make(chan struct{}),
	}
	s.state.Store(&modelState{model: cfg.Model, generation: 1, path: cfg.ModelPath, loaded: time.Now()})
	gGeneration.Set(1)
	gDraining.Set(0)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	obs.Logger("serve").Info("prediction server ready",
		"fu", cfg.Model.FU.String(), "dim", cfg.Model.Dim(),
		"workers", cfg.Workers, "queue", cfg.QueueDepth,
		"request_timeout", cfg.RequestTimeout)
	return s, nil
}

// Addr reports the address ListenAndServe bound ("" before it runs).
func (s *Server) Addr() string {
	if p := s.addr.Load(); p != nil {
		return *p
	}
	return ""
}

// Close stops the worker pool immediately; residual queued jobs fail
// with 503. Idempotent. ListenAndServe calls it as part of draining;
// tests that drive Handler directly call it themselves.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.wg.Wait()
}

// worker owns one set of reusable inference buffers and serves admitted
// jobs until the pool stops. A panic inside inference fails only that
// job: the recover below restarts nothing and loses nothing, because
// buffers are rebuilt lazily and the model pointer is per-job.
func (s *Server) worker() {
	defer s.wg.Done()
	var buf workerBuf
	for {
		select {
		case <-s.stopCh:
			// Fail any jobs still queued so their handlers answer now
			// instead of hanging until the request deadline.
			for {
				select {
				case j := <-s.queue:
					s.queueLen.Add(-1)
					gQueueDepth.Set(float64(s.queueLen.Load()))
					j.done <- jobResult{err: errDraining}
				default:
					return
				}
			}
		case j := <-s.queue:
			s.queueLen.Add(-1)
			gQueueDepth.Set(float64(s.queueLen.Load()))
			if j.ctx.Err() != nil {
				// The handler already answered (deadline or client
				// gone); don't burn inference on it.
				mDropped.Inc()
				continue
			}
			j.done <- s.inferJob(&buf, j)
		}
	}
}

// inferJob runs one job with panic isolation: a panicking prediction
// (or test hook) becomes a per-job error, not a dead worker.
func (s *Server) inferJob(buf *workerBuf, j *job) (res jobResult) {
	defer func() {
		if p := recover(); p != nil {
			mPanics.Inc()
			obs.Logger("serve").Error("inference panic recovered", "panic", fmt.Sprint(p))
			res = jobResult{err: fmt.Errorf("serve: inference panic: %v", p)}
		}
	}()
	if s.cfg.inferHook != nil {
		if err := s.cfg.inferHook(j.ctx); err != nil {
			return jobResult{err: err}
		}
	}
	st := s.state.Load()
	resp, err := predict(st, buf, j.req)
	return jobResult{resp: resp, err: err}
}

// workerBuf is one worker's reusable inference scratch: feature rows
// carved from a single backing array plus the delay output, re-carved
// only when the batch capacity or model dimension changes.
type workerBuf struct {
	backing []float64
	rows    [][]float64
	delays  []float64
	dim     int
}

func (b *workerBuf) ensure(dim, n int) {
	if b.dim == dim && len(b.rows) >= n {
		return
	}
	if n < len(b.rows) {
		n = len(b.rows)
	}
	b.backing = make([]float64, n*dim)
	b.rows = make([][]float64, n)
	for i := range b.rows {
		b.rows[i] = b.backing[i*dim : (i+1)*dim : (i+1)*dim]
	}
	b.delays = make([]float64, n)
	b.dim = dim
}

// predict is the model evaluation for one validated request.
func predict(st *modelState, buf *workerBuf, req *predictRequest) (*predictResponse, error) {
	n := len(req.Pairs) - 1
	buf.ensure(st.model.Dim(), n)
	corner := cells.Corner{V: req.Voltage, T: req.Temperature}
	if err := st.model.PredictDelaysPairsInto(buf.delays, buf.rows, corner, req.Pairs); err != nil {
		return nil, err
	}
	resp := &predictResponse{
		FU:              st.model.FU.String(),
		ModelGeneration: st.generation,
		Delays:          append([]float64(nil), buf.delays[:n]...),
	}
	for _, clk := range req.Clocks {
		cr := clockResult{ClockPs: clk, Errors: make([]bool, n)}
		bad := 0
		for i, d := range buf.delays[:n] {
			if d > clk {
				cr.Errors[i] = true
				bad++
			}
		}
		cr.TER = float64(bad) / float64(n)
		resp.Clocks = append(resp.Clocks, cr)
	}
	return resp, nil
}

// ListenAndServe binds cfg.Addr and serves until ctx is cancelled
// (SIGINT/SIGTERM in the CLI), then drains gracefully: readiness flips
// to draining, the listener stops accepting, in-flight requests get
// DrainTimeout to finish, the worker pool stops, and the method
// returns — nil on a clean drain so the caller can exit 0 through
// obs.Run with the manifest intact.
func (s *Server) ListenAndServe(ctx context.Context) error {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen on %s: %w", s.cfg.Addr, err)
	}
	addr := lis.Addr().String()
	s.addr.Store(&addr)
	// This line is the smoke harness's (and the operator's) handle on
	// ":0" runs, exactly like the obs debug endpoint's.
	obs.Logger("serve").Info("prediction endpoint listening", "addr", "http://"+addr)

	srv := &http.Server{
		Handler: s.Handler(),
		// The read/write walls are deliberately wider than
		// RequestTimeout: the per-request deadline produces a clean 503,
		// these guard against stuck clients holding connections.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       s.cfg.RequestTimeout + 10*time.Second,
		WriteTimeout:      s.cfg.RequestTimeout + 10*time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(lis) }()
	select {
	case err := <-errCh:
		s.Close()
		return fmt.Errorf("serve: listener failed: %w", err)
	case <-ctx.Done():
	}
	return s.drain(srv)
}

// drain is the graceful-shutdown sequence shared by ListenAndServe and
// the tests that drive it directly.
func (s *Server) drain(srv *http.Server) error {
	s.draining.Store(true)
	gDraining.Set(1)
	log := obs.Logger("serve")
	log.Info("draining", "deadline", s.cfg.DrainTimeout, "in_queue", s.queueLen.Load())
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(dctx)
	// Workers stop only after Shutdown returns: on the clean path every
	// in-flight handler has finished by then, and on the deadline path
	// residual jobs are failed fast rather than left hanging.
	s.Close()
	if err != nil {
		srv.Close()
		log.Warn("drain deadline exceeded; connections closed", "err", err)
		return fmt.Errorf("serve: drain deadline exceeded: %w", err)
	}
	log.Info("drained cleanly")
	return nil
}

// Progress is the /progress payload source for the obs debug endpoint:
// a live snapshot of serving state.
func (s *Server) Progress() any {
	st := s.state.Load()
	status := "serving"
	if s.draining.Load() {
		status = "draining"
	}
	return map[string]any{
		"status":           status,
		"fu":               st.model.FU.String(),
		"model_generation": st.generation,
		"model_path":       st.path,
		"model_loaded":     st.loaded,
		"queue_depth":      s.queueLen.Load(),
		"queue_capacity":   s.cfg.QueueDepth,
		"workers":          s.cfg.Workers,
		"served":           mServed.Value(),
		"shed":             mShed.Value(),
		"timeouts":         mTimeouts.Value(),
	}
}

// Generation reports the current model's reload generation.
func (s *Server) Generation() int64 { return s.state.Load().generation }
