package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/workload"
)

// The coalescer suite: flush policy (size / rows / timer / drain),
// generation consistency across hot-reloads, per-item deadlines inside
// a batch, derived Retry-After, the per-FU accounting identity, and the
// 0-alloc pin on the enqueue→flush→scatter hot path. All run under
// -race by check.sh.

func decodeResponse(t *testing.T, data []byte) predictResponse {
	t.Helper()
	var out predictResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, data)
	}
	return out
}

// TestFlushOnSize: with BatchSize=2 and an effectively-infinite
// MaxWait, two concurrent requests must ride one flush — both served
// from a 2-item batch with flush_reason "size".
func TestFlushOnSize(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.BatchSize = 2
		c.MaxWait = time.Minute
	})
	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, data := postPredict(t, ts.URL, validBody(4))
			results <- result{resp.StatusCode, data}
		}()
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("status %d: %s", r.status, r.body)
		}
		out := decodeResponse(t, r.body)
		if out.Batch == nil {
			t.Fatal("response carries no batch info")
		}
		if out.Batch.Reason != "size" {
			t.Errorf("flush_reason = %q, want size", out.Batch.Reason)
		}
		if out.Batch.Items != 2 || out.Batch.Rows != 6 {
			t.Errorf("batch items/rows = %d/%d, want 2/6", out.Batch.Items, out.Batch.Rows)
		}
		if out.Batch.FlushedAt.Before(out.Batch.QueuedAt) {
			t.Errorf("flushed_at %v before queued_at %v", out.Batch.FlushedAt, out.Batch.QueuedAt)
		}
		if len(out.Delays) != 3 {
			t.Errorf("got %d delays, want 3", len(out.Delays))
		}
	}
}

// TestFlushOnMaxWait: a lone request under a large BatchSize must not
// wait for riders that never come — the MaxWait timer flushes a partial
// batch of one.
func TestFlushOnMaxWait(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.BatchSize = 64
		c.MaxWait = 20 * time.Millisecond
	})
	start := time.Now()
	resp, data := postPredict(t, ts.URL, validBody(3))
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	out := decodeResponse(t, data)
	if out.Batch == nil || out.Batch.Reason != "timer" {
		t.Fatalf("batch = %+v, want flush_reason timer", out.Batch)
	}
	if out.Batch.Items != 1 {
		t.Errorf("batch items = %d, want 1 (partial flush)", out.Batch.Items)
	}
	if elapsed < 15*time.Millisecond {
		t.Errorf("answered in %v, before the 20ms MaxWait elapsed", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("timer flush took %v", elapsed)
	}
}

// TestFlushOnRows: a single request bigger than MaxBatchRows must form
// its own batch and flush immediately on the row trigger — large
// requests never stall behind the timer nor blow up a shared flush.
func TestFlushOnRows(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.BatchSize = 64
		c.MaxBatchRows = 8
		c.MaxWait = time.Minute
	})
	resp, data := postPredict(t, ts.URL, validBody(10)) // 9 rows ≥ 8
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	out := decodeResponse(t, data)
	if out.Batch == nil || out.Batch.Reason != "rows" {
		t.Fatalf("batch = %+v, want flush_reason rows", out.Batch)
	}
	if out.Batch.Rows != 9 {
		t.Errorf("batch rows = %d, want 9", out.Batch.Rows)
	}
}

// TestDrainFlushesPartialBatch: a request parked in an accumulating
// batch must flush immediately when the drain begins, not wait out a
// long MaxWait under a shutdown deadline.
func TestDrainFlushesPartialBatch(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.BatchSize = 64
		c.MaxWait = time.Minute
	})
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		resp, data := postPredict(t, ts.URL, validBody(3))
		done <- result{resp.StatusCode, data}
	}()
	waitFor(t, func() bool { return s.queueLen.Load() == 1 })
	start := time.Now()
	s.beginDrain()
	select {
	case r := <-done:
		if r.status != http.StatusOK {
			t.Fatalf("status %d: %s", r.status, r.body)
		}
		out := decodeResponse(t, r.body)
		if out.Batch == nil || out.Batch.Reason != "drain" {
			t.Fatalf("batch = %+v, want flush_reason drain", out.Batch)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Errorf("drain flush took %v", el)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked request not flushed by drain")
	}
}

// TestReloadMidBatchGeneration is the torn-batch race: a hot-reload
// lands while a batch is still accumulating. The flush loads the model
// state exactly once, so every item in the batch — including the one
// admitted BEFORE the reload — must serve from one coherent model and
// report the same (new) generation.
func TestReloadMidBatchGeneration(t *testing.T) {
	dir := t.TempDir()
	m2, err := trainModel(41)
	if err != nil {
		t.Fatal(err)
	}
	path := writeModelFile(t, dir, "v2.tevot", m2)
	s, ts := newTestServer(t, func(c *Config) {
		c.BatchSize = 2
		c.MaxWait = time.Minute
	})
	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	post := func() {
		resp, data := postPredict(t, ts.URL, validBody(3))
		results <- result{resp.StatusCode, data}
	}
	go post() // parks in the accumulating batch
	waitFor(t, func() bool { return s.queueLen.Load() == 1 })
	if _, err := s.Reload(path); err != nil {
		t.Fatal(err)
	}
	go post() // second rider completes the batch and triggers the flush
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("status %d: %s", r.status, r.body)
		}
		out := decodeResponse(t, r.body)
		if out.ModelGeneration != 2 {
			t.Errorf("generation = %d, want 2 (flush must load the post-reload state once)", out.ModelGeneration)
		}
		if out.Batch == nil || out.Batch.Items != 2 {
			t.Errorf("batch = %+v, want 2 items in one flush", out.Batch)
		}
	}
}

// TestBatchQueuedDeadline: an item whose context expires while queued
// is answered with its context error before inference and removed from
// the batch — the surviving rider flushes in a batch of one, and
// serve.batch_expired moves by exactly one.
func TestBatchQueuedDeadline(t *testing.T) {
	s, err := New(Config{
		Model: trainedModel(t), Workers: 1, QueueDepth: 8,
		BatchSize: 2, MaxWait: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	u := s.units[0]
	expiredBefore := mBatchExpired.Value()

	pairs := workload.RandomInt(4, 3).Pairs
	expiredCtx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	dead := &batchItem{ctx: expiredCtx, corner: cells.Corner{V: 0.88, T: 50},
		pairs: pairs, rows: len(pairs) - 1, done: make(chan struct{}, 1)}
	live := &batchItem{ctx: context.Background(), corner: cells.Corner{V: 0.88, T: 50},
		pairs: pairs, rows: len(pairs) - 1, done: make(chan struct{}, 1)}

	if !u.admit(dead) || !u.admit(live) {
		t.Fatal("admission refused with an empty queue")
	}
	select {
	case <-dead.done:
	case <-time.After(5 * time.Second):
		t.Fatal("expired item never answered")
	}
	if dead.err != context.DeadlineExceeded {
		t.Errorf("expired item err = %v, want DeadlineExceeded", dead.err)
	}
	select {
	case <-live.done:
	case <-time.After(5 * time.Second):
		t.Fatal("live item never answered")
	}
	if live.err != nil {
		t.Fatalf("live item failed: %v", live.err)
	}
	if live.batchItems != 1 {
		t.Errorf("live item flushed in a %d-item batch, want 1 (expired rider removed)", live.batchItems)
	}
	if len(live.delays) != live.rows {
		t.Errorf("live item got %d delays, want %d", len(live.delays), live.rows)
	}
	if got := mBatchExpired.Value() - expiredBefore; got != 1 {
		t.Errorf("batch_expired moved by %d, want 1", got)
	}
	waitFor(t, func() bool { return s.queueLen.Load() == 0 })
}

// TestRetryAfterDerived pins the Retry-After derivation to the flush
// interval — (backlog/batch + 1) flush cycles, in whole seconds,
// clamped to [1, 60] — and checks a real shed response carries it.
func TestRetryAfterDerived(t *testing.T) {
	cases := []struct {
		maxWait time.Duration
		queued  int64
		batch   int
		want    int
	}{
		{2 * time.Millisecond, 0, 32, 1},    // sub-second clamps up to 1
		{2 * time.Second, 0, 32, 2},         // one flush interval
		{2 * time.Second, 64, 32, 6},        // 2 backlog flushes + 1
		{3 * time.Second, 1, 1, 6},          // batch=1: one flush per item
		{1500 * time.Millisecond, 0, 32, 2}, // rounds up to whole seconds
		{30 * time.Second, 100, 1, 60},      // clamps at 60
		{time.Second, -5, 0, 1},             // degenerate inputs stay sane
	}
	for _, tc := range cases {
		if got := retryAfterSecs(tc.maxWait, tc.queued, tc.batch); got != tc.want {
			t.Errorf("retryAfterSecs(%v, %d, %d) = %d, want %d",
				tc.maxWait, tc.queued, tc.batch, got, tc.want)
		}
	}

	// End to end: one worker gated, one item queued, third request shed.
	// With MaxWait=3s, batch=1, backlog=1 the header must say 6, not a
	// constant.
	entered := make(chan struct{}, 4)
	gate := make(chan struct{})
	defer close(gate)
	s, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
		c.BatchSize = 1
		c.MaxWait = 3 * time.Second
		c.inferHook = func(ctx context.Context) error {
			entered <- struct{}{}
			<-gate
			return nil
		}
	})
	bgPost := func() {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(validBody(3)))
		if err == nil {
			readAll(t, resp)
		}
	}
	go bgPost() // occupies the worker
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the first request")
	}
	go bgPost() // queued behind it
	waitFor(t, func() bool { return s.queueLen.Load() == 1 })
	resp, data := postPredict(t, ts.URL, validBody(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "6" {
		t.Errorf("Retry-After = %q, want 6 (derived from 3s flush interval, backlog 1)", got)
	}
}

// trainSecondFU trains a small INT_MUL model so multi-unit tests have a
// second functional unit to shard.
var (
	mulOnce  sync.Once
	mulModel *core.Model
	mulErr   error
)

func trainedMulModel(t *testing.T) *core.Model {
	t.Helper()
	mulOnce.Do(func() {
		u, err := core.NewFUnit(circuits.IntMul32)
		if err != nil {
			mulErr = err
			return
		}
		tr, err := core.Characterize(u, cells.Corner{V: 0.88, T: 50}, workload.RandomInt(201, 11), nil)
		if err != nil {
			mulErr = err
			return
		}
		mulModel, mulErr = core.Train(circuits.IntMul32, []*core.Trace{tr}, core.DefaultConfig())
	})
	if mulErr != nil {
		t.Fatal(mulErr)
	}
	return mulModel
}

// TestPerFURouting: a two-unit server routes /v1/predict/{fu} to the
// right shard, keeps the legacy /v1/predict on the default unit, and
// 404s unknown FUs with the aggregate-only accounting.
func TestPerFURouting(t *testing.T) {
	s, err := New(Config{
		Models: []ModelEntry{
			{Model: trainedModel(t)},
			{Model: trainedMulModel(t)},
		},
		Workers: 2, QueueDepth: 8, BatchSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := newHTTPServer(t, s)

	unknownBefore := mUnknownFU.Value()
	for _, tc := range []struct {
		path, wantFU string
	}{
		{"/v1/predict", "INT_ADD"},
		{"/v1/predict/INT_ADD", "INT_ADD"},
		{"/v1/predict/INT_MUL", "INT_MUL"},
		// FU names are canonically uppercase but model files are saved
		// lowercase (int_add.tevot), so the route accepts any casing.
		{"/v1/predict/int_add", "INT_ADD"},
		{"/v1/predict/int_mul", "INT_MUL"},
	} {
		resp, err := http.Post(ts+tc.path, "application/json", strings.NewReader(validBody(4)))
		if err != nil {
			t.Fatal(err)
		}
		data := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.path, resp.StatusCode, data)
		}
		if out := decodeResponse(t, data); out.FU != tc.wantFU {
			t.Errorf("%s served fu %q, want %q", tc.path, out.FU, tc.wantFU)
		}
	}
	resp, err := http.Post(ts+"/v1/predict/FP_DIV", "application/json", strings.NewReader(validBody(4)))
	if err != nil {
		t.Fatal(err)
	}
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown FU: status %d, want 404: %s", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Error.Code != "unknown_fu" {
		t.Errorf("code %q, want unknown_fu", e.Error.Code)
	}
	if got := mUnknownFU.Value() - unknownBefore; got != 1 {
		t.Errorf("unknown_fu moved by %d, want 1", got)
	}
	if gen := s.GenerationFU("INT_MUL"); gen != 1 {
		t.Errorf("INT_MUL generation = %d, want 1", gen)
	}
}

// TestPerFUReload: reloading one unit bumps only that unit's
// generation; the sibling keeps serving its model untouched.
func TestPerFUReload(t *testing.T) {
	dir := t.TempDir()
	m2, err := trainModel(53)
	if err != nil {
		t.Fatal(err)
	}
	path := writeModelFile(t, dir, "add-v2.tevot", m2)
	s, err := New(Config{
		Models: []ModelEntry{
			{Model: trainedModel(t)},
			{Model: trainedMulModel(t)},
		},
		Workers: 2, QueueDepth: 8, BatchSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := newHTTPServer(t, s)

	resp, err := http.Post(ts+"/admin/reload", "application/json",
		strings.NewReader(`{"fu":"INT_ADD","path":`+jq(path)+`}`))
	if err != nil {
		t.Fatal(err)
	}
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, data)
	}
	if got := s.GenerationFU("INT_ADD"); got != 2 {
		t.Errorf("INT_ADD generation = %d, want 2", got)
	}
	if got := s.GenerationFU("INT_MUL"); got != 1 {
		t.Errorf("INT_MUL generation = %d, want 1 (must not move)", got)
	}
	// A wrong-unit reload (INT_ADD gob into the INT_MUL shard) is
	// rejected by the FU gate and moves nothing.
	resp, err = http.Post(ts+"/admin/reload", "application/json",
		strings.NewReader(`{"fu":"INT_MUL","path":`+jq(path)+`}`))
	if err != nil {
		t.Fatal(err)
	}
	data = readAll(t, resp)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("cross-FU reload status %d, want 422: %s", resp.StatusCode, data)
	}
	if got := s.GenerationFU("INT_MUL"); got != 1 {
		t.Errorf("INT_MUL generation = %d after rejected reload, want 1", got)
	}
}

// TestAccountingIdentityPerFU drives mixed traffic — served, bad, shed,
// unknown-FU — at a two-unit server and asserts the accounting identity
//
//	requests == served + shed + timeouts + canceled + bad + internal
//
// on each unit's counter set AND the aggregate, as counter deltas.
func TestAccountingIdentityPerFU(t *testing.T) {
	s, err := New(Config{
		Models: []ModelEntry{
			{Model: trainedModel(t)},
			{Model: trainedMulModel(t)},
		},
		Workers: 2, QueueDepth: 8, BatchSize: 4, MaxWait: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := newHTTPServer(t, s)

	snap := func(set outcomeSet) [7]int64 {
		return [7]int64{set.requests.Value(), set.served.Value(), set.shed.Value(),
			set.timeouts.Value(), set.canceled.Value(), set.bad.Value(), set.internal.Value()}
	}
	before := map[string][7]int64{
		"aggregate": snap(aggregate),
		"INT_ADD":   snap(s.byFU["INT_ADD"].met),
		"INT_MUL":   snap(s.byFU["INT_MUL"].met),
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			paths := []string{"/v1/predict", "/v1/predict/INT_MUL", "/v1/predict/INT_ADD", "/v1/predict/NOPE"}
			for i := 0; i < 25; i++ {
				body := validBody(3)
				if i%7 == 0 {
					body = `{"voltage":0}` // invalid: counted bad
				}
				resp, err := http.Post(ts+paths[(g+i)%len(paths)], "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				readAll(t, resp)
			}
		}(g)
	}
	wg.Wait()

	for name, b := range before {
		var a [7]int64
		switch name {
		case "aggregate":
			a = snap(aggregate)
		default:
			a = snap(s.byFU[name].met)
		}
		var d [7]int64
		for i := range a {
			d[i] = a[i] - b[i]
		}
		if sum := d[1] + d[2] + d[3] + d[4] + d[5] + d[6]; d[0] != sum {
			t.Errorf("%s identity broken: requests=%d != served=%d+shed=%d+timeouts=%d+canceled=%d+bad=%d+internal=%d",
				name, d[0], d[1], d[2], d[3], d[4], d[5], d[6])
		}
		if name != "aggregate" && d[0] == 0 {
			t.Errorf("%s saw no traffic; the identity check is vacuous", name)
		}
	}
}

// TestServeBatchHotPathAllocs pins the coalescer hot path —
// enqueue → accumulate → flush → scatter — at zero allocations per
// item in steady state: recycled batch structs, reusable worker
// buffers, and delay slices reused in place.
func TestServeBatchHotPathAllocs(t *testing.T) {
	const items = 8
	s, err := New(Config{
		Model: trainedModel(t), Workers: 1, QueueDepth: 32,
		BatchSize: items, MaxWait: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	u := s.units[0]

	pairs := workload.RandomInt(4, 9).Pairs
	its := make([]*batchItem, items)
	for i := range its {
		its[i] = &batchItem{
			ctx:    context.Background(),
			corner: cells.Corner{V: 0.88, T: 50},
			pairs:  pairs,
			rows:   len(pairs) - 1,
			done:   make(chan struct{}, 1),
		}
	}
	run := func() {
		for _, it := range its {
			if !u.admit(it) {
				t.Fatal("admission refused")
			}
		}
		for _, it := range its {
			<-it.done
			if it.err != nil {
				t.Fatal(it.err)
			}
		}
	}
	allocs := testing.AllocsPerRun(200, run)
	if perItem := allocs / items; perItem != 0 {
		t.Errorf("coalescer hot path allocates %.3f allocs/op per item (%.1f per %d-item batch), want 0",
			perItem, allocs, items)
	}
}

// newHTTPServer is newTestServer for Servers constructed directly (the
// multi-unit configs newTestServer's single-Model default can't build).
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// readAll drains and closes a response body.
func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
