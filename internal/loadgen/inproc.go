package loadgen

import (
	"net/http"
	"net/http/httptest"
)

// HandlerTransport is an http.RoundTripper that dispatches requests
// directly to an in-process http.Handler — the loadgen's server-stack
// saturation mode. On hosts where the client and server share cores,
// the kernel socket path (identical in both arms of an A/B) dominates
// per-request cost and buries server-side differences in scheduler
// noise; direct dispatch keeps the full handler → coalescer → metrics
// path under measurement while removing the network from it. The
// request still crosses a real http.Client, the mux, admission, and
// the batch pipeline, so outcome accounting is identical to the
// socket path.
type HandlerTransport struct {
	Handler http.Handler
}

// RoundTrip serves the request synchronously on the caller's
// goroutine and returns the recorded response.
func (t HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.Handler.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}
