package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/obs"
	"tevot/internal/serve"
	"tevot/internal/workload"
)

// The loadgen suite drives a real in-process serve.Server (two
// functional-unit shards, coalescing on) with open-loop traffic and
// then audits the server's books through /metrics: the accounting
// identity
//
//	requests == served + shed + timeouts + canceled + bad + internal
//
// must hold on the aggregate serve_* counters AND on each unit's
// serve_fu_<FU>_* set after the run quiesces — the acceptance check
// that no request is double-counted or lost across batch boundaries.

func trainFU(t *testing.T, fu circuits.FU, cycles int, seed int64) *core.Model {
	t.Helper()
	u, err := core.NewFUnit(fu)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.Characterize(u, cells.Corner{V: 0.88, T: 50}, workload.RandomInt(cycles, seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(fu, []*core.Trace{tr}, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// scrapeCounters fetches /metrics and returns every counter's value
// keyed by exposition name, via the strict in-repo parser — the same
// surface a production scraper sees.
func scrapeCounters(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("exposition did not parse: %v", err)
	}
	out := make(map[string]float64)
	for name, fam := range fams {
		if fam.Type != "counter" || len(fam.Samples) == 0 {
			continue
		}
		out[strings.TrimSuffix(name, "_total")] = fam.Samples[0].Value
	}
	return out
}

func TestOpenLoopRunAndAccountingIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two models; skipped in -short")
	}
	s, err := serve.New(serve.Config{
		Models: []serve.ModelEntry{
			{Model: trainFU(t, circuits.IntAdd32, 201, 7)},
			{Model: trainFU(t, circuits.IntMul32, 151, 11)},
		},
		Workers: 2, QueueDepth: 16, BatchSize: 8,
		MaxWait: time.Millisecond, RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := scrapeCounters(t, ts.URL)

	// One ramp against each shard: the default route (INT_ADD) and the
	// per-FU route (INT_MUL). Short steps, deterministic seeds.
	for i, fu := range []string{"", "INT_MUL"} {
		rep, err := Run(context.Background(), Config{
			URL: ts.URL, FU: fu, Pairs: 3, Seed: int64(100 + i),
			MaxInflight: 32, Timeout: 2 * time.Second,
			Steps: []Step{
				{RPS: 200, Duration: 300 * time.Millisecond},
				{RPS: 500, Duration: 300 * time.Millisecond},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Steps) != 2 {
			t.Fatalf("fu=%q: %d steps reported, want 2", fu, len(rep.Steps))
		}
		for _, sr := range rep.Steps {
			if sr.OK == 0 {
				t.Errorf("fu=%q offered %v rps: no OK completions (%+v)", fu, sr.OfferedRPS, sr)
			}
			// Every fired request must land in exactly one class.
			if classes := sr.OK + sr.Shed + sr.Unavailable + sr.BadRequest + sr.OtherHTTP + sr.NetErr; classes != sr.Sent {
				t.Errorf("fu=%q offered %v rps: sent %d != classified %d", fu, sr.OfferedRPS, sr.Sent, classes)
			}
			if sr.OK > 0 && (sr.P99Ms <= 0 || sr.P99Ms < sr.P50Ms) {
				t.Errorf("fu=%q: malformed quantiles p50=%v p99=%v", fu, sr.P50Ms, sr.P99Ms)
			}
		}
	}
	// Some malformed traffic so the bad_requests leg of the identity is
	// exercised too.
	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/v1/predict/INT_MUL", "application/json", strings.NewReader(`{"voltage":0}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	after := scrapeCounters(t, ts.URL)
	delta := func(name string) float64 { return after[name] - before[name] }
	for _, prefix := range []string{"tevot_serve", "tevot_serve_fu_INT_ADD", "tevot_serve_fu_INT_MUL"} {
		req := delta(prefix + "_requests")
		sum := delta(prefix+"_served") + delta(prefix+"_shed") + delta(prefix+"_timeouts") +
			delta(prefix+"_canceled") + delta(prefix+"_bad_requests") + delta(prefix+"_internal_errors")
		if req == 0 {
			t.Errorf("%s saw no traffic; identity check is vacuous", prefix)
		}
		if req != sum {
			t.Errorf("%s identity broken: requests=%v != outcome sum=%v (served=%v shed=%v timeouts=%v canceled=%v bad=%v internal=%v)",
				prefix, req, sum,
				delta(prefix+"_served"), delta(prefix+"_shed"), delta(prefix+"_timeouts"),
				delta(prefix+"_canceled"), delta(prefix+"_bad_requests"), delta(prefix+"_internal_errors"))
		}
	}
	if got := delta("tevot_serve_internal_errors"); got != 0 {
		t.Errorf("internal errors during load: %v", got)
	}
	if got := delta("tevot_serve_panics"); got != 0 {
		t.Errorf("panics during load: %v", got)
	}
	if got := delta("tevot_serve_fu_INT_MUL_bad_requests"); got < 5 {
		t.Errorf("bad_requests moved by %v, want ≥5", got)
	}
}

func TestMaxSustainedRPS(t *testing.T) {
	r := &Report{Steps: []StepReport{
		{OfferedRPS: 100, AchievedRPS: 99, OK: 99, P99Ms: 5},
		{OfferedRPS: 500, AchievedRPS: 480, OK: 480, Shed: 2, P99Ms: 20},
		{OfferedRPS: 1000, AchievedRPS: 700, OK: 700, Shed: 300, P99Ms: 90},
	}}
	if got := r.MaxSustainedRPS(50, 0.01); got != 480 {
		t.Errorf("sustained = %v, want 480 (third step breaks p99, second qualifies)", got)
	}
	if got := r.MaxSustainedRPS(10, 0.01); got != 99 {
		t.Errorf("sustained = %v, want 99 under a 10ms bound", got)
	}
	if got := r.MaxSustainedRPS(1, 0.01); got != 0 {
		t.Errorf("sustained = %v, want 0 when nothing qualifies", got)
	}
}

func TestQuantilesAndCSV(t *testing.T) {
	p50, p95, p99, max := quantiles([]float64{5, 1, 3, 2, 4})
	if p50 != 3 || max != 5 {
		t.Errorf("p50=%v max=%v, want 3/5", p50, max)
	}
	if p95 < p50 || p99 < p95 {
		t.Errorf("quantiles not monotone: %v %v %v", p50, p95, p99)
	}
	var sb strings.Builder
	r := &Report{Steps: []StepReport{{OfferedRPS: 100, AchievedRPS: 99.5, Sent: 50, OK: 49}}}
	if err := WriteCSV(&sb, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "offered_rps,") {
		t.Fatalf("csv malformed:\n%s", sb.String())
	}
	if !strings.Contains(lines[1], "99.500") {
		t.Errorf("csv row missing achieved rps: %s", lines[1])
	}
}
