// Package loadgen is an open-loop HTTP load generator for the tevot
// prediction service: Poisson arrivals at a target offered rate,
// stepped through a ramp schedule, with per-step latency quantiles and
// outcome classification. "Open loop" is the load-testing discipline
// that matters for saturation studies: arrivals fire on a schedule
// drawn from the offered rate, NOT in response to completions, so a
// slowing server faces the same offered load a real client population
// would present — the coordinated-omission trap a closed loop falls
// into. The only concession is a bounded in-flight cap (file
// descriptors are finite); arrivals that would exceed it are counted
// as skipped, never silently dropped, so the report always states the
// load that was actually offered.
package loadgen

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tevot/internal/workload"
)

// Step is one rung of the ramp schedule: hold the offered rate for the
// duration.
type Step struct {
	RPS      float64       `json:"rps"`
	Duration time.Duration `json:"-"`
}

// Config parameterizes one load run.
type Config struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// FU, when set, targets /v1/predict/{FU}; empty uses the legacy
	// /v1/predict route (the default unit).
	FU string
	// Pairs is the operand-pair count per request (default 3, i.e. two
	// predicted cycles — the small-request regime coalescing targets).
	Pairs int
	// Clocks are the clock periods (ps) each request asks verdicts for.
	Clocks []float64
	// Voltage and Temperature are the operating corner every request
	// carries (defaults 0.88 V, 50 °C).
	Voltage     float64
	Temperature float64
	// Seed drives the Poisson arrival process and the operand stream;
	// same seed, same offered schedule.
	Seed int64
	// MaxInflight bounds concurrent outstanding requests (default 256).
	// Arrivals beyond it are counted as skipped.
	MaxInflight int
	// Timeout is the per-request client timeout (default 10s).
	Timeout time.Duration
	// Settle excludes requests fired during the first Settle of each
	// step from the latency quantiles (outcome counts still include
	// them). Step transitions pay one-off costs — connection dial
	// bursts, a GC triggered by the rate change — that would otherwise
	// pollute the steady-state tail. Default 0: measure everything.
	Settle time.Duration
	// Steps is the ramp schedule. Required.
	Steps []Step
	// Client overrides the HTTP client (tests); nil builds one with
	// keep-alive sized to MaxInflight.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Pairs < 2 {
		c.Pairs = 3
	}
	if c.Voltage == 0 {
		c.Voltage = 0.88
	}
	if c.Temperature == 0 {
		c.Temperature = 50
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	return c
}

// StepReport is the measured outcome of one ramp step.
type StepReport struct {
	OfferedRPS  float64 `json:"offered_rps"`
	DurationSec float64 `json:"duration_sec"`
	Sent        int64   `json:"sent"`
	Skipped     int64   `json:"skipped"` // arrivals dropped at the in-flight cap
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed_429"`
	Unavailable int64   `json:"unavailable_503"`
	BadRequest  int64   `json:"bad_4xx"`
	OtherHTTP   int64   `json:"other_http"`
	NetErr      int64   `json:"net_err"`
	AchievedRPS float64 `json:"achieved_rps"` // OK completions per second
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// Report is the full saturation run: the schedule as offered and every
// step as measured.
type Report struct {
	URL         string       `json:"url"`
	Path        string       `json:"path"`
	Pairs       int          `json:"pairs"`
	Seed        int64        `json:"seed"`
	MaxInflight int          `json:"max_inflight"`
	Steps       []StepReport `json:"steps"`
	// SustainedRPS and P99BoundMs record the summary the CLI computed
	// via MaxSustainedRPS; zero when no bound was evaluated.
	SustainedRPS float64 `json:"sustained_rps,omitempty"`
	P99BoundMs   float64 `json:"p99_bound_ms,omitempty"`
}

// MaxSustainedRPS reports the highest achieved RPS among steps whose
// p99 stayed at or under p99BoundMs and whose non-OK completions
// (excluding skips) stayed under errRatio — the single saturation
// number an A/B comparison hinges on. Returns 0 if no step qualifies.
func (r *Report) MaxSustainedRPS(p99BoundMs, errRatio float64) float64 {
	best := 0.0
	for _, s := range r.Steps {
		done := s.OK + s.Shed + s.Unavailable + s.BadRequest + s.OtherHTTP + s.NetErr
		if done == 0 || s.OK == 0 {
			continue
		}
		bad := float64(done-s.OK) / float64(done)
		if s.P99Ms <= p99BoundMs && bad <= errRatio && s.AchievedRPS > best {
			best = s.AchievedRPS
		}
	}
	return best
}

// Run executes the ramp schedule against cfg.URL and returns the
// per-step report. ctx cancellation stops between arrivals; in-flight
// requests finish under their own timeout.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.URL == "" {
		return nil, fmt.Errorf("loadgen: no target URL")
	}
	if len(cfg.Steps) == 0 {
		return nil, fmt.Errorf("loadgen: empty ramp schedule")
	}
	path := "/v1/predict"
	if cfg.FU != "" {
		path += "/" + cfg.FU
	}
	body, err := buildBody(cfg)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = cfg.MaxInflight
		tr.MaxIdleConnsPerHost = cfg.MaxInflight
		client = &http.Client{Transport: tr, Timeout: cfg.Timeout}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{URL: cfg.URL, Path: path, Pairs: cfg.Pairs,
		Seed: cfg.Seed, MaxInflight: cfg.MaxInflight}
	var inflight atomic.Int64
	for _, step := range cfg.Steps {
		if step.RPS <= 0 || step.Duration <= 0 {
			return nil, fmt.Errorf("loadgen: step needs positive rps and duration, got %v/%v", step.RPS, step.Duration)
		}
		sr := StepReport{OfferedRPS: step.RPS, DurationSec: step.Duration.Seconds()}
		var (
			mu        sync.Mutex
			lats      []float64 // ms, OK completions fired after the settle window
			wg        sync.WaitGroup
			stepStart = time.Now()
			stepEnd   = stepStart.Add(step.Duration)
			next      = stepStart
		)
		for {
			now := time.Now()
			if now.After(stepEnd) || ctx.Err() != nil {
				break
			}
			if wait := next.Sub(now); wait > 0 {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
				}
			}
			// Schedule the next arrival BEFORE firing: the offered rate
			// must not depend on how long this request takes.
			next = next.Add(time.Duration(rng.ExpFloat64() / step.RPS * float64(time.Second)))
			if inflight.Load() >= int64(cfg.MaxInflight) {
				sr.Skipped++
				continue
			}
			inflight.Add(1)
			sr.Sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer inflight.Add(-1)
				start := time.Now()
				resp, err := client.Post(cfg.URL+path, "application/json", bytes.NewReader(body))
				lat := float64(time.Since(start).Microseconds()) / 1000.0
				if err != nil {
					atomic.AddInt64(&sr.NetErr, 1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					atomic.AddInt64(&sr.OK, 1)
					if start.Sub(stepStart) >= cfg.Settle {
						mu.Lock()
						lats = append(lats, lat)
						mu.Unlock()
					}
				case resp.StatusCode == http.StatusTooManyRequests:
					atomic.AddInt64(&sr.Shed, 1)
				case resp.StatusCode == http.StatusServiceUnavailable:
					atomic.AddInt64(&sr.Unavailable, 1)
				case resp.StatusCode >= 400 && resp.StatusCode < 500:
					atomic.AddInt64(&sr.BadRequest, 1)
				default:
					atomic.AddInt64(&sr.OtherHTTP, 1)
				}
			}()
		}
		wg.Wait()
		sr.AchievedRPS = float64(sr.OK) / step.Duration.Seconds()
		sr.P50Ms, sr.P95Ms, sr.P99Ms, sr.MaxMs = quantiles(lats)
		rep.Steps = append(rep.Steps, sr)
		if ctx.Err() != nil {
			break
		}
	}
	return rep, nil
}

// buildBody renders the fixed request body every arrival posts: a
// deterministic operand stream at the configured corner.
func buildBody(cfg Config) ([]byte, error) {
	pairs := workload.RandomInt(cfg.Pairs, cfg.Seed).Pairs
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"voltage":%g,"temperature":%g`, cfg.Voltage, cfg.Temperature)
	if len(cfg.Clocks) > 0 {
		b.WriteString(`,"clocks":[`)
		for i, c := range cfg.Clocks {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", c)
		}
		b.WriteByte(']')
	}
	b.WriteString(`,"pairs":[`)
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"a":%d,"b":%d}`, p.A, p.B)
	}
	b.WriteString(`]}`)
	return b.Bytes(), nil
}

// quantiles computes p50/p95/p99/max over latency samples (ms).
func quantiles(ms []float64) (p50, p95, p99, max float64) {
	if len(ms) == 0 {
		return 0, 0, 0, 0
	}
	sort.Float64s(ms)
	at := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	return at(0.50), at(0.95), at(0.99), ms[len(ms)-1]
}

// WriteCSV renders the report as one CSV row per step (the gnuplot /
// spreadsheet surface of the saturation study).
func WriteCSV(w io.Writer, r *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"offered_rps", "achieved_rps", "sent", "skipped", "ok",
		"shed_429", "unavailable_503", "bad_4xx", "other_http", "net_err",
		"p50_ms", "p95_ms", "p99_ms", "max_ms",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	d := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, s := range r.Steps {
		if err := cw.Write([]string{
			f(s.OfferedRPS), f(s.AchievedRPS), d(s.Sent), d(s.Skipped), d(s.OK),
			d(s.Shed), d(s.Unavailable), d(s.BadRequest), d(s.OtherHTTP), d(s.NetErr),
			f(s.P50Ms), f(s.P95Ms), f(s.P99Ms), f(s.MaxMs),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
