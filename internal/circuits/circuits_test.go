package circuits

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tevot/internal/netlist"
)

// evalFU runs a functional-unit netlist on an operand pair and decodes
// the 32-bit result.
func evalFU(t *testing.T, nl *netlist.Netlist, a, b uint32) uint32 {
	t.Helper()
	out, err := nl.Eval(EncodeOperands(a, b))
	if err != nil {
		t.Fatal(err)
	}
	return DecodeResult(out)
}

// evalN evaluates a netlist with two width-bit operands (generic widths,
// used by the exhaustive small-adder tests).
func evalN(t *testing.T, nl *netlist.Netlist, width int, a, b uint64) uint64 {
	t.Helper()
	in := make([]bool, 2*width)
	for i := 0; i < width; i++ {
		in[i] = a>>i&1 == 1
		in[width+i] = b>>i&1 == 1
	}
	out, err := nl.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	var v uint64
	for i, bit := range out {
		if bit {
			v |= 1 << i
		}
	}
	return v
}

func TestRippleAdderExhaustive4(t *testing.T) {
	nl := NewRippleAdder(4)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			if got, want := evalN(t, nl, 4, a, b), (a+b)&0xf; got != want {
				t.Fatalf("rca4: %d+%d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestCLAAdderExhaustive6(t *testing.T) {
	nl := NewCLAAdder(6) // exercises a full group and a partial group
	for a := uint64(0); a < 64; a++ {
		for b := uint64(0); b < 64; b++ {
			if got, want := evalN(t, nl, 6, a, b), (a+b)&0x3f; got != want {
				t.Fatalf("cla6: %d+%d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestTruncMultiplierExhaustive5(t *testing.T) {
	nl := NewTruncMultiplier(5)
	for a := uint64(0); a < 32; a++ {
		for b := uint64(0); b < 32; b++ {
			if got, want := evalN(t, nl, 5, a, b), (a*b)&0x1f; got != want {
				t.Fatalf("mul5: %d*%d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestFullMultiplierExhaustive5(t *testing.T) {
	nl := NewFullMultiplier(5)
	for a := uint64(0); a < 32; a++ {
		for b := uint64(0); b < 32; b++ {
			if got, want := evalN(t, nl, 5, a, b), a*b; got != want {
				t.Fatalf("mulfull5: %d*%d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestIntAdd32Random(t *testing.T) {
	nl := NewRippleAdder(32)
	f := func(a, b uint32) bool { return evalFU(t, nl, a, b) == a+b }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCLAAdd32Random(t *testing.T) {
	nl := NewCLAAdder(32)
	f := func(a, b uint32) bool { return evalFU(t, nl, a, b) == a+b }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntMul32Random(t *testing.T) {
	nl := NewTruncMultiplier(32)
	f := func(a, b uint32) bool { return evalFU(t, nl, a, b) == a*b }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// fpCases are deliberately nasty operand pairs for the FP datapaths.
func fpCases() [][2]uint32 {
	f := BitsFromFloat32
	return [][2]uint32{
		{f(1), f(1)}, {f(1.5), f(-1.5)}, {f(1e30), f(-1e30)},
		{f(3.14159), f(2.71828)}, {f(1e-38), f(1e-38)},
		{f(1e38), f(1e38)},                      // overflow
		{f(1.1754944e-38), f(1.1754944e-38)},    // min normal
		{0, 0}, {1 << 31, 0}, {f(-0.5), 1 << 31}, // signed zeros
		{f(1), 1}, {1, 2},                        // subnormal operands (flushed)
		{f(8388608), f(1)},                       // 2^23 + 1: alignment edge
		{f(16777216), f(1)},                      // 2^24 + 1: aligned bit lost
		{f(1), f(1.0000001)},                     // near-total cancellation (sub)
		{f(-1), f(1.0000001)},
		{f(65504), f(0.00003051)},
		{0x7f800000, f(1)},       // +Inf encoding flows through
		{0x7fc00000, f(1)},       // NaN encoding flows through as a value
		{f(2), f(-2)},            // exact cancellation
		{f(0.75), f(0.25)}, {f(-0.75), f(0.25)},
	}
}

func TestFPAdderAgainstGolden(t *testing.T) {
	nl := NewFPAdder()
	for _, c := range fpCases() {
		got := evalFU(t, nl, c[0], c[1])
		want := FPAdd32.Golden(c[0], c[1])
		if got != want {
			t.Errorf("fp_add(%#08x, %#08x) = %#08x, want %#08x (%v + %v)",
				c[0], c[1], got, want,
				Float32FromBits(c[0]), Float32FromBits(c[1]))
		}
	}
}

func TestFPMultiplierAgainstGolden(t *testing.T) {
	nl := NewFPMultiplier()
	for _, c := range fpCases() {
		got := evalFU(t, nl, c[0], c[1])
		want := FPMul32.Golden(c[0], c[1])
		if got != want {
			t.Errorf("fp_mul(%#08x, %#08x) = %#08x, want %#08x (%v * %v)",
				c[0], c[1], got, want,
				Float32FromBits(c[0]), Float32FromBits(c[1]))
		}
	}
}

func TestFPAdderRandomBitExact(t *testing.T) {
	nl := NewFPAdder()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		got := evalFU(t, nl, a, b)
		want := FPAdd32.Golden(a, b)
		if got != want {
			t.Fatalf("fp_add(%#08x, %#08x) = %#08x, want %#08x", a, b, got, want)
		}
	}
}

func TestFPMultiplierRandomBitExact(t *testing.T) {
	nl := NewFPMultiplier()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		a, b := rng.Uint32(), rng.Uint32()
		got := evalFU(t, nl, a, b)
		want := FPMul32.Golden(a, b)
		if got != want {
			t.Fatalf("fp_mul(%#08x, %#08x) = %#08x, want %#08x", a, b, got, want)
		}
	}
}

func TestAllFUsBuildAndValidate(t *testing.T) {
	for _, fu := range AllFUs {
		nl, err := fu.Build()
		if err != nil {
			t.Fatalf("%v: %v", fu, err)
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("%v: %v", fu, err)
		}
		if got := len(nl.PrimaryInputs); got != OperandBits {
			t.Errorf("%v: %d primary inputs, want %d", fu, got, OperandBits)
		}
		if got := len(nl.PrimaryOutputs); got != ResultBits {
			t.Errorf("%v: %d primary outputs, want %d", fu, got, ResultBits)
		}
		d, err := nl.Depth()
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%v: %d gates, depth %d", fu, nl.NumGates(), d)
		if nl.NumGates() < 100 {
			t.Errorf("%v: implausibly small netlist (%d gates)", fu, nl.NumGates())
		}
	}
}

// TestFURandomAgainstGolden sweeps all four FUs with the same operand
// stream against their golden models.
func TestFURandomAgainstGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, fu := range AllFUs {
		nl, err := fu.Build()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			a, b := rng.Uint32(), rng.Uint32()
			got := evalFU(t, nl, a, b)
			if want := fu.Golden(a, b); got != want {
				t.Fatalf("%v(%#08x, %#08x) = %#08x, want %#08x", fu, a, b, got, want)
			}
		}
	}
}

func TestParseFU(t *testing.T) {
	for _, fu := range AllFUs {
		got, err := ParseFU(fu.String())
		if err != nil || got != fu {
			t.Errorf("ParseFU(%q) = %v, %v", fu.String(), got, err)
		}
	}
	if _, err := ParseFU("BOGUS"); err == nil {
		t.Error("ParseFU accepted unknown name")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(a, b uint32) bool {
		bits := EncodeOperands(a, b)
		return DecodeResult(bits[:32]) == a && DecodeResult(bits[32:]) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdderDepthOrdering(t *testing.T) {
	rca := NewRippleAdder(32)
	cla := NewCLAAdder(32)
	dr, err := rca.Depth()
	if err != nil {
		t.Fatal(err)
	}
	dc, err := cla.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if dc >= dr {
		t.Errorf("CLA depth (%d) should be below ripple depth (%d)", dc, dr)
	}
}

// TestShifterBlocks exercises the variable shifters through a dedicated
// tiny netlist, exhaustively.
func TestShifterBlocks(t *testing.T) {
	build := func(left bool) *netlist.Netlist {
		b := netlist.NewBuilder("shift")
		x := Bus(b.InputBus("x", 8))
		amt := Bus(b.InputBus("amt", 3))
		var o Bus
		if left {
			o = shiftLeftVar(b, x, amt)
		} else {
			o = shiftRightVar(b, x, amt)
		}
		b.OutputBus(o)
		return b.MustBuild()
	}
	right := build(false)
	left := build(true)
	for x := uint64(0); x < 256; x++ {
		for s := uint64(0); s < 8; s++ {
			inBits := make([]bool, 11)
			for i := 0; i < 8; i++ {
				inBits[i] = x>>i&1 == 1
			}
			for i := 0; i < 3; i++ {
				inBits[8+i] = s>>i&1 == 1
			}
			outR, err := right.Eval(inBits)
			if err != nil {
				t.Fatal(err)
			}
			outL, err := left.Eval(inBits)
			if err != nil {
				t.Fatal(err)
			}
			var vr, vl uint64
			for i, bit := range outR {
				if bit {
					vr |= 1 << i
				}
			}
			for i, bit := range outL {
				if bit {
					vl |= 1 << i
				}
			}
			if vr != x>>s {
				t.Fatalf("shr: %d>>%d = %d, want %d", x, s, vr, x>>s)
			}
			if vl != (x<<s)&0xff {
				t.Fatalf("shl: %d<<%d = %d, want %d", x, s, vl, (x<<s)&0xff)
			}
		}
	}
}

// TestLZCBlock exhaustively checks the leading-zero counter on 16 bits.
func TestLZCBlock(t *testing.T) {
	b := netlist.NewBuilder("lzc16")
	x := Bus(b.InputBus("x", 16))
	c := lzc(b, x)
	b.OutputBus(c)
	nl := b.MustBuild()
	for v := uint64(1); v < 1<<16; v++ {
		in := make([]bool, 16)
		for i := 0; i < 16; i++ {
			in[i] = v>>i&1 == 1
		}
		out, err := nl.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		var got uint64
		for i, bit := range out {
			if bit {
				got |= 1 << i
			}
		}
		want := uint64(0)
		for i := 15; i >= 0 && v>>i&1 == 0; i-- {
			want++
		}
		if got != want {
			t.Fatalf("lzc(%#04x) = %d, want %d", v, got, want)
		}
	}
}
