package circuits

import (
	"tevot/internal/netlist"
)

// fpFields splits a 32-bit encoding bus into sign, exponent field,
// fraction field, the 24-bit mantissa with hidden bit (subnormals flushed
// to zero), and the 31-bit magnitude used for operand ordering.
func fpFields(b *netlist.Builder, x Bus) (sign netlist.NetID, exp, man, mag Bus) {
	sign = x[31]
	exp = Bus(x[23:31])
	frac := Bus(x[0:23])
	nz := b.Not(isZero(b, exp)) // exponent field nonzero: operand not flushed
	man = append(andBusWith(b, frac, nz), nz)
	mag = andBusWith(b, Bus(x[0:31]), nz)
	return sign, exp, man, mag
}

// fpPack produces the 32 output nets from sign, a 10-bit two's-complement
// exponent, the normalized 24-bit mantissa, and the nonzero flag. It
// implements the same flush-to-zero / saturate-to-infinity policy as
// fpref.pack and returns the output bus LSB-first (bit 31 = sign).
func fpPack(b *netlist.Builder, sign netlist.NetID, exp10, mant Bus, nz netlist.NetID) Bus {
	negE := exp10[9]
	le0 := b.Or(negE, isZero(b, exp10))
	flush := b.Or(b.Not(nz), le0)
	ge255 := b.And(geConst(b, exp10, 255), b.Not(negE))
	inf := b.And(ge255, b.Not(flush))
	keep := b.Not(b.Or(flush, inf))

	out := make(Bus, 32)
	manOut := andBusWith(b, mant[:23], keep)
	copy(out[0:23], manOut)
	for i := 0; i < 8; i++ {
		out[23+i] = b.Or(b.And(exp10[i], keep), inf)
	}
	out[31] = b.And(sign, nz)
	return out
}

// NewFPAdder builds the gate-level IEEE-754 single-precision adder FU
// (truncating, flush-to-zero; see internal/fpref for the exact contract).
// Inputs a and b are 32-bit encodings; the output is the 32-bit sum
// encoding. The datapath is the textbook one: magnitude compare and swap,
// exponent-difference alignment through a barrel shifter, 25-bit
// add/subtract, leading-zero normalization, pack.
func NewFPAdder() *netlist.Netlist {
	b := netlist.NewBuilder("fp_add32")
	ain := Bus(b.InputBus("a", 32))
	bin := Bus(b.InputBus("b", 32))

	sa, ea, ma, magA := fpFields(b, ain)
	sb, eb, mb, magB := fpFields(b, bin)

	// Operand ordering: swap when |b| > |a| (ties keep a large).
	swap := b.Not(geBus(b, magA, magB))
	sL := b.Mux(sa, sb, swap)
	sS := b.Mux(sb, sa, swap)
	eL := muxBus(b, ea, eb, swap)
	eS := muxBus(b, eb, ea, swap)
	mL := muxBus(b, ma, mb, swap)
	mS := muxBus(b, mb, ma, swap)

	// Alignment: shift the small mantissa right by the exponent gap.
	diff, _ := rippleSub(b, eL, eS) // 8 bits, non-negative by ordering
	aligned := shiftRightVar(b, mS, diff[0:5])
	big := orTree(b, diff[5:8]) // gap >= 32: contribution vanishes
	aligned = andBusWith(b, aligned, b.Not(big))

	// Effective operation: add when signs agree, else subtract (the large
	// operand dominates, so the difference is non-negative).
	op := b.Xor(sL, sS)
	mLx := zeroExtend(b, mL, 25)
	mSx := xorBusWith(b, zeroExtend(b, aligned, 25), op)
	r, _ := rippleAdd(b, mLx, mSx, op)

	nz := orTree(b, r)

	// Normalization: one-position right shift on mantissa overflow, or a
	// leading-zero-count left shift otherwise.
	ovf := r[24]
	mantOvf := Bus(r[1:25])
	r24 := Bus(r[0:24])
	padded := make(Bus, 32) // lzc wants a power-of-two width; pad LSBs
	for i := 0; i < 8; i++ {
		padded[i] = b.Const0()
	}
	copy(padded[8:], r24)
	lz := lzc(b, padded) // 5 bits; <= 23 whenever r24 is nonzero
	mantNorm := shiftLeftVar(b, r24, lz)
	mant := muxBus(b, mantNorm, mantOvf, ovf)

	eL10 := zeroExtend(b, eL, 10)
	eOvf, _ := addConst(b, eL10, 1)
	eNorm, _ := rippleSub(b, eL10, zeroExtend(b, lz, 10))
	exp10 := muxBus(b, eNorm, eOvf, ovf)

	b.NamedOutputBus("y", fpPack(b, sL, exp10, mant, nz))
	return b.MustBuild()
}
