// Package circuits generates the gate-level netlists of the functional
// units the paper models — 32-bit integer adder and multiplier, and
// IEEE-754 single-precision floating-point adder and multiplier — plus the
// generic datapath blocks they are assembled from (ripple/lookahead
// adders, array multipliers, barrel shifters, leading-zero counters,
// comparators).
//
// The generators replace the paper's FloPoCo-RTL + Synopsys-synthesis
// flow: what matters to TEVoT is that each unit is a real gate network
// whose sensitized longest path depends on the applied input pair, which
// these structures exhibit strongly (carry chains, partial-product
// ripples, shifter cascades).
package circuits

import (
	"tevot/internal/netlist"
)

// Bus is a little-endian (LSB-first) group of nets.
type Bus []netlist.NetID

// halfAdder returns (sum, carry) = a + b.
func halfAdder(b *netlist.Builder, x, y netlist.NetID) (sum, carry netlist.NetID) {
	return b.Xor(x, y), b.And(x, y)
}

// fullAdder returns (sum, carry) = x + y + cin using the canonical
// 5-gate decomposition.
func fullAdder(b *netlist.Builder, x, y, cin netlist.NetID) (sum, carry netlist.NetID) {
	p := b.Xor(x, y)
	sum = b.Xor(p, cin)
	g := b.And(x, y)
	t := b.And(p, cin)
	carry = b.Or(g, t)
	return sum, carry
}

// rippleAdd returns sum = x + y + cin as a bus of len(x) bits plus the
// carry out. x and y must have equal widths. Pass b.Const0() for no
// carry in.
func rippleAdd(b *netlist.Builder, x, y Bus, cin netlist.NetID) (sum Bus, cout netlist.NetID) {
	if len(x) != len(y) {
		panic("circuits: rippleAdd width mismatch")
	}
	sum = make(Bus, len(x))
	c := cin
	for i := range x {
		sum[i], c = fullAdder(b, x[i], y[i], c)
	}
	return sum, c
}

// rippleSub returns diff = x − y (two's complement) plus a "no borrow"
// flag: geq is true exactly when x >= y as unsigned integers.
func rippleSub(b *netlist.Builder, x, y Bus) (diff Bus, geq netlist.NetID) {
	ny := make(Bus, len(y))
	for i := range y {
		ny[i] = b.Not(y[i])
	}
	return rippleAdd(b, x, ny, b.Const1())
}

// geBus returns a net that is true when x >= y (unsigned). Equal widths
// required.
func geBus(b *netlist.Builder, x, y Bus) netlist.NetID {
	_, geq := rippleSub(b, x, y)
	return geq
}

// constBus materializes the constant k as a width-bit bus of tie nets.
func constBus(b *netlist.Builder, k uint64, width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		if k>>i&1 == 1 {
			bus[i] = b.Const1()
		} else {
			bus[i] = b.Const0()
		}
	}
	return bus
}

// addConst returns x + k (mod 2^len(x)) and the carry out.
func addConst(b *netlist.Builder, x Bus, k uint64) (Bus, netlist.NetID) {
	return rippleAdd(b, x, constBus(b, k, len(x)), b.Const0())
}

// geConst returns a net that is true when x >= k (unsigned). k must fit
// in len(x) bits.
func geConst(b *netlist.Builder, x Bus, k uint64) netlist.NetID {
	if len(x) < 64 && k >= 1<<uint(len(x)) {
		panic("circuits: geConst constant wider than bus")
	}
	return geBus(b, x, constBus(b, k, len(x)))
}

// zeroExtend returns x widened to width bits with constant-zero nets.
func zeroExtend(b *netlist.Builder, x Bus, width int) Bus {
	if len(x) >= width {
		return x[:width]
	}
	out := make(Bus, width)
	copy(out, x)
	for i := len(x); i < width; i++ {
		out[i] = b.Const0()
	}
	return out
}

// andRow masks every bit of x with bit: the partial-product row of an
// array multiplier.
func andRow(b *netlist.Builder, x Bus, bit netlist.NetID) Bus {
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.And(x[i], bit)
	}
	return out
}

// muxBus returns sel ? d1 : d0, bit by bit. Equal widths required.
func muxBus(b *netlist.Builder, d0, d1 Bus, sel netlist.NetID) Bus {
	if len(d0) != len(d1) {
		panic("circuits: muxBus width mismatch")
	}
	out := make(Bus, len(d0))
	for i := range d0 {
		out[i] = b.Mux(d0[i], d1[i], sel)
	}
	return out
}

// orTree reduces a bus to a single OR over all bits using a balanced tree.
func orTree(b *netlist.Builder, x Bus) netlist.NetID {
	switch len(x) {
	case 0:
		return b.Const0()
	case 1:
		return x[0]
	}
	mid := len(x) / 2
	return b.Or(orTree(b, x[:mid]), orTree(b, x[mid:]))
}

// isZero returns a net that is true when every bit of x is 0.
func isZero(b *netlist.Builder, x Bus) netlist.NetID {
	return b.Not(orTree(b, x))
}

// shiftRightVar returns x >> amt (logical) where amt is a bus of select
// bits; stage k shifts by 2^k when amt[k] is set. Bits shifted in are 0.
func shiftRightVar(b *netlist.Builder, x Bus, amt Bus) Bus {
	cur := x
	for k := 0; k < len(amt); k++ {
		sh := 1 << k
		next := make(Bus, len(cur))
		for i := range cur {
			var shifted netlist.NetID
			if i+sh < len(cur) {
				shifted = cur[i+sh]
			} else {
				shifted = b.Const0()
			}
			next[i] = b.Mux(cur[i], shifted, amt[k])
		}
		cur = next
	}
	return cur
}

// shiftLeftVar returns x << amt (logical), same staging as shiftRightVar.
func shiftLeftVar(b *netlist.Builder, x Bus, amt Bus) Bus {
	cur := x
	for k := 0; k < len(amt); k++ {
		sh := 1 << k
		next := make(Bus, len(cur))
		for i := range cur {
			var shifted netlist.NetID
			if i-sh >= 0 {
				shifted = cur[i-sh]
			} else {
				shifted = b.Const0()
			}
			next[i] = b.Mux(cur[i], shifted, amt[k])
		}
		cur = next
	}
	return cur
}

// lzc returns the leading-zero count of x (counting from the MSB, i.e.
// x[len(x)-1] downwards) as a bus of countBits(len(x)) bits. The width of
// x must be a power of two; callers pad with constant zeros at the LSB
// end, which adds exactly the pad width to the count. When x is all
// zeros the count output is len(x)-1 concatenated behavior of the
// recursion (callers must guard with an isZero check).
func lzc(b *netlist.Builder, x Bus) Bus {
	n := len(x)
	if n&(n-1) != 0 {
		panic("circuits: lzc width must be a power of two")
	}
	if n == 2 {
		// count = 1 bit: 1 when MSB is 0.
		return Bus{b.Not(x[1])}
	}
	half := n / 2
	lo, hi := x[:half], x[half:]
	hiZero := isZero(b, hi)
	cntHi := lzc(b, hi)
	cntLo := lzc(b, lo)
	// If hi is all zero: count = half + lzc(lo) → MSB of count is 1 and the
	// low bits come from lo; otherwise count = lzc(hi) with MSB 0.
	low := muxBus(b, cntHi, cntLo, hiZero)
	return append(low, hiZero)
}

// orBus returns the bitwise OR of two equal-width buses.
func orBus(b *netlist.Builder, x, y Bus) Bus {
	if len(x) != len(y) {
		panic("circuits: orBus width mismatch")
	}
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.Or(x[i], y[i])
	}
	return out
}

// andBusWith masks every bit of x with m.
func andBusWith(b *netlist.Builder, x Bus, m netlist.NetID) Bus {
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.And(x[i], m)
	}
	return out
}

// xorBusWith XORs every bit of x with m (conditional inversion).
func xorBusWith(b *netlist.Builder, x Bus, m netlist.NetID) Bus {
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.Xor(x[i], m)
	}
	return out
}
