package circuits

import (
	"fmt"

	"tevot/internal/netlist"
)

// mulRows builds the ripple-carry array-multiplier core for x × y and
// returns the product bus. When outWidth < len(x)+len(y) the array is
// truncated: columns at and above outWidth are never generated, exactly
// as a synthesized "lower half" multiplier would be.
//
// The structure is the classic row-ripple array: a running sum S holds
// product bits [i, i+len(x)) after consuming row i; its low bit is final
// and retired to the product at each step.
func mulRows(b *netlist.Builder, x, y Bus, outWidth int) Bus {
	full := len(x) + len(y)
	if outWidth > full {
		panic("circuits: multiplier output wider than full product")
	}
	truncated := outWidth < full
	if truncated && (outWidth != len(x) || outWidth != len(y)) {
		// The truncated row scheme retires one product bit per row and
		// drops carries only at the outWidth column; that bookkeeping is
		// only valid for square low-half multipliers.
		panic("circuits: truncated multiplier requires outWidth == len(x) == len(y)")
	}
	if !truncated && len(y) < 2 {
		panic("circuits: full multiplier requires at least 2 multiplier bits")
	}
	prod := make(Bus, outWidth)

	// Row 0.
	w0 := len(x)
	if truncated && w0 > outWidth {
		w0 = outWidth
	}
	s := andRow(b, x[:w0], y[0])
	prod[0] = s[0]

	var lastCout netlist.NetID
	rows := len(y)
	if truncated && rows > outWidth {
		rows = outWidth
	}
	for i := 1; i < rows; i++ {
		var w int // row adder width
		if truncated {
			w = outWidth - i
			if w > len(x) {
				w = len(x)
			}
		} else {
			w = len(x)
		}
		row := andRow(b, x[:w], y[i])
		// Shifted previous sum: drop the retired low bit; extend with the
		// previous carry (full arrays) or a constant zero (truncated top).
		var t Bus
		if truncated {
			t = zeroExtend(b, s[1:], w)
		} else {
			t = make(Bus, w)
			copy(t, s[1:])
			if i == 1 {
				t[w-1] = b.Const0()
			} else {
				t[w-1] = lastCout
			}
		}
		s, lastCout = rippleAdd(b, t, row, b.Const0())
		prod[i] = s[0]
	}
	if !truncated {
		copy(prod[rows:], s[1:])
		prod[full-1] = lastCout
	}
	return prod
}

// NewTruncMultiplier builds a width×width multiplier FU producing the low
// width bits of the product (C-language integer multiply semantics).
func NewTruncMultiplier(width int) *netlist.Netlist {
	if width < 2 {
		panic("circuits: multiplier width must be at least 2")
	}
	b := netlist.NewBuilder(fmt.Sprintf("int_mul%d_array", width))
	a := Bus(b.InputBus("a", width))
	c := Bus(b.InputBus("b", width))
	p := mulRows(b, a, c, width)
	b.NamedOutputBus("p", p)
	return b.MustBuild()
}

// NewFullMultiplier builds a width×width multiplier producing the full
// 2·width-bit product. It is the mantissa core of the FP multiplier and is
// exported for direct testing.
func NewFullMultiplier(width int) *netlist.Netlist {
	if width < 2 {
		panic("circuits: multiplier width must be at least 2")
	}
	b := netlist.NewBuilder(fmt.Sprintf("int_mulfull%d_array", width))
	a := Bus(b.InputBus("a", width))
	c := Bus(b.InputBus("b", width))
	p := mulRows(b, a, c, 2*width)
	b.NamedOutputBus("p", p)
	return b.MustBuild()
}
