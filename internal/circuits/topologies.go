package circuits

import (
	"fmt"

	"tevot/internal/netlist"
)

// This file provides alternative datapath topologies for the same
// arithmetic functions. They are not used by the default FU registry —
// the paper models one implementation per unit — but they power the
// topology ablations: how the shape of the delay distribution (and so
// the value of workload-aware error modeling) depends on circuit
// structure.

// NewCarrySelectAdder builds a width-bit carry-select adder with the
// given block size: each block computes both carry-in cases and selects
// with the incoming carry, cutting the worst-case path from O(width) to
// O(width/block + block).
func NewCarrySelectAdder(width, block int) *netlist.Netlist {
	if width < 1 || block < 1 {
		panic("circuits: invalid carry-select geometry")
	}
	b := netlist.NewBuilder(fmt.Sprintf("int_add%d_csel%d", width, block))
	a := Bus(b.InputBus("a", width))
	c := Bus(b.InputBus("b", width))
	sum := make(Bus, width)

	carry := b.Const0()
	for lo := 0; lo < width; lo += block {
		hi := lo + block
		if hi > width {
			hi = width
		}
		aBlk, bBlk := a[lo:hi], c[lo:hi]
		if lo == 0 {
			// First block: the carry-in is known (0), no selection.
			s, cout := rippleAdd(b, aBlk, bBlk, carry)
			copy(sum[lo:hi], s)
			carry = cout
			continue
		}
		s0, c0 := rippleAdd(b, aBlk, bBlk, b.Const0())
		s1, c1 := rippleAdd(b, aBlk, bBlk, b.Const1())
		copy(sum[lo:hi], muxBus(b, s0, s1, carry))
		carry = b.Mux(c0, c1, carry)
	}
	b.NamedOutputBus("s", sum)
	return b.MustBuild()
}

// NewWallaceMultiplier builds a width×width multiplier producing the
// full 2·width-bit product through a Wallace tree: the partial-product
// matrix is reduced with 3:2 compressors (full adders) until every
// column holds at most two bits, then a single ripple adder merges the
// two rows. Depth is O(log width) in the reduction plus the final
// carry chain — a very different glitch and delay profile from the
// row-ripple array in NewFullMultiplier.
func NewWallaceMultiplier(width int) *netlist.Netlist {
	if width < 2 {
		panic("circuits: multiplier width must be at least 2")
	}
	b := netlist.NewBuilder(fmt.Sprintf("int_mulfull%d_wallace", width))
	a := Bus(b.InputBus("a", width))
	c := Bus(b.InputBus("b", width))
	out := 2 * width

	// Partial-product matrix: columns[k] holds the bits of weight 2^k.
	columns := make([][]netlist.NetID, out)
	for i := 0; i < width; i++ {
		for j := 0; j < width; j++ {
			k := i + j
			columns[k] = append(columns[k], b.And(a[i], c[j]))
		}
	}

	// Reduce with 3:2 compressors (full adders) until every column has
	// at most 2 bits. Each pass strictly shrinks any column with three
	// or more bits, so the loop terminates.
	for {
		done := true
		next := make([][]netlist.NetID, out)
		for k := 0; k < out; k++ {
			col := columns[k]
			for len(col) >= 3 {
				s, cy := fullAdder(b, col[0], col[1], col[2])
				col = col[3:]
				next[k] = append(next[k], s)
				if k+1 < out {
					next[k+1] = append(next[k+1], cy)
				}
			}
			next[k] = append(next[k], col...)
		}
		columns = next
		for k := 0; k < out; k++ {
			if len(columns[k]) > 2 {
				done = false
				break
			}
		}
		if done {
			break
		}
	}

	// Final carry-propagate add of the two remaining rows.
	row0 := make(Bus, out)
	row1 := make(Bus, out)
	for k := 0; k < out; k++ {
		switch len(columns[k]) {
		case 0:
			row0[k], row1[k] = b.Const0(), b.Const0()
		case 1:
			row0[k], row1[k] = columns[k][0], b.Const0()
		case 2:
			row0[k], row1[k] = columns[k][0], columns[k][1]
		default:
			panic("circuits: wallace reduction left a column above 2 bits")
		}
	}
	sum, _ := rippleAdd(b, row0, row1, b.Const0())
	b.NamedOutputBus("p", sum)
	return b.MustBuild()
}
