package circuits

import (
	"tevot/internal/netlist"
)

// NewFPMultiplier builds the gate-level IEEE-754 single-precision
// multiplier FU (truncating, flush-to-zero; see internal/fpref for the
// exact contract). The mantissa core is a full 24×24 ripple-carry array
// multiplier; the exponent path is 10-bit two's-complement arithmetic
// with flush/saturate handling shared with the adder via fpPack.
func NewFPMultiplier() *netlist.Netlist {
	b := netlist.NewBuilder("fp_mul32")
	ain := Bus(b.InputBus("a", 32))
	bin := Bus(b.InputBus("b", 32))

	sa, ea, ma, _ := fpFields(b, ain)
	sb, eb, mb, _ := fpFields(b, bin)
	za := b.Not(ma[23]) // hidden bit clear <=> operand flushed to zero
	zb := b.Not(mb[23])

	sign := b.Xor(sa, sb)

	// 48-bit mantissa product; bit 47 or 46 is set for nonzero operands.
	p := mulRows(b, ma, mb, 48)
	top := p[47]
	mant := muxBus(b, Bus(p[23:47]), Bus(p[24:48]), top)

	// exponent = ea + eb - 127 + top, in 10-bit two's complement
	// (adding 897 ≡ -127 mod 1024).
	eSum, _ := rippleAdd(b, zeroExtend(b, ea, 10), zeroExtend(b, eb, 10), b.Const0())
	eBiased, _ := addConst(b, eSum, 897)
	exp10, _ := rippleAdd(b, eBiased, zeroExtend(b, Bus{top}, 10), b.Const0())

	// A zero operand forces a signed-zero result regardless of exponent.
	nz := b.Not(b.Or(za, zb))
	out := fpPack(b, sign, exp10, mant, nz)
	// fpPack clears the sign for nz == 0, but multiplication of signed
	// zeros keeps the XOR sign (e.g. -x * 0 = -0): restore it.
	out[31] = sign
	b.NamedOutputBus("y", out)
	return b.MustBuild()
}
