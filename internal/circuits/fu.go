package circuits

import (
	"fmt"
	"math"

	"tevot/internal/fpref"
	"tevot/internal/netlist"
)

// FU identifies one of the four functional units the paper models.
type FU int

const (
	IntAdd32 FU = iota // 32-bit integer adder (ripple-carry)
	IntMul32           // 32-bit integer multiplier (truncated array)
	FPAdd32            // IEEE-754 single-precision adder
	FPMul32            // IEEE-754 single-precision multiplier
)

// AllFUs lists every functional unit, in the paper's reporting order.
var AllFUs = []FU{IntAdd32, FPAdd32, IntMul32, FPMul32}

var fuNames = map[FU]string{
	IntAdd32: "INT_ADD",
	IntMul32: "INT_MUL",
	FPAdd32:  "FP_ADD",
	FPMul32:  "FP_MUL",
}

func (f FU) String() string {
	if s, ok := fuNames[f]; ok {
		return s
	}
	return fmt.Sprintf("FU(%d)", int(f))
}

// ParseFU maps a name like "INT_ADD" (as printed by String) back to a FU.
func ParseFU(s string) (FU, error) {
	for f, name := range fuNames {
		if name == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("circuits: unknown functional unit %q", s)
}

// Build generates the gate-level netlist of the functional unit. Every FU
// has two 32-bit operand buses (64 primary inputs: a[0..31] then b[0..31],
// LSB first) and one 32-bit result bus.
func (f FU) Build() (*netlist.Netlist, error) {
	switch f {
	case IntAdd32:
		return NewRippleAdder(32), nil
	case IntMul32:
		return NewTruncMultiplier(32), nil
	case FPAdd32:
		return NewFPAdder(), nil
	case FPMul32:
		return NewFPMultiplier(), nil
	}
	return nil, fmt.Errorf("circuits: unknown functional unit %d", int(f))
}

// Golden computes the FU's reference result in software. For the FP units
// this is the bit-exact truncating model from internal/fpref, not Go
// float32 arithmetic.
func (f FU) Golden(a, b uint32) uint32 {
	switch f {
	case IntAdd32:
		return a + b
	case IntMul32:
		return a * b
	case FPAdd32:
		return fpref.Add(a, b)
	case FPMul32:
		return fpref.Mul(a, b)
	}
	panic("circuits: unknown functional unit")
}

// IsFloat reports whether the FU interprets its operands as IEEE-754
// single-precision encodings.
func (f FU) IsFloat() bool { return f == FPAdd32 || f == FPMul32 }

// OperandBits is the total number of primary inputs of every FU.
const OperandBits = 64

// ResultBits is the number of primary outputs of every FU.
const ResultBits = 32

// EncodeOperands expands the operand pair into the 64 primary-input
// values: a's bits LSB-first, then b's.
func EncodeOperands(a, b uint32) []bool {
	out := make([]bool, OperandBits)
	EncodeOperandsInto(a, b, out)
	return out
}

// EncodeOperandsInto is EncodeOperands into a caller-provided slice of
// length OperandBits.
func EncodeOperandsInto(a, b uint32, dst []bool) {
	for i := 0; i < 32; i++ {
		dst[i] = a>>i&1 == 1
		dst[32+i] = b>>i&1 == 1
	}
}

// DecodeResult packs 32 output values (LSB first) into a uint32.
func DecodeResult(bits []bool) uint32 {
	var v uint32
	for i := 0; i < 32; i++ {
		if bits[i] {
			v |= 1 << i
		}
	}
	return v
}

// Float32FromBits converts an FU result encoding to a float32 (plain
// IEEE-754 reinterpretation).
func Float32FromBits(v uint32) float32 { return math.Float32frombits(v) }

// BitsFromFloat32 converts a float32 operand to its FU encoding.
func BitsFromFloat32(f float32) uint32 { return math.Float32bits(f) }
