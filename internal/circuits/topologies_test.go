package circuits

import (
	"testing"
	"testing/quick"
)

func TestCarrySelectAdderExhaustive6(t *testing.T) {
	nl := NewCarrySelectAdder(6, 2)
	for a := uint64(0); a < 64; a++ {
		for b := uint64(0); b < 64; b++ {
			if got, want := evalN(t, nl, 6, a, b), (a+b)&0x3f; got != want {
				t.Fatalf("csel6: %d+%d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestCarrySelectAdder32Random(t *testing.T) {
	nl := NewCarrySelectAdder(32, 4)
	f := func(a, b uint32) bool {
		in := EncodeOperands(a, b)
		out, err := nl.Eval(in)
		if err != nil {
			return false
		}
		return DecodeResult(out) == a+b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWallaceMultiplierExhaustive5(t *testing.T) {
	nl := NewWallaceMultiplier(5)
	for a := uint64(0); a < 32; a++ {
		for b := uint64(0); b < 32; b++ {
			if got, want := evalN(t, nl, 5, a, b), a*b; got != want {
				t.Fatalf("wallace5: %d*%d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestWallaceMultiplier16Random(t *testing.T) {
	nl := NewWallaceMultiplier(16)
	f := func(a, b uint16) bool {
		got := evalN(t, nl, 16, uint64(a), uint64(b))
		return got == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWallaceShallowerThanArray: the whole point of the tree topology.
func TestWallaceShallowerThanArray(t *testing.T) {
	array := NewFullMultiplier(16)
	wallace := NewWallaceMultiplier(16)
	da, err := array.Depth()
	if err != nil {
		t.Fatal(err)
	}
	dw, err := wallace.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if dw >= da {
		t.Errorf("Wallace depth (%d) should be below array depth (%d)", dw, da)
	}
	t.Logf("16x16 full product: array depth %d, wallace depth %d", da, dw)
}

// TestCarrySelectShallowerThanRipple mirrors the adder topology claim.
func TestCarrySelectShallowerThanRipple(t *testing.T) {
	rca := NewRippleAdder(32)
	csel := NewCarrySelectAdder(32, 4)
	dr, err := rca.Depth()
	if err != nil {
		t.Fatal(err)
	}
	dc, err := csel.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if dc >= dr {
		t.Errorf("carry-select depth (%d) should be below ripple depth (%d)", dc, dr)
	}
}
