package circuits

import (
	"fmt"

	"tevot/internal/netlist"
)

// NewRippleAdder builds a width-bit ripple-carry adder FU: inputs a and b,
// output s = a + b (mod 2^width). The carry chain makes the sensitized
// path length strongly input-dependent — from a single full-adder delay up
// to the full chain — which is exactly the dynamic-delay behaviour TEVoT
// is built to learn.
func NewRippleAdder(width int) *netlist.Netlist {
	if width < 1 {
		panic("circuits: adder width must be positive")
	}
	b := netlist.NewBuilder(fmt.Sprintf("int_add%d_rca", width))
	a := Bus(b.InputBus("a", width))
	c := Bus(b.InputBus("b", width))
	sum, _ := rippleAdd(b, a, c, b.Const0())
	b.NamedOutputBus("s", sum)
	return b.MustBuild()
}

// NewCLAAdder builds a width-bit adder from 4-bit carry-lookahead groups
// with ripple between groups. It computes the same function as
// NewRippleAdder but with a much shorter worst-case carry path; it exists
// for the path-topology ablation (how much of TEVoT's advantage comes
// from long data-dependent chains).
func NewCLAAdder(width int) *netlist.Netlist {
	if width < 1 {
		panic("circuits: adder width must be positive")
	}
	b := netlist.NewBuilder(fmt.Sprintf("int_add%d_cla", width))
	a := Bus(b.InputBus("a", width))
	c := Bus(b.InputBus("b", width))
	sum := make(Bus, width)

	carry := b.Const0()
	for lo := 0; lo < width; lo += 4 {
		hi := lo + 4
		if hi > width {
			hi = width
		}
		n := hi - lo
		p := make(Bus, n) // propagate
		g := make(Bus, n) // generate
		for i := 0; i < n; i++ {
			p[i] = b.Xor(a[lo+i], c[lo+i])
			g[i] = b.And(a[lo+i], c[lo+i])
		}
		// Lookahead carries within the group, as flat sum-of-products:
		// c1 = g0 + p0·c0
		// c2 = g1 + p1·g0 + p1·p0·c0
		// c3 = g2 + p2·g1 + p2·p1·g0 + p2·p1·p0·c0 ...
		// prefix[j][i] = p[i]·p[i+1]·…·p[j-1] is built incrementally so the
		// whole group has constant logic depth instead of a ripple chain.
		cin := carry
		groupC := make(Bus, n+1)
		groupC[0] = cin
		for i := 1; i <= n; i++ {
			// Terms for c_i: g_{i-1}, and for each j < i-1 the product
			// p_{i-1}…p_{j+1}·g_j, plus p_{i-1}…p_0·cin.
			terms := Bus{g[i-1]}
			prod := p[i-1]
			for j := i - 2; j >= 0; j-- {
				terms = append(terms, b.And(prod, g[j]))
				prod = b.And(prod, p[j])
			}
			terms = append(terms, b.And(prod, cin))
			groupC[i] = orTree(b, terms)
		}
		for i := 0; i < n; i++ {
			sum[lo+i] = b.Xor(p[i], groupC[i])
		}
		carry = groupC[n]
	}
	b.NamedOutputBus("s", sum)
	return b.MustBuild()
}
