package circuits

import (
	"math/rand"
	"testing"
)

// BenchmarkBuild measures netlist generation cost per functional unit.
func BenchmarkBuild(b *testing.B) {
	for _, fu := range AllFUs {
		b.Run(fu.String(), func(b *testing.B) {
			var gates int
			for i := 0; i < b.N; i++ {
				nl, err := fu.Build()
				if err != nil {
					b.Fatal(err)
				}
				gates = nl.NumGates()
			}
			b.ReportMetric(float64(gates), "gates")
		})
	}
}

// BenchmarkEval measures zero-delay functional evaluation per FU.
func BenchmarkEval(b *testing.B) {
	for _, fu := range AllFUs {
		b.Run(fu.String(), func(b *testing.B) {
			nl, err := fu.Build()
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			in := EncodeOperands(rng.Uint32(), rng.Uint32())
			vals := make([]bool, nl.NumNets())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := nl.EvalInto(in, vals); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
