package netlist

import (
	"math/rand"
	"testing"

	"tevot/internal/cells"
)

func evalBits(t *testing.T, nl *Netlist, in []bool) []bool {
	t.Helper()
	out, err := nl.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSimplifyFoldsConstantChain(t *testing.T) {
	b := NewBuilder("constchain")
	x := b.Input("x")
	// AND(x, 1) -> x; OR(that, 0) -> x; XOR(that, 1) -> NOT x.
	n := b.And(x, b.Const1())
	n = b.Or(n, b.Const0())
	n = b.Xor(n, b.Const1())
	b.Output(n)
	nl := b.MustBuild()

	out, stats, err := Simplify(nl)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumGates() != 1 {
		t.Fatalf("simplified to %d gates, want 1 (a single inverter)", out.NumGates())
	}
	if out.Gates[0].Kind != cells.Inv {
		t.Errorf("remaining gate is %v, want INV", out.Gates[0].Kind)
	}
	if stats.Folded != 2 {
		t.Errorf("folded %d gates, want 2", stats.Folded)
	}
	for _, v := range []bool{false, true} {
		if got := evalBits(t, out, []bool{v})[0]; got != !v {
			t.Errorf("f(%v) = %v, want %v", v, got, !v)
		}
	}
}

func TestSimplifyRemovesDeadLogic(t *testing.T) {
	b := NewBuilder("dead")
	x := b.Input("x")
	y := b.Input("y")
	live := b.And(x, y)
	b.Xor(x, y) // dead: never reaches an output
	b.Or(live, x)
	b.Output(live)
	nl := b.MustBuild()
	out, stats, err := Simplify(nl)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumGates() != 1 {
		t.Fatalf("got %d gates, want 1", out.NumGates())
	}
	if stats.Dead != 2 {
		t.Errorf("dead count = %d, want 2", stats.Dead)
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	nl, err := Random(RandomOptions{Inputs: 6, Gates: 60, Outputs: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	once, _, err := Simplify(nl)
	if err != nil {
		t.Fatal(err)
	}
	twice, stats, err := Simplify(once)
	if err != nil {
		t.Fatal(err)
	}
	if twice.NumGates() != once.NumGates() {
		t.Errorf("second pass changed gate count %d -> %d (folded %d, dead %d)",
			once.NumGates(), twice.NumGates(), stats.Folded, stats.Dead)
	}
}

// TestSimplifyPreservesFunction fuzzes: for random circuits with
// injected constants and buffers, the simplified netlist computes the
// same outputs on random vectors and never has more gates.
func TestSimplifyPreservesFunction(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		base, err := Random(RandomOptions{Inputs: 5, Gates: 40, Outputs: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		// Wrap with constant-heavy logic to give the folder real work:
		// out'_i = MUX(out_i, 0, const0) = out_i, plus a buffer.
		b := NewBuilder("wrapped")
		ins := make([]NetID, len(base.PrimaryInputs))
		for i, pi := range base.PrimaryInputs {
			ins[i] = b.Input(base.Nets[pi].Name)
		}
		// Re-emit the base circuit gate by gate.
		remap := map[NetID]NetID{}
		for i, pi := range base.PrimaryInputs {
			remap[pi] = ins[i]
		}
		if base.Const0 >= 0 {
			remap[base.Const0] = b.Const0()
		}
		if base.Const1 >= 0 {
			remap[base.Const1] = b.Const1()
		}
		order, err := base.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		for _, gi := range order {
			g := &base.Gates[gi]
			mapped := make([]NetID, len(g.Inputs))
			for j, in := range g.Inputs {
				mapped[j] = remap[in]
			}
			remap[g.Output] = b.Gate(g.Kind, mapped...)
		}
		for _, po := range base.PrimaryOutputs {
			wrapped := b.Mux(remap[po], b.Const0(), b.Const0())
			wrapped = b.Buf(wrapped)
			b.Output(wrapped)
		}
		nl := b.MustBuild()

		simplified, stats, err := Simplify(nl)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if simplified.NumGates() > nl.NumGates() {
			t.Fatalf("seed %d: simplify grew the netlist %d -> %d",
				seed, nl.NumGates(), simplified.NumGates())
		}
		if stats.Folded == 0 {
			t.Errorf("seed %d: wrapper constants were not folded", seed)
		}
		rng := rand.New(rand.NewSource(seed + 500))
		for trial := 0; trial < 40; trial++ {
			in := make([]bool, 5)
			for j := range in {
				in[j] = rng.Intn(2) == 1
			}
			want := evalBits(t, nl, in)
			got := evalBits(t, simplified, in)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("seed %d trial %d: output %d differs after simplify", seed, trial, j)
				}
			}
		}
	}
}

func TestSimplifyConstantOutput(t *testing.T) {
	b := NewBuilder("allconst")
	x := b.Input("x")
	_ = x
	o := b.And(b.Const1(), b.Const0())
	b.Output(o)
	nl := b.MustBuild()
	out, _, err := Simplify(nl)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumGates() != 0 {
		t.Fatalf("constant circuit kept %d gates", out.NumGates())
	}
	if got := evalBits(t, out, []bool{true})[0]; got != false {
		t.Errorf("constant output = %v, want false", got)
	}
}
