package netlist

import (
	"testing"

	"tevot/internal/cells"
)

// TestCSRMatchesNetlist cross-checks the flattened view against the
// pointerful representation on a fleet of random circuits: every
// (gate, pin) edge appears exactly once under the net it reads, gate
// outputs and padded input pins line up, and edge lists are
// (gate, pin)-sorted so kernels iterating them are deterministic.
func TestCSRMatchesNetlist(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		nl, err := Random(RandomOptions{
			Inputs:  4 + int(seed%4),
			Gates:   15 + int(seed*11%50),
			Outputs: 1 + int(seed%3),
			Seed:    seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		c := nl.CSR()
		if nl.CSR() != c {
			t.Fatal("CSR not cached")
		}
		if got, want := len(c.FanoutStart), nl.NumNets()+1; got != want {
			t.Fatalf("FanoutStart has %d entries, want %d", got, want)
		}
		totalPins := 0
		for gi := range nl.Gates {
			g := &nl.Gates[gi]
			totalPins += len(g.Inputs)
			if c.GateOut[gi] != int32(g.Output) {
				t.Fatalf("gate %d: GateOut = %d, want %d", gi, c.GateOut[gi], g.Output)
			}
			for pin := 0; pin < PinsPerGate; pin++ {
				want := int32(-1)
				if pin < len(g.Inputs) {
					want = int32(g.Inputs[pin])
				}
				if got := c.GateIn[gi*PinsPerGate+pin]; got != want {
					t.Fatalf("gate %d pin %d: GateIn = %d, want %d", gi, pin, got, want)
				}
			}
		}
		if len(c.FanoutEdges) != totalPins {
			t.Fatalf("%d fanout edges, want %d", len(c.FanoutEdges), totalPins)
		}
		for ni := range nl.Nets {
			lo, hi := c.FanoutStart[ni], c.FanoutStart[ni+1]
			seen := make(map[int32]bool)
			for e := lo; e < hi; e++ {
				edge := c.FanoutEdges[e]
				if e > lo && edge <= c.FanoutEdges[e-1] {
					t.Fatalf("net %d: edges not (gate, pin)-sorted", ni)
				}
				if seen[edge] {
					t.Fatalf("net %d: duplicate edge %d", ni, edge)
				}
				seen[edge] = true
				g, pin := EdgeGate(edge), EdgePin(edge)
				if pin >= len(nl.Gates[g].Inputs) || nl.Gates[g].Inputs[pin] != NetID(ni) {
					t.Fatalf("net %d: edge says gate %d pin %d, but that pin reads net %v",
						ni, g, pin, nl.Gates[g].Inputs[pin])
				}
			}
			// Every occurrence of the net in every gate's pin list must
			// be covered by exactly one edge.
			occurrences := 0
			for gi := range nl.Gates {
				for _, in := range nl.Gates[gi].Inputs {
					if in == NetID(ni) {
						occurrences++
					}
				}
			}
			if occurrences != int(hi-lo) {
				t.Fatalf("net %d: %d pin occurrences but %d edges", ni, occurrences, hi-lo)
			}
		}
	}
}

// TestCSRSharedPinGate: a net feeding two pins of the same gate yields
// one edge per pin.
func TestCSRSharedPinGate(t *testing.T) {
	b := NewBuilder("shared")
	x := b.Input("x")
	o := b.Gate(cells.Xor2, x, x)
	b.Output(o)
	nl := b.MustBuild()
	c := nl.CSR()
	lo, hi := c.FanoutStart[x], c.FanoutStart[x+1]
	if hi-lo != 2 {
		t.Fatalf("net x has %d edges, want 2", hi-lo)
	}
	if EdgePin(c.FanoutEdges[lo]) != 0 || EdgePin(c.FanoutEdges[lo+1]) != 1 {
		t.Fatalf("edges carry pins (%d, %d), want (0, 1)",
			EdgePin(c.FanoutEdges[lo]), EdgePin(c.FanoutEdges[lo+1]))
	}
}
