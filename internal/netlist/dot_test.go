package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	b := NewBuilder("dotted")
	x := b.Input("x")
	y := b.Input("y")
	o := b.And(x, b.Not(y))
	b.Output(o)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nl.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"digraph \"dotted\"",
		"net_x", "net_y", // inputs
		"AND2", "INV", // gate labels
		"shape=oval, color=red", // an output marker
		"->",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT output missing %q:\n%s", want, s)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(s), "}") {
		t.Error("DOT output not closed")
	}
}
