package netlist

import (
	"fmt"

	"tevot/internal/cells"
)

// Builder incrementally constructs a Netlist. It is the API the circuit
// generators in internal/circuits use. Methods panic on structural misuse
// (wrong arity, unknown nets) because generator bugs are programming
// errors, not runtime conditions; Build performs a final Validate and
// returns an error for anything that slipped through.
type Builder struct {
	nl      *Netlist
	gateSeq int
}

// NewBuilder returns a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{nl: &Netlist{Name: name, Const0: -1, Const1: -1}}
}

// newNet appends a net and returns its id.
func (b *Builder) newNet(name string, driver GateID) NetID {
	id := NetID(len(b.nl.Nets))
	b.nl.Nets = append(b.nl.Nets, Net{Name: name, Driver: driver})
	return id
}

// Input declares a single-bit primary input and returns its net.
func (b *Builder) Input(name string) NetID {
	id := b.newNet(name, None)
	b.nl.PrimaryInputs = append(b.nl.PrimaryInputs, id)
	return id
}

// InputBus declares a width-bit primary input bus, least significant bit
// first, and returns its nets.
func (b *Builder) InputBus(name string, width int) []NetID {
	bus := make([]NetID, width)
	for i := range bus {
		bus[i] = b.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return bus
}

// Output marks a net as a primary output.
func (b *Builder) Output(id NetID) { b.nl.PrimaryOutputs = append(b.nl.PrimaryOutputs, id) }

// OutputBus marks all nets of a bus as primary outputs, LSB first.
func (b *Builder) OutputBus(bus []NetID) {
	for _, id := range bus {
		b.Output(id)
	}
}

// NameNet renames a net; used by generators to give output nets proper
// port names ("s[3]") instead of the driving gate's auto-generated one.
func (b *Builder) NameNet(id NetID, name string) {
	b.nl.Nets[id].Name = name
}

// NamedOutputBus renames each net of the bus to base[i] and marks it as
// a primary output.
func (b *Builder) NamedOutputBus(base string, bus []NetID) {
	for i, id := range bus {
		b.NameNet(id, fmt.Sprintf("%s[%d]", base, i))
	}
	b.OutputBus(bus)
}

// Const0 returns the constant-0 net, creating it on first use.
func (b *Builder) Const0() NetID {
	if b.nl.Const0 < 0 {
		b.nl.Const0 = b.newNet("tie0", None)
	}
	return b.nl.Const0
}

// Const1 returns the constant-1 net, creating it on first use.
func (b *Builder) Const1() NetID {
	if b.nl.Const1 < 0 {
		b.nl.Const1 = b.newNet("tie1", None)
	}
	return b.nl.Const1
}

// Gate instantiates a cell of the given kind reading the given input nets
// and returns its output net. The instance is named automatically
// ("u<N>_<kind>"); use NamedGate when a stable meaningful name matters
// (e.g. for SDF correlation in tests).
func (b *Builder) Gate(kind cells.Kind, inputs ...NetID) NetID {
	return b.NamedGate(fmt.Sprintf("u%d_%s", b.gateSeq, kind), kind, inputs...)
}

// NamedGate is Gate with an explicit instance name.
func (b *Builder) NamedGate(name string, kind cells.Kind, inputs ...NetID) NetID {
	if len(inputs) != kind.NumInputs() {
		panic(fmt.Sprintf("netlist: %s requires %d inputs, got %d", kind, kind.NumInputs(), len(inputs)))
	}
	for _, in := range inputs {
		if in < 0 || int(in) >= len(b.nl.Nets) {
			panic(fmt.Sprintf("netlist: gate %s reads undeclared net %d", name, in))
		}
	}
	gid := GateID(len(b.nl.Gates))
	b.gateSeq++
	out := b.newNet(name+"_out", gid)
	ins := make([]NetID, len(inputs))
	copy(ins, inputs)
	b.nl.Gates = append(b.nl.Gates, Gate{Name: name, Kind: kind, Inputs: ins, Output: out})
	for _, in := range ins {
		b.nl.Nets[in].Fanout = append(b.nl.Nets[in].Fanout, gid)
	}
	return out
}

// Convenience constructors for each cell kind.

func (b *Builder) Buf(a NetID) NetID         { return b.Gate(cells.Buf, a) }
func (b *Builder) Not(a NetID) NetID         { return b.Gate(cells.Inv, a) }
func (b *Builder) And(a, c NetID) NetID      { return b.Gate(cells.And2, a, c) }
func (b *Builder) Or(a, c NetID) NetID       { return b.Gate(cells.Or2, a, c) }
func (b *Builder) Nand(a, c NetID) NetID     { return b.Gate(cells.Nand2, a, c) }
func (b *Builder) Nor(a, c NetID) NetID      { return b.Gate(cells.Nor2, a, c) }
func (b *Builder) Xor(a, c NetID) NetID      { return b.Gate(cells.Xor2, a, c) }
func (b *Builder) Xnor(a, c NetID) NetID     { return b.Gate(cells.Xnor2, a, c) }
func (b *Builder) And3(a, c, d NetID) NetID  { return b.Gate(cells.And3, a, c, d) }
func (b *Builder) Or3(a, c, d NetID) NetID   { return b.Gate(cells.Or3, a, c, d) }
func (b *Builder) Nand3(a, c, d NetID) NetID { return b.Gate(cells.Nand3, a, c, d) }
func (b *Builder) Nor3(a, c, d NetID) NetID  { return b.Gate(cells.Nor3, a, c, d) }

// Mux returns sel ? d1 : d0.
func (b *Builder) Mux(d0, d1, sel NetID) NetID { return b.Gate(cells.Mux2, d0, d1, sel) }

// Build finalizes the netlist, validates it, and returns it. The Builder
// must not be used afterwards.
func (b *Builder) Build() (*Netlist, error) {
	nl := b.nl
	b.nl = nil
	if len(nl.PrimaryOutputs) == 0 {
		return nil, fmt.Errorf("netlist %q: no primary outputs declared", nl.Name)
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

// MustBuild is Build for generators whose construction is statically
// known-correct; it panics on error.
func (b *Builder) MustBuild() *Netlist {
	nl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return nl
}
