package netlist

import (
	"fmt"
	"math/rand"

	"tevot/internal/cells"
)

// RandomOptions sizes a randomly generated combinational circuit.
type RandomOptions struct {
	Inputs  int // primary inputs (>= 1)
	Gates   int // internal gates (>= 1)
	Outputs int // primary outputs (1 .. Gates)
	Seed    int64
}

// Random generates a random combinational DAG: each gate draws a random
// kind and reads randomly chosen earlier nets (so the result is acyclic
// by construction). It is the fuzzing substrate for the cross-checks
// between functional evaluation, event-driven simulation, and static
// timing analysis.
func Random(opts RandomOptions) (*Netlist, error) {
	if opts.Inputs < 1 || opts.Gates < 1 {
		return nil, fmt.Errorf("netlist: random circuit needs inputs and gates, got %+v", opts)
	}
	if opts.Outputs < 1 || opts.Outputs > opts.Gates {
		return nil, fmt.Errorf("netlist: random circuit outputs %d outside [1, %d]", opts.Outputs, opts.Gates)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	b := NewBuilder(fmt.Sprintf("random_%d", opts.Seed))

	nets := make([]NetID, 0, opts.Inputs+opts.Gates)
	for i := 0; i < opts.Inputs; i++ {
		nets = append(nets, b.Input(fmt.Sprintf("in[%d]", i)))
	}
	kinds := []cells.Kind{
		cells.Buf, cells.Inv, cells.And2, cells.Or2, cells.Nand2,
		cells.Nor2, cells.Xor2, cells.Xnor2, cells.And3, cells.Or3,
		cells.Nand3, cells.Nor3, cells.Mux2,
	}
	gateOuts := make([]NetID, 0, opts.Gates)
	for g := 0; g < opts.Gates; g++ {
		kind := kinds[rng.Intn(len(kinds))]
		ins := make([]NetID, kind.NumInputs())
		for i := range ins {
			// Bias toward recent nets so the circuit gets deep, not flat.
			pick := len(nets) - 1 - rng.Intn(min(len(nets), 8))
			ins[i] = nets[pick]
		}
		out := b.Gate(kind, ins...)
		nets = append(nets, out)
		gateOuts = append(gateOuts, out)
	}
	// Mark the last gates as outputs (they have the deepest logic).
	for _, out := range gateOuts[len(gateOuts)-opts.Outputs:] {
		b.Output(out)
	}
	return b.Build()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
