// Package netlist defines the gate-level circuit representation shared by
// the whole substrate: a directed graph of primitive cells and nets, a
// builder API used by the circuit generators, topological levelization,
// and zero-delay functional evaluation.
//
// The representation is deliberately flat — one combinational cloud
// between an input register bank and an output register bank — because
// that is exactly the shape of the functional units the paper models: the
// sequential elements only define the sampling instant; all timing
// behaviour lives in the combinational cloud.
package netlist

import (
	"fmt"

	"tevot/internal/cells"
)

// NetID indexes a net in a Netlist. Nets are single-driver: either a
// primary input or the output of exactly one gate.
type NetID int32

// GateID indexes a gate in a Netlist.
type GateID int32

// None marks the absence of a driver gate (the net is a primary input or a
// constant).
const None GateID = -1

// Gate is one instance of a library cell.
type Gate struct {
	Name   string
	Kind   cells.Kind
	Inputs []NetID
	Output NetID
}

// Net is a single-driver wire.
type Net struct {
	Name   string
	Driver GateID   // None for primary inputs and constants
	Fanout []GateID // gates reading this net
}

// Netlist is an immutable combinational circuit once built.
type Netlist struct {
	Name  string
	Gates []Gate
	Nets  []Net

	// PrimaryInputs and PrimaryOutputs are the register-boundary nets, in
	// declaration order (bit 0 of a bus first).
	PrimaryInputs  []NetID
	PrimaryOutputs []NetID

	// Const0 and Const1 are valid if >= 0: nets tied to logic 0/1.
	Const0, Const1 NetID

	level []int32 // per-gate topological level, built by Levelize
	order []GateID
	csr   *CSR // flattened fanout/pin view, built by CSR
}

// NumGates reports the number of gate instances.
func (n *Netlist) NumGates() int { return len(n.Gates) }

// NumNets reports the number of nets.
func (n *Netlist) NumNets() int { return len(n.Nets) }

// IsInput reports whether id is a primary input net.
func (n *Netlist) IsInput(id NetID) bool {
	return n.Nets[id].Driver == None && id != n.Const0 && id != n.Const1
}

// TopoOrder returns gates in a topological order (inputs before users).
// The order is computed once and cached.
func (n *Netlist) TopoOrder() ([]GateID, error) {
	if n.order != nil {
		return n.order, nil
	}
	if err := n.levelize(); err != nil {
		return nil, err
	}
	return n.order, nil
}

// Levels returns the per-gate topological level (primary-input-driven
// gates are level 1). Level 0 is reserved for nets with no driver.
func (n *Netlist) Levels() ([]int32, error) {
	if n.level == nil {
		if err := n.levelize(); err != nil {
			return nil, err
		}
	}
	return n.level, nil
}

// Depth returns the maximum topological level, a structural (unit-delay)
// depth of the circuit.
func (n *Netlist) Depth() (int, error) {
	lv, err := n.Levels()
	if err != nil {
		return 0, err
	}
	max := int32(0)
	for _, l := range lv {
		if l > max {
			max = l
		}
	}
	return int(max), nil
}

// levelize computes a topological order with Kahn's algorithm and per-gate
// levels. It fails on combinational loops.
func (n *Netlist) levelize() error {
	indeg := make([]int32, len(n.Gates))
	netLevel := make([]int32, len(n.Nets))
	for gi := range n.Gates {
		for _, in := range n.Gates[gi].Inputs {
			if n.Nets[in].Driver != None {
				indeg[gi]++
			}
		}
	}
	order := make([]GateID, 0, len(n.Gates))
	queue := make([]GateID, 0, len(n.Gates))
	for gi := range n.Gates {
		if indeg[gi] == 0 {
			queue = append(queue, GateID(gi))
		}
	}
	level := make([]int32, len(n.Gates))
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		order = append(order, g)
		gate := &n.Gates[g]
		lv := int32(0)
		for _, in := range gate.Inputs {
			if netLevel[in] > lv {
				lv = netLevel[in]
			}
		}
		level[g] = lv + 1
		netLevel[gate.Output] = lv + 1
		for _, fo := range n.Nets[gate.Output].Fanout {
			indeg[fo]--
			if indeg[fo] == 0 {
				queue = append(queue, fo)
			}
		}
	}
	if len(order) != len(n.Gates) {
		return fmt.Errorf("netlist %q: combinational loop detected (%d of %d gates ordered)",
			n.Name, len(order), len(n.Gates))
	}
	n.order = order
	n.level = level
	return nil
}

// Eval computes the settled output values for the given primary-input
// assignment using zero-delay evaluation in topological order. inputs must
// have one value per primary input, in PrimaryInputs order. The returned
// slice has one value per primary output.
func (n *Netlist) Eval(inputs []bool) ([]bool, error) {
	vals := make([]bool, len(n.Nets))
	if err := n.EvalInto(inputs, vals); err != nil {
		return nil, err
	}
	out := make([]bool, len(n.PrimaryOutputs))
	for i, po := range n.PrimaryOutputs {
		out[i] = vals[po]
	}
	return out, nil
}

// EvalInto is like Eval but fills the caller-provided per-net value slice
// (length NumNets), allowing allocation-free repeated evaluation. After it
// returns, vals[id] holds the settled value of every net.
func (n *Netlist) EvalInto(inputs []bool, vals []bool) error {
	if len(inputs) != len(n.PrimaryInputs) {
		return fmt.Errorf("netlist %q: got %d input values, want %d",
			n.Name, len(inputs), len(n.PrimaryInputs))
	}
	if len(vals) != len(n.Nets) {
		return fmt.Errorf("netlist %q: value buffer has %d entries, want %d",
			n.Name, len(vals), len(n.Nets))
	}
	order, err := n.TopoOrder()
	if err != nil {
		return err
	}
	if n.Const1 >= 0 {
		vals[n.Const1] = true
	}
	if n.Const0 >= 0 {
		vals[n.Const0] = false
	}
	for i, pi := range n.PrimaryInputs {
		vals[pi] = inputs[i]
	}
	var inBuf [3]bool
	for _, g := range order {
		gate := &n.Gates[g]
		in := inBuf[:len(gate.Inputs)]
		for j, id := range gate.Inputs {
			in[j] = vals[id]
		}
		vals[gate.Output] = gate.Kind.Eval(in)
	}
	return nil
}

// Validate checks structural invariants: arities match cell kinds, net
// driver/fanout cross-references are consistent, primary outputs exist,
// and the circuit is acyclic.
func (n *Netlist) Validate() error {
	for gi := range n.Gates {
		g := &n.Gates[gi]
		if want := g.Kind.NumInputs(); len(g.Inputs) != want {
			return fmt.Errorf("netlist %q: gate %s (%s) has %d inputs, want %d",
				n.Name, g.Name, g.Kind, len(g.Inputs), want)
		}
		if g.Output < 0 || int(g.Output) >= len(n.Nets) {
			return fmt.Errorf("netlist %q: gate %s output net out of range", n.Name, g.Name)
		}
		if n.Nets[g.Output].Driver != GateID(gi) {
			return fmt.Errorf("netlist %q: net %q driver mismatch for gate %s",
				n.Name, n.Nets[g.Output].Name, g.Name)
		}
		for _, in := range g.Inputs {
			if in < 0 || int(in) >= len(n.Nets) {
				return fmt.Errorf("netlist %q: gate %s input net out of range", n.Name, g.Name)
			}
		}
	}
	for ni := range n.Nets {
		net := &n.Nets[ni]
		for _, fo := range net.Fanout {
			if fo < 0 || int(fo) >= len(n.Gates) {
				return fmt.Errorf("netlist %q: net %q fanout out of range", n.Name, net.Name)
			}
			found := false
			for _, in := range n.Gates[fo].Inputs {
				if in == NetID(ni) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("netlist %q: net %q lists gate %s as fanout but gate does not read it",
					n.Name, net.Name, n.Gates[fo].Name)
			}
		}
	}
	for _, po := range n.PrimaryOutputs {
		if po < 0 || int(po) >= len(n.Nets) {
			return fmt.Errorf("netlist %q: primary output net out of range", n.Name)
		}
	}
	_, err := n.TopoOrder()
	return err
}

// GateCounts returns the number of instances of each cell kind, keyed by
// the kind's string name. Useful for reporting circuit composition.
func (n *Netlist) GateCounts() map[string]int {
	m := make(map[string]int)
	for gi := range n.Gates {
		m[n.Gates[gi].Kind.String()]++
	}
	return m
}
