package netlist

import (
	"fmt"

	"tevot/internal/cells"
)

// SimplifyStats reports what Simplify did.
type SimplifyStats struct {
	GatesBefore int
	GatesAfter  int
	Folded      int // gates removed by constant folding / aliasing
	Dead        int // gates removed as unreachable from outputs
}

// Simplify returns a functionally equivalent netlist with constants
// propagated, trivial gates (buffers, gates with constant inputs)
// folded away, and logic not reachable from any primary output removed.
// It is the light technology-independent cleanup a synthesis flow runs
// after structural generation; the circuit generators intentionally
// leave such gates in (tie cells, pass-through buffers) so this pass has
// real work on real netlists.
func Simplify(nl *Netlist) (*Netlist, SimplifyStats, error) {
	stats := SimplifyStats{GatesBefore: nl.NumGates()}
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, stats, err
	}

	// Lattice per net: unknown (alias to itself), alias to another net,
	// or constant.
	const (
		vUnknown = iota
		vConst0
		vConst1
		vAlias
	)
	kind := make([]uint8, nl.NumNets())
	alias := make([]NetID, nl.NumNets())
	for i := range alias {
		alias[i] = NetID(i)
	}
	if nl.Const0 >= 0 {
		kind[nl.Const0] = vConst0
	}
	if nl.Const1 >= 0 {
		kind[nl.Const1] = vConst1
	}
	resolve := func(id NetID) (uint8, NetID) {
		for kind[id] == vAlias {
			id = alias[id]
		}
		return kind[id], id
	}

	// Fold pass: decide, per gate, constant / alias / keep (with a
	// possibly rewritten cell kind).
	type keepGate struct {
		name   string
		kind   cells.Kind
		inputs []NetID // resolved original-net ids
	}
	kept := make(map[GateID]*keepGate)
	for _, gi := range order {
		g := &nl.Gates[gi]
		ins := make([]NetID, len(g.Inputs))
		vals := make([]uint8, len(g.Inputs))
		for j, in := range g.Inputs {
			vals[j], ins[j] = resolve(in)
		}
		newKind, folded := foldGate(g.Kind, vals, ins)
		switch {
		case folded == foldConst0:
			kind[g.Output] = vConst0
			stats.Folded++
		case folded == foldConst1:
			kind[g.Output] = vConst1
			stats.Folded++
		case folded == foldAlias:
			kind[g.Output] = vAlias
			alias[g.Output] = ins[0] // foldGate puts the alias source first
			stats.Folded++
		default:
			kept[gi] = &keepGate{name: g.Name, kind: newKind.kind, inputs: newKind.inputs}
		}
	}

	// Liveness: walk back from the (resolved) primary outputs.
	live := make(map[GateID]bool)
	var visit func(id NetID)
	visit = func(id NetID) {
		_, id = resolve(id)
		drv := nl.Nets[id].Driver
		if drv == None || live[drv] {
			return
		}
		kg, ok := kept[drv]
		if !ok {
			return // folded away
		}
		live[drv] = true
		for _, in := range kg.inputs {
			visit(in)
		}
	}
	for _, po := range nl.PrimaryOutputs {
		visit(po)
	}
	stats.Dead = len(kept) - len(live)

	// Rebuild with the Builder, preserving input order and names.
	b := NewBuilder(nl.Name)
	newID := make(map[NetID]NetID, nl.NumNets())
	for _, pi := range nl.PrimaryInputs {
		newID[pi] = b.Input(nl.Nets[pi].Name)
	}
	mapNet := func(id NetID) (NetID, error) {
		k, root := resolve(id)
		switch k {
		case vConst0:
			return b.Const0(), nil
		case vConst1:
			return b.Const1(), nil
		}
		out, ok := newID[root]
		if !ok {
			return 0, fmt.Errorf("netlist: simplify lost net %q", nl.Nets[root].Name)
		}
		return out, nil
	}
	for _, gi := range order {
		kg, ok := kept[gi]
		if !ok || !live[gi] {
			continue
		}
		ins := make([]NetID, len(kg.inputs))
		for j, in := range kg.inputs {
			mapped, err := mapNet(in)
			if err != nil {
				return nil, stats, err
			}
			ins[j] = mapped
		}
		newID[nl.Gates[gi].Output] = b.NamedGate(kg.name, kg.kind, ins...)
	}
	for _, po := range nl.PrimaryOutputs {
		mapped, err := mapNet(po)
		if err != nil {
			return nil, stats, err
		}
		b.Output(mapped)
	}
	out, err := b.Build()
	if err != nil {
		return nil, stats, err
	}
	stats.GatesAfter = out.NumGates()
	return out, stats, nil
}

type foldResult int

const (
	foldKeep foldResult = iota
	foldConst0
	foldConst1
	foldAlias // alias to ins[0] after foldGate reorders
)

type rewritten struct {
	kind   cells.Kind
	inputs []NetID
}

// foldGate decides a gate's fate given the lattice values of its
// (resolved) inputs. vals uses the Simplify lattice encoding; ins is
// reordered in place so that for foldAlias the source is ins[0].
func foldGate(k cells.Kind, vals []uint8, ins []NetID) (rewritten, foldResult) {
	const (
		vUnknown = iota
		vConst0
		vConst1
	)
	isC := func(j int) bool { return vals[j] == vConst0 || vals[j] == vConst1 }
	bit := func(j int) bool { return vals[j] == vConst1 }

	// All-constant inputs: evaluate outright.
	all := true
	for j := range vals {
		if !isC(j) {
			all = false
			break
		}
	}
	if all {
		in := make([]bool, len(vals))
		for j := range vals {
			in[j] = bit(j)
		}
		if k.Eval(in) {
			return rewritten{}, foldConst1
		}
		return rewritten{}, foldConst0
	}

	switch k {
	case cells.Buf:
		return rewritten{}, foldAlias
	case cells.Inv:
		return rewritten{kind: k, inputs: ins}, foldKeep
	case cells.And2, cells.Or2, cells.Nand2, cells.Nor2, cells.Xor2, cells.Xnor2:
		ci, xi := -1, -1 // constant and non-constant operand
		for j := 0; j < 2; j++ {
			if isC(j) {
				ci = j
			} else {
				xi = j
			}
		}
		if ci < 0 {
			// Identical unknown operands: x op x.
			if ins[0] == ins[1] {
				switch k {
				case cells.And2, cells.Or2:
					return rewritten{}, foldAlias
				case cells.Nand2, cells.Nor2:
					return rewritten{kind: cells.Inv, inputs: ins[:1]}, foldKeep
				case cells.Xor2:
					return rewritten{}, foldConst0
				case cells.Xnor2:
					return rewritten{}, foldConst1
				}
			}
			return rewritten{kind: k, inputs: ins}, foldKeep
		}
		c := bit(ci)
		x := ins[xi]
		ins[0] = x
		switch {
		case k == cells.And2 && c, k == cells.Or2 && !c, k == cells.Xor2 && !c:
			return rewritten{}, foldAlias
		case k == cells.And2 && !c:
			return rewritten{}, foldConst0
		case k == cells.Or2 && c:
			return rewritten{}, foldConst1
		case k == cells.Nand2 && !c:
			return rewritten{}, foldConst1
		case k == cells.Nor2 && c:
			return rewritten{}, foldConst0
		case k == cells.Nand2 && c, k == cells.Nor2 && !c, k == cells.Xor2 && c, k == cells.Xnor2 && !c:
			return rewritten{kind: cells.Inv, inputs: ins[:1]}, foldKeep
		case k == cells.Xnor2 && c:
			return rewritten{}, foldAlias
		}
	case cells.Mux2:
		if isC(2) {
			// Constant select: the gate is the selected data leg.
			sel := 0
			if bit(2) {
				sel = 1
			}
			if isC(sel) {
				if bit(sel) {
					return rewritten{}, foldConst1
				}
				return rewritten{}, foldConst0
			}
			ins[0] = ins[sel]
			return rewritten{}, foldAlias
		}
		if ins[0] == ins[1] && !isC(0) {
			return rewritten{}, foldAlias
		}
		// Constant data legs: MUX(0, 1, s) = s; MUX(1, 0, s) = !s.
		if isC(0) && isC(1) {
			ins[0] = ins[2]
			if !bit(0) && bit(1) {
				return rewritten{}, foldAlias
			}
			if bit(0) && !bit(1) {
				return rewritten{kind: cells.Inv, inputs: ins[:1]}, foldKeep
			}
		}
		return rewritten{kind: k, inputs: ins}, foldKeep
	case cells.And3, cells.Or3, cells.Nand3, cells.Nor3:
		// Reduce around constant operands to the 2-input form.
		var unknown []NetID
		anyZero, anyOne := false, false
		for j := 0; j < 3; j++ {
			switch vals[j] {
			case vConst0:
				anyZero = true
			case vConst1:
				anyOne = true
			default:
				unknown = append(unknown, ins[j])
			}
		}
		switch k {
		case cells.And3:
			if anyZero {
				return rewritten{}, foldConst0
			}
			if len(unknown) == 2 {
				return rewritten{kind: cells.And2, inputs: unknown}, foldKeep
			}
			if len(unknown) == 1 {
				ins[0] = unknown[0]
				return rewritten{}, foldAlias
			}
		case cells.Or3:
			if anyOne {
				return rewritten{}, foldConst1
			}
			if len(unknown) == 2 {
				return rewritten{kind: cells.Or2, inputs: unknown}, foldKeep
			}
			if len(unknown) == 1 {
				ins[0] = unknown[0]
				return rewritten{}, foldAlias
			}
		case cells.Nand3:
			if anyZero {
				return rewritten{}, foldConst1
			}
			if len(unknown) == 2 {
				return rewritten{kind: cells.Nand2, inputs: unknown}, foldKeep
			}
			if len(unknown) == 1 {
				return rewritten{kind: cells.Inv, inputs: unknown}, foldKeep
			}
		case cells.Nor3:
			if anyOne {
				return rewritten{}, foldConst0
			}
			if len(unknown) == 2 {
				return rewritten{kind: cells.Nor2, inputs: unknown}, foldKeep
			}
			if len(unknown) == 1 {
				return rewritten{kind: cells.Inv, inputs: unknown}, foldKeep
			}
		}
	}
	return rewritten{kind: k, inputs: ins}, foldKeep
}
