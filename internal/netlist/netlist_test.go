package netlist

import (
	"strings"
	"testing"
	"testing/quick"

	"tevot/internal/cells"
)

// buildFig1 constructs the illustrative circuit from the paper's Fig. 1:
// two inputs x, y; an inverter on y; an AND of x and the inverted y; the
// AND output is the primary output. The exact gates differ from the
// figure's sketch, but it serves the same purpose: a tiny circuit whose
// sensitized path depends on which input toggles.
func buildFig1(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder("fig1")
	x := b.Input("x")
	y := b.Input("y")
	ny := b.Not(y)
	o := b.And(x, ny)
	b.Output(o)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestBuilderBasics(t *testing.T) {
	nl := buildFig1(t)
	if got := nl.NumGates(); got != 2 {
		t.Errorf("NumGates = %d, want 2", got)
	}
	if got := len(nl.PrimaryInputs); got != 2 {
		t.Errorf("inputs = %d, want 2", got)
	}
	if got := len(nl.PrimaryOutputs); got != 1 {
		t.Errorf("outputs = %d, want 1", got)
	}
	for _, tc := range []struct {
		x, y, want bool
	}{
		{false, false, false},
		{true, false, true},
		{false, true, false},
		{true, true, false},
	} {
		out, err := nl.Eval([]bool{tc.x, tc.y})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != tc.want {
			t.Errorf("Eval(x=%v,y=%v) = %v, want %v", tc.x, tc.y, out[0], tc.want)
		}
	}
}

func TestInputBusOrderIsLSBFirst(t *testing.T) {
	b := NewBuilder("bus")
	a := b.InputBus("a", 4)
	b.OutputBus(a)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if name := nl.Nets[a[0]].Name; name != "a[0]" {
		t.Errorf("first bus net named %q, want a[0]", name)
	}
	if name := nl.Nets[a[3]].Name; name != "a[3]" {
		t.Errorf("last bus net named %q, want a[3]", name)
	}
}

func TestConstNets(t *testing.T) {
	b := NewBuilder("const")
	x := b.Input("x")
	o1 := b.And(x, b.Const1())
	o0 := b.Or(x, b.Const0())
	b.Output(o1)
	b.Output(o0)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []bool{false, true} {
		out, err := nl.Eval([]bool{v})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != v || out[1] != v {
			t.Errorf("const identities broken for x=%v: got %v", v, out)
		}
	}
	if nl.IsInput(nl.Const0) || nl.IsInput(nl.Const1) {
		t.Error("constant nets must not be classified as primary inputs")
	}
}

func TestLevelsAndDepth(t *testing.T) {
	// Chain of 5 inverters: depth 5.
	b := NewBuilder("chain")
	x := b.Input("x")
	n := x
	for i := 0; i < 5; i++ {
		n = b.Not(n)
	}
	b.Output(n)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := nl.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 {
		t.Errorf("Depth = %d, want 5", d)
	}
	lv, err := nl.Levels()
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lv {
		if int(l) != i+1 {
			t.Errorf("gate %d level = %d, want %d", i, l, i+1)
		}
	}
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	b := NewBuilder("topo")
	x := b.Input("x")
	y := b.Input("y")
	a := b.And(x, y)
	o := b.Or(a, x)
	b.Output(o)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	order, err := nl.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[GateID]int)
	for i, g := range order {
		pos[g] = i
	}
	for gi := range nl.Gates {
		for _, in := range nl.Gates[gi].Inputs {
			if drv := nl.Nets[in].Driver; drv != None {
				if pos[drv] >= pos[GateID(gi)] {
					t.Errorf("gate %d scheduled before its driver %d", gi, drv)
				}
			}
		}
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	// Hand-assemble a loop: g0 = AND(x, g1.out), g1 = BUF(g0.out).
	nl := &Netlist{Name: "loop", Const0: -1, Const1: -1}
	nl.Nets = []Net{
		{Name: "x", Driver: None},
		{Name: "n0", Driver: 0},
		{Name: "n1", Driver: 1},
	}
	nl.Gates = []Gate{
		{Name: "g0", Kind: cells.And2, Inputs: []NetID{0, 2}, Output: 1},
		{Name: "g1", Kind: cells.Buf, Inputs: []NetID{1}, Output: 2},
	}
	nl.Nets[0].Fanout = []GateID{0}
	nl.Nets[1].Fanout = []GateID{1}
	nl.Nets[2].Fanout = []GateID{0}
	nl.PrimaryInputs = []NetID{0}
	nl.PrimaryOutputs = []NetID{2}
	err := nl.Validate()
	if err == nil || !strings.Contains(err.Error(), "loop") {
		t.Fatalf("Validate on cyclic netlist: err=%v, want loop error", err)
	}
}

func TestEvalInputLengthMismatch(t *testing.T) {
	nl := buildFig1(t)
	if _, err := nl.Eval([]bool{true}); err == nil {
		t.Fatal("Eval with wrong input count succeeded; want error")
	}
}

func TestEvalIntoBufferMismatch(t *testing.T) {
	nl := buildFig1(t)
	if err := nl.EvalInto([]bool{true, false}, make([]bool, 1)); err == nil {
		t.Fatal("EvalInto with wrong buffer size succeeded; want error")
	}
}

func TestBuildWithoutOutputsFails(t *testing.T) {
	b := NewBuilder("empty")
	b.Input("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build with no outputs succeeded; want error")
	}
}

func TestGatePanicsOnBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gate with wrong arity did not panic")
		}
	}()
	b := NewBuilder("bad")
	x := b.Input("x")
	b.Gate(cells.And2, x) // one input for a 2-input cell
}

func TestGateCounts(t *testing.T) {
	nl := buildFig1(t)
	counts := nl.GateCounts()
	if counts["INV"] != 1 || counts["AND2"] != 1 {
		t.Errorf("GateCounts = %v, want 1 INV and 1 AND2", counts)
	}
}

// TestEvalMatchesMuxTree checks a 4:1 mux built from MUX2 cells against
// direct selection, via testing/quick.
func TestEvalMatchesMuxTree(t *testing.T) {
	b := NewBuilder("mux4")
	d := b.InputBus("d", 4)
	s := b.InputBus("s", 2)
	m0 := b.Mux(d[0], d[1], s[0])
	m1 := b.Mux(d[2], d[3], s[0])
	o := b.Mux(m0, m1, s[1])
	b.Output(o)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := func(dv, sv uint8) bool {
		in := make([]bool, 6)
		for i := 0; i < 4; i++ {
			in[i] = dv>>i&1 == 1
		}
		in[4] = sv&1 == 1
		in[5] = sv>>1&1 == 1
		out, err := nl.Eval(in)
		if err != nil {
			return false
		}
		sel := int(sv & 3)
		return out[0] == (dv>>sel&1 == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestValidateCatchesCorruptedFanout ensures Validate rejects a netlist
// whose fanout list references a non-reader gate.
func TestValidateCatchesCorruptedFanout(t *testing.T) {
	nl := buildFig1(t)
	// Corrupt: claim the output net feeds gate 0 (which doesn't read it).
	out := nl.Gates[1].Output
	nl.Nets[out].Fanout = append(nl.Nets[out].Fanout, 0)
	if err := nl.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted fanout")
	}
}
