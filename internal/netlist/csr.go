package netlist

// CSR is a flattened, cache-friendly view of the netlist for hot loops
// that cannot afford per-event pointer chasing: the event-driven
// simulator's kernel walks these arrays with pure index arithmetic
// instead of loading Net.Fanout slice headers and Gate.Inputs slices.
//
// Fanout edges are stored compressed-sparse-row style: the edges of net
// id live in FanoutEdges[FanoutStart[id]:FanoutStart[id+1]]. Each edge
// packs the reading gate and the input pin it feeds, one edge per
// (gate, pin) occurrence — a net wired to two pins of the same gate
// contributes two edges, so flipping the per-pin bit once per edge
// keeps a packed input-value bitset exact.
//
// The view is derived data: it is built once on first use, cached on
// the Netlist (which is immutable once built, like the topological
// order cache), and never mutated afterwards, so any number of
// simultaneously-live runners can share it read-only.
type CSR struct {
	// FanoutStart has NumNets()+1 entries; FanoutEdges[FanoutStart[i]:
	// FanoutStart[i+1]] are net i's fanout edges in (gate, pin) order.
	FanoutStart []int32
	// FanoutEdges packs gateID<<2 | pin per edge (pins are 0..2; the
	// cell library's maximum arity is 3).
	FanoutEdges []int32
	// GateOut[g] is gate g's output net.
	GateOut []int32
	// GateIn holds each gate's input nets padded to PinsPerGate entries
	// (-1 for unused pins): gate g's pin j reads net GateIn[g*PinsPerGate+j].
	GateIn []int32
	// Topo lists gate ids in topological order (inputs before readers),
	// for sweeps that evaluate the whole netlist in one pass, such as
	// the simulator's bitslice prepass. Nil if the netlist is cyclic —
	// but cyclic netlists never reach a runner (NewRunner checks).
	Topo []int32
}

// PinsPerGate is the fixed per-gate input stride of CSR.GateIn: the cell
// library's maximum arity.
const PinsPerGate = 3

// EdgeGate unpacks the reading gate of a CSR fanout edge.
func EdgeGate(e int32) GateID { return GateID(e >> 2) }

// EdgePin unpacks the input pin of a CSR fanout edge.
func EdgePin(e int32) int { return int(e & 3) }

// CSR returns the flattened fanout/pin view, building and caching it on
// first use. Like TopoOrder, the cache is not synchronized: build it
// from one goroutine (e.g. by constructing the first runner) before
// sharing the netlist across workers.
func (n *Netlist) CSR() *CSR {
	if n.csr != nil {
		return n.csr
	}
	c := &CSR{
		FanoutStart: make([]int32, len(n.Nets)+1),
		GateOut:     make([]int32, len(n.Gates)),
		GateIn:      make([]int32, len(n.Gates)*PinsPerGate),
	}
	// Count edges per net, then fill with a running cursor. Iterating
	// gates in id order makes each net's edge list (gate, pin)-sorted.
	edges := 0
	for gi := range n.Gates {
		edges += len(n.Gates[gi].Inputs)
	}
	c.FanoutEdges = make([]int32, edges)
	for gi := range n.Gates {
		for _, in := range n.Gates[gi].Inputs {
			c.FanoutStart[in+1]++
		}
	}
	for i := 1; i < len(c.FanoutStart); i++ {
		c.FanoutStart[i] += c.FanoutStart[i-1]
	}
	cursor := make([]int32, len(n.Nets))
	copy(cursor, c.FanoutStart[:len(n.Nets)])
	for gi := range n.Gates {
		g := &n.Gates[gi]
		c.GateOut[gi] = int32(g.Output)
		for j := 0; j < PinsPerGate; j++ {
			c.GateIn[gi*PinsPerGate+j] = -1
		}
		for pin, in := range g.Inputs {
			c.GateIn[gi*PinsPerGate+pin] = int32(in)
			c.FanoutEdges[cursor[in]] = int32(gi)<<2 | int32(pin)
			cursor[in]++
		}
	}
	if order, err := n.TopoOrder(); err == nil {
		c.Topo = make([]int32, len(order))
		for i, g := range order {
			c.Topo[i] = int32(g)
		}
	}
	n.csr = c
	return c
}
