package netlist

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT emits the netlist as a Graphviz digraph for inspection:
// primary inputs and outputs as ovals, gates as boxes labeled with the
// instance name and cell kind. Intended for the small illustrative
// circuits (full FUs render, but a 3000-gate graph is not for human
// eyes).
func (n *Netlist) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n", n.Name)
	for _, pi := range n.PrimaryInputs {
		fmt.Fprintf(bw, "  %q [shape=oval, color=blue];\n", "net_"+n.Nets[pi].Name)
	}
	outSet := make(map[NetID]bool, len(n.PrimaryOutputs))
	for _, po := range n.PrimaryOutputs {
		outSet[po] = true
	}
	for gi := range n.Gates {
		g := &n.Gates[gi]
		fmt.Fprintf(bw, "  %q [shape=box, label=\"%s\\n%s\"];\n", "g_"+g.Name, g.Name, g.Kind)
		for _, in := range g.Inputs {
			src := "g_" + driverName(n, in)
			if n.Nets[in].Driver == None {
				src = "net_" + n.Nets[in].Name
			}
			fmt.Fprintf(bw, "  %q -> %q;\n", src, "g_"+g.Name)
		}
		if outSet[g.Output] {
			fmt.Fprintf(bw, "  %q [shape=oval, color=red];\n", "out_"+n.Nets[g.Output].Name)
			fmt.Fprintf(bw, "  %q -> %q;\n", "g_"+g.Name, "out_"+n.Nets[g.Output].Name)
		}
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

func driverName(n *Netlist, id NetID) string {
	if d := n.Nets[id].Driver; d != None {
		return n.Gates[d].Name
	}
	return n.Nets[id].Name
}
