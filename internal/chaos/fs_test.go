package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFSENOSPCAndShortWrite(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(1, []FSRule{
		{Kind: FaultENOSPC, PathGlob: "*.jsonl", Prob: 1, MaxFires: 1},
	})
	f, err := fs.OpenFile(filepath.Join(dir, "j.jsonl"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("hello\n")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("first write err = %v, want ErrNoSpace", err)
	}
	// MaxFires=1: subsequent writes succeed.
	if _, err := f.Write([]byte("world\n")); err != nil {
		t.Fatalf("second write err = %v", err)
	}
}

func TestFSShortWritePinnedCut(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	fs := NewFS(2, []FSRule{
		{Kind: FaultShortWrite, Prob: 1, MaxFires: 1, CutAt: 3},
	})
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if err == nil {
		t.Fatal("short write must surface an error")
	}
	if n != 3 {
		t.Fatalf("short write kept %d bytes, want 3", n)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if string(data) != "abc" {
		t.Fatalf("on-disk bytes %q, want \"abc\"", data)
	}
}

func TestFSSyncLieThenCrashTearsTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	fs := NewFS(3, []FSRule{
		// Every Sync lies: nothing written after open is durable.
		{Kind: FaultSyncLie, Prob: 1},
	})
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("entry-1\nentry-2\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("lying Sync must report success, got %v", err)
	}
	kept := fs.Crash()
	if kept[path] >= 16 {
		t.Fatalf("crash kept %d bytes of a 16-byte unsynced tail — the sync lie was honored", kept[path])
	}
	data, _ := os.ReadFile(path)
	if int64(len(data)) != kept[path] {
		t.Fatalf("on-disk size %d != reported kept %d", len(data), kept[path])
	}
	// Crashed FS refuses new work until Reset.
	if _, err := fs.OpenFile(path, os.O_WRONLY, 0o644); err == nil {
		t.Fatal("crashed FS must refuse opens")
	}
	fs.Reset()
	f2, err := fs.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("reset FS should open again: %v", err)
	}
	f2.Close()
}

func TestFSHonestSyncSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	fs := NewFS(4, nil) // no rules: every sync honest
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable\n"))
	f.Sync()
	f.Write([]byte("maybe-lost\n"))
	kept := fs.Crash()
	if kept[path] < 8 {
		t.Fatalf("crash dropped synced bytes: kept %d, want >= 8", kept[path])
	}
	data, _ := os.ReadFile(path)
	if string(data[:8]) != "durable\n" {
		t.Fatalf("synced prefix corrupted: %q", data)
	}
}

func TestFSSyncFailSurfacesError(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(5, []FSRule{{Kind: FaultSyncFail, Prob: 1, MaxFires: 1}})
	f, err := fs.OpenFile(filepath.Join(dir, "j.jsonl"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Write([]byte("x\n"))
	if err := f.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("Sync err = %v, want ErrSyncFailed", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("second Sync (MaxFires spent) err = %v", err)
	}
}

func TestFSGlobScopesRules(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(6, []FSRule{{Kind: FaultENOSPC, PathGlob: "*.jsonl", Prob: 1}})
	// A non-matching file is untouched.
	f, err := fs.OpenFile(filepath.Join(dir, "other.txt"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("fine\n")); err != nil {
		t.Fatalf("rule leaked onto non-matching file: %v", err)
	}
}
