package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Schedule is one complete fault plan for a soak run: which rules are
// armed on each plane plus the lifecycle events (worker kills,
// coordinator crash/resume, clock abuse). A Schedule is a pure function
// of its seed via Generate, so `scripts/chaos_soak.sh -seed N` replays
// the exact adversary a failure report names.
type Schedule struct {
	Seed int64
	// Name tags pinned regression schedules; generated ones use the
	// seed.
	Name string

	Net  []NetRule
	Disk []FSRule

	// ClockJumps is how many forward clock jumps (each ≥ the lease TTL:
	// an expiry storm) the soak stages while the run is in flight.
	ClockJumps int
	// ClockFreeze stages one freeze/thaw cycle longer than the TTL —
	// the renew-after-expiry race.
	ClockFreeze bool
	// KillWorkers is how many workers get hard-stopped mid-run (their
	// goroutines abandoned mid-cell, leases left to expire).
	KillWorkers int
	// CoordCrash crashes the coordinator mid-run — server stopped,
	// journal torn at the disk plane's discretion — and resumes a new
	// incarnation from the journal on the same address.
	CoordCrash bool
	// HeartbeatLag stretches worker heartbeats past the lease TTL so
	// every lease must survive on lates and re-issues.
	HeartbeatLag bool
}

// String renders a compact one-line description for logs and failure
// reports.
func (s Schedule) String() string {
	var b strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&b, "%s(seed=%d)", s.Name, s.Seed)
	} else {
		fmt.Fprintf(&b, "seed=%d", s.Seed)
	}
	for _, r := range s.Net {
		fmt.Fprintf(&b, " net:%s@%s p=%.2f", r.Kind, r.Route, r.Prob)
	}
	for _, r := range s.Disk {
		fmt.Fprintf(&b, " disk:%s p=%.2f", r.Kind, r.Prob)
	}
	if s.ClockJumps > 0 {
		fmt.Fprintf(&b, " clock:jumps=%d", s.ClockJumps)
	}
	if s.ClockFreeze {
		b.WriteString(" clock:freeze")
	}
	if s.KillWorkers > 0 {
		fmt.Fprintf(&b, " kill=%d", s.KillWorkers)
	}
	if s.CoordCrash {
		b.WriteString(" coord-crash")
	}
	if s.HeartbeatLag {
		b.WriteString(" hb-lag")
	}
	return b.String()
}

// Planes reports which of the three fault planes the schedule arms —
// the soak test asserts its schedule corpus covers all of them.
func (s Schedule) Planes() (network, disk, clock bool) {
	network = len(s.Net) > 0
	disk = len(s.Disk) > 0 || s.CoordCrash
	clock = s.ClockJumps > 0 || s.ClockFreeze || s.HeartbeatLag
	return
}

// Routes the generator draws fault targets from. /v1/lease and
// /v1/result are where redelivery and loss actually change accounting;
// /v1/renew faults force lease-expiry recovery.
var netRoutes = []string{"/v1/lease", "/v1/renew", "/v1/result", ""}

// Generate derives a schedule deterministically from seed. The
// distribution is tuned so most schedules arm 1–3 faults across
// planes at probabilities the retry budgets can absorb: the point is to
// search interleavings of recoverable faults, not to prove that
// unbounded loss loses (rules carry MaxFires caps so a finite retry
// budget — 8 per RPC — is never exhausted by an unlucky stream alone).
func Generate(seed int64) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed}

	// Network plane: 0–3 rules.
	nNet := rng.Intn(4)
	for i := 0; i < nNet; i++ {
		kind := []string{NetDrop, NetDelay, NetDup, NetReset, NetTruncate, NetForge}[rng.Intn(6)]
		r := NetRule{
			Kind:     kind,
			Route:    netRoutes[rng.Intn(len(netRoutes))],
			Prob:     0.05 + rng.Float64()*0.20, // 5–25%
			MaxFires: 3 + rng.Intn(10),
		}
		if kind == NetDelay {
			r.MinDelay = time.Duration(5+rng.Intn(20)) * time.Millisecond
			r.MaxDelay = r.MinDelay + time.Duration(10+rng.Intn(100))*time.Millisecond
		}
		if kind == NetForge {
			r.ForgeStatus = []int{500, 502, 503, 429}[rng.Intn(4)]
			if r.ForgeStatus == 429 && rng.Intn(2) == 0 {
				// Pathological Retry-After: the client must cap it.
				r.RetryAfter = "100000"
			}
		}
		s.Net = append(s.Net, r)
	}

	// Disk plane: 0–2 rules against the journal.
	nDisk := rng.Intn(3)
	for i := 0; i < nDisk; i++ {
		kind := []string{FaultShortWrite, FaultENOSPC, FaultSyncFail, FaultSyncLie, FaultTornWrite}[rng.Intn(5)]
		s.Disk = append(s.Disk, FSRule{
			Kind:     kind,
			PathGlob: "*.jsonl",
			Prob:     0.05 + rng.Float64()*0.15, // 5–20%
			MaxFires: 1 + rng.Intn(3),
			CutAt:    -1,
		})
	}

	// Clock plane.
	if rng.Intn(3) == 0 {
		s.ClockJumps = 1 + rng.Intn(2)
	}
	s.ClockFreeze = rng.Intn(4) == 0
	s.HeartbeatLag = rng.Intn(4) == 0

	// Lifecycle.
	s.KillWorkers = rng.Intn(2)
	s.CoordCrash = rng.Intn(3) == 0

	// A schedule that armed nothing is a control run — keep it; the
	// soak's invariants must hold there too, and a fault-free pass
	// through the harness itself is a useful canary.
	return s
}

// Profile returns a hand-tuned schedule family for CLI use:
// "light" (a little of everything), "network", "disk", "clock" (one
// plane each, hot), "heavy" (everything, plus crash/kill). seed keys
// the per-rule decision streams.
func Profile(name string, seed int64) (Schedule, error) {
	s := Schedule{Seed: seed, Name: name}
	switch name {
	case "light":
		s.Net = []NetRule{
			{Kind: NetDelay, Prob: 0.10, MaxFires: 20, MinDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
			{Kind: NetDrop, Route: "/v1/renew", Prob: 0.05, MaxFires: 5},
		}
	case "network":
		s.Net = []NetRule{
			{Kind: NetDrop, Prob: 0.15, MaxFires: 12},
			{Kind: NetDup, Route: "/v1/result", Prob: 0.20, MaxFires: 8},
			{Kind: NetReset, Route: "/v1/lease", Prob: 0.10, MaxFires: 6},
			{Kind: NetForge, Route: "/v1/result", Prob: 0.10, MaxFires: 4, ForgeStatus: 503},
		}
	case "disk":
		s.Disk = []FSRule{
			{Kind: FaultSyncLie, PathGlob: "*.jsonl", Prob: 0.25, MaxFires: 4, CutAt: -1},
			{Kind: FaultENOSPC, PathGlob: "*.jsonl", Prob: 0.10, MaxFires: 1, CutAt: -1},
		}
		s.CoordCrash = true
	case "clock":
		s.ClockJumps = 2
		s.ClockFreeze = true
		s.HeartbeatLag = true
	case "heavy":
		s.Net = []NetRule{
			{Kind: NetDrop, Prob: 0.10, MaxFires: 10},
			{Kind: NetDup, Route: "/v1/result", Prob: 0.15, MaxFires: 6},
			{Kind: NetTruncate, Prob: 0.10, MaxFires: 6},
		}
		s.Disk = []FSRule{
			{Kind: FaultSyncLie, PathGlob: "*.jsonl", Prob: 0.20, MaxFires: 3, CutAt: -1},
		}
		s.ClockJumps = 1
		s.KillWorkers = 1
		s.CoordCrash = true
	default:
		return Schedule{}, fmt.Errorf("chaos: unknown profile %q (want light|network|disk|clock|heavy)", name)
	}
	return s, nil
}

// Regressions returns the pinned schedules that exposed real bugs
// during this harness's development. Each is preserved verbatim; the
// soak test runs them by name so the fixes cannot silently regress.
func Regressions() []Schedule {
	return []Schedule{
		{
			// A forged 429 carrying Retry-After: 100000 parked the old
			// client for the full server-supplied delay — ~27 hours —
			// because the header was honored uncapped. Fixed by clamping
			// server delays to the backoff policy max.
			Name: "retry-after-storm",
			Seed: 4291,
			Net: []NetRule{
				{Kind: NetForge, Route: "/v1/lease", Prob: 0.5, MaxFires: 3,
					ForgeStatus: 429, RetryAfter: "100000"},
			},
		},
		{
			// A renew delayed long enough to straddle cell completion
			// delivered ErrLeaseGone after the result was already
			// computed; the old worker discarded the finished result
			// instead of reporting it late, forcing a full re-run of the
			// cell on another worker.
			Name: "late-lease-loss",
			Seed: 7001,
			Net: []NetRule{
				{Kind: NetDelay, Route: "/v1/renew", Prob: 0.6, MaxFires: 6,
					MinDelay: 150 * time.Millisecond, MaxDelay: 400 * time.Millisecond},
			},
			HeartbeatLag: true,
			ClockJumps:   1,
		},
		{
			// A duplicated /v1/result delivery (retransmit racing the
			// ACK) made Σ cells_done come up short of rows + duplicates:
			// the coordinator counted a duplicate no worker execution
			// backed. The balance invariant had to learn about transport
			// redelivery — bounded by the transport's delivery books.
			Name: "result-redelivery",
			Seed: 8181,
			Net: []NetRule{
				{Kind: NetDup, Route: "/v1/result", Prob: 0.5, MaxFires: 4},
			},
		},
		{
			// Sync lied, then the coordinator crashed: the journal's tail
			// record was torn mid-bytes despite every Record fsyncing.
			// Resume must truncate the tear and re-run exactly the torn
			// cell — and the merge must still come out byte-identical.
			Name: "sync-lie-crash",
			Seed: 9119,
			Disk: []FSRule{
				{Kind: FaultSyncLie, PathGlob: "*.jsonl", Prob: 0.5, MaxFires: 3, CutAt: -1},
			},
			CoordCrash: true,
		},
	}
}
