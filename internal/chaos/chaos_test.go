package chaos

import (
	"reflect"
	"testing"
	"time"
)

func TestClockJumpAndFreeze(t *testing.T) {
	c := NewClock()
	before := c.Now()
	c.Jump(time.Hour)
	if d := c.Now().Sub(before); d < time.Hour {
		t.Fatalf("jump of 1h moved the clock only %v", d)
	}
	c.Freeze()
	a := c.Now()
	time.Sleep(20 * time.Millisecond)
	b := c.Now()
	if !a.Equal(b) {
		t.Fatalf("frozen clock advanced: %v -> %v", a, b)
	}
	c.Thaw()
	time.Sleep(5 * time.Millisecond)
	if !c.Now().After(b) {
		t.Fatal("thawed clock did not resume")
	}
	// Negative jumps are clamped: time never goes backwards.
	now := c.Now()
	c.Jump(-time.Hour)
	if c.Now().Before(now) {
		t.Fatal("negative jump moved the clock backwards")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not a pure function of the seed:\n%v\nvs\n%v", seed, a, b)
		}
	}
	if reflect.DeepEqual(Generate(1), Generate(2)) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateCorpusCoversAllPlanes(t *testing.T) {
	// The soak test runs seeds 1..K; the corpus those seeds generate
	// must collectively arm every plane or the soak's coverage claim is
	// hollow. 25 is the full (non -short) soak count.
	var net, disk, clock, kills, crashes, quiet int
	for seed := int64(1); seed <= 25; seed++ {
		s := Generate(seed)
		n, d, c := s.Planes()
		if n {
			net++
		}
		if d {
			disk++
		}
		if c {
			clock++
		}
		if s.KillWorkers > 0 {
			kills++
		}
		if s.CoordCrash {
			crashes++
		}
		if s.quiet() {
			quiet++
		}
	}
	if net == 0 || disk == 0 || clock == 0 || kills == 0 || crashes == 0 {
		t.Fatalf("seed corpus 1..25 misses a plane: net=%d disk=%d clock=%d kills=%d crashes=%d",
			net, disk, clock, kills, crashes)
	}
	t.Logf("corpus: net=%d disk=%d clock=%d kills=%d crashes=%d control=%d", net, disk, clock, kills, crashes, quiet)
}

func TestProfilesAndRegressionsWellFormed(t *testing.T) {
	for _, name := range []string{"light", "network", "disk", "clock", "heavy"} {
		s, err := Profile(name, 7)
		if err != nil {
			t.Fatalf("Profile(%s): %v", name, err)
		}
		if n, d, c := s.Planes(); !n && !d && !c && s.KillWorkers == 0 && !s.CoordCrash {
			t.Fatalf("profile %s arms nothing", name)
		}
	}
	if _, err := Profile("bogus", 1); err == nil {
		t.Fatal("unknown profile must error")
	}
	seen := map[string]bool{}
	for _, r := range Regressions() {
		if r.Name == "" {
			t.Fatal("regression schedule without a name")
		}
		if seen[r.Name] {
			t.Fatalf("duplicate regression name %q", r.Name)
		}
		seen[r.Name] = true
	}
	if len(seen) < 3 {
		t.Fatalf("expected at least 3 pinned regressions, have %d", len(seen))
	}
}

func TestDecideDeterministicAndProportional(t *testing.T) {
	fired := 0
	const trials = 2000
	for n := uint64(0); n < trials; n++ {
		if decide(9, 0, "k", n, 0.25) {
			fired++
		}
		if decide(9, 0, "k", n, 0.25) != decide(9, 0, "k", n, 0.25) {
			t.Fatal("decide is nondeterministic")
		}
	}
	// 25% ± generous slop.
	if fired < trials/8 || fired > trials/2 {
		t.Fatalf("decide(p=0.25) fired %d/%d — badly out of proportion", fired, trials)
	}
	if decide(1, 0, "k", 0, 0) {
		t.Fatal("p=0 fired")
	}
	if !decide(1, 0, "k", 0, 1) {
		t.Fatal("p=1 did not fire")
	}
}
