package chaos

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func postJSON(t *testing.T, hc *http.Client, url string, body string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := hc.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, rerr := io.ReadAll(resp.Body)
	return resp, data, rerr
}

func TestTransportDropNeverReachesServer(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	tr := NewTransport(1, []NetRule{{Kind: NetDrop, Prob: 1}}, nil)
	hc := &http.Client{Transport: tr}
	_, _, err := postJSON(t, hc, srv.URL+"/v1/lease", `{}`)
	if err == nil {
		t.Fatal("dropped request returned no error")
	}
	if hits.Load() != 0 {
		t.Fatalf("dropped request reached the server %d times", hits.Load())
	}
	if tr.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", tr.Injected())
	}
}

func TestTransportDupDeliversTwice(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		hits.Add(1)
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	tr := NewTransport(2, []NetRule{{Kind: NetDup, Route: "/v1/result", Prob: 1, MaxFires: 1}}, nil)
	tr.Track("/v1/result")
	hc := &http.Client{Transport: tr}
	resp, _, err := postJSON(t, hc, srv.URL+"/v1/result", `{"key":"cell-1"}`)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("dup request failed: %v status=%v", err, resp)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d deliveries, want 2 (original + injected dup)", hits.Load())
	}
	distinct, excess := tr.Deliveries("/v1/result")
	if distinct != 1 || excess != 1 {
		t.Fatalf("Deliveries = (%d distinct, %d excess), want (1, 1)", distinct, excess)
	}
}

func TestTransportForgeStatusAndRetryAfter(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()

	tr := NewTransport(3, []NetRule{{Kind: NetForge, Prob: 1, ForgeStatus: 429, RetryAfter: "100000"}}, nil)
	hc := &http.Client{Transport: tr}
	resp, body, err := postJSON(t, hc, srv.URL+"/v1/lease", `{}`)
	if err != nil {
		t.Fatalf("forged response errored: %v", err)
	}
	if resp.StatusCode != 429 {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "100000" {
		t.Fatalf("Retry-After = %q, want 100000", got)
	}
	if hits.Load() != 0 {
		t.Fatal("forged request reached the server")
	}
	var e struct {
		Error struct{ Code string }
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != "injected" {
		t.Fatalf("forged body %q does not parse as the error envelope", body)
	}
}

func TestTransportTruncateAndReset(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer srv.Close()

	// Truncate: clean EOF with fewer bytes.
	trunc := NewTransport(4, []NetRule{{Kind: NetTruncate, Prob: 1}}, nil)
	resp, data, err := postJSON(t, &http.Client{Transport: trunc}, srv.URL+"/v1/spec", `{}`)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("truncate exchange failed: %v", err)
	}
	if len(data) >= len(payload) {
		t.Fatalf("truncate kept %d of %d bytes", len(data), len(payload))
	}

	// Reset: body read errors partway.
	rst := NewTransport(5, []NetRule{{Kind: NetReset, Prob: 1}}, nil)
	resp2, err := (&http.Client{Transport: rst}).Post(srv.URL+"/v1/spec", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("reset should fail on body read, not on the exchange: %v", err)
	}
	defer resp2.Body.Close()
	if _, err := io.ReadAll(resp2.Body); err == nil {
		t.Fatal("reset body read should error")
	}
}

func TestTransportDelayHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	tr := NewTransport(6, []NetRule{{Kind: NetDelay, Prob: 1,
		MinDelay: 10 * time.Second, MaxDelay: 20 * time.Second}}, nil)
	hc := &http.Client{Transport: tr, Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err := hc.Post(srv.URL+"/v1/lease", "application/json", strings.NewReader(`{}`))
	if err == nil {
		t.Fatal("delayed request should have timed out")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("delay ignored the request context: took %v", elapsed)
	}
}

func TestTransportScheduleDeterministic(t *testing.T) {
	rules := []NetRule{{Kind: NetDrop, Prob: 0.3}}
	fires := func(seed int64) []bool {
		tr := NewTransport(seed, rules, nil)
		out := make([]bool, 64)
		for i := range out {
			_, _, out[i] = tr.matchRule("/v1/lease")
		}
		return out
	}
	a, b := fires(42), fires(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical seeds", i)
		}
	}
	c := fires(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed does not influence the fault stream")
	}
}

func TestTransportMaxFires(t *testing.T) {
	tr := NewTransport(7, []NetRule{{Kind: NetDrop, Prob: 1, MaxFires: 3}}, nil)
	n := 0
	for i := 0; i < 10; i++ {
		if _, _, fired := tr.matchRule("/v1/lease"); fired {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("rule fired %d times, MaxFires=3", n)
	}
}
