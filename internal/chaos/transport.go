package chaos

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"tevot/internal/obs"
)

// Network-plane fault kinds.
const (
	// NetDrop makes the request vanish: the handler never sees it and
	// the caller gets a connection-reset-shaped error.
	NetDrop = "drop"
	// NetDelay holds the request for a seeded duration in [MinDelay,
	// MaxDelay) before forwarding.
	NetDelay = "delay"
	// NetDup forwards the request twice; the duplicate's response is
	// discarded. Models a retransmit racing a slow ACK — the server
	// processes the same logical message twice.
	NetDup = "dup"
	// NetReset forwards the request but kills the response mid-body:
	// the caller reads a prefix and then an unexpected-EOF error.
	NetReset = "reset"
	// NetTruncate forwards the request but delivers only a prefix of
	// the response body with a clean EOF — a truncation the client can
	// only detect by failing to parse.
	NetTruncate = "truncate"
	// NetForge never forwards: the caller receives a forged status
	// (ForgeStatus, default 503) with an optional Retry-After header.
	NetForge = "forge"
)

// ErrInjectedReset is the transport-level error surfaced by NetDrop.
var ErrInjectedReset = errors.New("chaos: connection reset (injected)")

// NetRule is one network-plane fault: the Nth request whose URL path
// matches Route (prefix match; empty = all) suffers Kind with
// probability Prob, at most MaxFires times (0 = unlimited).
type NetRule struct {
	Kind  string
	Route string
	Prob  float64
	// MaxFires caps total firings (0 = unlimited). Keep drops/forges
	// bounded or finite retry budgets will, correctly, give up.
	MaxFires int
	// MinDelay/MaxDelay bound NetDelay holds (default 10–200ms).
	MinDelay, MaxDelay time.Duration
	// ForgeStatus is the NetForge status code (default 503).
	ForgeStatus int
	// RetryAfter, when non-empty, is sent verbatim as the forged
	// response's Retry-After header — delta-seconds or HTTP-date.
	RetryAfter string
}

// Transport is the network plane: an http.RoundTripper that injects
// seeded faults between a dist client and its coordinator. It wraps a
// real transport (http.DefaultTransport by default), so everything it
// passes through still crosses a real loopback socket.
//
// Besides injecting faults it keeps delivery books on tracked routes:
// how many requests (by body hash) were actually delivered to the
// server and answered 2xx — including chaos-injected duplicates, which
// the caller never saw. The soak uses these books to bound the
// accounting drift that redelivery legitimately causes.
type Transport struct {
	seed  int64
	rules []NetRule
	next  http.RoundTripper

	mu    sync.Mutex
	ops   []uint64
	fires []int
	// delivered counts 2xx-answered deliveries per (route, body-hash) on
	// tracked routes.
	delivered map[string]int
	tracked   map[string]bool
	injected  int
}

// NewTransport builds a network plane with the given seeded rules over
// next (nil = http.DefaultTransport).
func NewTransport(seed int64, rules []NetRule, next http.RoundTripper) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{
		seed:      seed,
		rules:     rules,
		next:      next,
		ops:       make([]uint64, len(rules)),
		fires:     make([]int, len(rules)),
		delivered: make(map[string]int),
		tracked:   make(map[string]bool),
	}
}

// Track enables delivery bookkeeping for a route (URL path prefix).
func (t *Transport) Track(route string) {
	t.mu.Lock()
	t.tracked[route] = true
	t.mu.Unlock()
}

// Injected reports how many faults have fired so far.
func (t *Transport) Injected() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

// Deliveries returns, for each tracked route, the number of distinct
// request bodies delivered at least once and the excess deliveries
// beyond one per body (retransmits the server processed again).
func (t *Transport) Deliveries(route string) (distinct, excess int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	prefix := route + "|"
	for k, n := range t.delivered {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			distinct++
			excess += n - 1
		}
	}
	return distinct, excess
}

func (t *Transport) matchRule(path string) (NetRule, int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, r := range t.rules {
		if r.Route != "" && !hasPrefix(path, r.Route) {
			continue
		}
		n := t.ops[i]
		t.ops[i]++
		if r.MaxFires > 0 && t.fires[i] >= r.MaxFires {
			continue
		}
		if decide(t.seed, i, r.Kind+":"+path, n, r.Prob) {
			t.fires[i]++
			t.injected++
			return r, i, true
		}
	}
	return NetRule{}, 0, false
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	// Buffer the body once: rules may need to replay it (dup) and the
	// delivery books key on its hash. Coordinator RPCs are small JSON
	// documents; the 1MB server-side cap bounds this buffer too.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	path := req.URL.Path

	r, ridx, fired := t.matchRule(path)
	if !fired {
		return t.forward(req, body)
	}
	log := obs.Logger("chaos")
	switch r.Kind {
	case NetDrop:
		log.Debug("net drop", "route", path)
		return nil, fmt.Errorf("%w: %s", ErrInjectedReset, path)

	case NetDelay:
		min, max := r.MinDelay, r.MaxDelay
		if min <= 0 {
			min = 10 * time.Millisecond
		}
		if max <= min {
			max = min + 190*time.Millisecond
		}
		t.mu.Lock()
		n := t.ops[ridx]
		t.mu.Unlock()
		d := min + time.Duration(pick(t.seed, ridx, "delay:"+path, n, int64(max-min)))
		log.Debug("net delay", "route", path, "delay", d)
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d):
		}
		return t.forward(req, body)

	case NetDup:
		// Deliver a shadow copy first; its response is thrown away. The
		// context must outlive this call's cancel, so clone onto a
		// background context bounded by a short timeout.
		log.Debug("net dup", "route", path)
		shadowCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		shadow := req.Clone(shadowCtx)
		if resp, err := t.forward(shadow, body); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		return t.forward(req, body)

	case NetReset:
		resp, err := t.forward(req, body)
		if err != nil {
			return resp, err
		}
		return t.mangleBody(resp, path, ridx, true)

	case NetTruncate:
		resp, err := t.forward(req, body)
		if err != nil {
			return resp, err
		}
		return t.mangleBody(resp, path, ridx, false)

	case NetForge:
		status := r.ForgeStatus
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		log.Debug("net forge", "route", path, "status", status)
		hdr := make(http.Header)
		hdr.Set("Content-Type", "application/json")
		if r.RetryAfter != "" {
			hdr.Set("Retry-After", r.RetryAfter)
		}
		payload := fmt.Sprintf(`{"error":{"code":"injected","message":"chaos forged %d"}}`, status)
		return &http.Response{
			Status:        strconv.Itoa(status) + " " + http.StatusText(status),
			StatusCode:    status,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        hdr,
			Body:          io.NopCloser(bytes.NewReader([]byte(payload))),
			ContentLength: int64(len(payload)),
			Request:       req,
		}, nil
	}
	return t.forward(req, body)
}

// forward performs the real exchange and keeps the delivery books.
func (t *Transport) forward(req *http.Request, body []byte) (*http.Response, error) {
	if body != nil {
		req.Body = io.NopCloser(bytes.NewReader(body))
		req.ContentLength = int64(len(body))
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		path := req.URL.Path
		t.mu.Lock()
		for route := range t.tracked {
			if hasPrefix(path, route) {
				sum := sha256.Sum256(body)
				t.delivered[route+"|"+hex.EncodeToString(sum[:8])]++
				break
			}
		}
		t.mu.Unlock()
	}
	return resp, err
}

// mangleBody rewraps a response body to deliver only a seeded prefix;
// reset=true ends the read with an injected error (connection reset
// mid-body), reset=false with a clean EOF (silent truncation).
func (t *Transport) mangleBody(resp *http.Response, path string, ridx int, reset bool) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	n := t.ops[ridx]
	t.mu.Unlock()
	cut := int64(0)
	if len(data) > 0 {
		cut = pick(t.seed, ridx, "cut:"+path, n, int64(len(data)))
	}
	obs.Logger("chaos").Debug("net body mangled", "route", path, "kept", cut, "of", len(data), "reset", reset)
	prefix := data[:cut]
	if reset {
		resp.Body = io.NopCloser(io.MultiReader(bytes.NewReader(prefix), errReader{}))
	} else {
		resp.Body = io.NopCloser(bytes.NewReader(prefix))
		resp.ContentLength = int64(len(prefix))
		resp.Header.Set("Content-Length", strconv.Itoa(len(prefix)))
	}
	return resp, nil
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, ErrInjectedReset }
