package chaos

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tevot/internal/obs"
)

// startRun builds a minimal obs.Run writing its manifest to path.
func startRun(t *testing.T, path string) *obs.Run {
	t.Helper()
	fs := flag.NewFlagSet("chaos-test", flag.ContinueOnError)
	flags := obs.RegisterFlags(fs)
	if err := fs.Parse([]string{"-run-json", path}); err != nil {
		t.Fatal(err)
	}
	run, err := flags.Start("chaos-test", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// assertNoDebris fails if dir holds anything besides the allowed names
// — a failed manifest write must not strand temp files.
func assertNoDebris(t *testing.T, dir string, allowed ...string) {
	t.Helper()
	ok := map[string]bool{}
	for _, a := range allowed {
		ok[a] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !ok[e.Name()] {
			t.Fatalf("stranded file after manifest fault: %s", e.Name())
		}
	}
}

// TestManifestWriteUnderDiskFaults proves the atomic temp+rename dance
// holds under the chaos disk plane: a failed temp write or a failed
// rename surfaces an error and leaves neither a truncated run.json nor
// a stranded temp file; a clean retry then succeeds.
func TestManifestWriteUnderDiskFaults(t *testing.T) {
	cases := []struct {
		name string
		rule FSRule
	}{
		// Temp-file writes fail (the temp pattern is .run-*.json.tmp).
		{"temp-write-enospc", FSRule{Kind: FaultENOSPC, PathGlob: "*.tmp", Prob: 1, MaxFires: 1}},
		// The temp write tears short with an error.
		{"temp-write-short", FSRule{Kind: FaultShortWrite, PathGlob: "*.tmp", Prob: 1, MaxFires: 1, CutAt: 10}},
		// The final rename onto run.json fails.
		{"rename-enospc", FSRule{Kind: FaultENOSPC, PathGlob: "run.json", Prob: 1, MaxFires: 1}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "run.json")
			run := startRun(t, path)
			restore := obs.SetManifestFS(NewFS(11, []FSRule{tc.rule}))
			err := run.Close()
			restore()
			if err == nil {
				t.Fatal("Close under an injected manifest fault reported success")
			}
			if _, serr := os.Stat(path); serr == nil {
				t.Fatal("faulted manifest write left a run.json behind")
			}
			assertNoDebris(t, dir)

			// A fresh run on the now-healthy filesystem writes a complete,
			// parseable manifest.
			run2 := startRun(t, path)
			if err := run2.Close(); err != nil {
				t.Fatalf("clean manifest write failed: %v", err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var m map[string]any
			if err := json.Unmarshal(data, &m); err != nil {
				t.Fatalf("run.json is not valid JSON: %v", err)
			}
			if m["command"] != "chaos-test" {
				t.Fatalf("manifest command = %v", m["command"])
			}
			assertNoDebris(t, dir, "run.json")
		})
	}
}
