package chaos

import (
	"sync"
	"time"
)

// Clock is the clock plane: a swappable time source for internal/dist's
// lease table (its `now func() time.Time` hook). It starts as a
// passthrough of the real clock and can be skewed forward, frozen, and
// released — enough to stage expiry storms (jump past every lease TTL
// at once) and renew-after-expiry races (freeze so renewals race a
// deadline that no longer moves) without waiting out real TTLs.
//
// Only forward skew is offered. The lease table compares deadlines
// minted from this same clock, so jumping backwards would un-expire
// leases — a fault no real clock-sync daemon produces on a scale worth
// modeling, and one that breaks the table's monotonicity assumptions
// rather than testing them.
type Clock struct {
	mu     sync.Mutex
	skew   time.Duration
	frozen bool
	at     time.Time // the frozen instant, valid when frozen
}

// NewClock returns a passthrough clock with no skew.
func NewClock() *Clock { return &Clock{} }

// Now is the time source to hand to dist.NewCoordinator.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frozen {
		return c.at.Add(c.skew)
	}
	return time.Now().Add(c.skew)
}

// Jump skews the clock forward by d (cumulative). With d at least the
// lease TTL this is an expiry storm: every live lease is instantly past
// its deadline on the next sweep.
func (c *Clock) Jump(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	c.skew += d
	c.mu.Unlock()
}

// Freeze stops the clock at its current reading. Renewals made while
// frozen extend deadlines relative to a time that no longer advances,
// so a later Thaw lands every deadline in the past at once.
func (c *Clock) Freeze() {
	c.mu.Lock()
	if !c.frozen {
		c.frozen = true
		c.at = time.Now()
	}
	c.mu.Unlock()
}

// Thaw resumes the clock from the real now (plus accumulated skew).
// Deadlines minted while frozen were relative to the frozen instant, so
// a freeze that outlasted the lease TTL lands them all in the past the
// moment the clock resumes — the renew-after-expiry race, staged.
func (c *Clock) Thaw() {
	c.mu.Lock()
	c.frozen = false
	c.mu.Unlock()
}
