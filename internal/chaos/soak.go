package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tevot/internal/dist"
	"tevot/internal/experiments"
	"tevot/internal/obs"
)

// SoakConfig configures one soak run: an in-process cluster driven
// through one fault Schedule, with invariants checked at the end.
type SoakConfig struct {
	// Spec is the sweep to run. Keep it small — a soak's value is in
	// how many schedules it covers, not how big each sweep is.
	Spec dist.Spec
	// Workers is the in-process worker count (default 3).
	Workers int
	// Lab, when non-nil, is shared by all workers and the reference run
	// (build once per process — it dominates setup time otherwise).
	Lab *experiments.Lab
	// Dir is the scratch directory for the journal and merged outputs
	// (default: a fresh os.MkdirTemp, removed on success).
	Dir string
	// Reference is the fault-free merged JSONL to byte-compare against;
	// nil means compute it in-process first.
	Reference []byte
	// LeaseTTL for the coordinator (default 600ms — short enough that
	// expiry recovery actually happens inside a soak's lifetime).
	LeaseTTL time.Duration
	// Deadline bounds the whole soak (default 90s): exceeding it is the
	// livelock invariant failing, not a timeout to tune away.
	Deadline time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// SoakResult reports what one schedule did and how the run ended.
type SoakResult struct {
	Schedule Schedule
	// Completed is true when the sweep finished and merged; false means
	// the run aborted loudly (only acceptable under loud disk faults —
	// see Soak).
	Completed bool
	// AbortedLoudly is set when the coordinator aborted with
	// ErrJournalFailed under a schedule that armed loud disk faults.
	AbortedLoudly bool
	Rows          int
	// Incarnations is how many coordinator lifetimes the run spanned.
	Incarnations int
	// Accepted/Duplicates sum accepted and duplicate results across
	// incarnations (from per-incarnation Progress snapshots).
	Accepted   int
	Duplicates int
	// NetInjected/DiskInjected count fired faults per plane.
	NetInjected  int
	DiskInjected int
	// WorkerRestarts counts supervisor respawns (excluding kills).
	WorkerRestarts int
	Elapsed        time.Duration
}

func (r SoakResult) String() string {
	state := "completed"
	if !r.Completed {
		state = "aborted-loudly"
	}
	return fmt.Sprintf("%s: %s rows=%d incarnations=%d accepted=%d dups=%d net=%d disk=%d restarts=%d in %v",
		r.Schedule, state, r.Rows, r.Incarnations, r.Accepted, r.Duplicates,
		r.NetInjected, r.DiskInjected, r.WorkerRestarts, r.Elapsed.Round(time.Millisecond))
}

// Soak runs one schedule end to end and checks the invariants:
//
//  1. merge byte-identity: the merged JSONL equals the fault-free
//     reference, whatever the schedule did;
//  2. row completeness: exactly one row per cell of the spec;
//  3. acceptance floor: every cell was accepted at least once across
//     coordinator incarnations (Σ accepted ≥ cells);
//  4. per-worker report accounting: cells_done == results_ok +
//     results_duplicate + results_failed for every worker, exactly;
//  5. cluster balance, redelivery-corrected: Σ(accepted+duplicates)
//     stays within the bounds transport redelivery and response loss
//     permit (exact equality with Σ cells_done when no faults fired);
//  6. no goroutine leaks: the count settles back to baseline;
//  7. bounded completion: everything above happens inside Deadline.
//
// One terminal state other than completion is accepted: a schedule
// that arms loud disk faults (ENOSPC, short write, fsync failure) may
// abort the run with dist.ErrJournalFailed — the coordinator's
// documented response to a journal that stops persisting. Then Soak
// instead asserts the abort was clean: workers all exited, no merged
// output was written, no goroutines leaked.
func Soak(ctx context.Context, cfg SoakConfig, sched Schedule) (SoakResult, error) {
	start := time.Now()
	res := SoakResult{Schedule: sched}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 600 * time.Millisecond
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 90 * time.Second
	}
	spec := cfg.Spec
	cells, err := spec.Cells()
	if err != nil {
		return res, err
	}
	ownDir := false
	if cfg.Dir == "" {
		d, err := os.MkdirTemp("", "chaos-soak-*")
		if err != nil {
			return res, err
		}
		cfg.Dir = d
		ownDir = true
	}

	// Reference artifact (fault-free bytes) if not supplied.
	if cfg.Reference == nil {
		refPath := filepath.Join(cfg.Dir, "ref.jsonl")
		if err := dist.SingleProcessMerged(ctx, spec, refPath, runtime.GOMAXPROCS(0)); err != nil {
			return res, fmt.Errorf("chaos: reference run: %w", err)
		}
		cfg.Reference, err = os.ReadFile(refPath)
		if err != nil {
			return res, err
		}
	}
	lab := cfg.Lab
	if lab == nil {
		lab, err = spec.NewLab()
		if err != nil {
			return res, err
		}
	}

	baseline := runtime.NumGoroutine()
	ctx, cancelAll := context.WithTimeout(ctx, cfg.Deadline)
	defer cancelAll()

	// Fault planes. One transport shared by every worker so the
	// delivery books cover the whole fleet; the /v1/result books back
	// the redelivery-corrected balance invariant.
	clock := NewClock()
	fs := NewFS(sched.Seed, sched.Disk)
	transport := NewTransport(sched.Seed, sched.Net, nil)
	transport.Track("/v1/result")
	defer closeIdle(transport)

	journal := filepath.Join(cfg.Dir, "journal.jsonl")
	merged := filepath.Join(cfg.Dir, "merged.jsonl")
	ccfg := dist.CoordConfig{
		Spec:     spec,
		Addr:     "127.0.0.1:0",
		LeaseTTL: cfg.LeaseTTL,
		Journal:  journal,
		FS:       fs,
		Out:      merged,
		Linger:   time.Millisecond,
	}
	coord, err := dist.NewCoordinator(ccfg, clock.Now)
	if err != nil {
		if sched.armsLoudDiskFaults() && (errors.Is(err, ErrNoSpace) || errors.Is(err, ErrSyncFailed)) {
			// The journal refused its very first write (header): the run
			// aborts before any worker starts. Loud and clean by
			// construction — nothing to tear down, nothing merged.
			res.AbortedLoudly = true
			res.DiskInjected = fs.Injected()
			res.Elapsed = time.Since(start)
			logf("  %s", res)
			if ownDir {
				os.RemoveAll(cfg.Dir)
			}
			return res, nil
		}
		return res, err
	}
	base, stop, err := coord.Start(ctx)
	if err != nil {
		return res, err
	}
	res.Incarnations = 1
	var snapshots []dist.Progress

	// Workers: one supervised slot each. A slot that exits with a
	// transient error (coordinator mid-restart, retry budget exhausted)
	// respawns with the same ID — re-registration releases its stale
	// leases. Killed slots stay dead.
	hb := time.Duration(0)
	if sched.HeartbeatLag {
		hb = cfg.LeaseTTL * 2 // guarantees expiry mid-cell
	}
	regs := make([]*obs.Registry, cfg.Workers)
	killCh := make([]context.CancelFunc, cfg.Workers)
	slotErr := make([]error, cfg.Workers)
	var restarts atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		i := i
		regs[i] = obs.NewRegistry()
		wctx, wcancel := context.WithCancel(ctx)
		killCh[i] = wcancel
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer wcancel()
			for attempt := 0; ; attempt++ {
				err := dist.RunWorker(wctx, dist.WorkerConfig{
					ID:             fmt.Sprintf("soak-%d", i),
					Coordinator:    base,
					Lab:            lab,
					Metrics:        regs[i],
					Transport:      transport,
					HeartbeatEvery: hb,
					Retries:        1,
				})
				if err == nil || errors.Is(err, context.Canceled) ||
					errors.Is(err, context.DeadlineExceeded) || errors.Is(err, dist.ErrRunAborted) {
					slotErr[i] = err
					return
				}
				if attempt >= 8 {
					slotErr[i] = fmt.Errorf("chaos: worker %d gave up after %d restarts: %w", i, attempt, err)
					return
				}
				restarts.Add(1)
				select {
				case <-wctx.Done():
					slotErr[i] = wctx.Err()
					return
				case <-time.After(50 * time.Millisecond):
				}
			}
		}()
	}

	// waitDone polls the live coordinator until at least n cells are
	// done, the run ends, or the deadline hits.
	waitDone := func(n int) bool {
		for {
			select {
			case <-coord.Done():
				return false
			case <-ctx.Done():
				return false
			case <-time.After(10 * time.Millisecond):
			}
			if coord.Progress().Done >= n {
				return true
			}
		}
	}

	// ---- The schedule's lifecycle events, staged sequentially. ----
	waitDone(1)
	for k := 0; k < sched.KillWorkers && k < cfg.Workers-1; k++ {
		logf("  killing worker %d", k)
		killCh[k]()
	}
	for j := 0; j < sched.ClockJumps; j++ {
		select {
		case <-coord.Done():
		case <-ctx.Done():
		case <-time.After(50 * time.Millisecond):
			logf("  clock jump +%v", cfg.LeaseTTL*2)
			clock.Jump(cfg.LeaseTTL * 2)
			coord.ExpireNow()
		}
	}
	if sched.ClockFreeze {
		logf("  clock freeze for %v", cfg.LeaseTTL+100*time.Millisecond)
		clock.Freeze()
		select {
		case <-ctx.Done():
		case <-time.After(cfg.LeaseTTL + 100*time.Millisecond):
		}
		clock.Thaw()
		coord.ExpireNow()
	}
	if sched.CoordCrash && waitDone(2) {
		logf("  crashing coordinator (journal tear + resume)")
		stop()
		snapshots = append(snapshots, coord.Progress())
		kept := fs.Crash()
		fs.Reset()
		addr := strings.TrimPrefix(base, "http://")
		ccfg.Addr = addr
		ccfg.Resume = true
		var nc *dist.Coordinator
		var nbase string
		var nstop func()
		for retry := 0; ; retry++ {
			nc, err = dist.NewCoordinator(ccfg, clock.Now)
			if err == nil {
				nbase, nstop, err = nc.Start(ctx)
			}
			if err == nil {
				break
			}
			if retry >= 100 || ctx.Err() != nil {
				return res, fmt.Errorf("chaos: coordinator resume on %s: %w", addr, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
		coord, base, stop = nc, nbase, nstop
		res.Incarnations++
		logf("  resumed: journal kept %v bytes, %d cells recovered",
			kept[journal], coord.Progress().Resumed)
	}

	// ---- Wait for the run to end, then tear down. ----
	termErr := func() error {
		select {
		case <-coord.Done():
			return coord.Err()
		case <-ctx.Done():
			return fmt.Errorf("chaos: soak deadline exceeded (livelock?): %w", ctx.Err())
		}
	}()
	// Give workers one beat to hear "done" on their next poll, then cut
	// them off; either exit path is fine.
	if termErr == nil {
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
		}
	}
	for _, cancel := range killCh {
		cancel()
	}
	wg.Wait()
	stop()
	snapshots = append(snapshots, coord.Progress())
	res.Elapsed = time.Since(start)
	res.NetInjected = transport.Injected()
	res.DiskInjected = fs.Injected()
	res.WorkerRestarts = int(restarts.Load())
	for _, p := range snapshots {
		res.Accepted += p.Done - p.Resumed
		res.Duplicates += p.Duplicates
	}

	// ---- Terminal-state classification. ----
	if termErr != nil {
		if errors.Is(termErr, dist.ErrJournalFailed) && sched.armsLoudDiskFaults() {
			// Loud abort: the documented response to a journal that stops
			// persisting. Assert it was clean.
			res.AbortedLoudly = true
			if _, err := os.Stat(merged); err == nil {
				return res, fmt.Errorf("chaos: %s: aborted run left a merged output claiming success", sched)
			}
			if err := checkGoroutines(baseline); err != nil {
				return res, fmt.Errorf("chaos: %s: %w", sched, err)
			}
			logf("  %s", res)
			if ownDir {
				os.RemoveAll(cfg.Dir)
			}
			return res, nil
		}
		return res, fmt.Errorf("chaos: %s: run failed: %w", sched, termErr)
	}
	res.Completed = true

	// ---- Invariants. ----
	got, err := os.ReadFile(merged)
	if err != nil {
		return res, fmt.Errorf("chaos: %s: merged output missing: %w", sched, err)
	}
	res.Rows = bytes.Count(got, []byte("\n"))
	if !bytes.Equal(got, cfg.Reference) {
		return res, fmt.Errorf("chaos: %s: merged output differs from fault-free reference (%d vs %d bytes)",
			sched, len(got), len(cfg.Reference))
	}
	if res.Rows != len(cells) {
		return res, fmt.Errorf("chaos: %s: merged rows %d != cells %d", sched, res.Rows, len(cells))
	}
	if res.Accepted < len(cells) {
		return res, fmt.Errorf("chaos: %s: only %d acceptances across %d incarnations for %d cells — some cell completed without ever being accepted",
			sched, res.Accepted, res.Incarnations, len(cells))
	}

	// Per-worker report accounting (exact): every completed cell
	// attempts exactly one report, with exactly one outcome.
	var sumDone, sumOK, sumDup, sumFailed int64
	for i, reg := range regs {
		s := reg.Snapshot()
		done := s.Counters["worker.cells_done"]
		ok := s.Counters["worker.results_ok"]
		dup := s.Counters["worker.results_duplicate"]
		failed := s.Counters["worker.results_failed"]
		if done != ok+dup+failed {
			return res, fmt.Errorf("chaos: %s: worker %d report accounting broken: cells_done=%d != ok=%d + dup=%d + failed=%d",
				sched, i, done, ok, dup, failed)
		}
		sumDone += done
		sumOK += ok
		sumDup += dup
		sumFailed += failed
	}

	// Cluster balance, redelivery-corrected. Server-side acceptances +
	// duplicates == worker-received outcomes + transport-injected
	// redeliveries + responses generated but lost in flight. The loss
	// term is bounded by events that can strand a generated response:
	// mangled/cancelled result exchanges and teardowns.
	generated := int64(res.Accepted + res.Duplicates)
	received := sumOK + sumDup
	_, excess := transport.Deliveries("/v1/result")
	if generated < received {
		return res, fmt.Errorf("chaos: %s: workers received %d result ACKs but coordinators only generated %d",
			sched, received, generated)
	}
	lossBound := int64(res.NetInjected + sched.KillWorkers + res.WorkerRestarts + 2*cfg.Workers + 2)
	if generated > received+int64(excess)+lossBound {
		return res, fmt.Errorf("chaos: %s: balance drift: generated=%d received=%d excess=%d (bound %d)",
			sched, generated, received, excess, lossBound)
	}
	if sched.quiet() {
		// No faults armed and none fired: the smoke-test identity must
		// be exact — Σ cells_done == rows + duplicates, zero redelivery.
		if excess != 0 {
			return res, fmt.Errorf("chaos: %s: fault-free run recorded %d excess deliveries", sched, excess)
		}
		if sumDone != int64(res.Rows+res.Duplicates) {
			return res, fmt.Errorf("chaos: %s: fault-free balance broken: cells_done=%d != rows=%d + dups=%d",
				sched, sumDone, res.Rows, res.Duplicates)
		}
	}

	// Worker exit audit: no slot may have given up (transient errors
	// respawn; only aborts/cancels are legitimate exits, and this run
	// completed).
	for i, err := range slotErr {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return res, fmt.Errorf("chaos: %s: worker %d exited wrongly: %w", sched, i, err)
		}
	}

	closeIdle(transport)
	if err := checkGoroutines(baseline); err != nil {
		return res, fmt.Errorf("chaos: %s: %w", sched, err)
	}
	logf("  %s", res)
	if ownDir {
		os.RemoveAll(cfg.Dir)
	}
	return res, nil
}

// armsLoudDiskFaults reports whether the schedule can make a journal
// write return an error (vs the silent sync-lie/torn kinds).
func (s Schedule) armsLoudDiskFaults() bool {
	for _, r := range s.Disk {
		switch r.Kind {
		case FaultENOSPC, FaultShortWrite, FaultSyncFail:
			return true
		}
	}
	return false
}

// quiet reports whether the schedule armed nothing at all (a control
// run).
func (s Schedule) quiet() bool {
	net, disk, clk := s.Planes()
	return !net && !disk && !clk && s.KillWorkers == 0 && !s.CoordCrash
}

// checkGoroutines polls for the goroutine count to settle back near
// baseline; a stuck count is a leaked heartbeat, server conn, or
// supervisor.
func checkGoroutines(baseline int) error {
	const slack = 12
	deadline := time.Now().Add(3 * time.Second)
	n := 0
	for {
		n = runtime.NumGoroutine()
		if n <= baseline+slack {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: goroutine leak: %d running, baseline %d (+%d slack)", n, baseline, slack)
		}
		runtime.Gosched()
		time.Sleep(25 * time.Millisecond)
	}
}

func closeIdle(t *Transport) {
	if tr, ok := t.next.(*http.Transport); ok {
		tr.CloseIdleConnections()
	} else if tr, ok := t.next.(interface{ CloseIdleConnections() }); ok {
		tr.CloseIdleConnections()
	}
}
