// Package chaos is a stdlib-only deterministic fault-injection layer
// for the distributed sweep. It attacks three planes — the RPC
// transport (Transport), the checkpoint/journal disk writes (FS), and
// the lease clock (Clock) — and every injected fault is drawn from one
// seeded schedule, so a failing run replays exactly from its seed.
//
// The determinism contract is precise, and worth stating honestly: the
// fault *schedule* is a pure function of the seed — which rules exist,
// what each fires on, and the decision for the nth matching event are
// all reproducible. The *interleaving* of goroutines around those
// faults is not (Go gives no such guarantee), so two runs of the same
// seed may reach different intermediate states. What the seed buys is
// that the same adversary shows up both times; combined with the
// sweep's own determinism (cells are pure functions of their key), that
// has been enough to reproduce every bug this harness has found.
//
// On top of the planes sits Soak (soak.go): an in-process cluster —
// N workers, one coordinator, mid-run worker kills and a coordinator
// crash/resume through the journal — run under K generated schedules,
// with merge byte-identity, accounting identities, goroutine-leak and
// livelock checks asserted for each.
package chaos

import "tevot/internal/backoff"

// decide is the shared deterministic coin for every plane: the nth
// matching event of rule r under seed s fires iff
// Hash(s^mix(r), key#n) mod 1000 < prob·1000. It is a pure function of
// (seed, rule, key, n) — independent of goroutine scheduling.
func decide(seed int64, rule int, key string, n uint64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	h := backoff.Hash(seed^int64(rule)*0x9e3779b97f4a7c, keyN(key, n))
	return float64(h%1000)/1000 < prob
}

// pick returns a deterministic value in [0, m) for the nth matching
// event — used to choose offsets, delays, and duplicate counts.
func pick(seed int64, rule int, key string, n uint64, m int64) int64 {
	if m <= 0 {
		return 0
	}
	h := backoff.Hash(seed^int64(rule)*0x7f4a7c159e3779b9, keyN(key, n))
	return int64(h % uint64(m))
}

func keyN(key string, n uint64) string {
	// Cheap stable composition; '#' cannot appear in route or path keys
	// ambiguously enough to matter for decorrelation.
	buf := make([]byte, 0, len(key)+21)
	buf = append(buf, key...)
	buf = append(buf, '#')
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(n>>(8*i)))
	}
	return string(buf)
}
