package chaos

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"tevot/internal/obs"
	"tevot/internal/runner"
)

// Disk-plane fault kinds.
const (
	// FaultShortWrite writes only a seeded prefix of the buffer and
	// reports the short count with an error, as a full disk mid-write
	// does.
	FaultShortWrite = "short_write"
	// FaultENOSPC fails the write outright with ENOSPC semantics.
	FaultENOSPC = "enospc"
	// FaultSyncFail makes Sync return an error (data may still be in the
	// page cache — the caller must treat the entry as unpersisted).
	FaultSyncFail = "sync_fail"
	// FaultSyncLie makes Sync return nil WITHOUT marking the bytes
	// durable: a firmware-grade lie. Combined with Crash, this is how a
	// torn tail appears in a journal whose every Record fsyncs.
	FaultSyncLie = "sync_lie"
	// FaultTornWrite writes a seeded prefix of the buffer and reports
	// full success — the write looks fine until a Crash truncates the
	// unsynced remainder mid-record.
	FaultTornWrite = "torn_write"
)

// ErrNoSpace is the injected ENOSPC. It wraps fs.ErrInvalid-free plain
// text on purpose: callers must handle it as an opaque write failure,
// which is exactly how the journal layer treats real ENOSPC.
var ErrNoSpace = errors.New("chaos: no space left on device (injected)")

// ErrSyncFailed is the injected fsync failure.
var ErrSyncFailed = errors.New("chaos: fsync failed (injected)")

// FSRule is one disk-plane fault: on files whose base name matches
// PathGlob (empty = all), the Nth matching operation (N drawn per-op
// from Prob) suffers Kind. MaxFires bounds how often the rule triggers
// (0 = unlimited) so a journal under ENOSPC chaos still finishes.
type FSRule struct {
	// Kind is one of the Fault* constants above.
	Kind string
	// PathGlob matches the file's base name (filepath.Match); empty
	// matches every file.
	PathGlob string
	// Prob is the per-operation firing probability in [0, 1].
	Prob float64
	// MaxFires caps total firings of this rule (0 = unlimited).
	MaxFires int
	// CutAt, for short/torn writes, fixes the kept byte count; < 0 (or
	// >= len) draws a seeded offset in [0, len) per firing. Exhaustive
	// byte-sweep tests pin CutAt; schedules leave it -1.
	CutAt int
}

// FS is the disk plane: a runner.FS that injects write-path faults and
// can simulate a process crash, truncating each tracked file back to
// its last durable byte plus a seeded fragment of the unsynced tail.
// Reads are never faulted — the plane models losing writes, not
// corrupting history (the journal loader's corruption handling has its
// own directed tests).
//
// An FS is safe for concurrent use and implements runner.FS directly,
// so it drops into runner.Config.FS and dist.CoordConfig.FS.
type FS struct {
	seed  int64
	rules []FSRule

	mu    sync.Mutex
	files map[string]*fsFile // tracked open files by path
	// ops counts matching operations per rule for the deterministic
	// decision stream; fires counts firings for MaxFires.
	ops     []uint64
	fires   []int
	crashed bool

	// Injected counts total faults injected, for test assertions.
	injected int
}

// NewFS builds a disk plane over the real filesystem with the given
// seeded rules.
func NewFS(seed int64, rules []FSRule) *FS {
	return &FS{
		seed:  seed,
		rules: rules,
		files: make(map[string]*fsFile),
		ops:   make([]uint64, len(rules)),
		fires: make([]int, len(rules)),
	}
}

// Injected reports how many faults have fired so far.
func (c *FS) Injected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// Open opens read-only (never faulted, not crash-tracked).
func (c *FS) Open(name string) (runner.File, error) {
	c.mu.Lock()
	crashed := c.crashed
	c.mu.Unlock()
	if crashed {
		return nil, fmt.Errorf("chaos: fs crashed: %w", os.ErrClosed)
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// OpenFile opens for writing through the fault layer; the handle is
// tracked so a Crash can tear its unsynced tail.
func (c *FS) OpenFile(name string, flag int, perm fs.FileMode) (runner.File, error) {
	c.mu.Lock()
	crashed := c.crashed
	c.mu.Unlock()
	if crashed {
		return nil, fmt.Errorf("chaos: fs crashed: %w", os.ErrClosed)
	}
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	cf := &fsFile{fs: c, f: f, path: name, synced: st.Size(), written: st.Size()}
	if flag&os.O_TRUNC != 0 {
		cf.synced, cf.written = 0, 0
	}
	c.mu.Lock()
	c.files[name] = cf
	c.mu.Unlock()
	return cf, nil
}

// Crash simulates the process dying and the machine losing everything
// not durably synced: every tracked file is truncated to its last
// synced offset plus a seeded partial fragment of the unsynced tail
// (modeling the page cache flushing some, but not all, of the pending
// bytes), and all handles are closed. Subsequent opens through this FS
// fail until Reset — a crashed incarnation must not keep writing.
// It returns the per-file kept sizes for logging.
func (c *FS) Crash() map[string]int64 {
	// Set the crashed flag and detach the tracked set first, THEN lock
	// each file: file ops lock file-then-FS (Write → match), so holding
	// c.mu while taking cf.mu would invert the order and deadlock
	// against an in-flight write.
	c.mu.Lock()
	c.crashed = true
	files := make(map[string]*fsFile, len(c.files))
	for path, cf := range c.files {
		files[path] = cf
	}
	c.files = make(map[string]*fsFile)
	c.mu.Unlock()

	kept := make(map[string]int64, len(files))
	for path, cf := range files {
		cf.mu.Lock()
		keep := cf.synced
		if tail := cf.written - cf.synced; tail > 0 {
			// A seeded fraction of the unsynced tail survives — including
			// possibly zero bytes and possibly a mid-record cut.
			keep += pick(c.seed, -1, path, cf.crashN, tail+1)
			cf.crashN++
		}
		cf.f.Truncate(keep)
		cf.f.Sync()
		cf.f.Close()
		cf.closed = true
		cf.mu.Unlock()
		kept[path] = keep
	}
	obs.Logger("chaos").Info("fs crash injected", "files", len(kept))
	return kept
}

// Reset clears the crashed state so a resumed incarnation can reopen
// its files through the same plane (rule streams keep advancing — the
// adversary does not restart with the process).
func (c *FS) Reset() {
	c.mu.Lock()
	c.crashed = false
	c.mu.Unlock()
}

// match finds the first rule of the given kinds that fires for this
// operation on path.
func (c *FS) match(path string, kinds ...string) (FSRule, bool) {
	base := filepath.Base(path)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, r := range c.rules {
		ok := false
		for _, k := range kinds {
			if r.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			continue
		}
		if r.PathGlob != "" {
			if m, _ := filepath.Match(r.PathGlob, base); !m {
				continue
			}
		}
		n := c.ops[i]
		c.ops[i]++
		if r.MaxFires > 0 && c.fires[i] >= r.MaxFires {
			continue
		}
		if decide(c.seed, i, r.Kind+":"+base, n, r.Prob) {
			c.fires[i]++
			c.injected++
			return r, true
		}
	}
	return FSRule{}, false
}

// CreateTemp, Rename, and Remove make *FS an obs.ManifestFS, so the
// same plane faults the manifest writer's atomic temp+rename dance.
// Temp-file writes go through the usual write rules; Rename can fail
// via an ENOSPC rule matched against the destination name.
func (c *FS) CreateTemp(dir, pattern string) (obs.ManifestFile, error) {
	c.mu.Lock()
	crashed := c.crashed
	c.mu.Unlock()
	if crashed {
		return nil, fmt.Errorf("chaos: fs crashed: %w", os.ErrClosed)
	}
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	cf := &fsFile{fs: c, f: f, path: f.Name()}
	c.mu.Lock()
	c.files[f.Name()] = cf
	c.mu.Unlock()
	return &tempFile{cf}, nil
}

func (c *FS) Rename(oldpath, newpath string) error {
	if r, ok := c.match(newpath, FaultENOSPC); ok && r.Kind == FaultENOSPC {
		return ErrNoSpace
	}
	return os.Rename(oldpath, newpath)
}

func (c *FS) Remove(name string) error { return os.Remove(name) }

// tempFile adapts fsFile to obs.ManifestFile (adds Name).
type tempFile struct{ *fsFile }

func (t *tempFile) Name() string { return t.path }

// fsFile is one tracked write handle.
type fsFile struct {
	fs   *FS
	f    *os.File
	path string

	mu      sync.Mutex
	written int64 // bytes written through this handle (file size)
	synced  int64 // bytes durable as of the last honest Sync
	crashN  uint64
	closed  bool
}

func (f *fsFile) Read(p []byte) (int, error) { return f.f.Read(p) }

func (f *fsFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if r, ok := f.fs.match(f.path, FaultShortWrite, FaultENOSPC, FaultTornWrite); ok {
		switch r.Kind {
		case FaultENOSPC:
			return 0, ErrNoSpace
		case FaultShortWrite, FaultTornWrite:
			cut := int64(r.CutAt)
			if cut < 0 || cut >= int64(len(p)) {
				// Seeded cut anywhere in [0, len): keyed by the write
				// offset so the nth record of a journal tears at a
				// different byte than the mth.
				cut = pick(f.fs.seed, len(f.fs.rules), f.path, uint64(f.written), int64(len(p)))
			}
			n, err := f.f.Write(p[:cut])
			f.written += int64(n)
			if err != nil {
				return n, err
			}
			if r.Kind == FaultShortWrite {
				return n, ErrNoSpace
			}
			// Torn write: lie about success. The missing tail only
			// becomes observable after a Crash.
			return len(p), nil
		}
	}
	n, err := f.f.Write(p)
	f.written += int64(n)
	return n, err
}

func (f *fsFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if r, ok := f.fs.match(f.path, FaultSyncFail, FaultSyncLie); ok {
		if r.Kind == FaultSyncFail {
			return ErrSyncFailed
		}
		// Sync lie: report success without advancing the durable mark.
		return nil
	}
	if err := f.f.Sync(); err != nil {
		return err
	}
	f.synced = f.written
	return nil
}

func (f *fsFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	if f.written > size {
		f.written = size
	}
	if f.synced > size {
		f.synced = size
	}
	return nil
}

func (f *fsFile) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	return f.f.Seek(offset, whence)
}

func (f *fsFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	f.fs.mu.Lock()
	if f.fs.files[f.path] == f {
		delete(f.fs.files, f.path)
	}
	f.fs.mu.Unlock()
	return f.f.Close()
}
