// Package place provides the place-and-route stage of the flow: a
// deterministic levelized grid placement of the netlist and a
// wire-delay model based on Manhattan routing distance. The paper's
// timing comes from post-layout designs ("considers physical details of
// post-layout designs in TSMC 45nm"); with this package the STA and
// simulation delays include per-sink interconnect delay instead of a
// pure fanout-count load model.
//
// The placer is intentionally simple and reproducible: gates are placed
// column-by-column in topological-level order, ordered within a column
// by the barycenter of their already-placed fanins — a single pass of
// the classic force-directed heuristic. It is not a competitive placer;
// it is a physical-detail generator whose wirelengths correlate with
// logical structure the way a real layout's do.
package place

import (
	"fmt"
	"math"
	"sort"

	"tevot/internal/netlist"
)

// Point is a placed location in cell-pitch units.
type Point struct {
	X, Y float64
}

// Placement maps every gate (and primary input) of a netlist to a
// location.
type Placement struct {
	// Gate holds one location per gate, indexed by GateID.
	Gate []Point
	// Input holds one location per primary input, in PrimaryInputs
	// order.
	Input []Point
	// Width and Height are the bounding box in cell pitches.
	Width, Height float64
}

// Place computes the levelized barycenter placement.
func Place(nl *netlist.Netlist) (*Placement, error) {
	levels, err := nl.Levels()
	if err != nil {
		return nil, err
	}
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}

	p := &Placement{
		Gate:  make([]Point, nl.NumGates()),
		Input: make([]Point, len(nl.PrimaryInputs)),
	}
	// Primary inputs occupy column 0, evenly spaced.
	inputY := make(map[netlist.NetID]float64, len(nl.PrimaryInputs))
	for i, pi := range nl.PrimaryInputs {
		y := float64(i)
		p.Input[i] = Point{X: 0, Y: y}
		inputY[pi] = y
	}

	// Group gates by level.
	byLevel := map[int32][]netlist.GateID{}
	maxLevel := int32(0)
	for _, gi := range order {
		lv := levels[gi]
		byLevel[lv] = append(byLevel[lv], gi)
		if lv > maxLevel {
			maxLevel = lv
		}
	}

	// netY returns the y of a net's driver (or input pin) once placed.
	netY := func(id netlist.NetID) (float64, bool) {
		if y, ok := inputY[id]; ok {
			return y, true
		}
		drv := nl.Nets[id].Driver
		if drv == netlist.None {
			return 0, false // constant nets exert no pull
		}
		return p.Gate[drv].Y, true
	}

	maxRow := float64(len(nl.PrimaryInputs))
	for lv := int32(1); lv <= maxLevel; lv++ {
		gates := byLevel[lv]
		type scored struct {
			g netlist.GateID
			y float64
		}
		row := make([]scored, 0, len(gates))
		for _, gi := range gates {
			sum, n := 0.0, 0
			for _, in := range nl.Gates[gi].Inputs {
				if y, ok := netY(in); ok {
					sum += y
					n++
				}
			}
			y := 0.0
			if n > 0 {
				y = sum / float64(n)
			}
			row = append(row, scored{gi, y})
		}
		// Sort by barycenter, then legalize to distinct rows preserving
		// the order (ties broken by gate id for determinism).
		sort.Slice(row, func(i, j int) bool {
			if row[i].y != row[j].y {
				return row[i].y < row[j].y
			}
			return row[i].g < row[j].g
		})
		for i, s := range row {
			p.Gate[s.g] = Point{X: float64(lv), Y: float64(i) * spread(len(row), maxRow)}
		}
		if r := float64(len(row)); r > maxRow {
			maxRow = r
		}
	}
	p.Width = float64(maxLevel)
	p.Height = maxRow
	return p, nil
}

// spread scales row indices so every column spans a similar height —
// columns with few cells sit at the same pitch density as wide ones.
func spread(n int, maxRow float64) float64 {
	if n <= 1 {
		return 1
	}
	s := maxRow / float64(n)
	if s < 1 {
		return 1
	}
	return s
}

// WireModel converts routed distance to delay.
type WireModel struct {
	// PsPerPitch is the wire delay per Manhattan cell pitch, ps.
	PsPerPitch float64
}

// DefaultWire returns a 45 nm-flavored interconnect coefficient: short
// local wires cost a fraction of a gate delay, cross-block routes cost
// several.
func DefaultWire() WireModel { return WireModel{PsPerPitch: 0.9} }

// Validate rejects non-physical coefficients.
func (w WireModel) Validate() error {
	if w.PsPerPitch < 0 {
		return fmt.Errorf("place: negative wire delay %v", w.PsPerPitch)
	}
	return nil
}

// GateWireDelay returns the mean interconnect delay (ps, at the nominal
// corner) from a gate's output to its sinks: PsPerPitch times the mean
// Manhattan distance. Gates whose output has no sinks get the distance
// to one pitch (the local output wire).
func (pl *Placement) GateWireDelay(nl *netlist.Netlist, w WireModel, gi netlist.GateID) float64 {
	src := pl.Gate[gi]
	out := nl.Gates[gi].Output
	sinks := nl.Nets[out].Fanout
	if len(sinks) == 0 {
		return w.PsPerPitch
	}
	total := 0.0
	for _, s := range sinks {
		dst := pl.Gate[s]
		total += math.Abs(dst.X-src.X) + math.Abs(dst.Y-src.Y)
	}
	return w.PsPerPitch * total / float64(len(sinks))
}

// TotalWirelength sums the Manhattan source-to-sink distances of every
// net — the placer's quality metric.
func (pl *Placement) TotalWirelength(nl *netlist.Netlist) float64 {
	total := 0.0
	locOf := func(id netlist.NetID) (Point, bool) {
		if drv := nl.Nets[id].Driver; drv != netlist.None {
			return pl.Gate[drv], true
		}
		for i, pi := range nl.PrimaryInputs {
			if pi == id {
				return pl.Input[i], true
			}
		}
		return Point{}, false
	}
	for ni := range nl.Nets {
		src, ok := locOf(netlist.NetID(ni))
		if !ok {
			continue
		}
		for _, s := range nl.Nets[ni].Fanout {
			dst := pl.Gate[s]
			total += math.Abs(dst.X-src.X) + math.Abs(dst.Y-src.Y)
		}
	}
	return total
}
