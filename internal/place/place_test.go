package place

import (
	"testing"

	"tevot/internal/circuits"
	"tevot/internal/netlist"
)

func TestPlaceBasicInvariants(t *testing.T) {
	nl := circuits.NewRippleAdder(8)
	pl, err := Place(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Gate) != nl.NumGates() || len(pl.Input) != len(nl.PrimaryInputs) {
		t.Fatalf("placement sizes %d/%d", len(pl.Gate), len(pl.Input))
	}
	levels, err := nl.Levels()
	if err != nil {
		t.Fatal(err)
	}
	for gi := range nl.Gates {
		p := pl.Gate[gi]
		if p.X != float64(levels[gi]) {
			t.Fatalf("gate %d placed at column %v, level is %d", gi, p.X, levels[gi])
		}
		if p.Y < 0 || p.Y > pl.Height+1e-9 {
			t.Fatalf("gate %d y=%v outside [0,%v]", gi, p.Y, pl.Height)
		}
	}
	if pl.Width <= 0 || pl.Height <= 0 {
		t.Fatalf("degenerate bounding box %vx%v", pl.Width, pl.Height)
	}
}

func TestPlaceNoOverlapWithinColumn(t *testing.T) {
	nl := circuits.NewTruncMultiplier(8)
	pl, err := Place(nl)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Point]bool{}
	for gi := range nl.Gates {
		p := pl.Gate[gi]
		if seen[p] {
			t.Fatalf("two gates share location %+v", p)
		}
		seen[p] = true
	}
}

func TestPlaceDeterministic(t *testing.T) {
	nl := circuits.NewRippleAdder(16)
	a, err := Place(nl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(nl)
	if err != nil {
		t.Fatal(err)
	}
	for gi := range a.Gate {
		if a.Gate[gi] != b.Gate[gi] {
			t.Fatal("placement is not deterministic")
		}
	}
}

func TestWireDelaysPositive(t *testing.T) {
	nl := circuits.NewRippleAdder(8)
	pl, err := Place(nl)
	if err != nil {
		t.Fatal(err)
	}
	w := DefaultWire()
	total := 0.0
	for gi := range nl.Gates {
		d := pl.GateWireDelay(nl, w, netlist.GateID(gi))
		if d < 0 {
			t.Fatalf("negative wire delay %v", d)
		}
		total += d
	}
	if total <= 0 {
		t.Fatal("all wire delays are zero; placement produced no distances")
	}
}

func TestTotalWirelengthBarycenterBeatsReverse(t *testing.T) {
	// The barycenter ordering should produce less wire than a degenerate
	// placement that reverses each column. Build the reverse by flipping
	// Y within the bounding box.
	nl := circuits.NewRippleAdder(16)
	pl, err := Place(nl)
	if err != nil {
		t.Fatal(err)
	}
	base := pl.TotalWirelength(nl)
	flipped := &Placement{
		Gate:   make([]Point, len(pl.Gate)),
		Input:  pl.Input,
		Width:  pl.Width,
		Height: pl.Height,
	}
	for i, p := range pl.Gate {
		flipped.Gate[i] = Point{X: p.X, Y: pl.Height - p.Y}
	}
	if rev := flipped.TotalWirelength(nl); base >= rev {
		t.Errorf("barycenter wirelength (%v) should beat flipped (%v)", base, rev)
	}
}

func TestWireModelValidate(t *testing.T) {
	if err := (WireModel{PsPerPitch: -1}).Validate(); err == nil {
		t.Error("accepted negative wire coefficient")
	}
	if err := DefaultWire().Validate(); err != nil {
		t.Error(err)
	}
}

func TestPlaceRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		nl, err := netlist.Random(netlist.RandomOptions{Inputs: 6, Gates: 50, Outputs: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		pl, err := Place(nl)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if wl := pl.TotalWirelength(nl); wl <= 0 {
			t.Fatalf("seed %d: non-positive wirelength %v", seed, wl)
		}
	}
}
