package vcd

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/sim"
	"tevot/internal/sta"
)

// TestDumpAndExtractMatchesSimulator: dynamic delays recovered from the
// VCD must equal the simulator's own per-cycle delays — the same
// consistency the paper relies on between ModelSim and its VCD parser.
func TestDumpAndExtractMatchesSimulator(t *testing.T) {
	nl := circuits.NewRippleAdder(16)
	corner := cells.Corner{V: 0.85, T: 25}
	delays, err := sta.GateDelays(nl, corner, sta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	static, err := sta.AnalyzeWithDelays(nl, corner, delays)
	if err != nil {
		t.Fatal(err)
	}
	window := static.Delay * 1.5 // paper: simulate slow enough for no errors
	r, err := sim.NewRunner(nl, delays)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, nl, window)
	if err := w.WriteHeader("2026-07-04", "tevot-sim"); err != nil {
		t.Fatal(err)
	}
	r.SetObserver(w.Observe)

	const cycles = 40
	rng := rand.New(rand.NewSource(5))
	want := make([]float64, cycles)
	enc := func(a, b uint64) []bool {
		v := make([]bool, 32)
		for i := 0; i < 16; i++ {
			v[i] = a>>i&1 == 1
			v[16+i] = b>>i&1 == 1
		}
		return v
	}
	prev := enc(0, 0)
	for k := 0; k < cycles; k++ {
		w.BeginCycle(k)
		cur := enc(uint64(rng.Intn(1<<16)), uint64(rng.Intn(1<<16)))
		res, err := r.Cycle(prev, cur)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = res.Delay
		prev = cur
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	outNames := make([]string, len(nl.PrimaryOutputs))
	for i, po := range nl.PrimaryOutputs {
		outNames[i] = nl.Nets[po].Name
	}
	got, err := f.ExtractDelays(outNames, window, cycles)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if math.Abs(got[k]-want[k]) > 0.001 { // fs quantization
			t.Fatalf("cycle %d: VCD delay %v, simulator %v", k, got[k], want[k])
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"undeclared id":  "$enddefinitions $end\n#0\n1!\n",
		"bad timestamp":  "$enddefinitions $end\n#xyz\n",
		"change in defs": "$var wire 1 ! a $end\n1!\n",
		"wide wire":      "$var wire 8 ! bus $end\n",
		"garbage":        "$enddefinitions $end\nhello\n",
		"time backwards": "$var wire 1 ! a $end\n$enddefinitions $end\n#5\n1!\n#3\n0!\n",
	}
	for name, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Parse accepted malformed input", name)
		}
	}
}

func TestParseHeaderFields(t *testing.T) {
	text := "$date today $end\n$version v1 $end\n$timescale 1 fs $end\n" +
		"$var wire 1 ! sig $end\n$enddefinitions $end\n#10\n1!\n#20\n0!\n"
	f, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if f.Date != "today" || f.Version != "v1" || f.Timescale != "1 fs" {
		t.Errorf("header = %q/%q/%q", f.Date, f.Version, f.Timescale)
	}
	ch := f.Signals["sig"]
	if len(ch) != 2 || ch[0] != (Change{10, true}) || ch[1] != (Change{20, false}) {
		t.Errorf("changes = %v", ch)
	}
}

func TestExtractDelaysMissingSignal(t *testing.T) {
	f := &File{Signals: map[string][]Change{}}
	if _, err := f.ExtractDelays([]string{"nope"}, 100, 1); err == nil {
		t.Fatal("ExtractDelays accepted a missing signal")
	}
}

func TestExtractDelaysQuietWindow(t *testing.T) {
	f := &File{Signals: map[string][]Change{"o": {{Time: 1500, Val: true}}}}
	d, err := f.ExtractDelays([]string{"o"}, 1.0, 3) // 1 ps = 1000 fs windows
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 0 || d[2] != 0 {
		t.Errorf("quiet windows should be 0: %v", d)
	}
	if math.Abs(d[1]-0.5) > 1e-9 {
		t.Errorf("window 1 delay = %v, want 0.5 ps", d[1])
	}
}

func TestIDCodeUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := idCode(i)
		if seen[id] {
			t.Fatalf("idCode(%d) = %q collides", i, id)
		}
		seen[id] = true
		for _, c := range []byte(id) {
			if c < 33 || c > 126 {
				t.Fatalf("idCode(%d) contains non-printable byte %d", i, c)
			}
		}
	}
}

func TestToFSRounds(t *testing.T) {
	if got := ToFS(1.0015); got != 1002 {
		t.Errorf("ToFS(1.0015) = %d, want 1002", got)
	}
	if got := ToFS(0); got != 0 {
		t.Errorf("ToFS(0) = %d, want 0", got)
	}
}

func TestWriterHeaderTwice(t *testing.T) {
	nl := circuits.NewRippleAdder(4)
	w := NewWriter(&bytes.Buffer{}, nl, 100)
	if err := w.WriteHeader("d", "v"); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader("d", "v"); err == nil {
		t.Fatal("second WriteHeader succeeded")
	}
}

func ExampleFile_ExtractDelays() {
	text := "$var wire 1 ! s[0] $end\n$enddefinitions $end\n#250\n1!\n#1400\n0!\n"
	f, _ := Parse(strings.NewReader(text))
	d, _ := f.ExtractDelays([]string{"s[0]"}, 1.0, 2)
	fmt.Printf("%.2f %.2f\n", d[0], d[1])
	// Output: 0.25 0.40
}
