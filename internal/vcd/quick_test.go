package vcd

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickRoundTripArbitraryToggles: arbitrary monotone toggle
// sequences written as raw VCD text parse back exactly.
func TestQuickRoundTripArbitraryToggles(t *testing.T) {
	f := func(deltas []uint16, firstVal bool) bool {
		if len(deltas) == 0 {
			return true
		}
		if len(deltas) > 100 {
			deltas = deltas[:100]
		}
		// Build a strictly increasing timeline.
		var buf bytes.Buffer
		buf.WriteString("$var wire 1 ! sig $end\n$enddefinitions $end\n")
		now := int64(0)
		val := firstVal
		var want []Change
		for _, d := range deltas {
			now += int64(d) + 1
			fmt.Fprintf(&buf, "#%d\n", now)
			c := byte('0')
			if val {
				c = '1'
			}
			fmt.Fprintf(&buf, "%c!\n", c)
			want = append(want, Change{Time: now, Val: val})
			val = !val
		}
		parsed, err := Parse(&buf)
		if err != nil {
			return false
		}
		got := parsed.Signals["sig"]
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		// Times stay sorted (parser property).
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Time < got[j].Time })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExtractDelaysInWindow: every extracted delay lies within
// [0, window) regardless of the change times.
func TestQuickExtractDelaysInWindow(t *testing.T) {
	f := func(times []uint16) bool {
		changes := make([]Change, 0, len(times))
		var sorted []int64
		for _, tm := range times {
			sorted = append(sorted, int64(tm))
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		val := false
		for _, tm := range sorted {
			changes = append(changes, Change{Time: tm, Val: val})
			val = !val
		}
		file := &File{Signals: map[string][]Change{"o": changes}}
		const windowPS = 3.0 // 3000 fs
		delays, err := file.ExtractDelays([]string{"o"}, windowPS, 30)
		if err != nil {
			return false
		}
		for _, d := range delays {
			if d < 0 || d >= windowPS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseCommentishGarbage(t *testing.T) {
	// Defensive: tokens the writer never emits must be rejected, not
	// silently swallowed.
	text := "$enddefinitions $end\n#10\n2!\n"
	if _, err := Parse(strings.NewReader(text)); err == nil {
		t.Fatal("accepted unknown value character")
	}
}
